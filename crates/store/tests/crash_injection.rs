//! Crash-injection and corruption sweeps for the durability subsystem.
//!
//! The contract under test (the PR's acceptance criterion):
//!
//! * For **every fault point** — a deterministic crash that drops the
//!   process's dirty state after each edit, mid-compaction, across
//!   segment rotations — `recover(dir)` reproduces the pre-crash durable
//!   engine **bit for bit** (serialized images compared byte-wise, and
//!   every [`QueryKind`] checked through the engine-conformance
//!   machinery).
//! * For **every truncation/corruption offset** of a small log,
//!   `recover(dir)` either yields an engine equal to the replay of some
//!   durable *prefix* of the log (never invented state, never a skipped
//!   middle) or returns a structured [`StoreError`] — no panics, no
//!   silent divergence.
//! * Snapshot + compact followed by replay ≡ pure replay.

use std::path::PathBuf;

use lemp_baselines::types::topk_equivalent;
use lemp_core::{
    BucketPolicy, DynamicLemp, Engine, QueryKind, QueryRequest, QueryRows, RunConfig, WarmGoal,
};
use lemp_data::synthetic::GeneratorConfig;
use lemp_linalg::VectorStore;
use lemp_store::{recover, CompactFault, DurableEngine, StoreError, StoreOptions, SyncPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIM: usize = 8;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lemp-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn base_probes(seed: u64) -> VectorStore {
    GeneratorConfig::gaussian(60, DIM, 1.0).generate(seed)
}

fn base_engine(probes: &VectorStore) -> DynamicLemp {
    let policy = BucketPolicy { min_bucket: 8, cache_bytes: 64 << 10, ..Default::default() };
    let config = RunConfig { sample_size: 8, ..Default::default() };
    DynamicLemp::new(probes, policy, config)
}

/// One scripted edit.
#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<f64>),
    Remove(u32),
    Rebuild,
}

/// A deterministic edit script whose removals always target live ids (a
/// shadow engine tracks liveness while generating).
fn script(n: usize, seed: u64) -> (VectorStore, Vec<Op>) {
    let probes = base_probes(seed);
    let mut shadow = base_engine(&probes);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A);
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let roll = rng.random_range(0..10u32);
        if roll < 5 || shadow.len() < 5 {
            let scale = 10f64.powf(rng.random_range(-1.0..1.0));
            let v: Vec<f64> =
                (0..DIM).map(|_| scale * lemp_data::rng::standard_normal(&mut rng)).collect();
            shadow.insert(&v).unwrap();
            ops.push(Op::Insert(v));
        } else if roll < 9 {
            loop {
                let id = rng.random_range(0..shadow.next_id());
                if shadow.remove(id) {
                    ops.push(Op::Remove(id));
                    break;
                }
            }
        } else {
            shadow.rebuild();
            ops.push(Op::Rebuild);
        }
    }
    (probes, ops)
}

fn apply_oracle(engine: &mut DynamicLemp, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Insert(v) => {
                engine.insert(v).unwrap();
            }
            Op::Remove(id) => {
                assert!(engine.remove(*id), "script removes live ids only");
            }
            Op::Rebuild => engine.rebuild(),
        }
    }
}

fn apply_durable(store: &mut DurableEngine, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Insert(v) => {
                store.insert(v).unwrap();
            }
            Op::Remove(id) => {
                assert!(store.remove(*id).unwrap(), "script removes live ids only");
            }
            Op::Rebuild => store.rebuild().unwrap(),
        }
    }
}

/// Bit-exact fingerprint: the serialized `LEMPDYN1` image.
fn image(engine: &DynamicLemp) -> Vec<u8> {
    let mut bytes = Vec::new();
    engine.write_to(&mut bytes).unwrap();
    bytes
}

fn canon_entries(entries: &[lemp_core::Entry]) -> Vec<(u32, u32, u64)> {
    let mut v: Vec<(u32, u32, u64)> =
        entries.iter().map(|e| (e.query, e.probe, e.value.to_bits())).collect();
    v.sort_unstable();
    v
}

/// The engine-conformance gate: warm both engines identically and compare
/// every [`QueryKind`] through the [`Engine`] trait — Above-θ entry values
/// bit for bit, Row-Top-k scores at tolerance 0.0.
fn assert_conformant(a: &mut DynamicLemp, b: &mut DynamicLemp, label: &str) {
    let sample = GeneratorConfig::gaussian(16, DIM, 1.0).generate(9100);
    let queries = GeneratorConfig::gaussian(12, DIM, 1.0).generate(9101);
    a.warm(&sample, WarmGoal::TopK(4));
    b.warm(&sample, WarmGoal::TopK(4));
    for kind in [
        QueryKind::AboveTheta { theta: 1.0 },
        QueryKind::AbsAboveTheta { theta: 1.0 },
        QueryKind::TopK { k: 4 },
        QueryKind::TopKWithFloor { k: 4, floor: 0.8 },
    ] {
        let request = QueryRequest::new(kind);
        let (a, b): (&dyn Engine, &dyn Engine) = (a, b);
        let mut sa = a.query_scratch();
        let mut sb = b.query_scratch();
        let ra = a.run(&request, &queries, &mut sa);
        let rb = b.run(&request, &queries, &mut sb);
        match (ra.rows, rb.rows) {
            (QueryRows::Entries(ea), QueryRows::Entries(eb)) => {
                assert_eq!(canon_entries(&ea), canon_entries(&eb), "{label}: {kind:?}");
            }
            (QueryRows::Lists(la), QueryRows::Lists(lb)) => {
                assert!(topk_equivalent(&la, &lb, 0.0), "{label}: {kind:?}");
            }
            _ => panic!("{label}: {kind:?} produced mismatched row shapes"),
        }
    }
}

#[test]
fn every_edit_fault_point_recovers_bit_for_bit() {
    const N: usize = 24;
    let (probes, ops) = script(N, 777);
    for cut in 0..=N {
        let dir = tmpdir(&format!("edit-fault-{cut}"));
        let mut store =
            DurableEngine::create(&dir, base_engine(&probes), StoreOptions::default()).unwrap();
        apply_durable(&mut store, &ops[..cut]);
        store.simulate_crash().unwrap();

        let (mut recovered, report) = recover(&dir).unwrap();
        assert_eq!(report.records_replayed, cut as u64, "fault after edit {cut}");
        assert_eq!(report.next_lsn, cut as u64);
        let mut oracle = base_engine(&probes);
        apply_oracle(&mut oracle, &ops[..cut]);
        assert_eq!(image(&recovered), image(&oracle), "fault after edit {cut} diverges");
        if cut % 8 == 0 || cut == N {
            assert_conformant(&mut recovered, &mut oracle, &format!("fault after edit {cut}"));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn sync_policy_bounds_the_loss_window_exactly() {
    const N: usize = 23;
    let (probes, ops) = script(N, 778);
    for (policy, tag) in [(SyncPolicy::EveryN(5), "every5"), (SyncPolicy::Never, "never")] {
        let dir = tmpdir(&format!("sync-{tag}"));
        let options = StoreOptions { sync: policy, ..Default::default() };
        let mut store = DurableEngine::create(&dir, base_engine(&probes), options).unwrap();
        apply_durable(&mut store, &ops);
        let durable = store.wal_stats().records_durable;
        match policy {
            SyncPolicy::EveryN(n) => {
                assert!(
                    (N as u64) - durable < n,
                    "{tag}: loss window {durable}/{N} exceeds the policy"
                );
            }
            SyncPolicy::Never => assert_eq!(durable, 0),
            SyncPolicy::Always => unreachable!(),
        }
        store.simulate_crash().unwrap();
        let (recovered, report) = recover(&dir).unwrap();
        assert_eq!(report.records_replayed, durable, "{tag}");
        let mut oracle = base_engine(&probes);
        apply_oracle(&mut oracle, &ops[..durable as usize]);
        assert_eq!(image(&recovered), image(&oracle), "{tag}: durable prefix diverges");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn explicit_sync_makes_everything_durable_under_lazy_policies() {
    let (probes, ops) = script(12, 779);
    let dir = tmpdir("sync-explicit");
    let options = StoreOptions { sync: SyncPolicy::Never, ..Default::default() };
    let mut store = DurableEngine::create(&dir, base_engine(&probes), options).unwrap();
    apply_durable(&mut store, &ops);
    store.sync().unwrap();
    assert_eq!(store.wal_stats().records_durable, 12);
    store.simulate_crash().unwrap();
    let (recovered, report) = recover(&dir).unwrap();
    assert_eq!(report.records_replayed, 12);
    let mut oracle = base_engine(&probes);
    apply_oracle(&mut oracle, &ops);
    assert_eq!(image(&recovered), image(&oracle));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupting_every_offset_yields_a_prefix_or_a_structured_error() {
    const N: usize = 8;
    let (probes, ops) = script(N, 780);
    let dir = tmpdir("corrupt-sweep");
    let mut store =
        DurableEngine::create(&dir, base_engine(&probes), StoreOptions::default()).unwrap();
    apply_durable(&mut store, &ops);
    drop(store); // sync=Always: everything is already durable

    // Every durable prefix the log could legally replay to.
    let prefixes: Vec<Vec<u8>> = (0..=N)
        .map(|cut| {
            let mut oracle = base_engine(&probes);
            apply_oracle(&mut oracle, &ops[..cut]);
            image(&oracle)
        })
        .collect();

    for what in ["truncate", "flip"] {
        for name in ["wal", "snap", "marker"] {
            let file: PathBuf = match name {
                "wal" => lemp_store::wal::list_segments(&dir).unwrap()[0].1.clone(),
                "snap" => dir.join(lemp_store::snapshot_name(0)),
                _ => dir.join("CHECKPOINT"),
            };
            let clean = std::fs::read(&file).unwrap();
            for offset in 0..clean.len() {
                let mut bad = clean.clone();
                match what {
                    "truncate" => bad.truncate(offset),
                    _ => bad[offset] ^= 0x20,
                }
                std::fs::write(&file, &bad).unwrap();
                let outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| recover(&dir)));
                std::fs::write(&file, &clean).unwrap();
                let result = match outcome {
                    Ok(result) => result,
                    Err(_) => panic!("{what} {name} at {offset}: recover panicked"),
                };
                match result {
                    Ok((engine, _)) => {
                        let got = image(&engine);
                        assert!(
                            prefixes.contains(&got),
                            "{what} {name} at {offset}: recovered engine matches no durable prefix"
                        );
                        assert_ne!(
                            (what, name),
                            ("flip", "snap"),
                            "flip snap at {offset}: marker-pinned snapshot corruption must \
                             never load"
                        );
                    }
                    Err(e) => {
                        // Structured error — exercise Display so a broken
                        // formatter can't hide behind the sweep.
                        let _ = e.to_string();
                    }
                }
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compaction_then_replay_equals_pure_replay() {
    const N: usize = 30;
    let (probes, ops) = script(N, 781);

    // Store A: compact twice mid-stream. Store B: never compacts.
    let dir_a = tmpdir("compact-a");
    let dir_b = tmpdir("compact-b");
    let mut a =
        DurableEngine::create(&dir_a, base_engine(&probes), StoreOptions::default()).unwrap();
    let mut b =
        DurableEngine::create(&dir_b, base_engine(&probes), StoreOptions::default()).unwrap();
    apply_durable(&mut a, &ops[..10]);
    apply_durable(&mut b, &ops[..10]);
    let report = a.compact().unwrap();
    assert_eq!(report.lsn, 10);
    assert_eq!(report.snapshots_pruned, 1, "the seed snapshot is pruned");
    apply_durable(&mut a, &ops[10..20]);
    apply_durable(&mut b, &ops[10..20]);
    a.compact().unwrap();
    apply_durable(&mut a, &ops[20..]);
    apply_durable(&mut b, &ops[20..]);
    a.simulate_crash().unwrap();
    b.simulate_crash().unwrap();

    let (mut ra, rep_a) = recover(&dir_a).unwrap();
    let (mut rb, rep_b) = recover(&dir_b).unwrap();
    assert_eq!(rep_a.snapshot_lsn, 20);
    assert_eq!(rep_a.records_replayed, 10, "compacted store replays only the tail");
    assert_eq!(rep_b.snapshot_lsn, 0);
    assert_eq!(rep_b.records_replayed, N as u64, "pure replay covers everything");
    assert_eq!(image(&ra), image(&rb), "compacted and pure-replay recoveries diverge");
    assert_conformant(&mut ra, &mut rb, "compacted vs pure replay");
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

#[test]
fn compaction_fault_points_recover_to_the_same_engine() {
    const N: usize = 16;
    let (probes, ops) = script(N, 782);
    for fault in [CompactFault::AfterSnapshot, CompactFault::AfterMarker] {
        // Crash immediately at the fault point …
        let dir = tmpdir(&format!("compact-fault-{fault:?}"));
        let mut store =
            DurableEngine::create(&dir, base_engine(&probes), StoreOptions::default()).unwrap();
        apply_durable(&mut store, &ops[..12]);
        assert!(matches!(store.compact_with_fault(Some(fault)), Err(StoreError::Injected(_))));
        store.simulate_crash().unwrap();
        let (recovered, _) = recover(&dir).unwrap();
        let mut oracle = base_engine(&probes);
        apply_oracle(&mut oracle, &ops[..12]);
        assert_eq!(image(&recovered), image(&oracle), "crash at {fault:?} diverges");

        // … and keep editing past the fault before crashing: the store
        // must absorb the half-finished compaction transparently.
        let (mut store, report) = DurableEngine::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(report.next_lsn, 12);
        apply_durable(&mut store, &ops[12..]);
        store.simulate_crash().unwrap();
        let (recovered, _) = recover(&dir).unwrap();
        apply_oracle(&mut oracle, &ops[12..]);
        assert_eq!(image(&recovered), image(&oracle), "edits after {fault:?} diverge");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn rotation_spreads_the_log_and_compaction_prunes_it() {
    const N: usize = 40;
    let (probes, ops) = script(N, 783);
    let dir = tmpdir("rotate-prune");
    // 512-byte segments: every couple of records rotates.
    let options = StoreOptions { segment_bytes: 512, ..Default::default() };
    let mut store = DurableEngine::create(&dir, base_engine(&probes), options).unwrap();
    apply_durable(&mut store, &ops);
    let segments_before = lemp_store::wal::list_segments(&dir).unwrap().len();
    assert!(segments_before >= 5, "only {segments_before} segments at 512 B");
    assert!(store.wal_stats().segments_created as usize >= 5);

    // Recovery replays across every segment.
    let stats = store.wal_stats();
    store.simulate_crash().unwrap();
    let (recovered, report) = recover(&dir).unwrap();
    assert_eq!(report.segments_scanned, segments_before);
    assert_eq!(report.records_replayed, stats.records_durable);
    let mut oracle = base_engine(&probes);
    apply_oracle(&mut oracle, &ops[..stats.records_durable as usize]);
    assert_eq!(image(&recovered), image(&oracle));

    // Compaction prunes everything the snapshot covers.
    let (mut store, _) = DurableEngine::open(&dir, options).unwrap();
    let report = store.compact().unwrap();
    assert_eq!(report.segments_pruned, segments_before, "every pre-checkpoint segment goes");
    let remaining = lemp_store::wal::list_segments(&dir).unwrap();
    assert_eq!(remaining.len(), 1, "one fresh active segment survives");
    assert_eq!(remaining[0].0, store.next_lsn());
    drop(store);
    let (recompacted, report) = recover(&dir).unwrap();
    assert_eq!(report.records_replayed, 0, "post-compaction recovery replays nothing");
    assert_eq!(image(&recompacted), image(&oracle));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_failures_are_structured() {
    // Not a directory.
    let missing = tmpdir("structured-missing");
    assert!(matches!(recover(&missing), Err(StoreError::Missing(_))));

    // A directory with no store in it.
    std::fs::create_dir_all(&missing).unwrap();
    assert!(matches!(recover(&missing), Err(StoreError::Missing(_))));

    // A store whose *middle* segment lost a record: acknowledged records
    // must never be skipped, so this is corruption, not a torn tail.
    let (probes, ops) = script(20, 784);
    let dir = tmpdir("structured-gap");
    let options = StoreOptions { segment_bytes: 512, ..Default::default() };
    let mut store = DurableEngine::create(&dir, base_engine(&probes), options).unwrap();
    apply_durable(&mut store, &ops);
    drop(store);
    let segments = lemp_store::wal::list_segments(&dir).unwrap();
    assert!(segments.len() >= 3);
    let middle = &segments[1].1;
    let bytes = std::fs::read(middle).unwrap();
    std::fs::write(middle, &bytes[..bytes.len() - 1]).unwrap();
    match recover(&dir) {
        Err(StoreError::Corrupt { path, detail, .. }) => {
            assert_eq!(&path, middle);
            assert!(detail.contains("torn in a non-final segment"), "{detail}");
        }
        other => panic!("middle-segment tear not detected: {other:?}"),
    }
    // Deleting the middle segment outright is a log gap.
    std::fs::remove_file(middle).unwrap();
    match recover(&dir) {
        Err(StoreError::Corrupt { detail, .. }) => assert!(detail.contains("log gap"), "{detail}"),
        other => panic!("log gap not detected: {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&missing).ok();
}

#[test]
fn a_lost_final_segment_is_detected_not_silently_skipped() {
    // Checkpoint at LSN 8, then more edits into the post-compaction
    // segment. Losing that *final* segment must be a structured error:
    // accepting the checkpoint would resume the writer at a reused LSN
    // below it, and every later recovery would silently drop the records
    // written there.
    let (probes, ops) = script(12, 786);
    let dir = tmpdir("lost-final");
    let mut store =
        DurableEngine::create(&dir, base_engine(&probes), StoreOptions::default()).unwrap();
    apply_durable(&mut store, &ops[..8]);
    store.compact().unwrap();
    apply_durable(&mut store, &ops[8..]);
    drop(store);
    let segments = lemp_store::wal::list_segments(&dir).unwrap();
    assert_eq!(segments.len(), 1, "compaction left exactly the active segment");
    std::fs::remove_file(&segments[0].1).unwrap();
    match recover(&dir) {
        Err(StoreError::Corrupt { detail, .. }) => {
            assert!(detail.contains("not bracketed"), "{detail}")
        }
        other => panic!("lost final segment not detected: {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn create_refuses_to_clobber_and_open_refuses_nothing() {
    let (probes, _) = script(0, 785);
    let dir = tmpdir("create-twice");
    let store = DurableEngine::create(&dir, base_engine(&probes), StoreOptions::default()).unwrap();
    drop(store);
    assert!(DurableEngine::exists(&dir));
    match DurableEngine::create(&dir, base_engine(&probes), StoreOptions::default()) {
        Err(StoreError::Missing(msg)) => assert!(msg.contains("already holds"), "{msg}"),
        other => panic!("re-create allowed: {other:?}"),
    }
    let (store, report) = DurableEngine::open(&dir, StoreOptions::default()).unwrap();
    assert_eq!(report.records_replayed, 0);
    assert_eq!(store.engine().len(), 60);
    std::fs::remove_dir_all(&dir).ok();
}
