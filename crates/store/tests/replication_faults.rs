//! Fault sweeps for the replication protocol, in the `crash_injection.rs`
//! style.
//!
//! The contract under test:
//!
//! * A replication batch truncated at **every byte offset**, or corrupted
//!   by **any single bit flip**, decodes to a structured
//!   [`StoreError::Corrupt`] — never a panic, never silently fewer or
//!   different records than the header promised.
//! * A hostile leader feeding duplicate, stale, or out-of-order LSNs is
//!   rejected at decode (non-sequential batch) or at apply
//!   ([`StoreError::Replay`]), leaving the follower's engine untouched.
//! * A follower that crashes mid-tail and restarts resumes from its
//!   durable watermark, and after catching up is **bit-identical** to the
//!   leader (serialized `LEMPDYN1` images compared byte-wise).
//! * A leader that compacted past a follower's watermark reports a gap,
//!   not garbage.

use std::path::PathBuf;

use lemp_core::{BucketPolicy, DynamicLemp, RunConfig};
use lemp_data::synthetic::GeneratorConfig;
use lemp_store::crc::crc32;
use lemp_store::replication::{
    bootstrap, decode_batch, decode_snapshot, encode_batch, feed, read_bootstrap, Feed,
};
use lemp_store::{DurableEngine, StoreError, StoreOptions, SyncPolicy, WalRecord};

const DIM: usize = 4;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lemp-repl-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn base_engine(seed: u64) -> DynamicLemp {
    let probes = GeneratorConfig::gaussian(24, DIM, 1.0).generate(seed);
    let policy = BucketPolicy { min_bucket: 8, cache_bytes: 64 << 10, ..Default::default() };
    let config = RunConfig { sample_size: 8, ..Default::default() };
    DynamicLemp::new(&probes, policy, config)
}

fn options() -> StoreOptions {
    StoreOptions { sync: SyncPolicy::Always, ..Default::default() }
}

/// Bit-exact fingerprint: the serialized `LEMPDYN1` image.
fn image(engine: &DynamicLemp) -> Vec<u8> {
    let mut bytes = Vec::new();
    engine.write_to(&mut bytes).unwrap();
    bytes
}

fn sample_records(from: u64, n: usize) -> Vec<(u64, WalRecord)> {
    (0..n)
        .map(|i| {
            let lsn = from + i as u64;
            match i % 3 {
                0 => (lsn, WalRecord::Insert { id: i as u32, vector: vec![0.5; DIM] }),
                1 => (lsn, WalRecord::Remove { id: i as u32 }),
                _ => (lsn, WalRecord::Rebuild),
            }
        })
        .collect()
}

/// Hand-rolls one WAL frame (`len | crc | payload`) so tests can forge
/// LSN sequences `encode_batch` refuses to produce.
fn forged_frame(lsn: u64, id: u32) -> Vec<u8> {
    let mut payload = vec![1u8]; // KIND_INSERT
    payload.extend_from_slice(&lsn.to_le_bytes());
    payload.extend_from_slice(&id.to_le_bytes());
    payload.extend_from_slice(&(DIM as u64).to_le_bytes());
    for _ in 0..DIM {
        payload.extend_from_slice(&1.0f64.to_le_bytes());
    }
    let mut frame = Vec::new();
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Hand-rolls a whole batch around forged frames — a hostile leader.
fn forged_batch(from: u64, leader_next: u64, lsns: &[u64]) -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"LEMPREP2");
    bytes.extend_from_slice(&from.to_le_bytes());
    bytes.extend_from_slice(&leader_next.to_le_bytes());
    bytes.extend_from_slice(&0u64.to_le_bytes()); // fencing epoch
    bytes.extend_from_slice(&(lsns.len() as u32).to_le_bytes());
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
    for &lsn in lsns {
        bytes.extend_from_slice(&forged_frame(lsn, lsn as u32));
    }
    bytes
}

#[test]
fn truncated_batch_at_every_offset_is_structured() {
    let records = sample_records(3, 6);
    let bytes = encode_batch(3, 9, 0, &records);
    for len in 0..bytes.len() {
        match decode_batch(&bytes[..len], 3) {
            Err(StoreError::Corrupt { .. }) => {}
            other => panic!("truncation at {len}/{} gave {other:?}", bytes.len()),
        }
    }
    assert_eq!(decode_batch(&bytes, 3).unwrap().records, records);
}

#[test]
fn every_single_bit_flip_in_a_batch_is_detected() {
    let records = sample_records(0, 4);
    let bytes = encode_batch(0, 4, 0, &records);
    for offset in 0..bytes.len() {
        for bit in [0x01u8, 0x80u8] {
            let mut flipped = bytes.clone();
            flipped[offset] ^= bit;
            match decode_batch(&flipped, 0) {
                Err(StoreError::Corrupt { .. }) => {}
                other => panic!("flip of bit {bit:#04x} at byte {offset} gave {other:?}"),
            }
        }
    }
}

#[test]
fn truncated_snapshot_at_every_offset_is_structured() {
    let engine = base_engine(11);
    let payload = {
        let dir = tmpdir("snap-trunc");
        let store = DurableEngine::create(&dir, engine, options()).unwrap();
        drop(store);
        let bytes = read_bootstrap(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        bytes
    };
    for len in 0..payload.len() {
        match decode_snapshot(&payload[..len]) {
            Err(StoreError::Corrupt { .. }) => {}
            other => panic!("truncation at {len}/{} gave {other:?}", payload.len()),
        }
    }
    assert!(decode_snapshot(&payload).is_ok());
}

#[test]
fn hostile_duplicate_and_out_of_order_lsns_are_rejected_at_decode() {
    // Duplicate LSN inside the batch.
    let dup = forged_batch(5, 9, &[5, 5]);
    assert!(matches!(decode_batch(&dup, 5), Err(StoreError::Corrupt { .. })));
    // A skipped LSN inside the batch.
    let gap = forged_batch(5, 9, &[5, 7]);
    assert!(matches!(decode_batch(&gap, 5), Err(StoreError::Corrupt { .. })));
    // Reordered records.
    let swapped = forged_batch(5, 9, &[6, 5]);
    assert!(matches!(decode_batch(&swapped, 5), Err(StoreError::Corrupt { .. })));
    // A batch answering a different watermark than the follower asked for.
    let shifted = forged_batch(4, 9, &[4, 5]);
    assert!(matches!(decode_batch(&shifted, 5), Err(StoreError::Corrupt { .. })));
    // A count larger than the frames present.
    let mut short = forged_batch(5, 9, &[5, 6]);
    short.truncate(short.len() - forged_frame(6, 6).len());
    assert!(matches!(decode_batch(&short, 5), Err(StoreError::Corrupt { .. })));
}

#[test]
fn apply_replicated_rejects_hostile_lsns_without_touching_the_engine() {
    let dir = tmpdir("hostile-apply");
    let mut store = DurableEngine::create(&dir, base_engine(3), options()).unwrap();
    let next_id = store.engine().next_id();
    store.apply_replicated(0, &WalRecord::Insert { id: next_id, vector: vec![1.0; DIM] }).unwrap();
    let before = image(store.engine());

    // Stale / duplicate.
    let stale = store.apply_replicated(0, &WalRecord::Rebuild).unwrap_err();
    assert!(matches!(stale, StoreError::Replay { lsn: 0, .. }), "{stale}");
    // Gap.
    let gap = store.apply_replicated(5, &WalRecord::Rebuild).unwrap_err();
    assert!(matches!(gap, StoreError::Replay { lsn: 5, .. }), "{gap}");
    // Insert with an id the engine would not assign.
    let bad_id = store
        .apply_replicated(1, &WalRecord::Insert { id: 999, vector: vec![1.0; DIM] })
        .unwrap_err();
    assert!(matches!(bad_id, StoreError::Replay { lsn: 1, .. }), "{bad_id}");
    // Insert with the wrong dimensionality.
    let bad_dim = store
        .apply_replicated(1, &WalRecord::Insert { id: next_id + 1, vector: vec![1.0; DIM + 2] })
        .unwrap_err();
    assert!(matches!(bad_dim, StoreError::Replay { lsn: 1, .. }), "{bad_dim}");
    // Remove of a dead id.
    let dead = store.apply_replicated(1, &WalRecord::Remove { id: 998 }).unwrap_err();
    assert!(matches!(dead, StoreError::Replay { lsn: 1, .. }), "{dead}");

    // None of the rejected records reached the engine or the log.
    assert_eq!(image(store.engine()), before);
    assert_eq!(store.next_lsn(), 1);
    drop(store);
    let (_, report) = DurableEngine::open(&dir, options()).unwrap();
    assert_eq!(report.records_replayed, 1, "rejected records must not be logged");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn follower_restart_mid_tail_resumes_from_its_durable_watermark() {
    let leader_dir = tmpdir("restart-leader");
    let follower_dir = tmpdir("restart-follower");
    let mut leader = DurableEngine::create(&leader_dir, base_engine(7), options()).unwrap();
    for i in 0..18u32 {
        if i % 5 == 4 {
            assert!(leader.remove(i - 2).unwrap());
        } else {
            leader.insert(&[0.25 * f64::from(i); DIM]).unwrap();
        }
    }
    assert_eq!(leader.next_lsn(), 18);

    // Bootstrap and tail half of the log.
    let payload = read_bootstrap(&leader_dir).unwrap();
    let (mut follower, report) = bootstrap(&follower_dir, &payload, options()).unwrap();
    assert_eq!(report.snapshot_lsn, 0);
    assert_eq!(report.records_replayed, 0);
    let Feed::Batch { bytes, records, leader_next } = feed(&leader_dir, 0, 9, 0).unwrap() else {
        panic!("expected a batch");
    };
    assert_eq!((records, leader_next), (9, 18));
    for (lsn, record) in decode_batch(&bytes, 0).unwrap().records {
        follower.apply_replicated(lsn, &record).unwrap();
    }
    assert_eq!(follower.next_lsn(), 9);
    follower.simulate_crash().unwrap(); // crash mid-tail

    // Restart: recovery lands exactly on the durable watermark …
    let (mut follower, report) = DurableEngine::open(&follower_dir, options()).unwrap();
    assert_eq!(report.records_replayed, 9);
    assert_eq!(follower.next_lsn(), 9);

    // … and tailing from it converges to a bit-identical engine.
    let Feed::Batch { bytes, .. } = feed(&leader_dir, follower.next_lsn(), 4096, 0).unwrap() else {
        panic!("expected a batch");
    };
    for (lsn, record) in decode_batch(&bytes, 9).unwrap().records {
        follower.apply_replicated(lsn, &record).unwrap();
    }
    assert_eq!(follower.next_lsn(), leader.next_lsn());
    assert_eq!(image(follower.engine()), image(leader.engine()));

    // A caught-up follower gets an empty batch, not an error.
    let Feed::Batch { records, leader_next, .. } = feed(&leader_dir, 18, 4096, 0).unwrap() else {
        panic!("expected a batch");
    };
    assert_eq!((records, leader_next), (0, 18));
    std::fs::remove_dir_all(&leader_dir).ok();
    std::fs::remove_dir_all(&follower_dir).ok();
}

#[test]
fn feed_reports_a_gap_after_the_leader_compacts_past_the_watermark() {
    let dir = tmpdir("gap");
    let mut leader = DurableEngine::create(&dir, base_engine(9), options()).unwrap();
    for i in 0..6u32 {
        leader.insert(&[f64::from(i); DIM]).unwrap();
    }
    leader.compact().unwrap();
    match feed(&dir, 0, 4096, 0).unwrap() {
        Feed::Gap { first_available } => assert_eq!(first_available, 6),
        other => panic!("expected a gap, got {other:?}"),
    }
    // The checkpoint itself is still feedable.
    assert!(matches!(feed(&dir, 6, 4096, 0), Ok(Feed::Batch { records: 0, .. })));
    drop(leader);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fencing_epoch_survives_crash_restart_and_compaction() {
    let dir = tmpdir("fence-durable");
    let mut store = DurableEngine::create(&dir, base_engine(17), options()).unwrap();
    store.insert(&[1.0; DIM]).unwrap();
    assert_eq!(store.fence_epoch(), 0);
    let (epoch, lsn) = store.fence().unwrap();
    assert_eq!((epoch, lsn), (1, 1), "fencing consumes the next LSN");
    store.insert(&[2.0; DIM]).unwrap();
    store.simulate_crash().unwrap();

    // The epoch record replays like any other WAL record.
    let (mut store, report) = DurableEngine::open(&dir, options()).unwrap();
    assert_eq!(report.fence_epoch, 1);
    assert_eq!(store.fence_epoch(), 1);

    // Compaction prunes the epoch record from the log, so the marker must
    // carry it across the checkpoint.
    let (epoch, _) = store.fence().unwrap();
    assert_eq!(epoch, 2);
    store.compact().unwrap();
    drop(store);
    let (store, report) = DurableEngine::open(&dir, options()).unwrap();
    assert_eq!(report.fence_epoch, 2, "marker must carry the epoch past compaction");
    assert_eq!(store.fence_epoch(), 2);
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn apply_replicated_rejects_non_monotonic_fencing_epochs() {
    let dir = tmpdir("fence-stale");
    let mut store = DurableEngine::create(&dir, base_engine(19), options()).unwrap();
    store.apply_replicated(0, &WalRecord::Epoch { epoch: 2 }).unwrap();
    assert_eq!(store.fence_epoch(), 2);
    let before = image(store.engine());

    // Equal and lower epochs are the fenced ex-leader talking: reject both.
    let stale = store.apply_replicated(1, &WalRecord::Epoch { epoch: 2 }).unwrap_err();
    assert!(matches!(stale, StoreError::Replay { lsn: 1, .. }), "{stale}");
    let lower = store.apply_replicated(1, &WalRecord::Epoch { epoch: 1 }).unwrap_err();
    assert!(matches!(lower, StoreError::Replay { lsn: 1, .. }), "{lower}");
    assert_eq!(store.fence_epoch(), 2);
    assert_eq!(store.next_lsn(), 1);
    assert_eq!(image(store.engine()), before);

    // A strictly higher epoch advances the fence.
    store.apply_replicated(1, &WalRecord::Epoch { epoch: 5 }).unwrap();
    assert_eq!(store.fence_epoch(), 5);
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn feed_stamps_the_epoch_and_bootstrap_carries_it() {
    let leader_dir = tmpdir("fence-feed");
    let follower_dir = tmpdir("fence-feed-follower");
    let mut leader = DurableEngine::create(&leader_dir, base_engine(23), options()).unwrap();
    leader.insert(&[1.0; DIM]).unwrap();
    let (epoch, _) = leader.fence().unwrap();
    assert_eq!(epoch, 1);
    leader.insert(&[2.0; DIM]).unwrap();

    // The batch header advertises whatever epoch the serving layer passes.
    let Feed::Batch { bytes, records, .. } = feed(&leader_dir, 0, 4096, epoch).unwrap() else {
        panic!("expected a batch");
    };
    assert_eq!(records, 3);
    let batch = decode_batch(&bytes, 0).unwrap();
    assert_eq!(batch.epoch, 1);

    // A follower replaying the batch inherits the fence from the WAL: the
    // leader has not checkpointed since fencing, so its bootstrap payload
    // is the pre-fence snapshot at LSN 0 and the epoch arrives via the log.
    let payload = read_bootstrap(&leader_dir).unwrap();
    let (_, snap_epoch, _) = decode_snapshot(&payload).unwrap();
    assert_eq!(snap_epoch, 0);
    let (mut follower, _) = bootstrap(&follower_dir, &payload, options()).unwrap();
    for (lsn, record) in batch.records {
        follower.apply_replicated(lsn, &record).unwrap();
    }
    assert_eq!(follower.fence_epoch(), 1);
    assert_eq!(image(follower.engine()), image(leader.engine()));

    // …and a post-fence checkpoint bakes it into the bootstrap payload.
    leader.compact().unwrap();
    drop(leader);
    let payload = read_bootstrap(&leader_dir).unwrap();
    let (_, snap_epoch, _) = decode_snapshot(&payload).unwrap();
    assert_eq!(snap_epoch, 1, "checkpointed bootstrap must carry the fence");
    let fresh_dir = tmpdir("fence-feed-fresh");
    let (fresh, report) = bootstrap(&fresh_dir, &payload, options()).unwrap();
    assert_eq!(report.fence_epoch, 1);
    assert_eq!(fresh.fence_epoch(), 1);
    drop(fresh);
    std::fs::remove_dir_all(&leader_dir).ok();
    std::fs::remove_dir_all(&follower_dir).ok();
    std::fs::remove_dir_all(&fresh_dir).ok();
}

#[test]
fn bootstrap_rejects_bad_payloads_and_existing_stores() {
    let leader_dir = tmpdir("bootstrap-leader");
    let store = DurableEngine::create(&leader_dir, base_engine(13), options()).unwrap();
    drop(store);
    let payload = read_bootstrap(&leader_dir).unwrap();

    // A corrupted image is rejected before anything is written.
    let target = tmpdir("bootstrap-target");
    let mut flipped = payload.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x20;
    assert!(matches!(bootstrap(&target, &flipped, options()), Err(StoreError::Corrupt { .. })));
    assert!(!DurableEngine::exists(&target), "rejected bootstrap must leave no store behind");

    // A valid payload bootstraps; bootstrapping over it is refused.
    let (follower, _) = bootstrap(&target, &payload, options()).unwrap();
    drop(follower);
    assert!(matches!(bootstrap(&target, &payload, options()), Err(StoreError::Missing(_))));
    std::fs::remove_dir_all(&leader_dir).ok();
    std::fs::remove_dir_all(&target).ok();
}
