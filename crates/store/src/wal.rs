//! The `LEMPWAL1` write-ahead log: length-prefixed, CRC-checked edit
//! records in rotating segment files.
//!
//! # Segment format
//!
//! A log directory holds segments named `wal-<start-lsn:016x>.log`:
//!
//! ```text
//! "LEMPWAL1"            magic (8 bytes)
//! u64 start_lsn         LSN of the first record (must match the name)
//! repeated records:
//!   u32 payload_len     little-endian
//!   u32 crc32(payload)  IEEE CRC-32 (see [`crate::crc`])
//!   payload:
//!     u8  kind          1 = insert, 2 = remove, 3 = rebuild, 4 = epoch
//!     u64 lsn           strictly sequential within and across segments
//!     …                 kind-specific body (see [`WalRecord`])
//! ```
//!
//! LSNs (log sequence numbers) number every applied edit `0, 1, 2, …` for
//! the lifetime of the store; a snapshot marker at LSN `n` means "records
//! `< n` are folded into the snapshot". Integers and floats use the same
//! little-endian codec as every engine image ([`lemp_core::persist`]).
//!
//! # Torn tails
//!
//! A crash can cut a segment mid-record. Scanning stops at the first frame
//! that is incomplete, fails its CRC, or decodes inconsistently; everything
//! before it is trusted, everything after is the *torn tail*. Whether a
//! torn tail is tolerable is the **caller's** decision by position: in the
//! last segment it is the expected signature of a crash (recovery drops it,
//! [`WalWriter::resume`] truncates it), while in any earlier segment it
//! would silently swallow acknowledged records, so recovery reports it as
//! [`StoreError::Corrupt`].

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::crc::crc32;
use crate::{StoreError, SyncPolicy};

/// Magic bytes opening every segment file.
pub const WAL_MAGIC: &[u8; 8] = b"LEMPWAL1";

/// Segment header length: magic + start LSN.
pub const HEADER_LEN: u64 = 16;

/// Frame prefix length: payload length + CRC.
const FRAME_PREFIX: usize = 8;

/// Upper bound on a single record payload (a record holds at most one
/// probe vector; 64 MiB is ≈ one million f64 coordinates). Lengths beyond
/// it are treated as corruption rather than allocation requests.
pub(crate) const MAX_PAYLOAD: u32 = 1 << 26;

const KIND_INSERT: u8 = 1;
const KIND_REMOVE: u8 = 2;
const KIND_REBUILD: u8 = 3;
const KIND_EPOCH: u8 = 4;

/// One durable edit, the unit the WAL stores and recovery replays.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A probe insertion. The id the engine assigned is stored so replay
    /// can verify it reproduces the exact same id sequence.
    Insert {
        /// Stable id the engine assigned at append time.
        id: u32,
        /// The inserted vector (validated finite before logging).
        vector: Vec<f64>,
    },
    /// Removal of a live probe id.
    Remove {
        /// The removed stable id.
        id: u32,
    },
    /// A full bucketization rebuild ([`lemp_core::DynamicLemp::rebuild`]).
    Rebuild,
    /// A fencing-epoch bump: `POST /promote` stamps the new (strictly
    /// larger) epoch into the log, so the fence is durable, replicates to
    /// downstream followers, and replays through crash recovery. The
    /// record does not touch the engine's probe set.
    Epoch {
        /// The new fencing epoch (strictly above every earlier one).
        epoch: u64,
    },
}

impl WalRecord {
    fn kind_tag(&self) -> u8 {
        match self {
            WalRecord::Insert { .. } => KIND_INSERT,
            WalRecord::Remove { .. } => KIND_REMOVE,
            WalRecord::Rebuild => KIND_REBUILD,
            WalRecord::Epoch { .. } => KIND_EPOCH,
        }
    }
}

/// File name of the segment whose first record carries `start_lsn`.
pub fn segment_name(start_lsn: u64) -> String {
    format!("wal-{start_lsn:016x}.log")
}

/// Parses a segment file name back to its start LSN.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Encodes one record into a complete frame (length + CRC + payload).
pub(crate) fn encode_frame(lsn: u64, record: &WalRecord) -> Vec<u8> {
    let mut payload = Vec::with_capacity(32);
    payload.push(record.kind_tag());
    payload.extend_from_slice(&lsn.to_le_bytes());
    match record {
        WalRecord::Insert { id, vector } => {
            payload.extend_from_slice(&id.to_le_bytes());
            payload.extend_from_slice(&(vector.len() as u64).to_le_bytes());
            for x in vector {
                payload.extend_from_slice(&x.to_le_bytes());
            }
        }
        WalRecord::Remove { id } => payload.extend_from_slice(&id.to_le_bytes()),
        WalRecord::Rebuild => {}
        WalRecord::Epoch { epoch } => payload.extend_from_slice(&epoch.to_le_bytes()),
    }
    let mut frame = Vec::with_capacity(FRAME_PREFIX + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Decodes a CRC-verified payload; errors describe the defect for the torn
/// diagnostic.
pub(crate) fn decode_payload(payload: &[u8]) -> Result<(u64, WalRecord), String> {
    let take_u64 = |bytes: &[u8], at: usize, what: &str| -> Result<u64, String> {
        bytes
            .get(at..at + 8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte slice")))
            .ok_or_else(|| format!("payload too short for {what}"))
    };
    let take_u32 = |bytes: &[u8], at: usize, what: &str| -> Result<u32, String> {
        bytes
            .get(at..at + 4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4-byte slice")))
            .ok_or_else(|| format!("payload too short for {what}"))
    };
    let kind = *payload.first().ok_or("empty payload")?;
    let lsn = take_u64(payload, 1, "lsn")?;
    let record = match kind {
        KIND_INSERT => {
            let id = take_u32(payload, 9, "insert id")?;
            let dim = take_u64(payload, 13, "insert dim")? as usize;
            let expect = 13 + 8 + 8 * dim;
            if payload.len() != expect {
                return Err(format!(
                    "insert payload holds {} bytes, dim {dim} needs {expect}",
                    payload.len()
                ));
            }
            let mut vector = Vec::with_capacity(dim);
            for i in 0..dim {
                let bits = take_u64(payload, 21 + 8 * i, "insert coordinate")?;
                vector.push(f64::from_bits(bits));
            }
            WalRecord::Insert { id, vector }
        }
        KIND_REMOVE => {
            if payload.len() != 13 {
                return Err(format!("remove payload holds {} bytes, needs 13", payload.len()));
            }
            WalRecord::Remove { id: take_u32(payload, 9, "remove id")? }
        }
        KIND_REBUILD => {
            if payload.len() != 9 {
                return Err(format!("rebuild payload holds {} bytes, needs 9", payload.len()));
            }
            WalRecord::Rebuild
        }
        KIND_EPOCH => {
            if payload.len() != 17 {
                return Err(format!("epoch payload holds {} bytes, needs 17", payload.len()));
            }
            WalRecord::Epoch { epoch: take_u64(payload, 9, "fencing epoch")? }
        }
        other => return Err(format!("unknown record kind {other}")),
    };
    Ok((lsn, record))
}

/// Scan result of one segment file.
#[derive(Debug)]
pub struct SegmentScan {
    /// The segment's start LSN (from its validated header).
    pub start_lsn: u64,
    /// Fully verified records, in LSN order.
    pub records: Vec<(u64, WalRecord)>,
    /// Byte length of the verified prefix (header + whole good frames) —
    /// where [`WalWriter::resume`] truncates.
    pub valid_len: u64,
    /// Why the scan stopped early, if it did (the torn-tail diagnostic).
    pub torn: Option<String>,
}

/// Reads and verifies one segment. Only a broken *header* is an error —
/// a header names the segment, so without one the file cannot be trusted
/// at all; everything past the header degrades gracefully into
/// [`SegmentScan::torn`] and the caller decides by position whether that
/// is a crash signature or corruption.
///
/// # Errors
/// [`StoreError::Io`] on read failures, [`StoreError::Corrupt`] on a
/// missing/mismatched header.
pub fn read_segment(path: &Path) -> Result<SegmentScan, StoreError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let corrupt = |offset: u64, detail: String| StoreError::Corrupt {
        path: path.to_path_buf(),
        offset,
        detail,
    };
    if bytes.len() < HEADER_LEN as usize {
        return Err(corrupt(0, format!("file holds {} bytes, header needs 16", bytes.len())));
    }
    if &bytes[..8] != WAL_MAGIC {
        return Err(corrupt(0, format!("bad magic {:?}", &bytes[..8])));
    }
    let start_lsn = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
    let named = path.file_name().and_then(|n| n.to_str()).and_then(parse_segment_name);
    if named != Some(start_lsn) {
        return Err(corrupt(8, format!("header start LSN {start_lsn} does not match the name")));
    }

    let mut records = Vec::new();
    let mut offset = HEADER_LEN as usize;
    let mut next_lsn = start_lsn;
    let mut torn = None;
    while offset < bytes.len() {
        let Some(prefix) = bytes.get(offset..offset + FRAME_PREFIX) else {
            torn = Some(format!("{} trailing bytes, frame prefix needs 8", bytes.len() - offset));
            break;
        };
        let len = u32::from_le_bytes(prefix[..4].try_into().expect("4-byte slice"));
        let crc = u32::from_le_bytes(prefix[4..8].try_into().expect("4-byte slice"));
        if len > MAX_PAYLOAD {
            torn = Some(format!("implausible payload length {len}"));
            break;
        }
        let Some(payload) = bytes.get(offset + FRAME_PREFIX..offset + FRAME_PREFIX + len as usize)
        else {
            torn = Some(format!("payload of {len} bytes cut short"));
            break;
        };
        if crc32(payload) != crc {
            torn = Some("payload fails its CRC".into());
            break;
        }
        match decode_payload(payload) {
            Ok((lsn, record)) if lsn == next_lsn => {
                records.push((lsn, record));
                next_lsn += 1;
            }
            Ok((lsn, _)) => {
                torn = Some(format!("record carries LSN {lsn}, expected {next_lsn}"));
                break;
            }
            Err(detail) => {
                torn = Some(detail);
                break;
            }
        }
        offset += FRAME_PREFIX + len as usize;
    }
    let valid_len = offset as u64;
    Ok(SegmentScan { start_lsn, records, valid_len, torn })
}

/// Lists a directory's segments as `(start_lsn, path)`, ascending.
///
/// # Errors
/// Propagates directory-read failures.
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let mut segments = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(lsn) = entry.file_name().to_str().and_then(parse_segment_name) {
            segments.push((lsn, entry.path()));
        }
    }
    segments.sort_unstable_by_key(|&(lsn, _)| lsn);
    Ok(segments)
}

/// Monotonic counters of one [`WalWriter`], exported by `lemp-serve`'s
/// `GET /stats` in durable mode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended (durable or not).
    pub records_appended: u64,
    /// Records covered by an fsync — the crash-survivable watermark.
    pub records_durable: u64,
    /// Frame bytes appended across all segments.
    pub bytes_appended: u64,
    /// `fsync` calls issued on segment files.
    pub fsyncs: u64,
    /// Segment files this writer created (rotation + creation).
    pub segments_created: u64,
    /// Bytes in the active segment (header + frames, flushed or pending).
    pub active_segment_bytes: u64,
}

/// Appends records to the active segment of a log directory, rotating at
/// a size threshold and fsyncing per the configured [`SyncPolicy`].
///
/// The writer tracks the *durable watermark* — the byte length of the
/// active segment that has reached an fsync — which makes crash injection
/// deterministic: [`WalWriter::simulate_crash`] discards the application
/// buffer and truncates the file to that watermark, exactly the state a
/// power loss leaves behind under a strict disk model.
///
/// Any append/flush/fsync failure **poisons** the writer: a partial
/// `write` leaves the file cursor past the tracked offsets, so writing
/// more frames would interleave garbage with acknowledged records, and a
/// failed `fsync` may have dropped dirty pages, so a later successful one
/// would falsely promote lost records to durable. Every call after a
/// failure returns [`StoreError::Poisoned`]; reopening the store recovers
/// (resume truncates at the last verified frame).
#[derive(Debug)]
pub struct WalWriter {
    dir: PathBuf,
    file: File,
    segment_path: PathBuf,
    segment_start: u64,
    next_lsn: u64,
    /// Bytes of the active segment handed to the OS.
    written: u64,
    /// Bytes of the active segment covered by an fsync.
    synced: u64,
    /// Encoded frames not yet written to the file (lost on crash).
    pending: Vec<u8>,
    records_pending_or_unsynced: u64,
    policy: SyncPolicy,
    segment_bytes: u64,
    stats: WalStats,
    /// Set by the first I/O failure; refuses all further mutation.
    failed: bool,
}

impl WalWriter {
    /// Creates a fresh segment `wal-<start_lsn>.log` in `dir` and returns
    /// a writer positioned at `start_lsn`. The header (and the directory
    /// entry) are fsynced before the writer is handed out.
    ///
    /// # Errors
    /// [`StoreError::Io`] on filesystem failures, including an already
    /// existing segment of the same name.
    pub fn create(
        dir: &Path,
        start_lsn: u64,
        policy: SyncPolicy,
        segment_bytes: u64,
    ) -> Result<Self, StoreError> {
        let segment_path = dir.join(segment_name(start_lsn));
        let mut file = OpenOptions::new().write(true).create_new(true).open(&segment_path)?;
        file.write_all(WAL_MAGIC)?;
        file.write_all(&start_lsn.to_le_bytes())?;
        file.sync_all()?;
        sync_dir(dir)?;
        let stats = WalStats {
            segments_created: 1,
            fsyncs: 1,
            active_segment_bytes: HEADER_LEN,
            ..Default::default()
        };
        Ok(Self {
            dir: dir.to_path_buf(),
            file,
            segment_path,
            segment_start: start_lsn,
            next_lsn: start_lsn,
            written: HEADER_LEN,
            synced: HEADER_LEN,
            pending: Vec::new(),
            records_pending_or_unsynced: 0,
            policy,
            segment_bytes,
            stats,
            failed: false,
        })
    }

    /// Resumes appending to an existing segment after recovery: the file
    /// is truncated to `valid_len` (**torn-tail truncation** — everything
    /// past the last verified frame is discarded) and the writer continues
    /// at `next_lsn`.
    ///
    /// # Errors
    /// [`StoreError::Io`] on filesystem failures.
    pub fn resume(
        dir: &Path,
        scan: &SegmentScan,
        path: &Path,
        policy: SyncPolicy,
        segment_bytes: u64,
    ) -> Result<Self, StoreError> {
        let mut file = OpenOptions::new().write(true).open(path)?;
        file.set_len(scan.valid_len)?;
        file.seek(SeekFrom::End(0))?;
        file.sync_all()?;
        let stats =
            WalStats { fsyncs: 1, active_segment_bytes: scan.valid_len, ..Default::default() };
        Ok(Self {
            dir: dir.to_path_buf(),
            file,
            segment_path: path.to_path_buf(),
            segment_start: scan.start_lsn,
            next_lsn: scan.start_lsn + scan.records.len() as u64,
            written: scan.valid_len,
            synced: scan.valid_len,
            pending: Vec::new(),
            records_pending_or_unsynced: 0,
            policy,
            segment_bytes,
            stats,
            failed: false,
        })
    }

    /// The LSN the next append will carry.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Start LSN of the active segment.
    pub fn segment_start(&self) -> u64 {
        self.segment_start
    }

    /// Counter snapshot.
    pub fn stats(&self) -> WalStats {
        let mut stats = self.stats;
        stats.active_segment_bytes = self.written + self.pending.len() as u64;
        stats
    }

    /// Test hook: marks the writer failed exactly as an I/O error would.
    #[cfg(test)]
    fn poison_for_test(&mut self) {
        self.failed = true;
    }

    /// Refuses to touch a writer an earlier I/O failure poisoned.
    fn guard(&self) -> Result<(), StoreError> {
        if self.failed {
            return Err(StoreError::Poisoned);
        }
        Ok(())
    }

    /// Runs a mutation, poisoning the writer on any failure.
    fn poisoning<T>(
        &mut self,
        op: impl FnOnce(&mut Self) -> Result<T, StoreError>,
    ) -> Result<T, StoreError> {
        self.guard()?;
        let result = op(self);
        if result.is_err() {
            self.failed = true;
        }
        result
    }

    /// Appends one record, applies the sync policy, and rotates the
    /// segment when it crossed the size threshold. Returns the record's
    /// LSN.
    ///
    /// # Errors
    /// [`StoreError::Io`] on write/fsync failures;
    /// [`StoreError::Poisoned`] after any earlier failure.
    pub fn append(&mut self, record: &WalRecord) -> Result<u64, StoreError> {
        self.poisoning(|w| w.append_inner(record))
    }

    fn append_inner(&mut self, record: &WalRecord) -> Result<u64, StoreError> {
        let lsn = self.next_lsn;
        let frame = encode_frame(lsn, record);
        self.stats.bytes_appended += frame.len() as u64;
        self.pending.extend_from_slice(&frame);
        self.next_lsn += 1;
        self.stats.records_appended += 1;
        self.records_pending_or_unsynced += 1;
        match self.policy {
            SyncPolicy::Always => self.sync_inner()?,
            SyncPolicy::EveryN(n) => {
                if self.records_pending_or_unsynced >= n.max(1) {
                    self.sync_inner()?;
                }
            }
            SyncPolicy::Never => {
                // Keep the application buffer bounded; the bytes reach the
                // OS but no fsync is issued (they die with the machine, not
                // with the process).
                if self.pending.len() >= 1 << 20 {
                    self.flush()?;
                }
            }
        }
        if self.written + self.pending.len() as u64 >= self.segment_bytes {
            self.rotate_inner()?;
        }
        Ok(lsn)
    }

    /// Writes pending frames to the OS without fsyncing.
    fn flush(&mut self) -> Result<(), StoreError> {
        if !self.pending.is_empty() {
            self.file.write_all(&self.pending)?;
            self.written += self.pending.len() as u64;
            self.pending.clear();
        }
        Ok(())
    }

    /// Flushes and fsyncs the active segment — after this returns, every
    /// appended record survives [`WalWriter::simulate_crash`].
    ///
    /// # Errors
    /// [`StoreError::Io`] on write/fsync failures;
    /// [`StoreError::Poisoned`] after any earlier failure.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.poisoning(Self::sync_inner)
    }

    fn sync_inner(&mut self) -> Result<(), StoreError> {
        self.flush()?;
        if self.synced < self.written || self.records_pending_or_unsynced > 0 {
            self.file.sync_all()?;
            self.stats.fsyncs += 1;
            self.synced = self.written;
            self.stats.records_durable = self.stats.records_appended;
            self.records_pending_or_unsynced = 0;
        }
        Ok(())
    }

    /// Seals the active segment (flush + fsync) and starts a fresh one at
    /// the current `next_lsn`. A no-op when the active segment is still
    /// empty and already starts there.
    ///
    /// # Errors
    /// [`StoreError::Io`] on filesystem failures;
    /// [`StoreError::Poisoned`] after any earlier failure.
    pub fn rotate(&mut self) -> Result<(), StoreError> {
        self.poisoning(Self::rotate_inner)
    }

    fn rotate_inner(&mut self) -> Result<(), StoreError> {
        if self.segment_start == self.next_lsn
            && self.written + (self.pending.len() as u64) == HEADER_LEN
        {
            return Ok(());
        }
        self.sync_inner()?;
        let start_lsn = self.next_lsn;
        let segment_path = self.dir.join(segment_name(start_lsn));
        let mut file = OpenOptions::new().write(true).create_new(true).open(&segment_path)?;
        file.write_all(WAL_MAGIC)?;
        file.write_all(&start_lsn.to_le_bytes())?;
        file.sync_all()?;
        sync_dir(&self.dir)?;
        self.file = file;
        self.segment_path = segment_path;
        self.segment_start = start_lsn;
        self.written = HEADER_LEN;
        self.synced = HEADER_LEN;
        self.stats.segments_created += 1;
        self.stats.fsyncs += 2;
        Ok(())
    }

    /// **Crash injection**: consumes the writer as a power loss would —
    /// the application buffer is discarded and the active segment file is
    /// truncated to the durable (fsynced) watermark. Deterministic by
    /// construction, this is the fault point the crash-injection suite
    /// sweeps.
    ///
    /// # Errors
    /// [`StoreError::Io`] on truncation failures.
    pub fn simulate_crash(mut self) -> Result<(), StoreError> {
        self.pending.clear();
        self.file.set_len(self.synced)?;
        self.file.sync_all()?;
        Ok(())
    }
}

/// Fsyncs a directory so renames/creates/deletes inside it are durable.
pub(crate) fn sync_dir(dir: &Path) -> Result<(), StoreError> {
    File::open(dir)?.sync_all()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lemp-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Insert { id: 7, vector: vec![1.0, -2.5, 0.25] },
            WalRecord::Remove { id: 3 },
            WalRecord::Rebuild,
            WalRecord::Insert { id: 8, vector: vec![0.0; 5] },
            WalRecord::Epoch { epoch: 3 },
        ]
    }

    #[test]
    fn segment_names_roundtrip() {
        assert_eq!(segment_name(0), "wal-0000000000000000.log");
        assert_eq!(parse_segment_name("wal-0000000000000000.log"), Some(0));
        assert_eq!(parse_segment_name(&segment_name(0xdead_beef)), Some(0xdead_beef));
        assert_eq!(parse_segment_name("wal-xyz.log"), None);
        assert_eq!(parse_segment_name("snap-0000000000000000.eng"), None);
        assert_eq!(parse_segment_name("wal-00.log"), None);
    }

    #[test]
    fn frames_roundtrip_through_a_segment() {
        let dir = tmpdir("roundtrip");
        let mut writer = WalWriter::create(&dir, 5, SyncPolicy::Always, 1 << 20).unwrap();
        for (i, record) in sample_records().iter().enumerate() {
            assert_eq!(writer.append(record).unwrap(), 5 + i as u64);
        }
        let stats = writer.stats();
        assert_eq!(stats.records_appended, 5);
        assert_eq!(stats.records_durable, 5);
        drop(writer);
        let scan = read_segment(&dir.join(segment_name(5))).unwrap();
        assert_eq!(scan.start_lsn, 5);
        assert!(scan.torn.is_none());
        let got: Vec<WalRecord> = scan.records.iter().map(|(_, r)| r.clone()).collect();
        assert_eq!(got, sample_records());
        let lsns: Vec<u64> = scan.records.iter().map(|&(l, _)| l).collect();
        assert_eq!(lsns, vec![5, 6, 7, 8, 9]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_splits_segments_at_the_threshold() {
        let dir = tmpdir("rotate");
        // Tiny threshold: every record rotates.
        let mut writer = WalWriter::create(&dir, 0, SyncPolicy::Always, 64).unwrap();
        for record in sample_records() {
            writer.append(&record).unwrap();
        }
        assert!(writer.stats().segments_created >= 3, "{:?}", writer.stats());
        drop(writer);
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() >= 3);
        // Contiguity: each segment starts where the previous ended.
        let mut expect = 0;
        let mut all = Vec::new();
        for (start, path) in &segments {
            let scan = read_segment(path).unwrap();
            assert_eq!(*start, expect, "gap before {}", path.display());
            assert!(scan.torn.is_none());
            expect += scan.records.len() as u64;
            all.extend(scan.records.into_iter().map(|(_, r)| r));
        }
        assert_eq!(all, sample_records());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sync_policies_gate_the_durable_watermark() {
        let dir = tmpdir("sync");
        let mut writer = WalWriter::create(&dir, 0, SyncPolicy::EveryN(3), 1 << 20).unwrap();
        writer.append(&WalRecord::Remove { id: 0 }).unwrap();
        writer.append(&WalRecord::Remove { id: 1 }).unwrap();
        assert_eq!(writer.stats().records_durable, 0, "below the batch size");
        writer.append(&WalRecord::Remove { id: 2 }).unwrap();
        assert_eq!(writer.stats().records_durable, 3, "batch boundary fsyncs");
        writer.append(&WalRecord::Remove { id: 3 }).unwrap();
        writer.sync().unwrap();
        assert_eq!(writer.stats().records_durable, 4, "explicit sync");

        let mut never =
            WalWriter::create(&tmpdir("sync-never"), 0, SyncPolicy::Never, 1 << 20).unwrap();
        for id in 0..10 {
            never.append(&WalRecord::Remove { id }).unwrap();
        }
        assert_eq!(never.stats().records_durable, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn simulated_crash_drops_exactly_the_unsynced_tail() {
        let dir = tmpdir("crash");
        let mut writer = WalWriter::create(&dir, 0, SyncPolicy::EveryN(2), 1 << 20).unwrap();
        for id in 0..5 {
            writer.append(&WalRecord::Remove { id }).unwrap();
        }
        // 5 appends, sync every 2: records 0..4 durable, record 4 pending.
        assert_eq!(writer.stats().records_durable, 4);
        writer.simulate_crash().unwrap();
        let scan = read_segment(&dir.join(segment_name(0))).unwrap();
        assert_eq!(scan.records.len(), 4);
        assert!(scan.torn.is_none(), "truncation lands on a frame boundary");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_truncates_a_torn_tail_and_continues() {
        let dir = tmpdir("resume");
        let mut writer = WalWriter::create(&dir, 0, SyncPolicy::Always, 1 << 20).unwrap();
        for id in 0..3 {
            writer.append(&WalRecord::Remove { id }).unwrap();
        }
        drop(writer);
        // Tear the tail: append garbage bytes.
        let path = dir.join(segment_name(0));
        let mut bytes = std::fs::read(&path).unwrap();
        let good_len = bytes.len();
        bytes.extend_from_slice(&[0x17; 11]);
        std::fs::write(&path, &bytes).unwrap();
        let scan = read_segment(&path).unwrap();
        assert_eq!(scan.records.len(), 3);
        assert!(scan.torn.is_some());
        assert_eq!(scan.valid_len, good_len as u64);
        let mut writer =
            WalWriter::resume(&dir, &scan, &path, SyncPolicy::Always, 1 << 20).unwrap();
        assert_eq!(writer.next_lsn(), 3);
        writer.append(&WalRecord::Rebuild).unwrap();
        drop(writer);
        let scan = read_segment(&path).unwrap();
        assert!(scan.torn.is_none(), "torn bytes replaced by the new record");
        assert_eq!(scan.records.len(), 4);
        assert_eq!(scan.records[3], (3, WalRecord::Rebuild));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_poisoned_writer_refuses_every_mutation() {
        let dir = tmpdir("poison");
        let mut writer = WalWriter::create(&dir, 0, SyncPolicy::Always, 1 << 20).unwrap();
        writer.append(&WalRecord::Rebuild).unwrap();
        writer.poison_for_test();
        assert!(matches!(writer.append(&WalRecord::Rebuild), Err(StoreError::Poisoned)));
        assert!(matches!(writer.sync(), Err(StoreError::Poisoned)));
        assert!(matches!(writer.rotate(), Err(StoreError::Poisoned)));
        // The durable prefix on disk is untouched — reopening recovers it.
        let scan = read_segment(&dir.join(segment_name(0))).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(scan.torn.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_frames_stop_the_scan_without_panicking() {
        let dir = tmpdir("corrupt");
        let mut writer = WalWriter::create(&dir, 0, SyncPolicy::Always, 1 << 20).unwrap();
        for record in sample_records() {
            writer.append(&record).unwrap();
        }
        drop(writer);
        let path = dir.join(segment_name(0));
        let clean = std::fs::read(&path).unwrap();
        // Flip one byte at every offset past the header: the scan must
        // never panic, and must never *invent* records.
        for offset in HEADER_LEN as usize..clean.len() {
            let mut bad = clean.clone();
            bad[offset] ^= 0x41;
            std::fs::write(&path, &bad).unwrap();
            let scan = read_segment(&path).unwrap();
            assert!(scan.records.len() <= 5, "offset {offset} grew the log");
            for (expect, got) in sample_records().iter().zip(scan.records.iter()) {
                // A flip inside a float payload still fails the CRC, so
                // every surviving record is byte-identical to what was
                // appended.
                assert_eq!(&got.1, expect, "offset {offset} mutated a record");
            }
        }
        // Header corruption is a hard error, not a scan result.
        for offset in 0..HEADER_LEN as usize {
            let mut bad = clean.clone();
            bad[offset] ^= 0x41;
            std::fs::write(&path, &bad).unwrap();
            assert!(matches!(read_segment(&path), Err(StoreError::Corrupt { .. })));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
