//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the per-record
//! checksum of the `LEMPWAL1` write-ahead log and the `CHECKPOINT` marker.
//!
//! The build environment has no crates.io access (the same constraint
//! behind the workspace's `vendor/` stand-ins), so the classic table-driven
//! implementation lives here: 256-entry table built at first use, one table
//! lookup per byte. This is the ubiquitous CRC-32 of zlib/PNG/Ethernet, so
//! the test vectors below pin compatibility with every external tool that
//! might ever inspect a segment.

/// The 256-entry lookup table for the reflected IEEE polynomial.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            }
            *slot = crc;
        }
        table
    })
}

/// CRC-32 of `bytes` (IEEE, reflected, init/xorout `0xFFFFFFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The check value every CRC-32 catalogue lists.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
    }

    #[test]
    fn detects_single_bit_flips() {
        let payload = b"LEMPWAL1 record payload with enough bytes to matter";
        let reference = crc32(payload);
        let mut copy = payload.to_vec();
        for byte in 0..copy.len() {
            for bit in 0..8 {
                copy[byte] ^= 1 << bit;
                assert_ne!(crc32(&copy), reference, "flip at {byte}:{bit} undetected");
                copy[byte] ^= 1 << bit;
            }
        }
        assert_eq!(crc32(&copy), reference);
    }
}
