//! Wire framing and disk-side plumbing for leader/follower replication.
//!
//! Replication ships the store's own durability artifacts over the wire —
//! there is no second log format. A follower bootstraps from the leader's
//! checkpoint snapshot, then tail-follows the leader's `LEMPWAL1` log and
//! applies each record through the same self-verifying replay path crash
//! recovery uses, so a replica is correct for exactly the reasons a
//! recovered store is.
//!
//! # Wire framing
//!
//! Two self-describing binary messages, little-endian throughout:
//!
//! **Snapshot** (`LEMPSNP2`) — the bootstrap payload:
//!
//! ```text
//! magic "LEMPSNP2" (8) | checkpoint LSN (u64) | fencing epoch (u64) |
//! image length (u64) | image CRC-32 (u32) |
//! LEMPDYN1 engine image (image length bytes)
//! ```
//!
//! **Batch** (`LEMPREP2`) — one tail-follow response:
//!
//! ```text
//! magic "LEMPREP2" (8) | from LSN (u64) | leader next LSN (u64) |
//! fencing epoch (u64) | record count (u32) | header CRC-32 (u32) |
//! count WAL frames
//! ```
//!
//! Each frame is byte-identical to its on-disk `LEMPWAL1` form
//! (`payload length (u32) | payload CRC-32 (u32) | payload`), and record
//! LSNs are strictly sequential from the batch's *from LSN* — so the
//! follower's append path reproduces the leader's log bit for bit. The
//! header CRC covers the 36 bytes before it; together with the per-frame
//! CRCs every single-bit corruption of a batch is detected. `leader next
//! LSN` is the leader's log end at feed time, which is what the follower's
//! `lag_lsn` is computed from. The *fencing epoch* is the sender's fence
//! at feed time: a follower whose store carries a higher epoch refuses the
//! batch outright (the sender is a fenced ex-leader whose log may have
//! diverged past the fence point).
//!
//! Decoding is strict: a bad magic, a mismatched *from LSN*, a count that
//! disagrees with the frames present, trailing bytes, a CRC failure, or a
//! non-sequential LSN all surface as [`StoreError::Corrupt`] — a truncated
//! or hostile stream can never yield fewer (or different) records than the
//! header promised.
//!
//! # Leader side
//!
//! [`feed`] serves the tail: it reads the log segments on disk and
//! re-encodes the records at or past the requested LSN into one batch.
//! Only *flushed* frames are visible — a record the leader has not yet
//! written to its own log is not replicated, so a follower can never be
//! ahead of what the leader would itself recover. A request below the
//! first on-disk record (the leader compacted past it) is [`Feed::Gap`]:
//! the follower must re-bootstrap. [`read_bootstrap`] packages the
//! marker-pinned checkpoint snapshot for bootstrap.
//!
//! # Follower side
//!
//! [`bootstrap`] materializes a fresh store directory from a snapshot
//! payload (image + marker + empty log segment, the exact layout
//! [`DurableEngine::create`] leaves) and opens it through the ordinary
//! recovery path. Bootstrap is not crash-atomic: a directory torn mid-
//! bootstrap should be deleted and bootstrapped again (nothing has been
//! acknowledged from it). [`DurableEngine::apply_replicated`] then applies
//! each tailed record log-then-apply at the follower's watermark,
//! rejecting duplicate, stale, or gapped LSNs as structured
//! [`StoreError::Replay`] errors.

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

use lemp_core::DynamicLemp;

use crate::crc::crc32;
use crate::store::{
    list_snapshots, read_marker, snapshot_name, Marker, RecoveryReport, StoreOptions,
};
use crate::wal::{
    encode_frame, list_segments, read_segment, sync_dir, WalRecord, WalWriter, MAX_PAYLOAD,
};
use crate::{store::write_marker, DurableEngine, StoreError};

/// Magic bytes opening every replication batch (`LEMPREP2` added the
/// fencing epoch).
pub const REPL_MAGIC: &[u8; 8] = b"LEMPREP2";

/// Magic bytes opening every bootstrap snapshot payload (`LEMPSNP2` added
/// the fencing epoch).
pub const SNAP_MAGIC: &[u8; 8] = b"LEMPSNP2";

/// Batch header length: magic + from LSN + leader next LSN + fencing
/// epoch + count + CRC.
const BATCH_HEADER: usize = 40;

/// Snapshot header length: magic + LSN + fencing epoch + image length +
/// image CRC.
const SNAP_HEADER: usize = 36;

/// Upper bound on records per batch — a hostile count cannot size an
/// allocation, and a leader feed stays bounded per long-poll round trip.
pub const MAX_BATCH_RECORDS: usize = 4096;

/// Stand-in path used in [`StoreError::Corrupt`] for defects in a decoded
/// wire message (which has no file behind it).
fn stream_path() -> PathBuf {
    PathBuf::from("<replication stream>")
}

fn corrupt(offset: u64, detail: String) -> StoreError {
    StoreError::Corrupt { path: stream_path(), offset, detail }
}

/// A decoded tail-follow batch.
#[derive(Debug)]
pub struct ReplBatch {
    /// The LSN the batch starts at (== the follower's requested watermark).
    pub from_lsn: u64,
    /// The leader's log end when the batch was built — `lag_lsn` is
    /// `leader_next_lsn - (from_lsn + records.len())`.
    pub leader_next_lsn: u64,
    /// The sender's fencing epoch at feed time — the receiver rejects a
    /// batch below its own fence.
    pub epoch: u64,
    /// The records, with strictly sequential LSNs from `from_lsn`.
    pub records: Vec<(u64, WalRecord)>,
}

/// Encodes one batch stamped with the sender's fencing `epoch`. `records`
/// must carry strictly sequential LSNs starting at `from_lsn`
/// (debug-asserted; [`decode_batch`] enforces it on the receiving side
/// regardless).
pub fn encode_batch(
    from_lsn: u64,
    leader_next_lsn: u64,
    epoch: u64,
    records: &[(u64, WalRecord)],
) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(BATCH_HEADER + 64 * records.len());
    bytes.extend_from_slice(REPL_MAGIC);
    bytes.extend_from_slice(&from_lsn.to_le_bytes());
    bytes.extend_from_slice(&leader_next_lsn.to_le_bytes());
    bytes.extend_from_slice(&epoch.to_le_bytes());
    bytes.extend_from_slice(&(records.len() as u32).to_le_bytes());
    let header_crc = crc32(&bytes[..BATCH_HEADER - 4]);
    bytes.extend_from_slice(&header_crc.to_le_bytes());
    for (i, (lsn, record)) in records.iter().enumerate() {
        debug_assert_eq!(*lsn, from_lsn + i as u64, "batch LSNs must be sequential");
        bytes.extend_from_slice(&encode_frame(*lsn, record));
    }
    bytes
}

/// Decodes and fully verifies one batch. `expect_from` is the watermark
/// the follower asked for — a batch answering a different LSN is rejected.
///
/// # Errors
/// [`StoreError::Corrupt`] on any framing defect: bad magic, header CRC
/// failure, mismatched from-LSN, truncated or oversized frames, per-frame
/// CRC failures, non-sequential LSNs, a count that disagrees with the
/// frames present, or trailing bytes.
pub fn decode_batch(bytes: &[u8], expect_from: u64) -> Result<ReplBatch, StoreError> {
    if bytes.len() < BATCH_HEADER {
        return Err(corrupt(0, format!("batch holds {} bytes, header needs 40", bytes.len())));
    }
    if &bytes[..8] != REPL_MAGIC {
        return Err(corrupt(0, format!("bad batch magic {:?}", &bytes[..8])));
    }
    let header_crc = u32::from_le_bytes(bytes[36..40].try_into().expect("4-byte slice"));
    if crc32(&bytes[..36]) != header_crc {
        return Err(corrupt(36, "batch header fails its CRC".into()));
    }
    let from_lsn = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
    let leader_next_lsn = u64::from_le_bytes(bytes[16..24].try_into().expect("8-byte slice"));
    let epoch = u64::from_le_bytes(bytes[24..32].try_into().expect("8-byte slice"));
    let count = u32::from_le_bytes(bytes[32..36].try_into().expect("4-byte slice")) as usize;
    if from_lsn != expect_from {
        return Err(corrupt(8, format!("batch answers LSN {from_lsn}, asked for {expect_from}")));
    }
    if count > MAX_BATCH_RECORDS {
        return Err(corrupt(32, format!("implausible record count {count}")));
    }
    let mut records = Vec::with_capacity(count);
    let mut offset = BATCH_HEADER;
    let mut next_lsn = from_lsn;
    while records.len() < count {
        let Some(prefix) = bytes.get(offset..offset + 8) else {
            return Err(corrupt(
                offset as u64,
                format!("batch truncated: {} of {count} records present", records.len()),
            ));
        };
        let len = u32::from_le_bytes(prefix[..4].try_into().expect("4-byte slice"));
        let frame_crc = u32::from_le_bytes(prefix[4..8].try_into().expect("4-byte slice"));
        if len > MAX_PAYLOAD {
            return Err(corrupt(offset as u64, format!("implausible payload length {len}")));
        }
        let Some(payload) = bytes.get(offset + 8..offset + 8 + len as usize) else {
            return Err(corrupt(offset as u64, format!("payload of {len} bytes cut short")));
        };
        if crc32(payload) != frame_crc {
            return Err(corrupt(offset as u64, "payload fails its CRC".into()));
        }
        let (lsn, record) =
            crate::wal::decode_payload(payload).map_err(|detail| corrupt(offset as u64, detail))?;
        if lsn != next_lsn {
            return Err(corrupt(
                offset as u64,
                format!("record carries LSN {lsn}, expected {next_lsn}"),
            ));
        }
        records.push((lsn, record));
        next_lsn += 1;
        offset += 8 + len as usize;
    }
    if offset != bytes.len() {
        return Err(corrupt(
            offset as u64,
            format!("{} trailing bytes after the last record", bytes.len() - offset),
        ));
    }
    Ok(ReplBatch { from_lsn, leader_next_lsn, epoch, records })
}

/// Encodes a bootstrap snapshot payload around a `LEMPDYN1` engine image
/// taken at checkpoint `lsn` under fencing `epoch`.
pub fn encode_snapshot(lsn: u64, epoch: u64, image: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(SNAP_HEADER + image.len());
    bytes.extend_from_slice(SNAP_MAGIC);
    bytes.extend_from_slice(&lsn.to_le_bytes());
    bytes.extend_from_slice(&epoch.to_le_bytes());
    bytes.extend_from_slice(&(image.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&crc32(image).to_le_bytes());
    bytes.extend_from_slice(image);
    bytes
}

/// Decodes a bootstrap snapshot payload back to `(checkpoint LSN, fencing
/// epoch, image)`. The image bytes are CRC-verified here; [`bootstrap`]
/// additionally decodes them through `lemp-core`'s persistence validation
/// before writing anything to disk.
///
/// # Errors
/// [`StoreError::Corrupt`] on bad magic, truncation, a length that
/// disagrees with the bytes present, or a CRC failure.
pub fn decode_snapshot(bytes: &[u8]) -> Result<(u64, u64, Vec<u8>), StoreError> {
    if bytes.len() < SNAP_HEADER {
        return Err(corrupt(0, format!("snapshot holds {} bytes, header needs 36", bytes.len())));
    }
    if &bytes[..8] != SNAP_MAGIC {
        return Err(corrupt(0, format!("bad snapshot magic {:?}", &bytes[..8])));
    }
    let lsn = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
    let epoch = u64::from_le_bytes(bytes[16..24].try_into().expect("8-byte slice"));
    let image_len = u64::from_le_bytes(bytes[24..32].try_into().expect("8-byte slice")) as usize;
    let crc = u32::from_le_bytes(bytes[32..36].try_into().expect("4-byte slice"));
    let image = &bytes[SNAP_HEADER..];
    if image.len() != image_len {
        return Err(corrupt(
            24,
            format!("snapshot declares {image_len} image bytes, {} present", image.len()),
        ));
    }
    if crc32(image) != crc {
        return Err(corrupt(32, "snapshot image fails its CRC".into()));
    }
    Ok((lsn, epoch, image.to_vec()))
}

/// What [`feed`] hands back for one tail-follow request.
#[derive(Debug)]
pub enum Feed {
    /// An encoded [`ReplBatch`] (possibly empty when the follower is
    /// caught up) plus the record count it carries and the leader's log
    /// end, so the caller can account without re-decoding its own bytes.
    Batch {
        /// The encoded `LEMPREP1` message.
        bytes: Vec<u8>,
        /// Records inside it.
        records: usize,
        /// The leader's log end at feed time.
        leader_next: u64,
    },
    /// The requested LSN precedes the first on-disk record — compaction
    /// pruned past the follower's watermark, and only a fresh bootstrap
    /// can catch it up.
    Gap {
        /// The earliest LSN still available on disk.
        first_available: u64,
    },
}

/// Leader-side tail feed: collects up to `max_records` flushed records at
/// or past `from` from the log segments in `dir` and encodes them as one
/// batch stamped with the sender's fencing `epoch`. Reads the segments
/// from disk, so it needs no lock on the live engine; only frames the
/// writer has flushed are visible (a record the leader itself would lose
/// in a crash is never replicated).
///
/// # Errors
/// [`StoreError::Missing`] when `dir` holds no segments at all,
/// [`StoreError::Corrupt`] on a torn non-final segment or a log gap,
/// [`StoreError::Io`] on read failures (transient during concurrent
/// compaction — the follower retries).
pub fn feed(dir: &Path, from: u64, max_records: usize, epoch: u64) -> Result<Feed, StoreError> {
    let segments = list_segments(dir)?;
    if segments.is_empty() {
        return Err(StoreError::Missing(format!(
            "{} holds no log segments to replicate",
            dir.display()
        )));
    }
    let first_available = segments[0].0;
    if from < first_available {
        return Ok(Feed::Gap { first_available });
    }
    let max_records = max_records.min(MAX_BATCH_RECORDS);
    let mut records: Vec<(u64, WalRecord)> = Vec::new();
    let mut log_end = first_available;
    for (i, (start, path)) in segments.iter().enumerate() {
        // A segment wholly below `from` is skipped without reading it: the
        // successor's start LSN is also this segment's end.
        if let Some((next_start, _)) = segments.get(i + 1) {
            if *next_start <= from {
                log_end = *next_start;
                continue;
            }
        }
        let scan = read_segment(path)?;
        if scan.torn.is_some() && i + 1 != segments.len() {
            return Err(StoreError::Corrupt {
                path: path.clone(),
                offset: scan.valid_len,
                detail: format!(
                    "torn in a non-final segment: {}",
                    scan.torn.as_deref().unwrap_or("")
                ),
            });
        }
        if scan.start_lsn > log_end.max(*start) {
            return Err(StoreError::Corrupt {
                path: path.clone(),
                offset: 0,
                detail: format!(
                    "log gap: previous segment ends at LSN {log_end}, next starts at {}",
                    scan.start_lsn
                ),
            });
        }
        log_end = scan.start_lsn + scan.records.len() as u64;
        for (lsn, record) in scan.records {
            if lsn >= from && records.len() < max_records {
                records.push((lsn, record));
            }
        }
    }
    // The collected run must be exactly [from, from + n) — anything else
    // means the directory contradicts its own contiguity invariant.
    for (i, (lsn, _)) in records.iter().enumerate() {
        if *lsn != from + i as u64 {
            return Err(StoreError::Corrupt {
                path: dir.to_path_buf(),
                offset: 0,
                detail: format!("collected LSN {lsn} where {} was expected", from + i as u64),
            });
        }
    }
    let count = records.len();
    Ok(Feed::Batch {
        bytes: encode_batch(from, log_end, epoch, &records),
        records: count,
        leader_next: log_end,
    })
}

/// Leader-side bootstrap feed: packages the store's checkpoint snapshot
/// (the marker-pinned one, or the newest on disk when the marker is
/// absent) as an encoded `LEMPSNP1` payload.
///
/// # Errors
/// [`StoreError::Missing`] when no snapshot exists, [`StoreError::Corrupt`]
/// when the marker or the pinned image is broken, [`StoreError::Io`] on
/// read failures.
pub fn read_bootstrap(dir: &Path) -> Result<Vec<u8>, StoreError> {
    let marker = read_marker(dir)?;
    let snapshots = list_snapshots(dir)?;
    let missing =
        || StoreError::Missing(format!("{} holds no snapshot to bootstrap from", dir.display()));
    let (lsn, path) = match &marker {
        Some(m) => snapshots.iter().find(|(lsn, _)| *lsn == m.lsn).cloned().ok_or_else(missing)?,
        None => snapshots.last().cloned().ok_or_else(missing)?,
    };
    // The marker's fencing epoch covers everything folded into the
    // snapshot; any later bump still sits in the log and replicates
    // through the tail.
    let epoch = marker.as_ref().map_or(0, |m| m.fence_epoch);
    let image = std::fs::read(&path)?;
    if let Some(m) = marker {
        if image.len() as u64 != m.snapshot_len || crc32(&image) != m.snapshot_crc {
            return Err(StoreError::Corrupt {
                path,
                offset: 0,
                detail: "snapshot does not match its marker".into(),
            });
        }
    }
    Ok(encode_snapshot(lsn, epoch, &image))
}

/// Follower-side bootstrap: materializes a fresh store directory from a
/// leader's snapshot payload and opens it for appending. The directory
/// ends up in the exact layout [`DurableEngine::create`] produces — the
/// snapshot image at its checkpoint LSN, a `CHECKPOINT` marker pinning it,
/// and an empty log segment starting there — and is then opened through
/// the ordinary recovery path, so everything recovery verifies holds for
/// the replica too.
///
/// # Errors
/// [`StoreError::Corrupt`]/[`StoreError::Snapshot`] when the payload or
/// its image is invalid (nothing is written), [`StoreError::Missing`] when
/// `dir` already holds a store, [`StoreError::Io`] on filesystem failures
/// (a torn bootstrap directory should be deleted and bootstrapped again).
pub fn bootstrap(
    dir: &Path,
    payload: &[u8],
    options: StoreOptions,
) -> Result<(DurableEngine, RecoveryReport), StoreError> {
    let (lsn, epoch, image) = decode_snapshot(payload)?;
    // Validate the image end to end before touching the filesystem.
    DynamicLemp::read_from(&image[..])?;
    std::fs::create_dir_all(dir)?;
    if DurableEngine::exists(dir) {
        return Err(StoreError::Missing(format!(
            "{} already holds a store (open it instead of bootstrapping over it)",
            dir.display()
        )));
    }
    let final_path = dir.join(snapshot_name(lsn));
    let tmp = dir.join(format!("{}.tmp", snapshot_name(lsn)));
    let mut file = File::create(&tmp)?;
    file.write_all(&image)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, &final_path)?;
    sync_dir(dir)?;
    // The first segment before the marker: once the marker exists the
    // directory claims to be a store, and a store's checkpoint must always
    // be bracketed by its log.
    drop(WalWriter::create(dir, lsn, options.sync, options.segment_bytes)?);
    write_marker(
        dir,
        Marker {
            lsn,
            snapshot_len: image.len() as u64,
            snapshot_crc: crc32(&image),
            fence_epoch: epoch,
        },
    )?;
    DurableEngine::open(dir, options)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(from: u64, n: usize) -> Vec<(u64, WalRecord)> {
        (0..n)
            .map(|i| {
                let lsn = from + i as u64;
                (lsn, WalRecord::Insert { id: lsn as u32, vector: vec![lsn as f64, 1.0] })
            })
            .collect()
    }

    #[test]
    fn batch_roundtrips() {
        let recs = records(7, 5);
        let bytes = encode_batch(7, 20, 3, &recs);
        let batch = decode_batch(&bytes, 7).unwrap();
        assert_eq!(batch.from_lsn, 7);
        assert_eq!(batch.leader_next_lsn, 20);
        assert_eq!(batch.epoch, 3);
        assert_eq!(batch.records, recs);
    }

    #[test]
    fn empty_batch_roundtrips() {
        let bytes = encode_batch(42, 42, 0, &[]);
        let batch = decode_batch(&bytes, 42).unwrap();
        assert!(batch.records.is_empty());
        assert_eq!(batch.leader_next_lsn, 42);
        assert_eq!(batch.epoch, 0);
    }

    #[test]
    fn batch_for_the_wrong_watermark_is_rejected() {
        let bytes = encode_batch(7, 9, 0, &records(7, 2));
        let err = decode_batch(&bytes, 8).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn snapshot_roundtrips_and_rejects_corruption() {
        let image = vec![1u8, 2, 3, 4, 5];
        let bytes = encode_snapshot(9, 2, &image);
        assert_eq!(decode_snapshot(&bytes).unwrap(), (9, 2, image));
        let mut flipped = bytes.clone();
        *flipped.last_mut().unwrap() ^= 0x40;
        assert!(matches!(decode_snapshot(&flipped), Err(StoreError::Corrupt { .. })));
        assert!(matches!(decode_snapshot(&bytes[..20]), Err(StoreError::Corrupt { .. })));
    }
}
