//! `lemp-store` — durability for the dynamic LEMP engine: a write-ahead
//! log, snapshot compaction, and crash recovery.
//!
//! The paper's bucketization is cheap to maintain incrementally, which is
//! why [`lemp_core::DynamicLemp`] supports warm-preserving insert/remove —
//! but a bare dynamic engine lives only in memory: a server crash loses
//! every probe pushed through `POST /probes`. This crate makes mutations
//! durable and recovery fast and verified:
//!
//! * [`wal`] — the `LEMPWAL1` log: length-prefixed records (insert /
//!   remove / rebuild) with a CRC-32 each, segment rotation at a size
//!   threshold, torn-tail truncation on open.
//! * [`store`] — snapshot compaction (a `LEMPDYN1` engine image plus a
//!   `CHECKPOINT` marker, then pruning of covered segments) and
//!   [`recover`]: load the latest snapshot, replay the tail.
//! * [`DurableEngine`] — wraps a [`lemp_core::DynamicLemp`] so every edit
//!   is **logged before it is applied**, under the caller's write
//!   exclusivity, with a configurable [`SyncPolicy`]. Queries delegate
//!   through the [`lemp_core::Engine`] trait, so the warmed `&self` hot
//!   path is untouched.
//! * [`sharded`] — the same composition over a [`lemp_core::ShardedLemp`]:
//!   one WAL + snapshot directory per shard plus a root `MANIFEST`
//!   (routing policy, shard count, length bands). [`ShardedDurableEngine`]
//!   routes every edit to the owning shard's log-then-apply path;
//!   [`recover_sharded`] recovers each shard directory independently and
//!   reassembles the full engine, cross-checking globally disjoint id
//!   spaces.
//! * [`replication`] — leader/follower replication over the same
//!   artifacts: a `LEMPSNP2` snapshot payload bootstraps a follower, and
//!   `LEMPREP2` batches (byte-identical `LEMPWAL1` frames, strictly
//!   sequential LSNs, a fencing epoch, CRC on every header and frame)
//!   tail-follow the leader's log; [`DurableEngine::apply_replicated`]
//!   applies each record log-then-apply at the follower's watermark, and
//!   [`DurableEngine::fence`] stamps a monotonically increasing fencing
//!   epoch so a promoted follower can reject its ex-leader. See the
//!   module docs for the exact wire framing.
//!
//! # Recovery contract
//!
//! Replay is **deterministic and self-verifying**: records carry strictly
//! sequential LSNs, inserts record the globally allocated id (a standalone
//! store requires it to equal the id the engine would assign; a shard of a
//! sharded store accepts the gaps left by ids routed to its siblings, and
//! nothing below its watermark), and the engine's edit operations are pure
//! functions of its state — so recovering a snapshot and replaying the
//! tail reproduces the pre-crash engine **bit for bit** (the
//! crash-injection suite asserts exactly that, across every fault point
//! and every corrupted-tail offset, for single and sharded stores alike).
//! Anything a corrupted directory could break surfaces as a structured
//! [`StoreError`], never a panic or a silently diverged engine.
//!
//! ```
//! use lemp_core::{BucketPolicy, DynamicLemp, RunConfig};
//! use lemp_linalg::VectorStore;
//! use lemp_store::{recover, DurableEngine, StoreOptions};
//!
//! let dir = std::env::temp_dir().join(format!("lemp-store-doc-{}", std::process::id()));
//! std::fs::remove_dir_all(&dir).ok();
//! let probes = VectorStore::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
//! let engine = DynamicLemp::new(&probes, BucketPolicy::default(), RunConfig::default());
//!
//! let mut durable = DurableEngine::create(&dir, engine, StoreOptions::default()).unwrap();
//! let id = durable.insert(&[2.0, 2.0]).unwrap();
//! durable.remove(0).unwrap();
//! drop(durable); // crash, restart …
//!
//! let (recovered, report) = recover(&dir).unwrap();
//! assert_eq!(report.records_replayed, 2);
//! assert!(recovered.contains(id) && !recovered.contains(0));
//! std::fs::remove_dir_all(&dir).ok();
//! ```

#![warn(missing_docs)]

pub mod crc;
pub mod replication;
pub mod sharded;
pub mod store;
pub mod wal;

pub use sharded::{
    is_sharded_store, recover_sharded, shard_dir_name, ShardedDurableEngine, ShardedRecoveryReport,
};
pub use store::{
    recover, snapshot_name, CompactFault, CompactionReport, DurableEngine, RecoveryReport,
    StoreOptions,
};
pub use wal::{WalRecord, WalStats};

use std::io;
use std::path::PathBuf;

use lemp_core::PersistError;

/// When the WAL fsyncs appended records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every record — nothing acknowledged is ever lost.
    Always,
    /// fsync every N records — bounded loss window, amortized cost.
    EveryN(u64),
    /// Never fsync explicitly (the OS flushes eventually; rotation and
    /// compaction still sync) — fastest, weakest.
    Never,
}

impl SyncPolicy {
    /// Parses `always`, `never`, or an integer `N` (→ [`SyncPolicy::EveryN`]).
    ///
    /// # Errors
    /// A human-readable message for anything else.
    pub fn parse(raw: &str) -> Result<Self, String> {
        match raw {
            "always" => Ok(SyncPolicy::Always),
            "never" => Ok(SyncPolicy::Never),
            n => match n.parse::<u64>() {
                Ok(n) if n >= 1 => Ok(SyncPolicy::EveryN(n)),
                _ => Err(format!("bad sync policy {raw:?} (always|never|<records>)")),
            },
        }
    }
}

impl std::fmt::Display for SyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncPolicy::Always => write!(f, "always"),
            SyncPolicy::EveryN(n) => write!(f, "every {n} records"),
            SyncPolicy::Never => write!(f, "never"),
        }
    }
}

/// Errors raised by the durability subsystem — every way a store
/// directory can disappoint, as structured data (the crash-injection
/// suite asserts these are the *only* failure mode: no panics, no silent
/// divergence).
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// A file's bytes contradict the format (CRC failures, log gaps,
    /// broken headers/markers) at a specific place.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// Byte offset of the defect.
        offset: u64,
        /// What was wrong.
        detail: String,
    },
    /// A snapshot image failed `lemp-core`'s persistence validation.
    Snapshot(PersistError),
    /// A log record contradicts the engine state it replays onto.
    Replay {
        /// The record's LSN.
        lsn: u64,
        /// What diverged.
        detail: String,
    },
    /// The directory lacks what recovery needs (no usable snapshot, not a
    /// store, already a store on create).
    Missing(String),
    /// A caller-supplied vector was rejected before anything was logged.
    Invalid(String),
    /// The WAL writer hit an I/O error earlier and refuses further
    /// appends: continuing after a partial write could interleave garbage
    /// with acknowledged records, or falsely promote lost records to
    /// durable on a later fsync. Reopen the store (recovery truncates to
    /// the last verified frame) to resume.
    Poisoned,
    /// A requested crash-injection fault point fired (tests only).
    Injected(&'static str),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::Corrupt { path, offset, detail } => {
                write!(f, "corrupt {} at byte {offset}: {detail}", path.display())
            }
            StoreError::Snapshot(e) => write!(f, "snapshot: {e}"),
            StoreError::Replay { lsn, detail } => write!(f, "replay at LSN {lsn}: {detail}"),
            StoreError::Missing(msg) => write!(f, "{msg}"),
            StoreError::Invalid(msg) => write!(f, "invalid input: {msg}"),
            StoreError::Poisoned => {
                write!(f, "log writer poisoned by an earlier I/O error; reopen the store")
            }
            StoreError::Injected(stage) => write!(f, "injected fault: {stage}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<PersistError> for StoreError {
    fn from(e: PersistError) -> Self {
        StoreError::Snapshot(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_policy_parses() {
        assert_eq!(SyncPolicy::parse("always"), Ok(SyncPolicy::Always));
        assert_eq!(SyncPolicy::parse("never"), Ok(SyncPolicy::Never));
        assert_eq!(SyncPolicy::parse("16"), Ok(SyncPolicy::EveryN(16)));
        assert!(SyncPolicy::parse("0").is_err());
        assert!(SyncPolicy::parse("sometimes").is_err());
        assert_eq!(SyncPolicy::EveryN(4).to_string(), "every 4 records");
    }
}
