//! The sharded store: one WAL + snapshot directory per shard plus a root
//! manifest, and the [`ShardedDurableEngine`] that keeps a
//! [`ShardedLemp`] and its per-shard logs in step.
//!
//! # Directory layout
//!
//! ```text
//! store/
//!   MANIFEST               LEMPSHM1: policy tag + shard count + routing bands + CRC32
//!   shard-000/             an ordinary single-engine store (see [`crate::store`])
//!     snap-<lsn>.eng
//!     CHECKPOINT
//!     wal-<lsn>.log
//!   shard-001/
//!   …
//! ```
//!
//! Each shard directory is a complete, independently recoverable store for
//! that shard's [`lemp_core::DynamicLemp`]. The manifest holds only what
//! the shards cannot know about each other: the routing policy, the shard
//! count, and the fixed length bands (for `LengthBanded` routing) — the
//! inputs [`lemp_core::ShardedLemp::from_shards`] needs to reassemble the
//! logical engine.
//!
//! # Why per-shard logs compose
//!
//! Edits are routed deterministically: an insert's global id and owning
//! shard are fixed by the policy *before* anything is logged, so each
//! shard's WAL records exactly the edits that shard applied, in its own
//! strictly sequential LSN order. Shard logs never need cross-shard
//! ordering — global-id uniqueness is a property of the routing function,
//! not of log interleaving — so recovery is embarrassingly parallel in
//! structure: recover each shard directory independently
//! ([`crate::store`]'s snapshot + replay, with the **routed** id-space
//! rule: a shard's log legally skips the ids routed to its siblings, and
//! replay pads those gaps as dead ids), then reassemble and cross-check
//! the shards' id spaces are globally disjoint.

use std::fs::File;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use lemp_core::shard::ShardPolicyKind;
use lemp_core::{ShardedLemp, WarmGoal, WarmReport};
use lemp_linalg::VectorStore;

use crate::crc::crc32;
use crate::store::{
    list_snapshots, recover_inner, write_marker, write_snapshot, CompactFault, CompactionReport,
    IdSpace, RecoveryReport, StoreOptions,
};
use crate::wal::{list_segments, sync_dir, WalRecord, WalStats, WalWriter};
use crate::StoreError;

/// Root manifest file name.
pub(crate) const MANIFEST: &str = "MANIFEST";
/// Root manifest magic bytes.
const MANIFEST_MAGIC: &[u8; 8] = b"LEMPSHM1";

/// Subdirectory name of shard `i`.
pub fn shard_dir_name(i: usize) -> String {
    format!("shard-{i:03}")
}

/// What the root manifest records: the routing inputs
/// [`ShardedLemp::from_shards`] needs beyond the shard images themselves.
#[derive(Debug, Clone, PartialEq)]
struct Manifest {
    kind: ShardPolicyKind,
    shards: usize,
    bands: Vec<f64>,
}

fn kind_tag(kind: ShardPolicyKind) -> u8 {
    match kind {
        ShardPolicyKind::RoundRobin => 0,
        ShardPolicyKind::LengthBanded => 1,
        ShardPolicyKind::Explicit => 2,
    }
}

fn kind_from_tag(tag: u8) -> Option<ShardPolicyKind> {
    match tag {
        0 => Some(ShardPolicyKind::RoundRobin),
        1 => Some(ShardPolicyKind::LengthBanded),
        2 => Some(ShardPolicyKind::Explicit),
        _ => None,
    }
}

/// Writes the root manifest atomically (tmp + fsync + rename + dir fsync).
fn write_manifest(dir: &Path, manifest: &Manifest) -> Result<(), StoreError> {
    let mut bytes = Vec::with_capacity(32 + manifest.bands.len() * 8);
    bytes.extend_from_slice(MANIFEST_MAGIC);
    bytes.push(kind_tag(manifest.kind));
    bytes.extend_from_slice(&(manifest.shards as u64).to_le_bytes());
    bytes.extend_from_slice(&(manifest.bands.len() as u64).to_le_bytes());
    for band in &manifest.bands {
        bytes.extend_from_slice(&band.to_le_bytes());
    }
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
    let tmp = dir.join(format!("{MANIFEST}.tmp"));
    let mut file = File::create(&tmp)?;
    file.write_all(&bytes)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, dir.join(MANIFEST))?;
    sync_dir(dir)?;
    Ok(())
}

/// Reads and validates the root manifest.
fn read_manifest(dir: &Path) -> Result<Manifest, StoreError> {
    let path = dir.join(MANIFEST);
    let mut bytes = Vec::new();
    match File::open(&path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(StoreError::Missing(format!(
                "{} holds no {MANIFEST} — not a sharded store",
                dir.display()
            )));
        }
        Err(e) => return Err(e.into()),
    }
    let corrupt =
        |offset: u64, detail: String| StoreError::Corrupt { path: path.clone(), offset, detail };
    if bytes.len() < 29 {
        return Err(corrupt(0, format!("manifest holds {} bytes, needs at least 29", bytes.len())));
    }
    if &bytes[..8] != MANIFEST_MAGIC {
        return Err(corrupt(0, format!("bad manifest magic {:?}", &bytes[..8])));
    }
    let crc_at = bytes.len() - 4;
    let crc = u32::from_le_bytes(bytes[crc_at..].try_into().expect("4-byte slice"));
    if crc32(&bytes[..crc_at]) != crc {
        return Err(corrupt(crc_at as u64, "manifest fails its CRC".into()));
    }
    let kind = kind_from_tag(bytes[8])
        .ok_or_else(|| corrupt(8, format!("unknown policy tag {}", bytes[8])))?;
    let shards = u64::from_le_bytes(bytes[9..17].try_into().expect("8-byte slice"));
    if shards == 0 || shards > 1 << 16 {
        return Err(corrupt(9, format!("implausible shard count {shards}")));
    }
    let shards = shards as usize;
    let band_count = u64::from_le_bytes(bytes[17..25].try_into().expect("8-byte slice"));
    let expected = if kind == ShardPolicyKind::LengthBanded { shards - 1 } else { 0 };
    if band_count as usize != expected {
        return Err(corrupt(
            17,
            format!(
                "policy {kind:?} over {shards} shards needs {expected} bands, found {band_count}"
            ),
        ));
    }
    if bytes.len() != 25 + expected * 8 + 4 {
        return Err(corrupt(
            25,
            format!("manifest holds {} bytes, layout needs {}", bytes.len(), 25 + expected * 8 + 4),
        ));
    }
    let mut bands = Vec::with_capacity(expected);
    for i in 0..expected {
        let at = 25 + i * 8;
        let band = f64::from_le_bytes(bytes[at..at + 8].try_into().expect("8-byte slice"));
        if band.is_nan() {
            return Err(corrupt(at as u64, format!("band {i} is NaN")));
        }
        if let Some(&prev) = bands.last() {
            if band > prev {
                return Err(corrupt(
                    at as u64,
                    format!("band {i} ({band}) exceeds band {} ({prev})", i - 1),
                ));
            }
        }
        bands.push(band);
    }
    Ok(Manifest { kind, shards, bands })
}

/// What recovering a sharded store learned, shard by shard.
#[derive(Debug, Clone)]
pub struct ShardedRecoveryReport {
    /// Per-shard recovery reports, indexed by shard.
    pub shards: Vec<RecoveryReport>,
}

impl ShardedRecoveryReport {
    /// Total records replayed across all shards.
    pub fn records_replayed(&self) -> u64 {
        self.shards.iter().map(|r| r.records_replayed).sum()
    }

    /// Total live probes across all shards.
    pub fn live_probes(&self) -> usize {
        self.shards.iter().map(|r| r.live_probes).sum()
    }

    /// Torn-tail diagnostics, `(shard, detail)` for each shard whose last
    /// segment a crash cut mid-record.
    pub fn torn_tails(&self) -> Vec<(usize, String)> {
        self.shards
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.torn_tail.clone().map(|d| (i, d)))
            .collect()
    }
}

/// Whether `dir` holds a sharded store (a root `MANIFEST` is present).
/// The single-store analogue is [`crate::DurableEngine::exists`]; the CLI
/// dispatches `recover`/`compact`/`serve durable=` on this distinction.
pub fn is_sharded_store(dir: &Path) -> bool {
    dir.join(MANIFEST).is_file()
}

/// **Sharded crash recovery, read-only**: reads the root manifest,
/// recovers every shard directory independently (snapshot + WAL-tail
/// replay under the routed id-space rule), then reassembles the full
/// [`ShardedLemp`] — which cross-checks that the shards' live id spaces
/// are globally disjoint and dimensionality agrees.
///
/// # Errors
/// Everything [`crate::recover`] raises per shard, plus
/// [`StoreError::Missing`]/[`StoreError::Corrupt`] for a missing or broken
/// manifest and [`StoreError::Snapshot`] when the reassembled shards
/// violate a cross-shard invariant.
pub fn recover_sharded(dir: &Path) -> Result<(ShardedLemp, ShardedRecoveryReport), StoreError> {
    let manifest = read_manifest(dir)?;
    let mut engines = Vec::with_capacity(manifest.shards);
    let mut reports = Vec::with_capacity(manifest.shards);
    for s in 0..manifest.shards {
        let recovered = recover_inner(&dir.join(shard_dir_name(s)), IdSpace::Routed)?;
        engines.push(recovered.engine);
        reports.push(recovered.report);
    }
    let engine = ShardedLemp::from_shards(engines, manifest.kind, manifest.bands)?;
    Ok((engine, ShardedRecoveryReport { shards: reports }))
}

/// A [`ShardedLemp`] whose edits are write-ahead logged **per shard**:
/// every insert is routed first (global id + owning shard are pure
/// functions of the engine state), appended to the owner's log, then
/// applied; removals and rebuilds forward the same way. Queries delegate
/// through [`lemp_core::Engine`], so the warmed fan-out/merge hot path is
/// untouched.
#[derive(Debug)]
pub struct ShardedDurableEngine {
    dir: PathBuf,
    engine: ShardedLemp,
    wals: Vec<WalWriter>,
    snapshot_lsns: Vec<u64>,
    options: StoreOptions,
}

impl ShardedDurableEngine {
    /// Initializes a sharded store in `dir` (created if needed) around an
    /// existing engine: writes the root manifest, then per shard the seed
    /// snapshot at LSN 0, the marker, and the first segment. Fails if
    /// `dir` already holds a store.
    ///
    /// # Errors
    /// [`StoreError::Io`] on filesystem failures; an error with a clear
    /// message when a store is already present.
    pub fn create(
        dir: &Path,
        engine: ShardedLemp,
        options: StoreOptions,
    ) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir)?;
        if is_sharded_store(dir) || crate::DurableEngine::exists(dir) {
            return Err(StoreError::Missing(format!(
                "{} already holds a store (open it instead of re-creating)",
                dir.display()
            )));
        }
        let manifest = Manifest {
            kind: engine.policy_kind(),
            shards: engine.shard_count(),
            bands: engine.bands().to_vec(),
        };
        write_manifest(dir, &manifest)?;
        let mut wals = Vec::with_capacity(engine.shard_count());
        for (s, shard) in engine.shards().iter().enumerate() {
            let shard_dir = dir.join(shard_dir_name(s));
            std::fs::create_dir_all(&shard_dir)?;
            let marker = write_snapshot(&shard_dir, shard, 0)?;
            write_marker(&shard_dir, marker)?;
            wals.push(WalWriter::create(&shard_dir, 0, options.sync, options.segment_bytes)?);
        }
        let snapshot_lsns = vec![0; engine.shard_count()];
        Ok(Self { dir: dir.to_path_buf(), engine, wals, snapshot_lsns, options })
    }

    /// Recovers the sharded store in `dir` and reopens every shard for
    /// appending: each shard's best snapshot is loaded, its WAL tail
    /// replayed, a torn tail truncated, and its writer positioned at the
    /// next LSN.
    ///
    /// # Errors
    /// Everything [`recover_sharded`] raises, plus write failures while
    /// truncating or creating active segments.
    pub fn open(
        dir: &Path,
        options: StoreOptions,
    ) -> Result<(Self, ShardedRecoveryReport), StoreError> {
        let manifest = read_manifest(dir)?;
        let mut engines = Vec::with_capacity(manifest.shards);
        let mut reports = Vec::with_capacity(manifest.shards);
        let mut wals = Vec::with_capacity(manifest.shards);
        let mut snapshot_lsns = Vec::with_capacity(manifest.shards);
        for s in 0..manifest.shards {
            let shard_dir = dir.join(shard_dir_name(s));
            let recovered = recover_inner(&shard_dir, IdSpace::Routed)?;
            let wal = match &recovered.tail {
                Some((scan, path)) => {
                    WalWriter::resume(&shard_dir, scan, path, options.sync, options.segment_bytes)?
                }
                None => WalWriter::create(
                    &shard_dir,
                    recovered.report.next_lsn,
                    options.sync,
                    options.segment_bytes,
                )?,
            };
            debug_assert_eq!(wal.next_lsn(), recovered.report.next_lsn);
            snapshot_lsns.push(recovered.report.snapshot_lsn);
            engines.push(recovered.engine);
            reports.push(recovered.report);
            wals.push(wal);
        }
        let engine = ShardedLemp::from_shards(engines, manifest.kind, manifest.bands)?;
        let store = Self { dir: dir.to_path_buf(), engine, wals, snapshot_lsns, options };
        Ok((store, ShardedRecoveryReport { shards: reports }))
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The wrapped engine (queries, inspection). Probe edits must go
    /// through [`ShardedDurableEngine::insert`]/
    /// [`ShardedDurableEngine::remove`]/[`ShardedDurableEngine::rebuild`]
    /// so they hit the owning shard's log first.
    pub fn engine(&self) -> &ShardedLemp {
        &self.engine
    }

    /// Per-shard WAL counter snapshots (`/stats` in durable serving mode).
    pub fn wal_stats(&self) -> Vec<WalStats> {
        self.wals.iter().map(WalWriter::stats).collect()
    }

    /// Per-shard checkpoint LSNs.
    pub fn snapshot_lsns(&self) -> &[u64] {
        &self.snapshot_lsns
    }

    /// Per-shard next-edit LSNs — each is the total number of edits ever
    /// routed to that shard.
    pub fn next_lsns(&self) -> Vec<u64> {
        self.wals.iter().map(WalWriter::next_lsn).collect()
    }

    /// Warms the inner engine ([`ShardedLemp::warm`]); warmth is runtime
    /// state, not logged.
    pub fn warm(&mut self, sample: &VectorStore, goal: WarmGoal) -> WarmReport {
        self.engine.warm(sample, goal)
    }

    /// Fan-out thread count of the inner engine.
    pub fn set_threads(&mut self, threads: usize) {
        self.engine.set_threads(threads);
    }

    /// **Route-log-apply insert**: validates, routes (the global id and
    /// owning shard are pure functions of the policy and the engine
    /// state), appends to the owner's log, fsyncs per policy, then
    /// applies. Returns `(id, shard)`.
    ///
    /// # Errors
    /// [`StoreError::Invalid`] on wrong dimensionality or non-finite
    /// coordinates (nothing is logged); [`StoreError::Io`] when the append
    /// fails (nothing is applied).
    pub fn insert(&mut self, v: &[f64]) -> Result<(u32, usize), StoreError> {
        if v.len() != self.engine.dim() {
            return Err(StoreError::Invalid(format!(
                "vector has {} coordinates, engine dimensionality is {}",
                v.len(),
                self.engine.dim()
            )));
        }
        if let Some(i) = v.iter().position(|x| !x.is_finite()) {
            return Err(StoreError::Invalid(format!("coordinate {i} is not finite")));
        }
        let (id, shard) = self.engine.route_insert(v);
        let lsn = self.wals[shard].append(&WalRecord::Insert { id, vector: v.to_vec() })?;
        let got = self.engine.insert(v).map_err(|e| StoreError::Replay {
            lsn,
            detail: format!("engine rejected a validated insert: {e}"),
        })?;
        debug_assert_eq!(got, id, "insert diverged from its route preview");
        Ok((id, shard))
    }

    /// **Log-then-apply removal**, forwarded to the owning shard's log. A
    /// dead or never-allocated id is a no-op (`Ok(None)`) and is *not*
    /// logged; a live one returns its owning shard.
    ///
    /// # Errors
    /// [`StoreError::Io`] when the append fails (nothing is applied).
    pub fn remove(&mut self, id: u32) -> Result<Option<usize>, StoreError> {
        let Some(shard) = self.engine.owner_of(id) else {
            return Ok(None);
        };
        self.wals[shard].append(&WalRecord::Remove { id })?;
        let removed = self.engine.remove(id);
        debug_assert!(removed);
        Ok(Some(shard))
    }

    /// **Log-then-apply rebuild**: a rebuild record is appended to *every*
    /// shard's log (each shard re-bucketizes its own slice), then the
    /// engine rebuilds.
    ///
    /// # Errors
    /// [`StoreError::Io`] when an append fails; shards whose log already
    /// took the record will simply replay a (harmless, idempotent) rebuild
    /// on recovery.
    pub fn rebuild(&mut self) -> Result<(), StoreError> {
        for wal in &mut self.wals {
            wal.append(&WalRecord::Rebuild)?;
        }
        self.engine.rebuild();
        Ok(())
    }

    /// Forces every appended record durable on every shard regardless of
    /// the sync policy.
    ///
    /// # Errors
    /// [`StoreError::Io`] on fsync failures.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        for wal in &mut self.wals {
            wal.sync()?;
        }
        Ok(())
    }

    /// **Compaction**, shard by shard: snapshot each shard's live engine,
    /// move its marker, prune its redundant segments and snapshots. After
    /// it returns, recovery of every shard loads one image and replays
    /// nothing.
    ///
    /// # Errors
    /// [`StoreError::Io`] on filesystem failures (every shard directory
    /// stays recoverable at every intermediate step).
    pub fn compact(&mut self) -> Result<Vec<CompactionReport>, StoreError> {
        (0..self.wals.len()).map(|s| self.compact_shard_with_fault(s, None)).collect()
    }

    /// Compacts one shard with a crash-injection point, exactly as
    /// [`crate::DurableEngine::compact_with_fault`] does for a single
    /// store. The crash-injection suite aims faults at individual shards
    /// and proves the *whole* sharded store still recovers.
    ///
    /// # Errors
    /// [`StoreError::Injected`] at the requested fault point; otherwise as
    /// [`ShardedDurableEngine::compact`].
    pub fn compact_shard_with_fault(
        &mut self,
        shard: usize,
        fault: Option<CompactFault>,
    ) -> Result<CompactionReport, StoreError> {
        let shard_dir = self.dir.join(shard_dir_name(shard));
        let wal = &mut self.wals[shard];
        wal.sync()?;
        let lsn = wal.next_lsn();
        let marker = write_snapshot(&shard_dir, &self.engine.shards()[shard], lsn)?;
        if fault == Some(CompactFault::AfterSnapshot) {
            return Err(StoreError::Injected("after-snapshot"));
        }
        write_marker(&shard_dir, marker)?;
        self.snapshot_lsns[shard] = lsn;
        if fault == Some(CompactFault::AfterMarker) {
            return Err(StoreError::Injected("after-marker"));
        }
        wal.rotate()?;
        let mut segments_pruned = 0usize;
        let mut snapshots_pruned = 0usize;
        let mut bytes_reclaimed = 0u64;
        for (start, path) in list_segments(&shard_dir)? {
            if start < lsn && start != wal.segment_start() {
                bytes_reclaimed += path.metadata().map(|m| m.len()).unwrap_or(0);
                std::fs::remove_file(&path)?;
                segments_pruned += 1;
            }
        }
        for (snap_lsn, path) in list_snapshots(&shard_dir)? {
            if snap_lsn < lsn {
                bytes_reclaimed += path.metadata().map(|m| m.len()).unwrap_or(0);
                std::fs::remove_file(&path)?;
                snapshots_pruned += 1;
            }
        }
        sync_dir(&shard_dir)?;
        Ok(CompactionReport { lsn, segments_pruned, snapshots_pruned, bytes_reclaimed })
    }

    /// **Crash injection**: consumes the store as a power loss would — the
    /// in-memory engine and every unsynced log byte on every shard are
    /// gone; only fsynced state survives on disk.
    ///
    /// # Errors
    /// [`StoreError::Io`] on truncation failures.
    pub fn simulate_crash(self) -> Result<(), StoreError> {
        for wal in self.wals {
            wal.simulate_crash()?;
        }
        Ok(())
    }

    /// The configured options.
    pub fn options(&self) -> StoreOptions {
        self.options
    }
}

impl lemp_core::Engine for ShardedDurableEngine {
    fn plan(&self, request: &lemp_core::QueryRequest) -> lemp_core::QueryPlan {
        self.engine.plan(request)
    }

    fn refresh_plan(&self, plan: &lemp_core::QueryPlan) -> lemp_core::QueryPlan {
        self.engine.refresh_plan(plan)
    }

    fn execute(
        &self,
        plan: &lemp_core::QueryPlan,
        queries: &VectorStore,
        scratch: &mut lemp_core::Scratch,
    ) -> lemp_core::QueryResponse {
        self.engine.execute(plan, queries, scratch)
    }

    fn query_scratch(&self) -> lemp_core::Scratch {
        lemp_core::Engine::query_scratch(&self.engine)
    }

    fn probes(&self) -> usize {
        lemp_core::Engine::probes(&self.engine)
    }

    fn dim(&self) -> usize {
        lemp_core::Engine::dim(&self.engine)
    }

    fn is_warm(&self) -> bool {
        self.engine.is_warm()
    }

    fn shard_count(&self) -> usize {
        self.engine.shard_count()
    }

    fn warm_up(&mut self, sample: &VectorStore, goal: WarmGoal) -> WarmReport {
        self.engine.warm(sample, goal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemp_core::shard::ShardPolicy;
    use lemp_core::{BucketPolicy, DynamicLemp, RunConfig};
    use lemp_data::synthetic::GeneratorConfig;

    fn fresh_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lemp-sharded-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn build(shards: usize, n: usize, seed: u64) -> ShardedLemp {
        let p = GeneratorConfig::gaussian(n, 6, 1.0).generate(seed);
        ShardedLemp::builder()
            .shards(shards)
            .policy(ShardPolicy::LengthBanded)
            .sample_size(4)
            .build(&p)
    }

    #[test]
    fn create_edit_crash_recover_roundtrip() {
        let dir = fresh_dir("roundtrip");
        let engine = build(3, 40, 1);
        let mut store =
            ShardedDurableEngine::create(&dir, engine, StoreOptions::default()).unwrap();
        let extra = GeneratorConfig::gaussian(12, 6, 1.5).generate(2);
        let mut acked = Vec::new();
        for i in 0..extra.len() {
            acked.push(store.insert(extra.vector(i)).unwrap());
        }
        assert!(store.remove(acked[0].0).unwrap().is_some());
        assert_eq!(store.remove(acked[0].0).unwrap(), None, "dead id is a no-op");
        store.rebuild().unwrap();
        let live: Vec<usize> = store.engine().shard_sizes();
        let next_id = store.engine().next_id();
        store.simulate_crash().unwrap();

        let (recovered, report) = recover_sharded(&dir).unwrap();
        assert_eq!(recovered.shard_sizes(), live, "per-shard counts survive the crash");
        assert_eq!(recovered.next_id(), next_id, "the global watermark survives");
        for &(id, shard) in &acked[1..] {
            assert_eq!(recovered.owner_of(id), Some(shard), "routed placement survives");
        }
        // rebuild on every shard + 12 inserts + 1 remove
        assert_eq!(report.records_replayed(), 12 + 1 + 3);
        assert!(report.torn_tails().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_prunes_and_preserves() {
        let dir = fresh_dir("compact");
        let engine = build(2, 20, 3);
        let mut store =
            ShardedDurableEngine::create(&dir, engine, StoreOptions::default()).unwrap();
        let extra = GeneratorConfig::gaussian(8, 6, 1.0).generate(4);
        for i in 0..extra.len() {
            store.insert(extra.vector(i)).unwrap();
        }
        let sizes = store.engine().shard_sizes();
        let reports = store.compact().unwrap();
        assert_eq!(reports.len(), 2);
        for (s, report) in reports.iter().enumerate() {
            assert_eq!(report.lsn, store.next_lsns()[s], "checkpoint at each shard's head");
            assert_eq!(report.snapshots_pruned, 1, "the seed snapshot goes");
        }
        store.simulate_crash().unwrap();
        let (recovered, report) = recover_sharded(&dir).unwrap();
        assert_eq!(recovered.shard_sizes(), sizes);
        assert_eq!(report.records_replayed(), 0, "compaction folded every record");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_fault_injection_leaves_store_recoverable() {
        for fault in [CompactFault::AfterSnapshot, CompactFault::AfterMarker] {
            let dir = fresh_dir(&format!("fault-{fault:?}"));
            let engine = build(2, 16, 5);
            let mut store =
                ShardedDurableEngine::create(&dir, engine, StoreOptions::default()).unwrap();
            let extra = GeneratorConfig::gaussian(6, 6, 1.0).generate(6);
            for i in 0..extra.len() {
                store.insert(extra.vector(i)).unwrap();
            }
            let sizes = store.engine().shard_sizes();
            let err = store.compact_shard_with_fault(1, Some(fault)).unwrap_err();
            assert!(matches!(err, StoreError::Injected(_)));
            store.simulate_crash().unwrap();
            let (recovered, _) = recover_sharded(&dir).unwrap();
            assert_eq!(
                recovered.shard_sizes(),
                sizes,
                "crash mid-compaction of shard 1 ({fault:?})"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn open_resumes_appending_with_routed_ids() {
        let dir = fresh_dir("open");
        let engine = build(3, 30, 7);
        let mut store =
            ShardedDurableEngine::create(&dir, engine, StoreOptions::default()).unwrap();
        let extra = GeneratorConfig::gaussian(10, 6, 1.2).generate(8);
        for i in 0..5 {
            store.insert(extra.vector(i)).unwrap();
        }
        drop(store);
        let (mut store, report) =
            ShardedDurableEngine::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(report.live_probes(), 35);
        for i in 5..10 {
            let (id, shard) = store.insert(extra.vector(i)).unwrap();
            assert_eq!(store.engine().owner_of(id), Some(shard));
        }
        assert_eq!(store.engine().len(), 40);
        // Ids never repeat across the reopen boundary.
        assert_eq!(store.engine().next_id(), 40);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_rejects_corruption() {
        let dir = fresh_dir("manifest");
        let engine = build(2, 10, 9);
        let store = ShardedDurableEngine::create(&dir, engine, StoreOptions::default()).unwrap();
        drop(store);
        let path = dir.join(MANIFEST);
        let good = std::fs::read(&path).unwrap();
        // CRC failure
        let mut bad = good.clone();
        *bad.last_mut().unwrap() ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(recover_sharded(&dir), Err(StoreError::Corrupt { .. })));
        // Bad magic
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(recover_sharded(&dir), Err(StoreError::Corrupt { .. })));
        // Missing manifest entirely
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(recover_sharded(&dir), Err(StoreError::Missing(_))));
        assert!(!is_sharded_store(&dir));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn single_and_sharded_stores_are_distinguished() {
        let dir = fresh_dir("dispatch");
        let p = GeneratorConfig::gaussian(8, 6, 1.0).generate(11);
        let single = DynamicLemp::new(&p, BucketPolicy::default(), RunConfig::default());
        let store = crate::DurableEngine::create(&dir, single, StoreOptions::default()).unwrap();
        drop(store);
        assert!(!is_sharded_store(&dir));
        assert!(crate::DurableEngine::exists(&dir));
        let err = ShardedDurableEngine::open(&dir, StoreOptions::default()).unwrap_err();
        assert!(matches!(err, StoreError::Missing(_)));
        std::fs::remove_dir_all(&dir).ok();
    }
}
