//! The store directory: snapshots + checkpoint marker + WAL segments, and
//! the [`DurableEngine`] that keeps a [`DynamicLemp`] and its log in step.
//!
//! # Directory layout
//!
//! ```text
//! store/
//!   snap-<lsn:016x>.eng    LEMPDYN1 engine image folding records < lsn
//!   CHECKPOINT             marker: magic + lsn + snapshot len + fencing
//!                          epoch + snapshot CRC + CRC (tmp+rename)
//!   wal-<lsn:016x>.log     LEMPWAL1 segments (see [`crate::wal`])
//! ```
//!
//! # Protocol invariants
//!
//! * **Log-then-apply**: every edit is appended to the WAL *before* it
//!   mutates the engine, under the caller's write exclusivity. Replaying
//!   the log from a snapshot therefore reproduces the engine bit-for-bit —
//!   inserts even record the id the engine assigned, so replay verifies it
//!   rebuilds the exact same id sequence.
//! * **Snapshot-then-marker-then-prune**: compaction first makes the new
//!   snapshot durable (tmp + fsync + rename + dir fsync), then moves the
//!   `CHECKPOINT` marker, then prunes segments and snapshots the marker
//!   made redundant. A crash between any two steps leaves a recoverable
//!   directory: recovery prefers the marker and falls back to scanning.
//! * **Torn tails**: only the *last* segment may end mid-record (the crash
//!   signature); recovery drops the tail, reopening for append truncates
//!   it. A torn or missing middle segment is [`StoreError::Corrupt`] —
//!   acknowledged records must never be skipped silently.

use std::fs::File;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use lemp_core::{DynamicLemp, WarmGoal, WarmReport};
use lemp_linalg::VectorStore;

use crate::crc::crc32;
use crate::wal::{
    list_segments, read_segment, sync_dir, SegmentScan, WalRecord, WalStats, WalWriter,
};
use crate::{StoreError, SyncPolicy};

/// Marker file name.
pub(crate) const MARKER: &str = "CHECKPOINT";
/// Marker magic bytes (`LEMPCKP2` added the fencing epoch field).
const MARKER_MAGIC: &[u8; 8] = b"LEMPCKP2";
/// Marker file length: magic + lsn + snapshot_len + fence_epoch +
/// snapshot_crc + crc.
const MARKER_LEN: usize = 40;

/// Tuning knobs of a store.
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// When appended records are fsynced (durability vs. throughput).
    pub sync: SyncPolicy,
    /// Segment rotation threshold in bytes.
    pub segment_bytes: u64,
}

impl Default for StoreOptions {
    fn default() -> Self {
        Self { sync: SyncPolicy::Always, segment_bytes: 4 << 20 }
    }
}

/// What [`recover`] did to bring the engine back.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// LSN of the snapshot the engine was seeded from.
    pub snapshot_lsn: u64,
    /// Records replayed on top of the snapshot.
    pub records_replayed: u64,
    /// The LSN the next edit will carry.
    pub next_lsn: u64,
    /// Segment files scanned.
    pub segments_scanned: usize,
    /// The torn-tail diagnostic of the last segment, when a crash cut it.
    pub torn_tail: Option<String>,
    /// Live probe count of the recovered engine.
    pub live_probes: usize,
    /// The recovered fencing epoch: the marker's, raised by any epoch
    /// records found in the log.
    pub fence_epoch: u64,
}

/// What [`DurableEngine::compact`] reclaimed.
#[derive(Debug, Clone, Copy)]
pub struct CompactionReport {
    /// The new checkpoint LSN (records below it live in the snapshot).
    pub lsn: u64,
    /// WAL segment files pruned.
    pub segments_pruned: usize,
    /// Old snapshot images pruned.
    pub snapshots_pruned: usize,
    /// Bytes of pruned files.
    pub bytes_reclaimed: u64,
}

/// Crash-injection points inside [`DurableEngine::compact_with_fault`]:
/// compaction stops *after* completing the named step, leaving the
/// directory exactly as a crash at that moment would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactFault {
    /// The new snapshot is durable, the marker still points at the old one.
    AfterSnapshot,
    /// The marker moved, stale segments/snapshots not yet pruned.
    AfterMarker,
}

/// Snapshot file name for a checkpoint LSN.
pub fn snapshot_name(lsn: u64) -> String {
    format!("snap-{lsn:016x}.eng")
}

/// Parses a snapshot file name back to its checkpoint LSN.
pub fn parse_snapshot_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("snap-")?.strip_suffix(".eng")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// What the `CHECKPOINT` marker pins: the checkpoint LSN plus the byte
/// length and CRC-32 of the snapshot image it points at — so a snapshot
/// whose bytes rotted after the marker was written is *detected*, never
/// silently loaded — plus the fencing epoch at checkpoint time, so the
/// fence survives compaction pruning the epoch records below the
/// checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Marker {
    pub(crate) lsn: u64,
    pub(crate) snapshot_len: u64,
    pub(crate) snapshot_crc: u32,
    pub(crate) fence_epoch: u64,
}

/// Writes the `CHECKPOINT` marker atomically (tmp + fsync + rename + dir
/// fsync).
pub(crate) fn write_marker(dir: &Path, marker: Marker) -> Result<(), StoreError> {
    let mut bytes = Vec::with_capacity(MARKER_LEN);
    bytes.extend_from_slice(MARKER_MAGIC);
    bytes.extend_from_slice(&marker.lsn.to_le_bytes());
    bytes.extend_from_slice(&marker.snapshot_len.to_le_bytes());
    bytes.extend_from_slice(&marker.fence_epoch.to_le_bytes());
    bytes.extend_from_slice(&marker.snapshot_crc.to_le_bytes());
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
    let tmp = dir.join(format!("{MARKER}.tmp"));
    let mut file = File::create(&tmp)?;
    file.write_all(&bytes)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, dir.join(MARKER))?;
    sync_dir(dir)?;
    Ok(())
}

/// Reads the marker: `Ok(None)` when absent, [`StoreError::Corrupt`] when
/// present but broken (recovery then falls back to scanning snapshots).
pub(crate) fn read_marker(dir: &Path) -> Result<Option<Marker>, StoreError> {
    let path = dir.join(MARKER);
    let mut bytes = Vec::new();
    match File::open(&path) {
        Ok(mut f) => f.read_to_end(&mut bytes)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let corrupt = |detail: String| StoreError::Corrupt { path: path.clone(), offset: 0, detail };
    if bytes.len() != MARKER_LEN {
        return Err(corrupt(format!("marker holds {} bytes, needs {MARKER_LEN}", bytes.len())));
    }
    if &bytes[..8] != MARKER_MAGIC {
        return Err(corrupt(format!("bad marker magic {:?}", &bytes[..8])));
    }
    let crc = u32::from_le_bytes(bytes[36..40].try_into().expect("4-byte slice"));
    if crc32(&bytes[..36]) != crc {
        return Err(corrupt("marker fails its CRC".into()));
    }
    Ok(Some(Marker {
        lsn: u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice")),
        snapshot_len: u64::from_le_bytes(bytes[16..24].try_into().expect("8-byte slice")),
        fence_epoch: u64::from_le_bytes(bytes[24..32].try_into().expect("8-byte slice")),
        snapshot_crc: u32::from_le_bytes(bytes[32..36].try_into().expect("4-byte slice")),
    }))
}

/// Lists snapshots as `(lsn, path)`, ascending.
pub(crate) fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let mut snaps = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(lsn) = entry.file_name().to_str().and_then(parse_snapshot_name) {
            snaps.push((lsn, entry.path()));
        }
    }
    snaps.sort_unstable_by_key(|&(lsn, _)| lsn);
    Ok(snaps)
}

/// Writes a durable snapshot image of `engine` at checkpoint `lsn` (tmp +
/// fsync + rename + dir fsync) and returns the [`Marker`] describing it.
/// The image is the ordinary `LEMPDYN1` dynamic-engine format
/// ([`DynamicLemp::write_to`]) — the snapshotter reuses `lemp-core`'s
/// persistence end to end rather than keeping a copy.
pub(crate) fn write_snapshot(
    dir: &Path,
    engine: &DynamicLemp,
    lsn: u64,
) -> Result<Marker, StoreError> {
    let mut image = Vec::new();
    engine.write_to(&mut image)?;
    // The caller raises `fence_epoch` before writing the marker when the
    // store carries a fence (sharded stores never do).
    let marker = Marker {
        lsn,
        snapshot_len: image.len() as u64,
        snapshot_crc: crc32(&image),
        fence_epoch: 0,
    };
    let final_path = dir.join(snapshot_name(lsn));
    let tmp = dir.join(format!("{}.tmp", snapshot_name(lsn)));
    let mut file = File::create(&tmp)?;
    file.write_all(&image)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, &final_path)?;
    sync_dir(dir)?;
    Ok(marker)
}

/// Everything recovery learned, including what a writer needs to resume.
pub(crate) struct Recovered {
    pub(crate) engine: DynamicLemp,
    pub(crate) report: RecoveryReport,
    /// The last segment's scan + path (the writer resumes into it), absent
    /// when the directory holds no segments.
    pub(crate) tail: Option<(SegmentScan, PathBuf)>,
}

/// How replay matches a logged insert id against the engine watermark.
///
/// A standalone store allocates ids itself, so the recorded id must equal
/// the watermark exactly ([`IdSpace::Dense`]). A shard of a sharded store
/// sees only its slice of a *global* id space: ids skip the values routed
/// to sibling shards, so replay accepts any id at or above the local
/// watermark and pads the gap with dead filler ([`IdSpace::Routed`]) —
/// exactly what [`lemp_core::DynamicLemp::insert_with_id`] does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum IdSpace {
    Dense,
    Routed,
}

/// Core recovery: load the best snapshot, replay the WAL tail.
pub(crate) fn recover_inner(dir: &Path, ids: IdSpace) -> Result<Recovered, StoreError> {
    if !dir.is_dir() {
        return Err(StoreError::Missing(format!("{} is not a directory", dir.display())));
    }
    // Scan every segment up front; contiguity and torn-tail position are
    // global properties, not per-file ones.
    let segments = list_segments(dir)?;
    let mut scans: Vec<(PathBuf, SegmentScan)> = Vec::with_capacity(segments.len());
    for (i, (start, path)) in segments.iter().enumerate() {
        let scan = read_segment(path)?;
        debug_assert_eq!(scan.start_lsn, *start);
        if let Some(detail) = &scan.torn {
            if i + 1 != segments.len() {
                return Err(StoreError::Corrupt {
                    path: path.clone(),
                    offset: scan.valid_len,
                    detail: format!("torn in a non-final segment: {detail}"),
                });
            }
        }
        if let Some((prev_path, prev)) = scans.last() {
            let prev_end = prev.start_lsn + prev.records.len() as u64;
            if prev_end != scan.start_lsn {
                return Err(StoreError::Corrupt {
                    path: prev_path.clone(),
                    offset: prev.valid_len,
                    detail: format!(
                        "log gap: segment ends at LSN {prev_end}, next starts at {}",
                        scan.start_lsn
                    ),
                });
            }
        }
        scans.push((path.clone(), scan));
    }
    let first_available = scans.first().map(|(_, s)| s.start_lsn);
    let log_end = scans.last().map(|(_, s)| s.start_lsn + s.records.len() as u64);

    // Pick the snapshot: the marker's, or (marker absent/corrupt/unusable)
    // the newest snapshot whose LSN the log still *brackets*. The upper
    // bound matters as much as the lower one: a checkpoint past the log's
    // end means the final segment(s) were lost — resuming there would
    // reuse LSNs below the checkpoint, and every future recovery would
    // silently skip the records written at them. A healthy store always
    // has at least one segment (creation and rotation both leave one), so
    // "no segments at all" is loss too, never acceptable alongside a
    // checkpoint.
    let marker = read_marker(dir);
    // The marker's fencing epoch is a durable floor even when recovery
    // falls back to another snapshot: epochs only ever grow, and the
    // records that raised past it (if any) are still in the log.
    let epoch_floor = match &marker {
        Ok(Some(m)) => m.fence_epoch,
        _ => 0,
    };
    let snapshots = list_snapshots(dir)?;
    let usable = |lsn: u64| match (first_available, log_end) {
        (Some(first), Some(end)) => lsn >= first && lsn <= end,
        _ => false,
    };
    let mut candidates: Vec<(u64, PathBuf, Option<Marker>)> = Vec::new();
    if let Ok(Some(m)) = &marker {
        if let Some((_, path)) = snapshots.iter().find(|(s, _)| s == &m.lsn) {
            candidates.push((m.lsn, path.clone(), Some(*m)));
        }
    }
    for (lsn, path) in snapshots.iter().rev() {
        if usable(*lsn) && !candidates.iter().any(|(c, _, _)| c == lsn) {
            candidates.push((*lsn, path.clone(), None));
        }
    }
    if candidates.is_empty() {
        return Err(StoreError::Missing(format!(
            "{} holds no usable snapshot (marker: {})",
            dir.display(),
            match &marker {
                Ok(Some(m)) => format!("LSN {}", m.lsn),
                Ok(None) => "absent".into(),
                Err(e) => format!("unreadable: {e}"),
            }
        )));
    }
    let mut last_error: Option<StoreError> = None;
    for (snapshot_lsn, path, pinned) in candidates {
        let mut image = Vec::new();
        if let Err(e) = File::open(&path).and_then(|mut f| f.read_to_end(&mut image)) {
            last_error = Some(StoreError::Io(e));
            continue;
        }
        // The marker pins the snapshot's length and CRC: a snapshot whose
        // bytes rotted *after* the checkpoint completed is detected here
        // instead of being decoded into a plausible-but-wrong engine.
        if let Some(m) = pinned {
            if image.len() as u64 != m.snapshot_len || crc32(&image) != m.snapshot_crc {
                last_error = Some(StoreError::Corrupt {
                    path: path.clone(),
                    offset: 0,
                    detail: format!(
                        "snapshot does not match its marker (len {} vs {}, CRC mismatch)",
                        image.len(),
                        m.snapshot_len
                    ),
                });
                continue;
            }
        }
        let engine = match DynamicLemp::read_from(&image[..]) {
            Ok(engine) => engine,
            Err(e) => {
                last_error = Some(StoreError::Snapshot(e));
                continue;
            }
        };
        if !usable(snapshot_lsn) {
            last_error = Some(StoreError::Corrupt {
                path: path.clone(),
                offset: 0,
                detail: format!(
                    "snapshot at LSN {snapshot_lsn} is not bracketed by the log (first \
                     available record: {first_available:?}, log end: {log_end:?}) — segment \
                     files are missing"
                ),
            });
            continue;
        }
        return replay(dir, engine, snapshot_lsn, scans, ids, epoch_floor);
    }
    Err(last_error.expect("candidates were non-empty"))
}

/// Replays every record with `lsn ≥ snapshot_lsn` onto `engine`.
fn replay(
    _dir: &Path,
    mut engine: DynamicLemp,
    snapshot_lsn: u64,
    scans: Vec<(PathBuf, SegmentScan)>,
    ids: IdSpace,
    epoch_floor: u64,
) -> Result<Recovered, StoreError> {
    let mut replayed = 0u64;
    let mut next_lsn = snapshot_lsn;
    let mut torn_tail = None;
    let mut fence_epoch = epoch_floor;
    let segments_scanned = scans.len();
    for (_, scan) in &scans {
        torn_tail = scan.torn.clone();
        for (lsn, record) in &scan.records {
            // Epoch records raise the fence even from segments below the
            // snapshot (not yet pruned): the fence is a property of the
            // whole log, not of the replayed suffix.
            if let WalRecord::Epoch { epoch } = record {
                fence_epoch = fence_epoch.max(*epoch);
            }
            if *lsn < snapshot_lsn {
                continue; // folded into the snapshot (not yet pruned)
            }
            if *lsn != next_lsn {
                return Err(StoreError::Replay {
                    lsn: *lsn,
                    detail: format!("expected LSN {next_lsn} next"),
                });
            }
            apply(&mut engine, *lsn, record, ids)?;
            next_lsn = lsn + 1;
            replayed += 1;
        }
    }
    let report = RecoveryReport {
        snapshot_lsn,
        records_replayed: replayed,
        next_lsn,
        segments_scanned,
        torn_tail,
        live_probes: engine.len(),
        fence_epoch,
    };
    let tail = scans.into_iter().last().map(|(path, scan)| (scan, path));
    Ok(Recovered { engine, report, tail })
}

/// Applies one record exactly as the original edit did; any divergence is
/// a structured error, never a silent drift.
fn apply(
    engine: &mut DynamicLemp,
    lsn: u64,
    record: &WalRecord,
    ids: IdSpace,
) -> Result<(), StoreError> {
    match record {
        WalRecord::Insert { id, vector } => {
            let next = engine.next_id();
            let plausible = match ids {
                IdSpace::Dense => *id == next,
                IdSpace::Routed => *id >= next,
            };
            if !plausible {
                return Err(StoreError::Replay {
                    lsn,
                    detail: format!("log recorded insert of id {id}, engine would assign {next}"),
                });
            }
            engine.insert_with_id(*id, vector).map_err(|e| StoreError::Replay {
                lsn,
                detail: format!("insert of id {id} rejected: {e}"),
            })?;
        }
        WalRecord::Remove { id } => {
            if !engine.remove(*id) {
                return Err(StoreError::Replay {
                    lsn,
                    detail: format!("remove of id {id} found it dead"),
                });
            }
        }
        WalRecord::Rebuild => engine.rebuild(),
        // The fence lives in the store, not the engine; replay tracks it
        // at the scan level and `DurableEngine` at apply time.
        WalRecord::Epoch { .. } => {}
    }
    Ok(())
}

/// **Crash recovery, read-only**: loads the best snapshot in `dir` and
/// replays the WAL tail onto it. The directory is not modified — a torn
/// tail in the last segment is dropped from the replay but left on disk
/// (opening for append via [`DurableEngine::open`] truncates it).
///
/// # Errors
/// [`StoreError::Missing`] when no usable snapshot exists,
/// [`StoreError::Corrupt`] on log gaps / non-final torn segments / broken
/// markers, [`StoreError::Replay`] when a record contradicts the engine
/// state it replays onto, [`StoreError::Io`] on filesystem failures.
pub fn recover(dir: &Path) -> Result<(DynamicLemp, RecoveryReport), StoreError> {
    let recovered = recover_inner(dir, IdSpace::Dense)?;
    Ok((recovered.engine, recovered.report))
}

/// A [`DynamicLemp`] whose edits are write-ahead logged: every
/// insert/remove/rebuild appends a durable record *before* mutating the
/// engine, under the caller's write exclusivity (`&mut self` — in
/// `lemp-serve` that is the engine `RwLock`'s write side).
///
/// Queries are untouched: `DurableEngine` implements
/// [`lemp_core::Engine`] by delegating to the inner engine, so the whole
/// warmed `&self` hot path (plan → execute, caller-owned scratch) works
/// exactly as on a bare [`DynamicLemp`].
#[derive(Debug)]
pub struct DurableEngine {
    dir: PathBuf,
    engine: DynamicLemp,
    wal: WalWriter,
    options: StoreOptions,
    snapshot_lsn: u64,
    /// The fencing epoch: bumped by [`DurableEngine::fence`] (promotion),
    /// raised by replicated epoch records, recovered from the log and the
    /// checkpoint marker.
    fence_epoch: u64,
}

impl DurableEngine {
    /// Initializes a store in `dir` (created if needed) around an existing
    /// engine: writes the seed snapshot at LSN 0, the marker, and opens
    /// the first segment. Fails if `dir` already holds a store — use
    /// [`DurableEngine::open`] to resume one.
    ///
    /// # Errors
    /// [`StoreError::Io`] on filesystem failures; an error with a clear
    /// message when a store is already present.
    pub fn create(
        dir: &Path,
        engine: DynamicLemp,
        options: StoreOptions,
    ) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir)?;
        if Self::exists(dir) {
            return Err(StoreError::Missing(format!(
                "{} already holds a store (open it instead of re-creating)",
                dir.display()
            )));
        }
        let marker = write_snapshot(dir, &engine, 0)?;
        write_marker(dir, marker)?;
        let wal = WalWriter::create(dir, 0, options.sync, options.segment_bytes)?;
        Ok(Self { dir: dir.to_path_buf(), engine, wal, options, snapshot_lsn: 0, fence_epoch: 0 })
    }

    /// Whether `dir` holds a store (a `CHECKPOINT` marker or a snapshot).
    pub fn exists(dir: &Path) -> bool {
        dir.join(MARKER).exists() || list_snapshots(dir).map(|s| !s.is_empty()).unwrap_or(false)
    }

    /// Recovers the store in `dir` and reopens it for appending: the best
    /// snapshot is loaded, the WAL tail replayed, a torn tail truncated,
    /// and the writer positioned at the next LSN.
    ///
    /// # Errors
    /// Everything [`recover`] raises, plus write failures while truncating
    /// or creating the active segment.
    pub fn open(dir: &Path, options: StoreOptions) -> Result<(Self, RecoveryReport), StoreError> {
        let recovered = recover_inner(dir, IdSpace::Dense)?;
        let snapshot_lsn = recovered.report.snapshot_lsn;
        let wal = match &recovered.tail {
            Some((scan, path)) => {
                WalWriter::resume(dir, scan, path, options.sync, options.segment_bytes)?
            }
            None => WalWriter::create(
                dir,
                recovered.report.next_lsn,
                options.sync,
                options.segment_bytes,
            )?,
        };
        debug_assert_eq!(wal.next_lsn(), recovered.report.next_lsn);
        let store = Self {
            dir: dir.to_path_buf(),
            engine: recovered.engine,
            wal,
            options,
            snapshot_lsn,
            fence_epoch: recovered.report.fence_epoch,
        };
        Ok((store, recovered.report))
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The wrapped engine (queries, inspection). Probe edits must go
    /// through [`DurableEngine::insert`]/[`DurableEngine::remove`]/
    /// [`DurableEngine::rebuild`] so they hit the log first.
    pub fn engine(&self) -> &DynamicLemp {
        &self.engine
    }

    /// WAL counter snapshot (`/stats` in durable serving mode).
    pub fn wal_stats(&self) -> WalStats {
        self.wal.stats()
    }

    /// The current checkpoint LSN (records below it live in the snapshot).
    pub fn snapshot_lsn(&self) -> u64 {
        self.snapshot_lsn
    }

    /// The LSN the next edit will carry — also the total number of edits
    /// ever applied to this store.
    pub fn next_lsn(&self) -> u64 {
        self.wal.next_lsn()
    }

    /// The current fencing epoch (0 until the store is ever fenced).
    pub fn fence_epoch(&self) -> u64 {
        self.fence_epoch
    }

    /// **Fences the store**: appends (and fsyncs, whatever the sync
    /// policy) an epoch record one above the current fencing epoch.
    /// Promotion calls this so a promoted follower's log outranks the old
    /// leader's — replication refuses to move records from a lower epoch
    /// onto a higher-epoch store in either direction. Returns the new
    /// epoch and the LSN its record consumed.
    ///
    /// # Errors
    /// [`StoreError::Io`] on append/fsync failures (the fence did not
    /// take).
    pub fn fence(&mut self) -> Result<(u64, u64), StoreError> {
        let epoch = self.fence_epoch + 1;
        let lsn = self.wal.append(&WalRecord::Epoch { epoch })?;
        self.wal.sync()?;
        self.fence_epoch = epoch;
        Ok((epoch, lsn))
    }

    /// Warms the inner engine ([`DynamicLemp::warm`]); warmth is runtime
    /// state, not logged.
    pub fn warm(&mut self, sample: &VectorStore, goal: WarmGoal) -> WarmReport {
        self.engine.warm(sample, goal)
    }

    /// Retrieval worker-thread count of the inner engine.
    pub fn set_threads(&mut self, threads: usize) {
        self.engine.set_threads(threads);
    }

    /// **Log-then-apply insert**: validates, appends the record (with the
    /// id the engine will assign), fsyncs per policy, then applies.
    /// Returns the stable id.
    ///
    /// # Errors
    /// [`StoreError::Invalid`] on wrong dimensionality or non-finite
    /// coordinates (nothing is logged); [`StoreError::Io`] when the append
    /// fails (nothing is applied).
    pub fn insert(&mut self, v: &[f64]) -> Result<u32, StoreError> {
        if v.len() != self.engine.dim() {
            return Err(StoreError::Invalid(format!(
                "vector has {} coordinates, engine dimensionality is {}",
                v.len(),
                self.engine.dim()
            )));
        }
        if let Some(i) = v.iter().position(|x| !x.is_finite()) {
            return Err(StoreError::Invalid(format!("coordinate {i} is not finite")));
        }
        let id = self.engine.next_id();
        let lsn = self.wal.append(&WalRecord::Insert { id, vector: v.to_vec() })?;
        let got = self.engine.insert(v).map_err(|e| StoreError::Replay {
            lsn,
            detail: format!("engine rejected a validated insert: {e}"),
        })?;
        debug_assert_eq!(got, id);
        Ok(id)
    }

    /// **Log-then-apply removal**. A dead id is a no-op (`Ok(false)`) and
    /// is *not* logged — replay only sees removes that succeeded.
    ///
    /// # Errors
    /// [`StoreError::Io`] when the append fails (nothing is applied).
    pub fn remove(&mut self, id: u32) -> Result<bool, StoreError> {
        if !self.engine.contains(id) {
            return Ok(false);
        }
        self.wal.append(&WalRecord::Remove { id })?;
        let removed = self.engine.remove(id);
        debug_assert!(removed);
        Ok(true)
    }

    /// Applies one record received from a replication leader at exactly
    /// this store's watermark: validates it against the live engine,
    /// appends it to the local log (so the follower's log reproduces the
    /// leader's bit for bit), then applies it through the same replay
    /// path crash recovery uses.
    ///
    /// # Errors
    /// [`StoreError::Replay`] when `lsn` is a duplicate/stale record or a
    /// gap (nothing is logged or applied — the tail loop re-requests from
    /// the true watermark), or when the record contradicts the engine
    /// state (a hostile or diverged leader); [`StoreError::Io`] when the
    /// append fails.
    pub fn apply_replicated(&mut self, lsn: u64, record: &WalRecord) -> Result<(), StoreError> {
        let next = self.wal.next_lsn();
        if lsn != next {
            let detail = if lsn < next {
                format!("duplicate or stale record (local watermark is {next})")
            } else {
                format!("gap: expected LSN {next}")
            };
            return Err(StoreError::Replay { lsn, detail });
        }
        // Validate before appending: the log and the engine must never
        // diverge, so the record goes to disk only once the apply below
        // cannot fail.
        match record {
            WalRecord::Insert { id, vector } => {
                if *id != self.engine.next_id() {
                    return Err(StoreError::Replay {
                        lsn,
                        detail: format!(
                            "insert carries id {id}, engine would assign {}",
                            self.engine.next_id()
                        ),
                    });
                }
                if vector.len() != self.engine.dim() {
                    return Err(StoreError::Replay {
                        lsn,
                        detail: format!(
                            "vector has {} coordinates, engine dimensionality is {}",
                            vector.len(),
                            self.engine.dim()
                        ),
                    });
                }
                if let Some(i) = vector.iter().position(|x| !x.is_finite()) {
                    return Err(StoreError::Replay {
                        lsn,
                        detail: format!("coordinate {i} is not finite"),
                    });
                }
            }
            WalRecord::Remove { id } => {
                if !self.engine.contains(*id) {
                    return Err(StoreError::Replay {
                        lsn,
                        detail: format!("remove of dead id {id}"),
                    });
                }
            }
            WalRecord::Rebuild => {}
            WalRecord::Epoch { epoch } => {
                // Fencing epochs are strictly monotone: a replicated bump
                // at or below the local fence is a stale or forged leader.
                if *epoch <= self.fence_epoch {
                    return Err(StoreError::Replay {
                        lsn,
                        detail: format!(
                            "fencing epoch {epoch} does not exceed the local epoch {}",
                            self.fence_epoch
                        ),
                    });
                }
            }
        }
        let appended = self.wal.append(record)?;
        debug_assert_eq!(appended, lsn);
        if let WalRecord::Epoch { epoch } = record {
            self.fence_epoch = *epoch;
        }
        apply(&mut self.engine, lsn, record, IdSpace::Dense)
    }

    /// **Log-then-apply rebuild** ([`DynamicLemp::rebuild`]).
    ///
    /// # Errors
    /// [`StoreError::Io`] when the append fails (nothing is applied).
    pub fn rebuild(&mut self) -> Result<(), StoreError> {
        self.wal.append(&WalRecord::Rebuild)?;
        self.engine.rebuild();
        Ok(())
    }

    /// Forces every appended record durable regardless of the sync policy.
    ///
    /// # Errors
    /// [`StoreError::Io`] on fsync failures.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.wal.sync()
    }

    /// **Compaction**: snapshot the live engine, move the marker, prune
    /// every segment and snapshot the marker made redundant. After it
    /// returns, recovery loads one image and replays nothing.
    ///
    /// # Errors
    /// [`StoreError::Io`] on filesystem failures (the directory stays
    /// recoverable at every intermediate step).
    pub fn compact(&mut self) -> Result<CompactionReport, StoreError> {
        self.compact_with_fault(None)
    }

    /// [`DurableEngine::compact`] with a crash-injection point: when
    /// `fault` is set, compaction stops right after the named step with
    /// [`StoreError::Injected`], leaving the directory exactly as a crash
    /// there would. The crash-injection suite recovers such directories
    /// and proves they replay to the same engine.
    ///
    /// # Errors
    /// [`StoreError::Injected`] at the requested fault point; otherwise as
    /// [`DurableEngine::compact`].
    pub fn compact_with_fault(
        &mut self,
        fault: Option<CompactFault>,
    ) -> Result<CompactionReport, StoreError> {
        self.wal.sync()?;
        let lsn = self.wal.next_lsn();
        let mut marker = write_snapshot(&self.dir, &self.engine, lsn)?;
        // Compaction prunes the epoch records below the checkpoint; the
        // marker carries the fence across that pruning.
        marker.fence_epoch = self.fence_epoch;
        if fault == Some(CompactFault::AfterSnapshot) {
            return Err(StoreError::Injected("after-snapshot"));
        }
        write_marker(&self.dir, marker)?;
        self.snapshot_lsn = lsn;
        if fault == Some(CompactFault::AfterMarker) {
            return Err(StoreError::Injected("after-marker"));
        }
        // Start a fresh segment at the checkpoint so every older segment
        // becomes prunable (no-op when the active one is already empty at
        // the checkpoint LSN).
        self.wal.rotate()?;
        let mut segments_pruned = 0usize;
        let mut snapshots_pruned = 0usize;
        let mut bytes_reclaimed = 0u64;
        for (start, path) in list_segments(&self.dir)? {
            if start < lsn && start != self.wal.segment_start() {
                bytes_reclaimed += path.metadata().map(|m| m.len()).unwrap_or(0);
                std::fs::remove_file(&path)?;
                segments_pruned += 1;
            }
        }
        for (snap_lsn, path) in list_snapshots(&self.dir)? {
            if snap_lsn < lsn {
                bytes_reclaimed += path.metadata().map(|m| m.len()).unwrap_or(0);
                std::fs::remove_file(&path)?;
                snapshots_pruned += 1;
            }
        }
        sync_dir(&self.dir)?;
        Ok(CompactionReport { lsn, segments_pruned, snapshots_pruned, bytes_reclaimed })
    }

    /// **Crash injection**: consumes the store as a power loss would (see
    /// [`WalWriter::simulate_crash`]) — the in-memory engine and every
    /// unsynced log byte are gone; only fsynced state survives on disk.
    ///
    /// # Errors
    /// [`StoreError::Io`] on truncation failures.
    pub fn simulate_crash(self) -> Result<(), StoreError> {
        self.wal.simulate_crash()
    }

    /// The configured options.
    pub fn options(&self) -> StoreOptions {
        self.options
    }
}

impl lemp_core::Engine for DurableEngine {
    fn plan(&self, request: &lemp_core::QueryRequest) -> lemp_core::QueryPlan {
        self.engine.plan(request)
    }

    fn execute(
        &self,
        plan: &lemp_core::QueryPlan,
        queries: &VectorStore,
        scratch: &mut lemp_core::Scratch,
    ) -> lemp_core::QueryResponse {
        self.engine.execute(plan, queries, scratch)
    }

    fn query_scratch(&self) -> lemp_core::Scratch {
        lemp_core::Engine::query_scratch(&self.engine)
    }

    fn probes(&self) -> usize {
        lemp_core::Engine::probes(&self.engine)
    }

    fn dim(&self) -> usize {
        lemp_core::Engine::dim(&self.engine)
    }

    fn is_warm(&self) -> bool {
        self.engine.is_warm()
    }

    fn warm_up(&mut self, sample: &VectorStore, goal: WarmGoal) -> WarmReport {
        self.engine.warm(sample, goal)
    }
}
