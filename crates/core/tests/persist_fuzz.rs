//! Fuzz-style hardening of the persistence error paths: every engine image
//! format (`LEMPENG1`, `LEMPDYN1`, `LEMPSHD1`) is truncated at **every**
//! byte offset and bit-flipped at every byte — loading must always return
//! a structured [`PersistError`] or a valid engine, and must **never**
//! panic, abort on a hostile allocation size, or silently accept a
//! truncated image.

use std::panic::{catch_unwind, AssertUnwindSafe};

use lemp_core::{BucketPolicy, DynamicLemp, Lemp, PersistError, RunConfig, ShardedLemp, WarmGoal};
use lemp_data::synthetic::GeneratorConfig;
use lemp_linalg::VectorStore;

// Deliberately tiny: the sweeps below parse the image once per byte per
// mask, so the image size is the test's runtime multiplier. Every format
// feature (multiple buckets, dead ids, two shards, trained codebooks)
// still appears.
fn probes() -> VectorStore {
    GeneratorConfig::gaussian(12, 2, 1.2).generate(5150)
}

fn queries() -> VectorStore {
    GeneratorConfig::gaussian(6, 2, 1.0).generate(5151)
}

/// The three loaders under test, type-erased to "bytes → outcome".
type Loader = fn(&[u8]) -> Result<(), PersistError>;

fn load_static(bytes: &[u8]) -> Result<(), PersistError> {
    Lemp::read_from(bytes).map(|_| ())
}

fn load_dynamic(bytes: &[u8]) -> Result<(), PersistError> {
    DynamicLemp::read_from(bytes).map(|_| ())
}

fn load_sharded(bytes: &[u8]) -> Result<(), PersistError> {
    ShardedLemp::read_from(bytes).map(|_| ())
}

fn images() -> Vec<(&'static str, Vec<u8>, Loader)> {
    let p = probes();

    let mut bytes = Vec::new();
    Lemp::builder().sample_size(4).build(&p).write_to(&mut bytes).unwrap();
    let static_image = bytes;

    let policy = BucketPolicy { min_bucket: 8, ..Default::default() };
    let config = RunConfig { sample_size: 4, ..Default::default() };
    let mut dynamic = DynamicLemp::new(&p, policy, config);
    dynamic.insert(&[0.5, -0.25]).unwrap();
    dynamic.remove(3);
    dynamic.remove(7);
    let mut bytes = Vec::new();
    dynamic.write_to(&mut bytes).unwrap();
    let dynamic_image = bytes;

    let sharded = ShardedLemp::builder().shards(2).sample_size(4).build(&p);
    let mut bytes = Vec::new();
    sharded.write_to(&mut bytes).unwrap();
    let sharded_image = bytes;

    // The v2 images carry the appended quantized section (code width,
    // per-bucket flags, codebooks, packed codes); warming first trains the
    // codebooks so the section is fully populated, and the sweeps below
    // then corrupt every byte of it like any other region.
    let q = queries();
    let mut quant_static = Lemp::builder().sample_size(4).quantize(8).build(&p);
    quant_static.warm(&q, WarmGoal::TopK(3));
    let mut bytes = Vec::new();
    quant_static.write_to(&mut bytes).unwrap();
    let quant_static_image = bytes;

    let policy = BucketPolicy { min_bucket: 8, ..Default::default() };
    let config = RunConfig { sample_size: 4, quantize_bits: 8, ..Default::default() };
    let mut quant_dynamic = DynamicLemp::new(&p, policy, config);
    quant_dynamic.warm(&q, WarmGoal::TopK(3));
    let mut bytes = Vec::new();
    quant_dynamic.write_to(&mut bytes).unwrap();
    let quant_dynamic_image = bytes;

    let mut quant_sharded = ShardedLemp::builder().shards(2).sample_size(4).quantize(8).build(&p);
    quant_sharded.warm(&q, WarmGoal::TopK(3));
    let mut bytes = Vec::new();
    quant_sharded.write_to(&mut bytes).unwrap();
    let quant_sharded_image = bytes;

    vec![
        ("LEMPENG1", static_image, load_static as Loader),
        ("LEMPDYN1", dynamic_image, load_dynamic as Loader),
        ("LEMPSHD1", sharded_image, load_sharded as Loader),
        ("LEMPENG2", quant_static_image, load_static as Loader),
        ("LEMPDYN2", quant_dynamic_image, load_dynamic as Loader),
        ("LEMPSHD2", quant_sharded_image, load_sharded as Loader),
    ]
}

#[test]
fn truncation_at_every_offset_is_a_structured_error() {
    for (name, image, loader) in images() {
        assert!(loader(&image).is_ok(), "{name}: pristine image must load");
        for cut in 0..image.len() {
            let outcome = catch_unwind(AssertUnwindSafe(|| loader(&image[..cut])));
            match outcome {
                Ok(Err(PersistError::Format(msg))) => {
                    assert!(!msg.is_empty(), "{name}: empty error at cut {cut}")
                }
                Ok(Err(PersistError::Io(_))) => {}
                Ok(Ok(())) => panic!("{name}: truncation at {cut} loaded silently"),
                Err(_) => panic!("{name}: truncation at {cut} panicked"),
            }
        }
    }
}

#[test]
fn bit_flips_at_every_offset_never_panic() {
    for (name, image, loader) in images() {
        for offset in 0..image.len() {
            // Two masks per byte: a low bit (small value shifts) and the
            // high bit (sign/magnitude blowups — the allocation-bomb
            // shape: a flipped length field requesting gigabytes must
            // come back as a Format error, not an abort).
            for mask in [0x01u8, 0x80] {
                let mut bad = image.clone();
                bad[offset] ^= mask;
                let outcome = catch_unwind(AssertUnwindSafe(|| loader(&bad)));
                match outcome {
                    Ok(Ok(())) => {} // a flip in float payload can stay valid
                    Ok(Err(e)) => {
                        let _ = e.to_string(); // Display must not panic either
                    }
                    Err(_) => panic!("{name}: flip {mask:#04x} at {offset} panicked"),
                }
            }
        }
    }
}

#[test]
fn hostile_size_fields_error_instead_of_allocating() {
    // Surgical versions of the worst single-field corruptions: each sets
    // one u64 size field to an absurd value and expects a clean error.
    let p = probes();
    let mut image = Vec::new();
    Lemp::builder().sample_size(4).build(&p).write_to(&mut image).unwrap();
    // Config block: magic(8) + tag(1) + 6 words; bucket header starts at 57:
    // dim(8) total(8) count(8), first bucket size at 81.
    for (what, at) in [("dim", 57usize), ("total", 65), ("bucket count", 73), ("bucket size", 81)] {
        let mut bad = image.clone();
        bad[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let outcome = catch_unwind(AssertUnwindSafe(|| Lemp::read_from(&bad[..])));
        match outcome {
            Ok(Err(PersistError::Format(_))) => {}
            Ok(other) => panic!("huge {what}: expected a format error, got {other:?}"),
            Err(_) => panic!("huge {what} panicked"),
        }
    }

    // The dynamic image's id-space watermark: magic(8) + policy(32) +
    // config(49) puts it at 89.
    let policy = BucketPolicy { min_bucket: 8, ..Default::default() };
    let config = RunConfig { sample_size: 4, ..Default::default() };
    let dynamic = DynamicLemp::new(&p, policy, config);
    let mut image = Vec::new();
    dynamic.write_to(&mut image).unwrap();
    let at = 8 + 32 + 49;
    for watermark in [u64::MAX, 1 << 33, (1 << 32) + 1] {
        let mut bad = image.clone();
        bad[at..at + 8].copy_from_slice(&watermark.to_le_bytes());
        match DynamicLemp::read_from(&bad[..]) {
            Err(PersistError::Format(msg)) => {
                assert!(msg.contains("id-space") || msg.contains("watermark"), "{msg}")
            }
            other => panic!("watermark {watermark}: expected a format error, got {other:?}"),
        }
    }
}
