//! Differential conformance suite for the sharded engine: for **every**
//! query method (Row-Top-k, Above-θ, |Above-θ|, floored top-k, adaptive)
//! and every shard count `S ∈ {1, 2, 3, 7}`, a [`ShardedLemp`] must agree
//! with the unsharded [`Lemp`] *and* with the naive full scan on the same
//! matrices — under every [`ShardPolicy`]. Exactness across the merge
//! boundary is precisely where sharded systems rot, so the fixtures
//! deliberately include ties at the k-boundary and a θ exactly equal to a
//! score.
//!
//! The k-way merge is additionally pinned down in isolation with property
//! tests (vendored proptest): merged top-k of arbitrary shard-local lists
//! equals the top-k of their concatenation, duplicate global ids are
//! rejected, and `k` beyond the candidate count returns everything.

use lemp_baselines::types::{canonical_pairs, topk_equivalent};
use lemp_baselines::Naive;
use lemp_core::shard::{kway_merge_topk, ShardError, ShardPolicy};
use lemp_core::{AdaptiveConfig, Lemp, ShardedLemp, WarmGoal};
use lemp_data::synthetic::GeneratorConfig;
use lemp_linalg::{ScoredItem, VectorStore};
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 7];

fn policies(n: usize, shards: usize) -> Vec<ShardPolicy> {
    let s = shards as u32;
    vec![
        ShardPolicy::RoundRobin,
        ShardPolicy::LengthBanded,
        // A deterministic but scrambled explicit assignment.
        ShardPolicy::Explicit((0..n as u32).map(|i| (i * 13 + 5) % s).collect()),
    ]
}

fn fixture(m: usize, n: usize, seed: u64) -> (VectorStore, VectorStore) {
    let q = GeneratorConfig::gaussian(m, 8, 1.0).generate(seed);
    let p = GeneratorConfig::gaussian(n, 8, 1.3).generate(seed + 1);
    (q, p)
}

/// Runs all five methods on `(q, p)` through Naive, the unsharded warmed
/// engine, and the sharded engine for every `S` and policy, asserting the
/// three agree. `k`/`theta`/`floor` parameterize the workloads.
fn assert_conformance(q: &VectorStore, p: &VectorStore, k: usize, theta: f64, floor: f64) {
    // Ground truth 1: the naive scan.
    let (naive_topk, _) = Naive.row_top_k(q, p, k);
    let (naive_above, _) = Naive.above_theta(q, p, theta);
    let naive_above = canonical_pairs(&naive_above);

    // Ground truth 2: the unsharded engine through the shared path.
    let mut single = Lemp::builder().sample_size(8).build(p);
    single.warm(q, WarmGoal::TopK(k.max(1)));
    let mut sscr = single.make_scratch();
    let single_topk = single.row_top_k_shared(q, k, &mut sscr);
    let single_above = single.above_theta_shared(q, theta, &mut sscr);
    let single_abs = single.abs_above_theta_shared(q, theta, &mut sscr);
    let single_floor = single.row_top_k_with_floor_shared(q, k, floor, &mut sscr);

    // The unsharded engine itself must match naive (sanity of the truth).
    assert!(topk_equivalent(&single_topk.lists, &naive_topk, 1e-9));
    assert_eq!(canonical_pairs(&single_above.entries), naive_above);

    for shards in SHARD_COUNTS {
        for policy in policies(p.len(), shards) {
            let label = format!("S={shards} policy={policy:?}");
            let mut engine = ShardedLemp::builder()
                .shards(shards)
                .policy(policy)
                .sample_size(8)
                .threads(2)
                .build(p);
            engine.warm(q, WarmGoal::TopK(k.max(1)));
            let mut scratch = engine.make_scratch();

            // Row-Top-k: score multisets bit-identical to the unsharded
            // engine (both compute dir·p scaled by ‖q‖ on the same bytes),
            // and within 1e-9 of naive (which computes q·p directly).
            let topk = engine.row_top_k_shared(q, k, &mut scratch);
            assert!(
                topk_equivalent(&topk.lists, &single_topk.lists, 0.0),
                "{label}: top-k diverges from the unsharded engine"
            );
            assert!(
                topk_equivalent(&topk.lists, &naive_topk, 1e-9),
                "{label}: top-k diverges from naive"
            );

            // Above-θ: the (query, probe) sets are byte-identical across
            // all three engines, and the values are bit-exact.
            let above = engine.above_theta_shared(q, theta, &mut scratch);
            assert_eq!(canonical_pairs(&above.entries), naive_above, "{label}: Above-θ diverges");
            for e in &above.entries {
                let v = q.dot_between(e.query as usize, p, e.probe as usize);
                assert_eq!(v.to_bits(), e.value.to_bits(), "{label}: value not bit-exact");
            }

            // |Above-θ|.
            let abs = engine.abs_above_theta_shared(q, theta, &mut scratch);
            assert_eq!(
                canonical_pairs(&abs.entries),
                canonical_pairs(&single_abs.entries),
                "{label}: |Above-θ| diverges"
            );

            // Floored top-k.
            let floored = engine.row_top_k_with_floor_shared(q, k, floor, &mut scratch);
            assert!(
                topk_equivalent(&floored.lists, &single_floor.lists, 0.0),
                "{label}: floored top-k diverges"
            );
            for list in &floored.lists {
                assert!(list.iter().all(|it| it.score >= floor), "{label}: below-floor entry");
            }

            // Adaptive (bandit) selection: exact results regardless of the
            // arms chosen, learning state in per-shard selectors.
            let acfg = AdaptiveConfig::default();
            let mut selectors = engine.adaptive_selectors(&acfg);
            let above_a =
                engine.above_theta_adaptive_shared(q, theta, &mut selectors, &mut scratch);
            assert_eq!(
                canonical_pairs(&above_a.entries),
                naive_above,
                "{label}: adaptive Above-θ diverges"
            );
            let topk_a = engine.row_top_k_adaptive_shared(q, k, &mut selectors, &mut scratch);
            assert!(
                topk_equivalent(&topk_a.lists, &naive_topk, 1e-9),
                "{label}: adaptive top-k diverges"
            );
        }
    }
}

#[test]
fn all_methods_agree_on_a_generic_workload() {
    let (q, p) = fixture(25, 160, 5000);
    assert_conformance(&q, &p, 5, 1.0, 0.8);
}

#[test]
fn all_methods_agree_on_a_heavy_tailed_workload() {
    // Higher length CoV: bucket pruning and the length-banded policy bite.
    let q = GeneratorConfig::gaussian(20, 8, 2.5).generate(5100);
    let p = GeneratorConfig::gaussian(140, 8, 3.0).generate(5101);
    assert_conformance(&q, &p, 3, 2.0, 1.5);
}

#[test]
fn ties_at_the_k_boundary_are_exact() {
    // Probes with duplicated vectors: the k-th best score ties across
    // several probe ids, so the k-boundary is ambiguous — every engine
    // must retain k entries with *bit-identical* score multisets even
    // though the retained ids may differ.
    let base = GeneratorConfig::gaussian(12, 6, 0.8).generate(5200);
    let mut rows: Vec<Vec<f64>> = (0..base.len()).map(|i| base.vector(i).to_vec()).collect();
    for i in 0..base.len() {
        rows.push(base.vector(i).to_vec()); // every probe twice
        rows.push(base.vector(i).to_vec()); // ...and thrice
    }
    let p = VectorStore::from_rows(&rows).unwrap();
    let q = GeneratorConfig::gaussian(10, 6, 0.8).generate(5201);
    let k = 4; // smaller than a tie class ⇒ the boundary always ties
    assert_conformance(&q, &p, k, 0.9, 0.5);

    // Explicitly split a tie class across shards and check the boundary.
    let (naive_topk, _) = Naive.row_top_k(&q, &p, k);
    let assignment: Vec<u32> = (0..p.len() as u32).map(|i| i % 3).collect();
    let mut engine = ShardedLemp::builder()
        .shards(3)
        .policy(ShardPolicy::Explicit(assignment))
        .sample_size(8)
        .build(&p);
    engine.warm(&q, WarmGoal::TopK(k));
    let mut scratch = engine.make_scratch();
    let topk = engine.row_top_k_shared(&q, k, &mut scratch);
    assert!(topk_equivalent(&topk.lists, &naive_topk, 1e-9));
    for list in &topk.lists {
        assert_eq!(list.len(), k);
        // The merge's canonical tie order: descending score, then
        // ascending global id.
        for w in list.windows(2) {
            assert!(
                w[0].score > w[1].score || (w[0].score == w[1].score && w[0].id < w[1].id),
                "merged list must be canonically ordered"
            );
        }
    }
}

#[test]
fn theta_exactly_equal_to_a_score_is_inclusive_everywhere() {
    let (q, p) = fixture(15, 90, 5300);
    // θ = an actual inner product of the instance (Above-θ is a ≥ filter,
    // so this pair must be reported by every engine). Pick a mid-range
    // value so the boundary pair is not trivially the maximum.
    let mut values: Vec<f64> = Vec::new();
    for i in 0..q.len() {
        for j in 0..p.len() {
            values.push(q.dot_between(i, &p, j));
        }
    }
    values.sort_by(f64::total_cmp);
    let theta = values[values.len() * 9 / 10];
    assert!(theta > 0.0, "fixture must put the 90th percentile above zero");

    let (naive_above, _) = Naive.above_theta(&q, &p, theta);
    let naive_above = canonical_pairs(&naive_above);
    assert!(
        naive_above.len() >= values.len() / 20,
        "the exact-θ boundary must admit a real result set"
    );

    for shards in SHARD_COUNTS {
        let mut engine = ShardedLemp::builder().shards(shards).sample_size(8).build(&p);
        engine.warm(&q, WarmGoal::Above(theta));
        let mut scratch = engine.make_scratch();
        let above = engine.above_theta_shared(&q, theta, &mut scratch);
        assert_eq!(canonical_pairs(&above.entries), naive_above, "S={shards}");
        // The boundary pair itself (value == θ) is present.
        assert!(
            above.entries.iter().any(|e| e.value == theta),
            "S={shards}: the exact-θ entry was dropped at the boundary"
        );
    }
}

#[test]
fn sharded_load_answers_like_the_builder() {
    // Build → save → load → warm → query: the loaded engine conforms too.
    let (q, p) = fixture(15, 100, 5400);
    let engine =
        ShardedLemp::builder().shards(3).policy(ShardPolicy::LengthBanded).sample_size(8).build(&p);
    let mut buf = Vec::new();
    engine.write_to(&mut buf).unwrap();
    let mut loaded = ShardedLemp::read_from(&buf[..]).unwrap();
    loaded.warm(&q, WarmGoal::TopK(4));
    let mut scratch = loaded.make_scratch();
    let (naive_topk, _) = Naive.row_top_k(&q, &p, 4);
    let topk = loaded.row_top_k_shared(&q, 4, &mut scratch);
    assert!(topk_equivalent(&topk.lists, &naive_topk, 1e-9));
}

// ---------------------------------------------------------------------------
// Property tests: the k-way merge in isolation.
// ---------------------------------------------------------------------------

/// Strategy: up to 5 shard-local lists over a shared id space, ids unique
/// across *all* lists (a valid partition), scores drawn with deliberate
/// collisions (few distinct values) so ties exercise the canonical order.
fn partitioned_lists() -> impl Strategy<Value = Vec<Vec<ScoredItem>>> {
    (1usize..=5, proptest::collection::vec((0u8..40, 0u8..8), 0..=30)).prop_map(|(nlists, raw)| {
        let mut lists: Vec<Vec<ScoredItem>> = vec![Vec::new(); nlists];
        for (i, (score_bin, route)) in raw.into_iter().enumerate() {
            // Unique id per item; coarse scores force ties.
            lists[(route as usize) % nlists]
                .push(ScoredItem { id: i, score: f64::from(score_bin) * 0.25 });
        }
        lists
    })
}

/// The specification: concatenate, sort by (score desc, id asc), truncate.
fn reference_topk(lists: &[Vec<ScoredItem>], k: usize) -> Vec<ScoredItem> {
    let mut all: Vec<ScoredItem> = lists.iter().flatten().copied().collect();
    all.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.id.cmp(&b.id)));
    all.truncate(k);
    all
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_equals_topk_of_concatenation(lists in partitioned_lists(), k in 0usize..=12) {
        let expect = reference_topk(&lists, k);
        let got = kway_merge_topk(lists, k).expect("ids are a partition");
        prop_assert_eq!(got.len(), expect.len());
        for (g, e) in got.iter().zip(&expect) {
            prop_assert_eq!(g.id, e.id);
            prop_assert_eq!(g.score.to_bits(), e.score.to_bits());
        }
    }

    #[test]
    fn merge_with_k_beyond_total_returns_everything(lists in partitioned_lists()) {
        let total: usize = lists.iter().map(Vec::len).sum();
        let got = kway_merge_topk(lists.clone(), total + 7).expect("ids are a partition");
        prop_assert_eq!(got.len(), total);
        let expect = reference_topk(&lists, total);
        for (g, e) in got.iter().zip(&expect) {
            prop_assert_eq!(g.id, e.id);
        }
    }

    #[test]
    fn merge_rejects_any_duplicated_global_id(
        lists in partitioned_lists(),
        dup_list in 0usize..5,
        k in 1usize..=8,
    ) {
        // Inject a duplicate of an existing id into some list.
        let mut lists = lists;
        let Some(item) = lists.iter().flatten().next().copied() else {
            return Ok(()); // nothing to duplicate
        };
        let target = dup_list % lists.len();
        lists[target].push(item);
        prop_assert_eq!(kway_merge_topk(lists, k), Err(ShardError::DuplicateGlobalId(item.id)));
    }
}

// ---------------------------------------------------------------------------
// Property tests: routed edits — placement determinism across rebuilds and
// differential conformance against the unsharded dynamic engine under
// arbitrary insert/remove/rebuild interleavings.
// ---------------------------------------------------------------------------

/// One step of an edit script. `Insert` carries a seed for a deterministic
/// vector; `Remove` selects the r-th live id at apply time (so scripts
/// stay valid however earlier steps reshaped the engine).
#[derive(Debug, Clone)]
enum Edit {
    Insert(u64),
    Remove(usize),
    Rebuild,
}

fn edit_script() -> impl Strategy<Value = Vec<Edit>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (0u64..1000).prop_map(Edit::Insert),
            2 => (0usize..64).prop_map(Edit::Remove),
            1 => Just(Edit::Rebuild),
        ],
        0..=24,
    )
}

/// Deterministic insert vector with varied length so the banded policy
/// routes non-trivially.
fn edit_vector(seed: u64) -> Vec<f64> {
    (0..6u64).map(|i| ((seed * 31 + i * 7) % 13) as f64 * 0.25 - 0.75).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn routed_edit_scripts_match_the_unsharded_dynamic_engine(
        script in edit_script(),
        shards in 1usize..=4,
        banded in 0u8..2,
        seed in 0u64..4,
    ) {
        use lemp_core::{BucketPolicy, DynamicLemp, RunConfig};
        let p = GeneratorConfig::gaussian(40, 6, 1.2).generate(6000 + seed);
        let q = GeneratorConfig::gaussian(10, 6, 1.0).generate(6100 + seed);
        let policy =
            if banded == 1 { ShardPolicy::LengthBanded } else { ShardPolicy::RoundRobin };
        let mut sharded =
            ShardedLemp::builder().shards(shards).policy(policy).sample_size(8).build(&p);
        let bucket_policy = BucketPolicy { min_bucket: 8, ..Default::default() };
        let run_config = RunConfig { sample_size: 8, ..Default::default() };
        let mut single = DynamicLemp::new(&p, bucket_policy, run_config);

        for edit in &script {
            match edit {
                Edit::Insert(s) => {
                    let v = edit_vector(*s);
                    // Routing is deterministic: the preview pins (id, shard)
                    // before the edit, and the edit lands exactly there.
                    let (id, owner) = sharded.route_insert(&v);
                    prop_assert_eq!(sharded.insert(&v).unwrap(), id);
                    prop_assert_eq!(sharded.owner_of(id), Some(owner));
                    let single_id = single.insert(&v).unwrap();
                    prop_assert_eq!(single_id, id, "id allocation diverged from unsharded");
                }
                Edit::Remove(r) => {
                    let (ids, _) = sharded.live_vectors();
                    if ids.is_empty() {
                        continue;
                    }
                    let id = ids[r % ids.len()];
                    prop_assert!(sharded.remove(id));
                    prop_assert!(single.remove(id));
                }
                Edit::Rebuild => {
                    // Placement survives rebuilds: every live id keeps its
                    // owner, so routing stays a pure function of the id
                    // space, never of bucket layout.
                    let owners: Vec<(u32, Option<usize>)> = {
                        let (ids, _) = sharded.live_vectors();
                        ids.iter().map(|&id| (id, sharded.owner_of(id))).collect()
                    };
                    sharded.rebuild();
                    single.rebuild();
                    for (id, owner) in owners {
                        prop_assert_eq!(sharded.owner_of(id), owner, "rebuild moved id {}", id);
                    }
                }
            }
        }

        // Differential conformance after the whole script: bit-identical
        // answers (tolerance 0.0) for both query kinds.
        sharded.warm(&q, WarmGoal::TopK(4));
        let mut scratch = sharded.make_scratch();
        let topk = sharded.row_top_k_shared(&q, 4, &mut scratch);
        let expect = single.row_top_k(&q, 4);
        prop_assert!(
            topk_equivalent(&topk.lists, &expect.lists, 0.0),
            "top-k diverged from the unsharded dynamic engine"
        );
        let above = sharded.above_theta_shared(&q, 0.9, &mut scratch);
        let expect = single.above_theta(&q, 0.9);
        prop_assert_eq!(canonical_pairs(&above.entries), canonical_pairs(&expect.entries));
    }
}
