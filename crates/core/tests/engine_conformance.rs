//! Engine-trait conformance: every [`QueryKind`] × [`ExecOptions`]
//! combination, through `dyn Engine`, for all three engine backends —
//! asserted bit-identical to the classic (pre-refactor) entry points and
//! consistent with the naive baseline.
//!
//! This is the differential gate of the unified query surface: the planned
//! `request → plan → execute` path must return exactly what the direct
//! `above_theta_shared` / `row_top_k_shared` / floor / abs / adaptive
//! methods return, for [`Lemp`], [`DynamicLemp`] and [`ShardedLemp`]
//! alike. Above-θ entry values are compared bit-for-bit; Row-Top-k scores
//! are compared with tolerance 0.0 (bit-exact scores; at a tied k-boundary
//! the retained *ids* may legally differ between exact runs, never the
//! scores).

use lemp_baselines::types::{topk_equivalent, Entry, TopKLists};
use lemp_baselines::Naive;
use lemp_core::shard::ShardPolicy;
use lemp_core::{
    AdaptiveConfig, DynamicLemp, Engine, ExecOptions, Lemp, QueryKind, QueryRequest, QueryRows,
    ShardedLemp, WarmGoal,
};
use lemp_core::{BucketPolicy, RunConfig};
use lemp_data::synthetic::GeneratorConfig;
use lemp_linalg::VectorStore;

const DIM: usize = 8;
const K: usize = 4;
const THETA: f64 = 1.0;

fn fixture() -> (VectorStore, VectorStore) {
    let q = GeneratorConfig::gaussian(30, DIM, 1.0).generate(9000);
    let p = GeneratorConfig::gaussian(220, DIM, 1.2).generate(9001);
    (q, p)
}

/// A floor that bites: the median 3rd-best value, nudged off the exact
/// score so the comparison is insensitive to one-ulp formula differences.
fn biting_floor(q: &VectorStore, p: &VectorStore) -> f64 {
    let (full, _) = Naive.row_top_k(q, p, 3);
    let mut thirds: Vec<f64> = full.iter().filter(|l| l.len() >= 3).map(|l| l[2].score).collect();
    thirds.sort_by(f64::total_cmp);
    thirds[thirds.len() / 2] + 1e-7
}

/// The three warmed backends behind one trait-object handle each.
fn engines(q: &VectorStore, p: &VectorStore) -> Vec<(&'static str, Box<dyn Engine>)> {
    let mut single = Lemp::builder().sample_size(8).build(p);
    single.warm(q, WarmGoal::TopK(K));

    let config = RunConfig { sample_size: 8, ..Default::default() };
    let mut dynamic = DynamicLemp::new(p, BucketPolicy::default(), config);
    dynamic.warm(q, WarmGoal::TopK(K));

    let mut sharded =
        ShardedLemp::builder().shards(3).policy(ShardPolicy::LengthBanded).sample_size(8).build(p);
    sharded.warm(q, WarmGoal::TopK(K));

    vec![
        ("Lemp", Box::new(single) as Box<dyn Engine>),
        ("DynamicLemp", Box::new(dynamic)),
        ("ShardedLemp", Box::new(sharded)),
    ]
}

fn kinds(floor: f64) -> Vec<QueryKind> {
    vec![
        QueryKind::AboveTheta { theta: THETA },
        QueryKind::AbsAboveTheta { theta: THETA },
        QueryKind::TopK { k: K },
        QueryKind::TopKWithFloor { k: K, floor },
    ]
}

fn option_sets() -> Vec<(&'static str, ExecOptions)> {
    let adaptive = AdaptiveConfig::default();
    vec![
        ("tuned", ExecOptions::default()),
        ("chunked", ExecOptions { chunk: Some(7), ..Default::default() }),
        ("adaptive", ExecOptions { adaptive: Some(adaptive), ..Default::default() }),
        ("adaptive+chunked", ExecOptions { adaptive: Some(adaptive), chunk: Some(5) }),
    ]
}

/// Canonical, bit-comparable form of an entry set.
fn canon(entries: &[Entry]) -> Vec<(u32, u32, u64)> {
    let mut v: Vec<(u32, u32, u64)> =
        entries.iter().map(|e| (e.query, e.probe, e.value.to_bits())).collect();
    v.sort_unstable();
    v
}

/// Classic entry-point results for all kinds, per engine, computed on the
/// concrete types before they disappear behind `dyn Engine`.
struct Classic {
    above: Vec<(u32, u32, u64)>,
    abs: Vec<(u32, u32, u64)>,
    topk: TopKLists,
    floored: TopKLists,
}

fn classic_for_single(engine: &Lemp, q: &VectorStore, floor: f64) -> Classic {
    let mut scratch = engine.make_scratch();
    Classic {
        above: canon(&engine.above_theta_shared(q, THETA, &mut scratch).entries),
        abs: canon(&engine.abs_above_theta_shared(q, THETA, &mut scratch).entries),
        topk: engine.row_top_k_shared(q, K, &mut scratch).lists,
        floored: engine.row_top_k_with_floor_shared(q, K, floor, &mut scratch).lists,
    }
}

fn classic_for_dynamic(engine: &DynamicLemp, q: &VectorStore, floor: f64) -> Classic {
    let mut scratch = engine.make_scratch();
    Classic {
        above: canon(&engine.above_theta_shared(q, THETA, &mut scratch).entries),
        abs: canon(&engine.abs_above_theta_shared(q, THETA, &mut scratch).entries),
        topk: engine.row_top_k_shared(q, K, &mut scratch).lists,
        floored: engine.row_top_k_with_floor_shared(q, K, floor, &mut scratch).lists,
    }
}

fn classic_for_sharded(engine: &ShardedLemp, q: &VectorStore, floor: f64) -> Classic {
    let mut scratch = engine.make_scratch();
    Classic {
        above: canon(&engine.above_theta_shared(q, THETA, &mut scratch).entries),
        abs: canon(&engine.abs_above_theta_shared(q, THETA, &mut scratch).entries),
        topk: engine.row_top_k_shared(q, K, &mut scratch).lists,
        floored: engine.row_top_k_with_floor_shared(q, K, floor, &mut scratch).lists,
    }
}

#[test]
fn every_kind_and_option_matches_the_classic_entry_points() {
    let (q, p) = fixture();
    let floor = biting_floor(&q, &p);

    // Naive ground truth, shared by every engine.
    let (naive_above, _) = Naive.above_theta(&q, &p, THETA);
    let naive_above = canon(&naive_above);
    let (naive_topk, _) = Naive.row_top_k(&q, &p, K);
    assert!(!naive_above.is_empty(), "fixture must produce entries");

    // Each backend is built once; the classic (pre-refactor) entry points
    // run on the concrete type, then the *same instance* answers through
    // the trait object — any divergence is a planned-path defect, not a
    // tuning difference.
    let mut single = Lemp::builder().sample_size(8).build(&p);
    single.warm(&q, WarmGoal::TopK(K));
    let classic_single = classic_for_single(&single, &q, floor);

    let config = RunConfig { sample_size: 8, ..Default::default() };
    let mut dynamic = DynamicLemp::new(&p, BucketPolicy::default(), config);
    dynamic.warm(&q, WarmGoal::TopK(K));
    let classic_dynamic = classic_for_dynamic(&dynamic, &q, floor);

    let mut sharded =
        ShardedLemp::builder().shards(3).policy(ShardPolicy::LengthBanded).sample_size(8).build(&p);
    sharded.warm(&q, WarmGoal::TopK(K));
    let classic_sharded = classic_for_sharded(&sharded, &q, floor);

    let backends: Vec<(&str, Box<dyn Engine>, Classic)> = vec![
        ("Lemp", Box::new(single), classic_single),
        ("DynamicLemp", Box::new(dynamic), classic_dynamic),
        ("ShardedLemp", Box::new(sharded), classic_sharded),
    ];

    for (name, boxed, classic) in backends {
        // The classic results themselves must match Naive (sanity).
        assert_eq!(
            classic.above.iter().map(|&(a, b, _)| (a, b)).collect::<Vec<_>>(),
            naive_above.iter().map(|&(a, b, _)| (a, b)).collect::<Vec<_>>(),
            "{name}: classic Above-θ diverges from Naive"
        );
        assert!(
            topk_equivalent(&classic.topk, &naive_topk, 1e-9),
            "{name}: classic Row-Top-k diverges from Naive"
        );

        let engine: &dyn Engine = boxed.as_ref();
        let mut scratch = engine.query_scratch();
        for kind in kinds(floor) {
            for (opt_name, options) in option_sets() {
                let request = QueryRequest { kind, options };
                let plan = engine.plan(&request);
                let response = engine.execute(&plan, &q, &mut scratch);
                let label = format!("{name} / {} / {opt_name}", kind.name());
                match (&response.rows, &kind) {
                    (QueryRows::Entries(entries), QueryKind::AboveTheta { .. }) => {
                        assert_eq!(canon(entries), classic.above, "{label}");
                    }
                    (QueryRows::Entries(entries), QueryKind::AbsAboveTheta { .. }) => {
                        assert_eq!(canon(entries), classic.abs, "{label}");
                    }
                    (QueryRows::Lists(lists), QueryKind::TopK { .. }) => {
                        assert!(topk_equivalent(lists, &classic.topk, 0.0), "{label}");
                    }
                    (QueryRows::Lists(lists), QueryKind::TopKWithFloor { .. }) => {
                        assert!(topk_equivalent(lists, &classic.floored, 0.0), "{label}");
                    }
                    _ => panic!("{label}: response shape does not match the kind"),
                }
                // Uniform statistics: every response reports its work.
                assert_eq!(response.stats.counters.queries, q.len() as u64, "{label}");
                assert!(response.stats.method_mix.total() > 0, "{label}: empty method mix");
            }
        }
    }
}

#[test]
fn quantized_engines_answer_bit_identically_for_every_kind_and_backend() {
    // The quantized differential suite: engines carrying 8-bit probe codes
    // must answer every QueryKind × ExecOptions combination **bit-for-bit**
    // like their full-precision twins, on all three backends. The QUANT
    // scan only prunes with the distortion-lifted bound; verification
    // against the full-precision vectors restores exactness — any
    // divergence here is a broken bound, not a tolerance issue.
    let (q, p) = fixture();
    let floor = biting_floor(&q, &p);

    let mut single = Lemp::builder().sample_size(8).build(&p);
    single.warm(&q, WarmGoal::TopK(K));
    let exact_single = classic_for_single(&single, &q, floor);

    let mut quant_single = Lemp::builder().sample_size(8).quantize(8).build(&p);
    quant_single.warm(&q, WarmGoal::TopK(K));
    assert!(
        quant_single.buckets().buckets().iter().all(|b| b.indexes.quant.is_some()),
        "warm must train every bucket's codebooks"
    );

    let config = RunConfig { sample_size: 8, quantize_bits: 8, ..Default::default() };
    let mut quant_dynamic = DynamicLemp::new(&p, BucketPolicy::default(), config);
    quant_dynamic.warm(&q, WarmGoal::TopK(K));

    let mut quant_sharded = ShardedLemp::builder()
        .shards(3)
        .policy(ShardPolicy::LengthBanded)
        .sample_size(8)
        .quantize(8)
        .build(&p);
    quant_sharded.warm(&q, WarmGoal::TopK(K));

    let backends: Vec<(&str, Box<dyn Engine>)> = vec![
        ("Lemp+quant", Box::new(quant_single)),
        ("DynamicLemp+quant", Box::new(quant_dynamic)),
        ("ShardedLemp+quant", Box::new(quant_sharded)),
    ];
    for (name, boxed) in backends {
        let engine: &dyn Engine = boxed.as_ref();
        let mut scratch = engine.query_scratch();
        for kind in kinds(floor) {
            for (opt_name, options) in option_sets() {
                let request = QueryRequest { kind, options };
                let plan = engine.plan(&request);
                let response = engine.execute(&plan, &q, &mut scratch);
                let label = format!("{name} / {} / {opt_name}", kind.name());
                match (&response.rows, &kind) {
                    (QueryRows::Entries(entries), QueryKind::AboveTheta { .. }) => {
                        assert_eq!(canon(entries), exact_single.above, "{label}");
                    }
                    (QueryRows::Entries(entries), QueryKind::AbsAboveTheta { .. }) => {
                        assert_eq!(canon(entries), exact_single.abs, "{label}");
                    }
                    (QueryRows::Lists(lists), QueryKind::TopK { .. }) => {
                        assert!(topk_equivalent(lists, &exact_single.topk, 0.0), "{label}");
                    }
                    (QueryRows::Lists(lists), QueryKind::TopKWithFloor { .. }) => {
                        assert!(topk_equivalent(lists, &exact_single.floored, 0.0), "{label}");
                    }
                    _ => panic!("{label}: response shape does not match the kind"),
                }
            }
        }
    }
}

#[test]
fn k_edge_cases_are_clamped_identically_across_engines() {
    let (q, p) = fixture();
    let n = p.len();
    for (name, engine) in engines(&q, &p) {
        let mut scratch = engine.query_scratch();
        // k = 0: empty lists, no panic.
        let zero = engine.run(&QueryRequest::top_k(0), &q, &mut scratch);
        assert!(
            zero.lists().unwrap().iter().all(Vec::is_empty),
            "{name}: k = 0 must return empty lists"
        );
        // k beyond the probe count (and a hostile k that would overflow a
        // heap allocation without the clamp): every probe comes back.
        for k in [n + 100, usize::MAX] {
            let all = engine.run(&QueryRequest::top_k(k), &q, &mut scratch);
            for (qi, list) in all.lists().unwrap().iter().enumerate() {
                assert_eq!(list.len(), n, "{name}: k = {k}, query {qi}");
            }
        }
    }
    // The classic entry points clamp the same way (unified semantics).
    let mut lazy = Lemp::builder().sample_size(8).build(&p);
    let out = lazy.row_top_k(&q, usize::MAX);
    assert!(out.lists.iter().all(|l| l.len() == n));
    let config = RunConfig { sample_size: 8, ..Default::default() };
    let mut dynamic = DynamicLemp::new(&p, BucketPolicy::default(), config);
    let out = dynamic.row_top_k(&q, usize::MAX);
    assert!(out.lists.iter().all(|l| l.len() == n));
}

#[test]
fn dyn_handles_share_one_call_site() {
    // The acceptance property of the refactor, in miniature: one loop, no
    // per-engine match arms, three backends.
    let (q, p) = fixture();
    let request = QueryRequest::top_k(K);
    let mut lists: Vec<TopKLists> = Vec::new();
    for (_, engine) in engines(&q, &p) {
        let mut scratch = engine.query_scratch();
        lists.push(engine.run(&request, &q, &mut scratch).into_top_k().lists);
    }
    // All three backends agree bit-for-bit on the scores.
    assert!(topk_equivalent(&lists[0], &lists[1], 0.0), "Lemp vs DynamicLemp");
    assert!(topk_equivalent(&lists[0], &lists[2], 0.0), "Lemp vs ShardedLemp");
}

#[test]
fn plans_describe_the_tuned_assignment() {
    let (q, p) = fixture();
    for (name, engine) in engines(&q, &p) {
        let plan = engine.plan(&QueryRequest::above_theta(THETA));
        assert_eq!(plan.segments().len(), engine.shard_count(), "{name}");
        let buckets: usize = plan.segments().iter().map(|s| s.bucket_count()).sum();
        assert!(buckets > 0, "{name}: plan covers no buckets");
        let summary = plan.describe();
        assert!(summary.contains("above-theta"), "{name}: {summary}");
    }
}

#[test]
#[should_panic(expected = "scratch was made for a")]
fn scratch_from_another_engine_kind_is_rejected() {
    let (q, p) = fixture();
    let mut single = Lemp::builder().sample_size(8).build(&p);
    single.warm(&q, WarmGoal::TopK(K));
    let mut sharded = ShardedLemp::builder().shards(2).sample_size(8).build(&p);
    sharded.warm(&q, WarmGoal::TopK(K));
    let mut wrong = (&sharded as &dyn Engine).query_scratch();
    let single: &dyn Engine = &single;
    let _ = single.run(&QueryRequest::top_k(1), &q, &mut wrong);
}

#[test]
fn chunked_execution_matches_the_streaming_shims() {
    // The chunked ExecOption must agree with the pre-existing chunked
    // streaming entry points (which remain for sink-style consumers).
    let (q, p) = fixture();
    let mut engine = Lemp::builder().sample_size(8).build(&p);
    engine.warm(&q, WarmGoal::Above(THETA));
    let mut scratch = engine.make_scratch();
    let mut streamed: Vec<Entry> = Vec::new();
    engine.above_theta_chunked_shared(&q, THETA, 7, &mut scratch, |es| {
        streamed.extend_from_slice(es)
    });
    let planned = {
        let engine: &dyn Engine = &engine;
        let mut scratch = engine.query_scratch();
        engine.run(&QueryRequest::above_theta(THETA).chunked(7), &q, &mut scratch).into_above()
    };
    assert_eq!(canon(&planned.entries), canon(&streamed));
}
