//! Property-based tests for engine persistence: any engine an arbitrary
//! probe store produces must round-trip bit-exactly through the binary
//! image, for both the static and dynamic engines.

use lemp_core::dynamic::DynamicLemp;
use lemp_core::{BucketPolicy, Lemp, RunConfig};
use lemp_linalg::VectorStore;
use proptest::prelude::*;

fn store_strategy() -> impl Strategy<Value = VectorStore> {
    (1usize..=6).prop_flat_map(|dim| {
        proptest::collection::vec(
            (proptest::collection::vec(-2.0f64..2.0, dim), -3.0f64..3.0),
            0..=50,
        )
        .prop_map(move |rows| {
            let scaled: Vec<Vec<f64>> = rows
                .into_iter()
                .map(|(mut v, log_scale)| {
                    let s = 10f64.powf(log_scale);
                    for x in &mut v {
                        *x *= s;
                    }
                    v
                })
                .collect();
            if scaled.is_empty() {
                VectorStore::empty(dim).expect("dim > 0")
            } else {
                VectorStore::from_rows(&scaled).expect("valid rows")
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn static_engine_roundtrips_bit_exactly(
        probes in store_strategy(),
        min_bucket in 1usize..=20,
        sample in 0usize..=10,
    ) {
        let policy = BucketPolicy { min_bucket, cache_bytes: 16 << 10, ..Default::default() };
        let engine = Lemp::builder()
            .policy(policy)
            .sample_size(sample)
            .build(&probes);
        let mut buf = Vec::new();
        engine.write_to(&mut buf).expect("in-memory write succeeds");
        let loaded = Lemp::read_from(&buf[..]).expect("image written by us loads");
        prop_assert_eq!(loaded.config(), engine.config());
        prop_assert_eq!(loaded.buckets().bucket_count(), engine.buckets().bucket_count());
        prop_assert_eq!(loaded.buckets().total(), engine.buckets().total());
        for (a, b) in loaded.buckets().buckets().iter().zip(engine.buckets().buckets()) {
            prop_assert_eq!(&a.ids, &b.ids);
            prop_assert_eq!(a.origs.as_flat(), b.origs.as_flat());
            prop_assert_eq!(a.max_len.to_bits(), b.max_len.to_bits());
            prop_assert_eq!(a.min_len.to_bits(), b.min_len.to_bits());
        }
        // writing the loaded engine again gives the identical image
        let mut buf2 = Vec::new();
        loaded.write_to(&mut buf2).expect("second write succeeds");
        prop_assert_eq!(buf, buf2, "image is not a fixed point");
    }

    #[test]
    fn dynamic_engine_roundtrips_through_edits(
        probes in store_strategy(),
        removals in proptest::collection::vec(0u32..60, 0..12),
    ) {
        let policy = BucketPolicy { min_bucket: 4, cache_bytes: 16 << 10, ..Default::default() };
        let mut engine = DynamicLemp::new(&probes, policy, RunConfig::default());
        for id in removals {
            engine.remove(id);
        }
        engine.insert(&vec![0.5; probes.dim()]).expect("valid insert");
        let mut buf = Vec::new();
        engine.write_to(&mut buf).expect("in-memory write succeeds");
        let loaded = DynamicLemp::read_from(&buf[..]).expect("image loads");
        prop_assert_eq!(loaded.len(), engine.len());
        prop_assert_eq!(loaded.next_id(), engine.next_id());
        for id in 0..engine.next_id() {
            prop_assert_eq!(loaded.contains(id), engine.contains(id));
        }
        let (ids_a, store_a) = engine.live_vectors();
        let (ids_b, store_b) = loaded.live_vectors();
        prop_assert_eq!(ids_a, ids_b);
        prop_assert_eq!(store_a.as_flat(), store_b.as_flat());
    }
}
