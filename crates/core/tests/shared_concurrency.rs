//! Concurrent correctness of the warmed, `&self`-shareable query path.
//!
//! One engine is warmed once and then shared (plain `&Lemp`, no locking)
//! by many threads running interleaved Row-Top-k and Above-θ calls; every
//! result must be identical to the single-threaded `&mut` run. This is the
//! invariant `lemp-serve` builds on: after `warm`, the hot path only reads
//! the engine, so the retrieval phase is embarrassingly parallel across
//! requests (the paper runs single-threaded only as an experimental
//! control, Sec. 6).

use lemp_baselines::types::{canonical_pairs, topk_equivalent};
use lemp_baselines::Naive;
use lemp_core::shard::ShardPolicy;
use lemp_core::{AdaptiveConfig, BucketPolicy, ShardedLemp};
use lemp_core::{DynamicLemp, Lemp, LempVariant, RunConfig, WarmGoal};
use lemp_data::synthetic::GeneratorConfig;
use lemp_linalg::VectorStore;

fn fixture(m: usize, n: usize, seed: u64) -> (VectorStore, VectorStore) {
    let q = GeneratorConfig::gaussian(m, 10, 1.0).generate(seed);
    let p = GeneratorConfig::gaussian(n, 10, 1.2).generate(seed + 1);
    (q, p)
}

#[test]
fn warm_then_shared_matches_mut_paths() {
    let (q, p) = fixture(50, 400, 9000);
    for variant in LempVariant::all() {
        if variant.is_approximate() {
            continue;
        }
        let mut reference = Lemp::builder().variant(variant).sample_size(8).build(&p);
        let above_expect = reference.above_theta(&q, 1.1);
        let topk_expect = reference.row_top_k(&q, 5);

        let mut engine = Lemp::builder().variant(variant).sample_size(8).build(&p);
        let report = engine.warm(&q, WarmGoal::TopK(5));
        assert!(engine.is_warm());
        assert!(report.indexes_built > 0, "{}: warm must build indexes", variant.name());

        let mut scratch = engine.make_scratch();
        let above = engine.above_theta_shared(&q, 1.1, &mut scratch);
        assert_eq!(
            canonical_pairs(&above.entries),
            canonical_pairs(&above_expect.entries),
            "{} shared Above-θ diverges",
            variant.name()
        );
        assert_eq!(above.stats.indexes_built, 0, "shared path must not build");
        let topk = engine.row_top_k_shared(&q, 5, &mut scratch);
        assert!(
            topk_equivalent(&topk.lists, &topk_expect.lists, 1e-9),
            "{} shared Row-Top-k diverges",
            variant.name()
        );
    }
}

#[test]
fn blsh_warm_shared_matches_mut() {
    // The approximate variant must at least be *deterministically* equal
    // between the shared and the (fresh-engine) mut path: same signatures,
    // same minimum-match table, same candidates.
    let (q, p) = fixture(40, 300, 9100);
    let mut reference = Lemp::builder().variant(LempVariant::Blsh).build(&p);
    let expect = reference.above_theta(&q, 1.0);
    let mut engine = Lemp::builder().variant(LempVariant::Blsh).build(&p);
    engine.warm(&q, WarmGoal::Above(1.0));
    let mut scratch = engine.make_scratch();
    let got = engine.above_theta_shared(&q, 1.0, &mut scratch);
    assert_eq!(canonical_pairs(&got.entries), canonical_pairs(&expect.entries));
}

#[test]
fn n_threads_sharing_one_engine_match_single_threaded_run() {
    let (q, p) = fixture(60, 500, 9200);
    let k = 7;
    let theta = 1.0;

    // Single-threaded ground truth through the classic `&mut` API.
    let mut reference = Lemp::builder().sample_size(8).build(&p);
    let topk_expect = reference.row_top_k(&q, k);
    let above_expect = reference.above_theta(&q, theta);

    let mut engine = Lemp::builder().sample_size(8).build(&p);
    engine.warm(&q, WarmGoal::TopK(k));
    let engine = engine; // freeze: from here on, shared borrows only

    const THREADS: usize = 8;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let (engine, q) = (&engine, &q);
                let (topk_expect, above_expect) = (&topk_expect, &above_expect);
                scope.spawn(move || {
                    let mut scratch = engine.make_scratch();
                    // Interleave the two problems so index reads overlap in
                    // as many ways as possible across threads.
                    for round in 0..3 {
                        if (t + round) % 2 == 0 {
                            let top = engine.row_top_k_shared(q, k, &mut scratch);
                            let above = engine.above_theta_shared(q, theta, &mut scratch);
                            assert!(topk_equivalent(&top.lists, &topk_expect.lists, 1e-9));
                            assert_eq!(
                                canonical_pairs(&above.entries),
                                canonical_pairs(&above_expect.entries)
                            );
                        } else {
                            let above = engine.above_theta_shared(q, theta, &mut scratch);
                            let top = engine.row_top_k_shared(q, k, &mut scratch);
                            assert_eq!(
                                canonical_pairs(&above.entries),
                                canonical_pairs(&above_expect.entries)
                            );
                            assert!(topk_equivalent(&top.lists, &topk_expect.lists, 1e-9));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("shared-engine worker panicked");
        }
    });
}

#[test]
fn shared_floor_abs_adaptive_and_chunked_match() {
    let (q, p) = fixture(40, 250, 9300);
    let mut reference = Lemp::builder().sample_size(8).build(&p);
    let floor_expect = reference.row_top_k_with_floor(&q, 4, 0.8);
    let abs_expect = reference.abs_above_theta(&q, 1.2);

    let mut engine = Lemp::builder().sample_size(8).build(&p);
    engine.warm(&q, WarmGoal::Above(1.2));
    let mut scratch = engine.make_scratch();

    let floored = engine.row_top_k_with_floor_shared(&q, 4, 0.8, &mut scratch);
    assert!(topk_equivalent(&floored.lists, &floor_expect.lists, 1e-9));

    let abs = engine.abs_above_theta_shared(&q, 1.2, &mut scratch);
    assert_eq!(canonical_pairs(&abs.entries), canonical_pairs(&abs_expect.entries));

    // Adaptive (bandit) selection over the shared engine: exact results,
    // learning state in the caller's selector.
    let acfg = AdaptiveConfig::default();
    let mut selector = engine.adaptive_selector(&acfg);
    let above = engine.above_theta_adaptive_shared(&q, 1.2, &mut selector, &mut scratch);
    let (expect_entries, _) = Naive.above_theta(&q, &p, 1.2);
    assert_eq!(canonical_pairs(&above.entries), canonical_pairs(&expect_entries));
    assert!(selector.total_pulls() > 0);
    let topk = engine.row_top_k_adaptive_shared(&q, 4, &mut selector, &mut scratch);
    let (expect_topk, _) = Naive.row_top_k(&q, &p, 4);
    assert!(topk_equivalent(&topk.lists, &expect_topk, 1e-9));

    // Chunked streaming through &self.
    let mut collected = Vec::new();
    engine
        .above_theta_chunked_shared(&q, 1.2, 7, &mut scratch, |es| collected.extend_from_slice(es));
    let mono = engine.above_theta_shared(&q, 1.2, &mut scratch);
    assert_eq!(canonical_pairs(&collected), canonical_pairs(&mono.entries));
    let mut lists = vec![Vec::new(); q.len()];
    engine.row_top_k_chunked_shared(&q, 4, 9, &mut scratch, |qid, list| {
        lists[qid as usize] = list.to_vec()
    });
    assert!(topk_equivalent(&lists, &expect_topk, 1e-9));
}

#[test]
fn mut_wrappers_are_shims_after_warm() {
    // After warm, the &mut convenience wrappers route through the shared
    // path: results stay identical and no further indexes are built.
    let (q, p) = fixture(30, 200, 9400);
    let mut engine = Lemp::builder().sample_size(8).build(&p);
    let before = engine.row_top_k(&q, 3);
    engine.warm(&q, WarmGoal::TopK(3));
    let after = engine.row_top_k(&q, 3);
    assert!(topk_equivalent(&before.lists, &after.lists, 0.0));
    assert_eq!(after.stats.indexes_built, 0);
    let above = engine.above_theta(&q, 1.0);
    assert_eq!(above.stats.indexes_built, 0);
}

#[test]
fn dynamic_engine_stays_warm_across_edits() {
    let (q, p) = fixture(30, 260, 9500);
    let policy = BucketPolicy { min_bucket: 8, cache_bytes: 64 << 10, ..Default::default() };
    let config = RunConfig { sample_size: 8, ..Default::default() };
    let mut engine = DynamicLemp::new(&p, policy, config);
    engine.warm(&q, WarmGoal::TopK(5));
    assert!(engine.is_warm());

    // Churn through inserts (absorbing, bucket-opening, splitting) and
    // removals; the engine must stay warm and the shared path must agree
    // with a naive scan of the live set after every phase.
    let extra = GeneratorConfig::gaussian(40, 10, 2.5).generate(9600);
    for i in 0..extra.len() {
        engine.insert(extra.vector(i)).unwrap();
    }
    engine.insert(&[1e5; 10]).unwrap(); // far out of range: opens a bucket
    for id in (0..260u32).step_by(3) {
        engine.remove(id);
    }
    assert!(engine.is_warm());

    let (ids, live) = engine.live_vectors();
    let (naive_entries, _) = Naive.above_theta(&q, &live, 1.5);
    let expect: Vec<(u32, u32)> = {
        let mut v: Vec<(u32, u32)> =
            naive_entries.iter().map(|e| (e.query, ids[e.probe as usize])).collect();
        v.sort_unstable();
        v
    };
    let mut scratch = engine.make_scratch();
    let got = engine.above_theta_shared(&q, 1.5, &mut scratch);
    assert_eq!(canonical_pairs(&got.entries), expect);
    assert_eq!(got.stats.indexes_built, 0, "edits must re-warm eagerly");

    // Concurrent readers over the edited engine.
    let (naive_topk, _) = Naive.row_top_k(&q, &live, 5);
    let expect_topk: Vec<Vec<lemp_linalg::ScoredItem>> = naive_topk
        .iter()
        .map(|l| {
            l.iter()
                .map(|it| lemp_linalg::ScoredItem { id: ids[it.id] as usize, score: it.score })
                .collect()
        })
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let (engine, q, expect_topk) = (&engine, &q, &expect_topk);
            scope.spawn(move || {
                let mut scratch = engine.make_scratch();
                let top = engine.row_top_k_shared(q, 5, &mut scratch);
                assert!(topk_equivalent(&top.lists, expect_topk, 1e-9));
            });
        }
    });

    // Compaction keeps the engine warm too.
    engine.rebuild();
    assert!(engine.is_warm());
    let got = engine.above_theta_shared(&q, 1.5, &mut scratch);
    assert_eq!(canonical_pairs(&got.entries), expect);
}

#[test]
fn n_threads_sharing_one_sharded_engine_match_single_threaded_run() {
    let (q, p) = fixture(40, 420, 9900);
    let k = 5;
    let theta = 1.0;

    // Single-threaded ground truth: the unsharded warmed engine.
    let mut reference = Lemp::builder().sample_size(8).build(&p);
    reference.warm(&q, WarmGoal::TopK(k));
    let mut rscratch = reference.make_scratch();
    let topk_expect = reference.row_top_k_shared(&q, k, &mut rscratch);
    let above_expect = reference.above_theta_shared(&q, theta, &mut rscratch);

    let mut engine = ShardedLemp::builder()
        .shards(3)
        .policy(ShardPolicy::LengthBanded)
        .sample_size(8)
        .threads(2) // shard fan-out *inside* each request, on top of N clients
        .build(&p);
    engine.warm(&q, WarmGoal::TopK(k));
    let engine = engine; // freeze: shared borrows only

    const THREADS: usize = 6;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let (engine, q) = (&engine, &q);
                let (topk_expect, above_expect) = (&topk_expect, &above_expect);
                scope.spawn(move || {
                    let mut scratch = engine.make_scratch();
                    for round in 0..3 {
                        if (t + round) % 2 == 0 {
                            let top = engine.row_top_k_shared(q, k, &mut scratch);
                            assert!(topk_equivalent(&top.lists, &topk_expect.lists, 0.0));
                        } else {
                            let above = engine.above_theta_shared(q, theta, &mut scratch);
                            assert_eq!(
                                canonical_pairs(&above.entries),
                                canonical_pairs(&above_expect.entries)
                            );
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("sharded-engine worker panicked");
        }
    });
}

#[test]
fn rebuild_under_changed_thread_count_preserves_warmth() {
    // Regression guard for the warm-preserving invariant: `set_threads`
    // and `rebuild` were never exercised together — a service that scales
    // its thread pool and then compacts must stay warm and exact.
    let (q, p) = fixture(25, 240, 9950);
    let policy = BucketPolicy { min_bucket: 8, cache_bytes: 64 << 10, ..Default::default() };
    let config = RunConfig { sample_size: 8, ..Default::default() };
    let mut engine = DynamicLemp::new(&p, policy, config);
    engine.warm(&q, WarmGoal::TopK(4));
    assert!(engine.is_warm());

    // Churn so the rebuild actually reshapes buckets.
    for id in (0..240u32).step_by(5) {
        engine.remove(id);
    }
    let extra = GeneratorConfig::gaussian(30, 10, 2.0).generate(9951);
    for i in 0..extra.len() {
        engine.insert(extra.vector(i)).unwrap();
    }

    for threads in [4usize, 1, 3] {
        engine.set_threads(threads);
        engine.rebuild();
        assert!(engine.is_warm(), "rebuild under threads={threads} lost warmth");

        let (ids, live) = engine.live_vectors();
        let (naive_entries, _) = Naive.above_theta(&q, &live, 1.2);
        let expect: Vec<(u32, u32)> = {
            let mut v: Vec<(u32, u32)> =
                naive_entries.iter().map(|e| (e.query, ids[e.probe as usize])).collect();
            v.sort_unstable();
            v
        };
        let mut scratch = engine.make_scratch();
        let got = engine.above_theta_shared(&q, 1.2, &mut scratch);
        assert_eq!(canonical_pairs(&got.entries), expect, "threads={threads}");
        assert_eq!(
            got.stats.indexes_built, 0,
            "threads={threads}: rebuild must re-index eagerly, not lazily"
        );
    }
}

#[test]
#[should_panic(expected = "requires a warmed engine")]
fn shared_query_without_warm_panics() {
    let (q, p) = fixture(5, 40, 9700);
    let engine = Lemp::builder().build(&p);
    let mut scratch = engine.make_scratch();
    let _ = engine.row_top_k_shared(&q, 2, &mut scratch);
}

#[test]
fn from_engine_wraps_a_loaded_static_image() {
    // The serve path: persist a static engine, load it back, wrap it as a
    // dynamic engine, warm, and query through &self.
    let (q, p) = fixture(20, 150, 9800);
    let engine = Lemp::builder().sample_size(8).build(&p);
    let mut buf = Vec::new();
    engine.write_to(&mut buf).unwrap();
    let loaded = Lemp::read_from(&buf[..]).unwrap();
    let mut dynamic = DynamicLemp::from_engine(loaded, BucketPolicy::default());
    assert_eq!(dynamic.len(), p.len());
    assert_eq!(dynamic.next_id(), p.len() as u32);
    dynamic.warm(&q, WarmGoal::TopK(3));
    let (expect, _) = Naive.row_top_k(&q, &p, 3);
    let mut scratch = dynamic.make_scratch();
    let got = dynamic.row_top_k_shared(&q, 3, &mut scratch);
    assert!(topk_equivalent(&got.lists, &expect, 1e-9));
    // …and it keeps accepting edits.
    let id = dynamic.insert(&[2.0; 10]).unwrap();
    assert_eq!(id, p.len() as u32);
    assert!(dynamic.remove(id));
}
