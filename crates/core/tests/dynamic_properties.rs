//! Property tests for [`DynamicLemp`] edit sequences: arbitrary
//! insert/remove/rebuild interleavings must leave an engine that (a)
//! upholds both bucket-maintenance invariants, (b) reports exactly the
//! live set an independent oracle tracked, and (c) answers queries
//! **bit-identically** to an engine built from scratch over the same live
//! vectors.
//!
//! Property (c) is what makes this suite double as the WAL-replay oracle
//! of `lemp-store`: recovery replays an edit sequence onto a snapshot, so
//! "any edit sequence ≡ from-scratch build over its live set" is exactly
//! the guarantee that recovered engines answer like never-crashed ones.

use lemp_core::{BucketPolicy, DynamicLemp, RunConfig};
use lemp_data::synthetic::GeneratorConfig;
use lemp_linalg::VectorStore;
use proptest::prelude::*;

const DIM: usize = 3;

fn policy() -> BucketPolicy {
    BucketPolicy { min_bucket: 4, cache_bytes: 16 << 10, ..Default::default() }
}

fn config() -> RunConfig {
    RunConfig { sample_size: 4, ..Default::default() }
}

fn initial(rows: usize) -> VectorStore {
    if rows == 0 {
        VectorStore::empty(DIM).expect("dim > 0")
    } else {
        GeneratorConfig::gaussian(rows, DIM, 1.0).generate(4700)
    }
}

/// Bucket-maintenance invariants (within-bucket order, partitioned length
/// axis, unique live ids), checked through the public inspection surface.
fn check_invariants(engine: &DynamicLemp) {
    let mut prev_min = f64::INFINITY;
    let mut seen = std::collections::BTreeSet::new();
    for bucket in engine.buckets().buckets() {
        assert!(!bucket.ids.is_empty(), "empty bucket retained");
        assert!(bucket.max_len <= prev_min, "inter-bucket order broken");
        assert_eq!(bucket.lengths[0].to_bits(), bucket.max_len.to_bits());
        assert_eq!(bucket.lengths[bucket.ids.len() - 1].to_bits(), bucket.min_len.to_bits());
        for w in bucket.lengths.windows(2) {
            assert!(w[0] >= w[1], "within-bucket order broken");
        }
        for &id in &bucket.ids {
            assert!(engine.contains(id), "dead id {id} in a bucket");
            assert!(seen.insert(id), "id {id} in two buckets");
        }
        prev_min = bucket.min_len;
    }
    assert_eq!(seen.len(), engine.len(), "live count disagrees with bucket contents");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_edit_scripts_match_a_from_scratch_build(
        init in 0usize..=30,
        ops in proptest::collection::vec(
            (
                0u8..10,                                   // 0-4 insert, 5-8 remove, 9 rebuild
                proptest::collection::vec(-2.0f64..2.0, DIM),
                0u64..1_000_000,                           // live-id selector for removals
                -2.0f64..2.0,                              // log10 length scale for inserts
            ),
            1..=40,
        ),
    ) {
        let probes = initial(init);
        let mut engine = DynamicLemp::new(&probes, policy(), config());
        // The oracle: id → vector while live (ids are dense from 0).
        let mut oracle: Vec<Option<Vec<f64>>> =
            (0..init).map(|i| Some(probes.vector(i).to_vec())).collect();

        for (kind, coords, selector, log_scale) in &ops {
            let live: Vec<u32> = oracle
                .iter()
                .enumerate()
                .filter_map(|(id, v)| v.as_ref().map(|_| id as u32))
                .collect();
            if *kind < 5 || live.is_empty() {
                let scale = 10f64.powf(*log_scale);
                let v: Vec<f64> = coords.iter().map(|x| x * scale).collect();
                let id = engine.insert(&v).expect("valid insert");
                prop_assert_eq!(id as usize, oracle.len(), "ids must stay dense");
                oracle.push(Some(v));
            } else if *kind < 9 {
                let id = live[(*selector as usize) % live.len()];
                prop_assert!(engine.remove(id), "live id {} must remove", id);
                oracle[id as usize] = None;
            } else {
                engine.rebuild();
            }
        }
        check_invariants(&engine);

        // (b) The live set matches the oracle exactly, bit for bit.
        let (ids, live_store) = engine.live_vectors();
        let expect_ids: Vec<u32> = oracle
            .iter()
            .enumerate()
            .filter_map(|(id, v)| v.as_ref().map(|_| id as u32))
            .collect();
        prop_assert_eq!(&ids, &expect_ids);
        for (row, &id) in ids.iter().enumerate() {
            let expect = oracle[id as usize].as_ref().expect("listed ids are live");
            prop_assert_eq!(live_store.vector(row), &expect[..], "vector of id {} mutated", id);
        }

        // (c) Queries answer bit-identically to a from-scratch build over
        // the same live vectors (fresh ids are 0..n in ascending stable-id
        // order, so `ids` maps them back).
        let queries = GeneratorConfig::gaussian(8, DIM, 1.0).generate(4701);
        let mut fresh = DynamicLemp::new(&live_store, policy(), config());
        let theta = 1.0;
        let got: Vec<(u32, u32, u64)> = {
            let out = engine.above_theta(&queries, theta);
            let mut v: Vec<(u32, u32, u64)> =
                out.entries.iter().map(|e| (e.query, e.probe, e.value.to_bits())).collect();
            v.sort_unstable();
            v
        };
        let expect: Vec<(u32, u32, u64)> = {
            let out = fresh.above_theta(&queries, theta);
            let mut v: Vec<(u32, u32, u64)> = out
                .entries
                .iter()
                .map(|e| (e.query, ids[e.probe as usize], e.value.to_bits()))
                .collect();
            v.sort_unstable();
            v
        };
        prop_assert_eq!(got, expect, "Above-θ diverges from the from-scratch build");

        let k = 3;
        let edited_topk = engine.row_top_k(&queries, k);
        let fresh_topk = fresh.row_top_k(&queries, k);
        prop_assert!(
            lemp_baselines::types::topk_equivalent(&edited_topk.lists, &fresh_topk.lists, 0.0),
            "Row-Top-k scores diverge from the from-scratch build"
        );
    }
}
