//! Probe bucketization (Sec. 3.2 of the paper).
//!
//! Preprocessing sorts the probe vectors by decreasing length and cuts the
//! sorted sequence greedily into buckets of roughly similar length: a new
//! bucket starts when the current length falls below a fixed fraction of the
//! bucket's longest vector ("e.g., 90 % of l_b"). Two size constraints apply:
//! buckets must not be too small ("at least a certain number of vectors — 30
//! in our implementation") because per-bucket overheads would dominate, and
//! not larger than the processor cache ("we select a maximum bucket size
//! that ensures that all relevant data structures fit into the processor
//! cache"). Each bucket stores the Fig. 4a layout: original column id,
//! length, and unit direction per vector, ordered by decreasing length.
//!
//! Indexes over a bucket (sorted lists for COORD/INCR, TA lists, a cover
//! tree, L2AP, signatures) are built **lazily on first use** — buckets that
//! every query prunes are never indexed ("LEMP constructs indexes lazily on
//! first use to further reduce computational cost").

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use lemp_apss::{BlshIndex, L2apIndex};
use lemp_baselines::{CoverTree, TaIndex};
use lemp_linalg::VectorStore;

use crate::index::{ColumnIndex, RowIndex};
use crate::quant::QuantizedBucket;

/// Controls the greedy bucketization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketPolicy {
    /// A new bucket starts when the next length drops below
    /// `length_ratio · l_b` (default 0.9, as in the paper).
    pub length_ratio: f64,
    /// Minimum vectors per bucket (default 30, as in the paper); the final
    /// bucket may be smaller if fewer vectors remain.
    pub min_bucket: usize,
    /// Cache budget per bucket in bytes: vectors plus both sorted-list index
    /// layouts must fit (default 4 MiB). `0` disables the cap — the
    /// *cache-oblivious* configuration of the Sec. 6.2 "caching effects"
    /// ablation.
    pub cache_bytes: usize,
    /// Seed for randomized per-bucket structures (BLSH hyperplanes).
    pub seed: u64,
}

impl Default for BucketPolicy {
    fn default() -> Self {
        Self { length_ratio: 0.9, min_bucket: 30, cache_bytes: 4 << 20, seed: 0x1E4D }
    }
}

impl BucketPolicy {
    /// Largest admissible bucket for vectors of dimensionality `dim`.
    ///
    /// Footprint per vector: the unit direction (8·dim), length + id (12),
    /// and the two sorted-list layouts ((8+4)·dim each). The cap never drops
    /// below `min_bucket` — a bucket must be able to exist.
    pub fn max_bucket(&self, dim: usize) -> usize {
        if self.cache_bytes == 0 {
            return usize::MAX;
        }
        let per_vector = 32 * dim + 12;
        (self.cache_bytes / per_vector).max(self.min_bucket.max(1))
    }
}

/// Lazily constructed per-bucket retrieval indexes.
#[derive(Debug, Default)]
pub struct BucketIndexes {
    /// Column-wise sorted lists for COORD (Appendix A).
    pub coord: Option<ColumnIndex>,
    /// Row-wise sorted lists for INCR (Appendix A).
    pub incr: Option<RowIndex>,
    /// TA sorted lists over the bucket's *original* (length-scaled) vectors.
    pub ta: Option<TaIndex>,
    /// Cover tree over the bucket's original vectors.
    pub tree: Option<CoverTree>,
    /// L2AP index over the unit directions (records its index threshold).
    pub l2ap: Option<L2apIndex>,
    /// BayesLSH signatures over the unit directions.
    pub blsh: Option<BlshIndex>,
    /// Quantized representation (subspace codebooks + packed codes) for the
    /// LUT scoring scan.
    pub quant: Option<QuantizedBucket>,
}

/// One probe bucket in the Fig. 4a layout.
#[derive(Debug)]
pub struct Bucket {
    /// Original probe column ids, by decreasing vector length.
    pub ids: Vec<u32>,
    /// Vector lengths `‖p‖`, same order (non-increasing).
    pub lengths: Vec<f64>,
    /// Unit directions `p̄`, same order.
    pub dirs: VectorStore,
    /// The original (unnormalized) vectors, same order. Verification
    /// computes inner products on these so results are bit-identical to a
    /// naive scan of the input (re-scaling `‖p‖·p̄` rounds differently and
    /// can flip entries sitting exactly on the threshold).
    pub origs: VectorStore,
    /// `l_b` — the length of the bucket's longest vector.
    pub max_len: f64,
    /// Length of the bucket's shortest vector (sound negative-θ regions).
    pub min_len: f64,
    /// Lazily built indexes.
    pub indexes: BucketIndexes,
}

impl Bucket {
    /// A bucket over the given rows (already sorted by non-increasing
    /// length). Used by the initial bucketization and by dynamic
    /// maintenance when splitting oversized buckets.
    pub(crate) fn from_sorted_rows(ids: Vec<u32>, origs: VectorStore) -> Self {
        debug_assert_eq!(ids.len(), origs.len());
        let (lengths, dirs) = origs.decompose();
        debug_assert!(lengths.windows(2).all(|w| w[0] >= w[1]));
        let max_len = lengths.first().copied().unwrap_or(0.0);
        let min_len = lengths.last().copied().unwrap_or(0.0);
        Self { ids, lengths, dirs, origs, max_len, min_len, indexes: BucketIndexes::default() }
    }

    /// Inserts a vector at the position keeping lengths non-increasing
    /// (after existing entries of equal length) and drops all indexes.
    /// Returns the insertion position.
    pub(crate) fn insert_sorted(&mut self, id: u32, v: &[f64], len: f64) -> usize {
        let pos = self.lengths.partition_point(|&l| l >= len);
        self.ids.insert(pos, id);
        self.lengths.insert(pos, len);
        let mut dir = v.to_vec();
        lemp_linalg::kernels::normalize(&mut dir);
        self.dirs.insert_row(pos, &dir).expect("dimension checked by caller");
        self.origs.insert_row(pos, v).expect("dimension checked by caller");
        self.max_len = self.lengths[0];
        self.min_len = *self.lengths.last().expect("non-empty after insert");
        self.indexes = BucketIndexes::default();
        pos
    }

    /// Removes the vector at bucket-local position `lid` and drops all
    /// indexes. The bucket may become empty; the caller disposes of it.
    pub(crate) fn remove_at(&mut self, lid: usize) {
        self.ids.remove(lid);
        self.lengths.remove(lid);
        self.dirs.remove_row(lid);
        self.origs.remove_row(lid);
        self.max_len = self.lengths.first().copied().unwrap_or(0.0);
        self.min_len = self.lengths.last().copied().unwrap_or(0.0);
        self.indexes = BucketIndexes::default();
    }

    /// Splits off the shorter half into a new bucket (used when dynamic
    /// inserts push a bucket past the cache cap). `self` keeps the longer
    /// half; both halves lose their indexes.
    pub(crate) fn split_off_tail(&mut self) -> Bucket {
        let mid = self.len() / 2;
        debug_assert!(mid >= 1 && mid < self.len(), "split needs ≥ 2 vectors");
        let tail_ids = self.ids.split_off(mid);
        let tail_rows: Vec<usize> = (mid..mid + tail_ids.len()).collect();
        let tail_origs = self.origs.select(&tail_rows);
        self.lengths.truncate(mid);
        let head_rows: Vec<usize> = (0..mid).collect();
        self.origs = self.origs.select(&head_rows);
        self.dirs = self.dirs.select(&head_rows);
        self.max_len = self.lengths[0];
        self.min_len = *self.lengths.last().expect("head non-empty");
        self.indexes = BucketIndexes::default();
        Bucket::from_sorted_rows(tail_ids, tail_origs)
    }

    /// Number of vectors in the bucket.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` if the bucket is empty (never produced by bucketization).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The original (unnormalized) vectors; the TA/cover-tree adapters
    /// index these directly since their algorithms work on raw inner
    /// products.
    pub fn original_vectors(&self) -> &VectorStore {
        &self.origs
    }

    /// Builds the COORD index if absent; returns whether it was built now.
    pub fn ensure_coord(&mut self) -> bool {
        if self.indexes.coord.is_none() {
            self.indexes.coord = Some(ColumnIndex::build(&self.dirs));
            true
        } else {
            false
        }
    }

    /// Builds the INCR index if absent; returns whether it was built now.
    pub fn ensure_incr(&mut self) -> bool {
        if self.indexes.incr.is_none() {
            self.indexes.incr = Some(RowIndex::build(&self.dirs));
            true
        } else {
            false
        }
    }

    /// Builds the TA index if absent; returns whether it was built now.
    pub fn ensure_ta(&mut self) -> bool {
        if self.indexes.ta.is_none() {
            self.indexes.ta = Some(TaIndex::build(&self.origs));
            true
        } else {
            false
        }
    }

    /// Builds the cover tree if absent; returns whether it was built now.
    pub fn ensure_tree(&mut self, base: f64) -> bool {
        if self.indexes.tree.is_none() {
            self.indexes.tree = Some(CoverTree::build(&self.origs, base));
            true
        } else {
            false
        }
    }

    /// Builds the L2AP index at threshold `t` if absent; returns whether it
    /// was built now.
    pub fn ensure_l2ap(&mut self, t: f64) -> bool {
        if self.indexes.l2ap.is_none() {
            self.indexes.l2ap = Some(L2apIndex::build(&self.dirs, t.clamp(1e-3, 1.0)));
            true
        } else {
            false
        }
    }

    /// Builds the BLSH signatures if absent; returns whether it was built
    /// now.
    pub fn ensure_blsh(&mut self, bits: usize, seed: u64) -> bool {
        if self.indexes.blsh.is_none() {
            self.indexes.blsh = Some(BlshIndex::build(&self.dirs, bits, seed));
            true
        } else {
            false
        }
    }

    /// Trains the quantized representation at the given code width if
    /// absent; returns whether it was built now. A zero or out-of-range
    /// `bits` leaves the bucket unquantized (train refuses it).
    pub fn ensure_quant(&mut self, bits: u8, seed: u64) -> bool {
        if self.indexes.quant.is_none() {
            self.indexes.quant = QuantizedBucket::train(&self.dirs, bits, seed);
            self.indexes.quant.is_some()
        } else {
            false
        }
    }
}

/// Resident bytes of an engine's probe storage, split by representation —
/// the observable behind the quantization compression ratio (`/stats`
/// reports one of these per shard).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MemoryUsage {
    /// Full-precision residency: unit directions and original vectors
    /// (8 bytes per coordinate each) plus per-probe length and id.
    pub full_bytes: u64,
    /// Quantized residency: codebooks + packed codes plus per-probe length
    /// and id; zero until codebooks are trained.
    pub quantized_bytes: u64,
}

impl MemoryUsage {
    /// Element-wise accumulation (aggregating buckets or shards).
    pub fn merge(&mut self, other: &MemoryUsage) {
        self.full_bytes += other.full_bytes;
        self.quantized_bytes += other.quantized_bytes;
    }
}

/// The preprocessed probe side: all buckets, by decreasing length.
#[derive(Debug)]
pub struct ProbeBuckets {
    dim: usize,
    total: usize,
    buckets: Vec<Bucket>,
    prep_ns: u64,
    /// Bucketization epoch: a process-globally unique stamp refreshed on
    /// every mutable access, so a compiled [`crate::QueryPlan`] can detect
    /// *any* change to the bucketization it was derived from — including
    /// count-preserving edits (an insert absorbed by an existing bucket,
    /// a re-tune) that leave every other observable unchanged.
    epoch: u64,
}

/// Process-global epoch source: every fresh stamp is strictly greater than
/// every stamp handed out before, so no two bucketization states — across
/// engines, rebuilds, or reloads — ever share an epoch.
static BUCKETS_EPOCH: AtomicU64 = AtomicU64::new(0);

fn next_epoch() -> u64 {
    BUCKETS_EPOCH.fetch_add(1, Ordering::Relaxed)
}

impl ProbeBuckets {
    /// Partitions `probes` into buckets under `policy` (the preprocessing
    /// phase of Alg. 1, lines 1–6, minus the lazy index construction).
    pub fn build(probes: &VectorStore, policy: &BucketPolicy) -> Self {
        assert!(policy.length_ratio > 0.0 && policy.length_ratio <= 1.0);
        assert!(policy.min_bucket >= 1);
        let start = Instant::now();
        let n = probes.len();
        let lengths = probes.lengths();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by(|&a, &b| {
            lengths[b as usize]
                .partial_cmp(&lengths[a as usize])
                .expect("finite lengths")
                .then(a.cmp(&b))
        });
        let max_bucket = policy.max_bucket(probes.dim().max(1));
        let mut buckets = Vec::new();
        let mut begin = 0usize;
        while begin < n {
            let bucket_max = lengths[order[begin] as usize];
            let cut = bucket_max * policy.length_ratio;
            let mut end = begin + 1;
            while end < n
                && end - begin < max_bucket
                && (end - begin < policy.min_bucket || lengths[order[end] as usize] >= cut)
            {
                end += 1;
            }
            let ids: Vec<u32> = order[begin..end].to_vec();
            let selected: Vec<usize> = ids.iter().map(|&i| i as usize).collect();
            let origs = probes.select(&selected);
            let (blen, dirs) = origs.decompose();
            let min_len = blen.last().copied().unwrap_or(0.0);
            buckets.push(Bucket {
                ids,
                lengths: blen,
                dirs,
                origs,
                max_len: bucket_max,
                min_len,
                indexes: BucketIndexes::default(),
            });
            begin = end;
        }
        Self {
            dim: probes.dim(),
            total: n,
            buckets,
            prep_ns: start.elapsed().as_nanos() as u64,
            epoch: next_epoch(),
        }
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total probe vectors across buckets.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Bucketization wall-clock in nanoseconds.
    pub fn prep_ns(&self) -> u64 {
        self.prep_ns
    }

    /// Buckets in decreasing-length order.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Mutable access (lazy index construction). Refreshes the epoch:
    /// any plan compiled before this call is considered stale.
    pub fn buckets_mut(&mut self) -> &mut [Bucket] {
        self.epoch = next_epoch();
        &mut self.buckets
    }

    /// The current bucketization epoch (see the field docs); compiled
    /// plans record it and refuse to execute against a different one.
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of buckets (the Sec. 6.2 ablation reports this: 403 vs 26 for
    /// cache-aware vs cache-oblivious KDD).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Probe-residency accounting: full-precision bytes vs the quantized
    /// representation's bytes, summed over buckets.
    pub fn memory_usage(&self) -> MemoryUsage {
        let mut mem = MemoryUsage::default();
        for b in &self.buckets {
            let n = b.len() as u64;
            mem.full_bytes += n * (16 * self.dim as u64 + 12);
            if let Some(q) = &b.indexes.quant {
                mem.quantized_bytes += q.resident_bytes() as u64 + 12 * n;
            }
        }
        mem
    }

    /// Full mutable access to the bucket vector, for dynamic maintenance
    /// (insertions may add or split buckets, removals may drop them).
    pub(crate) fn buckets_vec_mut(&mut self) -> &mut Vec<Bucket> {
        self.epoch = next_epoch();
        &mut self.buckets
    }

    /// Adjusts the recorded probe total after dynamic edits.
    pub(crate) fn set_total(&mut self, total: usize) {
        self.total = total;
    }

    /// Reassembles a bucket set from persisted parts (engine loading).
    pub(crate) fn from_parts(dim: usize, total: usize, buckets: Vec<Bucket>) -> Self {
        Self { dim, total, buckets, prep_ns: 0, epoch: next_epoch() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemp_data::synthetic::GeneratorConfig;

    fn probes(n: usize, cov: f64, seed: u64) -> VectorStore {
        GeneratorConfig::gaussian(n, 10, cov).generate(seed)
    }

    fn check_invariants(pb: &ProbeBuckets, store: &VectorStore, policy: &BucketPolicy) {
        // Partition: every probe id appears exactly once.
        let mut seen = vec![false; store.len()];
        for b in pb.buckets() {
            for &id in &b.ids {
                assert!(!seen[id as usize], "duplicate id {id}");
                seen[id as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "missing probes");
        // Ordering: bucket max lengths non-increasing; within bucket
        // non-increasing; max_len correct.
        let mut last_max = f64::INFINITY;
        for b in pb.buckets() {
            assert!(b.max_len <= last_max + 1e-12);
            last_max = b.max_len;
            assert!((b.lengths[0] - b.max_len).abs() < 1e-12);
            for w in b.lengths.windows(2) {
                assert!(w[0] >= w[1] - 1e-12);
            }
            // directions are unit (or zero)
            for (lid, d) in b.dirs.iter().enumerate() {
                let n = lemp_linalg::kernels::norm(d);
                assert!(
                    (n - 1.0).abs() < 1e-9 || (n == 0.0 && b.lengths[lid] == 0.0),
                    "direction norm {n}"
                );
            }
            // size caps
            assert!(b.len() <= policy.max_bucket(store.dim()));
        }
        // Min-size: all but the last bucket hold at least min_bucket vectors
        // unless the cache cap is tighter.
        let cap = policy.max_bucket(store.dim());
        for b in &pb.buckets()[..pb.bucket_count().saturating_sub(1)] {
            assert!(b.len() >= policy.min_bucket.min(cap));
        }
    }

    #[test]
    fn bucketization_invariants_hold() {
        for cov in [0.1, 0.5, 2.0, 5.0] {
            let store = probes(500, cov, 42);
            let policy =
                BucketPolicy { min_bucket: 10, cache_bytes: 64 << 10, ..Default::default() };
            let pb = ProbeBuckets::build(&store, &policy);
            check_invariants(&pb, &store, &policy);
        }
    }

    #[test]
    fn ratio_rule_starts_new_buckets() {
        // Two well-separated length groups must never share a bucket (when
        // the min size allows the split).
        let mut rows = Vec::new();
        for _ in 0..40 {
            rows.push(vec![10.0, 0.0]);
        }
        for _ in 0..40 {
            rows.push(vec![1.0, 0.0]);
        }
        let store = VectorStore::from_rows(&rows).unwrap();
        let policy = BucketPolicy { min_bucket: 5, ..Default::default() };
        let pb = ProbeBuckets::build(&store, &policy);
        for b in pb.buckets() {
            let lo = b.lengths.last().unwrap();
            assert!(b.max_len / lo < 2.0, "bucket mixes lengths {} and {lo}", b.max_len);
        }
    }

    #[test]
    fn min_bucket_prevents_tiny_buckets() {
        // Strictly decreasing lengths: the ratio rule alone would make
        // one-element buckets; min_bucket must override it.
        let rows: Vec<Vec<f64>> = (1..=100).map(|i| vec![1.5f64.powi(i), 0.0]).collect();
        let store = VectorStore::from_rows(&rows).unwrap();
        let policy = BucketPolicy { min_bucket: 30, ..Default::default() };
        let pb = ProbeBuckets::build(&store, &policy);
        for b in &pb.buckets()[..pb.bucket_count() - 1] {
            assert!(b.len() >= 30);
        }
    }

    #[test]
    fn cache_cap_limits_bucket_size() {
        let store = probes(2000, 0.0, 7); // equal lengths: one giant bucket without the cap
        let policy = BucketPolicy { cache_bytes: 32 << 10, ..Default::default() };
        let pb = ProbeBuckets::build(&store, &policy);
        let cap = policy.max_bucket(store.dim());
        assert!(pb.bucket_count() > 1);
        for b in pb.buckets() {
            assert!(b.len() <= cap);
        }
        // Cache-oblivious: one bucket.
        let policy = BucketPolicy { cache_bytes: 0, ..Default::default() };
        let pb = ProbeBuckets::build(&store, &policy);
        assert_eq!(pb.bucket_count(), 1);
    }

    #[test]
    fn skewed_lengths_make_more_buckets_than_uniform() {
        let uniform = ProbeBuckets::build(&probes(1000, 0.05, 1), &BucketPolicy::default());
        let skewed = ProbeBuckets::build(&probes(1000, 3.0, 2), &BucketPolicy::default());
        assert!(
            skewed.bucket_count() > uniform.bucket_count(),
            "skewed {} vs uniform {}",
            skewed.bucket_count(),
            uniform.bucket_count()
        );
    }

    #[test]
    fn original_vectors_roundtrip() {
        let store = probes(50, 1.0, 9);
        let pb = ProbeBuckets::build(&store, &BucketPolicy::default());
        for b in pb.buckets() {
            let orig = b.original_vectors();
            for (lid, &id) in b.ids.iter().enumerate() {
                // bit-exact copies of the input rows
                assert_eq!(orig.vector(lid), store.vector(id as usize));
            }
        }
    }

    #[test]
    fn lazy_indexes_build_once() {
        let store = probes(60, 0.5, 11);
        let mut pb = ProbeBuckets::build(&store, &BucketPolicy::default());
        let b = &mut pb.buckets_mut()[0];
        assert!(b.ensure_coord());
        assert!(!b.ensure_coord());
        assert!(b.ensure_incr());
        assert!(!b.ensure_incr());
        assert!(b.ensure_ta());
        assert!(!b.ensure_ta());
        assert!(b.ensure_tree(1.3));
        assert!(!b.ensure_tree(1.3));
        assert!(b.ensure_l2ap(0.5));
        assert!(!b.ensure_l2ap(0.9)); // first threshold wins
        assert!(b.ensure_blsh(32, 1));
        assert!(!b.ensure_blsh(32, 1));
    }

    #[test]
    fn empty_probe_store_gives_no_buckets() {
        let store = VectorStore::empty(4).unwrap();
        let pb = ProbeBuckets::build(&store, &BucketPolicy::default());
        assert_eq!(pb.bucket_count(), 0);
        assert_eq!(pb.total(), 0);
    }
}
