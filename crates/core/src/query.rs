//! Query-side preprocessing.
//!
//! Footnote 1 of the paper: "We also sort and normalize query vectors in a
//! manner similar to the bucketization of P." Sorting queries by decreasing
//! length lets the Above-θ inner loop *break* (instead of skip) at the first
//! pruned query — every shorter query has a larger local threshold.

use lemp_linalg::VectorStore;

/// Sorted, normalized queries.
#[derive(Debug)]
pub struct QueryBatch {
    /// Original query indexes, by decreasing length.
    pub ids: Vec<u32>,
    /// Lengths `‖q‖`, same order (non-increasing).
    pub lengths: Vec<f64>,
    /// Unit directions `q̄`, same order.
    pub dirs: VectorStore,
    /// Largest query length (drives L2AP's index threshold, Sec. 5).
    pub max_len: f64,
}

impl QueryBatch {
    /// Builds the batch from the raw query store.
    pub fn build(queries: &VectorStore) -> Self {
        let n = queries.len();
        let lengths_raw = queries.lengths();
        let mut ids: Vec<u32> = (0..n as u32).collect();
        ids.sort_by(|&a, &b| {
            lengths_raw[b as usize]
                .partial_cmp(&lengths_raw[a as usize])
                .expect("finite lengths")
                .then(a.cmp(&b))
        });
        let selected: Vec<usize> = ids.iter().map(|&i| i as usize).collect();
        let (lengths, dirs) = queries.select(&selected).decompose();
        let max_len = lengths.first().copied().unwrap_or(0.0);
        Self { ids, lengths, dirs, max_len }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when no queries are present.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Evenly spaced sample positions (into the sorted order) covering the
    /// length spectrum; used by the tuner (Sec. 4.4).
    pub fn sample_positions(&self, sample: usize) -> Vec<usize> {
        let n = self.len();
        if n == 0 || sample == 0 {
            return Vec::new();
        }
        let sample = sample.min(n);
        (0..sample).map(|i| i * n / sample).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_sorts_by_decreasing_length() {
        let store =
            VectorStore::from_rows(&[vec![1.0, 0.0], vec![3.0, 0.0], vec![0.0, 2.0]]).unwrap();
        let b = QueryBatch::build(&store);
        assert_eq!(b.ids, vec![1, 2, 0]);
        assert_eq!(b.lengths, vec![3.0, 2.0, 1.0]);
        assert_eq!(b.max_len, 3.0);
        // directions normalized
        for d in b.dirs.iter() {
            assert!((lemp_linalg::kernels::norm(d) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_batch() {
        let store = VectorStore::empty(3).unwrap();
        let b = QueryBatch::build(&store);
        assert!(b.is_empty());
        assert_eq!(b.max_len, 0.0);
        assert!(b.sample_positions(10).is_empty());
    }

    #[test]
    fn sample_positions_cover_the_range() {
        let store =
            VectorStore::from_rows(&(0..100).map(|i| vec![i as f64 + 1.0]).collect::<Vec<_>>())
                .unwrap();
        let b = QueryBatch::build(&store);
        let pos = b.sample_positions(10);
        assert_eq!(pos.len(), 10);
        assert_eq!(pos[0], 0);
        assert!(*pos.last().unwrap() >= 90);
        // oversampling clamps
        assert_eq!(b.sample_positions(1000).len(), 100);
    }
}
