//! Adaptive (bandit) algorithm selection — the paper's Sec. 4.4 outlook.
//!
//! "More elaborate approaches for algorithm selection are possible, e.g.,
//! some form of reinforcement learning. Our experiments suggest, however,
//! that even the simple selection criterion outlined above gives promising
//! results." This module implements that outlook so the two approaches can
//! be compared (see the `repro-ablation-adaptive` binary).
//!
//! # How it learns
//!
//! The sample-based tuner of Sec. 4.4 measures a handful of queries up
//! front and then *fixes* `t_b` and `φ_b` per bucket. The adaptive driver
//! instead treats every (bucket, local-threshold-bin) pair as a small
//! **multi-armed bandit**:
//!
//! * the *arms* are the bucket methods — LENGTH, plus COORD/INCR with
//!   focus-set size `φ ∈ 1..=max_phi` (the same menu the tuner considers);
//! * the *context* is the local threshold `θ_b(q)`, discretized into a few
//!   bins — this is what lets the bandit learn a `t_b`-style switch point
//!   instead of one global winner per bucket;
//! * the *cost* of a pull is the measured wall-clock of running the arm
//!   **including verification** of the candidates it produced (candidate
//!   counts are exactly what differentiates the methods, as in the tuner).
//!
//! Two classic policies are provided: **UCB1** (deterministic
//! optimism-under-uncertainty with a tunable exploration weight) and
//! **ε-greedy** (seeded, explores a fixed fraction of pulls forever).
//!
//! # Exactness
//!
//! Every arm is an exact retrieval method, so the produced result set is
//! identical to any other exact LEMP configuration *no matter what the
//! bandit does* — learning only moves time around. This invariant is what
//! makes online exploration safe in production: a bad pull is slow, never
//! wrong.

use std::time::Instant;

use lemp_baselines::types::{Entry, RetrievalCounters};
use lemp_linalg::{kernels, TopK, VectorStore};

use crate::algos::{MethodScratch, QueryCtx, Sink};
use crate::bounds::{local_threshold, region_threshold};
use crate::bucket::{Bucket, ProbeBuckets};
use crate::exec::{ensure_for, run_method, verify_above, verify_topk, BuildClock, RunConfig};
use crate::query::QueryBatch;
use crate::runner::{
    emit_zero_bucket, max_bucket_len, theta_over_len, unpruned_prefix, AboveThetaOutput, MethodMix,
    RunStats, TopKOutput,
};
use crate::tuner;
use crate::variant::ResolvedMethod;

/// Bandit policy for arm selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BanditPolicy {
    /// UCB1: pull each arm once, then pick the arm minimizing
    /// `mean_cost − c·scale·√(2·ln N / n)` where `scale` is the running
    /// mean cost of all arms (keeps the bonus in cost units).
    Ucb1 {
        /// Exploration weight; 0 = pure exploitation after warm-up.
        c: f64,
    },
    /// ε-greedy: with probability ε pick a uniformly random arm, otherwise
    /// the arm with the smallest mean cost. Deterministically seeded.
    EpsilonGreedy {
        /// Exploration probability in `[0, 1]`.
        epsilon: f64,
        /// RNG seed (explicit, like every random choice in this workspace).
        seed: u64,
    },
}

/// Configuration of the adaptive driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Arm-selection policy.
    pub policy: BanditPolicy,
    /// Number of `θ_b(q)` bins per bucket (the discretized context). More
    /// bins learn a finer `t_b`-style switch but need more pulls per bin.
    pub theta_bins: usize,
    /// Largest focus-set size offered as an arm (the tuner's `MAX_PHI`).
    pub max_phi: usize,
    /// Coordinate arms use INCR when `true` (LI-flavored), COORD otherwise
    /// (LC-flavored). `φ = 1` always runs COORD (Appendix A).
    pub use_incr: bool,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            policy: BanditPolicy::Ucb1 { c: 1.0 },
            theta_bins: 4,
            max_phi: tuner::MAX_PHI,
            use_incr: true,
        }
    }
}

/// SplitMix64 — the workspace's standard tiny seeded generator, reproduced
/// here to keep `lemp-core` free of runtime dependencies.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `0..n` (n > 0).
    fn next_below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Running statistics of one arm in one (bucket, bin) bandit.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ArmStats {
    /// Times this arm was pulled.
    pub pulls: u64,
    /// Total cost over all pulls, nanoseconds.
    pub total_ns: u64,
}

impl ArmStats {
    /// Mean cost per pull (∞ for an unpulled arm, so it sorts last in
    /// exploitation and first in warm-up logic).
    pub fn mean_ns(&self) -> f64 {
        if self.pulls == 0 {
            f64::INFINITY
        } else {
            self.total_ns as f64 / self.pulls as f64
        }
    }
}

/// One (bucket, θ_b-bin) bandit.
#[derive(Debug, Clone, Default)]
struct BanditState {
    arms: Vec<ArmStats>,
    total_pulls: u64,
    total_ns: u64,
}

impl BanditState {
    fn new(arms: usize) -> Self {
        Self { arms: vec![ArmStats::default(); arms], total_pulls: 0, total_ns: 0 }
    }

    /// First unpulled arm, if any (warm-up phase of both policies).
    fn unpulled(&self) -> Option<usize> {
        self.arms.iter().position(|a| a.pulls == 0)
    }

    fn exploit(&self) -> usize {
        let mut best = 0;
        let mut best_mean = f64::INFINITY;
        for (i, a) in self.arms.iter().enumerate() {
            let m = a.mean_ns();
            if m < best_mean {
                best_mean = m;
                best = i;
            }
        }
        best
    }

    fn ucb1(&self, c: f64) -> usize {
        if let Some(a) = self.unpulled() {
            return a;
        }
        // Cost-flavored UCB1: subtract the exploration bonus from the mean
        // cost. `scale` keeps the bonus in the same units as the costs.
        let scale = self.total_ns as f64 / self.total_pulls as f64;
        let ln_n = (self.total_pulls as f64).ln();
        let mut best = 0;
        let mut best_score = f64::INFINITY;
        for (i, a) in self.arms.iter().enumerate() {
            let bonus = c * scale * (2.0 * ln_n / a.pulls as f64).sqrt();
            let score = a.mean_ns() - bonus;
            if score < best_score {
                best_score = score;
                best = i;
            }
        }
        best
    }
}

/// The online selector: one bandit per (bucket, θ_b bin).
#[derive(Debug)]
pub struct AdaptiveSelector {
    cfg: AdaptiveConfig,
    bins: usize,
    arms: usize,
    states: Vec<BanditState>,
    rng: SplitMix64,
}

impl AdaptiveSelector {
    /// Selector for `nbuckets` buckets over vectors of dimensionality `dim`
    /// (caps `max_phi` at `dim`: a focus set cannot exceed the coordinate
    /// count).
    pub fn new(cfg: AdaptiveConfig, nbuckets: usize, dim: usize) -> Self {
        let bins = cfg.theta_bins.max(1);
        let arms = 1 + cfg.max_phi.clamp(1, dim.max(1));
        let seed = match cfg.policy {
            BanditPolicy::EpsilonGreedy { seed, .. } => seed,
            BanditPolicy::Ucb1 { .. } => 0,
        };
        Self {
            cfg,
            bins,
            arms,
            states: vec![BanditState::new(arms); nbuckets * bins],
            rng: SplitMix64(seed),
        }
    }

    /// Number of arms per bandit (1 + effective `max_phi`).
    pub fn arm_count(&self) -> usize {
        self.arms
    }

    /// Number of buckets this selector was sized for.
    pub fn bucket_count(&self) -> usize {
        self.states.len().checked_div(self.bins).unwrap_or(0)
    }

    /// Total pulls across all bandits so far (grows across runs when the
    /// selector is reused via the `*_with` drivers).
    pub fn total_pulls(&self) -> u64 {
        self.states.iter().map(|s| s.total_pulls).sum()
    }

    /// Maps a local threshold to its context bin. `θ_b` below 0 (negative
    /// thresholds from early Row-Top-k sweeps) lands in bin 0; values at or
    /// above 1 would have pruned the bucket, so the top bin ends at 1.
    pub fn bin(&self, theta_b: f64) -> usize {
        if !theta_b.is_finite() || theta_b <= 0.0 {
            return 0;
        }
        ((theta_b * self.bins as f64) as usize).min(self.bins - 1)
    }

    /// Picks an arm for the (bucket, bin) bandit.
    pub fn choose(&mut self, bucket: usize, bin: usize) -> usize {
        let state = &self.states[bucket * self.bins + bin];
        match self.cfg.policy {
            BanditPolicy::Ucb1 { c } => state.ucb1(c),
            BanditPolicy::EpsilonGreedy { epsilon, .. } => {
                if let Some(a) = state.unpulled() {
                    a
                } else if self.rng.next_f64() < epsilon {
                    self.rng.next_below(self.arms)
                } else {
                    state.exploit()
                }
            }
        }
    }

    /// Feeds back the observed cost of a pull.
    pub fn record(&mut self, bucket: usize, bin: usize, arm: usize, cost_ns: u64) {
        let state = &mut self.states[bucket * self.bins + bin];
        state.arms[arm].pulls += 1;
        state.arms[arm].total_ns += cost_ns;
        state.total_pulls += 1;
        state.total_ns += cost_ns;
    }

    /// Translates an arm index into the method it runs. Arm 0 is LENGTH;
    /// arm `a ≥ 1` is the coordinate method with `φ = a` (COORD when
    /// `φ = 1` even in INCR flavor — Appendix A: identical candidates,
    /// cheaper scan).
    pub(crate) fn method(&self, arm: usize) -> ResolvedMethod {
        if arm == 0 {
            ResolvedMethod::Length
        } else if self.cfg.use_incr && arm > 1 {
            ResolvedMethod::Incr(arm)
        } else {
            ResolvedMethod::Coord(arm)
        }
    }

    /// Human-readable arm label (for reports).
    pub fn arm_name(&self, arm: usize) -> String {
        match self.method(arm) {
            ResolvedMethod::Length => "LENGTH".to_string(),
            ResolvedMethod::Coord(phi) => format!("COORD(φ={phi})"),
            ResolvedMethod::Incr(phi) => format!("INCR(φ={phi})"),
            other => format!("{other:?}"), // unreachable for bandit arms
        }
    }

    /// Snapshot of everything the selector learned.
    pub fn report(&self) -> AdaptiveReport {
        let nbuckets = self.states.len().checked_div(self.bins).unwrap_or(0);
        let mut buckets = Vec::with_capacity(nbuckets);
        for b in 0..nbuckets {
            let mut bins = Vec::with_capacity(self.bins);
            for bin in 0..self.bins {
                let state = &self.states[b * self.bins + bin];
                let lo = bin as f64 / self.bins as f64;
                let hi = (bin + 1) as f64 / self.bins as f64;
                let best_arm = if state.total_pulls == 0 { None } else { Some(state.exploit()) };
                bins.push(BinReport { lo, hi, arms: state.arms.clone(), best_arm });
            }
            buckets.push(bins);
        }
        AdaptiveReport { buckets, arm_names: (0..self.arms).map(|a| self.arm_name(a)).collect() }
    }
}

/// Per-bin learning summary: the θ_b range it covers, per-arm statistics,
/// and the arm the bandit would exploit now.
#[derive(Debug, Clone)]
pub struct BinReport {
    /// Bin lower edge (θ_b scale).
    pub lo: f64,
    /// Bin upper edge.
    pub hi: f64,
    /// Per-arm pulls and total cost, aligned with
    /// [`AdaptiveReport::arm_names`].
    pub arms: Vec<ArmStats>,
    /// Current exploitation choice; `None` if the bin never saw a pair.
    pub best_arm: Option<usize>,
}

/// What the adaptive run learned, per bucket and θ_b bin.
#[derive(Debug, Clone)]
pub struct AdaptiveReport {
    /// `buckets[b][bin]` — learning state of that bandit.
    pub buckets: Vec<Vec<BinReport>>,
    /// Arm labels, index-aligned with every [`BinReport::arms`].
    pub arm_names: Vec<String>,
}

impl AdaptiveReport {
    /// Total pulls across all bandits (= (query, bucket) pairs served).
    pub fn total_pulls(&self) -> u64 {
        self.buckets.iter().flatten().flat_map(|bin| bin.arms.iter()).map(|a| a.pulls).sum()
    }
}

/// Builds the indexes every arm may need for one bucket (both coordinate
/// layouts; LENGTH needs none). The bandit warm-up pulls every arm at least
/// once, so this is not speculative work.
fn ensure_arm_indexes(
    bucket: &mut Bucket,
    selector: &AdaptiveSelector,
    cfg: &RunConfig,
    clock: &mut BuildClock,
) {
    ensure_for(bucket, ResolvedMethod::Coord(1), 1.0, cfg, 0, clock);
    if selector.cfg.use_incr && selector.arm_count() > 2 {
        ensure_for(bucket, ResolvedMethod::Incr(2), 1.0, cfg, 0, clock);
    }
}

/// Above-θ with online bandit selection (serial; learning state is shared
/// across the whole sweep). Constructs a fresh selector and returns its
/// report; use [`above_theta_adaptive_with`] to keep learning warm across
/// runs.
pub(crate) fn above_theta_adaptive(
    buckets: &mut ProbeBuckets,
    queries: &VectorStore,
    theta: f64,
    cfg: &RunConfig,
    acfg: &AdaptiveConfig,
) -> (AboveThetaOutput, AdaptiveReport) {
    let mut selector = AdaptiveSelector::new(*acfg, buckets.bucket_count(), buckets.dim());
    let out = above_theta_adaptive_with(buckets, queries, theta, cfg, &mut selector);
    let report = selector.report();
    (out, report)
}

/// [`above_theta_adaptive`] with caller-owned learning state: the selector
/// keeps its arm statistics across calls, so a long-lived service warms up
/// once and exploits thereafter.
///
/// # Panics
/// If the selector was sized for a different bucketization (caller bug).
pub(crate) fn above_theta_adaptive_with(
    buckets: &mut ProbeBuckets,
    queries: &VectorStore,
    theta: f64,
    cfg: &RunConfig,
    selector: &mut AdaptiveSelector,
) -> AboveThetaOutput {
    assert_eq!(queries.dim(), buckets.dim(), "query/probe dimensionality mismatch");
    assert_eq!(
        selector.bucket_count(),
        buckets.bucket_count(),
        "selector sized for a different bucketization"
    );
    let prep_start = Instant::now();
    let batch = QueryBatch::build(queries);
    let tol: Vec<f64> = batch.lengths.iter().map(|&l| theta_over_len(theta, l)).collect();
    let batch_prep_ns = prep_start.elapsed().as_nanos() as u64;

    let mut clock = BuildClock::default();
    let retrieval_start = Instant::now();
    let mut entries: Vec<Entry> = Vec::new();
    let mut counters = RetrievalCounters { queries: queries.len() as u64, ..Default::default() };
    let mut mix = MethodMix::default();
    let mut scratch = MethodScratch::new(max_bucket_len(buckets));
    let mut sink = Sink::default();

    let nbuckets = buckets.bucket_count();
    for b in 0..nbuckets {
        let bucket = &mut buckets.buckets_mut()[b];
        let unpruned = unpruned_prefix(&batch, theta, bucket.max_len);
        if unpruned == 0 {
            break; // later buckets are shorter: pruned for every query
        }
        if bucket.max_len <= 0.0 {
            emit_zero_bucket(bucket, &batch, 0, unpruned, &mut entries, &mut counters);
            continue;
        }
        ensure_arm_indexes(bucket, selector, cfg, &mut clock);
        let bucket = &buckets.buckets()[b];
        adaptive_above_bucket(
            b,
            bucket,
            &batch,
            queries,
            theta,
            &tol,
            unpruned,
            selector,
            &mut scratch,
            &mut sink,
            &mut entries,
            &mut counters,
            &mut mix,
        );
    }

    let retrieval_ns = (retrieval_start.elapsed().as_nanos() as u64).saturating_sub(clock.ns);
    counters.preprocess_ns = buckets.prep_ns() + batch_prep_ns + clock.ns;
    counters.retrieval_ns = retrieval_ns;
    AboveThetaOutput {
        entries,
        stats: RunStats {
            counters,
            bucket_count: nbuckets,
            indexes_built: clock.built,
            method_mix: mix,
        },
    }
}

/// One bucket's Above-θ sweep with bandit arm choices (indexes already
/// built). Shared by the lazy `&mut` driver and the warmed `&self` path.
#[allow(clippy::too_many_arguments)]
fn adaptive_above_bucket(
    b: usize,
    bucket: &Bucket,
    batch: &QueryBatch,
    queries: &VectorStore,
    theta: f64,
    tol: &[f64],
    unpruned: usize,
    selector: &mut AdaptiveSelector,
    scratch: &mut MethodScratch,
    sink: &mut Sink,
    entries: &mut Vec<Entry>,
    counters: &mut RetrievalCounters,
    mix: &mut MethodMix,
) {
    scratch.ensure(bucket.len());
    #[allow(clippy::needless_range_loop)] // qi indexes parallel arrays
    for qi in 0..unpruned {
        let qlen = batch.lengths[qi];
        let th_b = region_threshold(theta, qlen, bucket.max_len, bucket.min_len);
        let bin = selector.bin(local_threshold(theta, qlen, bucket.max_len));
        let arm = selector.choose(b, bin);
        let method = selector.method(arm);
        mix.record(method);
        let ctx = QueryCtx {
            dir: batch.dirs.vector(qi),
            len: qlen,
            theta,
            theta_over_len: tol[qi],
            local_threshold: th_b,
            scaled: queries.vector(batch.ids[qi] as usize),
        };
        let pull_start = Instant::now();
        sink.clear();
        let internal = run_method(method, &ctx, bucket, None, scratch, sink);
        let (vdots, results) = verify_above(bucket, &ctx, sink, batch.ids[qi], entries);
        selector.record(b, bin, arm, pull_start.elapsed().as_nanos() as u64);
        counters.candidates += internal + vdots;
        counters.results += results;
    }
}

/// [`above_theta_adaptive_with`] over a **warmed** engine: both sorted-list
/// layouts exist in every bucket, so the buckets are only read — the
/// `&self`-shareable adaptive path (the learning state lives in the
/// caller's selector).
pub(crate) fn above_theta_adaptive_prepared(
    buckets: &ProbeBuckets,
    queries: &VectorStore,
    theta: f64,
    selector: &mut AdaptiveSelector,
    scratch: &mut MethodScratch,
) -> AboveThetaOutput {
    assert_eq!(queries.dim(), buckets.dim(), "query/probe dimensionality mismatch");
    assert_eq!(
        selector.bucket_count(),
        buckets.bucket_count(),
        "selector sized for a different bucketization"
    );
    let prep_start = Instant::now();
    let batch = QueryBatch::build(queries);
    let tol: Vec<f64> = batch.lengths.iter().map(|&l| theta_over_len(theta, l)).collect();
    let batch_prep_ns = prep_start.elapsed().as_nanos() as u64;

    let retrieval_start = Instant::now();
    let mut entries: Vec<Entry> = Vec::new();
    let mut counters = RetrievalCounters { queries: queries.len() as u64, ..Default::default() };
    let mut mix = MethodMix::default();
    let mut sink = Sink::default();

    for (b, bucket) in buckets.buckets().iter().enumerate() {
        let unpruned = unpruned_prefix(&batch, theta, bucket.max_len);
        if unpruned == 0 {
            break; // later buckets are shorter: pruned for every query
        }
        if bucket.max_len <= 0.0 {
            emit_zero_bucket(bucket, &batch, 0, unpruned, &mut entries, &mut counters);
            continue;
        }
        adaptive_above_bucket(
            b,
            bucket,
            &batch,
            queries,
            theta,
            &tol,
            unpruned,
            selector,
            scratch,
            &mut sink,
            &mut entries,
            &mut counters,
            &mut mix,
        );
    }

    counters.preprocess_ns = batch_prep_ns;
    counters.retrieval_ns = retrieval_start.elapsed().as_nanos() as u64;
    AboveThetaOutput {
        entries,
        stats: RunStats {
            counters,
            bucket_count: buckets.bucket_count(),
            indexes_built: 0,
            method_mix: mix,
        },
    }
}

/// Row-Top-k with online bandit selection (serial). Constructs a fresh
/// selector and returns its report; use [`row_top_k_adaptive_with`] to
/// keep learning warm across runs.
pub(crate) fn row_top_k_adaptive(
    buckets: &mut ProbeBuckets,
    queries: &VectorStore,
    k: usize,
    cfg: &RunConfig,
    acfg: &AdaptiveConfig,
) -> (TopKOutput, AdaptiveReport) {
    let mut selector = AdaptiveSelector::new(*acfg, buckets.bucket_count(), buckets.dim());
    let out = row_top_k_adaptive_with(buckets, queries, k, cfg, &mut selector);
    let report = selector.report();
    (out, report)
}

/// [`row_top_k_adaptive`] with caller-owned learning state.
///
/// # Panics
/// If the selector was sized for a different bucketization (caller bug).
pub(crate) fn row_top_k_adaptive_with(
    buckets: &mut ProbeBuckets,
    queries: &VectorStore,
    k: usize,
    cfg: &RunConfig,
    selector: &mut AdaptiveSelector,
) -> TopKOutput {
    assert_eq!(queries.dim(), buckets.dim(), "query/probe dimensionality mismatch");
    assert_eq!(
        selector.bucket_count(),
        buckets.bucket_count(),
        "selector sized for a different bucketization"
    );
    // Clamp k to the live probe count, like every Row-Top-k driver.
    let k = k.min(buckets.total());
    let prep_start = Instant::now();
    let batch = QueryBatch::build(queries);
    let batch_prep_ns = prep_start.elapsed().as_nanos() as u64;

    let mut clock = BuildClock::default();
    let retrieval_start = Instant::now();
    let mut lists: Vec<Vec<lemp_linalg::ScoredItem>> = vec![Vec::new(); queries.len()];
    let mut counters = RetrievalCounters { queries: queries.len() as u64, ..Default::default() };
    let mut mix = MethodMix::default();
    let mut scratch = MethodScratch::new(max_bucket_len(buckets));
    let mut sink = Sink::default();
    let mut top = TopK::new(k);
    let mut seed_counts: Vec<usize> = Vec::new();

    if k > 0 && !batch.is_empty() && buckets.bucket_count() > 0 {
        for qi in 0..batch.len() {
            let dir = batch.dirs.vector(qi);
            // Lazy index construction, as in the serial tuned driver: θ′
            // only grows after seeding, so a bucket pruned now stays pruned.
            let theta_seed = tuner::seed_threshold(buckets, dir, k);
            for b in 0..buckets.bucket_count() {
                let bucket = &mut buckets.buckets_mut()[b];
                if bucket.max_len <= 0.0 {
                    continue;
                }
                if local_threshold(theta_seed, 1.0, bucket.max_len) > 1.0 + 1e-12 {
                    break;
                }
                ensure_arm_indexes(bucket, selector, cfg, &mut clock);
            }
            // The sweep itself (Sec. 4.5 driver with bandit arm choices).
            let mut list = adaptive_topk_one(
                buckets.buckets(),
                dir,
                k,
                selector,
                &mut scratch,
                &mut sink,
                &mut top,
                &mut seed_counts,
                &mut counters,
                &mut mix,
            );
            for item in &mut list {
                item.score *= batch.lengths[qi];
            }
            lists[batch.ids[qi] as usize] = list;
        }
    }

    let retrieval_ns = (retrieval_start.elapsed().as_nanos() as u64).saturating_sub(clock.ns);
    counters.results = lists.iter().map(|l| l.len() as u64).sum();
    counters.preprocess_ns = buckets.prep_ns() + batch_prep_ns + clock.ns;
    counters.retrieval_ns = retrieval_ns;
    TopKOutput {
        lists,
        stats: RunStats {
            counters,
            bucket_count: buckets.bucket_count(),
            indexes_built: clock.built,
            method_mix: mix,
        },
    }
}

/// One Row-Top-k query with bandit arm choices over pre-built buckets
/// (Sec. 4.5 driver). Returns the top-k list at the `‖q‖ = 1` scale.
#[allow(clippy::too_many_arguments)]
fn adaptive_topk_one(
    buckets: &[Bucket],
    dir: &[f64],
    k: usize,
    selector: &mut AdaptiveSelector,
    scratch: &mut MethodScratch,
    sink: &mut Sink,
    top: &mut TopK,
    seed_counts: &mut Vec<usize>,
    counters: &mut RetrievalCounters,
    mix: &mut MethodMix,
) -> Vec<lemp_linalg::ScoredItem> {
    top.clear();
    let mut need = k;
    seed_counts.clear();
    seed_counts.resize(buckets.len(), 0);
    'seed: for (b, bucket) in buckets.iter().enumerate() {
        for lid in 0..bucket.len() {
            if need == 0 {
                break 'seed;
            }
            let v = kernels::dot(dir, bucket.origs.vector(lid));
            counters.candidates += 1;
            top.push(bucket.ids[lid] as usize, v);
            seed_counts[b] += 1;
            need -= 1;
        }
    }
    let mut theta = top.threshold();
    for (b, bucket) in buckets.iter().enumerate() {
        if local_threshold(theta, 1.0, bucket.max_len) > 1.0 + 1e-12 {
            break;
        }
        if bucket.max_len <= 0.0 {
            continue;
        }
        scratch.ensure(bucket.len());
        let th_b = region_threshold(theta, 1.0, bucket.max_len, bucket.min_len);
        let bin = selector.bin(local_threshold(theta, 1.0, bucket.max_len));
        let arm = selector.choose(b, bin);
        let method = selector.method(arm);
        mix.record(method);
        let ctx = QueryCtx {
            dir,
            len: 1.0,
            theta,
            theta_over_len: theta,
            local_threshold: th_b,
            scaled: dir,
        };
        let pull_start = Instant::now();
        sink.clear();
        let internal = run_method(method, &ctx, bucket, None, scratch, sink);
        let vdots = verify_topk(bucket, &ctx, sink, seed_counts[b], top);
        selector.record(b, bin, arm, pull_start.elapsed().as_nanos() as u64);
        counters.candidates += internal + vdots;
        theta = top.threshold();
    }
    top.drain_sorted()
}

/// [`row_top_k_adaptive_with`] over a **warmed** engine (see
/// [`above_theta_adaptive_prepared`]).
pub(crate) fn row_top_k_adaptive_prepared(
    buckets: &ProbeBuckets,
    queries: &VectorStore,
    k: usize,
    selector: &mut AdaptiveSelector,
    scratch: &mut MethodScratch,
) -> TopKOutput {
    assert_eq!(queries.dim(), buckets.dim(), "query/probe dimensionality mismatch");
    assert_eq!(
        selector.bucket_count(),
        buckets.bucket_count(),
        "selector sized for a different bucketization"
    );
    // Clamp k to the live probe count, like every Row-Top-k driver.
    let k = k.min(buckets.total());
    let prep_start = Instant::now();
    let batch = QueryBatch::build(queries);
    let batch_prep_ns = prep_start.elapsed().as_nanos() as u64;

    let retrieval_start = Instant::now();
    let mut lists: Vec<Vec<lemp_linalg::ScoredItem>> = vec![Vec::new(); queries.len()];
    let mut counters = RetrievalCounters { queries: queries.len() as u64, ..Default::default() };
    let mut mix = MethodMix::default();
    let mut sink = Sink::default();
    let mut top = TopK::new(k);
    let mut seed_counts: Vec<usize> = Vec::new();

    if k > 0 && !batch.is_empty() && buckets.bucket_count() > 0 {
        for qi in 0..batch.len() {
            let mut list = adaptive_topk_one(
                buckets.buckets(),
                batch.dirs.vector(qi),
                k,
                selector,
                scratch,
                &mut sink,
                &mut top,
                &mut seed_counts,
                &mut counters,
                &mut mix,
            );
            for item in &mut list {
                item.score *= batch.lengths[qi];
            }
            lists[batch.ids[qi] as usize] = list;
        }
    }

    counters.results = lists.iter().map(|l| l.len() as u64).sum();
    counters.preprocess_ns = batch_prep_ns;
    counters.retrieval_ns = retrieval_start.elapsed().as_nanos() as u64;
    TopKOutput {
        lists,
        stats: RunStats {
            counters,
            bucket_count: buckets.bucket_count(),
            indexes_built: 0,
            method_mix: mix,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::BucketPolicy;
    use crate::Lemp;
    use lemp_baselines::types::{canonical_pairs, topk_equivalent};
    use lemp_baselines::Naive;
    use lemp_data::synthetic::GeneratorConfig;

    fn data(m: usize, n: usize, cov: f64, seed: u64) -> (VectorStore, VectorStore) {
        let q = GeneratorConfig::gaussian(m, 10, cov).generate(seed);
        let p = GeneratorConfig::gaussian(n, 10, cov).generate(seed + 1);
        (q, p)
    }

    fn policies() -> [BanditPolicy; 3] {
        [
            BanditPolicy::Ucb1 { c: 1.0 },
            BanditPolicy::Ucb1 { c: 0.0 },
            BanditPolicy::EpsilonGreedy { epsilon: 0.1, seed: 42 },
        ]
    }

    #[test]
    fn adaptive_above_matches_naive_for_every_policy() {
        let (q, p) = data(60, 400, 1.0, 77);
        let (expect, _) = Naive.above_theta(&q, &p, 1.2);
        assert!(!expect.is_empty());
        for policy in policies() {
            let acfg = AdaptiveConfig { policy, ..Default::default() };
            let mut engine = Lemp::new(&p);
            let (out, report) = engine.above_theta_adaptive(&q, 1.2, &acfg);
            assert_eq!(
                canonical_pairs(&out.entries),
                canonical_pairs(&expect),
                "{policy:?} diverges from Naive"
            );
            assert!(report.total_pulls() > 0);
        }
    }

    #[test]
    fn adaptive_topk_matches_naive_for_every_policy() {
        let (q, p) = data(40, 300, 0.8, 88);
        for k in [1usize, 5] {
            let (expect, _) = Naive.row_top_k(&q, &p, k);
            for policy in policies() {
                let acfg = AdaptiveConfig { policy, ..Default::default() };
                let mut engine = Lemp::new(&p);
                let (out, _) = engine.row_top_k_adaptive(&q, k, &acfg);
                assert!(
                    topk_equivalent(&out.lists, &expect, 1e-9),
                    "{policy:?} diverges from Naive at k={k}"
                );
            }
        }
    }

    #[test]
    fn coord_flavor_matches_naive() {
        let (q, p) = data(30, 200, 1.2, 99);
        let (expect, _) = Naive.above_theta(&q, &p, 0.9);
        let acfg = AdaptiveConfig { use_incr: false, ..Default::default() };
        let mut engine = Lemp::new(&p);
        let (out, _) = engine.above_theta_adaptive(&q, 0.9, &acfg);
        assert_eq!(canonical_pairs(&out.entries), canonical_pairs(&expect));
    }

    #[test]
    fn warm_up_pulls_every_arm_once_per_active_bin() {
        let (q, p) = data(200, 300, 0.6, 11);
        let acfg = AdaptiveConfig::default();
        let mut engine = Lemp::new(&p);
        let (_, report) = engine.above_theta_adaptive(&q, 0.5, &acfg);
        let arms = report.arm_names.len();
        for bins in &report.buckets {
            for bin in bins {
                let pulls: u64 = bin.arms.iter().map(|a| a.pulls).sum();
                if pulls >= arms as u64 {
                    assert!(
                        bin.arms.iter().all(|a| a.pulls > 0),
                        "a bin with {pulls} pulls left an arm unexplored"
                    );
                }
            }
        }
    }

    #[test]
    fn report_pull_total_equals_method_mix_total() {
        let (q, p) = data(80, 250, 1.0, 22);
        let acfg = AdaptiveConfig::default();
        let mut engine = Lemp::new(&p);
        let (out, report) = engine.above_theta_adaptive(&q, 0.8, &acfg);
        assert_eq!(report.total_pulls(), out.stats.method_mix.total());
    }

    #[test]
    fn bin_mapping_clamps_and_partitions() {
        let sel = AdaptiveSelector::new(AdaptiveConfig::default(), 1, 10);
        assert_eq!(sel.bin(-3.0), 0);
        assert_eq!(sel.bin(0.0), 0);
        assert_eq!(sel.bin(0.1), 0);
        assert_eq!(sel.bin(0.26), 1);
        assert_eq!(sel.bin(0.51), 2);
        assert_eq!(sel.bin(0.99), 3);
        assert_eq!(sel.bin(1.0), 3);
        assert_eq!(sel.bin(f64::INFINITY), 0); // pruned upstream anyway
    }

    #[test]
    fn arm_zero_is_length_and_phi_one_is_coord() {
        let sel = AdaptiveSelector::new(AdaptiveConfig::default(), 1, 10);
        assert_eq!(sel.method(0), ResolvedMethod::Length);
        assert_eq!(sel.method(1), ResolvedMethod::Coord(1)); // Appendix A
        assert_eq!(sel.method(2), ResolvedMethod::Incr(2));
        let sel =
            AdaptiveSelector::new(AdaptiveConfig { use_incr: false, ..Default::default() }, 1, 10);
        assert_eq!(sel.method(3), ResolvedMethod::Coord(3));
    }

    #[test]
    fn max_phi_is_capped_by_dimensionality() {
        let sel = AdaptiveSelector::new(AdaptiveConfig { max_phi: 50, ..Default::default() }, 1, 3);
        assert_eq!(sel.arm_count(), 4); // LENGTH + φ ∈ {1, 2, 3}
    }

    #[test]
    fn ucb_pulls_unpulled_arms_first_then_exploits_cheap_arm() {
        let mut sel = AdaptiveSelector::new(
            AdaptiveConfig { policy: BanditPolicy::Ucb1 { c: 0.0 }, ..Default::default() },
            1,
            10,
        );
        let arms = sel.arm_count();
        let mut seen = Vec::new();
        for i in 0..arms {
            let arm = sel.choose(0, 0);
            seen.push(arm);
            // arm 2 is made cheap, everything else expensive
            sel.record(0, 0, arm, if arm == 2 { 10 } else { 10_000 });
            let _ = i;
        }
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..arms).collect::<Vec<_>>(), "warm-up covers every arm");
        // With c = 0, exploitation must now lock onto the cheap arm.
        for _ in 0..5 {
            let arm = sel.choose(0, 0);
            assert_eq!(arm, 2);
            sel.record(0, 0, arm, 10);
        }
    }

    #[test]
    fn epsilon_one_explores_uniformly_and_epsilon_zero_exploits() {
        let mut explorer = AdaptiveSelector::new(
            AdaptiveConfig {
                policy: BanditPolicy::EpsilonGreedy { epsilon: 1.0, seed: 1 },
                ..Default::default()
            },
            1,
            10,
        );
        let arms = explorer.arm_count();
        let mut counts = vec![0u32; arms];
        for i in 0..500 {
            let arm = explorer.choose(0, 0);
            counts[arm] += 1;
            explorer.record(0, 0, arm, 100 + i as u64);
        }
        assert!(counts.iter().all(|&c| c > 0), "ε=1 must reach every arm: {counts:?}");

        let mut exploiter = AdaptiveSelector::new(
            AdaptiveConfig {
                policy: BanditPolicy::EpsilonGreedy { epsilon: 0.0, seed: 1 },
                ..Default::default()
            },
            1,
            10,
        );
        for _ in 0..arms {
            let arm = exploiter.choose(0, 0);
            exploiter.record(0, 0, arm, if arm == 1 { 5 } else { 5_000 });
        }
        for _ in 0..5 {
            let arm = exploiter.choose(0, 0);
            assert_eq!(arm, 1);
            exploiter.record(0, 0, arm, 5);
        }
    }

    #[test]
    fn warm_selector_accumulates_learning_across_runs() {
        let (q, p) = data(50, 300, 1.0, 55);
        let (expect, _) = Naive.above_theta(&q, &p, 1.0);
        let mut engine = Lemp::new(&p);
        let mut selector = engine.adaptive_selector(&AdaptiveConfig::default());
        assert_eq!(selector.total_pulls(), 0);

        let out1 = engine.above_theta_adaptive_with(&q, 1.0, &mut selector);
        let after_first = selector.total_pulls();
        assert!(after_first > 0);
        let out2 = engine.above_theta_adaptive_with(&q, 1.0, &mut selector);
        assert!(selector.total_pulls() > after_first, "state persists across runs");
        // Both runs are exact regardless of the learning trajectory.
        assert_eq!(canonical_pairs(&out1.entries), canonical_pairs(&expect));
        assert_eq!(canonical_pairs(&out2.entries), canonical_pairs(&expect));

        // The same selector serves top-k runs over the same engine.
        let (expect_k, _) = Naive.row_top_k(&q, &p, 3);
        let out = engine.row_top_k_adaptive_with(&q, 3, &mut selector);
        assert!(topk_equivalent(&out.lists, &expect_k, 1e-9));
    }

    #[test]
    #[should_panic(expected = "different bucketization")]
    fn foreign_selector_is_rejected() {
        let (q, p) = data(10, 200, 1.0, 56);
        let small = GeneratorConfig::gaussian(40, 10, 0.5).generate(57);
        let other = Lemp::new(&small);
        let mut selector = other.adaptive_selector(&AdaptiveConfig::default());
        if selector.bucket_count() == Lemp::new(&p).buckets().bucket_count() {
            // Degenerate collision: force a mismatch instead of a flaky pass.
            panic!("different bucketization (fixture collision)");
        }
        let mut engine = Lemp::new(&p);
        let _ = engine.above_theta_adaptive_with(&q, 1.0, &mut selector);
    }

    #[test]
    fn empty_inputs_are_safe() {
        let p = GeneratorConfig::gaussian(50, 6, 0.5).generate(5);
        let empty = VectorStore::empty(6).unwrap();
        let acfg = AdaptiveConfig::default();
        let mut engine = Lemp::new(&p);
        let (out, _) = engine.above_theta_adaptive(&empty, 0.5, &acfg);
        assert!(out.entries.is_empty());
        let (out, _) = engine.row_top_k_adaptive(&empty, 3, &acfg);
        assert!(out.lists.is_empty());
        let (out, _) = engine.row_top_k_adaptive(&p, 0, &acfg);
        assert!(out.lists.iter().all(Vec::is_empty));
    }

    #[test]
    fn adaptive_engine_reusable_and_buckets_consistent() {
        let (q, p) = data(30, 200, 1.0, 33);
        let policy = BucketPolicy::default();
        let mut engine = Lemp::builder().policy(policy).build(&p);
        let acfg = AdaptiveConfig::default();
        let (a, ra) = engine.above_theta_adaptive(&q, 1.0, &acfg);
        let (b, rb) = engine.above_theta_adaptive(&q, 1.0, &acfg);
        assert_eq!(canonical_pairs(&a.entries), canonical_pairs(&b.entries));
        assert_eq!(ra.buckets.len(), rb.buckets.len());
        assert_eq!(ra.buckets.len(), engine.buckets().bucket_count());
    }

    #[test]
    fn splitmix_f64_is_in_unit_interval() {
        let mut rng = SplitMix64(123);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
        for n in [1usize, 2, 7] {
            for _ in 0..100 {
                assert!(rng.next_below(n) < n);
            }
        }
    }
}
