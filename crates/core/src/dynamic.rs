//! Dynamic probe maintenance: insert and remove probe vectors without
//! rebuilding the engine.
//!
//! The paper preprocesses a *static* probe matrix (Alg. 1, lines 1–6). In
//! production deployments of the motivating applications the probe side
//! churns — items enter and leave a recommender catalog, facts are added to
//! an open-IE store — so a practical engine must absorb edits cheaply. This
//! module extends LEMP's bucket structure with incremental maintenance:
//!
//! * **Insert**: the new vector is routed to the bucket whose length range
//!   contains it (binary search over the bucket boundaries), placed at its
//!   sorted position, and the bucket's lazy indexes are dropped — they
//!   rebuild on the next query that needs them, exactly like the paper's
//!   lazy construction. When a vector falls *between* two buckets' ranges,
//!   a quality rule mirroring the paper's bucketization decides between
//!   joining a neighbour (if the ratio or min-size rule allows) and opening
//!   a fresh bucket. Buckets pushed past the cache cap split in half.
//! * **Remove**: the vector's bucket is located through its length (lengths
//!   are tracked per id, and computed with the same `kernels::norm` used by
//!   bucketization, so the lookup is exact), the row is cut out, indexes
//!   are dropped, and empty buckets disappear.
//!
//! Two invariants survive every edit, and the test suite checks them after
//! randomized edit scripts:
//!
//! 1. *within-bucket order*: lengths are non-increasing and `max_len`/
//!    `min_len` are exact;
//! 2. *inter-bucket order*: each bucket's `min_len` is at least the next
//!    bucket's `max_len`, so the length axis remains partitioned and the
//!    binary-search locate stays sound.
//!
//! Incremental edits can degrade the *quality* of the bucketization (the
//! ratio rule may be violated by absorbed vectors, buckets may shrink below
//! the paper's minimum size) without ever affecting correctness.
//! [`DynamicLemp::fragmentation`] measures the degradation and
//! [`DynamicLemp::rebuild`] compacts back to the exact static layout while
//! preserving stable ids.

use lemp_linalg::{kernels, LinalgError, VectorStore};

use crate::adaptive::AdaptiveSelector;
use crate::algos::MethodScratch;
use crate::bucket::{Bucket, BucketPolicy, ProbeBuckets};
use crate::exec::{BuildClock, RunConfig};
use crate::persist::PersistError;
use crate::plan::{self, Engine, QueryPlan, QueryRequest, QueryResponse, Scratch};
use crate::runner::{self, AboveThetaOutput, TopKOutput};
use crate::variant::TunedParams;
use crate::{Lemp, WarmGoal, WarmReport, WarmState};

/// A LEMP engine over a mutable probe set.
///
/// Probe ids are *stable handles*: the ids reported in query results refer
/// to insertion order (the initial vectors get `0..n`, each insert returns
/// the next id) and never shift when other probes are removed.
///
/// # Example
///
/// ```
/// use lemp_core::dynamic::DynamicLemp;
/// use lemp_core::{BucketPolicy, RunConfig};
/// use lemp_linalg::VectorStore;
///
/// let probes = VectorStore::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
/// let mut engine = DynamicLemp::new(&probes, BucketPolicy::default(), RunConfig::default());
/// let id = engine.insert(&[2.0, 2.0]).unwrap();
/// assert_eq!(id, 2);
/// assert!(engine.remove(0));
/// assert!(!engine.remove(0)); // already gone
///
/// let queries = VectorStore::from_rows(&[vec![1.0, 1.0]]).unwrap();
/// let top = engine.row_top_k(&queries, 1);
/// assert_eq!(top.lists[0][0].id, id as usize); // the inserted vector wins
/// ```
#[derive(Debug)]
pub struct DynamicLemp {
    policy: BucketPolicy,
    config: RunConfig,
    buckets: ProbeBuckets,
    /// Length per id (exact, from `kernels::norm`); valid while alive.
    id_len: Vec<f64>,
    alive: Vec<bool>,
    live: usize,
    /// Warm-query state ([`DynamicLemp::warm`]); edits keep it consistent
    /// by rebuilding the touched bucket's indexes inside the edit.
    warm: Option<WarmState>,
}

impl DynamicLemp {
    /// Builds the engine over an initial probe set (ids `0..probes.len()`).
    pub fn new(probes: &VectorStore, policy: BucketPolicy, config: RunConfig) -> Self {
        let buckets = ProbeBuckets::build(probes, &policy);
        let id_len = probes.lengths();
        let alive = vec![true; probes.len()];
        let live = probes.len();
        Self { policy, config, buckets, id_len, alive, live, warm: None }
    }

    /// Wraps a prebuilt static engine (e.g. one loaded from a persisted
    /// image, see [`Lemp::load`]) as a dynamic engine: the preprocessed
    /// buckets and run configuration are taken over as-is, bucket ids
    /// become the stable ids, and `policy` governs future edits. This is
    /// how `lemp serve` turns a persisted engine into a servable one.
    pub fn from_engine(engine: Lemp, policy: BucketPolicy) -> Self {
        let (buckets, config) = engine.into_parts();
        let watermark = buckets
            .buckets()
            .iter()
            .flat_map(|b| b.ids.iter())
            .map(|&id| id as usize + 1)
            .max()
            .unwrap_or(0);
        let mut id_len = vec![0.0f64; watermark];
        let mut alive = vec![false; watermark];
        for bucket in buckets.buckets() {
            for (lid, &id) in bucket.ids.iter().enumerate() {
                alive[id as usize] = true;
                id_len[id as usize] = bucket.lengths[lid];
            }
        }
        let live = alive.iter().filter(|&&a| a).count();
        Self { policy, config, buckets, id_len, alive, live, warm: None }
    }

    /// Overrides the retrieval worker-thread count (services pick their
    /// own threading model regardless of what a persisted image recorded).
    pub fn set_threads(&mut self, threads: usize) {
        self.config.threads = threads.max(1);
    }

    /// **Warms the engine for shared (`&self`) querying**, exactly like
    /// [`Lemp::warm`]: tunes per-bucket parameters on `sample` and
    /// force-builds every bucket's indexes. Unlike the static engine,
    /// subsequent [`DynamicLemp::insert`]/[`DynamicLemp::remove`] calls
    /// *keep* the engine warm: the touched bucket's indexes are rebuilt
    /// inside the edit (under the caller's write exclusivity), so readers
    /// sharing `&self` never observe a missing index.
    ///
    /// # Panics
    /// If the sample dimensionality differs from the probe dimensionality.
    pub fn warm(&mut self, sample: &VectorStore, goal: WarmGoal) -> WarmReport {
        let (state, report) = WarmState::build(&mut self.buckets, &self.config, sample, goal);
        self.warm = Some(state);
        report
    }

    /// Whether the engine is warm (the `*_shared` methods are usable).
    pub fn is_warm(&self) -> bool {
        self.warm.is_some()
    }

    /// A [`MethodScratch`] sized for the current largest bucket (one per
    /// querying thread). Scratch grows on demand, so it stays valid as
    /// edits reshape the buckets.
    pub fn make_scratch(&self) -> MethodScratch {
        MethodScratch::new(runner::max_bucket_len(&self.buckets))
    }

    pub(crate) fn warm_state(&self, caller: &str) -> &WarmState {
        self.warm.as_ref().unwrap_or_else(|| {
            panic!("{caller} requires a warmed engine: call DynamicLemp::warm first")
        })
    }

    /// The unified execution core behind every `*_shared` entry point —
    /// the same [`plan::run_request_single`] path [`Lemp`] uses, over the
    /// live buckets.
    fn shared_request(
        &self,
        caller: &str,
        request: &QueryRequest,
        queries: &VectorStore,
        scratch: &mut MethodScratch,
        selector: Option<&mut AdaptiveSelector>,
    ) -> QueryResponse {
        let warm = self.warm_state(caller);
        let parts = plan::SinglePrepared {
            buckets: &self.buckets,
            config: &self.config,
            per_bucket: &warm.per_bucket,
            blsh: warm.blsh_table.as_ref(),
        };
        plan::run_request_single(&parts, request, queries, scratch, selector)
    }

    /// Rebuilds the indexes of bucket `b` so the warm invariant (every
    /// bucket fully indexed) survives an edit that dropped them.
    fn rewarm_bucket(&mut self, b: usize) {
        let params = match &self.warm {
            Some(w) => w.per_bucket[b],
            None => return,
        };
        let mut clock = BuildClock::default();
        let seed = runner::cfg_seed(&self.config, b);
        runner::warm_bucket(
            &mut self.buckets.buckets_vec_mut()[b],
            &params,
            &self.config,
            seed,
            &mut clock,
        );
    }

    /// Number of live probe vectors.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no probes are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.buckets.dim()
    }

    /// Whether `id` refers to a live probe.
    pub fn contains(&self, id: u32) -> bool {
        (id as usize) < self.alive.len() && self.alive[id as usize]
    }

    /// The id the next [`Self::insert`] will return — the id-space
    /// watermark (ids below it are allocated, live or dead; ids at or
    /// above it are free).
    pub fn next_id(&self) -> u32 {
        self.id_len.len() as u32
    }

    /// The run configuration this engine executes with.
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// A fresh [`AdaptiveSelector`] sized for this engine's current
    /// bucketization, for the adaptive (bandit) drivers.
    pub fn adaptive_selector(&self, acfg: &crate::adaptive::AdaptiveConfig) -> AdaptiveSelector {
        AdaptiveSelector::new(*acfg, self.buckets.bucket_count(), self.buckets.dim())
    }

    /// Current number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.bucket_count()
    }

    /// Inserts a probe vector; returns its stable id (the current
    /// watermark).
    ///
    /// # Errors
    /// [`LinalgError::DimMismatch`] on wrong dimensionality and
    /// [`LinalgError::NonFinite`] if any coordinate is NaN or infinite.
    pub fn insert(&mut self, v: &[f64]) -> Result<u32, LinalgError> {
        self.insert_with_id(self.next_id(), v)
    }

    /// Inserts a probe vector under a **caller-chosen id** at or above the
    /// current watermark; ids skipped over become permanently dead (they
    /// read as "never live"), so the id space may be sparse. This is how a
    /// sharded engine routes globally allocated ids to shards — every
    /// shard sees a strictly increasing but gappy id sequence — and how
    /// store replay re-applies an insert at its recorded id.
    ///
    /// # Errors
    /// [`LinalgError::DimMismatch`] on wrong dimensionality and
    /// [`LinalgError::NonFinite`] if any coordinate is NaN or infinite.
    ///
    /// # Panics
    /// If `id` is below the watermark ([`DynamicLemp::next_id`]) — ids are
    /// allocate-once, never reused — or the id space is exhausted.
    pub fn insert_with_id(&mut self, id: u32, v: &[f64]) -> Result<u32, LinalgError> {
        if v.len() != self.dim() {
            return Err(LinalgError::DimMismatch { left: self.dim(), right: v.len() });
        }
        if let Some(index) = v.iter().position(|x| !x.is_finite()) {
            return Err(LinalgError::NonFinite { index });
        }
        assert!(
            id as usize >= self.id_len.len(),
            "id {id} is below the watermark {} (ids are allocate-once)",
            self.id_len.len()
        );
        assert!(id < u32::MAX, "id space exhausted");
        let len = kernels::norm(v);

        let ratio = self.policy.length_ratio;
        let min_bucket = self.policy.min_bucket;
        let dim = self.dim();
        let buckets = self.buckets.buckets_vec_mut();
        // Buckets partition the length axis in decreasing order; `pp` is the
        // count of buckets whose range lies fully above `len`.
        let pp = buckets.partition_point(|b| b.max_len >= len);
        let (target, created) = if buckets.is_empty() {
            buckets.push(singleton(id, v));
            (0, true)
        } else if pp == 0 {
            // Longer than every existing vector: join the front bucket if
            // the ratio rule tolerates stretching it, else open a new one.
            if buckets[0].min_len >= len * ratio || buckets[0].len() < min_bucket {
                buckets[0].insert_sorted(id, v, len);
                (0, false)
            } else {
                buckets.insert(0, singleton(id, v));
                (0, true)
            }
        } else {
            let cand = pp - 1; // last bucket with max_len ≥ len
            if len > buckets[cand].min_len {
                // Strictly inside the candidate's range: forced (the only
                // placement that keeps the length axis partitioned).
                buckets[cand].insert_sorted(id, v, len);
                (cand, false)
            } else if len >= buckets[cand].max_len * ratio || buckets[cand].len() < min_bucket {
                // At/below the candidate's bottom but within its ratio
                // window (or the candidate is undersized): absorb, exactly
                // like the static bucketization's greedy scan.
                buckets[cand].insert_sorted(id, v, len);
                (cand, false)
            } else if cand + 1 < buckets.len() && buckets[cand + 1].min_len >= len * ratio {
                // The next (shorter) bucket can take it as its new maximum
                // without breaking its own ratio window.
                buckets[cand + 1].insert_sorted(id, v, len);
                (cand + 1, false)
            } else {
                buckets.insert(cand + 1, singleton(id, v));
                (cand + 1, true)
            }
        };
        // Cache cap: split an overgrown bucket in half (both keep order).
        let cap = self.policy.max_bucket(dim);
        let split = buckets[target].len() > cap;
        if split {
            let tail = buckets[target].split_off_tail();
            buckets.insert(target + 1, tail);
        }

        // Keep the warm state aligned and the warm invariant (all buckets
        // fully indexed) intact: the edit dropped the touched buckets'
        // indexes, so rebuild them now, while the caller holds exclusive
        // access.
        if let Some(w) = &mut self.warm {
            if created {
                w.per_bucket.insert(target, TunedParams::default());
            }
            if split {
                let params = w.per_bucket[target];
                w.per_bucket.insert(target + 1, params);
            }
        }
        if self.warm.is_some() {
            self.rewarm_bucket(target);
            if split {
                self.rewarm_bucket(target + 1);
            }
        }

        // Pad the id space up to `id` with dead filler (zeroed pages stay
        // lazy), then allocate it.
        self.id_len.resize(id as usize, 0.0);
        self.alive.resize(id as usize, false);
        self.id_len.push(len);
        self.alive.push(true);
        self.live += 1;
        let live = self.live;
        self.buckets.set_total(live);
        Ok(id)
    }

    /// Removes the probe with the given id; returns whether it was live.
    pub fn remove(&mut self, id: u32) -> bool {
        if !self.contains(id) {
            return false;
        }
        let len = self.id_len[id as usize];
        let buckets = self.buckets.buckets_vec_mut();
        // First bucket whose range reaches down to `len`.
        let start = buckets.partition_point(|b| b.min_len > len);
        let mut found = None;
        for (bi, bucket) in buckets.iter().enumerate().skip(start) {
            if bucket.max_len < len {
                break;
            }
            if let Some(lid) = bucket.ids.iter().position(|&x| x == id) {
                found = Some((bi, lid));
                break;
            }
        }
        let (bi, lid) = found.expect("live id must be present in a bucket");
        buckets[bi].remove_at(lid);
        let dropped = buckets[bi].is_empty();
        if dropped {
            buckets.remove(bi);
        }
        // Warm maintenance: drop or rebuild the touched bucket's slot.
        if dropped {
            if let Some(w) = &mut self.warm {
                w.per_bucket.remove(bi);
            }
        } else if self.warm.is_some() {
            self.rewarm_bucket(bi);
        }
        self.alive[id as usize] = false;
        self.live -= 1;
        let live = self.live;
        self.buckets.set_total(live);
        true
    }

    /// The live probes as `(stable ids, vectors)`, in ascending id order.
    pub fn live_vectors(&self) -> (Vec<u32>, VectorStore) {
        let mut pairs: Vec<(u32, usize, usize)> = Vec::with_capacity(self.live);
        for (bi, bucket) in self.buckets.buckets().iter().enumerate() {
            for (lid, &id) in bucket.ids.iter().enumerate() {
                pairs.push((id, bi, lid));
            }
        }
        pairs.sort_unstable_by_key(|&(id, _, _)| id);
        let mut store = VectorStore::empty(self.dim()).expect("dim > 0");
        let mut ids = Vec::with_capacity(pairs.len());
        for (id, bi, lid) in pairs {
            ids.push(id);
            store.push(self.buckets.buckets()[bi].origs.vector(lid)).expect("same dimensionality");
        }
        (ids, store)
    }

    /// Fraction of buckets that are *undersized* (below the policy's
    /// minimum bucket size), the signature damage of incremental edits:
    /// out-of-range inserts open singleton buckets and removals shrink
    /// existing ones. The static bucketization produces at most one
    /// undersized bucket (the last), so this is ≈ 0 right after
    /// construction or [`Self::rebuild`] and grows with edit churn.
    pub fn fragmentation(&self) -> f64 {
        let n = self.buckets.bucket_count();
        if n == 0 {
            return 0.0;
        }
        let undersized =
            self.buckets.buckets().iter().filter(|b| b.len() < self.policy.min_bucket).count();
        undersized as f64 / n as f64
    }

    /// Rebuilds the bucketization from scratch (compaction). Stable ids are
    /// preserved; all lazy indexes are dropped and rebuild on demand. A
    /// warm engine stays warm — every bucket of the compacted layout is
    /// re-indexed before the call returns — but the tuned per-bucket
    /// parameters reset to defaults (the old buckets no longer exist);
    /// call [`DynamicLemp::warm`] again to re-tune.
    pub fn rebuild(&mut self) {
        let (ids, store) = self.live_vectors();
        let mut rebuilt = ProbeBuckets::build(&store, &self.policy);
        // `build` numbered the rows 0..live; map back to stable ids.
        for bucket in rebuilt.buckets_mut() {
            for slot in &mut bucket.ids {
                *slot = ids[*slot as usize];
            }
        }
        self.buckets = rebuilt;
        self.buckets.set_total(self.live);
        if self.warm.is_some() {
            let per_bucket = vec![TunedParams::default(); self.buckets.bucket_count()];
            let mut clock = BuildClock::default();
            runner::prebuild_all(&mut self.buckets, &self.config, &per_bucket, &mut clock);
            if let Some(w) = &mut self.warm {
                w.per_bucket = per_bucket;
            }
        }
    }

    /// Solves Above-θ over the live probes (ids in the result are stable).
    ///
    /// # Panics
    /// If the query dimensionality differs from the probe dimensionality.
    pub fn above_theta(&mut self, queries: &VectorStore, theta: f64) -> AboveThetaOutput {
        if self.warm.is_some() {
            let mut scratch = self.make_scratch();
            return self.above_theta_shared(queries, theta, &mut scratch);
        }
        runner::above_theta(&mut self.buckets, queries, theta, &self.config)
    }

    /// Solves Row-Top-k over the live probes (ids in the result are
    /// stable).
    ///
    /// # Panics
    /// If the query dimensionality differs from the probe dimensionality.
    pub fn row_top_k(&mut self, queries: &VectorStore, k: usize) -> TopKOutput {
        if self.warm.is_some() {
            let mut scratch = self.make_scratch();
            return self.row_top_k_shared(queries, k, &mut scratch);
        }
        runner::row_top_k(&mut self.buckets, queries, k, &self.config)
    }

    /// [`DynamicLemp::above_theta`] through `&self` over a warmed engine,
    /// with a caller-owned scratch — the hot path of `lemp-serve`, where
    /// many reader threads share one engine behind an `RwLock` whose write
    /// side is only taken by probe edits.
    ///
    /// # Panics
    /// If the engine is not warmed ([`DynamicLemp::warm`]) or on
    /// query/probe dimensionality mismatch.
    pub fn above_theta_shared(
        &self,
        queries: &VectorStore,
        theta: f64,
        scratch: &mut MethodScratch,
    ) -> AboveThetaOutput {
        self.shared_request(
            "above_theta_shared",
            &QueryRequest::above_theta(theta),
            queries,
            scratch,
            None,
        )
        .into_above()
    }

    /// [`DynamicLemp::row_top_k`] through `&self` over a warmed engine.
    ///
    /// # Panics
    /// If the engine is not warmed ([`DynamicLemp::warm`]) or on
    /// query/probe dimensionality mismatch.
    pub fn row_top_k_shared(
        &self,
        queries: &VectorStore,
        k: usize,
        scratch: &mut MethodScratch,
    ) -> TopKOutput {
        self.row_top_k_with_floor_shared(queries, k, f64::NEG_INFINITY, scratch)
    }

    /// [`DynamicLemp::row_top_k_with_floor`] through `&self` over a warmed
    /// engine.
    ///
    /// # Panics
    /// If the engine is not warmed ([`DynamicLemp::warm`]) or on
    /// query/probe dimensionality mismatch.
    pub fn row_top_k_with_floor_shared(
        &self,
        queries: &VectorStore,
        k: usize,
        floor: f64,
        scratch: &mut MethodScratch,
    ) -> TopKOutput {
        self.shared_request(
            "row_top_k_with_floor_shared",
            &QueryRequest::top_k_with_floor(k, floor),
            queries,
            scratch,
            None,
        )
        .into_top_k()
    }

    /// [`DynamicLemp::abs_above_theta`] through `&self` over a warmed
    /// engine.
    ///
    /// # Panics
    /// If `theta ≤ 0`, the engine is not warmed, or on dimensionality
    /// mismatch.
    pub fn abs_above_theta_shared(
        &self,
        queries: &VectorStore,
        theta: f64,
        scratch: &mut MethodScratch,
    ) -> AboveThetaOutput {
        self.shared_request(
            "abs_above_theta_shared",
            &QueryRequest::abs_above_theta(theta),
            queries,
            scratch,
            None,
        )
        .into_above()
    }

    /// Solves **|Above-θ|** (`|qᵀp| ≥ theta`, `theta > 0`) over the live
    /// probes, as [`crate::Lemp::abs_above_theta`] does for the static
    /// engine.
    ///
    /// # Panics
    /// If `theta ≤ 0` or on dimensionality mismatch.
    pub fn abs_above_theta(&mut self, queries: &VectorStore, theta: f64) -> AboveThetaOutput {
        crate::abs_above_theta_via(queries, theta, |q| self.above_theta(q, theta))
    }

    /// **Row-Top-k with a score floor** over the live probes, as
    /// [`crate::Lemp::row_top_k_with_floor`] does for the static engine.
    ///
    /// # Panics
    /// If the query dimensionality differs from the probe dimensionality.
    pub fn row_top_k_with_floor(
        &mut self,
        queries: &VectorStore,
        k: usize,
        floor: f64,
    ) -> TopKOutput {
        if self.warm.is_some() {
            let mut scratch = self.make_scratch();
            return self.row_top_k_with_floor_shared(queries, k, floor, &mut scratch);
        }
        runner::row_top_k_floor(&mut self.buckets, queries, k, floor, &self.config)
    }

    /// The underlying buckets (inspection / tests).
    pub fn buckets(&self) -> &ProbeBuckets {
        &self.buckets
    }

    /// Probe-side memory residency (full-precision vs quantized bytes),
    /// as [`crate::Lemp::memory_usage`].
    pub fn memory_usage(&self) -> crate::bucket::MemoryUsage {
        self.buckets.memory_usage()
    }

    /// Serializes the dynamic engine: bucketization policy, run
    /// configuration, the id-space watermark and the bucket contents.
    /// Stable ids survive the round trip; dead ids stay dead (they are
    /// reconstructed as "absent from every bucket").
    ///
    /// # Errors
    /// Propagates write failures.
    pub fn write_to<W: std::io::Write>(&self, writer: W) -> Result<(), PersistError> {
        use crate::persist::{
            write_bucket_section, write_config, write_f64, write_quant_section, write_u64,
        };
        let mut w = std::io::BufWriter::new(writer);
        // Same backward-compat rule as the static format: quantization off
        // → byte-identical LEMPDYN1 image; on → LEMPDYN2 with the
        // quantized section appended after the bucket section.
        let quantized = self.config.quantize_bits > 0;
        w.write_all(if quantized { DYN_MAGIC2 } else { DYN_MAGIC })?;
        write_f64(&mut w, self.policy.length_ratio)?;
        write_u64(&mut w, self.policy.min_bucket as u64)?;
        write_u64(&mut w, self.policy.cache_bytes as u64)?;
        write_u64(&mut w, self.policy.seed)?;
        write_config(&mut w, &self.config)?;
        write_u64(&mut w, self.id_len.len() as u64)?;
        write_bucket_section(&mut w, &self.buckets)?;
        if quantized {
            write_quant_section(&mut w, self.config.quantize_bits, &self.buckets)?;
        }
        use std::io::Write;
        w.flush()?;
        Ok(())
    }

    /// Saves the dynamic engine to a file (see [`DynamicLemp::write_to`]).
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn save(&self, path: &std::path::Path) -> Result<(), PersistError> {
        self.write_to(std::fs::File::create(path)?)
    }

    /// Deserializes an engine written by [`DynamicLemp::write_to`].
    ///
    /// The per-id length table and liveness flags are reconstructed from
    /// the bucket contents (lengths recompute bit-identically via
    /// `kernels::norm`), so only the id-space watermark is stored.
    ///
    /// # Errors
    /// [`PersistError::Format`] on anything a corrupted file could break:
    /// the shared bucket-section validations plus id-space violations
    /// (ids at/above the watermark, duplicate ids across buckets).
    pub fn read_from<R: std::io::Read>(reader: R) -> Result<Self, PersistError> {
        use crate::persist::{
            expect_eof, read_bucket_section, read_config, read_f64, read_quant_section, read_u64,
        };
        let mut r = std::io::BufReader::new(reader);
        let mut magic = [0u8; 8];
        std::io::Read::read_exact(&mut r, &mut magic)
            .map_err(|_| PersistError::Format("file too short for magic".into()))?;
        let quantized = match &magic {
            m if m == DYN_MAGIC => false,
            m if m == DYN_MAGIC2 => true,
            _ => return Err(PersistError::Format(format!("bad magic {magic:?}"))),
        };
        let policy = BucketPolicy {
            length_ratio: read_f64(&mut r, "length_ratio")?,
            min_bucket: read_u64(&mut r, "min_bucket")? as usize,
            cache_bytes: read_u64(&mut r, "cache_bytes")? as usize,
            seed: read_u64(&mut r, "policy seed")?,
        };
        if !(policy.length_ratio > 0.0 && policy.length_ratio <= 1.0) || policy.min_bucket == 0 {
            return Err(PersistError::Format("invalid bucket policy".into()));
        }
        let config = read_config(&mut r)?;
        let id_space = read_u64(&mut r, "id space")? as usize;
        // Ids are u32, so a watermark past 2^32 can only be corruption.
        // The id-space tables are allocated only *after* the bucket section
        // has parsed (so the common corruption — a broken bucket — errors
        // first), and through `try_reserve` so even a plausible-looking but
        // absurd watermark becomes a Format error instead of an allocator
        // abort.
        if id_space > (1 << 32) {
            return Err(PersistError::Format(format!(
                "id-space watermark {id_space} exceeds the u32 id range"
            )));
        }
        let mut buckets = read_bucket_section(&mut r)?;
        let mut config = config;
        if quantized {
            config.quantize_bits = read_quant_section(&mut r, &mut buckets)?;
        }
        expect_eof(&mut r)?;

        // Probe allocatability first (graceful Format error instead of an
        // allocator abort), then build through `vec![zero; n]`, whose
        // zeroed-allocation path maps lazy pages — dead-id slots in a
        // sparse id space cost address space, not resident memory.
        {
            let mut probe: Vec<f64> = Vec::new();
            probe.try_reserve_exact(id_space).map_err(|_| {
                PersistError::Format(format!("id-space watermark {id_space} is unallocatable"))
            })?;
        }
        let mut id_len = vec![0.0f64; id_space];
        let mut alive = vec![false; id_space];
        for bucket in buckets.buckets() {
            for (lid, &id) in bucket.ids.iter().enumerate() {
                let id = id as usize;
                if id >= id_space {
                    return Err(PersistError::Format(format!(
                        "id {id} at/above the id-space watermark {id_space}"
                    )));
                }
                if alive[id] {
                    return Err(PersistError::Format(format!("duplicate id {id}")));
                }
                alive[id] = true;
                id_len[id] = bucket.lengths[lid];
            }
        }
        let live = buckets.total();
        Ok(Self { policy, config, buckets, id_len, alive, live, warm: None })
    }

    /// Loads a dynamic engine from a file (see [`DynamicLemp::read_from`]).
    ///
    /// # Errors
    /// Same conditions as [`DynamicLemp::read_from`].
    pub fn load(path: &std::path::Path) -> Result<Self, PersistError> {
        Self::read_from(std::fs::File::open(path)?)
    }
}

impl Engine for DynamicLemp {
    fn plan(&self, request: &QueryRequest) -> QueryPlan {
        let warm = self.warm_state("Engine::plan");
        plan::plan_single(
            &plan::SinglePrepared {
                buckets: &self.buckets,
                config: &self.config,
                per_bucket: &warm.per_bucket,
                blsh: warm.blsh_table.as_ref(),
            },
            request,
        )
    }

    fn execute(
        &self,
        plan: &QueryPlan,
        queries: &VectorStore,
        scratch: &mut Scratch,
    ) -> QueryResponse {
        let warm = self.warm_state("Engine::execute");
        plan::execute_single(
            &self.buckets,
            &self.config,
            warm.blsh_table.as_ref(),
            plan,
            queries,
            scratch,
        )
    }

    fn query_scratch(&self) -> Scratch {
        Scratch::single(self.make_scratch())
    }

    fn probes(&self) -> usize {
        self.live
    }

    fn dim(&self) -> usize {
        DynamicLemp::dim(self)
    }

    fn is_warm(&self) -> bool {
        DynamicLemp::is_warm(self)
    }

    fn warm_up(&mut self, sample: &VectorStore, goal: WarmGoal) -> WarmReport {
        DynamicLemp::warm(self, sample, goal)
    }
}

const DYN_MAGIC: &[u8; 8] = b"LEMPDYN1";
const DYN_MAGIC2: &[u8; 8] = b"LEMPDYN2";

/// A fresh single-vector bucket.
fn singleton(id: u32, v: &[f64]) -> Bucket {
    let origs = VectorStore::from_rows(&[v.to_vec()]).expect("caller validated v");
    Bucket::from_sorted_rows(vec![id], origs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LempVariant;
    use lemp_baselines::types::canonical_pairs;
    use lemp_baselines::Naive;
    use lemp_data::synthetic::GeneratorConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fixture(n: usize, seed: u64) -> VectorStore {
        GeneratorConfig::gaussian(n, 8, 1.0).generate(seed)
    }

    fn engine(probes: &VectorStore) -> DynamicLemp {
        let config = RunConfig { sample_size: 8, ..Default::default() };
        let policy = BucketPolicy { min_bucket: 8, cache_bytes: 64 << 10, ..Default::default() };
        DynamicLemp::new(probes, policy, config)
    }

    #[test]
    fn abs_and_floor_apis_are_exact_after_churn() {
        let probes = fixture(300, 4200);
        let queries = GeneratorConfig::gaussian(25, 8, 0.8).generate(4300);
        let mut e = engine(&probes);
        // Churn: drop every third probe, insert a few fresh ones.
        for id in (0..300u32).step_by(3) {
            assert!(e.remove(id));
        }
        let extra = fixture(20, 4400);
        for i in 0..extra.len() {
            e.insert(extra.vector(i)).unwrap();
        }
        // Ground truth over the live set, queried through a fresh engine
        // with ids mapped back to stable ids.
        let (ids, live) = e.live_vectors();
        let theta = 0.9;
        let mut expect_abs: Vec<(u32, u32)> = Vec::new();
        for i in 0..queries.len() {
            for (j, &id) in ids.iter().enumerate() {
                if queries.dot_between(i, &live, j).abs() >= theta {
                    expect_abs.push((i as u32, id));
                }
            }
        }
        expect_abs.sort_unstable();
        let out = e.abs_above_theta(&queries, theta);
        assert_eq!(canonical_pairs(&out.entries), expect_abs);
        assert!(out.entries.iter().any(|en| en.value < 0.0), "two-sided fixture");

        // Floored top-k against the brute-force filtered ranking.
        let k = 3;
        let floor = 0.7;
        let out = e.row_top_k_with_floor(&queries, k, floor);
        for (i, list) in out.lists.iter().enumerate() {
            let mut row: Vec<(u32, f64)> = (0..live.len())
                .map(|j| (ids[j], queries.dot_between(i, &live, j)))
                .filter(|&(_, v)| v >= floor)
                .collect();
            row.sort_by(|a, b| f64::total_cmp(&b.1, &a.1));
            row.truncate(k);
            let got: Vec<u32> = list.iter().map(|it| it.id as u32).collect();
            let want: Vec<u32> = row.iter().map(|&(id, _)| id).collect();
            assert_eq!(got, want, "query {i}");
        }
    }

    /// Checks both maintenance invariants on the current bucket state.
    fn check_invariants(e: &DynamicLemp) {
        let mut prev_min = f64::INFINITY;
        let mut seen = std::collections::BTreeSet::new();
        for b in e.buckets().buckets() {
            assert!(!b.is_empty(), "empty bucket retained");
            assert!(
                b.max_len <= prev_min + 1e-15,
                "inter-bucket order broken: max {} after min {prev_min}",
                b.max_len
            );
            assert!((b.lengths[0] - b.max_len).abs() == 0.0);
            assert!((b.lengths[b.len() - 1] - b.min_len).abs() == 0.0);
            for w in b.lengths.windows(2) {
                assert!(w[0] >= w[1], "within-bucket order broken");
            }
            for (lid, &id) in b.ids.iter().enumerate() {
                assert!(e.contains(id), "dead id {id} in bucket");
                assert_eq!(e.id_len[id as usize], b.lengths[lid], "stale length for id {id}");
                assert!(seen.insert(id), "id {id} in two buckets");
            }
            prev_min = b.min_len;
        }
        assert_eq!(seen.len(), e.len(), "live count disagrees with bucket contents");
    }

    #[test]
    fn insert_assigns_sequential_stable_ids() {
        let probes = fixture(20, 1);
        let mut e = engine(&probes);
        assert_eq!(e.next_id(), 20);
        let a = e.insert(&[1.0; 8]).unwrap();
        let b = e.insert(&[2.0; 8]).unwrap();
        assert_eq!((a, b), (20, 21));
        assert!(e.contains(a) && e.contains(b));
        assert_eq!(e.len(), 22);
        check_invariants(&e);
    }

    #[test]
    fn insert_validates_input() {
        let probes = fixture(10, 2);
        let mut e = engine(&probes);
        assert!(matches!(e.insert(&[1.0; 3]), Err(LinalgError::DimMismatch { .. })));
        let mut bad = vec![1.0; 8];
        bad[4] = f64::NAN;
        assert!(matches!(e.insert(&bad), Err(LinalgError::NonFinite { index: 4 })));
        assert_eq!(e.len(), 10, "failed inserts must not change the set");
    }

    #[test]
    fn remove_is_idempotent_and_updates_len() {
        let probes = fixture(15, 3);
        let mut e = engine(&probes);
        assert!(e.remove(7));
        assert!(!e.remove(7));
        assert!(!e.remove(999));
        assert_eq!(e.len(), 14);
        assert!(!e.contains(7));
        check_invariants(&e);
    }

    #[test]
    fn drain_everything_then_refill() {
        let probes = fixture(12, 4);
        let mut e = engine(&probes);
        for id in 0..12 {
            assert!(e.remove(id));
        }
        assert!(e.is_empty());
        assert_eq!(e.bucket_count(), 0);
        let q = fixture(3, 5);
        assert!(e.above_theta(&q, 0.1).entries.is_empty());
        let top = e.row_top_k(&q, 2);
        assert!(top.lists.iter().all(Vec::is_empty));
        // refill
        let id = e.insert(&[1.0; 8]).unwrap();
        assert_eq!(id, 12);
        assert_eq!(e.len(), 1);
        let top = e.row_top_k(&q, 1);
        assert!(top.lists.iter().all(|l| l.len() == 1 && l[0].id == 12));
        check_invariants(&e);
    }

    #[test]
    fn queries_agree_with_naive_after_edits() {
        let probes = fixture(120, 6);
        let mut e = engine(&probes);
        let mut rng = StdRng::seed_from_u64(7);
        // random edit script: 60 inserts, 50 removals of random live ids
        for _ in 0..60 {
            let v: Vec<f64> =
                (0..8).map(|_| 2.0 * lemp_data::rng::standard_normal(&mut rng)).collect();
            e.insert(&v).unwrap();
        }
        let mut removed = 0;
        while removed < 50 {
            let id = rng.random_range(0..e.next_id());
            if e.remove(id) {
                removed += 1;
            }
        }
        check_invariants(&e);

        let (ids, store) = e.live_vectors();
        let queries = fixture(25, 8);
        let theta = 2.0;
        let (naive_entries, _) = Naive.above_theta(&queries, &store, theta);
        let expect: Vec<(u32, u32)> = {
            let mut v: Vec<(u32, u32)> =
                naive_entries.iter().map(|en| (en.query, ids[en.probe as usize])).collect();
            v.sort_unstable();
            v
        };
        let got = e.above_theta(&queries, theta);
        assert_eq!(canonical_pairs(&got.entries), expect);

        // Row-Top-k: compare score multisets per query.
        let k = 5;
        let (naive_topk, _) = Naive.row_top_k(&queries, &store, k);
        let dynamic_topk = e.row_top_k(&queries, k);
        assert!(lemp_baselines::types::topk_equivalent(&dynamic_topk.lists, &naive_topk, 1e-9));
    }

    #[test]
    fn inserts_split_buckets_past_the_cache_cap() {
        // Tiny cache: cap is small, repeated equal-length inserts must
        // split instead of growing one bucket forever.
        let policy = BucketPolicy { min_bucket: 2, cache_bytes: 4096, ..Default::default() };
        let config = RunConfig { sample_size: 4, ..Default::default() };
        let probes = fixture(10, 9);
        let mut e = DynamicLemp::new(&probes, policy, config);
        let cap = policy.max_bucket(8);
        for _ in 0..6 * cap {
            e.insert(&[1.0; 8]).unwrap();
        }
        check_invariants(&e);
        for b in e.buckets().buckets() {
            assert!(b.len() <= cap, "bucket of {} exceeds cap {cap}", b.len());
        }
        assert!(e.bucket_count() >= 6);
    }

    #[test]
    fn out_of_range_inserts_open_new_buckets() {
        let probes = fixture(40, 10);
        let mut e = engine(&probes);
        let before = e.bucket_count();
        // Vastly longer than anything: must not be absorbed into the front
        // bucket (ratio rule) once that bucket is at min size.
        e.insert(&[1e6; 8]).unwrap();
        assert!(e.bucket_count() >= before);
        assert!((e.buckets().buckets()[0].max_len - 1e6 * (8f64).sqrt()).abs() < 1.0);
        // Vastly shorter: lands at the tail.
        e.insert(&[1e-9; 8]).unwrap();
        let last = e.buckets().buckets().last().unwrap();
        assert!(last.min_len < 1e-6);
        check_invariants(&e);
    }

    #[test]
    fn rebuild_compacts_and_preserves_results() {
        let probes = fixture(100, 11);
        let mut e = engine(&probes);
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..80 {
            let scale = 10f64.powf(rng.random_range(-2.0..2.0));
            let v: Vec<f64> =
                (0..8).map(|_| scale * lemp_data::rng::standard_normal(&mut rng)).collect();
            e.insert(&v).unwrap();
        }
        for id in (0..100).step_by(3) {
            e.remove(id);
        }
        let queries = fixture(10, 13);
        let before = canonical_pairs(&e.above_theta(&queries, 1.5).entries);
        let frag_before = e.fragmentation();
        e.rebuild();
        check_invariants(&e);
        let after = canonical_pairs(&e.above_theta(&queries, 1.5).entries);
        assert_eq!(before, after, "rebuild changed query results");
        assert!(
            e.fragmentation() <= frag_before + 1e-12,
            "rebuild must not worsen fragmentation ({frag_before} -> {})",
            e.fragmentation()
        );
    }

    #[test]
    fn live_vectors_roundtrip_exactly() {
        let probes = fixture(30, 14);
        let mut e = engine(&probes);
        e.remove(5);
        e.remove(17);
        let added = e.insert(&[0.5; 8]).unwrap();
        let (ids, store) = e.live_vectors();
        assert_eq!(ids.len(), 29);
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must be ascending");
        assert!(!ids.contains(&5) && !ids.contains(&17));
        assert!(ids.contains(&added));
        for (row, &id) in ids.iter().enumerate() {
            if id < 30 {
                assert_eq!(store.vector(row), probes.vector(id as usize), "id {id} mutated");
            } else {
                assert_eq!(store.vector(row), &[0.5; 8]);
            }
        }
    }

    #[test]
    fn persistence_roundtrips_after_edits() {
        let probes = fixture(60, 20);
        let mut e = engine(&probes);
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..30 {
            let v: Vec<f64> =
                (0..8).map(|_| 3.0 * lemp_data::rng::standard_normal(&mut rng)).collect();
            e.insert(&v).unwrap();
        }
        for id in (0..60).step_by(4) {
            e.remove(id);
        }
        let mut buf = Vec::new();
        e.write_to(&mut buf).unwrap();
        let mut loaded = DynamicLemp::read_from(&buf[..]).unwrap();
        check_invariants(&loaded);
        assert_eq!(loaded.len(), e.len());
        assert_eq!(loaded.next_id(), e.next_id());
        assert_eq!(loaded.bucket_count(), e.bucket_count());
        // dead ids stay dead, live ids stay live
        for id in 0..e.next_id() {
            assert_eq!(loaded.contains(id), e.contains(id), "liveness of id {id} changed");
        }
        // identical answers and continued edits
        let queries = fixture(10, 22);
        let a = e.above_theta(&queries, 1.0);
        let b = loaded.above_theta(&queries, 1.0);
        assert_eq!(canonical_pairs(&a.entries), canonical_pairs(&b.entries));
        let id_e = e.insert(&[1.0; 8]).unwrap();
        let id_l = loaded.insert(&[1.0; 8]).unwrap();
        assert_eq!(id_e, id_l, "id watermark diverged after load");
        assert!(loaded.remove(id_l));
    }

    #[test]
    fn quantized_persistence_roundtrips_after_edits() {
        let probes = fixture(120, 25);
        let config = RunConfig { sample_size: 8, quantize_bits: 8, ..Default::default() };
        let policy = BucketPolicy { min_bucket: 8, ..Default::default() };
        let mut e = DynamicLemp::new(&probes, policy, config);
        let sample = fixture(12, 26);
        e.warm(&sample, crate::WarmGoal::TopK(3));
        // Edits re-encode the touched bucket inside the edit (rewarm).
        e.insert(&[2.5; 8]).unwrap();
        assert!(e.remove(3));
        assert!(
            e.buckets().buckets().iter().all(|b| b.indexes.quant.is_some()),
            "warm quantized engine must keep codebooks through edits"
        );
        let mut buf = Vec::new();
        e.write_to(&mut buf).unwrap();
        assert_eq!(&buf[..8], b"LEMPDYN2");
        let mut loaded = DynamicLemp::read_from(&buf[..]).unwrap();
        check_invariants(&loaded);
        assert_eq!(loaded.config().quantize_bits, 8);
        for (a, b) in loaded.buckets().buckets().iter().zip(e.buckets().buckets()) {
            assert_eq!(a.indexes.quant, b.indexes.quant, "quant state must round-trip");
        }
        assert!(loaded.memory_usage().quantized_bytes > 0);
        let queries = fixture(10, 27);
        let x = e.above_theta(&queries, 1.0);
        let y = loaded.above_theta(&queries, 1.0);
        assert_eq!(canonical_pairs(&x.entries), canonical_pairs(&y.entries));
    }

    #[test]
    fn persistence_rejects_corruption() {
        let probes = fixture(20, 23);
        let e = engine(&probes);
        let mut buf = Vec::new();
        e.write_to(&mut buf).unwrap();

        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(DynamicLemp::read_from(&bad[..]), Err(PersistError::Format(_))));

        // id watermark smaller than a stored id: offset of the id-space
        // word is magic(8) + policy(4×8) + config(1 + 3×8 + 3×8).
        let id_space_at = 8 + 32 + 1 + 48;
        let mut bad = buf.clone();
        bad[id_space_at..id_space_at + 8].copy_from_slice(&1u64.to_le_bytes());
        let err = DynamicLemp::read_from(&bad[..]).unwrap_err();
        assert!(err.to_string().contains("watermark"), "unexpected error: {err}");

        // truncations
        for cut in [4usize, 20, id_space_at + 4, buf.len() - 3] {
            assert!(DynamicLemp::read_from(&buf[..cut]).is_err(), "truncation at {cut} accepted");
        }
        // trailing bytes
        let mut bad = buf.clone();
        bad.push(0);
        assert!(DynamicLemp::read_from(&bad[..]).is_err());
    }

    #[test]
    fn persistence_file_roundtrip() {
        let probes = fixture(15, 24);
        let e = engine(&probes);
        let path =
            std::env::temp_dir().join(format!("lemp-dyn-persist-{}.eng", std::process::id()));
        e.save(&path).unwrap();
        let loaded = DynamicLemp::load(&path).unwrap();
        assert_eq!(loaded.len(), 15);
        std::fs::remove_file(&path).ok();
        assert!(matches!(DynamicLemp::load(&path), Err(PersistError::Io(_))));
    }

    #[test]
    fn works_with_every_exact_variant() {
        let probes = fixture(80, 15);
        let queries = fixture(10, 16);
        for variant in LempVariant::all() {
            if variant.is_approximate() {
                continue;
            }
            let config = RunConfig { variant, sample_size: 4, ..Default::default() };
            let policy = BucketPolicy { min_bucket: 8, ..Default::default() };
            let mut e = DynamicLemp::new(&probes, policy, config);
            e.insert(&[3.0; 8]).unwrap();
            e.remove(0);
            let (ids, store) = e.live_vectors();
            let (expect, _) = Naive.above_theta(&queries, &store, 1.5);
            let expect_pairs: Vec<(u32, u32)> = {
                let mut v: Vec<(u32, u32)> =
                    expect.iter().map(|en| (en.query, ids[en.probe as usize])).collect();
                v.sort_unstable();
                v
            };
            let got = e.above_theta(&queries, 1.5);
            assert_eq!(
                canonical_pairs(&got.entries),
                expect_pairs,
                "{} diverges after edits",
                variant.name()
            );
        }
    }
}
