//! Engine persistence: save a preprocessed [`Lemp`] engine to disk and
//! load it back without repeating the preprocessing phase.
//!
//! At the paper's scale the probe side has millions of vectors; a service
//! that restarts should not redo the sort/normalize/bucketize pass (nor
//! lose the run configuration a deployment was tuned with). A persisted
//! engine image is the **intended input to `lemp serve`**: build it once
//! with `lemp index`, then every server boot loads it (via
//! [`Lemp::load`], wrapped by [`crate::DynamicLemp::from_engine`]), warms
//! it, and starts answering — preprocessing never runs at serve time. The
//! format is a small versioned binary layout:
//!
//! ```text
//! "LEMPENG1"                                magic
//! variant, sample_size, blsh_bits, blsh_eps,
//! tree_base, threads, l2ap_topk_threshold   run configuration
//! dim, total, bucket count                  bucket header
//! per bucket: count, ids, original rows     (lengths/directions/indexes
//!                                            are recomputed — indexes are
//!                                            lazy anyway, Sec. 4.2)
//! ```
//!
//! # The quantized section (version 2)
//!
//! Engines built with quantization ([`crate::LempBuilder::quantize`])
//! persist under the `LEMPENG2` magic: the byte-identical version-1
//! layout followed by one **quantized section** —
//!
//! ```text
//! quantize_bits                             u8, 1..=16
//! per bucket: present flag (u8);            0 = codebooks not trained yet
//!   if present: bits (u8), sub_dim, k,      (re-train at the next warm)
//!   m·k·sub_dim codebook doubles,
//!   m·n packed codes (u8 per code ≤ 8 bits, u16 above)
//! ```
//!
//! **Backward-compat rule**: an engine with quantization *off* writes the
//! `LEMPENG1` bytes unchanged — old readers keep working and images diff
//! clean — while readers accept both magics, so legacy images load into
//! quantization-aware builds (and re-train codebooks at the next warm if
//! quantization is then enabled). The same rule applies to the dynamic
//! format (`LEMPDYN1`/`LEMPDYN2`, see [`crate::dynamic`]); sharded
//! manifests inherit it through their embedded per-shard dynamic images.
//! Loading validates every shape and code index of the section
//! ([`crate::quant::QuantizedBucket::from_parts`]) and **recomputes** the
//! distortion bound `eps` from the full-precision directions — a tampered
//! image can corrupt the codebooks but never the exactness contract.
//!
//! All integers are little-endian `u64` (`u32` for ids), floats are IEEE
//! `f64` bits, so files are portable across platforms. Loading validates
//! everything a corrupted or hand-edited file could break: magic, variant
//! tags, finiteness, within-bucket length ordering, the inter-bucket
//! ordering the retrieval loops rely on, and exact trailing length.
//!
//! The sharded engine ([`crate::ShardedLemp`]) persists a `LEMPSHD2`
//! manifest — policy kind, shard count, length-band floors, then one
//! length-prefixed `LEMPDYN1` image per shard (see [`crate::shard`]).
//! **Legacy files keep loading unchanged**: single-shard `LEMPENG1`
//! images through [`Lemp::load`] and everything built on it (`lemp
//! serve`, [`crate::DynamicLemp::from_engine`]), and `LEMPSHD1`
//! manifests (immutable `Lemp` shards) through [`crate::ShardedLemp`]'s
//! reader; the formats share the `.eng` extension and are told apart by
//! magic ([`crate::shard::is_sharded_image`]).
//!
//! # The sharded store layout
//!
//! `lemp-store` composes durability with sharding on top of these
//! images. A **sharded store directory** is a root `MANIFEST` plus one
//! ordinary single-engine store directory per shard:
//!
//! ```text
//! store/
//!   MANIFEST             "LEMPSHM1": policy tag, shard count,
//!                        length-band floors, CRC-32 trailer
//!   shard-000/           an ordinary store directory:
//!     snap-<lsn>.eng       LEMPDYN1 snapshot image(s)
//!     CHECKPOINT           marker (checkpoint LSN + snapshot length/CRC)
//!     wal-<lsn>.log        LEMPWAL1 write-ahead segments
//!   shard-001/ …
//! ```
//!
//! Each shard logs exactly the edits routed to it, so a shard's WAL
//! replays onto its own snapshot independently of its siblings; the
//! manifest carries what per-shard images cannot — the routing policy
//! and band floors that make placement deterministic across restarts.
//! Recovery reassembles the full sharded engine and re-checks the
//! cross-shard invariants (disjoint global id spaces, equal
//! dimensionality).
//!
//! # The shared codec
//!
//! Every on-disk format in the LEMP family — `LEMPENG1`, `LEMPSHD1`/
//! `LEMPSHD2`, `LEMPDYN1` and the `lemp-store` durability files
//! (`LEMPWAL1` write-ahead segments, their `CHECKPOINT` marker, and the
//! `LEMPSHM1` root manifest) — is built from the same four primitives:
//! little-endian `u64`, IEEE-bits `f64`, and the truncation-aware
//! readers that turn a short file into a [`PersistError::Format`]
//! instead of a panic. They are exported here ([`write_u64`],
//! [`write_f64`], [`read_u64`], [`read_f64`], [`expect_eof`]) so
//! downstream crates encode with the *same* code rather than a copy that
//! could drift.
//!
//! # Hostile-input hardening
//!
//! Readers never allocate proportionally to a size field before the bytes
//! backing it have been read: counts coming from the file are capped before
//! `with_capacity`, products are computed with checked arithmetic, and the
//! dynamic engine's id-space table is allocated through `try_reserve` so an
//! absurd (corrupted) watermark surfaces as a [`PersistError::Format`], not
//! an allocator abort. The `persist_fuzz` integration test truncates and
//! bit-flips images at every offset to keep these paths panic-free.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use lemp_linalg::VectorStore;

use crate::bucket::{Bucket, ProbeBuckets};
use crate::exec::RunConfig;
use crate::quant::{QuantCodes, QuantizedBucket, MAX_QUANT_BITS};
use crate::variant::LempVariant;
use crate::Lemp;

const MAGIC: &[u8; 8] = b"LEMPENG1";
const MAGIC2: &[u8; 8] = b"LEMPENG2";

/// Errors raised by engine persistence.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The file is not a valid engine image.
    Format(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Format(msg) => write!(f, "format error: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn variant_tag(v: LempVariant) -> u8 {
    match v {
        LempVariant::L => 0,
        LempVariant::C => 1,
        LempVariant::I => 2,
        LempVariant::LC => 3,
        LempVariant::LI => 4,
        LempVariant::Ta => 5,
        LempVariant::Tree => 6,
        LempVariant::L2ap => 7,
        LempVariant::Blsh => 8,
    }
}

fn variant_from_tag(tag: u8) -> Result<LempVariant, PersistError> {
    Ok(match tag {
        0 => LempVariant::L,
        1 => LempVariant::C,
        2 => LempVariant::I,
        3 => LempVariant::LC,
        4 => LempVariant::LI,
        5 => LempVariant::Ta,
        6 => LempVariant::Tree,
        7 => LempVariant::L2ap,
        8 => LempVariant::Blsh,
        other => return Err(PersistError::Format(format!("unknown variant tag {other}"))),
    })
}

/// Writes a little-endian `u64` (the integer codec of every LEMP format).
///
/// # Errors
/// Propagates write failures.
pub fn write_u64<W: Write>(w: &mut W, x: u64) -> io::Result<()> {
    w.write_all(&x.to_le_bytes())
}

/// Writes an `f64` as its IEEE bits, little-endian (bit-exact round trip).
///
/// # Errors
/// Propagates write failures.
pub fn write_f64<W: Write>(w: &mut W, x: f64) -> io::Result<()> {
    w.write_all(&x.to_le_bytes())
}

/// Reads a little-endian `u64`; `what` names the field in the truncation
/// error.
///
/// # Errors
/// [`PersistError::Format`] when the reader ends mid-word.
pub fn read_u64<R: Read>(r: &mut R, what: &str) -> Result<u64, PersistError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)
        .map_err(|_| PersistError::Format(format!("truncated while reading {what}")))?;
    Ok(u64::from_le_bytes(buf))
}

/// Reads an `f64` written by [`write_f64`]; `what` names the field in the
/// truncation error.
///
/// # Errors
/// [`PersistError::Format`] when the reader ends mid-word.
pub fn read_f64<R: Read>(r: &mut R, what: &str) -> Result<f64, PersistError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)
        .map_err(|_| PersistError::Format(format!("truncated while reading {what}")))?;
    Ok(f64::from_le_bytes(buf))
}

/// Writes a [`RunConfig`] (shared by the static- and dynamic-engine
/// formats).
pub(crate) fn write_config<W: Write>(w: &mut W, cfg: &RunConfig) -> Result<(), PersistError> {
    w.write_all(&[variant_tag(cfg.variant)])?;
    write_u64(w, cfg.sample_size as u64)?;
    write_u64(w, cfg.blsh_bits as u64)?;
    write_f64(w, cfg.blsh_eps)?;
    write_f64(w, cfg.tree_base)?;
    write_u64(w, cfg.threads as u64)?;
    write_f64(w, cfg.l2ap_topk_threshold)?;
    Ok(())
}

/// Reads a [`RunConfig`] written by [`write_config`].
pub(crate) fn read_config<R: Read>(r: &mut R) -> Result<RunConfig, PersistError> {
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag).map_err(|_| PersistError::Format("truncated variant tag".into()))?;
    let config = RunConfig {
        variant: variant_from_tag(tag[0])?,
        sample_size: read_u64(r, "sample_size")? as usize,
        blsh_bits: read_u64(r, "blsh_bits")? as usize,
        blsh_eps: read_f64(r, "blsh_eps")?,
        tree_base: read_f64(r, "tree_base")?,
        threads: (read_u64(r, "threads")? as usize).max(1),
        l2ap_topk_threshold: read_f64(r, "l2ap_topk_threshold")?,
        quantize_bits: 0,
        // A runtime tuning preference, deliberately not persisted: images
        // bake the tuner's per-bucket decisions instead.
        quantize_force: false,
    };
    if !config.blsh_eps.is_finite() || !config.tree_base.is_finite() {
        return Err(PersistError::Format("non-finite configuration value".into()));
    }
    Ok(config)
}

/// Writes the bucket section: dim, total, bucket count, then per bucket its
/// size, ids and original rows.
pub(crate) fn write_bucket_section<W: Write>(
    w: &mut W,
    buckets: &ProbeBuckets,
) -> Result<(), PersistError> {
    write_u64(w, buckets.dim() as u64)?;
    write_u64(w, buckets.total() as u64)?;
    write_u64(w, buckets.bucket_count() as u64)?;
    for bucket in buckets.buckets() {
        write_u64(w, bucket.len() as u64)?;
        for &id in &bucket.ids {
            w.write_all(&id.to_le_bytes())?;
        }
        for &x in bucket.origs.as_flat() {
            write_f64(w, x)?;
        }
    }
    Ok(())
}

/// Reads and validates a bucket section written by [`write_bucket_section`]:
/// within-bucket and inter-bucket length orderings, size consistency and
/// finite values are all enforced.
pub(crate) fn read_bucket_section<R: Read>(r: &mut R) -> Result<ProbeBuckets, PersistError> {
    let dim = read_u64(r, "dim")? as usize;
    if dim == 0 {
        return Err(PersistError::Format("dimensionality must be positive".into()));
    }
    let total = read_u64(r, "total")? as usize;
    let nbuckets = read_u64(r, "bucket count")? as usize;
    // Capacity hints are capped: a corrupted count must not translate into
    // a giant allocation before a single backing byte has been read (the
    // pushes below grow the vectors against the *actual* file content, so
    // truncation surfaces as a Format error long before memory pressure).
    const CAP_HINT: usize = 1 << 16;
    let mut buckets = Vec::with_capacity(nbuckets.min(1 << 20));
    let mut seen = 0usize;
    let mut prev_min = f64::INFINITY;
    for b in 0..nbuckets {
        let count = read_u64(r, "bucket size")? as usize;
        if count == 0 {
            return Err(PersistError::Format(format!("bucket {b} is empty")));
        }
        seen = seen
            .checked_add(count)
            .ok_or_else(|| PersistError::Format("bucket sizes overflow".into()))?;
        if seen > total {
            return Err(PersistError::Format(format!(
                "bucket sizes exceed declared total {total}"
            )));
        }
        let mut ids = Vec::with_capacity(count.min(CAP_HINT));
        let mut buf4 = [0u8; 4];
        for _ in 0..count {
            r.read_exact(&mut buf4)
                .map_err(|_| PersistError::Format("truncated id section".into()))?;
            ids.push(u32::from_le_bytes(buf4));
        }
        let values = count
            .checked_mul(dim)
            .ok_or_else(|| PersistError::Format("bucket size × dim overflows".into()))?;
        let mut flat = Vec::with_capacity(values.min(CAP_HINT));
        for _ in 0..values {
            flat.push(read_f64(r, "vector data")?);
        }
        let origs = VectorStore::from_flat(flat, dim)
            .map_err(|e| PersistError::Format(format!("bucket {b}: {e}")))?;
        // Validate the ordering invariants *before* handing the rows to the
        // bucket constructor (its internal debug assertions assume trusted
        // callers; this input is a file).
        let lengths = origs.lengths();
        if lengths.windows(2).any(|w| w[0] < w[1]) {
            return Err(PersistError::Format(format!(
                "bucket {b}: rows not sorted by decreasing length"
            )));
        }
        let bucket = Bucket::from_sorted_rows(ids, origs);
        if bucket.max_len > prev_min {
            return Err(PersistError::Format(format!(
                "bucket {b}: length range overlaps the previous bucket"
            )));
        }
        prev_min = bucket.min_len;
        buckets.push(bucket);
    }
    if seen != total {
        return Err(PersistError::Format(format!(
            "declared total {total} but buckets hold {seen}"
        )));
    }
    Ok(ProbeBuckets::from_parts(dim, total, buckets))
}

/// Writes the quantized section (see the module docs): the configured code
/// width, then per bucket a present flag and — when codebooks are trained —
/// the full quantized representation. `eps` is deliberately *not* stored;
/// readers recompute it from the directions.
pub(crate) fn write_quant_section<W: Write>(
    w: &mut W,
    quantize_bits: u8,
    buckets: &ProbeBuckets,
) -> Result<(), PersistError> {
    w.write_all(&[quantize_bits])?;
    for bucket in buckets.buckets() {
        let Some(q) = &bucket.indexes.quant else {
            w.write_all(&[0u8])?;
            continue;
        };
        w.write_all(&[1u8, q.bits()])?;
        write_u64(w, q.sub_dim() as u64)?;
        write_u64(w, q.k() as u64)?;
        for &x in q.codebooks() {
            write_f64(w, x)?;
        }
        match q.codes() {
            QuantCodes::U8(codes) => w.write_all(codes)?,
            QuantCodes::U16(codes) => {
                for &c in codes {
                    w.write_all(&c.to_le_bytes())?;
                }
            }
        }
    }
    Ok(())
}

/// Reads and validates a quantized section written by
/// [`write_quant_section`], attaching the reconstructed
/// [`QuantizedBucket`]s to `buckets` and returning the configured code
/// width. All shape/code validation and the `eps` recomputation happen in
/// [`QuantizedBucket::from_parts`] — a corrupted section becomes a
/// [`PersistError::Format`], never a panic or an oversized allocation.
pub(crate) fn read_quant_section<R: Read>(
    r: &mut R,
    buckets: &mut ProbeBuckets,
) -> Result<u8, PersistError> {
    const CAP_HINT: usize = 1 << 16;
    let mut byte = [0u8; 1];
    r.read_exact(&mut byte)
        .map_err(|_| PersistError::Format("truncated while reading quantize_bits".into()))?;
    let quantize_bits = byte[0];
    if quantize_bits == 0 || quantize_bits > MAX_QUANT_BITS {
        return Err(PersistError::Format(format!("quantize_bits {quantize_bits} outside 1..=16")));
    }
    for (b, bucket) in buckets.buckets_vec_mut().iter_mut().enumerate() {
        r.read_exact(&mut byte)
            .map_err(|_| PersistError::Format(format!("bucket {b}: truncated quant flag")))?;
        match byte[0] {
            0 => continue,
            1 => {}
            other => {
                return Err(PersistError::Format(format!(
                    "bucket {b}: quant flag {other} is neither 0 nor 1"
                )))
            }
        }
        r.read_exact(&mut byte)
            .map_err(|_| PersistError::Format(format!("bucket {b}: truncated quant bits")))?;
        let bits = byte[0];
        if bits == 0 || bits > MAX_QUANT_BITS {
            return Err(PersistError::Format(format!(
                "bucket {b}: quant bits {bits} outside 1..=16"
            )));
        }
        let sub_dim = read_u64(r, "quant sub_dim")? as usize;
        let k = read_u64(r, "quant k")? as usize;
        // Shape sanity *before* sizing any read: a corrupted sub_dim or k
        // must not drive a huge (or zero-divisor) element count.
        let n = bucket.len();
        let dim = bucket.dirs.dim();
        if sub_dim == 0 || sub_dim > dim {
            return Err(PersistError::Format(format!(
                "bucket {b}: quant sub_dim {sub_dim} invalid for dim {dim}"
            )));
        }
        if k == 0 || k > n {
            return Err(PersistError::Format(format!(
                "bucket {b}: quant k {k} invalid for {n} probes"
            )));
        }
        let m = dim.div_ceil(sub_dim);
        let cb_len = m
            .checked_mul(k)
            .and_then(|x| x.checked_mul(sub_dim))
            .ok_or_else(|| PersistError::Format(format!("bucket {b}: codebook size overflows")))?;
        let mut codebooks = Vec::with_capacity(cb_len.min(CAP_HINT));
        for _ in 0..cb_len {
            codebooks.push(read_f64(r, "quant codebook")?);
        }
        let code_count = m
            .checked_mul(n)
            .ok_or_else(|| PersistError::Format(format!("bucket {b}: code count overflows")))?;
        let codes = if bits <= 8 {
            let mut v = Vec::with_capacity(code_count.min(CAP_HINT));
            for _ in 0..code_count {
                r.read_exact(&mut byte).map_err(|_| {
                    PersistError::Format(format!("bucket {b}: truncated quant codes"))
                })?;
                v.push(byte[0]);
            }
            QuantCodes::U8(v)
        } else {
            let mut v = Vec::with_capacity(code_count.min(CAP_HINT));
            let mut two = [0u8; 2];
            for _ in 0..code_count {
                r.read_exact(&mut two).map_err(|_| {
                    PersistError::Format(format!("bucket {b}: truncated quant codes"))
                })?;
                v.push(u16::from_le_bytes(two));
            }
            QuantCodes::U16(v)
        };
        let q = QuantizedBucket::from_parts(bits, sub_dim, k, codebooks, codes, &bucket.dirs)
            .map_err(|e| PersistError::Format(format!("bucket {b}: {e}")))?;
        bucket.indexes.quant = Some(q);
    }
    Ok(quantize_bits)
}

/// Reports trailing bytes after a complete image as a format error.
///
/// # Errors
/// [`PersistError::Format`] when the reader still holds bytes;
/// [`PersistError::Io`] when probing for them fails.
pub fn expect_eof<R: Read>(r: &mut R) -> Result<(), PersistError> {
    let mut probe = [0u8; 1];
    if r.read(&mut probe)? != 0 {
        return Err(PersistError::Format("trailing bytes after engine image".into()));
    }
    Ok(())
}

impl Lemp {
    /// Serializes the engine (run configuration + preprocessed buckets) to
    /// a writer. Lazily built indexes are *not* stored — they rebuild on
    /// first use after loading, exactly as after a fresh preprocessing.
    ///
    /// # Errors
    /// Propagates write failures.
    pub fn write_to<W: Write>(&self, writer: W) -> Result<(), PersistError> {
        let mut w = BufWriter::new(writer);
        // Backward-compat rule: quantization off → byte-identical LEMPENG1
        // image; on → LEMPENG2 with the quantized section appended.
        let quantized = self.config.quantize_bits > 0;
        w.write_all(if quantized { MAGIC2 } else { MAGIC })?;
        write_config(&mut w, &self.config)?;
        write_bucket_section(&mut w, &self.buckets)?;
        if quantized {
            write_quant_section(&mut w, self.config.quantize_bits, &self.buckets)?;
        }
        w.flush()?;
        Ok(())
    }

    /// Saves the engine to a file (see [`Lemp::write_to`]).
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> Result<(), PersistError> {
        self.write_to(File::create(path)?)
    }

    /// Deserializes an engine written by [`Lemp::write_to`].
    ///
    /// # Errors
    /// [`PersistError::Format`] on bad magic, unknown variant tags,
    /// non-finite values, broken length orderings, inconsistent totals, or
    /// trailing bytes; [`PersistError::Io`] on read failures.
    pub fn read_from<R: Read>(reader: R) -> Result<Self, PersistError> {
        let mut r = BufReader::new(reader);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)
            .map_err(|_| PersistError::Format("file too short for magic".into()))?;
        let quantized = match &magic {
            m if m == MAGIC => false,
            m if m == MAGIC2 => true,
            _ => return Err(PersistError::Format(format!("bad magic {magic:?}"))),
        };
        let mut config = read_config(&mut r)?;
        let mut buckets = read_bucket_section(&mut r)?;
        if quantized {
            config.quantize_bits = read_quant_section(&mut r, &mut buckets)?;
        }
        expect_eof(&mut r)?;
        Ok(Lemp::from_parts(buckets, config))
    }

    /// Loads an engine from a file (see [`Lemp::read_from`]).
    ///
    /// # Errors
    /// Same conditions as [`Lemp::read_from`].
    pub fn load(path: &Path) -> Result<Self, PersistError> {
        Self::read_from(File::open(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LempVariant;
    use lemp_baselines::types::{canonical_pairs, topk_equivalent};
    use lemp_data::synthetic::GeneratorConfig;

    fn fixture() -> (VectorStore, VectorStore) {
        let q = GeneratorConfig::gaussian(40, 8, 1.0).generate(61);
        let p = GeneratorConfig::gaussian(200, 8, 1.5).generate(62);
        (q, p)
    }

    fn roundtrip(engine: &Lemp) -> Lemp {
        let mut buf = Vec::new();
        engine.write_to(&mut buf).unwrap();
        Lemp::read_from(&buf[..]).unwrap()
    }

    #[test]
    fn roundtrip_preserves_results_and_config() {
        let (q, p) = fixture();
        let mut original = Lemp::builder()
            .variant(LempVariant::LI)
            .sample_size(7)
            .threads(2)
            .tree_base(1.4)
            .blsh(16, 0.05)
            .build(&p);
        let mut loaded = roundtrip(&original);
        assert_eq!(loaded.config(), original.config());
        assert_eq!(loaded.buckets().bucket_count(), original.buckets().bucket_count());
        assert_eq!(loaded.buckets().total(), original.buckets().total());

        let a = original.above_theta(&q, 1.2);
        let b = loaded.above_theta(&q, 1.2);
        assert_eq!(canonical_pairs(&a.entries), canonical_pairs(&b.entries));
        let ta = original.row_top_k(&q, 5);
        let tb = loaded.row_top_k(&q, 5);
        assert!(topk_equivalent(&ta.lists, &tb.lists, 0.0));
    }

    #[test]
    fn roundtrip_after_queries_drops_indexes_but_not_answers() {
        let (q, p) = fixture();
        let mut original = Lemp::builder().variant(LempVariant::I).sample_size(5).build(&p);
        let before = original.above_theta(&q, 1.0); // builds indexes lazily
        let mut loaded = roundtrip(&original);
        let after = loaded.above_theta(&q, 1.0);
        assert_eq!(canonical_pairs(&before.entries), canonical_pairs(&after.entries));
        // the loaded run had to rebuild its indexes
        assert!(after.stats.indexes_built > 0);
    }

    #[test]
    fn file_roundtrip() {
        let (_, p) = fixture();
        let engine = Lemp::builder().build(&p);
        let path = std::env::temp_dir().join(format!("lemp-persist-{}.eng", std::process::id()));
        engine.save(&path).unwrap();
        let loaded = Lemp::load(&path).unwrap();
        assert_eq!(loaded.buckets().total(), p.len());
        std::fs::remove_file(&path).ok();
        assert!(matches!(Lemp::load(&path), Err(PersistError::Io(_))));
    }

    #[test]
    fn empty_engine_roundtrips() {
        let p = VectorStore::empty(6).unwrap();
        let engine = Lemp::builder().build(&p);
        let loaded = roundtrip(&engine);
        assert_eq!(loaded.buckets().bucket_count(), 0);
        assert_eq!(loaded.buckets().dim(), 6);
    }

    #[test]
    fn rejects_corrupted_images() {
        let (_, p) = fixture();
        let engine = Lemp::builder().build(&p);
        let mut buf = Vec::new();
        engine.write_to(&mut buf).unwrap();

        // bad magic
        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(Lemp::read_from(&bad[..]), Err(PersistError::Format(_))));

        // unknown variant tag
        let mut bad = buf.clone();
        bad[8] = 200;
        let err = Lemp::read_from(&bad[..]).unwrap_err();
        assert!(err.to_string().contains("variant tag"));

        // truncation at every structural boundary
        for cut in [4usize, 9, 40, 64, buf.len() - 1] {
            let bad = &buf[..cut.min(buf.len() - 1)];
            assert!(
                matches!(Lemp::read_from(bad), Err(PersistError::Format(_))),
                "truncation at {cut} not detected"
            );
        }

        // trailing garbage
        let mut bad = buf.clone();
        bad.push(7);
        let err = Lemp::read_from(&bad[..]).unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn quantized_roundtrip_restores_codebooks_without_retraining() {
        let (q, p) = fixture();
        let mut original =
            Lemp::builder().variant(LempVariant::LI).sample_size(7).quantize(8).build(&p);
        original.warm(&q, crate::WarmGoal::TopK(3)); // trains codebooks
        assert!(
            original.buckets().buckets().iter().all(|b| b.indexes.quant.is_some()),
            "warm with quantize=8 must train every bucket"
        );
        let mut buf = Vec::new();
        original.write_to(&mut buf).unwrap();
        assert_eq!(&buf[..8], b"LEMPENG2");
        let loaded = Lemp::read_from(&buf[..]).unwrap();
        assert_eq!(loaded.config().quantize_bits, 8);
        for (a, b) in loaded.buckets().buckets().iter().zip(original.buckets().buckets()) {
            assert_eq!(a.indexes.quant, b.indexes.quant, "codebooks/codes/eps must round-trip");
        }
        assert!(loaded.memory_usage().quantized_bytes > 0);
    }

    #[test]
    fn quantization_off_keeps_the_legacy_magic() {
        let (_, p) = fixture();
        let engine = Lemp::builder().build(&p);
        let mut buf = Vec::new();
        engine.write_to(&mut buf).unwrap();
        assert_eq!(&buf[..8], b"LEMPENG1");
        assert_eq!(Lemp::read_from(&buf[..]).unwrap().config().quantize_bits, 0);
    }

    #[test]
    fn quantized_section_rejects_corruption() {
        let (q, p) = fixture();
        let mut engine = Lemp::builder().sample_size(5).quantize(8).build(&p);
        engine.warm(&q, crate::WarmGoal::Above(1.0));
        let mut buf = Vec::new();
        engine.write_to(&mut buf).unwrap();

        // Truncation anywhere inside the quantized section.
        let legacy_len = {
            let mut legacy = Vec::new();
            Lemp::builder().build(&p).write_to(&mut legacy).unwrap();
            legacy.len()
        };
        assert!(buf.len() > legacy_len, "quantized image must carry extra bytes");
        for cut in [legacy_len, legacy_len + 1, legacy_len + 9, buf.len() - 1] {
            assert!(
                matches!(Lemp::read_from(&buf[..cut]), Err(PersistError::Format(_))),
                "quant-section truncation at {cut} not detected"
            );
        }

        // An out-of-range quantize_bits word (the section's first byte).
        let mut bad = buf.clone();
        bad[legacy_len] = 99;
        let err = Lemp::read_from(&bad[..]).unwrap_err();
        assert!(err.to_string().contains("1..=16"), "unexpected error: {err}");

        // Bit-flip a code byte to an out-of-range index: the *last* byte
        // of the image is a code (codes close each bucket's record).
        let mut bad = buf.clone();
        *bad.last_mut().unwrap() = u8::MAX;
        let err = Lemp::read_from(&bad[..]).unwrap_err();
        assert!(err.to_string().contains("≥ k"), "unexpected error: {err}");

        // Tampering a codebook double keeps the image loadable (any finite
        // value is a legal centroid) but the recomputed eps still covers
        // the damage, so answers stay exact.
        let mut bent = buf.clone();
        let cb_at = legacy_len + 1 + 2 + 16; // flag, bits, sub_dim, k of bucket 0
        bent[cb_at..cb_at + 8].copy_from_slice(&7.5f64.to_le_bytes());
        let mut loaded = Lemp::read_from(&bent[..]).unwrap();
        loaded.warm(&q, crate::WarmGoal::Above(1.0));
        let mut fresh = Lemp::builder().sample_size(5).build(&p);
        let a = loaded.above_theta(&q, 1.2);
        let b = fresh.above_theta(&q, 1.2);
        assert_eq!(canonical_pairs(&a.entries), canonical_pairs(&b.entries));
    }

    #[test]
    fn rejects_tampered_orderings() {
        let p = VectorStore::from_rows(&[
            vec![4.0, 0.0],
            vec![3.0, 0.0],
            vec![2.0, 0.0],
            vec![1.0, 0.0],
        ])
        .unwrap();
        let policy = crate::BucketPolicy { min_bucket: 2, length_ratio: 0.9, ..Default::default() };
        let engine = Lemp::builder().policy(policy).build(&p);
        assert!(engine.buckets().bucket_count() >= 2, "fixture needs two buckets");
        let mut buf = Vec::new();
        engine.write_to(&mut buf).unwrap();
        // Swap the first two f64 rows of the first bucket's data section to
        // break the within-bucket ordering: locate it right after the first
        // bucket's header + ids. Header: 8 magic + 1 tag + 5*8 cfg words +
        // 8 eps/base... simpler: decode offsets structurally.
        let ids_start = 8 + 1 + 8 + 8 + 8 + 8 + 8 + 8 + 8 + 8 + 8 + 8; // magic..bucket0 count
        let count0 = u64::from_le_bytes(buf[ids_start - 8..ids_start].try_into().unwrap()) as usize;
        let data_start = ids_start + 4 * count0;
        let row = 2 * 8; // dim 2 rows
        let (a, b) = (data_start, data_start + row);
        let tmp: Vec<u8> = buf[a..a + row].to_vec();
        buf.copy_within(b..b + row, a);
        buf[b..b + row].copy_from_slice(&tmp);
        let err = Lemp::read_from(&buf[..]).unwrap_err();
        assert!(
            err.to_string().contains("sorted") || err.to_string().contains("overlaps"),
            "tampered ordering accepted: {err}"
        );
    }
}
