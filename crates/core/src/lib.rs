//! LEMP: fast retrieval of **L**arge **E**ntries in a **M**atrix **P**roduct.
//!
//! From-scratch reproduction of Teflioudi, Gemulla, Mykytiuk (SIGMOD 2015).
//! Given two tall-and-skinny factor matrices — a *query* side `Q` and a
//! *probe* side `P`, stored as one vector per row — LEMP retrieves the large
//! entries of `QᵀP` without materializing the product:
//!
//! * **Above-θ** (Problem 1): all `(i, j)` with `qᵢᵀpⱼ ≥ θ`.
//! * **Row-Top-k** (Problem 2): for every query, the `k` probes with the
//!   largest inner products.
//!
//! The algorithm decomposes every vector into length × direction, groups
//! probes into cache-resident buckets of similar length, prunes whole
//! buckets via the local threshold `θ_b(q) = θ/(‖q‖·l_b)`, and solves a
//! small cosine-similarity problem per surviving bucket with a per-bucket,
//! sample-tuned choice of method: LENGTH, COORD, INCR, or adapters around
//! TA, cover trees, L2AP and BayesLSH-Lite (see [`LempVariant`]).
//!
//! # Quickstart
//!
//! ```
//! use lemp_core::{Lemp, LempVariant};
//! use lemp_linalg::VectorStore;
//!
//! // 3 queries and 4 probes in 2 dimensions (rows = vectors).
//! let queries = VectorStore::from_rows(&[
//!     vec![3.2, -0.4],
//!     vec![0.0, 1.8],
//!     vec![1.0, 1.0],
//! ]).unwrap();
//! let probes = VectorStore::from_rows(&[
//!     vec![1.6, 0.6],
//!     vec![0.7, 2.7],
//!     vec![1.0, 2.8],
//!     vec![0.4, 2.2],
//! ]).unwrap();
//!
//! let mut engine = Lemp::builder().variant(LempVariant::LI).build(&probes);
//! let out = engine.above_theta(&queries, 3.8);
//! assert!(out.entries.iter().all(|e| e.value >= 3.8));
//!
//! let top = engine.row_top_k(&queries, 2);
//! assert_eq!(top.lists.len(), 3);
//! assert_eq!(top.lists[0].len(), 2);
//! ```
//!
//! # The unified query surface
//!
//! Beyond the convenience methods above, every retrieval problem flows
//! through one planned pipeline (see [`plan`]): a [`QueryRequest`]
//! compiles via [`Engine::plan`] into a [`QueryPlan`] (per-bucket
//! algorithm assignment from the tuned `t_b`/`φ_b`) and executes through
//! [`Engine::execute`] with a caller-owned [`Scratch`]. [`Lemp`],
//! [`DynamicLemp`] and [`ShardedLemp`] all implement the dyn-compatible
//! [`Engine`] trait, so services hold `Box<dyn Engine>` handles and never
//! dispatch on the backend.

#![warn(missing_docs)]

pub mod adaptive;
pub mod algos;
pub mod bounds;
pub mod bucket;
pub mod dynamic;
pub mod exec;
pub mod index;
pub mod persist;
pub mod plan;
pub mod quant;
pub mod query;
pub mod runner;
pub mod scratch;
pub mod shard;
pub mod stream;
pub mod telemetry;
pub mod tuner;
pub mod variant;

pub use adaptive::{AdaptiveConfig, AdaptiveReport, AdaptiveSelector, BanditPolicy};
pub use algos::MethodScratch;
pub use bucket::{Bucket, BucketPolicy, MemoryUsage, ProbeBuckets};
pub use dynamic::DynamicLemp;
pub use exec::RunConfig;
pub use lemp_baselines::types::{Entry, RetrievalCounters, TopKLists};
pub use persist::PersistError;
pub use plan::{
    BucketAlgo, Engine, ExecOptions, PlanSegment, Planner, QueryKind, QueryPlan, QueryRequest,
    QueryResponse, QueryRows, Scratch,
};
pub use quant::{QuantCodes, QuantizedBucket};
pub use runner::{AboveThetaOutput, MethodMix, RunStats, TopKOutput};
pub use shard::{ShardPolicy, ShardScratch, ShardedLemp};
pub use stream::column_top_k;
pub use telemetry::{NullSink, TelemetrySink};
pub use variant::{LempVariant, TunedParams};

use algos::blsh_bucket::MinMatchTable;
use lemp_linalg::VectorStore;

/// What a [`Lemp::warm`] (or [`DynamicLemp::warm`]) call tunes for. The
/// goal only steers the Sec. 4.4 tuner's per-bucket `t_b`/`φ_b` choice —
/// a warmed engine answers *both* problems at any `θ`/`k`, with identical
/// results; only the time spent can differ from a freshly tuned run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WarmGoal {
    /// Tune for Row-Top-k at the given `k`.
    TopK(usize),
    /// Tune for Above-θ at the given threshold.
    Above(f64),
}

/// What a warm-up did: index construction and tuning effort.
#[derive(Debug, Clone, Copy, Default)]
pub struct WarmReport {
    /// Indexes built during the warm-up.
    pub indexes_built: u64,
    /// Nanoseconds spent building indexes.
    pub build_ns: u64,
    /// Nanoseconds spent in the Sec. 4.4 tuner.
    pub tune_ns: u64,
}

/// Materialized per-run state of a warmed engine: the tuned per-bucket
/// parameters plus the precomputed BLSH minimum-match table. Once this
/// exists (and every bucket's indexes are built), the query drivers never
/// need `&mut` access again.
#[derive(Debug, Clone)]
pub(crate) struct WarmState {
    pub(crate) per_bucket: Vec<TunedParams>,
    pub(crate) blsh_table: Option<MinMatchTable>,
}

impl WarmState {
    /// Tunes `buckets` on `sample` for `goal` and force-builds every
    /// bucket's indexes — the shared engine-warming step behind
    /// [`Lemp::warm`] and [`DynamicLemp::warm`].
    pub(crate) fn build(
        buckets: &mut ProbeBuckets,
        config: &RunConfig,
        sample: &VectorStore,
        goal: WarmGoal,
    ) -> (WarmState, WarmReport) {
        assert_eq!(sample.dim(), buckets.dim(), "query/probe dimensionality mismatch");
        let batch = query::QueryBatch::build(sample);
        let mut scratch = MethodScratch::new(runner::max_bucket_len(buckets));
        let mut clock = exec::BuildClock::default();
        let tune_goal = match goal {
            WarmGoal::TopK(k) => tuner::TuneGoal::TopK(k),
            WarmGoal::Above(theta) => tuner::TuneGoal::Above(theta),
        };
        let tuning = tuner::tune(buckets, &batch, &tune_goal, config, &mut scratch, &mut clock);
        runner::prebuild_all(buckets, config, &tuning.per_bucket, &mut clock);
        let state = WarmState {
            per_bucket: tuning.per_bucket,
            blsh_table: runner::make_blsh_table(config),
        };
        let report =
            WarmReport { indexes_built: clock.built, build_ns: clock.ns, tune_ns: tuning.tune_ns };
        (state, report)
    }
}

/// **|Above-θ|** on top of any Above-θ runner: one pass as-is, one pass
/// over sign-flipped queries (exact negations), results merged with their
/// true signed values. Shared by the static/dynamic, lazy/shared variants.
pub(crate) fn abs_above_theta_via(
    queries: &VectorStore,
    theta: f64,
    mut run: impl FnMut(&VectorStore) -> AboveThetaOutput,
) -> AboveThetaOutput {
    assert!(theta > 0.0, "abs_above_theta requires theta > 0, got {theta}");
    let mut out = run(queries);
    let negated = queries.negated();
    let neg = run(&negated);
    out.entries.extend(neg.entries.iter().map(|e| Entry {
        query: e.query,
        probe: e.probe,
        value: -e.value,
    }));
    out.stats.merge(&neg.stats);
    out.stats.counters.queries = queries.len() as u64;
    out.stats.counters.results = out.entries.len() as u64;
    out
}

/// The LEMP retrieval engine: preprocessed probe buckets plus run options.
///
/// Construction performs the (cheap) bucketization; per-bucket indexes are
/// built lazily inside the first query run that needs them. The engine is
/// reusable across thresholds, `k` values and query sets — exactly how the
/// paper's evaluation sweeps its workloads.
///
/// # Sharing the engine across threads
///
/// Every query entry point comes in two flavors. The `&mut self`
/// convenience methods ([`Lemp::above_theta`], [`Lemp::row_top_k`], …)
/// tune and build indexes lazily inside the call — ideal for one-shot
/// batch runs. A long-lived service instead calls [`Lemp::warm`] once to
/// force tuning and index materialization, after which the `*_shared`
/// methods ([`Lemp::above_theta_shared`], [`Lemp::row_top_k_shared`], …)
/// answer queries through `&self` with a caller-owned [`MethodScratch`],
/// so one engine serves any number of threads concurrently:
///
/// ```
/// use lemp_core::{Lemp, WarmGoal};
/// use lemp_linalg::VectorStore;
///
/// let probes = VectorStore::from_rows(&[vec![1.0, 0.0], vec![0.0, 2.0]]).unwrap();
/// let queries = VectorStore::from_rows(&[vec![3.0, 1.0]]).unwrap();
/// let mut engine = Lemp::new(&probes);
/// engine.warm(&queries, WarmGoal::TopK(1));
/// std::thread::scope(|s| {
///     for _ in 0..4 {
///         // shared borrows only — no locking needed
///         let (engine, queries) = (&engine, &queries);
///         s.spawn(move || {
///             let mut scratch = engine.make_scratch();
///             let top = engine.row_top_k_shared(queries, 1, &mut scratch);
///             assert_eq!(top.lists[0][0].id, 0);
///         });
///     }
/// });
/// ```
#[derive(Debug)]
pub struct Lemp {
    buckets: ProbeBuckets,
    config: RunConfig,
    warm: Option<WarmState>,
}

/// Builder for [`Lemp`].
#[derive(Debug, Clone, Default)]
pub struct LempBuilder {
    policy: BucketPolicy,
    config: RunConfig,
}

impl LempBuilder {
    /// Selects the bucket method(s); default [`LempVariant::LI`], the
    /// paper's overall winner.
    pub fn variant(mut self, variant: LempVariant) -> Self {
        self.config.variant = variant;
        self
    }

    /// Overrides the bucketization policy (length ratio, min size, cache
    /// budget).
    pub fn policy(mut self, policy: BucketPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Number of queries the tuner samples (Sec. 4.4; default 50).
    pub fn sample_size(mut self, sample: usize) -> Self {
        self.config.sample_size = sample;
        self
    }

    /// Retrieval worker threads (default 1 — the paper's setting; queries
    /// are embarrassingly parallel, so >1 is a faithful extension).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads.max(1);
        self
    }

    /// Cover-tree base for `LEMP-Tree` (default 1.3).
    pub fn tree_base(mut self, base: f64) -> Self {
        self.config.tree_base = base;
        self
    }

    /// BLSH signature width and ε for `LEMP-BLSH` (defaults 32 bits, 0.03).
    pub fn blsh(mut self, bits: usize, eps: f64) -> Self {
        self.config.blsh_bits = bits;
        self.config.blsh_eps = eps;
        self
    }

    /// Enables quantized probe buckets with `bits`-wide PQ codes
    /// (1..=16; 0 disables, the default). When enabled, [`Lemp::warm`]
    /// trains per-bucket subspace codebooks and the tuner may route bucket
    /// scans through the LUT kernel; every candidate is re-verified against
    /// the full-precision vectors, so results stay exact.
    ///
    /// # Panics
    /// If `bits > 16` — use the CLI/service layers for non-panicking
    /// validation of untrusted input.
    pub fn quantize(mut self, bits: u8) -> Self {
        assert!(bits <= quant::MAX_QUANT_BITS, "quantize bits must be ≤ 16, got {bits}");
        self.config.quantize_bits = bits;
        self
    }

    /// Forces the quantized LUT scan on every bucket with trained
    /// codebooks instead of letting the tuner time LUT vs exact (see
    /// [`RunConfig::quantize_force`]). No effect without
    /// [`quantize`](Self::quantize).
    pub fn quantize_force(mut self, force: bool) -> Self {
        self.config.quantize_force = force;
        self
    }

    /// Builds the engine over the probe vectors (one vector per row).
    pub fn build(self, probes: &VectorStore) -> Lemp {
        Lemp { buckets: ProbeBuckets::build(probes, &self.policy), config: self.config, warm: None }
    }
}

impl Lemp {
    /// Builder with the paper's default configuration.
    pub fn builder() -> LempBuilder {
        LempBuilder::default()
    }

    /// Engine over `probes` with all defaults (LEMP-LI).
    pub fn new(probes: &VectorStore) -> Self {
        Self::builder().build(probes)
    }

    /// The preprocessed probe buckets (inspection / tests).
    pub fn buckets(&self) -> &ProbeBuckets {
        &self.buckets
    }

    /// Mutable bucket access for in-crate structure surgery (the sharded
    /// engine relabels bucket ids to global probe ids after building each
    /// shard over its slice of the probe matrix).
    pub(crate) fn buckets_mut(&mut self) -> &mut ProbeBuckets {
        &mut self.buckets
    }

    /// The active run configuration.
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// Probe-side memory residency: full-precision bytes vs quantized
    /// bytes across all buckets (the quantized side is 0 until codebooks
    /// are trained — i.e. before a warm-up with quantization enabled).
    pub fn memory_usage(&self) -> MemoryUsage {
        self.buckets.memory_usage()
    }

    /// Overrides the retrieval worker-thread count of an existing engine
    /// (services load persisted engines and pick their own threading).
    pub fn set_threads(&mut self, threads: usize) {
        self.config.threads = threads.max(1);
    }

    /// **Warms the engine for shared (`&self`) querying**: runs the
    /// Sec. 4.4 tuner on `sample` for `goal` and force-builds every
    /// bucket's indexes (the variant's method at the largest reachable
    /// local threshold, plus both sorted-list layouts for the adaptive arm
    /// menu). Afterwards the `*_shared` methods answer queries without any
    /// mutable access, so one engine can serve many threads concurrently.
    ///
    /// Warming again (e.g. with a different goal) re-tunes but reuses all
    /// existing indexes. After a warm-up the `&mut` convenience wrappers
    /// become thin shims over the shared path.
    ///
    /// # Panics
    /// If the sample dimensionality differs from the probe dimensionality.
    pub fn warm(&mut self, sample: &VectorStore, goal: WarmGoal) -> WarmReport {
        let (state, report) = WarmState::build(&mut self.buckets, &self.config, sample, goal);
        self.warm = Some(state);
        report
    }

    /// Whether [`Lemp::warm`] has run (the `*_shared` methods are usable).
    pub fn is_warm(&self) -> bool {
        self.warm.is_some()
    }

    /// A [`MethodScratch`] sized for this engine's largest bucket, for use
    /// with the `*_shared` methods (one per querying thread).
    pub fn make_scratch(&self) -> MethodScratch {
        MethodScratch::new(runner::max_bucket_len(&self.buckets))
    }

    pub(crate) fn warm_state(&self, caller: &str) -> &WarmState {
        self.warm
            .as_ref()
            .unwrap_or_else(|| panic!("{caller} requires a warmed engine: call Lemp::warm first"))
    }

    /// The unified execution core behind every `*_shared` entry point:
    /// builds the prepared view from the warm state and hands the request
    /// to [`plan::run_request_single`] — one code path for all five
    /// methods (plus their adaptive/chunked variants).
    fn shared_request(
        &self,
        caller: &str,
        request: &QueryRequest,
        queries: &VectorStore,
        scratch: &mut MethodScratch,
        selector: Option<&mut AdaptiveSelector>,
    ) -> QueryResponse {
        let warm = self.warm_state(caller);
        let parts = plan::SinglePrepared {
            buckets: &self.buckets,
            config: &self.config,
            per_bucket: &warm.per_bucket,
            blsh: warm.blsh_table.as_ref(),
        };
        plan::run_request_single(&parts, request, queries, scratch, selector)
    }

    /// [`Lemp::above_theta`] through `&self` over a warmed engine, with a
    /// caller-owned scratch — safe to call from many threads concurrently.
    ///
    /// # Panics
    /// If the engine is not warmed ([`Lemp::warm`]) or on query/probe
    /// dimensionality mismatch.
    pub fn above_theta_shared(
        &self,
        queries: &VectorStore,
        theta: f64,
        scratch: &mut MethodScratch,
    ) -> AboveThetaOutput {
        self.shared_request(
            "above_theta_shared",
            &QueryRequest::above_theta(theta),
            queries,
            scratch,
            None,
        )
        .into_above()
    }

    /// [`Lemp::row_top_k`] through `&self` over a warmed engine, with a
    /// caller-owned scratch — safe to call from many threads concurrently.
    ///
    /// # Panics
    /// If the engine is not warmed ([`Lemp::warm`]) or on query/probe
    /// dimensionality mismatch.
    pub fn row_top_k_shared(
        &self,
        queries: &VectorStore,
        k: usize,
        scratch: &mut MethodScratch,
    ) -> TopKOutput {
        self.row_top_k_with_floor_shared(queries, k, f64::NEG_INFINITY, scratch)
    }

    /// [`Lemp::row_top_k_with_floor`] through `&self` over a warmed engine.
    ///
    /// # Panics
    /// If the engine is not warmed ([`Lemp::warm`]) or on query/probe
    /// dimensionality mismatch.
    pub fn row_top_k_with_floor_shared(
        &self,
        queries: &VectorStore,
        k: usize,
        floor: f64,
        scratch: &mut MethodScratch,
    ) -> TopKOutput {
        self.shared_request(
            "row_top_k_with_floor_shared",
            &QueryRequest::top_k_with_floor(k, floor),
            queries,
            scratch,
            None,
        )
        .into_top_k()
    }

    /// [`Lemp::abs_above_theta`] through `&self` over a warmed engine.
    ///
    /// # Panics
    /// If `theta ≤ 0`, the engine is not warmed, or on dimensionality
    /// mismatch.
    pub fn abs_above_theta_shared(
        &self,
        queries: &VectorStore,
        theta: f64,
        scratch: &mut MethodScratch,
    ) -> AboveThetaOutput {
        self.shared_request(
            "abs_above_theta_shared",
            &QueryRequest::abs_above_theta(theta),
            queries,
            scratch,
            None,
        )
        .into_above()
    }

    /// [`Lemp::above_theta_adaptive_with`] through `&self` over a warmed
    /// engine (the selector carries the learning state; the engine is only
    /// read). Concurrent callers need distinct selectors or external
    /// synchronization of one.
    ///
    /// # Panics
    /// If the engine is not warmed, the selector was sized for a different
    /// bucketization, or on dimensionality mismatch.
    pub fn above_theta_adaptive_shared(
        &self,
        queries: &VectorStore,
        theta: f64,
        selector: &mut AdaptiveSelector,
        scratch: &mut MethodScratch,
    ) -> AboveThetaOutput {
        self.shared_request(
            "above_theta_adaptive_shared",
            &QueryRequest::above_theta(theta),
            queries,
            scratch,
            Some(selector),
        )
        .into_above()
    }

    /// [`Lemp::row_top_k_adaptive_with`] through `&self` over a warmed
    /// engine.
    ///
    /// # Panics
    /// Same conditions as [`Lemp::above_theta_adaptive_shared`].
    pub fn row_top_k_adaptive_shared(
        &self,
        queries: &VectorStore,
        k: usize,
        selector: &mut AdaptiveSelector,
        scratch: &mut MethodScratch,
    ) -> TopKOutput {
        self.shared_request(
            "row_top_k_adaptive_shared",
            &QueryRequest::top_k(k),
            queries,
            scratch,
            Some(selector),
        )
        .into_top_k()
    }

    /// Solves **Above-θ**: all entries of `QᵀP` that are ≥ `theta`.
    ///
    /// # Panics
    /// If the query dimensionality differs from the probe dimensionality.
    pub fn above_theta(&mut self, queries: &VectorStore, theta: f64) -> AboveThetaOutput {
        if self.warm.is_some() {
            let mut scratch = self.make_scratch();
            return self.above_theta_shared(queries, theta, &mut scratch);
        }
        runner::above_theta(&mut self.buckets, queries, theta, &self.config)
    }

    /// Solves **Row-Top-k**: for each query row, the `k` probes with the
    /// largest inner products (ties broken deterministically by probe id).
    ///
    /// # Panics
    /// If the query dimensionality differs from the probe dimensionality.
    pub fn row_top_k(&mut self, queries: &VectorStore, k: usize) -> TopKOutput {
        if self.warm.is_some() {
            let mut scratch = self.make_scratch();
            return self.row_top_k_shared(queries, k, &mut scratch);
        }
        runner::row_top_k(&mut self.buckets, queries, k, &self.config)
    }

    /// Solves **|Above-θ|**: all entries of `QᵀP` with `|qᵀp| ≥ theta`
    /// (`theta > 0`). The paper's open-information-extraction motivation
    /// asks for both directions: strongly positive entries are
    /// high-confidence facts, strongly negative ones are "unlikely facts"
    /// (Sec. 1). Implemented as two exact Above-θ passes — the second over
    /// sign-flipped queries, whose inner products are the exact negations —
    /// so the result is bit-exact, with entries carrying their true signed
    /// values.
    ///
    /// # Panics
    /// If `theta ≤ 0` (the two-sided problem is only meaningful above 0;
    /// Problem 1 in the paper makes the same assumption) or on query/probe
    /// dimensionality mismatch.
    pub fn abs_above_theta(&mut self, queries: &VectorStore, theta: f64) -> AboveThetaOutput {
        abs_above_theta_via(queries, theta, |q| self.above_theta(q, theta))
    }

    /// **Row-Top-k with a score floor**: for each query, the up-to-`k`
    /// probes with the largest inner products *among those with
    /// `qᵀp ≥ floor`* — the recommender-system cut-off ("top-k items, but
    /// only if actually relevant"). Unlike filtering the plain top-k
    /// afterwards, the floor feeds the driver's running threshold `θ′`
    /// from below, so high floors prune buckets instead of scanning them.
    /// `floor = f64::NEG_INFINITY` is exactly [`Lemp::row_top_k`].
    ///
    /// # Panics
    /// If the query dimensionality differs from the probe dimensionality.
    pub fn row_top_k_with_floor(
        &mut self,
        queries: &VectorStore,
        k: usize,
        floor: f64,
    ) -> TopKOutput {
        if self.warm.is_some() {
            let mut scratch = self.make_scratch();
            return self.row_top_k_with_floor_shared(queries, k, floor, &mut scratch);
        }
        runner::row_top_k_floor(&mut self.buckets, queries, k, floor, &self.config)
    }

    /// **Above-θ with online (bandit) algorithm selection** — the paper's
    /// Sec. 4.4 outlook ("some form of reinforcement learning") instead of
    /// the sample-based tuner. Results are identical to any exact variant;
    /// only the time spent differs. Returns the output plus a report of
    /// what each per-(bucket, θ_b-bin) bandit learned. Serial.
    ///
    /// # Panics
    /// If the query dimensionality differs from the probe dimensionality.
    pub fn above_theta_adaptive(
        &mut self,
        queries: &VectorStore,
        theta: f64,
        acfg: &AdaptiveConfig,
    ) -> (AboveThetaOutput, AdaptiveReport) {
        adaptive::above_theta_adaptive(&mut self.buckets, queries, theta, &self.config, acfg)
    }

    /// [`Lemp::above_theta_adaptive`] for Row-Top-k workloads.
    ///
    /// # Panics
    /// If the query dimensionality differs from the probe dimensionality.
    pub fn row_top_k_adaptive(
        &mut self,
        queries: &VectorStore,
        k: usize,
        acfg: &AdaptiveConfig,
    ) -> (TopKOutput, AdaptiveReport) {
        adaptive::row_top_k_adaptive(&mut self.buckets, queries, k, &self.config, acfg)
    }

    /// A fresh [`AdaptiveSelector`] sized for this engine's bucketization,
    /// for use with the warm-state drivers
    /// ([`Lemp::above_theta_adaptive_with`] /
    /// [`Lemp::row_top_k_adaptive_with`]).
    pub fn adaptive_selector(&self, acfg: &AdaptiveConfig) -> AdaptiveSelector {
        AdaptiveSelector::new(*acfg, self.buckets.bucket_count(), self.buckets.dim())
    }

    /// [`Lemp::above_theta_adaptive`] with **caller-owned learning state**:
    /// the selector keeps its arm statistics across calls, so a long-lived
    /// service pays the exploration warm-up once and exploits thereafter.
    /// Obtain the selector from [`Lemp::adaptive_selector`]; inspect what it
    /// learned at any time via [`AdaptiveSelector::report`].
    ///
    /// # Panics
    /// On dimensionality mismatch, or if the selector was sized for a
    /// different bucketization (e.g. another engine).
    pub fn above_theta_adaptive_with(
        &mut self,
        queries: &VectorStore,
        theta: f64,
        selector: &mut AdaptiveSelector,
    ) -> AboveThetaOutput {
        if self.warm.is_some() {
            let mut scratch = self.make_scratch();
            return self.above_theta_adaptive_shared(queries, theta, selector, &mut scratch);
        }
        adaptive::above_theta_adaptive_with(
            &mut self.buckets,
            queries,
            theta,
            &self.config,
            selector,
        )
    }

    /// [`Lemp::above_theta_adaptive_with`] for Row-Top-k workloads.
    ///
    /// # Panics
    /// On dimensionality mismatch, or if the selector was sized for a
    /// different bucketization.
    pub fn row_top_k_adaptive_with(
        &mut self,
        queries: &VectorStore,
        k: usize,
        selector: &mut AdaptiveSelector,
    ) -> TopKOutput {
        if self.warm.is_some() {
            let mut scratch = self.make_scratch();
            return self.row_top_k_adaptive_shared(queries, k, selector, &mut scratch);
        }
        adaptive::row_top_k_adaptive_with(&mut self.buckets, queries, k, &self.config, selector)
    }

    /// Runs only the Sec. 4.4 sample-based tuner for an Above-θ workload
    /// and returns the chosen per-bucket parameters (aligned with
    /// [`Lemp::buckets`]), without executing the retrieval. Intended for
    /// inspection and ablation tooling.
    ///
    /// # Panics
    /// If the query dimensionality differs from the probe dimensionality.
    pub fn tune_above(&mut self, queries: &VectorStore, theta: f64) -> Vec<TunedParams> {
        self.tune(queries, tuner::TuneGoal::Above(theta))
    }

    /// [`Lemp::tune_above`] for a Row-Top-k workload.
    ///
    /// # Panics
    /// If the query dimensionality differs from the probe dimensionality.
    pub fn tune_top_k(&mut self, queries: &VectorStore, k: usize) -> Vec<TunedParams> {
        self.tune(queries, tuner::TuneGoal::TopK(k))
    }

    /// Reassembles an engine from preprocessed parts (persistence).
    pub(crate) fn from_parts(buckets: ProbeBuckets, config: RunConfig) -> Self {
        Self { buckets, config, warm: None }
    }

    /// Decomposes the engine into its preprocessed parts
    /// ([`DynamicLemp::from_engine`] reuses a loaded static engine).
    pub(crate) fn into_parts(self) -> (ProbeBuckets, RunConfig) {
        (self.buckets, self.config)
    }

    fn tune(&mut self, queries: &VectorStore, goal: tuner::TuneGoal) -> Vec<TunedParams> {
        assert_eq!(queries.dim(), self.buckets.dim(), "query/probe dimensionality mismatch");
        let batch = query::QueryBatch::build(queries);
        let cap = self.buckets.buckets().iter().map(Bucket::len).max().unwrap_or(0);
        let mut scratch = algos::MethodScratch::new(cap);
        let mut clock = exec::BuildClock::default();
        tuner::tune(&mut self.buckets, &batch, &goal, &self.config, &mut scratch, &mut clock)
            .per_bucket
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemp_baselines::types::{canonical_pairs, topk_equivalent};
    use lemp_baselines::Naive;
    use lemp_data::synthetic::GeneratorConfig;

    fn data(m: usize, n: usize, cov: f64, seed: u64) -> (VectorStore, VectorStore) {
        let q = GeneratorConfig::gaussian(m, 10, cov).generate(seed);
        let p = GeneratorConfig::gaussian(n, 10, cov).generate(seed + 1);
        (q, p)
    }

    #[test]
    fn all_exact_variants_match_naive_above_theta() {
        let (q, p) = data(60, 400, 1.0, 100);
        let (expect, _) = Naive.above_theta(&q, &p, 1.2);
        assert!(!expect.is_empty(), "fixture must produce results");
        for variant in LempVariant::all() {
            if variant.is_approximate() {
                continue;
            }
            let mut engine = Lemp::builder().variant(variant).sample_size(8).build(&p);
            let out = engine.above_theta(&q, 1.2);
            assert_eq!(
                canonical_pairs(&out.entries),
                canonical_pairs(&expect),
                "{} diverges from Naive",
                variant.name()
            );
        }
    }

    #[test]
    fn all_exact_variants_match_naive_top_k() {
        let (q, p) = data(40, 300, 0.8, 200);
        for k in [1usize, 5] {
            let (expect, _) = Naive.row_top_k(&q, &p, k);
            for variant in LempVariant::all() {
                if variant.is_approximate() {
                    continue;
                }
                let mut engine = Lemp::builder().variant(variant).sample_size(8).build(&p);
                let out = engine.row_top_k(&q, k);
                assert!(
                    topk_equivalent(&out.lists, &expect, 1e-9),
                    "{} diverges from Naive at k={k}",
                    variant.name()
                );
            }
        }
    }

    #[test]
    fn blsh_recall_is_high() {
        let (q, p) = data(50, 500, 1.0, 300);
        let theta = 1.0;
        let (expect, _) = Naive.above_theta(&q, &p, theta);
        assert!(!expect.is_empty());
        let mut engine = Lemp::builder().variant(LempVariant::Blsh).build(&p);
        let out = engine.above_theta(&q, theta);
        let got = canonical_pairs(&out.entries);
        let truth = canonical_pairs(&expect);
        let found = truth.iter().filter(|pair| got.binary_search(pair).is_ok()).count();
        let recall = found as f64 / truth.len() as f64;
        assert!(recall >= 0.9, "BLSH recall {recall} < 0.9 ({} of {})", found, truth.len());
        // no false positives: every reported entry truly qualifies
        for e in &out.entries {
            assert!(e.value >= theta);
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let (q, p) = data(50, 300, 0.8, 400);
        let mut serial = Lemp::builder().variant(LempVariant::LI).sample_size(8).build(&p);
        let mut parallel =
            Lemp::builder().variant(LempVariant::LI).sample_size(8).threads(4).build(&p);
        let a = serial.above_theta(&q, 1.0);
        let b = parallel.above_theta(&q, 1.0);
        assert_eq!(canonical_pairs(&a.entries), canonical_pairs(&b.entries));
        let ta = serial.row_top_k(&q, 3);
        let tb = parallel.row_top_k(&q, 3);
        assert!(topk_equivalent(&ta.lists, &tb.lists, 1e-9));
    }

    #[test]
    fn stats_are_populated() {
        let (q, p) = data(30, 200, 1.5, 500);
        let mut engine = Lemp::builder().variant(LempVariant::LI).sample_size(5).build(&p);
        let out = engine.above_theta(&q, 0.8);
        let s = &out.stats;
        assert!(s.bucket_count > 0);
        assert_eq!(s.counters.queries, 30);
        assert!(s.counters.retrieval_ns > 0);
        assert!(s.counters.candidates >= out.entries.len() as u64);
        // candidate pruning: far fewer than the full product
        assert!(s.counters.candidates < (q.len() * p.len()) as u64);
    }

    #[test]
    fn method_mix_reflects_the_variant() {
        let (q, p) = data(40, 300, 1.0, 900);
        // Pure LENGTH: every processed pair is a LENGTH pair.
        let mut engine = Lemp::builder().variant(LempVariant::L).sample_size(5).build(&p);
        let out = engine.above_theta(&q, 0.8);
        let mix = &out.stats.method_mix;
        assert!(mix.total() > 0);
        assert_eq!(mix.total(), mix.length);
        assert!((mix.length_share() - 1.0).abs() < 1e-12);
        // Hybrid LI: only LENGTH, COORD or INCR pairs ever appear.
        let mut engine = Lemp::builder().variant(LempVariant::LI).sample_size(5).build(&p);
        let out = engine.above_theta(&q, 0.8);
        let mix = &out.stats.method_mix;
        assert!(mix.total() > 0);
        assert_eq!(mix.ta + mix.tree + mix.l2ap + mix.blsh, 0);
        // TA variant: all pairs served by the TA adapter.
        let mut engine = Lemp::builder().variant(LempVariant::Ta).sample_size(5).build(&p);
        let out = engine.row_top_k(&q, 3);
        let mix = &out.stats.method_mix;
        assert!(mix.total() > 0);
        assert_eq!(mix.total(), mix.ta);
    }

    #[test]
    fn engine_is_reusable_across_thresholds_and_k() {
        let (q, p) = data(20, 150, 1.0, 600);
        let mut engine = Lemp::builder().sample_size(5).build(&p);
        let hi = engine.above_theta(&q, 2.0);
        let lo = engine.above_theta(&q, 0.5);
        assert!(lo.entries.len() >= hi.entries.len());
        let t1 = engine.row_top_k(&q, 1);
        let t5 = engine.row_top_k(&q, 5);
        assert!(t5.stats.counters.results >= t1.stats.counters.results);
    }

    #[test]
    fn empty_queries_and_probes() {
        let (q, p) = data(10, 50, 0.5, 700);
        let empty = VectorStore::empty(10).unwrap();
        let mut engine = Lemp::new(&p);
        let out = engine.above_theta(&empty, 0.5);
        assert!(out.entries.is_empty());
        let out = engine.row_top_k(&empty, 3);
        assert!(out.lists.is_empty());

        let mut engine = Lemp::new(&empty);
        let out = engine.above_theta(&q, 0.5);
        assert!(out.entries.is_empty());
        let out = engine.row_top_k(&q, 3);
        assert_eq!(out.lists.len(), 10);
        assert!(out.lists.iter().all(Vec::is_empty));
    }

    #[test]
    fn k_zero_and_k_exceeding_n() {
        let (q, p) = data(15, 40, 0.5, 800);
        let mut engine = Lemp::new(&p);
        let out = engine.row_top_k(&q, 0);
        assert!(out.lists.iter().all(Vec::is_empty));
        let out = engine.row_top_k(&q, 100);
        for l in &out.lists {
            assert_eq!(l.len(), 40);
        }
    }

    #[test]
    fn abs_above_theta_matches_two_sided_ground_truth() {
        let (q, p) = data(40, 250, 1.0, 1000);
        let theta = 1.0;
        // Ground truth: scan the full product and keep |value| ≥ θ.
        let mut expect: Vec<(u32, u32)> = Vec::new();
        for i in 0..q.len() {
            for j in 0..p.len() {
                let v = q.dot_between(i, &p, j);
                if v.abs() >= theta {
                    expect.push((i as u32, j as u32));
                }
            }
        }
        expect.sort_unstable();
        let mut engine = Lemp::builder().sample_size(8).build(&p);
        let out = engine.abs_above_theta(&q, theta);
        assert_eq!(canonical_pairs(&out.entries), expect);
        // Both signs must actually occur for the fixture to mean anything.
        assert!(out.entries.iter().any(|e| e.value >= theta));
        assert!(out.entries.iter().any(|e| e.value <= -theta));
        // Values are the true signed inner products, bit-exact.
        for e in &out.entries {
            let v = q.dot_between(e.query as usize, &p, e.probe as usize);
            assert_eq!(v.to_bits(), e.value.to_bits());
        }
        assert_eq!(out.stats.counters.queries, 40);
        assert_eq!(out.stats.counters.results, out.entries.len() as u64);
    }

    #[test]
    #[should_panic(expected = "requires theta > 0")]
    fn abs_above_theta_rejects_nonpositive_theta() {
        let (q, p) = data(5, 20, 0.5, 1100);
        let mut engine = Lemp::new(&p);
        let _ = engine.abs_above_theta(&q, 0.0);
    }

    #[test]
    fn top_k_with_floor_matches_filtered_ground_truth() {
        let (q, p) = data(30, 200, 0.9, 1200);
        let k = 5;
        // Ground truth: full product per query, filter by floor, take k.
        let floor = {
            // A floor that bites: the median of the per-query 3rd-best
            // values, so some lists come back short and some full. Nudged
            // off the exact value so the comparison is not sensitive to the
            // one-ulp gap between `dot(q, p)` and `dot(q̄, p)·‖q‖` (value
            // spacing in this fixture is ~1e-3, far above the nudge).
            let (full, _) = Naive.row_top_k(&q, &p, 3);
            let mut thirds: Vec<f64> = full.iter().map(|l| l[2].score).collect();
            thirds.sort_by(f64::total_cmp);
            thirds[thirds.len() / 2] + 1e-7
        };
        let mut expect: Vec<Vec<(usize, f64)>> = Vec::new();
        for i in 0..q.len() {
            let mut row: Vec<(usize, f64)> = (0..p.len())
                .map(|j| (j, q.dot_between(i, &p, j)))
                .filter(|&(_, v)| v >= floor)
                .collect();
            row.sort_by(|a, b| f64::total_cmp(&b.1, &a.1));
            row.truncate(k);
            expect.push(row);
        }
        for threads in [1usize, 4] {
            let mut engine = Lemp::builder().sample_size(8).threads(threads).build(&p);
            let out = engine.row_top_k_with_floor(&q, k, floor);
            for (i, list) in out.lists.iter().enumerate() {
                assert_eq!(list.len(), expect[i].len(), "query {i} ({threads} threads)");
                for (item, &(id, v)) in list.iter().zip(&expect[i]) {
                    assert_eq!(item.id, id, "query {i}");
                    assert!((item.score - v).abs() <= 1e-9 * v.abs().max(1.0));
                    assert!(item.score >= floor, "reported value below floor");
                }
            }
        }
    }

    #[test]
    fn top_k_with_neg_infinity_floor_is_plain_top_k() {
        let (q, p) = data(20, 150, 0.8, 1300);
        let mut engine = Lemp::builder().sample_size(8).build(&p);
        let plain = engine.row_top_k(&q, 4);
        let floored = engine.row_top_k_with_floor(&q, 4, f64::NEG_INFINITY);
        assert!(topk_equivalent(&plain.lists, &floored.lists, 1e-9));
    }

    #[test]
    fn top_k_with_unreachable_floor_is_empty_and_cheap() {
        let (q, p) = data(20, 150, 0.8, 1400);
        let mut engine = Lemp::builder().sample_size(8).build(&p);
        let out = engine.row_top_k_with_floor(&q, 4, 1e12);
        assert!(out.lists.iter().all(Vec::is_empty));
        // The floor prunes every bucket after seeding: only the k warm-up
        // inner products per query are ever computed.
        assert!(out.stats.counters.candidates <= (4 * q.len()) as u64);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn dimension_mismatch_panics() {
        let p = GeneratorConfig::gaussian(20, 8, 0.5).generate(1);
        let q = GeneratorConfig::gaussian(5, 4, 0.5).generate(2);
        let mut engine = Lemp::new(&p);
        let _ = engine.above_theta(&q, 0.5);
    }
}
