//! LEMP-TA: Fagin's threshold algorithm as a bucket method (Sec. 5).
//!
//! "We also experimented with TA in combination with LEMP, i.e., we used TA
//! as a bucket algorithm. This addresses the first and the final point in
//! the discussion above" — bucket pruning removes the short vectors TA is
//! blind to, and cache-resident buckets remove TA's random-access cache
//! misses. The paper measures LEMP-TA up to 24.9× faster than standalone TA.
//!
//! TA verifies internally (it computes each encountered vector's full inner
//! product), so qualifying vectors go into the sink as *verified* and the
//! adapter reports its internal evaluations as the candidate count.

use lemp_baselines::TaIndex;

use super::{MethodScratch, QueryCtx, Sink};

/// Runs TA inside the bucket against the current threshold; returns the
/// number of inner products TA computed.
pub fn run(
    ctx: &QueryCtx<'_>,
    index: &TaIndex,
    scratch: &mut MethodScratch,
    sink: &mut Sink,
) -> u64 {
    scratch.row.clear();
    let dots = index.query_above_into(ctx.scaled, ctx.theta, &mut scratch.seen, &mut scratch.row);
    sink.verified.extend_from_slice(&scratch.row);
    dots
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::{BucketPolicy, ProbeBuckets};
    use lemp_data::synthetic::GeneratorConfig;
    use lemp_linalg::kernels;

    #[test]
    fn adapter_finds_exactly_the_qualifying_vectors() {
        let store = GeneratorConfig::gaussian(150, 6, 0.5).generate(61);
        let policy =
            BucketPolicy { min_bucket: store.len(), length_ratio: 0.1, ..Default::default() };
        let mut pb = ProbeBuckets::build(&store, &policy);
        let bucket = &mut pb.buckets_mut()[0];
        bucket.ensure_ta();
        let index = bucket.indexes.ta.as_ref().unwrap();
        let mut scratch = MethodScratch::new(bucket.len());
        let queries = GeneratorConfig::gaussian(20, 6, 0.5).generate(62);
        let theta = 0.8;
        for q in queries.iter() {
            let qlen = kernels::norm(q);
            let dir: Vec<f64> = q.iter().map(|x| x / qlen).collect();
            let ctx = QueryCtx {
                dir: &dir,
                len: qlen,
                theta,
                theta_over_len: theta / qlen,
                local_threshold: theta / (qlen * bucket.max_len),
                scaled: q,
            };
            let mut sink = Sink::default();
            let dots = run(&ctx, index, &mut scratch, &mut sink);
            assert!(dots <= bucket.len() as u64);
            let mut got: Vec<u32> = sink.verified.iter().map(|v| v.0).collect();
            got.sort_unstable();
            let mut expect: Vec<u32> = Vec::new();
            for (lid, &id) in bucket.ids.iter().enumerate() {
                if kernels::dot(q, store.vector(id as usize)) >= theta {
                    expect.push(lid as u32);
                }
            }
            assert_eq!(got, expect);
            // verified scores are exact
            for &(lid, v) in &sink.verified {
                let id = bucket.ids[lid as usize] as usize;
                assert!((v - kernels::dot(q, store.vector(id))).abs() < 1e-9);
            }
        }
    }
}
