//! LEMP-Tree: a cover tree per bucket (Sec. 5 / Sec. 6.3).
//!
//! "LEMP-Tree creates one tree per bucket (lazy construction), instead one
//! tree from the entire probe dataset" — which the paper finds much faster
//! than standalone `Tree` whenever tree construction is the bottleneck, at
//! the price of inconsistent pruning power (multiple small trees vs one
//! big one).
//!
//! Like TA, the tree computes exact inner products internally, so
//! qualifying vectors are *verified* and internal evaluations are the
//! candidate count.

use lemp_baselines::CoverTree;

use super::{MethodScratch, QueryCtx, Sink};

/// Runs the bucket's cover tree against the current threshold; returns the
/// number of inner products computed.
pub fn run(
    ctx: &QueryCtx<'_>,
    tree: &CoverTree,
    scratch: &mut MethodScratch,
    sink: &mut Sink,
) -> u64 {
    scratch.row.clear();
    let dots = tree.query_above_into(ctx.scaled, ctx.theta, &mut scratch.row);
    sink.verified.extend_from_slice(&scratch.row);
    dots
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::{BucketPolicy, ProbeBuckets};
    use lemp_data::synthetic::GeneratorConfig;
    use lemp_linalg::kernels;

    #[test]
    fn adapter_finds_exactly_the_qualifying_vectors() {
        let store = GeneratorConfig::gaussian(200, 6, 0.8).generate(71);
        let policy =
            BucketPolicy { min_bucket: store.len(), length_ratio: 0.1, ..Default::default() };
        let mut pb = ProbeBuckets::build(&store, &policy);
        let bucket = &mut pb.buckets_mut()[0];
        bucket.ensure_tree(1.3);
        let tree = bucket.indexes.tree.as_ref().unwrap();
        let mut scratch = MethodScratch::new(bucket.len());
        let queries = GeneratorConfig::gaussian(15, 6, 0.8).generate(72);
        for theta in [0.5, 1.2] {
            for q in queries.iter() {
                let qlen = kernels::norm(q);
                let dir: Vec<f64> = q.iter().map(|x| x / qlen).collect();
                let ctx = QueryCtx {
                    dir: &dir,
                    len: qlen,
                    theta,
                    theta_over_len: theta / qlen,
                    local_threshold: theta / (qlen * bucket.max_len),
                    scaled: q,
                };
                let mut sink = Sink::default();
                run(&ctx, tree, &mut scratch, &mut sink);
                let mut got: Vec<u32> = sink.verified.iter().map(|v| v.0).collect();
                got.sort_unstable();
                let mut expect: Vec<u32> = Vec::new();
                for (lid, &id) in bucket.ids.iter().enumerate() {
                    if kernels::dot(q, store.vector(id as usize)) >= theta {
                        expect.push(lid as u32);
                    }
                }
                assert_eq!(got, expect, "theta {theta}");
            }
        }
    }
}
