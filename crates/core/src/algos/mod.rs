//! Bucket retrieval algorithms (Sec. 4 of the paper).
//!
//! Every algorithm answers the same per-(query, bucket) question: which
//! vectors of the bucket might satisfy `qᵀp ≥ θ`? The answer goes into a
//! [`Sink`] either as *unverified* local ids (LEMP's verification step will
//! compute their exact inner products, Alg. 1 line 16) or as *verified*
//! `(lid, qᵀp)` pairs when the method computes exact inner products
//! internally (TA and the cover tree do).
//!
//! | module | paper name | pruning signal |
//! |---|---|---|
//! | [`length`] | LENGTH (Sec. 4.1) | vector length only |
//! | [`coord`] | COORD (Sec. 4.2) | per-coordinate feasible regions |
//! | [`incr`] | INCR (Sec. 4.3) | feasible regions + partial inner products |
//! | [`ta_bucket`] | LEMP-TA (Sec. 5) | Fagin's TA inside the bucket |
//! | [`tree_bucket`] | LEMP-Tree (Sec. 5) | cover tree per bucket |
//! | [`l2ap_bucket`] | LEMP-L2AP (Sec. 5) | prefix-L2 inverted index |
//! | [`blsh_bucket`] | LEMP-BLSH (Sec. 5) | LSH signature matches |

pub mod blsh_bucket;
pub mod coord;
pub mod incr;
pub mod l2ap_bucket;
pub mod length;
pub mod ta_bucket;
pub mod tree_bucket;

use lemp_apss::L2apScratch;
use lemp_baselines::ta::SeenSet;

use crate::scratch::{CpArray, ExtCpArray};

/// Everything a bucket method needs to know about the current query.
#[derive(Debug, Clone, Copy)]
pub struct QueryCtx<'a> {
    /// Unit direction `q̄`.
    pub dir: &'a [f64],
    /// `‖q‖` (fixed to 1 in Row-Top-k runs, Sec. 4.5).
    pub len: f64,
    /// The global threshold `θ` (Above-θ) or the running `θ′` (Row-Top-k).
    pub theta: f64,
    /// Precomputed `θ/‖q‖` (LENGTH's cut-off and INCR's fast test).
    pub theta_over_len: f64,
    /// The local threshold `θ_b(q)` for the bucket being processed.
    pub local_threshold: f64,
    /// The query in its original scale `‖q‖·q̄` (TA/cover-tree adapters work
    /// on raw inner products).
    pub scaled: &'a [f64],
}

/// Candidate output of one bucket-method invocation.
#[derive(Debug, Default, Clone)]
pub struct Sink {
    /// Local ids whose inner product still must be computed.
    pub unverified: Vec<u32>,
    /// `(lid, qᵀp)` pairs with exact inner products already computed.
    pub verified: Vec<(u32, f64)>,
}

impl Sink {
    /// Empties both lists (buffers are reused across calls).
    pub fn clear(&mut self) {
        self.unverified.clear();
        self.verified.clear();
    }
}

/// Reusable per-worker scratch shared by all methods.
#[derive(Debug)]
pub struct MethodScratch {
    /// COORD's candidate-pruning array.
    pub cp: CpArray,
    /// INCR's extended CP array.
    pub ext: ExtCpArray,
    /// TA adapter's duplicate suppressor.
    pub seen: SeenSet,
    /// L2AP adapter's accumulator.
    pub l2ap: L2apScratch,
    /// Focus coordinates of the current query (largest `|q̄_f|` first).
    pub focus: Vec<usize>,
    /// Scan ranges aligned with `focus`.
    pub ranges: Vec<(usize, usize)>,
    /// Result buffer for adapters that verify internally.
    pub row: Vec<(u32, f64)>,
    /// Query-specific lookup table for the quantized scan (`m·k` entries).
    pub lut: Vec<f64>,
    /// Approximate score buffer for the quantized scan (`n` entries).
    pub qscores: Vec<f64>,
}

impl MethodScratch {
    /// Scratch for buckets of up to `n` vectors.
    pub fn new(n: usize) -> Self {
        Self {
            cp: CpArray::new(n),
            ext: ExtCpArray::new(n),
            seen: SeenSet::new(n),
            l2ap: L2apScratch::new(n),
            focus: Vec::new(),
            ranges: Vec::new(),
            row: Vec::new(),
            lut: Vec::new(),
            qscores: Vec::new(),
        }
    }

    /// Grows all arrays to bucket size `n`.
    pub fn ensure(&mut self, n: usize) {
        self.cp.resize(n);
        self.ext.resize(n);
        self.seen.resize(n);
        self.l2ap.resize(n);
    }
}

/// Picks the `phi` coordinates of `q̄` with the largest absolute values
/// (Sec. 4.2: "COORD then uses the φ coordinates of q̄ with largest absolute
/// value as focus coordinates"), skipping exact zeros — a zero coordinate's
/// feasible region is the full range and prunes nothing.
pub fn select_focus(dir: &[f64], phi: usize, focus: &mut Vec<usize>) {
    focus.clear();
    let phi = phi.min(dir.len());
    for _ in 0..phi {
        let mut best = None;
        let mut best_abs = 0.0;
        for (f, &v) in dir.iter().enumerate() {
            let a = v.abs();
            if a > best_abs && !focus.contains(&f) {
                best_abs = a;
                best = Some(f);
            }
        }
        match best {
            Some(f) => focus.push(f),
            None => break, // remaining coordinates are all zero
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn focus_picks_largest_absolute_coordinates() {
        let mut focus = Vec::new();
        select_focus(&[0.1, -0.9, 0.5, 0.0], 2, &mut focus);
        assert_eq!(focus, vec![1, 2]);
        select_focus(&[0.1, -0.9, 0.5, 0.0], 10, &mut focus);
        assert_eq!(focus, vec![1, 2, 0]); // zero coordinate skipped
    }

    #[test]
    fn focus_of_zero_vector_is_empty() {
        let mut focus = Vec::new();
        select_focus(&[0.0, 0.0], 3, &mut focus);
        assert!(focus.is_empty());
    }

    #[test]
    fn fig4_focus_coordinates() {
        // q̄ = (0.70, 0.3, 0.4, 0.51), φ = 2 → F = {coordinate 1, coordinate 4}
        // (one-based in the paper; zero-based 0 and 3 here).
        let mut focus = Vec::new();
        select_focus(&[0.70, 0.3, 0.4, 0.51], 2, &mut focus);
        assert_eq!(focus, vec![0, 3]);
    }

    #[test]
    fn sink_clear_resets_both_lists() {
        let mut s = Sink::default();
        s.unverified.push(1);
        s.verified.push((2, 0.5));
        s.clear();
        assert!(s.unverified.is_empty());
        assert!(s.verified.is_empty());
    }
}
