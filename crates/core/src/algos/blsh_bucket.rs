//! LEMP-BLSH: BayesLSH-Lite signature pruning as a bucket method (Sec. 5).
//!
//! Candidates start from the LENGTH-qualified prefix of the bucket; each is
//! kept only if its signature matches the query's on at least `m*` bits,
//! where `m*` comes from the precomputed Bayesian minimum-match table. The
//! paper finds this pruning marginal ("only up to 0.3 % less candidates per
//! query than LEMP-L") and the hashing overhead real — LEMP-BLSH trails
//! LEMP-L consistently — which this adapter faithfully reproduces.
//!
//! This is the single **approximate** method: a true result whose signature
//! disagrees on too many bits is lost; the false-negative rate is bounded by
//! ε (default 0.03, Sec. 6.1).

use lemp_apss::BlshIndex;

use crate::bucket::Bucket;

use super::{QueryCtx, Sink};

/// The precomputed `m*` table: entry `i` is the minimum match count for
/// local thresholds in `[i/N, (i+1)/N)`; using the bin's lower edge keeps
/// the decision conservative (fewer false negatives).
#[derive(Debug, Clone)]
pub struct MinMatchTable {
    entries: Vec<u32>,
}

impl MinMatchTable {
    /// Number of threshold bins.
    pub const BINS: usize = 64;

    /// Precomputes the table for a signature width and ε.
    pub fn new(bits: usize, eps: f64) -> Self {
        let entries = (0..=Self::BINS)
            .map(|i| lemp_apss::min_matches_for(bits, i as f64 / Self::BINS as f64, eps))
            .collect();
        Self { entries }
    }

    /// `m*` for a local threshold (≤ 0 → 0: no pruning). The bin's lower
    /// edge is used, so the returned value never exceeds the exact
    /// `m*(threshold)` (monotonicity makes this conservative).
    #[inline]
    pub fn lookup(&self, local_threshold: f64) -> u32 {
        if local_threshold <= 0.0 {
            return 0;
        }
        let bin = ((local_threshold * Self::BINS as f64).floor() as usize).min(Self::BINS);
        self.entries[bin]
    }
}

/// Runs BLSH: LENGTH prefix filtered by signature matches; pushes
/// unverified candidates.
pub fn run(
    ctx: &QueryCtx<'_>,
    bucket: &Bucket,
    index: &BlshIndex,
    table: &MinMatchTable,
    sink: &mut Sink,
) {
    let m_star = table.lookup(ctx.local_threshold);
    let cut = ctx.theta_over_len - 1e-12 * ctx.theta_over_len.abs();
    let sig = index.query_signature(ctx.dir);
    for (lid, &len) in bucket.lengths.iter().enumerate() {
        if len < cut {
            break;
        }
        if index.matches(sig, lid) >= m_star {
            sink.unverified.push(lid as u32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::{BucketPolicy, ProbeBuckets};
    use lemp_data::synthetic::GeneratorConfig;
    use lemp_linalg::kernels;

    #[test]
    fn table_is_monotone_and_conservative() {
        let t = MinMatchTable::new(32, 0.03);
        let mut last = 0;
        for i in 0..=10 {
            let thr = i as f64 / 10.0;
            let m = t.lookup(thr);
            assert!(m >= last, "lookup({thr}) = {m} < {last}");
            last = m;
        }
        assert_eq!(t.lookup(-0.5), 0);
        assert_eq!(t.lookup(0.0), 0);
        // lookup never exceeds the exact value at the threshold itself
        for i in 1..=10 {
            let thr = i as f64 / 10.0;
            assert!(t.lookup(thr) <= lemp_apss::min_matches_for(32, thr, 0.03));
        }
    }

    #[test]
    fn recall_stays_within_epsilon_budget() {
        let store = GeneratorConfig::gaussian(800, 16, 0.3).generate(91);
        let policy =
            BucketPolicy { min_bucket: store.len(), length_ratio: 0.1, ..Default::default() };
        let mut pb = ProbeBuckets::build(&store, &policy);
        let bucket = &mut pb.buckets_mut()[0];
        bucket.ensure_blsh(32, 7);
        let index = bucket.indexes.blsh.as_ref().unwrap();
        let table = MinMatchTable::new(32, 0.03);
        // Query with the store's own vectors so qualifying pairs exist.
        let mut truths = 0usize;
        let mut kept = 0usize;
        for i in (0..store.len()).step_by(10) {
            let q = store.vector(i);
            let qlen = kernels::norm(q);
            let theta = 0.7 * qlen * bucket.max_len; // local threshold ≈ 0.7
            let dir: Vec<f64> = q.iter().map(|x| x / qlen).collect();
            let ctx = QueryCtx {
                dir: &dir,
                len: qlen,
                theta,
                theta_over_len: theta / qlen,
                local_threshold: theta / (qlen * bucket.max_len),
                scaled: q,
            };
            let mut sink = Sink::default();
            run(&ctx, bucket, index, &table, &mut sink);
            for (lid, &id) in bucket.ids.iter().enumerate() {
                if kernels::dot(q, store.vector(id as usize)) >= theta {
                    truths += 1;
                    if sink.unverified.contains(&(lid as u32)) {
                        kept += 1;
                    }
                }
            }
        }
        assert!(truths > 0);
        let recall = kept as f64 / truths as f64;
        assert!(recall >= 1.0 - 0.03 - 0.05, "recall {recall} (truths {truths})");
    }

    #[test]
    fn pruning_is_no_stronger_than_length_and_no_weaker_than_empty() {
        let store = GeneratorConfig::gaussian(300, 12, 0.4).generate(92);
        let policy =
            BucketPolicy { min_bucket: store.len(), length_ratio: 0.1, ..Default::default() };
        let mut pb = ProbeBuckets::build(&store, &policy);
        let bucket = &mut pb.buckets_mut()[0];
        bucket.ensure_blsh(32, 9);
        let index = bucket.indexes.blsh.as_ref().unwrap();
        let table = MinMatchTable::new(32, 0.03);
        let q = store.vector(3);
        let qlen = kernels::norm(q);
        let dir: Vec<f64> = q.iter().map(|x| x / qlen).collect();
        let theta = 0.6 * qlen * bucket.max_len;
        let ctx = QueryCtx {
            dir: &dir,
            len: qlen,
            theta,
            theta_over_len: theta / qlen,
            local_threshold: 0.6,
            scaled: q,
        };
        let mut blsh_sink = Sink::default();
        run(&ctx, bucket, index, &table, &mut blsh_sink);
        let mut len_sink = Sink::default();
        super::super::length::run(&ctx, bucket, &mut len_sink);
        assert!(blsh_sink.unverified.len() <= len_sink.unverified.len());
        // BLSH candidates are a subset of LENGTH's prefix
        for lid in &blsh_sink.unverified {
            assert!(len_sink.unverified.contains(lid));
        }
    }
}
