//! LEMP-L2AP: the L2AP index as a bucket method (Sec. 5).
//!
//! "We create a separate L2AP index for each bucket. In L2AP, like in most
//! APSS algorithms, a lower bound on the cosine similarity threshold needs
//! to be fixed a priori. In our setting, we pick the lower bound
//! `θ_b(q_max)`, where `q_max` is the query vector with the largest length."
//!
//! If a query later poses a local threshold *below* the index threshold
//! (possible in Row-Top-k warm-up, where `θ′` starts low), L2AP's
//! completeness guarantee does not apply; the adapter then falls back to
//! LENGTH, preserving exactness at the cost the paper attributes to L2AP's
//! fixed a-priori bound ("the actual threshold used when querying the index
//! can be far away from the lower bound used during index creation").

use lemp_apss::L2apIndex;

use crate::bucket::Bucket;

use super::{length, MethodScratch, QueryCtx, Sink};

/// Runs L2AP candidate generation at the query's local threshold; pushes
/// unverified candidates.
pub fn run(
    ctx: &QueryCtx<'_>,
    bucket: &Bucket,
    index: &L2apIndex,
    scratch: &mut MethodScratch,
    sink: &mut Sink,
) {
    if ctx.local_threshold < index.threshold() {
        length::run(ctx, bucket, sink);
        return;
    }
    index.candidates_into(ctx.dir, ctx.local_threshold, &mut scratch.l2ap, &mut sink.unverified);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::{BucketPolicy, ProbeBuckets};
    use lemp_data::synthetic::GeneratorConfig;
    use lemp_linalg::kernels;

    #[test]
    fn candidates_are_superset_of_true_results() {
        let store = GeneratorConfig::gaussian(200, 8, 0.4).generate(81);
        let policy =
            BucketPolicy { min_bucket: store.len(), length_ratio: 0.1, ..Default::default() };
        let mut pb = ProbeBuckets::build(&store, &policy);
        let bucket = &mut pb.buckets_mut()[0];
        let queries = GeneratorConfig::gaussian(25, 8, 0.4).generate(82);
        let theta = 0.9;
        let qmax = queries.lengths().into_iter().fold(0.0, f64::max);
        bucket.ensure_l2ap(theta / (qmax * bucket.max_len));
        let index = bucket.indexes.l2ap.as_ref().unwrap();
        let mut scratch = MethodScratch::new(bucket.len());
        for q in queries.iter() {
            let qlen = kernels::norm(q);
            let th_b = theta / (qlen * bucket.max_len);
            if th_b > 1.0 {
                continue;
            }
            let dir: Vec<f64> = q.iter().map(|x| x / qlen).collect();
            let ctx = QueryCtx {
                dir: &dir,
                len: qlen,
                theta,
                theta_over_len: theta / qlen,
                local_threshold: th_b,
                scaled: q,
            };
            let mut sink = Sink::default();
            run(&ctx, bucket, index, &mut scratch, &mut sink);
            for (lid, &id) in bucket.ids.iter().enumerate() {
                let dot = kernels::dot(q, store.vector(id as usize));
                if dot >= theta {
                    assert!(
                        sink.unverified.contains(&(lid as u32)),
                        "missing true result lid {lid} (dot {dot})"
                    );
                }
            }
        }
    }

    #[test]
    fn below_index_threshold_falls_back_to_length() {
        let store = GeneratorConfig::gaussian(100, 6, 0.2).generate(83);
        let policy =
            BucketPolicy { min_bucket: store.len(), length_ratio: 0.1, ..Default::default() };
        let mut pb = ProbeBuckets::build(&store, &policy);
        let bucket = &mut pb.buckets_mut()[0];
        bucket.ensure_l2ap(0.5);
        let index = bucket.indexes.l2ap.as_ref().unwrap();
        let mut scratch = MethodScratch::new(bucket.len());
        let dir: Vec<f64> = {
            let q = store.vector(0);
            let n = kernels::norm(q);
            q.iter().map(|x| x / n).collect()
        };
        // local threshold 0.1 < index threshold 0.5 → LENGTH fallback: the
        // candidate set must still cover everything length-qualified.
        let ctx = QueryCtx {
            dir: &dir,
            len: 1.0,
            theta: 0.1 * bucket.max_len,
            theta_over_len: 0.1 * bucket.max_len,
            local_threshold: 0.1,
            scaled: &dir,
        };
        let mut sink = Sink::default();
        run(&ctx, bucket, index, &mut scratch, &mut sink);
        let expected: Vec<u32> = bucket
            .lengths
            .iter()
            .enumerate()
            .take_while(|(_, &l)| l >= ctx.theta_over_len)
            .map(|(lid, _)| lid as u32)
            .collect();
        assert_eq!(sink.unverified, expected);
    }
}
