//! LENGTH: length-based pruning (Sec. 4.1 of the paper).
//!
//! "LENGTH scans the bucket `P_b` in order. When processing vector `p`, we
//! check whether `‖p‖ ≥ θ/‖q‖`; we precompute `θ/‖q‖` to make this check
//! efficient. If `p` qualifies, we add it to the candidate set `C_b`.
//! Otherwise, we stop processing bucket `P_b`."
//!
//! Because bucket vectors are sorted by decreasing length, the qualifying
//! vectors form a prefix — the scan is sequential and allocation-free, which
//! is exactly why the paper recommends LENGTH "when buckets are small or the
//! local threshold is low".

use crate::bucket::Bucket;

use super::{QueryCtx, Sink};

/// Runs LENGTH: pushes the length-qualified prefix of the bucket as
/// unverified candidates.
pub fn run(ctx: &QueryCtx<'_>, bucket: &Bucket, sink: &mut Sink) {
    // Tiny downward slack: `θ/‖q‖` and `‖p‖` are derived (division, sqrt)
    // quantities, so a pair sitting exactly on the threshold could
    // otherwise be lost to rounding.
    let cut = ctx.theta_over_len - 1e-12 * ctx.theta_over_len.abs();
    for (lid, &len) in bucket.lengths.iter().enumerate() {
        if len >= cut {
            sink.unverified.push(lid as u32);
        } else {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::{BucketPolicy, ProbeBuckets};
    use lemp_linalg::VectorStore;

    fn buckets_of(lengths: &[f64]) -> ProbeBuckets {
        let rows: Vec<Vec<f64>> = lengths.iter().map(|&l| vec![l, 0.0]).collect();
        let store = VectorStore::from_rows(&rows).unwrap();
        let policy = BucketPolicy { min_bucket: lengths.len().max(1), ..Default::default() };
        let pb = ProbeBuckets::build(&store, &policy);
        assert_eq!(pb.bucket_count(), 1);
        pb
    }

    fn ctx_for<'a>(theta: f64, q_len: f64, dir: &'a [f64]) -> QueryCtx<'a> {
        QueryCtx {
            dir,
            len: q_len,
            theta,
            theta_over_len: theta / q_len,
            local_threshold: 0.5,
            scaled: dir,
        }
    }

    #[test]
    fn qualifying_prefix_matches_paper_example() {
        // Sec. 4.1 example: bucket lengths (2.0, 1.9, 1.9, 1.8, 1.8, 1.8),
        // q = (1,1,1,1)ᵀ → ‖q‖ = 2, θ = 3.8 → θ/‖q‖ = 1.9 → C_b = {1, 2, 3}
        // (one-based) = lids {0, 1, 2}.
        let pb = buckets_of(&[2.0, 1.9, 1.9, 1.8, 1.8, 1.8]);
        let dir = [1.0, 0.0];
        let ctx = ctx_for(3.8, 2.0, &dir);
        let mut sink = Sink::default();
        run(&ctx, &pb.buckets()[0], &mut sink);
        assert_eq!(sink.unverified, vec![0, 1, 2]);
        assert!(sink.verified.is_empty());
    }

    #[test]
    fn no_candidates_when_cut_exceeds_max() {
        let pb = buckets_of(&[1.0, 0.9]);
        let dir = [1.0, 0.0];
        let ctx = ctx_for(10.0, 1.0, &dir);
        let mut sink = Sink::default();
        run(&ctx, &pb.buckets()[0], &mut sink);
        assert!(sink.unverified.is_empty());
    }

    #[test]
    fn everything_qualifies_at_nonpositive_cut() {
        let pb = buckets_of(&[1.0, 0.5, 0.1]);
        let dir = [1.0, 0.0];
        let ctx = ctx_for(-1.0, 1.0, &dir); // θ < 0 → cut < 0 → all pass
        let mut sink = Sink::default();
        run(&ctx, &pb.buckets()[0], &mut sink);
        assert_eq!(sink.unverified, vec![0, 1, 2]);
    }
}
