//! INCR: incremental pruning (Sec. 4.3 + Appendix A of the paper).
//!
//! INCR scans the same feasible-region ranges as COORD but additionally
//! accumulates, per encountered vector, the partial inner product
//! `q̄_Fᵀp̄_F` and partial squared norm `‖p̄_F‖²` (the extended CP array,
//! Fig. 4f). After scanning, a vector is kept only if the Cauchy–Schwarz
//! bound on its *unseen* coordinates can still lift it to the improved,
//! probe-specific threshold `θ_p(q) = θ/(‖p‖‖q‖)` (Eq. 5):
//!
//! ```text
//! q̄_Fᵀp̄_F + √(1−‖q̄_F‖²)·√(1−‖p̄_F‖²) ≥ θ_p(q)
//! ```
//!
//! The check is evaluated in Appendix A's rewritten, division- and
//! square-root-free form: accept immediately if `q̄_Fᵀp̄_F·‖p‖ > θ/‖q‖`,
//! otherwise accept iff
//! `‖p‖²‖q‖²(1−‖p̄_F‖²)(1−‖q̄_F‖²) ≥ (θ − q̄_Fᵀp̄_F‖p‖‖q‖)²`.
//!
//! Unlike COORD, a vector need not appear in every scan range: a vector
//! missing from some range already violates that coordinate's bound (and so
//! cannot be a true result), so whatever Eq. 5 decides about it is sound —
//! the paper's Fig. 4f evaluates vector 2, seen in one of two lists, the
//! same way.

use crate::bounds::feasible_region;
use crate::bucket::Bucket;
use crate::index::RowIndex;

use super::{select_focus, MethodScratch, QueryCtx, Sink};

/// Absolute slack on the squared filter comparison so rounding can never
/// drop a boundary result.
const FILTER_SLACK: f64 = 1e-12;

/// Runs INCR with `phi` focus coordinates; pushes unverified candidates.
pub fn run(
    ctx: &QueryCtx<'_>,
    bucket: &Bucket,
    index: &RowIndex,
    phi: usize,
    scratch: &mut MethodScratch,
    sink: &mut Sink,
) {
    select_focus(ctx.dir, phi, &mut scratch.focus);
    if scratch.focus.is_empty() {
        sink.unverified.extend(0..bucket.len() as u32);
        return;
    }
    scratch.ranges.clear();
    let mut q_focus_sq = 0.0;
    for &f in &scratch.focus {
        let (lo, hi) = feasible_region(ctx.dir[f], ctx.local_threshold);
        scratch.ranges.push(index.scan_range(f, lo, hi));
        q_focus_sq += ctx.dir[f] * ctx.dir[f];
    }
    scratch.ext.begin();
    for (i, &f) in scratch.focus.iter().enumerate() {
        let qf = ctx.dir[f];
        for &(v, lid) in index.entries(f, scratch.ranges[i]) {
            scratch.ext.accumulate(lid, qf * v, v * v);
        }
    }
    // Eq. 5 filter in the Appendix A form.
    let qn = ctx.len;
    let tq = ctx.theta_over_len;
    let one_minus_qsq = (1.0 - q_focus_sq).max(0.0);
    for &lid in scratch.ext.touched() {
        let (acc, psq) = scratch.ext.get(lid);
        let lp = bucket.lengths[lid as usize];
        // Fast accept: the seen part alone already reaches θ.
        if acc * lp > tq {
            sink.unverified.push(lid);
            continue;
        }
        // Here θ − acc·lp·qn ≥ 0, so squaring is order-preserving.
        let lhs = lp * lp * qn * qn * (1.0 - psq).max(0.0) * one_minus_qsq;
        let rhs = ctx.theta - acc * lp * qn;
        if lhs + FILTER_SLACK >= rhs * rhs {
            sink.unverified.push(lid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::{BucketPolicy, ProbeBuckets};
    use lemp_linalg::{kernels, VectorStore};

    fn fig4_probes() -> VectorStore {
        let lens = [2.0, 1.9, 1.9, 1.8, 1.8, 1.8];
        let dirs = [
            [0.58, 0.50, 0.40, 0.50],
            [0.98, 0.00, 0.00, 0.20],
            [0.53, 0.00, 0.00, 0.85],
            [0.35, 0.93, 0.00, 0.10],
            [0.58, 0.50, 0.40, 0.50],
            [0.30, -0.40, 0.81, -0.30],
        ];
        let rows: Vec<Vec<f64>> =
            lens.iter().zip(dirs.iter()).map(|(&l, d)| d.iter().map(|x| x * l).collect()).collect();
        VectorStore::from_rows(&rows).unwrap()
    }

    fn single_bucket(store: &VectorStore) -> ProbeBuckets {
        let policy =
            BucketPolicy { min_bucket: store.len(), length_ratio: 0.5, ..Default::default() };
        let pb = ProbeBuckets::build(store, &policy);
        assert_eq!(pb.bucket_count(), 1);
        pb
    }

    #[test]
    fn reproduces_fig4f_candidate_set() {
        // With the improved per-probe threshold, Fig. 4f keeps only vector 1
        // (one-based) → store id 0: INCR correctly prunes vector 5, the
        // slightly-shorter duplicate of vector 1.
        let store = fig4_probes();
        let mut pb = single_bucket(&store);
        let bucket = &mut pb.buckets_mut()[0];
        bucket.ensure_incr();
        let dir = [0.70, 0.3, 0.4, 0.51];
        let scaled: Vec<f64> = dir.iter().map(|x| x * 0.5).collect();
        let ctx = QueryCtx {
            dir: &dir,
            len: 0.5,
            theta: 0.9,
            theta_over_len: 0.9 / 0.5,
            local_threshold: 0.9,
            scaled: &scaled,
        };
        let mut scratch = MethodScratch::new(bucket.len());
        let mut sink = Sink::default();
        run(&ctx, bucket, bucket.indexes.incr.as_ref().unwrap(), 2, &mut scratch, &mut sink);
        let bucket_ref = &pb.buckets()[0];
        let ids: Vec<u32> =
            sink.unverified.iter().map(|&lid| bucket_ref.ids[lid as usize]).collect();
        assert_eq!(ids, vec![0], "expected only Fig. 4's vector 1 to survive");
    }

    #[test]
    fn candidates_are_superset_of_true_results() {
        let store = lemp_data::synthetic::GeneratorConfig::gaussian(250, 8, 0.4).generate(41);
        let queries = lemp_data::synthetic::GeneratorConfig::gaussian(40, 8, 0.4).generate(42);
        let mut pb = single_bucket(&store);
        let bucket = &mut pb.buckets_mut()[0];
        bucket.ensure_incr();
        let index = bucket.indexes.incr.as_ref().unwrap();
        let mut scratch = MethodScratch::new(bucket.len());
        let mut sink = Sink::default();
        for theta in [0.5, 1.0] {
            for q in queries.iter() {
                let qlen = kernels::norm(q);
                let dir: Vec<f64> = q.iter().map(|x| x / qlen).collect();
                let th_b = theta / (qlen * bucket.max_len);
                if th_b > 1.0 {
                    continue;
                }
                for phi in 1..=5 {
                    sink.clear();
                    let ctx = QueryCtx {
                        dir: &dir,
                        len: qlen,
                        theta,
                        theta_over_len: theta / qlen,
                        local_threshold: th_b,
                        scaled: q,
                    };
                    run(&ctx, bucket, index, phi, &mut scratch, &mut sink);
                    for (lid, &id) in bucket.ids.iter().enumerate() {
                        let dot = kernels::dot(q, store.vector(id as usize));
                        if dot >= theta {
                            assert!(
                                sink.unverified.contains(&(lid as u32)),
                                "theta={theta} phi={phi}: missing lid {lid} (dot {dot})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn incr_prunes_at_least_as_hard_as_coord() {
        // Same data, same φ: INCR's candidate set is a subset of COORD's
        // (it applies Eq. 5 on top of the same scan ranges).
        let store = lemp_data::synthetic::GeneratorConfig::gaussian(300, 10, 0.4).generate(51);
        let mut pb = single_bucket(&store);
        let bucket = &mut pb.buckets_mut()[0];
        bucket.ensure_incr();
        bucket.ensure_coord();
        let mut scratch = MethodScratch::new(bucket.len());
        let q = store.vector(7).to_vec();
        let qlen = kernels::norm(&q);
        let dir: Vec<f64> = q.iter().map(|x| x / qlen).collect();
        let theta = 0.85 * qlen * bucket.max_len;
        let ctx = QueryCtx {
            dir: &dir,
            len: qlen,
            theta,
            theta_over_len: theta / qlen,
            local_threshold: 0.85,
            scaled: &q,
        };
        for phi in 2..=5 {
            let mut s_incr = Sink::default();
            run(
                &ctx,
                bucket,
                bucket.indexes.incr.as_ref().unwrap(),
                phi,
                &mut scratch,
                &mut s_incr,
            );
            let mut s_coord = Sink::default();
            super::super::coord::run(
                &ctx,
                bucket,
                bucket.indexes.coord.as_ref().unwrap(),
                phi,
                &mut scratch,
                &mut s_coord,
            );
            // INCR admits vectors seen in ≥1 range (COORD needs all), but
            // everything COORD kept and INCR dropped must fail Eq. 5 — i.e.
            // INCR ⊉ COORD in general, yet no *true* result may differ.
            // Here we check the weaker cardinality relation the paper
            // reports (Tables 5–6: INCR's |C| ≤ COORD's |C|).
            assert!(
                s_incr.unverified.len() <= s_coord.unverified.len(),
                "phi={phi}: INCR {} > COORD {}",
                s_incr.unverified.len(),
                s_coord.unverified.len()
            );
        }
    }

    #[test]
    fn zero_direction_falls_back_to_full_bucket() {
        let store = fig4_probes();
        let mut pb = single_bucket(&store);
        let bucket = &mut pb.buckets_mut()[0];
        bucket.ensure_incr();
        let dir = [0.0; 4];
        let ctx = QueryCtx {
            dir: &dir,
            len: 1.0,
            theta: -1.0,
            theta_over_len: -1.0,
            local_threshold: -0.5,
            scaled: &dir,
        };
        let mut scratch = MethodScratch::new(bucket.len());
        let mut sink = Sink::default();
        run(&ctx, bucket, bucket.indexes.incr.as_ref().unwrap(), 3, &mut scratch, &mut sink);
        assert_eq!(sink.unverified.len(), bucket.len());
    }

    #[test]
    fn zero_length_probes_are_never_kept_at_positive_theta() {
        let mut rows = vec![vec![1.0, 0.5], vec![0.8, -0.2]];
        rows.push(vec![0.0, 0.0]); // zero probe
        let store = VectorStore::from_rows(&rows).unwrap();
        let mut pb = single_bucket(&store);
        let bucket = &mut pb.buckets_mut()[0];
        bucket.ensure_incr();
        let dir = [1.0, 0.0];
        let ctx = QueryCtx {
            dir: &dir,
            len: 1.0,
            theta: 0.5,
            theta_over_len: 0.5,
            local_threshold: 0.5 / bucket.max_len,
            scaled: &dir,
        };
        let mut scratch = MethodScratch::new(bucket.len());
        let mut sink = Sink::default();
        run(&ctx, bucket, bucket.indexes.incr.as_ref().unwrap(), 2, &mut scratch, &mut sink);
        let zero_lid = bucket.lengths.iter().position(|&l| l == 0.0).unwrap() as u32;
        assert!(!sink.unverified.contains(&zero_lid));
    }
}
