//! COORD: coordinate-based pruning (Sec. 4.2, Alg. 2 of the paper).
//!
//! For each focus coordinate `f ∈ F`, the feasible region `[L_f, U_f]`
//! (see [`crate::bounds::feasible_region`]) locates a contiguous *scan
//! range* in the coordinate's sorted list via binary search; vectors outside
//! any range are infeasible. A counter per vector (the CP array, Fig. 4e)
//! tallies in how many ranges it appears; candidates are exactly the vectors
//! seen in **all** `|F|` ranges (Alg. 2 line 9).
//!
//! Per Appendix A, candidate enumeration rescans the *smallest* range
//! instead of the whole CP array — every candidate must appear in it.

use crate::bounds::feasible_region;
use crate::bucket::Bucket;
use crate::index::ColumnIndex;

use super::{select_focus, MethodScratch, QueryCtx, Sink};

/// Runs COORD with `phi` focus coordinates; pushes unverified candidates.
pub fn run(
    ctx: &QueryCtx<'_>,
    bucket: &Bucket,
    index: &ColumnIndex,
    phi: usize,
    scratch: &mut MethodScratch,
    sink: &mut Sink,
) {
    select_focus(ctx.dir, phi, &mut scratch.focus);
    if scratch.focus.is_empty() {
        // Zero query direction: no coordinate can prune; fall back to the
        // whole bucket (verification decides).
        sink.unverified.extend(0..bucket.len() as u32);
        return;
    }
    // Scan ranges per focus coordinate; smallest first (Appendix A).
    scratch.ranges.clear();
    for &f in &scratch.focus {
        let (lo, hi) = feasible_region(ctx.dir[f], ctx.local_threshold);
        scratch.ranges.push(index.scan_range(f, lo, hi));
    }
    let order: &mut Vec<usize> = &mut (0..scratch.focus.len()).collect();
    order.sort_by_key(|&i| scratch.ranges[i].1 - scratch.ranges[i].0);
    // An empty range on any coordinate empties the candidate set.
    if scratch.ranges[order[0]].0 == scratch.ranges[order[0]].1 {
        return;
    }
    let needed = scratch.focus.len() as u16;
    if needed == 1 {
        let f = scratch.focus[order[0]];
        sink.unverified.extend_from_slice(index.lids(f, scratch.ranges[order[0]]));
        return;
    }
    scratch.cp.begin();
    for &i in order.iter() {
        let f = scratch.focus[i];
        for &lid in index.lids(f, scratch.ranges[i]) {
            scratch.cp.bump(lid);
        }
    }
    let first = order[0];
    for &lid in index.lids(scratch.focus[first], scratch.ranges[first]) {
        if scratch.cp.count(lid) == needed {
            sink.unverified.push(lid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::{BucketPolicy, ProbeBuckets};
    use lemp_linalg::{kernels, VectorStore};

    /// The Fig. 4 bucket: lengths and normalized directions from Fig. 4a.
    fn fig4_probes() -> VectorStore {
        let lens = [2.0, 1.9, 1.9, 1.8, 1.8, 1.8];
        let dirs = [
            [0.58, 0.50, 0.40, 0.50],
            [0.98, 0.00, 0.00, 0.20],
            [0.53, 0.00, 0.00, 0.85],
            [0.35, 0.93, 0.00, 0.10],
            [0.58, 0.50, 0.40, 0.50],
            [0.30, -0.40, 0.81, -0.30],
        ];
        let rows: Vec<Vec<f64>> =
            lens.iter().zip(dirs.iter()).map(|(&l, d)| d.iter().map(|x| x * l).collect()).collect();
        VectorStore::from_rows(&rows).unwrap()
    }

    fn single_bucket(store: &VectorStore) -> ProbeBuckets {
        let policy =
            BucketPolicy { min_bucket: store.len(), length_ratio: 0.5, ..Default::default() };
        let pb = ProbeBuckets::build(store, &policy);
        assert_eq!(pb.bucket_count(), 1);
        pb
    }

    #[test]
    fn reproduces_fig4_candidate_set() {
        // Query of Fig. 4d: ‖q‖ = 0.5, q̄ = (0.70, 0.3, 0.4, 0.51), θ = 0.9,
        // θ_b(q) = 0.9, F = {1, 4} → C_b = {1, 4, 5} (one-based) = {0, 3, 4}.
        let store = fig4_probes();
        let mut pb = single_bucket(&store);
        let bucket = &mut pb.buckets_mut()[0];
        bucket.ensure_coord();
        let dir = [0.70, 0.3, 0.4, 0.51];
        let scaled: Vec<f64> = dir.iter().map(|x| x * 0.5).collect();
        let ctx = QueryCtx {
            dir: &dir,
            len: 0.5,
            theta: 0.9,
            theta_over_len: 0.9 / 0.5,
            local_threshold: 0.9,
            scaled: &scaled,
        };
        let mut scratch = MethodScratch::new(bucket.len());
        let mut sink = Sink::default();
        run(&ctx, bucket, bucket.indexes.coord.as_ref().unwrap(), 2, &mut scratch, &mut sink);
        let mut got = sink.unverified.clone();
        got.sort_unstable();
        // Bucket order may differ from Fig. 4a (ties of length 1.9/1.8 are
        // broken by id); map lids back to store ids for the comparison.
        let bucket_ref = &pb.buckets()[0];
        let ids: Vec<u32> = got.iter().map(|&lid| bucket_ref.ids[lid as usize]).collect();
        let mut ids = ids;
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 3, 4]);
    }

    #[test]
    fn candidates_are_superset_of_true_results() {
        let store = lemp_data::synthetic::GeneratorConfig::gaussian(200, 8, 0.3).generate(21);
        let queries = lemp_data::synthetic::GeneratorConfig::gaussian(30, 8, 0.3).generate(22);
        let mut pb = single_bucket(&store);
        let bucket = &mut pb.buckets_mut()[0];
        bucket.ensure_coord();
        let index = bucket.indexes.coord.as_ref().unwrap();
        let mut scratch = MethodScratch::new(bucket.len());
        let mut sink = Sink::default();
        let theta = 0.8;
        for q in queries.iter() {
            let qlen = kernels::norm(q);
            let dir: Vec<f64> = q.iter().map(|x| x / qlen).collect();
            let th_b = theta / (qlen * bucket.max_len);
            if th_b > 1.0 {
                continue;
            }
            for phi in 1..=4 {
                sink.clear();
                let ctx = QueryCtx {
                    dir: &dir,
                    len: qlen,
                    theta,
                    theta_over_len: theta / qlen,
                    local_threshold: th_b,
                    scaled: q,
                };
                run(&ctx, bucket, index, phi, &mut scratch, &mut sink);
                // every true result must be in the candidate set
                for (lid, &id) in bucket.ids.iter().enumerate() {
                    let dot = kernels::dot(q, store.vector(id as usize));
                    if dot >= theta {
                        assert!(
                            sink.unverified.contains(&(lid as u32)),
                            "phi={phi}: missing true result lid {lid} (dot {dot})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn larger_phi_never_grows_candidates() {
        let store = lemp_data::synthetic::GeneratorConfig::gaussian(300, 10, 0.2).generate(31);
        let mut pb = single_bucket(&store);
        let bucket = &mut pb.buckets_mut()[0];
        bucket.ensure_coord();
        let index = bucket.indexes.coord.as_ref().unwrap();
        let mut scratch = MethodScratch::new(bucket.len());
        let q = store.vector(0).to_vec();
        let qlen = kernels::norm(&q);
        let dir: Vec<f64> = q.iter().map(|x| x / qlen).collect();
        let ctx = QueryCtx {
            dir: &dir,
            len: qlen,
            theta: 0.9 * qlen * bucket.max_len,
            theta_over_len: 0.9 * bucket.max_len,
            local_threshold: 0.9,
            scaled: &q,
        };
        let mut last = usize::MAX;
        for phi in 1..=5 {
            let mut sink = Sink::default();
            run(&ctx, bucket, index, phi, &mut scratch, &mut sink);
            assert!(
                sink.unverified.len() <= last,
                "phi={phi} grew candidates {} > {last}",
                sink.unverified.len()
            );
            last = sink.unverified.len();
        }
    }

    #[test]
    fn zero_direction_falls_back_to_full_bucket() {
        let store = fig4_probes();
        let mut pb = single_bucket(&store);
        let bucket = &mut pb.buckets_mut()[0];
        bucket.ensure_coord();
        let dir = [0.0; 4];
        let ctx = QueryCtx {
            dir: &dir,
            len: 1.0,
            theta: -1.0,
            theta_over_len: -1.0,
            local_threshold: -0.5,
            scaled: &dir,
        };
        let mut scratch = MethodScratch::new(bucket.len());
        let mut sink = Sink::default();
        run(&ctx, bucket, bucket.indexes.coord.as_ref().unwrap(), 3, &mut scratch, &mut sink);
        assert_eq!(sink.unverified.len(), bucket.len());
    }
}
