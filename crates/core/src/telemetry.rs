//! The engine-side telemetry hook: services observe per-query
//! [`RunStats`] without the engine knowing who is listening.
//!
//! Every [`Engine::execute`](crate::Engine::execute) call already produces
//! the uniform run accounting ([`RunStats`] with its per-method
//! [`MethodMix`](crate::MethodMix)), but a service that answers requests
//! through `dyn Engine` had nowhere to send it — `lemp-serve` used to drop
//! `QueryResponse::stats` on the floor. [`TelemetrySink`] is the pipe: a
//! caller hands one to
//! [`Engine::execute_observed`](crate::Engine::execute_observed) and
//! receives the request, the live probe count and the run statistics after
//! every execution, on the executing thread, with no serve-layer types
//! leaking into the engine crate. Sinks must be cheap and non-blocking
//! (atomic counter bumps, histogram bins): they run on the query hot path.

use crate::plan::QueryRequest;
use crate::runner::RunStats;

/// A recipient of per-query execution telemetry.
///
/// Implementations must be `Send + Sync` (engines execute from many
/// threads) and should be wait-free in practice — a sink that takes locks
/// serializes the embarrassingly parallel retrieval phase it observes.
pub trait TelemetrySink: Send + Sync {
    /// Called once per [`Engine::execute_observed`](crate::Engine::execute_observed)
    /// call, after the engine produced its response. `probes` is the live
    /// probe count at execution time (so sinks can derive pruning rates:
    /// `queries × probes − candidates` pairs never reached a full inner
    /// product), and `stats` is the response's [`RunStats`].
    fn on_query(&self, request: &QueryRequest, probes: usize, stats: &RunStats);
}

/// A sink that discards everything — the default when nobody listens.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn on_query(&self, _request: &QueryRequest, _probes: usize, _stats: &RunStats) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, Lemp, WarmGoal};
    use lemp_linalg::VectorStore;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Default)]
    struct CountingSink {
        calls: AtomicU64,
        queries: AtomicU64,
        probes: AtomicU64,
    }

    impl TelemetrySink for CountingSink {
        fn on_query(&self, request: &QueryRequest, probes: usize, stats: &RunStats) {
            assert_eq!(request.kind.name(), "top-k");
            self.calls.fetch_add(1, Ordering::Relaxed);
            self.queries.fetch_add(stats.counters.queries, Ordering::Relaxed);
            self.probes.store(probes as u64, Ordering::Relaxed);
        }
    }

    #[test]
    fn execute_observed_reports_each_run_to_the_sink() {
        let probes =
            VectorStore::from_rows(&[vec![1.0, 0.0], vec![0.0, 2.0], vec![1.0, 1.0]]).unwrap();
        let queries = VectorStore::from_rows(&[vec![3.0, 1.0], vec![0.5, 0.5]]).unwrap();
        let mut engine = Lemp::new(&probes);
        engine.warm(&queries, WarmGoal::TopK(2));

        let engine: &dyn Engine = &engine;
        let request = QueryRequest::top_k(2);
        let plan = engine.plan(&request);
        let mut scratch = engine.query_scratch();
        let sink = CountingSink::default();
        let observed = engine.execute_observed(&plan, &queries, &mut scratch, &sink);
        let plain = engine.execute(&plan, &queries, &mut scratch);
        assert_eq!(observed.lists().unwrap(), plain.lists().unwrap(), "sink must not alter rows");
        assert_eq!(sink.calls.load(Ordering::Relaxed), 1);
        assert_eq!(sink.queries.load(Ordering::Relaxed), 2);
        assert_eq!(sink.probes.load(Ordering::Relaxed), 3);

        engine.execute_observed(&plan, &queries, &mut scratch, &NullSink);
        engine.execute_observed(&plan, &queries, &mut scratch, &sink);
        assert_eq!(sink.calls.load(Ordering::Relaxed), 2);
    }
}
