//! Sorted-list indexes over a bucket's unit directions (Sec. 4.2, App. A).
//!
//! Both layouts hold, per coordinate `f`, the bucket's vectors sorted by
//! decreasing `p̄_f` (Fig. 4c). The *storage layout* differs per consumer,
//! exactly as Appendix A prescribes:
//!
//! * [`ColumnIndex`] (for COORD) — values and local ids in **separate
//!   arrays**: "the data values are accessed only during binary search to
//!   determine the scan range, and the local identifiers are accessed only
//!   during the actual scan phase", so the scan touches a minimal number of
//!   cache lines.
//! * [`RowIndex`] (for INCR) — `(value, lid)` **pairs**: "INCR needs access
//!   to both coordinate values and local identifiers during scanning, we
//!   store the sorted lists row-wise."
//!
//! Scan ranges for a feasible region `[L_f, U_f]` are located by binary
//! search on the descending value arrays.

use lemp_linalg::VectorStore;

/// Column-wise sorted-list index (COORD layout).
#[derive(Debug, Clone)]
pub struct ColumnIndex {
    /// `vals[f]` — coordinate values sorted descending.
    vals: Vec<Vec<f64>>,
    /// `lids[f]` — local ids aligned with `vals[f]`.
    lids: Vec<Vec<u32>>,
}

impl ColumnIndex {
    /// Builds the per-coordinate sorted lists; O(r·n·log n).
    pub fn build(dirs: &VectorStore) -> Self {
        let (order, values) = sorted_lists(dirs);
        Self { vals: values, lids: order }
    }

    /// Number of coordinates (lists).
    pub fn dim(&self) -> usize {
        self.vals.len()
    }

    /// List length (same for every coordinate).
    pub fn list_len(&self) -> usize {
        self.vals.first().map_or(0, Vec::len)
    }

    /// Half-open index range of list `f` holding values in `[lo, hi]`.
    #[inline]
    pub fn scan_range(&self, f: usize, lo: f64, hi: f64) -> (usize, usize) {
        range_desc(&self.vals[f], lo, hi)
    }

    /// The local ids of list `f` within an index range.
    #[inline]
    pub fn lids(&self, f: usize, range: (usize, usize)) -> &[u32] {
        &self.lids[f][range.0..range.1]
    }
}

/// Row-wise sorted-list index (INCR layout).
#[derive(Debug, Clone)]
pub struct RowIndex {
    /// `entries[f]` — `(value, lid)` sorted by descending value.
    entries: Vec<Vec<(f64, u32)>>,
}

impl RowIndex {
    /// Builds the per-coordinate sorted lists; O(r·n·log n).
    pub fn build(dirs: &VectorStore) -> Self {
        let (order, values) = sorted_lists(dirs);
        let entries = values
            .into_iter()
            .zip(order)
            .map(|(vals, lids)| vals.into_iter().zip(lids).collect())
            .collect();
        Self { entries }
    }

    /// Number of coordinates (lists).
    pub fn dim(&self) -> usize {
        self.entries.len()
    }

    /// Half-open index range of list `f` holding values in `[lo, hi]`.
    #[inline]
    pub fn scan_range(&self, f: usize, lo: f64, hi: f64) -> (usize, usize) {
        let list = &self.entries[f];
        let start = list.partition_point(|&(v, _)| v > hi);
        let end = list.partition_point(|&(v, _)| v >= lo);
        (start, end.max(start))
    }

    /// The `(value, lid)` entries of list `f` within an index range.
    #[inline]
    pub fn entries(&self, f: usize, range: (usize, usize)) -> &[(f64, u32)] {
        &self.entries[f][range.0..range.1]
    }
}

/// Shared sort: per coordinate, ids ordered by descending value (ties by
/// ascending id for determinism), plus the aligned value arrays.
fn sorted_lists(dirs: &VectorStore) -> (Vec<Vec<u32>>, Vec<Vec<f64>>) {
    let n = dirs.len();
    let dim = dirs.dim();
    let mut order_out = Vec::with_capacity(dim);
    let mut vals_out = Vec::with_capacity(dim);
    let mut order: Vec<u32> = (0..n as u32).collect();
    for f in 0..dim {
        order.sort_by(|&a, &b| {
            let va = dirs.vector(a as usize)[f];
            let vb = dirs.vector(b as usize)[f];
            vb.partial_cmp(&va).expect("finite directions").then(a.cmp(&b))
        });
        order_out.push(order.clone());
        vals_out.push(order.iter().map(|&i| dirs.vector(i as usize)[f]).collect());
    }
    (order_out, vals_out)
}

/// Half-open range of a **descending** array with values in `[lo, hi]`.
#[inline]
fn range_desc(vals: &[f64], lo: f64, hi: f64) -> (usize, usize) {
    let start = vals.partition_point(|&v| v > hi);
    let end = vals.partition_point(|&v| v >= lo);
    (start, end.max(start))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig4_bucket() -> VectorStore {
        // The normalized vectors of Fig. 4a.
        VectorStore::from_rows(&[
            vec![0.58, 0.50, 0.40, 0.50],
            vec![0.98, 0.00, 0.00, 0.20],
            vec![0.53, 0.00, 0.00, 0.85],
            vec![0.35, 0.93, 0.00, 0.10],
            vec![0.58, 0.50, 0.40, 0.50],
            vec![0.30, -0.40, 0.81, -0.30],
        ])
        .unwrap()
    }

    #[test]
    fn lists_are_sorted_descending_with_correct_ids() {
        let idx = ColumnIndex::build(&fig4_bucket());
        // Fig. 4c: I1 order is lids 2, 1, 5, 3, 4, 6 → zero-based 1, 0, 4, 2, 3, 5.
        assert_eq!(idx.lids(0, (0, 6)), &[1, 0, 4, 2, 3, 5]);
        // I4 order: 3, 1, 5, 2, 4, 6 → 2, 0, 4, 1, 3, 5.
        assert_eq!(idx.lids(3, (0, 6)), &[2, 0, 4, 1, 3, 5]);
        for f in 0..4 {
            let all = idx.scan_range(f, -1.0, 1.0);
            assert_eq!(all, (0, 6));
        }
    }

    #[test]
    fn scan_range_matches_fig4_focus_coordinates() {
        let idx = ColumnIndex::build(&fig4_bucket());
        // Fig. 4d: feasible region on coordinate 1 is [0.32, 0.94] →
        // scan range covers lids 1, 5, 3, 4 (zero-based 0, 4, 2, 3).
        let r1 = idx.scan_range(0, 0.32, 0.94);
        assert_eq!(idx.lids(0, r1), &[0, 4, 2, 3]);
        // Coordinate 4 region [0.09, 0.83] → lids 1, 5, 2, 4 (0, 4, 1, 3).
        let r4 = idx.scan_range(3, 0.09, 0.83);
        assert_eq!(idx.lids(3, r4), &[0, 4, 1, 3]);
    }

    #[test]
    fn row_index_agrees_with_column_index() {
        let store = fig4_bucket();
        let col = ColumnIndex::build(&store);
        let row = RowIndex::build(&store);
        for f in 0..store.dim() {
            for (lo, hi) in [(-1.0, 1.0), (0.0, 0.5), (0.4, 0.4), (0.9, 0.2)] {
                let rc = col.scan_range(f, lo, hi);
                let rr = row.scan_range(f, lo, hi);
                assert_eq!(rc, rr, "f={f} range=({lo},{hi})");
                let ids_c: Vec<u32> = col.lids(f, rc).to_vec();
                let ids_r: Vec<u32> = row.entries(f, rr).iter().map(|e| e.1).collect();
                assert_eq!(ids_c, ids_r);
                // row entries carry the right values
                for &(v, lid) in row.entries(f, rr) {
                    assert!((v - store.vector(lid as usize)[f]).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn scan_range_boundaries_are_inclusive() {
        let store = VectorStore::from_rows(&[vec![0.5], vec![0.3], vec![0.1]]).unwrap();
        let idx = ColumnIndex::build(&store);
        assert_eq!(idx.scan_range(0, 0.3, 0.5), (0, 2));
        assert_eq!(idx.scan_range(0, 0.3, 0.3), (1, 2));
        assert_eq!(idx.scan_range(0, 0.31, 0.49), (1, 1)); // empty
                                                           // inverted interval → empty, never panics
        assert_eq!(idx.scan_range(0, 0.5, 0.1).0, idx.scan_range(0, 0.5, 0.1).1);
    }

    #[test]
    fn empty_store_builds_empty_lists() {
        let store = VectorStore::empty(3).unwrap();
        let col = ColumnIndex::build(&store);
        assert_eq!(col.dim(), 3);
        assert_eq!(col.list_len(), 0);
        assert_eq!(col.scan_range(0, -1.0, 1.0), (0, 0));
        let row = RowIndex::build(&store);
        assert_eq!(row.scan_range(2, -1.0, 1.0), (0, 0));
    }

    #[test]
    fn ties_are_ordered_by_id() {
        let store = VectorStore::from_rows(&[vec![0.5], vec![0.5], vec![0.5]]).unwrap();
        let idx = ColumnIndex::build(&store);
        assert_eq!(idx.lids(0, (0, 3)), &[0, 1, 2]);
    }
}
