//! Quantized probe buckets: PQ-style subspace codebooks with small-LUT
//! scoring (the ROADMAP's "High-Rate Nested-Lattice Quantized Matrix
//! Multiplication with Small Lookup Tables" direction).
//!
//! Each bucket's unit directions are cut into `m` subspaces of
//! [`SUB_DIM`] coordinates; per subspace, a codebook of `k ≤ 2^bits`
//! centroids is trained with deterministic Lloyd iterations and every
//! probe is stored as `m` packed code indices. At query time a
//! query-specific lookup table (`lut[s·k + c] = q̄_s · centroid_{s,c}`) is
//! built once per bucket visit, after which every probe's approximate
//! cosine is `m` table lookups — the gather-accumulate kernels in
//! `lemp-linalg` ([`lemp_linalg::kernels::lut_scan_u8`]) run this scan in
//! scalar or AVX2 form with bit-identical results.
//!
//! # Exactness contract
//!
//! The representation keeps a per-bucket **distortion bound**
//! `eps = max_i ‖d̄_i − recon_i‖` (the worst reconstruction error over the
//! bucket). With a unit query direction `q̄`, Cauchy–Schwarz gives
//! `|q̄·d̄_i − q̄·recon_i| ≤ eps`, so `approx_i + eps` upper-bounds the true
//! cosine. The bucket scan (`run`) folds this bound into the per-probe θ/k-floor
//! test: a probe is a candidate iff `len_i·(approx_i + eps)` clears the
//! threshold, and every candidate is re-verified against the
//! full-precision vectors by the shared verification step — Above-θ and
//! Row-Top-k answers stay **bit-identical** to the exact engine. The
//! *approximate* mode (scoring by `len_i·approx_i` without verification,
//! used by the `crates/approx` recall harness) trades that guarantee for
//! speed.

use lemp_linalg::{kernels, VectorStore};

use crate::algos::{QueryCtx, Sink};
use crate::bucket::Bucket;

/// Coordinates per quantization subspace. Four doubles collapse into one
/// code byte at 8 bits — the 4–8× residency reduction the ROADMAP targets —
/// while keeping per-subspace codebooks expressive at small `k`.
pub const SUB_DIM: usize = 4;

/// Largest accepted code width; wider codes would not fit `u16` storage.
pub const MAX_QUANT_BITS: u8 = 16;

/// Lloyd iterations per subspace codebook (deterministic, seeded init).
const KMEANS_ITERS: usize = 6;

fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Packed per-probe code indices, subspace-major (`codes[s·n + i]` is probe
/// `i`'s centroid index in subspace `s`). Width follows the code bits: one
/// byte per entry up to 8 bits, two bytes for 9–16.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuantCodes {
    /// Codebooks of up to 256 centroids.
    U8(Vec<u8>),
    /// Wider codebooks (9–16 bits).
    U16(Vec<u16>),
}

impl QuantCodes {
    fn len(&self) -> usize {
        match self {
            QuantCodes::U8(v) => v.len(),
            QuantCodes::U16(v) => v.len(),
        }
    }

    fn get(&self, idx: usize) -> usize {
        match self {
            QuantCodes::U8(v) => v[idx] as usize,
            QuantCodes::U16(v) => v[idx] as usize,
        }
    }

    /// Bytes of packed code storage.
    pub fn bytes(&self) -> usize {
        match self {
            QuantCodes::U8(v) => v.len(),
            QuantCodes::U16(v) => v.len() * 2,
        }
    }
}

/// The quantized representation of one bucket: per-subspace codebooks plus
/// packed per-probe codes and the distortion bound `eps` (see the module
/// docs for the exactness contract).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedBucket {
    bits: u8,
    sub_dim: usize,
    m: usize,
    k: usize,
    n: usize,
    dim: usize,
    /// `m · k` centroids of `sub_dim` doubles each, subspace-major; the
    /// last subspace's trailing coordinates are zero-padded.
    codebooks: Vec<f64>,
    codes: QuantCodes,
    eps: f64,
}

impl QuantizedBucket {
    /// Trains subspace codebooks over `dirs` (one unit direction per row)
    /// at the given code width and encodes every row. Deterministic: the
    /// same inputs and seed always produce the same codebooks and codes.
    /// Returns `None` for an empty store, zero dimensionality, or a code
    /// width outside `1..=`[`MAX_QUANT_BITS`].
    pub fn train(dirs: &VectorStore, bits: u8, seed: u64) -> Option<Self> {
        let (n, dim) = (dirs.len(), dirs.dim());
        if n == 0 || dim == 0 || bits == 0 || bits > MAX_QUANT_BITS {
            return None;
        }
        let sub_dim = SUB_DIM.min(dim);
        let m = dim.div_ceil(sub_dim);
        let k = if bits as usize >= usize::BITS as usize { n } else { n.min(1usize << bits) };
        let mut codebooks = vec![0.0; m * k * sub_dim];
        let mut assign = vec![0usize; n];
        let mut err_sq = vec![0.0f64; n];
        let mut total_sq = vec![0.0f64; n];
        let mut rng = seed | 1;
        let mut codes_wide = vec![0u16; m * n];
        for s in 0..m {
            let lo = s * sub_dim;
            let w = (dim - lo).min(sub_dim);
            let cb = &mut codebooks[s * k * sub_dim..(s + 1) * k * sub_dim];
            // Seeded rotation over evenly spaced rows: deterministic and
            // spread across the length-sorted bucket.
            let offset = (splitmix(&mut rng) as usize) % n;
            for c in 0..k {
                let row = (offset + c * n / k) % n;
                cb[c * sub_dim..c * sub_dim + w].copy_from_slice(&dirs.vector(row)[lo..lo + w]);
            }
            let mut sums = vec![0.0f64; k * sub_dim];
            let mut counts = vec![0usize; k];
            for _ in 0..KMEANS_ITERS {
                sums.iter_mut().for_each(|x| *x = 0.0);
                counts.iter_mut().for_each(|x| *x = 0);
                for (i, a) in assign.iter_mut().enumerate() {
                    let point = &dirs.vector(i)[lo..lo + w];
                    let (best, best_d) = nearest(point, cb, k, sub_dim, w);
                    *a = best;
                    err_sq[i] = best_d;
                    counts[best] += 1;
                    for (dst, &src) in sums[best * sub_dim..].iter_mut().zip(point) {
                        *dst += src;
                    }
                }
                for c in 0..k {
                    if counts[c] > 0 {
                        let inv = 1.0 / counts[c] as f64;
                        for d in 0..w {
                            cb[c * sub_dim + d] = sums[c * sub_dim + d] * inv;
                        }
                    } else {
                        // Reseed an empty cluster to the worst-fit point —
                        // deterministic (ties break on the lowest index).
                        let far = err_sq
                            .iter()
                            .enumerate()
                            .max_by(|a, b| a.1.total_cmp(b.1))
                            .map_or(0, |(i, _)| i);
                        cb[c * sub_dim..c * sub_dim + w]
                            .copy_from_slice(&dirs.vector(far)[lo..lo + w]);
                    }
                }
            }
            // Final assignment after the last centroid update. `total_sq`
            // accumulates across subspaces (distinct from the per-subspace
            // Lloyd scratch `err_sq`, which each subspace overwrites).
            for (i, code) in codes_wide[s * n..(s + 1) * n].iter_mut().enumerate() {
                let point = &dirs.vector(i)[lo..lo + w];
                let (best, best_d) = nearest(point, cb, k, sub_dim, w);
                *code = best as u16;
                total_sq[i] += best_d;
            }
        }
        let eps = total_sq.iter().fold(0.0f64, |acc, &e| acc.max(e)).sqrt();
        let codes = if bits <= 8 {
            QuantCodes::U8(codes_wide.iter().map(|&c| c as u8).collect())
        } else {
            QuantCodes::U16(codes_wide)
        };
        Some(Self { bits, sub_dim, m, k, n, dim, codebooks, codes, eps })
    }

    /// Reassembles a quantized bucket from persisted parts, validating
    /// every shape and code value against the bucket's full-precision
    /// directions. The distortion bound is **recomputed** from `dirs` —
    /// never trusted from the image — so a tampered `eps` can't silently
    /// break the exactness contract.
    pub fn from_parts(
        bits: u8,
        sub_dim: usize,
        k: usize,
        codebooks: Vec<f64>,
        codes: QuantCodes,
        dirs: &VectorStore,
    ) -> Result<Self, String> {
        let (n, dim) = (dirs.len(), dirs.dim());
        if bits == 0 || bits > MAX_QUANT_BITS {
            return Err(format!("quantized section: bits {bits} outside 1..=16"));
        }
        if sub_dim == 0 || sub_dim != SUB_DIM.min(dim) {
            return Err(format!("quantized section: sub_dim {sub_dim} mismatches dim {dim}"));
        }
        let m = dim.div_ceil(sub_dim);
        if k == 0 || (bits < usize::BITS as u8 && k > (1usize << bits)) || k > n {
            return Err(format!("quantized section: k {k} invalid for bits {bits}, n {n}"));
        }
        let want_cb = m
            .checked_mul(k)
            .and_then(|x| x.checked_mul(sub_dim))
            .ok_or("quantized section: codebook size overflows")?;
        if codebooks.len() != want_cb {
            return Err(format!(
                "quantized section: {} codebook values, expected {want_cb}",
                codebooks.len()
            ));
        }
        if codebooks.iter().any(|v| !v.is_finite()) {
            return Err("quantized section: non-finite codebook value".to_string());
        }
        let want_codes = m.checked_mul(n).ok_or("quantized section: code count overflows")?;
        if codes.len() != want_codes {
            return Err(format!("quantized section: {} codes, expected {want_codes}", codes.len()));
        }
        let wide = matches!(codes, QuantCodes::U16(_));
        if wide != (bits > 8) {
            return Err("quantized section: code width mismatches bits".to_string());
        }
        for idx in 0..codes.len() {
            if codes.get(idx) >= k {
                return Err(format!("quantized section: code {} ≥ k {k}", codes.get(idx)));
            }
        }
        let mut q = Self { bits, sub_dim, m, k, n, dim, codebooks, codes, eps: 0.0 };
        q.eps = q.recompute_eps(dirs);
        Ok(q)
    }

    fn recompute_eps(&self, dirs: &VectorStore) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..self.n {
            let mut e = 0.0;
            for s in 0..self.m {
                let lo = s * self.sub_dim;
                let w = (self.dim - lo).min(self.sub_dim);
                let c = self.codes.get(s * self.n + i);
                let cb = &self.codebooks[(s * self.k + c) * self.sub_dim..];
                e += kernels::dist_sq(&dirs.vector(i)[lo..lo + w], &cb[..w]);
            }
            worst = worst.max(e);
        }
        worst.sqrt()
    }

    /// Code width in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Centroids per subspace codebook.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of subspaces.
    pub fn subspaces(&self) -> usize {
        self.m
    }

    /// Coordinates per subspace (the last subspace may cover fewer).
    pub fn sub_dim(&self) -> usize {
        self.sub_dim
    }

    /// Encoded probe count.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if no probes are encoded (never produced by [`Self::train`]).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The distortion bound `max_i ‖d̄_i − recon_i‖`.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The raw codebooks (`m · k` centroids of [`Self::sub_dim`] doubles,
    /// subspace-major) — persistence and inspection.
    pub fn codebooks(&self) -> &[f64] {
        &self.codebooks
    }

    /// The packed codes — persistence and inspection.
    pub fn codes(&self) -> &QuantCodes {
        &self.codes
    }

    /// Resident bytes of the quantized representation (codebooks + codes).
    pub fn resident_bytes(&self) -> usize {
        self.codebooks.len() * 8 + self.codes.bytes()
    }

    /// Builds the query-specific lookup table:
    /// `lut[s·k + c] = dot(q̄[subspace s], centroid_{s,c})`.
    pub fn fill_lut(&self, dir: &[f64], lut: &mut Vec<f64>) {
        lut.clear();
        lut.reserve(self.m * self.k);
        for s in 0..self.m {
            let lo = s * self.sub_dim;
            let w = (self.dim - lo).min(self.sub_dim);
            let q_sub = &dir[lo..lo + w];
            let cbs = &self.codebooks[s * self.k * self.sub_dim..(s + 1) * self.k * self.sub_dim];
            if w == 4 && self.sub_dim == 4 {
                // The hot shape (full subspaces): an inlined 4-dot with the
                // same `(s0 + s1) + (s2 + s3)` reduction as `kernels::dot`,
                // so the table is bit-identical but skips `k` dispatched
                // calls per subspace — the LUT build is per bucket visit
                // and must not eat the scan's win.
                let (q0, q1, q2, q3) = (q_sub[0], q_sub[1], q_sub[2], q_sub[3]);
                for cb in cbs.chunks_exact(4) {
                    lut.push((q0 * cb[0] + q1 * cb[1]) + (q2 * cb[2] + q3 * cb[3]));
                }
            } else {
                for c in 0..self.k {
                    let cb = &cbs[c * self.sub_dim..];
                    lut.push(kernels::dot(q_sub, &cb[..w]));
                }
            }
        }
    }

    /// Approximate cosines of every probe against the query the LUT was
    /// built for — the tight gather-accumulate scan (scalar or AVX2,
    /// bit-identical).
    pub fn scores(&self, lut: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.n, 0.0);
        match &self.codes {
            QuantCodes::U8(codes) => kernels::lut_scan_u8(codes, lut, self.n, self.m, self.k, out),
            QuantCodes::U16(codes) => {
                kernels::lut_scan_u16(codes, lut, self.n, self.m, self.k, out)
            }
        }
    }
}

fn nearest(point: &[f64], cb: &[f64], k: usize, sub_dim: usize, w: usize) -> (usize, f64) {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for c in 0..k {
        let d = kernels::dist_sq(point, &cb[c * sub_dim..c * sub_dim + w]);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

/// The QUANT bucket scan: build the query's LUT, score every probe by
/// table lookups, and emit as *unverified* candidates exactly the probes
/// whose distortion-lifted score can still clear the per-probe threshold
/// (`len_i·(approx_i + eps) ≥ θ/‖q‖`, with LENGTH's downward boundary
/// slack). The shared verification step re-checks every candidate against
/// the full-precision vectors, so answers stay exact.
pub(crate) fn run(
    ctx: &QueryCtx<'_>,
    bucket: &Bucket,
    quant: &QuantizedBucket,
    lut: &mut Vec<f64>,
    scores: &mut Vec<f64>,
    sink: &mut Sink,
) {
    quant.fill_lut(ctx.dir, lut);
    quant.scores(lut, scores);
    let cut = ctx.theta_over_len - 1e-12 * ctx.theta_over_len.abs();
    let eps = quant.eps();
    // `approx + eps ≥ cos` and `approx ≤ ‖recon‖ ≤ 1 + eps`, so once
    // `len·(1 + 2eps) < cut` no shorter probe can qualify either.
    let lift = 1.0 + 2.0 * eps;
    for (lid, &len) in bucket.lengths.iter().enumerate() {
        if len * lift < cut {
            break;
        }
        if len * (scores[lid] + eps) >= cut {
            sink.unverified.push(lid as u32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemp_data::synthetic::GeneratorConfig;

    fn dirs(n: usize, dim: usize, seed: u64) -> VectorStore {
        let store = GeneratorConfig::gaussian(n, dim, 0.8).generate(seed);
        let (_, dirs) = store.decompose();
        dirs
    }

    #[test]
    fn training_is_deterministic() {
        let d = dirs(120, 10, 3);
        let a = QuantizedBucket::train(&d, 6, 7).unwrap();
        let b = QuantizedBucket::train(&d, 6, 7).unwrap();
        assert_eq!(a, b);
        // A different seed may rotate the init but still encodes every row.
        let c = QuantizedBucket::train(&d, 6, 8).unwrap();
        assert_eq!(c.len(), 120);
    }

    #[test]
    fn eps_bounds_every_reconstruction_error() {
        let d = dirs(150, 12, 5);
        let q = QuantizedBucket::train(&d, 8, 1).unwrap();
        for i in 0..d.len() {
            let mut e = 0.0;
            for s in 0..q.subspaces() {
                let lo = s * q.sub_dim();
                let w = (d.dim() - lo).min(q.sub_dim());
                let c = q.codes().get(s * q.len() + i);
                let cb = &q.codebooks()[(s * q.k() + c) * q.sub_dim()..];
                e += kernels::dist_sq(&d.vector(i)[lo..lo + w], &cb[..w]);
            }
            assert!(e.sqrt() <= q.eps() + 1e-12, "probe {i}: {} > {}", e.sqrt(), q.eps());
        }
    }

    #[test]
    fn lut_scores_match_reconstructed_dots() {
        let d = dirs(90, 9, 11);
        let q = QuantizedBucket::train(&d, 5, 2).unwrap();
        let query = d.vector(0).to_vec();
        let mut lut = Vec::new();
        let mut scores = Vec::new();
        q.fill_lut(&query, &mut lut);
        q.scores(&lut, &mut scores);
        for (i, &score) in scores.iter().enumerate() {
            // Reconstruct probe i and dot it with the query directly.
            let mut expect = 0.0;
            for s in 0..q.subspaces() {
                let lo = s * q.sub_dim();
                let w = (d.dim() - lo).min(q.sub_dim());
                let c = q.codes().get(s * q.len() + i);
                let cb = &q.codebooks()[(s * q.k() + c) * q.sub_dim()..];
                expect += kernels::dot(&query[lo..lo + w], &cb[..w]);
            }
            assert!((score - expect).abs() < 1e-9, "probe {i}");
        }
        // And approximation error per probe is within eps (unit query).
        for (i, &score) in scores.iter().enumerate() {
            let truth = kernels::dot(&query, d.vector(i));
            assert!((truth - score).abs() <= q.eps() + 1e-9, "probe {i}");
        }
    }

    #[test]
    fn more_bits_reduce_distortion() {
        let d = dirs(256, 16, 21);
        let lo = QuantizedBucket::train(&d, 2, 1).unwrap();
        let hi = QuantizedBucket::train(&d, 8, 1).unwrap();
        assert!(hi.eps() <= lo.eps(), "8-bit eps {} vs 2-bit {}", hi.eps(), lo.eps());
    }

    #[test]
    fn wide_codes_use_u16_storage() {
        let d = dirs(700, 8, 31);
        let q = QuantizedBucket::train(&d, 9, 1).unwrap();
        assert!(matches!(q.codes(), QuantCodes::U16(_)));
        assert!(q.k() <= 512);
        let q8 = QuantizedBucket::train(&d, 8, 1).unwrap();
        assert!(matches!(q8.codes(), QuantCodes::U8(_)));
        assert!(q8.k() <= 256);
    }

    #[test]
    fn degenerate_inputs_yield_none() {
        let empty = VectorStore::empty(4).unwrap();
        assert!(QuantizedBucket::train(&empty, 8, 1).is_none());
        let d = dirs(10, 4, 1);
        assert!(QuantizedBucket::train(&d, 0, 1).is_none());
        assert!(QuantizedBucket::train(&d, 17, 1).is_none());
    }

    #[test]
    fn from_parts_roundtrips_and_validates() {
        let d = dirs(80, 10, 41);
        let q = QuantizedBucket::train(&d, 4, 3).unwrap();
        let re = QuantizedBucket::from_parts(
            q.bits(),
            q.sub_dim(),
            q.k(),
            q.codebooks().to_vec(),
            q.codes().clone(),
            &d,
        )
        .unwrap();
        assert_eq!(q, re);
        // Hostile parts: out-of-range code.
        let mut bad = match q.codes().clone() {
            QuantCodes::U8(v) => v,
            QuantCodes::U16(_) => unreachable!(),
        };
        bad[0] = u8::MAX;
        let err = QuantizedBucket::from_parts(
            q.bits(),
            q.sub_dim(),
            q.k(),
            q.codebooks().to_vec(),
            QuantCodes::U8(bad),
            &d,
        )
        .unwrap_err();
        assert!(err.contains("≥ k"), "{err}");
        // Hostile parts: truncated codebooks.
        let err = QuantizedBucket::from_parts(
            q.bits(),
            q.sub_dim(),
            q.k(),
            q.codebooks()[..q.codebooks().len() - 1].to_vec(),
            q.codes().clone(),
            &d,
        )
        .unwrap_err();
        assert!(err.contains("codebook values"), "{err}");
        // Hostile parts: non-finite codebook entry.
        let mut cb = q.codebooks().to_vec();
        cb[0] = f64::NAN;
        let err =
            QuantizedBucket::from_parts(q.bits(), q.sub_dim(), q.k(), cb, q.codes().clone(), &d)
                .unwrap_err();
        assert!(err.contains("non-finite"), "{err}");
    }

    #[test]
    fn resident_bytes_shrink_the_representation() {
        let d = dirs(2000, 16, 51);
        let q = QuantizedBucket::train(&d, 8, 1).unwrap();
        let full = 2000 * 16 * 8; // f64 directions alone
        assert!(q.resident_bytes() * 4 < full, "quantized {} vs full {full}", q.resident_bytes());
    }
}
