//! Shared execution plumbing: run configuration, lazy index construction,
//! method dispatch, and the verification step (Alg. 1 lines 14–16).

use std::time::Instant;

use lemp_baselines::types::Entry;
use lemp_linalg::{kernels, TopK};

use crate::algos::blsh_bucket::MinMatchTable;
use crate::algos::{blsh_bucket, coord, incr, l2ap_bucket, length, ta_bucket, tree_bucket};
use crate::algos::{MethodScratch, QueryCtx, Sink};
use crate::bucket::Bucket;
use crate::variant::{LempVariant, ResolvedMethod};

/// Options of one LEMP engine (builder-settable; defaults follow the
/// paper's experimental setup, Sec. 6.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    /// Which bucket method(s) to run.
    pub variant: LempVariant,
    /// Queries sampled by the tuner (Sec. 4.4).
    pub sample_size: usize,
    /// BLSH signature width in bits (paper: one signature of 32 bits).
    pub blsh_bits: usize,
    /// BLSH false-negative budget ε (paper: 0.03).
    pub blsh_eps: f64,
    /// Cover-tree base (paper: 1.3).
    pub tree_base: f64,
    /// Worker threads for the retrieval phase (1 = the paper's setting).
    pub threads: usize,
    /// L2AP index threshold used for Row-Top-k runs, where no a-priori
    /// lower bound on the local threshold exists (Above-θ runs derive it
    /// from `θ_b(q_max)` instead).
    pub l2ap_topk_threshold: f64,
    /// Code width for the quantized bucket representation (`0` disables
    /// quantization; valid widths are `1..=16`). When enabled, `warm`
    /// trains per-bucket codebooks and the tuner decides per bucket
    /// whether the LUT scan or the variant's exact scan wins.
    pub quantize_bits: u8,
    /// Skips the tuner's LUT-vs-exact timing race and routes every bucket
    /// with trained codebooks through the quantized scan. The per-bucket
    /// decision in `tune_quant` is measured wall-clock, so which buckets
    /// flip to QUANT varies with machine load; forcing it makes runs that
    /// must exercise the LUT kernel (benchmarks, smoke tests) reproducible.
    /// No effect unless `quantize_bits > 0`; exactness is unaffected either
    /// way (candidates are always re-verified against full precision).
    pub quantize_force: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            variant: LempVariant::LI,
            sample_size: 50,
            blsh_bits: 32,
            blsh_eps: 0.03,
            tree_base: 1.3,
            threads: 1,
            l2ap_topk_threshold: 0.05,
            quantize_bits: 0,
            quantize_force: false,
        }
    }
}

/// Accumulates lazy index-construction work (reported as preprocessing
/// time, as in the paper's Table 2 accounting).
#[derive(Debug, Default, Clone, Copy)]
pub struct BuildClock {
    /// Nanoseconds spent building indexes.
    pub ns: u64,
    /// Number of indexes built.
    pub built: u64,
}

/// Returns whether `method` needs an index that `bucket` does not have yet.
pub(crate) fn needs_build(bucket: &Bucket, method: ResolvedMethod) -> bool {
    match method {
        ResolvedMethod::Length => false,
        ResolvedMethod::Coord(_) => bucket.indexes.coord.is_none(),
        ResolvedMethod::Incr(_) => bucket.indexes.incr.is_none(),
        ResolvedMethod::Ta => bucket.indexes.ta.is_none(),
        ResolvedMethod::Tree => bucket.indexes.tree.is_none(),
        ResolvedMethod::L2ap => bucket.indexes.l2ap.is_none(),
        ResolvedMethod::Blsh => bucket.indexes.blsh.is_none(),
        ResolvedMethod::Quant => bucket.indexes.quant.is_none(),
    }
}

/// Lazily builds the index `method` needs (Sec. 4.2: "LEMP constructs
/// indexes lazily on first use"). `l2ap_t` is the L2AP index threshold for
/// this bucket; `bucket_seed` derandomizes BLSH per bucket.
pub(crate) fn ensure_for(
    bucket: &mut Bucket,
    method: ResolvedMethod,
    l2ap_t: f64,
    cfg: &RunConfig,
    bucket_seed: u64,
    clock: &mut BuildClock,
) {
    if !needs_build(bucket, method) {
        return;
    }
    let start = Instant::now();
    let built = match method {
        ResolvedMethod::Length => false,
        ResolvedMethod::Coord(_) => bucket.ensure_coord(),
        ResolvedMethod::Incr(_) => bucket.ensure_incr(),
        ResolvedMethod::Ta => bucket.ensure_ta(),
        ResolvedMethod::Tree => bucket.ensure_tree(cfg.tree_base),
        ResolvedMethod::L2ap => bucket.ensure_l2ap(l2ap_t),
        ResolvedMethod::Blsh => bucket.ensure_blsh(cfg.blsh_bits, bucket_seed),
        ResolvedMethod::Quant => bucket.ensure_quant(cfg.quantize_bits, bucket_seed),
    };
    if built {
        clock.ns += start.elapsed().as_nanos() as u64;
        clock.built += 1;
    }
}

/// Dispatches one bucket-method invocation; returns the number of inner
/// products the method computed internally (TA and Tree verify inline).
///
/// # Panics
/// If the index the method requires has not been built (callers go through
/// [`ensure_for`] first).
pub(crate) fn run_method(
    method: ResolvedMethod,
    ctx: &QueryCtx<'_>,
    bucket: &Bucket,
    blsh_table: Option<&MinMatchTable>,
    scratch: &mut MethodScratch,
    sink: &mut Sink,
) -> u64 {
    match method {
        ResolvedMethod::Length => {
            length::run(ctx, bucket, sink);
            0
        }
        ResolvedMethod::Coord(phi) => {
            let index = bucket.indexes.coord.as_ref().expect("COORD index built");
            coord::run(ctx, bucket, index, phi, scratch, sink);
            0
        }
        ResolvedMethod::Incr(phi) => {
            let index = bucket.indexes.incr.as_ref().expect("INCR index built");
            incr::run(ctx, bucket, index, phi, scratch, sink);
            0
        }
        ResolvedMethod::Ta => {
            let index = bucket.indexes.ta.as_ref().expect("TA index built");
            ta_bucket::run(ctx, index, scratch, sink)
        }
        ResolvedMethod::Tree => {
            let tree = bucket.indexes.tree.as_ref().expect("tree built");
            tree_bucket::run(ctx, tree, scratch, sink)
        }
        ResolvedMethod::L2ap => {
            let index = bucket.indexes.l2ap.as_ref().expect("L2AP index built");
            l2ap_bucket::run(ctx, bucket, index, scratch, sink);
            0
        }
        ResolvedMethod::Blsh => {
            let index = bucket.indexes.blsh.as_ref().expect("BLSH index built");
            let table = blsh_table.expect("BLSH table precomputed");
            blsh_bucket::run(ctx, bucket, index, table, sink);
            0
        }
        ResolvedMethod::Quant => {
            let q = bucket.indexes.quant.as_ref().expect("QUANT codebooks trained");
            crate::quant::run(ctx, bucket, q, &mut scratch.lut, &mut scratch.qscores, sink);
            0
        }
    }
}

/// Verification for Above-θ (Alg. 1 line 16): computes exact inner products
/// for unverified candidates, filters everything against θ, and appends
/// result entries. Returns `(inner products computed, results emitted)`.
pub(crate) fn verify_above(
    bucket: &Bucket,
    ctx: &QueryCtx<'_>,
    sink: &Sink,
    query_id: u32,
    entries: &mut Vec<Entry>,
) -> (u64, u64) {
    let mut results = 0u64;
    for &lid in &sink.unverified {
        let l = lid as usize;
        // Original-scale operands: bit-identical to a naive scan.
        let value = kernels::dot(ctx.scaled, bucket.origs.vector(l));
        if value >= ctx.theta {
            entries.push(Entry { query: query_id, probe: bucket.ids[l], value });
            results += 1;
        }
    }
    for &(lid, value) in &sink.verified {
        if value >= ctx.theta {
            entries.push(Entry { query: query_id, probe: bucket.ids[lid as usize], value });
            results += 1;
        }
    }
    (sink.unverified.len() as u64, results)
}

/// Verification for Row-Top-k: exact inner products (with `‖q‖ = 1`
/// semantics, Sec. 4.5) offered to the running top-k heap. Candidates with
/// `lid < skip_below` were already pushed by the warm-up seeding and are
/// skipped to avoid duplicates. Returns inner products computed.
pub(crate) fn verify_topk(
    bucket: &Bucket,
    ctx: &QueryCtx<'_>,
    sink: &Sink,
    skip_below: usize,
    top: &mut TopK,
) -> u64 {
    let mut dots = 0u64;
    for &lid in &sink.unverified {
        let l = lid as usize;
        if l < skip_below {
            continue;
        }
        let value = kernels::dot(ctx.dir, bucket.origs.vector(l));
        dots += 1;
        top.push(bucket.ids[l] as usize, value);
    }
    for &(lid, value) in &sink.verified {
        if (lid as usize) < skip_below {
            continue;
        }
        top.push(bucket.ids[lid as usize] as usize, value);
    }
    dots
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::{BucketPolicy, ProbeBuckets};
    use lemp_data::synthetic::GeneratorConfig;
    use lemp_linalg::VectorStore;

    fn one_bucket(n: usize, seed: u64) -> ProbeBuckets {
        let store = GeneratorConfig::gaussian(n, 6, 0.3).generate(seed);
        let policy = BucketPolicy { min_bucket: n, length_ratio: 0.1, ..Default::default() };
        ProbeBuckets::build(&store, &policy)
    }

    #[test]
    fn ensure_for_builds_each_kind_once() {
        let mut pb = one_bucket(80, 1);
        let bucket = &mut pb.buckets_mut()[0];
        let cfg = RunConfig::default();
        let mut clock = BuildClock::default();
        for method in [
            ResolvedMethod::Length,
            ResolvedMethod::Coord(2),
            ResolvedMethod::Incr(3),
            ResolvedMethod::Ta,
            ResolvedMethod::Tree,
            ResolvedMethod::L2ap,
            ResolvedMethod::Blsh,
        ] {
            ensure_for(bucket, method, 0.5, &cfg, 7, &mut clock);
            ensure_for(bucket, method, 0.5, &cfg, 7, &mut clock); // idempotent
        }
        assert_eq!(clock.built, 6); // everything except Length
        assert!(clock.ns > 0);
        assert!(!needs_build(bucket, ResolvedMethod::Tree));
    }

    #[test]
    fn ensure_for_trains_quant_codebooks_once() {
        let mut pb = one_bucket(80, 2);
        let bucket = &mut pb.buckets_mut()[0];
        let cfg = RunConfig { quantize_bits: 8, ..Default::default() };
        let mut clock = BuildClock::default();
        ensure_for(bucket, ResolvedMethod::Quant, 0.5, &cfg, 7, &mut clock);
        ensure_for(bucket, ResolvedMethod::Quant, 0.5, &cfg, 7, &mut clock); // idempotent
        assert_eq!(clock.built, 1);
        assert!(!needs_build(bucket, ResolvedMethod::Quant));
    }

    #[test]
    fn verify_above_filters_spurious_candidates() {
        let store = VectorStore::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        let policy = BucketPolicy { min_bucket: 2, ..Default::default() };
        let pb = ProbeBuckets::build(&store, &policy);
        let bucket = &pb.buckets()[0];
        let dir = [1.0, 0.0];
        let ctx = QueryCtx {
            dir: &dir,
            len: 2.0,
            theta: 1.5,
            theta_over_len: 0.75,
            local_threshold: 0.75,
            scaled: &[2.0, 0.0],
        };
        let sink = Sink { unverified: vec![0, 1], verified: vec![] };
        let mut entries = Vec::new();
        let (dots, results) = verify_above(bucket, &ctx, &sink, 9, &mut entries);
        assert_eq!(dots, 2);
        assert_eq!(results, 1); // only the aligned probe reaches 2.0 ≥ 1.5
        assert_eq!(entries[0].query, 9);
        assert!((entries[0].value - 2.0).abs() < 1e-12);
    }

    #[test]
    fn verify_topk_skips_seeded_prefix() {
        let mut pb = one_bucket(10, 3);
        let bucket = &mut pb.buckets_mut()[0];
        let dir: Vec<f64> = bucket.dirs.vector(0).to_vec();
        let ctx = QueryCtx {
            dir: &dir,
            len: 1.0,
            theta: f64::NEG_INFINITY,
            theta_over_len: f64::NEG_INFINITY,
            local_threshold: f64::NEG_INFINITY,
            scaled: &dir,
        };
        let sink = Sink { unverified: (0..10).collect(), verified: vec![] };
        let mut top = TopK::new(10);
        let dots = verify_topk(bucket, &ctx, &sink, 3, &mut top);
        assert_eq!(dots, 7, "first three lids must be skipped");
        assert_eq!(top.len(), 7);
    }
}
