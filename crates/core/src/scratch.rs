//! Reusable per-query scratch state: the CP arrays of Sec. 4.2/4.3.
//!
//! Appendix A: "we avoid clearing the CP array when moving from one query
//! vector to the next. Instead, we keep the array uninitialized" — realized
//! here with epoch stamps: an entry whose stamp differs from the current
//! epoch is logically uninitialized, and starting a new query is a single
//! integer increment instead of an O(n) clear.

/// The candidate-pruning array of COORD (Fig. 4e): per local id, how many
/// focus-coordinate scan ranges contained the vector.
#[derive(Debug, Clone)]
pub struct CpArray {
    count: Vec<u16>,
    stamp: Vec<u32>,
    epoch: u32,
}

impl CpArray {
    /// An array for buckets of up to `n` vectors.
    pub fn new(n: usize) -> Self {
        Self { count: vec![0; n], stamp: vec![0; n], epoch: 0 }
    }

    /// Grows to accommodate `n` local ids (buckets vary in size; the scratch
    /// is sized for the largest seen so far).
    pub fn resize(&mut self, n: usize) {
        if n > self.count.len() {
            self.count.resize(n, 0);
            self.stamp.resize(n, 0);
        }
    }

    /// Starts a new query in O(1).
    pub fn begin(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Increments the counter of `lid` (implicitly from 0 on first touch).
    #[inline]
    pub fn bump(&mut self, lid: u32) {
        let i = lid as usize;
        if self.stamp[i] == self.epoch {
            self.count[i] += 1;
        } else {
            self.stamp[i] = self.epoch;
            self.count[i] = 1;
        }
    }

    /// Current count of `lid` (0 if untouched this query).
    #[inline]
    pub fn count(&self, lid: u32) -> u16 {
        let i = lid as usize;
        if self.stamp[i] == self.epoch {
            self.count[i]
        } else {
            0
        }
    }
}

/// The extended CP array of INCR (Fig. 4f): accumulates the partial inner
/// product `q̄_Fᵀp̄_F` and the partial squared norm `‖p̄_F‖²` per touched
/// vector, plus the touch list so candidates can be enumerated without
/// rescanning the index.
#[derive(Debug, Clone)]
pub struct ExtCpArray {
    acc: Vec<f64>,
    norm_sq: Vec<f64>,
    stamp: Vec<u32>,
    epoch: u32,
    touched: Vec<u32>,
}

impl ExtCpArray {
    /// An array for buckets of up to `n` vectors.
    pub fn new(n: usize) -> Self {
        Self {
            acc: vec![0.0; n],
            norm_sq: vec![0.0; n],
            stamp: vec![0; n],
            epoch: 0,
            touched: Vec::new(),
        }
    }

    /// Grows to accommodate `n` local ids.
    pub fn resize(&mut self, n: usize) {
        if n > self.acc.len() {
            self.acc.resize(n, 0.0);
            self.norm_sq.resize(n, 0.0);
            self.stamp.resize(n, 0);
        }
    }

    /// Starts a new query in O(1).
    pub fn begin(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.touched.clear();
    }

    /// Adds one focus-coordinate observation: `q̄_f · p̄_f` to the partial
    /// product, `p̄_f²` to the partial norm.
    #[inline]
    pub fn accumulate(&mut self, lid: u32, contrib: f64, value_sq: f64) {
        let i = lid as usize;
        if self.stamp[i] == self.epoch {
            self.acc[i] += contrib;
            self.norm_sq[i] += value_sq;
        } else {
            self.stamp[i] = self.epoch;
            self.acc[i] = contrib;
            self.norm_sq[i] = value_sq;
            self.touched.push(lid);
        }
    }

    /// Partial inner product and partial squared norm of `lid`.
    #[inline]
    pub fn get(&self, lid: u32) -> (f64, f64) {
        let i = lid as usize;
        if self.stamp[i] == self.epoch {
            (self.acc[i], self.norm_sq[i])
        } else {
            (0.0, 0.0)
        }
    }

    /// Vectors touched by at least one scan range this query.
    pub fn touched(&self) -> &[u32] {
        &self.touched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cp_array_counts_and_resets() {
        let mut cp = CpArray::new(4);
        cp.begin();
        cp.bump(1);
        cp.bump(1);
        cp.bump(3);
        assert_eq!(cp.count(1), 2);
        assert_eq!(cp.count(3), 1);
        assert_eq!(cp.count(0), 0);
        cp.begin();
        assert_eq!(cp.count(1), 0, "epoch reset must forget previous query");
        cp.bump(1);
        assert_eq!(cp.count(1), 1);
    }

    #[test]
    fn cp_array_epoch_wraparound() {
        let mut cp = CpArray::new(2);
        cp.epoch = u32::MAX - 1;
        cp.begin(); // reaches MAX
        cp.bump(0);
        assert_eq!(cp.count(0), 1);
        cp.begin(); // wraps: full clear, epoch restarts
        assert_eq!(cp.count(0), 0);
        cp.bump(0);
        assert_eq!(cp.count(0), 1);
    }

    #[test]
    fn ext_cp_accumulates_partials() {
        let mut e = ExtCpArray::new(6);
        e.begin();
        e.accumulate(1, 0.58 * 0.70, 0.58 * 0.58);
        e.accumulate(1, 0.50 * 0.51, 0.50 * 0.50);
        let (acc, nsq) = e.get(1);
        // Fig. 4f row for vector 1: q̄ᵀ_F p̄_F = 0.66, ‖p̄_F‖² = 0.59.
        assert!((acc - 0.661).abs() < 1e-9);
        assert!((nsq - 0.5864).abs() < 1e-9);
        assert_eq!(e.touched(), &[1]);
        assert_eq!(e.get(0), (0.0, 0.0));
    }

    #[test]
    fn ext_cp_begin_clears_touched() {
        let mut e = ExtCpArray::new(3);
        e.begin();
        e.accumulate(0, 1.0, 1.0);
        e.accumulate(2, 0.5, 0.25);
        assert_eq!(e.touched(), &[0, 2]);
        e.begin();
        assert!(e.touched().is_empty());
        assert_eq!(e.get(0), (0.0, 0.0));
    }

    #[test]
    fn resize_preserves_semantics() {
        let mut cp = CpArray::new(2);
        cp.begin();
        cp.bump(1);
        cp.resize(10);
        cp.bump(9);
        assert_eq!(cp.count(1), 1);
        assert_eq!(cp.count(9), 1);
        let mut e = ExtCpArray::new(1);
        e.begin();
        e.resize(5);
        e.accumulate(4, 0.1, 0.01);
        assert_eq!(e.touched(), &[4]);
    }
}
