//! The LEMP variants evaluated in the paper (Sec. 6.1) and per-bucket
//! method resolution.
//!
//! "We ran seven 'pure' versions of LEMP, in which only one method was used
//! within a bucket … We also ran the two mixed versions LEMP-LC (LENGTH and
//! COORD) and LEMP-LI (LENGTH and INCR), in which the appropriate retrieval
//! method is chosen as described in Sec. 4.4."

/// Which bucket method(s) a LEMP run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LempVariant {
    /// LEMP-L: pure LENGTH.
    L,
    /// LEMP-C: pure COORD.
    C,
    /// LEMP-I: pure INCR.
    I,
    /// LEMP-LC: LENGTH below the tuned `t_b`, COORD above.
    LC,
    /// LEMP-LI: LENGTH below the tuned `t_b`, INCR above — the paper's
    /// overall winner.
    LI,
    /// LEMP-TA: Fagin's threshold algorithm per bucket.
    Ta,
    /// LEMP-Tree: a cover tree per bucket.
    Tree,
    /// LEMP-L2AP: an L2AP index per bucket.
    L2ap,
    /// LEMP-BLSH: BayesLSH-Lite signature pruning (approximate).
    Blsh,
}

impl LempVariant {
    /// All nine variants, in the order of the paper's Tables 5–6.
    pub fn all() -> [LempVariant; 9] {
        [
            LempVariant::L,
            LempVariant::LI,
            LempVariant::LC,
            LempVariant::I,
            LempVariant::C,
            LempVariant::Ta,
            LempVariant::Tree,
            LempVariant::L2ap,
            LempVariant::Blsh,
        ]
    }

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            LempVariant::L => "LEMP-L",
            LempVariant::C => "LEMP-C",
            LempVariant::I => "LEMP-I",
            LempVariant::LC => "LEMP-LC",
            LempVariant::LI => "LEMP-LI",
            LempVariant::Ta => "LEMP-TA",
            LempVariant::Tree => "LEMP-Tree",
            LempVariant::L2ap => "LEMP-L2AP",
            LempVariant::Blsh => "LEMP-BLSH",
        }
    }

    /// `true` for the variants whose results may miss an ε fraction of true
    /// entries (only BLSH).
    pub fn is_approximate(&self) -> bool {
        matches!(self, LempVariant::Blsh)
    }

    /// Does the variant use a coordinate method whose φ must be tuned?
    pub(crate) fn needs_phi(&self) -> bool {
        matches!(self, LempVariant::C | LempVariant::I | LempVariant::LC | LempVariant::LI)
    }

    /// Does the variant mix LENGTH with a coordinate method via `t_b`?
    pub(crate) fn needs_tb(&self) -> bool {
        matches!(self, LempVariant::LC | LempVariant::LI)
    }

    /// Is the coordinate method INCR (vs COORD)?
    pub(crate) fn coord_is_incr(&self) -> bool {
        matches!(self, LempVariant::I | LempVariant::LI)
    }
}

/// Per-bucket tuned parameters (Sec. 4.4): the LENGTH/coordinate switch
/// threshold `t_b` and the number of sorted lists to scan `φ_b`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunedParams {
    /// Use LENGTH whenever `θ_b(q) < t_b`.
    pub tb: f64,
    /// Focus-set size for COORD/INCR.
    pub phi: usize,
    /// Run the quantized LUT scan for this bucket instead of the variant's
    /// method (set by the tuner when the engine was built with
    /// `quantize=<bits>` and the compressed scan timed faster).
    pub quant: bool,
}

impl Default for TunedParams {
    fn default() -> Self {
        // Untuned fallback: always the coordinate method, two lists.
        Self { tb: 0.0, phi: 2, quant: false }
    }
}

/// The method actually executed for one (query, bucket) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ResolvedMethod {
    Length,
    Coord(usize),
    Incr(usize),
    Ta,
    Tree,
    L2ap,
    Blsh,
    /// The quantized LUT scan over packed codes (candidates re-verified
    /// against full-precision vectors by the shared verification step).
    Quant,
}

/// Resolves the variant + tuned parameters + local threshold into a method.
/// Appendix A: "we use COORD instead of INCR whenever φ_b = 1" (identical
/// candidates, cheaper scan). A bucket the tuner marked `quant` always runs
/// the quantized LUT scan — its candidates are a verified superset of any
/// exact method's answers, so the override is safe for every variant.
pub(crate) fn resolve(variant: LempVariant, tuned: &TunedParams, theta_b: f64) -> ResolvedMethod {
    if tuned.quant {
        return ResolvedMethod::Quant;
    }
    let coord_method = |phi: usize, incr: bool| {
        if incr && phi > 1 {
            ResolvedMethod::Incr(phi)
        } else {
            ResolvedMethod::Coord(phi.max(1))
        }
    };
    match variant {
        LempVariant::L => ResolvedMethod::Length,
        LempVariant::C => coord_method(tuned.phi, false),
        LempVariant::I => coord_method(tuned.phi, true),
        LempVariant::LC => {
            if theta_b < tuned.tb {
                ResolvedMethod::Length
            } else {
                coord_method(tuned.phi, false)
            }
        }
        LempVariant::LI => {
            if theta_b < tuned.tb {
                ResolvedMethod::Length
            } else {
                coord_method(tuned.phi, true)
            }
        }
        LempVariant::Ta => ResolvedMethod::Ta,
        LempVariant::Tree => ResolvedMethod::Tree,
        LempVariant::L2ap => ResolvedMethod::L2ap,
        LempVariant::Blsh => ResolvedMethod::Blsh,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_paper_styled() {
        let names: Vec<&str> = LempVariant::all().iter().map(|v| v.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 9);
        assert!(names.iter().all(|n| n.starts_with("LEMP-")));
    }

    #[test]
    fn hybrid_resolution_switches_on_tb() {
        let tuned = TunedParams { tb: 0.5, phi: 3, quant: false };
        assert_eq!(resolve(LempVariant::LI, &tuned, 0.4), ResolvedMethod::Length);
        assert_eq!(resolve(LempVariant::LI, &tuned, 0.6), ResolvedMethod::Incr(3));
        assert_eq!(resolve(LempVariant::LC, &tuned, 0.4), ResolvedMethod::Length);
        assert_eq!(resolve(LempVariant::LC, &tuned, 0.6), ResolvedMethod::Coord(3));
    }

    #[test]
    fn incr_with_phi_one_degrades_to_coord() {
        let tuned = TunedParams { tb: 0.0, phi: 1, quant: false };
        assert_eq!(resolve(LempVariant::I, &tuned, 0.9), ResolvedMethod::Coord(1));
        assert_eq!(resolve(LempVariant::LI, &tuned, 0.9), ResolvedMethod::Coord(1));
    }

    #[test]
    fn pure_variants_ignore_tb() {
        let tuned = TunedParams { tb: 0.99, phi: 2, quant: false };
        assert_eq!(resolve(LempVariant::C, &tuned, 0.01), ResolvedMethod::Coord(2));
        assert_eq!(resolve(LempVariant::L, &tuned, 0.99), ResolvedMethod::Length);
        assert_eq!(resolve(LempVariant::Ta, &tuned, 0.5), ResolvedMethod::Ta);
    }

    #[test]
    fn quant_flag_overrides_every_variant() {
        let tuned = TunedParams { tb: 0.5, phi: 3, quant: true };
        for v in LempVariant::all() {
            assert_eq!(resolve(v, &tuned, 0.9), ResolvedMethod::Quant);
            assert_eq!(resolve(v, &tuned, 0.1), ResolvedMethod::Quant);
        }
    }

    #[test]
    fn only_blsh_is_approximate() {
        for v in LempVariant::all() {
            assert_eq!(v.is_approximate(), matches!(v, LempVariant::Blsh));
        }
    }
}
