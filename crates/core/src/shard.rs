//! Horizontal sharding: one logical LEMP engine over `S` independent
//! shard engines, with an exact merge layer.
//!
//! LEMP's bucketization (Sec. 3) partitions the probe vectors by length,
//! and nothing in the pruning logic requires all buckets to live in one
//! engine: any partition of the probe set can be queried shard-by-shard
//! and merged exactly. [`ShardedLemp`] exploits that for *shard-level
//! parallelism* — a single query batch fans out across every shard on the
//! engine's thread pool — and as the stepping stone toward multi-process
//! and multi-host deployments (each shard is a self-contained, separately
//! persistable [`DynamicLemp`]).
//!
//! # Routed edits
//!
//! Shards are dynamic engines, so the sharded engine absorbs probe churn:
//! [`ShardedLemp::insert`] allocates the next **global** id and routes the
//! vector to a shard deterministically
//! ([`ShardPolicyKind::route_insert`]: `id mod S` for round-robin and
//! explicit engines, fixed length bands captured at build time for
//! length-banded ones — the same id always lands on the same shard).
//! [`ShardedLemp::remove`] and [`ShardedLemp::rebuild`] forward to the
//! owning shard ([`ShardedLemp::owner_of`]). Global-id uniqueness holds by
//! construction (one watermark allocator, disjoint routing) and is still
//! enforced at the merge layer by [`ShardError::DuplicateGlobalId`] and at
//! load time by [`ShardedLemp::from_shards`]. Edits re-index only the
//! touched shard (warm shards stay warm, exactly as in
//! [`DynamicLemp::insert`]) and staleness-stamp only that shard's
//! [`PlanSegment`] — plans refresh cheaply via
//! [`Engine::refresh_plan`], which recompiles just the stale segments.
//!
//! # Exactness across the merge boundary
//!
//! Each shard's buckets carry **global** probe ids (the shard engines are
//! built over their slice of the probe matrix and then relabeled), so
//! shard outputs need no translation layer:
//!
//! * **Above-θ** (and |Above-θ|): a probe either is or is not in a shard;
//!   the global result is the *concatenation* of per-shard results, entry
//!   values bit-identical to the unsharded engine (verification computes
//!   inner products on the original vectors in both).
//! * **Row-Top-k** (and the floored variant): each shard returns its local
//!   top-k per query; the global top-k is a per-query **k-way heap merge**
//!   of the shard-local lists ([`kway_merge_topk`]), ordered by descending
//!   score with ties broken by ascending global id. Scores are
//!   bit-identical to the unsharded engine; at a tied k-boundary the
//!   retained *ids* may legally differ between any two exact engines (the
//!   same caveat as between LEMP and Naive), never the retained scores.
//! * **Adaptive selection**: per-shard selectors carry the learning state;
//!   results are exact regardless of what the bandits chose.
//!
//! The differential conformance suite
//! (`crates/core/tests/sharding_conformance.rs`) pins this down: for every
//! method and `S ∈ {1, 2, 3, 7}` under every [`ShardPolicy`], the sharded
//! engine must agree with the unsharded engine and with the naive scan —
//! including ties at the k-boundary and `θ` exactly equal to a score.
//!
//! # Partitioning
//!
//! [`ShardPolicy`] picks the partition. `RoundRobin` balances shard sizes
//! regardless of the length distribution; `LengthBanded` gives each shard
//! a contiguous band of the length-sorted probes (shard 0 the longest), so
//! under Row-Top-k workloads the short-band shards prune early and shard 0
//! does the seeding work — mirroring the paper's bucket layout at the
//! shard level; `Explicit` accepts any externally computed assignment
//! (e.g. a routing table from a placement optimizer).
//!
//! # Persistence
//!
//! [`ShardedLemp::save`] writes a `LEMPSHD2` manifest: the shard map
//! header (policy kind, shard count, the fixed routing bands) plus every
//! shard's ordinary `LEMPDYN1` dynamic-engine image, length-prefixed — so
//! id watermarks and dead ids survive the round trip and edits continue
//! seamlessly after a load. Loading re-validates each embedded image with
//! the full single-engine checks *and* the cross-shard invariants (equal
//! dimensionality, globally disjoint probe ids). Legacy `LEMPSHD1`
//! manifests (immutable `LEMPENG1` shards) still load — each shard is
//! wrapped as a dynamic engine with the default bucket policy — and
//! legacy single-shard `.eng` files keep loading through [`Lemp::load`];
//! the formats are distinguished by magic (see [`is_sharded_image`]).

use std::cmp::Ordering;
use std::collections::HashSet;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use lemp_linalg::{kernels, LinalgError, ScoredItem, VectorStore};

use crate::adaptive::{self, AdaptiveConfig, AdaptiveSelector};
use crate::algos::MethodScratch;
use crate::bucket::BucketPolicy;
use crate::dynamic::DynamicLemp;
use crate::exec::RunConfig;
use crate::persist::{expect_eof, read_f64, read_u64, write_f64, write_u64, PersistError};
use crate::plan::{
    self, Engine, PlanSegment, Planner, QueryKind, QueryPlan, QueryRequest, QueryResponse, Scratch,
};
use crate::runner::{self, AboveThetaOutput, RunStats, TopKOutput};
use crate::variant::{LempVariant, TunedParams};
use crate::{Lemp, WarmGoal, WarmReport};

/// How probe rows are assigned to shards.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardPolicy {
    /// Row `i` goes to shard `i mod S`: balanced sizes, length-agnostic.
    RoundRobin,
    /// The probes are sorted by decreasing length and cut into `S`
    /// near-equal contiguous bands; shard 0 holds the longest band. The
    /// shard-level analogue of LEMP's own bucketization.
    LengthBanded,
    /// Explicit per-row shard assignment (`assignment[i] < S` for all
    /// rows). For routing tables computed outside the engine.
    Explicit(Vec<u32>),
}

impl ShardPolicy {
    fn kind(&self) -> ShardPolicyKind {
        match self {
            ShardPolicy::RoundRobin => ShardPolicyKind::RoundRobin,
            ShardPolicy::LengthBanded => ShardPolicyKind::LengthBanded,
            ShardPolicy::Explicit(_) => ShardPolicyKind::Explicit,
        }
    }

    /// Global row ids per shard. Rows within a shard keep the order the
    /// policy produces; the shard engine re-sorts by length anyway.
    fn partition(&self, probes: &VectorStore, shards: usize) -> Vec<Vec<usize>> {
        let n = probes.len();
        let mut rows: Vec<Vec<usize>> = vec![Vec::new(); shards];
        match self {
            ShardPolicy::RoundRobin => {
                for i in 0..n {
                    rows[i % shards].push(i);
                }
            }
            ShardPolicy::LengthBanded => {
                let lengths = probes.lengths();
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by(|&a, &b| lengths[b].total_cmp(&lengths[a]).then(a.cmp(&b)));
                let band = n.div_ceil(shards).max(1);
                for (pos, &row) in order.iter().enumerate() {
                    rows[(pos / band).min(shards - 1)].push(row);
                }
            }
            ShardPolicy::Explicit(assignment) => {
                assert_eq!(
                    assignment.len(),
                    n,
                    "explicit shard assignment must cover every probe row"
                );
                for (i, &s) in assignment.iter().enumerate() {
                    assert!(
                        (s as usize) < shards,
                        "explicit assignment routes row {i} to shard {s}, only {shards} shards"
                    );
                    rows[s as usize].push(i);
                }
            }
        }
        rows
    }
}

/// The partitioning family of a (possibly loaded) sharded engine. A loaded
/// `Explicit` engine keeps its partition (it is embedded in the shard
/// contents) without retaining the original assignment vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPolicyKind {
    /// Built with [`ShardPolicy::RoundRobin`].
    RoundRobin,
    /// Built with [`ShardPolicy::LengthBanded`].
    LengthBanded,
    /// Built with [`ShardPolicy::Explicit`].
    Explicit,
}

impl ShardPolicyKind {
    /// **Deterministic insert routing**: the shard a freshly allocated
    /// global `id` with vector length `len` lands on. Round-robin and
    /// explicit engines place by `id mod shards` (for round-robin this
    /// extends the build-time assignment exactly); length-banded engines
    /// place by the fixed band boundaries captured when the engine was
    /// built (`bands[i]` is the lowest length band `i` covers, so the
    /// vector goes to the first band that reaches down to `len`). The same
    /// `(id, len)` always routes to the same shard — replaying an edit
    /// sequence reproduces the exact same placement.
    pub fn route_insert(self, id: u32, len: f64, bands: &[f64], shards: usize) -> usize {
        debug_assert!(shards >= 1);
        match self {
            // `bands` is non-increasing; the partition point counts the
            // bands whose floor lies strictly above `len`.
            ShardPolicyKind::LengthBanded => {
                bands.partition_point(|&b| b > len).min(shards.saturating_sub(1))
            }
            _ => (id as usize) % shards,
        }
    }

    /// **Closed-form ownership**, when the policy defines one: round-robin
    /// placement is `id mod shards` for build rows and routed inserts
    /// alike, so the owner is computable without consulting the shards.
    /// Length-banded and explicit placements depend on engine state
    /// (vector lengths / an external table); resolve those through
    /// [`ShardedLemp::owner_of`], which scans shard membership.
    pub fn owner_of(self, id: u32, shards: usize) -> Option<usize> {
        match self {
            ShardPolicyKind::RoundRobin => Some((id as usize) % shards.max(1)),
            _ => None,
        }
    }
}

fn kind_tag(kind: ShardPolicyKind) -> u8 {
    match kind {
        ShardPolicyKind::RoundRobin => 0,
        ShardPolicyKind::LengthBanded => 1,
        ShardPolicyKind::Explicit => 2,
    }
}

fn kind_from_tag(tag: u8) -> Result<ShardPolicyKind, PersistError> {
    Ok(match tag {
        0 => ShardPolicyKind::RoundRobin,
        1 => ShardPolicyKind::LengthBanded,
        2 => ShardPolicyKind::Explicit,
        other => return Err(PersistError::Format(format!("unknown shard policy tag {other}"))),
    })
}

/// Errors of the exact merge layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// The same global probe id appeared in more than one shard-local
    /// list — the shards do not partition the probe set.
    DuplicateGlobalId(usize),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::DuplicateGlobalId(id) => {
                write!(f, "global probe id {id} appears in more than one shard list")
            }
        }
    }
}

impl std::error::Error for ShardError {}

/// One entry of the k-way merge heap: the current head of `list`.
struct MergeHead {
    score: f64,
    id: usize,
    list: usize,
    pos: usize,
}

impl PartialEq for MergeHead {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for MergeHead {}
impl PartialOrd for MergeHead {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MergeHead {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: larger score wins; among ties the *smaller* id wins.
        self.score.total_cmp(&other.score).then_with(|| other.id.cmp(&self.id))
    }
}

/// Exact k-way merge of shard-local top-k lists: the global top-k of the
/// concatenation, sorted by descending score with ties broken by ascending
/// global id (the same canonical order as a single engine's
/// [`lemp_linalg::TopK::drain_sorted`]). Each input list is normalized to
/// that order first, so arbitrary within-tie input orders are accepted;
/// `k` larger than the total candidate count returns everything.
///
/// # Errors
/// [`ShardError::DuplicateGlobalId`] if any global id appears in more than
/// one input item — shard outputs must partition the probe set. (The
/// engine's own merge path skips this scan: disjointness is a structural
/// invariant enforced when a [`ShardedLemp`] is built or loaded.)
pub fn kway_merge_topk(
    lists: Vec<Vec<ScoredItem>>,
    k: usize,
) -> Result<Vec<ScoredItem>, ShardError> {
    let total: usize = lists.iter().map(Vec::len).sum();
    let mut seen = HashSet::with_capacity(total);
    for item in lists.iter().flatten() {
        if !seen.insert(item.id) {
            return Err(ShardError::DuplicateGlobalId(item.id));
        }
    }
    Ok(merge_disjoint(lists, k))
}

/// The merge itself, assuming globally disjoint ids (checked only in debug
/// builds) — the per-query hot path of [`ShardedLemp::row_top_k_shared`],
/// which never allocates the duplicate-scan hash set.
fn merge_disjoint(mut lists: Vec<Vec<ScoredItem>>, k: usize) -> Vec<ScoredItem> {
    debug_assert!(
        {
            let mut seen = HashSet::new();
            lists.iter().flatten().all(|item| seen.insert(item.id))
        },
        "shard-local lists must hold globally disjoint ids"
    );
    let total: usize = lists.iter().map(Vec::len).sum();
    for list in &mut lists {
        // Already sorted by descending score (shard output); the re-sort
        // only canonicalizes within-tie id order, so it is near-linear.
        list.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.id.cmp(&b.id)));
    }
    let take = k.min(total);
    let mut out = Vec::with_capacity(take);
    if take == 0 {
        return out;
    }
    let mut heap = std::collections::BinaryHeap::with_capacity(lists.len());
    for (li, list) in lists.iter().enumerate() {
        if let Some(item) = list.first() {
            heap.push(MergeHead { score: item.score, id: item.id, list: li, pos: 0 });
        }
    }
    while out.len() < take {
        let head = heap.pop().expect("heap holds a head while items remain");
        out.push(ScoredItem { id: head.id, score: head.score });
        if let Some(next) = lists[head.list].get(head.pos + 1) {
            heap.push(MergeHead {
                score: next.score,
                id: next.id,
                list: head.list,
                pos: head.pos + 1,
            });
        }
    }
    out
}

/// Fans per-shard work `chunks` out across scoped threads, one worker per
/// chunk; each worker runs `f` over its chunk serially and the results are
/// flattened back in shard order. A single chunk runs inline — the serial
/// path spawns nothing. Shared by [`ShardedLemp::warm`] (mutable chunks)
/// and the query fan-out (shared chunks + scratch slices).
fn fan_out_chunks<C: Send, T: Send>(chunks: Vec<C>, f: impl Fn(C) -> Vec<T> + Sync) -> Vec<T> {
    if chunks.len() <= 1 {
        return chunks.into_iter().flat_map(f).collect();
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks.into_iter().map(|c| scope.spawn(move || f(c))).collect();
        handles.into_iter().flat_map(|h| h.join().expect("shard worker panicked")).collect()
    })
}

/// Per-shard scratch for the shared (`&self`) query path of a
/// [`ShardedLemp`] — one [`MethodScratch`] per shard, handed out disjointly
/// to the fan-out workers. One `ShardScratch` per querying thread.
#[derive(Debug)]
pub struct ShardScratch {
    per_shard: Vec<MethodScratch>,
}

/// Builder for [`ShardedLemp`].
#[derive(Debug, Clone)]
pub struct ShardedLempBuilder {
    shards: usize,
    policy: ShardPolicy,
    bucket_policy: BucketPolicy,
    config: RunConfig,
}

impl Default for ShardedLempBuilder {
    fn default() -> Self {
        Self {
            shards: 1,
            policy: ShardPolicy::RoundRobin,
            bucket_policy: BucketPolicy::default(),
            config: RunConfig::default(),
        }
    }
}

impl ShardedLempBuilder {
    /// Number of shards (≥ 1; default 1).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Partitioning policy (default [`ShardPolicy::RoundRobin`]).
    pub fn policy(mut self, policy: ShardPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Bucket method(s) of every shard engine; default [`LempVariant::LI`].
    pub fn variant(mut self, variant: LempVariant) -> Self {
        self.config.variant = variant;
        self
    }

    /// Tuner sample size of every shard engine (Sec. 4.4; default 50).
    pub fn sample_size(mut self, sample: usize) -> Self {
        self.config.sample_size = sample;
        self
    }

    /// Quantized probe codes for every shard engine: `bits` per subspace
    /// code (1..=16), or 0 to disable (the default). See
    /// [`LempBuilder::quantize`](crate::LempBuilder::quantize).
    pub fn quantize(mut self, bits: u8) -> Self {
        assert!(bits <= crate::quant::MAX_QUANT_BITS, "quantize bits must be ≤ 16, got {bits}");
        self.config.quantize_bits = bits;
        self
    }

    /// Forces the quantized LUT scan in every shard engine (see
    /// [`RunConfig::quantize_force`]). No effect without
    /// [`quantize`](Self::quantize).
    pub fn quantize_force(mut self, force: bool) -> Self {
        self.config.quantize_force = force;
        self
    }

    /// Threads for the **shard fan-out** (shard engines themselves run
    /// single-threaded; parallelism comes from querying shards
    /// concurrently). Default 1 = serial shard sweep.
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads.max(1);
        self
    }

    /// Bucketization policy of every shard engine.
    pub fn bucket_policy(mut self, policy: BucketPolicy) -> Self {
        self.bucket_policy = policy;
        self
    }

    /// Partitions `probes` and builds one dynamic engine per shard. Bucket
    /// ids inside every shard are relabeled to the **global** row ids, so
    /// shard outputs merge without translation; for length-banded engines
    /// the band boundaries are captured here, once, and govern every
    /// future routed insert (placement stays deterministic across edits
    /// and rebuilds).
    pub fn build(self, probes: &VectorStore) -> ShardedLemp {
        let fan_out = self.config.threads;
        // Shard engines stay single-threaded: the sharded layer owns the
        // parallelism (one worker per shard), and nesting thread pools
        // would oversubscribe the cores.
        let shard_config = RunConfig { threads: 1, ..self.config };
        let kind = self.policy.kind();
        let rows_per_shard = self.policy.partition(probes, self.shards);
        let shards: Vec<DynamicLemp> = rows_per_shard
            .iter()
            .map(|rows| {
                let sub = probes.select(rows);
                let mut engine = Lemp::builder()
                    .policy(self.bucket_policy)
                    .variant(shard_config.variant)
                    .sample_size(shard_config.sample_size)
                    .tree_base(shard_config.tree_base)
                    .blsh(shard_config.blsh_bits, shard_config.blsh_eps)
                    .quantize(shard_config.quantize_bits)
                    .quantize_force(shard_config.quantize_force)
                    .build(&sub);
                // Relabel local row ids (0..rows.len()) to global ids.
                for bucket in engine.buckets_mut().buckets_mut() {
                    for slot in &mut bucket.ids {
                        *slot = rows[*slot as usize] as u32;
                    }
                }
                DynamicLemp::from_engine(engine, self.bucket_policy)
            })
            .collect();
        let bands = compute_bands(&shards, kind);
        ShardedLemp { shards, kind, bands, fan_out, dim: probes.dim() }
    }
}

/// The fixed routing bands of a length-banded engine: `bands[i]` is the
/// lowest vector length shard `i` covers (`i < S-1`; the last shard takes
/// everything shorter). Derived from the shard contents at build/load time
/// and never recomputed — routed placement must stay deterministic while
/// edits reshape the shards. Empty shards inherit the previous boundary
/// (an empty shard 0 gets `+∞`, i.e. routes nothing), keeping the band
/// vector non-increasing.
fn compute_bands(shards: &[DynamicLemp], kind: ShardPolicyKind) -> Vec<f64> {
    if kind != ShardPolicyKind::LengthBanded || shards.len() <= 1 {
        return Vec::new();
    }
    let mut bands = Vec::with_capacity(shards.len() - 1);
    let mut prev = f64::INFINITY;
    for shard in &shards[..shards.len() - 1] {
        let floor = shard.buckets().buckets().last().map_or(prev, |b| b.min_len);
        let floor = floor.min(prev);
        bands.push(floor);
        prev = floor;
    }
    bands
}

/// A shard-parallel LEMP engine: `S` independently warmed [`DynamicLemp`]
/// shards behind an exact merge layer, with deterministic edit routing.
/// After [`ShardedLemp::warm`] all query methods run through `&self` with
/// a caller-owned [`ShardScratch`], so one sharded engine serves any
/// number of threads concurrently — exactly like [`Lemp`], scaled out —
/// while [`ShardedLemp::insert`]/[`ShardedLemp::remove`] (under the
/// caller's write exclusivity) route edits to the owning shard and keep
/// warm shards warm.
///
/// ```
/// use lemp_core::shard::{ShardPolicy, ShardedLemp};
/// use lemp_core::WarmGoal;
/// use lemp_linalg::VectorStore;
///
/// let probes = VectorStore::from_rows(&[
///     vec![3.0, 0.0],
///     vec![0.0, 2.0],
///     vec![1.0, 1.0],
/// ]).unwrap();
/// let queries = VectorStore::from_rows(&[vec![1.0, 0.5]]).unwrap();
/// let mut engine = ShardedLemp::builder()
///     .shards(2)
///     .policy(ShardPolicy::LengthBanded)
///     .build(&probes);
/// engine.warm(&queries, WarmGoal::TopK(2));
/// let mut scratch = engine.make_scratch();
/// let top = engine.row_top_k_shared(&queries, 2, &mut scratch);
/// assert_eq!(top.lists[0][0].id, 0); // global ids, merged exactly
/// ```
#[derive(Debug)]
pub struct ShardedLemp {
    /// One dynamic engine per shard; bucket ids are global probe ids.
    shards: Vec<DynamicLemp>,
    kind: ShardPolicyKind,
    /// Fixed routing bands of a length-banded engine (see
    /// [`compute_bands`]); empty for every other policy.
    bands: Vec<f64>,
    fan_out: usize,
    dim: usize,
}

impl ShardedLemp {
    /// Builder with all defaults (1 shard, round-robin, LEMP-LI).
    pub fn builder() -> ShardedLempBuilder {
        ShardedLempBuilder::default()
    }

    /// Round-robin sharded engine over `probes` with all other defaults.
    pub fn new(probes: &VectorStore, shards: usize) -> Self {
        Self::builder().shards(shards).build(probes)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total number of **live** probe vectors across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(DynamicLemp::len).sum()
    }

    /// `true` if no shard holds any live probes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Live probe count per shard (the shard map, in shard order) — reads
    /// the engines, so it stays accurate under edits.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(DynamicLemp::len).collect()
    }

    /// Total bucket count across all shards.
    pub fn bucket_count(&self) -> usize {
        self.shards.iter().map(DynamicLemp::bucket_count).sum()
    }

    /// The partitioning family this engine was built (or loaded) with.
    pub fn policy_kind(&self) -> ShardPolicyKind {
        self.kind
    }

    /// The fixed routing bands of a length-banded engine (empty for other
    /// policies): `bands[i]` is the lowest length shard `i` covers.
    pub fn bands(&self) -> &[f64] {
        &self.bands
    }

    /// The shard engines (inspection / tests). Bucket ids are global.
    pub fn shards(&self) -> &[DynamicLemp] {
        &self.shards
    }

    /// Per-shard probe residency: full-precision direction bytes vs
    /// quantized code+codebook bytes (see
    /// [`MemoryUsage`](crate::bucket::MemoryUsage)). One entry per shard,
    /// in shard order.
    pub fn memory_usage(&self) -> Vec<crate::bucket::MemoryUsage> {
        self.shards.iter().map(DynamicLemp::memory_usage).collect()
    }

    /// The id the next [`ShardedLemp::insert`] will return: the **global**
    /// watermark, i.e. the maximum of the shard watermarks (every
    /// allocated id raised its owner's watermark past itself, and
    /// watermarks never shrink).
    pub fn next_id(&self) -> u32 {
        self.shards.iter().map(DynamicLemp::next_id).max().unwrap_or(0)
    }

    /// Whether `id` refers to a live probe in any shard.
    pub fn contains(&self, id: u32) -> bool {
        self.shards.iter().any(|s| s.contains(id))
    }

    /// The shard that holds the **live** probe `id`, or `None` when the id
    /// is dead or unallocated. Round-robin ownership is closed-form
    /// ([`ShardPolicyKind::owner_of`]); other policies scan shard
    /// membership (`S` constant-time lookups).
    pub fn owner_of(&self, id: u32) -> Option<usize> {
        match self.kind.owner_of(id, self.shards.len()) {
            Some(s) => self.shards[s].contains(id).then_some(s),
            None => self.shards.iter().position(|s| s.contains(id)),
        }
    }

    /// **Pure routing preview**: the `(id, shard)` the next insert of `v`
    /// will produce, without mutating anything — how a write-ahead-logging
    /// store records an insert's placement *before* applying it. The
    /// vector must already be validated (finite, right dimensionality).
    pub fn route_insert(&self, v: &[f64]) -> (u32, usize) {
        let id = self.next_id();
        let shard = self.kind.route_insert(id, kernels::norm(v), &self.bands, self.shards.len());
        (id, shard)
    }

    /// **Routed insert**: allocates the next global id, routes it to its
    /// shard ([`ShardPolicyKind::route_insert`]) and inserts there
    /// ([`DynamicLemp::insert_with_id`]). A warm engine stays warm — only
    /// the touched shard re-indexes, and only its [`PlanSegment`] goes
    /// stale. Returns the stable global id.
    ///
    /// # Errors
    /// [`LinalgError::DimMismatch`] on wrong dimensionality and
    /// [`LinalgError::NonFinite`] if any coordinate is NaN or infinite
    /// (nothing changes on error).
    pub fn insert(&mut self, v: &[f64]) -> Result<u32, LinalgError> {
        if v.len() != self.dim {
            return Err(LinalgError::DimMismatch { left: self.dim, right: v.len() });
        }
        if let Some(index) = v.iter().position(|x| !x.is_finite()) {
            return Err(LinalgError::NonFinite { index });
        }
        let (id, shard) = self.route_insert(v);
        let got = self.shards[shard].insert_with_id(id, v)?;
        debug_assert_eq!(got, id);
        Ok(id)
    }

    /// **Routed removal**: forwards to the owning shard
    /// ([`ShardedLemp::owner_of`]); returns whether the id was live. A
    /// dead or unallocated id is a no-op.
    pub fn remove(&mut self, id: u32) -> bool {
        match self.owner_of(id) {
            Some(s) => self.shards[s].remove(id),
            None => false,
        }
    }

    /// **Per-shard rebuild** ([`DynamicLemp::rebuild`] on every shard,
    /// fanned out across the thread pool): compacts each shard's
    /// bucketization in place. Stable ids, shard placement and the routing
    /// bands are all preserved — rebuilds never re-route probes, so
    /// placement stays deterministic.
    pub fn rebuild(&mut self) {
        let chunk = self.chunk_size();
        fan_out_chunks(self.shards.chunks_mut(chunk).collect(), |shards: &mut [DynamicLemp]| {
            shards.iter_mut().map(DynamicLemp::rebuild).collect::<Vec<()>>()
        });
    }

    /// Overrides the shard fan-out thread count (shard engines themselves
    /// stay single-threaded).
    pub fn set_threads(&mut self, threads: usize) {
        self.fan_out = threads.max(1);
    }

    /// **Warms every shard** ([`Lemp::warm`] per shard, fanned out across
    /// the thread pool); afterwards the `*_shared` methods answer through
    /// `&self`. Reports are summed.
    ///
    /// # Panics
    /// If the sample dimensionality differs from the probe dimensionality.
    pub fn warm(&mut self, sample: &VectorStore, goal: WarmGoal) -> WarmReport {
        assert_eq!(sample.dim(), self.dim, "query/probe dimensionality mismatch");
        let chunk = self.chunk_size();
        let reports: Vec<WarmReport> = fan_out_chunks(
            self.shards.chunks_mut(chunk).collect(),
            |shards: &mut [DynamicLemp]| shards.iter_mut().map(|s| s.warm(sample, goal)).collect(),
        );
        let mut report = WarmReport::default();
        for r in reports {
            report.indexes_built += r.indexes_built;
            report.build_ns += r.build_ns;
            report.tune_ns += r.tune_ns;
        }
        report
    }

    /// Whether [`ShardedLemp::warm`] has run (the `*_shared` methods are
    /// usable). Warmth lives in the shards and survives edits — an insert
    /// or removal re-indexes the touched shard inside the edit.
    pub fn is_warm(&self) -> bool {
        self.shards.iter().all(DynamicLemp::is_warm)
    }

    /// A [`ShardScratch`] sized for this engine (one per querying thread).
    /// Scratch grows on demand, so it stays valid as edits reshape the
    /// shards.
    pub fn make_scratch(&self) -> ShardScratch {
        ShardScratch { per_shard: self.shards.iter().map(DynamicLemp::make_scratch).collect() }
    }

    /// Fresh per-shard selectors for the adaptive drivers, aligned with
    /// the shard list.
    pub fn adaptive_selectors(&self, acfg: &AdaptiveConfig) -> Vec<AdaptiveSelector> {
        self.shards.iter().map(|s| s.adaptive_selector(acfg)).collect()
    }

    /// Every live vector with its global id, concatenated shard by shard
    /// (mirrors [`DynamicLemp::live_vectors`]) — `ids[i]` is the stable
    /// global id of row `i` in the returned store.
    pub fn live_vectors(&self) -> (Vec<u32>, VectorStore) {
        let mut ids = Vec::with_capacity(self.len());
        let mut store = VectorStore::empty(self.dim).expect("dim > 0");
        for shard in &self.shards {
            let (shard_ids, vectors) = shard.live_vectors();
            for (i, &id) in shard_ids.iter().enumerate() {
                ids.push(id);
                store.push(vectors.vector(i)).expect("same dimensionality");
            }
        }
        (ids, store)
    }

    /// Exactly `min(max, len)` probe vectors, strided across every shard's
    /// buckets — a warming sample that covers the whole length spectrum
    /// when no query sample is at hand (mirrors the serving layer's
    /// self-sample). Shards are visited smallest first, so budget a small
    /// shard cannot use is always redistributed to a larger one and the
    /// count comes out exact regardless of shard-size skew.
    pub fn sample_vectors(&self, max: usize) -> VectorStore {
        let mut store = VectorStore::empty(self.dim).expect("dim > 0");
        let total = self.len();
        if total == 0 || max == 0 {
            return store;
        }
        let mut nonempty: Vec<&DynamicLemp> =
            self.shards.iter().filter(|s| s.buckets().total() > 0).collect();
        nonempty.sort_by_key(|s| s.buckets().total());
        let mut remaining = max.min(total);
        for (i, shard) in nonempty.iter().enumerate() {
            if remaining == 0 {
                break;
            }
            let n = shard.buckets().total();
            let take = remaining.div_ceil(nonempty.len() - i).min(n);
            let stride = (n / take).max(1);
            let mut idx = 0usize;
            let mut picked = 0usize;
            'shard: for bucket in shard.buckets().buckets() {
                for l in 0..bucket.len() {
                    if idx.is_multiple_of(stride) {
                        store.push(bucket.origs.vector(l)).expect("same dimensionality");
                        picked += 1;
                        if picked == take {
                            break 'shard;
                        }
                    }
                    idx += 1;
                }
            }
            remaining -= picked;
        }
        store
    }

    fn assert_ready(&self, caller: &str, scratch: &ShardScratch) {
        assert!(self.is_warm(), "{caller} requires a warmed engine: call ShardedLemp::warm first");
        assert_eq!(
            scratch.per_shard.len(),
            self.shards.len(),
            "{caller}: scratch was made for a different sharded engine"
        );
    }

    /// Runs `f` once per shard (shard engine + its scratch slot + its
    /// per-bucket parameters), fanned out across up to `fan_out` scoped
    /// threads; results in shard order.
    fn for_each_shard<T: Send>(
        &self,
        scratches: &mut [MethodScratch],
        params: &[&[TunedParams]],
        f: impl Fn(&DynamicLemp, &mut MethodScratch, &[TunedParams]) -> T + Sync,
    ) -> Vec<T> {
        let chunk = self.chunk_size();
        let f = &f;
        fan_out_chunks(
            self.shards
                .chunks(chunk)
                .zip(scratches.chunks_mut(chunk))
                .zip(params.chunks(chunk))
                .map(|((shards, scratches), params)| (shards, scratches, params))
                .collect(),
            move |(shards, scratches, params): (
                &[DynamicLemp],
                &mut [MethodScratch],
                &[&[TunedParams]],
            )| {
                shards
                    .iter()
                    .zip(scratches.iter_mut())
                    .zip(params)
                    .map(|((shard, sc), pb)| f(shard, sc, pb))
                    .collect()
            },
        )
    }

    /// Each shard's tuned per-bucket parameters, straight from its warm
    /// state (the classic entry points; the planned path reads them from
    /// the plan's segments instead).
    fn warm_params(&self, caller: &str) -> Vec<&[TunedParams]> {
        self.shards.iter().map(|s| s.warm_state(caller).per_bucket.as_slice()).collect()
    }

    /// Shards per fan-out worker: `fan_out` workers cover the shard list
    /// in contiguous chunks (one chunk ⇒ the serial path).
    fn chunk_size(&self) -> usize {
        let nthreads = self.fan_out.min(self.shards.len()).max(1);
        self.shards.len().div_ceil(nthreads).max(1)
    }

    /// Merges per-shard run statistics: counters sum (CPU totals across
    /// shards, not wall time), bucket/index counts aggregate, and the
    /// query count is restored to the batch size (every shard saw every
    /// query).
    fn merge_stats(&self, outs: &[RunStats], queries: usize) -> RunStats {
        let mut stats = RunStats::default();
        for s in outs {
            stats.merge(s);
        }
        stats.counters.queries = queries as u64;
        stats.bucket_count = self.bucket_count();
        stats
    }

    /// The unified execution core behind the sharded `*_shared` entry
    /// points *and* [`Engine::execute`]: fans the request out across the
    /// shards (serially under adaptive selection, so the learning
    /// trajectories stay deterministic) and merges exactly.
    fn run_sharded(
        &self,
        request: &QueryRequest,
        queries: &VectorStore,
        scratches: &mut [MethodScratch],
        mut selectors: Option<&mut [AdaptiveSelector]>,
        params: &[&[TunedParams]],
    ) -> QueryResponse {
        assert_eq!(
            scratches.len(),
            self.shards.len(),
            "scratch was made for a different sharded engine"
        );
        assert_eq!(params.len(), self.shards.len(), "one parameter set per shard");
        if let Some(sels) = &selectors {
            assert_eq!(sels.len(), self.shards.len(), "one selector per shard");
        }
        if let Some(chunk) = request.options.chunk {
            return self.run_chunked(request, queries, chunk, scratches, selectors, params);
        }
        match request.kind {
            QueryKind::AboveTheta { theta } => QueryResponse::from_above(self.sharded_above(
                theta,
                queries,
                scratches,
                &mut selectors,
                params,
            )),
            QueryKind::AbsAboveTheta { theta } => {
                QueryResponse::from_above(crate::abs_above_theta_via(queries, theta, |q| {
                    self.sharded_above(theta, q, scratches, &mut selectors, params)
                }))
            }
            QueryKind::TopK { k } => QueryResponse::from_top_k(self.sharded_topk(
                k,
                f64::NEG_INFINITY,
                queries,
                scratches,
                &mut selectors,
                params,
            )),
            QueryKind::TopKWithFloor { k, floor } => QueryResponse::from_top_k(self.sharded_topk(
                k,
                floor,
                queries,
                scratches,
                &mut selectors,
                params,
            )),
        }
    }

    /// Chunked sharded execution: blocks of query rows sweep the whole
    /// shard set through the shared chunked driver.
    fn run_chunked(
        &self,
        request: &QueryRequest,
        queries: &VectorStore,
        chunk: usize,
        scratches: &mut [MethodScratch],
        mut selectors: Option<&mut [AdaptiveSelector]>,
        params: &[&[TunedParams]],
    ) -> QueryResponse {
        plan::run_chunked_with(request, queries, chunk, |inner, block| {
            self.run_sharded(inner, block, scratches, selectors.as_deref_mut(), params)
        })
    }

    /// One Above-θ pass across all shards: concatenation merge (a probe
    /// lives in exactly one shard), entry values bit-identical to the
    /// unsharded engine.
    fn sharded_above(
        &self,
        theta: f64,
        queries: &VectorStore,
        scratches: &mut [MethodScratch],
        selectors: &mut Option<&mut [AdaptiveSelector]>,
        params: &[&[TunedParams]],
    ) -> AboveThetaOutput {
        let outs: Vec<AboveThetaOutput> = match selectors {
            Some(sels) => self
                .shards
                .iter()
                .zip(scratches.iter_mut())
                .zip(sels.iter_mut())
                .map(|((shard, sc), sel)| {
                    adaptive::above_theta_adaptive_prepared(
                        shard.buckets(),
                        queries,
                        theta,
                        sel,
                        sc,
                    )
                })
                .collect(),
            None => self.for_each_shard(scratches, params, |shard, sc, pb| {
                runner::above_theta_prepared(
                    shard.buckets(),
                    queries,
                    theta,
                    shard.config(),
                    pb,
                    shard.warm_state("sharded above-theta").blsh_table.as_ref(),
                    sc,
                )
            }),
        };
        let mut entries = Vec::with_capacity(outs.iter().map(|o| o.entries.len()).sum());
        let stats: Vec<RunStats> = outs
            .into_iter()
            .map(|o| {
                entries.extend(o.entries);
                o.stats
            })
            .collect();
        let mut stats = self.merge_stats(&stats, queries.len());
        stats.counters.results = entries.len() as u64;
        AboveThetaOutput { entries, stats }
    }

    /// One Row-Top-k pass across all shards: per-shard local lists merged
    /// with the exact per-query k-way merge.
    fn sharded_topk(
        &self,
        k: usize,
        floor: f64,
        queries: &VectorStore,
        scratches: &mut [MethodScratch],
        selectors: &mut Option<&mut [AdaptiveSelector]>,
        params: &[&[TunedParams]],
    ) -> TopKOutput {
        let mut outs: Vec<TopKOutput> = match selectors {
            Some(sels) => self
                .shards
                .iter()
                .zip(scratches.iter_mut())
                .zip(sels.iter_mut())
                .map(|((shard, sc), sel)| {
                    adaptive::row_top_k_adaptive_prepared(shard.buckets(), queries, k, sel, sc)
                })
                .collect(),
            None => self.for_each_shard(scratches, params, |shard, sc, pb| {
                runner::row_top_k_prepared(
                    shard.buckets(),
                    queries,
                    k,
                    floor,
                    shard.config(),
                    pb,
                    shard.warm_state("sharded row-top-k").blsh_table.as_ref(),
                    sc,
                )
            }),
        };
        let mut lists = self.merge_lists(&mut outs, queries.len(), k);
        if selectors.is_some() && floor > f64::NEG_INFINITY {
            // Adaptive shards return plain top-k lists; filtering the
            // merged result by the floor is exact (any entry ≥ floor
            // outside the plain top-k is dominated by k entries ≥ floor).
            for list in &mut lists {
                list.retain(|item| item.score >= floor);
            }
        }
        let stats: Vec<RunStats> = outs.into_iter().map(|o| o.stats).collect();
        let mut stats = self.merge_stats(&stats, queries.len());
        stats.counters.results = lists.iter().map(|l| l.len() as u64).sum();
        TopKOutput { lists, stats }
    }

    /// **Above-θ** across all shards: per-shard shared runs, results
    /// concatenated (a probe lives in exactly one shard). Entry values are
    /// bit-identical to the unsharded engine.
    ///
    /// # Panics
    /// If the engine is not warmed, the scratch belongs to another engine,
    /// or on query/probe dimensionality mismatch.
    pub fn above_theta_shared(
        &self,
        queries: &VectorStore,
        theta: f64,
        scratch: &mut ShardScratch,
    ) -> AboveThetaOutput {
        self.assert_ready("above_theta_shared", scratch);
        let params = self.warm_params("above_theta_shared");
        self.run_sharded(
            &QueryRequest::above_theta(theta),
            queries,
            &mut scratch.per_shard,
            None,
            &params,
        )
        .into_above()
    }

    /// **Row-Top-k** across all shards: per-shard shared runs merged with
    /// the exact per-query k-way merge ([`kway_merge_topk`]).
    ///
    /// # Panics
    /// Same conditions as [`ShardedLemp::above_theta_shared`].
    pub fn row_top_k_shared(
        &self,
        queries: &VectorStore,
        k: usize,
        scratch: &mut ShardScratch,
    ) -> TopKOutput {
        self.row_top_k_with_floor_shared(queries, k, f64::NEG_INFINITY, scratch)
    }

    /// **Row-Top-k with a score floor** across all shards (each shard
    /// applies the floor locally; the merged top-k of the per-shard
    /// floored lists is exactly the floored global top-k).
    ///
    /// # Panics
    /// Same conditions as [`ShardedLemp::above_theta_shared`].
    pub fn row_top_k_with_floor_shared(
        &self,
        queries: &VectorStore,
        k: usize,
        floor: f64,
        scratch: &mut ShardScratch,
    ) -> TopKOutput {
        self.assert_ready("row_top_k_with_floor_shared", scratch);
        let params = self.warm_params("row_top_k_with_floor_shared");
        self.run_sharded(
            &QueryRequest::top_k_with_floor(k, floor),
            queries,
            &mut scratch.per_shard,
            None,
            &params,
        )
        .into_top_k()
    }

    /// **|Above-θ|** across all shards (two exact Above-θ passes, as in
    /// [`Lemp::abs_above_theta`]).
    ///
    /// # Panics
    /// If `theta ≤ 0`, plus the conditions of
    /// [`ShardedLemp::above_theta_shared`].
    pub fn abs_above_theta_shared(
        &self,
        queries: &VectorStore,
        theta: f64,
        scratch: &mut ShardScratch,
    ) -> AboveThetaOutput {
        self.assert_ready("abs_above_theta_shared", scratch);
        let params = self.warm_params("abs_above_theta_shared");
        self.run_sharded(
            &QueryRequest::abs_above_theta(theta),
            queries,
            &mut scratch.per_shard,
            None,
            &params,
        )
        .into_above()
    }

    /// **Above-θ with online (bandit) selection** across all shards: each
    /// shard learns in its own selector (obtain the slice from
    /// [`ShardedLemp::adaptive_selectors`]). Shards run serially so the
    /// learning trajectories stay deterministic; results are exact either
    /// way.
    ///
    /// # Panics
    /// If the selector slice is not aligned with the shard list, plus the
    /// conditions of [`ShardedLemp::above_theta_shared`].
    pub fn above_theta_adaptive_shared(
        &self,
        queries: &VectorStore,
        theta: f64,
        selectors: &mut [AdaptiveSelector],
        scratch: &mut ShardScratch,
    ) -> AboveThetaOutput {
        self.assert_ready("above_theta_adaptive_shared", scratch);
        let params = self.warm_params("above_theta_adaptive_shared");
        self.run_sharded(
            &QueryRequest::above_theta(theta),
            queries,
            &mut scratch.per_shard,
            Some(selectors),
            &params,
        )
        .into_above()
    }

    /// [`ShardedLemp::above_theta_adaptive_shared`] for Row-Top-k
    /// workloads.
    ///
    /// # Panics
    /// Same conditions as [`ShardedLemp::above_theta_adaptive_shared`].
    pub fn row_top_k_adaptive_shared(
        &self,
        queries: &VectorStore,
        k: usize,
        selectors: &mut [AdaptiveSelector],
        scratch: &mut ShardScratch,
    ) -> TopKOutput {
        self.assert_ready("row_top_k_adaptive_shared", scratch);
        let params = self.warm_params("row_top_k_adaptive_shared");
        self.run_sharded(
            &QueryRequest::top_k(k),
            queries,
            &mut scratch.per_shard,
            Some(selectors),
            &params,
        )
        .into_top_k()
    }

    /// Per-query k-way merge of the shard outputs (lists are moved out of
    /// `outs`).
    fn merge_lists(
        &self,
        outs: &mut [TopKOutput],
        queries: usize,
        k: usize,
    ) -> Vec<Vec<ScoredItem>> {
        (0..queries)
            .map(|qi| {
                let per_shard: Vec<Vec<ScoredItem>> =
                    outs.iter_mut().map(|o| std::mem::take(&mut o.lists[qi])).collect();
                merge_disjoint(per_shard, k)
            })
            .collect()
    }

    /// Assembles a sharded engine from independently built (or recovered)
    /// dynamic shards — the constructor a sharded store uses after
    /// per-shard crash recovery. Validates the cross-shard invariants the
    /// routed-edit machinery relies on: at least one shard, equal
    /// dimensionality everywhere, globally disjoint live probe ids, and a
    /// well-formed band vector (`S-1` non-increasing, non-NaN boundaries
    /// for a length-banded engine; empty otherwise).
    ///
    /// # Errors
    /// [`PersistError::Format`] describing the violated invariant.
    pub fn from_shards(
        shards: Vec<DynamicLemp>,
        kind: ShardPolicyKind,
        bands: Vec<f64>,
    ) -> Result<Self, PersistError> {
        if shards.is_empty() {
            return Err(PersistError::Format("a sharded engine needs at least one shard".into()));
        }
        let dim = shards[0].dim();
        for (s, shard) in shards.iter().enumerate().skip(1) {
            if shard.dim() != dim {
                return Err(PersistError::Format(format!(
                    "shard {s} has dimensionality {}, shard 0 has {dim}",
                    shard.dim()
                )));
            }
        }
        let mut seen_ids: HashSet<u32> = HashSet::new();
        for shard in &shards {
            for bucket in shard.buckets().buckets() {
                for &id in &bucket.ids {
                    if !seen_ids.insert(id) {
                        return Err(PersistError::Format(format!(
                            "probe id {id} appears in more than one shard"
                        )));
                    }
                }
            }
        }
        let expected_bands =
            if kind == ShardPolicyKind::LengthBanded { shards.len() - 1 } else { 0 };
        if bands.len() != expected_bands {
            return Err(PersistError::Format(format!(
                "{} routing bands, policy needs {expected_bands}",
                bands.len()
            )));
        }
        if bands.iter().any(|b| b.is_nan()) || bands.windows(2).any(|w| w[0] < w[1]) {
            return Err(PersistError::Format(
                "routing bands must be non-increasing and non-NaN".into(),
            ));
        }
        Ok(Self { shards, kind, bands, fan_out: 1, dim })
    }

    /// Serializes the sharded engine as a `LEMPSHD2` manifest: policy
    /// kind, shard count, the fixed routing bands, then every shard's
    /// ordinary `LEMPDYN1` dynamic-engine image, length-prefixed (so id
    /// watermarks and dead ids survive). The fan-out thread count is
    /// deliberately **not** persisted — it is a machine-specific runtime
    /// knob (loaders pick their own via [`ShardedLemp::set_threads`]), not
    /// a property of the data.
    ///
    /// # Errors
    /// Propagates write failures.
    pub fn write_to<W: Write>(&self, writer: W) -> Result<(), PersistError> {
        let mut w = BufWriter::new(writer);
        w.write_all(SHARD_MAGIC)?;
        w.write_all(&[kind_tag(self.kind)])?;
        write_u64(&mut w, self.shards.len() as u64)?;
        write_u64(&mut w, self.bands.len() as u64)?;
        for &band in &self.bands {
            write_f64(&mut w, band)?;
        }
        for shard in &self.shards {
            let mut image = Vec::new();
            shard.write_to(&mut image)?;
            write_u64(&mut w, image.len() as u64)?;
            w.write_all(&image)?;
        }
        w.flush()?;
        Ok(())
    }

    /// Saves the sharded engine to a file (see [`ShardedLemp::write_to`]).
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> Result<(), PersistError> {
        self.write_to(File::create(path)?)
    }

    /// Deserializes a manifest written by [`ShardedLemp::write_to`]
    /// (`LEMPSHD2`, dynamic shards) or by a pre-dynamic version of it
    /// (`LEMPSHD1`, immutable shards — each is wrapped as a dynamic engine
    /// under the default bucket policy, with routing bands derived from
    /// the shard contents). Every embedded shard image passes the full
    /// single-engine validation, and the cross-shard invariants are
    /// checked on top by [`ShardedLemp::from_shards`].
    ///
    /// # Errors
    /// [`PersistError::Format`] on bad magic or any validation failure;
    /// [`PersistError::Io`] on read failures.
    pub fn read_from<R: Read>(reader: R) -> Result<Self, PersistError> {
        let mut r = BufReader::new(reader);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)
            .map_err(|_| PersistError::Format("file too short for magic".into()))?;
        let legacy = match &magic {
            m if m == SHARD_MAGIC => false,
            m if m == SHARD_MAGIC_V1 => true,
            _ => return Err(PersistError::Format(format!("bad magic {magic:?}"))),
        };
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)
            .map_err(|_| PersistError::Format("truncated shard policy tag".into()))?;
        let kind = kind_from_tag(tag[0])?;
        let count = read_u64(&mut r, "shard count")? as usize;
        if count == 0 {
            return Err(PersistError::Format("sharded manifest holds no shards".into()));
        }
        if count > 1 << 16 {
            return Err(PersistError::Format(format!("implausible shard count {count}")));
        }
        let bands = if legacy {
            Vec::new() // derived from the shard contents below
        } else {
            let n = read_u64(&mut r, "band count")? as usize;
            let expected = if kind == ShardPolicyKind::LengthBanded { count - 1 } else { 0 };
            if n != expected {
                return Err(PersistError::Format(format!(
                    "{n} routing bands, policy needs {expected}"
                )));
            }
            let mut bands = Vec::with_capacity(n);
            for _ in 0..n {
                bands.push(read_f64(&mut r, "routing band")?);
            }
            bands
        };
        let mut shards = Vec::with_capacity(count);
        for s in 0..count {
            let len = read_u64(&mut r, "shard image length")?;
            let mut image = Vec::new();
            r.by_ref().take(len).read_to_end(&mut image)?;
            if image.len() as u64 != len {
                return Err(PersistError::Format(format!("shard {s}: truncated image")));
            }
            let shard = if legacy {
                let engine = Lemp::read_from(&image[..])
                    .map_err(|e| PersistError::Format(format!("shard {s}: {e}")))?;
                DynamicLemp::from_engine(engine, BucketPolicy::default())
            } else {
                DynamicLemp::read_from(&image[..])
                    .map_err(|e| PersistError::Format(format!("shard {s}: {e}")))?
            };
            shards.push(shard);
        }
        expect_eof(&mut r)?;
        let bands = if legacy { compute_bands(&shards, kind) } else { bands };
        // Fan-out is a runtime knob of the loading machine, not of the
        // image: `from_shards` starts serial and the loader picks its own
        // via `set_threads`.
        Self::from_shards(shards, kind, bands)
    }

    /// Loads a sharded engine from a file (see
    /// [`ShardedLemp::read_from`]).
    ///
    /// # Errors
    /// Same conditions as [`ShardedLemp::read_from`].
    pub fn load(path: &Path) -> Result<Self, PersistError> {
        Self::read_from(File::open(path)?)
    }
}

impl Engine for ShardedLemp {
    fn plan(&self, request: &QueryRequest) -> QueryPlan {
        assert!(
            self.is_warm(),
            "Engine::plan requires a warmed engine: call ShardedLemp::warm first"
        );
        let segments = self
            .shards
            .iter()
            .map(|shard| {
                Planner::segment(
                    shard.buckets(),
                    shard.config(),
                    &shard.warm_state("Engine::plan").per_bucket,
                )
            })
            .collect();
        QueryPlan::new(*request, segments)
    }

    fn execute(
        &self,
        plan: &QueryPlan,
        queries: &VectorStore,
        scratch: &mut Scratch,
    ) -> QueryResponse {
        assert!(
            self.is_warm(),
            "Engine::execute requires a warmed engine: call ShardedLemp::warm first"
        );
        let segments = plan.segments();
        assert_eq!(
            segments.len(),
            self.shards.len(),
            "stale plan — compiled for a different shard layout"
        );
        for (s, (segment, shard)) in segments.iter().zip(&self.shards).enumerate() {
            segment.check_fresh(shard.buckets(), &format!("Engine::execute (shard {s})"));
        }
        let shapes: Vec<(usize, usize)> =
            self.shards.iter().map(|s| (s.buckets().bucket_count(), s.buckets().dim())).collect();
        let adaptive = plan.request().options.adaptive.map(|cfg| (cfg, shapes.as_slice()));
        let (scratches, selectors) = scratch.sharded_parts("Engine::execute", adaptive);
        let params: Vec<&[TunedParams]> = segments.iter().map(PlanSegment::params).collect();
        self.run_sharded(plan.request(), queries, scratches, selectors, &params)
    }

    fn query_scratch(&self) -> Scratch {
        Scratch::sharded(self.shards.iter().map(DynamicLemp::make_scratch).collect())
    }

    fn probes(&self) -> usize {
        self.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn is_warm(&self) -> bool {
        ShardedLemp::is_warm(self)
    }

    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn warm_up(&mut self, sample: &VectorStore, goal: WarmGoal) -> WarmReport {
        ShardedLemp::warm(self, sample, goal)
    }

    /// **Segment-granular refresh**: edits staleness-stamp only the owning
    /// shard's buckets, so every untouched shard's segment is reused
    /// verbatim and only the stale ones recompile.
    fn refresh_plan(&self, plan: &QueryPlan) -> QueryPlan {
        assert!(
            self.is_warm(),
            "Engine::refresh_plan requires a warmed engine: call ShardedLemp::warm first"
        );
        if plan.segments().len() != self.shards.len() {
            // The shard layout itself changed (different engine): recompile.
            return self.plan(plan.request());
        }
        let segments = plan
            .segments()
            .iter()
            .zip(&self.shards)
            .map(|(segment, shard)| {
                if segment.is_fresh(shard.buckets()) {
                    segment.clone()
                } else {
                    Planner::segment(
                        shard.buckets(),
                        shard.config(),
                        &shard.warm_state("Engine::refresh_plan").per_bucket,
                    )
                }
            })
            .collect();
        QueryPlan::new(*plan.request(), segments)
    }
}

const SHARD_MAGIC: &[u8; 8] = b"LEMPSHD2";
/// The pre-dynamic manifest magic (immutable `LEMPENG1` shards): still
/// readable, never written.
const SHARD_MAGIC_V1: &[u8; 8] = b"LEMPSHD1";

/// Whether the file at `path` is a sharded engine manifest (`LEMPSHD2` or
/// legacy `LEMPSHD1`), as opposed to a single-shard (`LEMPENG1` /
/// `LEMPDYN1`) image — all use the `.eng` extension, so services sniff
/// the magic to pick the loader.
///
/// # Errors
/// Propagates filesystem errors (a too-short file reads as "not sharded").
pub fn is_sharded_image(path: &Path) -> Result<bool, PersistError> {
    let mut magic = [0u8; 8];
    let mut f = File::open(path)?;
    match f.read_exact(&mut magic) {
        Ok(()) => Ok(&magic == SHARD_MAGIC || &magic == SHARD_MAGIC_V1),
        // Shorter than any magic: certainly not a sharded manifest. Real
        // I/O failures still surface instead of silently reading as
        // "single-shard" and failing later with a misleading format error.
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Ok(false),
        Err(e) => Err(PersistError::Io(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemp_baselines::types::{canonical_pairs, topk_equivalent};
    use lemp_baselines::Naive;
    use lemp_data::synthetic::GeneratorConfig;

    fn data(m: usize, n: usize, seed: u64) -> (VectorStore, VectorStore) {
        let q = GeneratorConfig::gaussian(m, 8, 1.0).generate(seed);
        let p = GeneratorConfig::gaussian(n, 8, 1.2).generate(seed + 1);
        (q, p)
    }

    fn warmed(p: &VectorStore, q: &VectorStore, shards: usize, policy: ShardPolicy) -> ShardedLemp {
        let mut engine =
            ShardedLemp::builder().shards(shards).policy(policy).sample_size(8).build(p);
        engine.warm(q, WarmGoal::TopK(5));
        engine
    }

    #[test]
    fn policies_partition_every_row_exactly_once() {
        let (_, p) = data(1, 100, 10);
        for policy in [
            ShardPolicy::RoundRobin,
            ShardPolicy::LengthBanded,
            ShardPolicy::Explicit((0..100u32).map(|i| (i * 7) % 3).collect()),
        ] {
            let rows = policy.partition(&p, 3);
            assert_eq!(rows.len(), 3);
            let mut seen: Vec<usize> = rows.iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..100).collect::<Vec<_>>(), "{policy:?} lost or duplicated rows");
        }
    }

    #[test]
    fn length_banded_puts_longest_probes_in_shard_zero() {
        let (_, p) = data(1, 120, 11);
        let rows = ShardPolicy::LengthBanded.partition(&p, 4);
        let lengths = p.lengths();
        let min_first: f64 = rows[0].iter().map(|&i| lengths[i]).fold(f64::INFINITY, f64::min);
        let max_rest: f64 =
            rows[1..].iter().flatten().map(|&i| lengths[i]).fold(f64::NEG_INFINITY, f64::max);
        assert!(min_first >= max_rest, "shard 0 must hold the longest band");
    }

    #[test]
    #[should_panic(expected = "must cover every probe row")]
    fn explicit_policy_rejects_wrong_length() {
        let (_, p) = data(1, 10, 12);
        let _ =
            ShardedLemp::builder().shards(2).policy(ShardPolicy::Explicit(vec![0; 5])).build(&p);
    }

    #[test]
    #[should_panic(expected = "routes row")]
    fn explicit_policy_rejects_out_of_range_shard() {
        let (_, p) = data(1, 4, 13);
        let _ = ShardedLemp::builder()
            .shards(2)
            .policy(ShardPolicy::Explicit(vec![0, 1, 2, 0]))
            .build(&p);
    }

    #[test]
    fn sharded_matches_naive_for_both_problems() {
        let (q, p) = data(30, 200, 20);
        let theta = 1.0;
        let (expect_above, _) = Naive.above_theta(&q, &p, theta);
        let (expect_topk, _) = Naive.row_top_k(&q, &p, 4);
        for shards in [1usize, 3] {
            let engine = warmed(&p, &q, shards, ShardPolicy::RoundRobin);
            let mut scratch = engine.make_scratch();
            let above = engine.above_theta_shared(&q, theta, &mut scratch);
            assert_eq!(
                canonical_pairs(&above.entries),
                canonical_pairs(&expect_above),
                "S={shards}"
            );
            let top = engine.row_top_k_shared(&q, 4, &mut scratch);
            assert!(topk_equivalent(&top.lists, &expect_topk, 1e-9), "S={shards}");
        }
    }

    #[test]
    fn fan_out_threads_do_not_change_results() {
        let (q, p) = data(25, 180, 30);
        let serial = {
            let engine = warmed(&p, &q, 4, ShardPolicy::LengthBanded);
            let mut scratch = engine.make_scratch();
            engine.row_top_k_shared(&q, 5, &mut scratch)
        };
        let parallel = {
            let mut engine = ShardedLemp::builder()
                .shards(4)
                .policy(ShardPolicy::LengthBanded)
                .sample_size(8)
                .threads(4)
                .build(&p);
            engine.warm(&q, WarmGoal::TopK(5));
            let mut scratch = engine.make_scratch();
            engine.row_top_k_shared(&q, 5, &mut scratch)
        };
        assert!(topk_equivalent(&serial.lists, &parallel.lists, 0.0));
    }

    #[test]
    fn more_shards_than_probes_leaves_empty_shards_harmless() {
        let (q, p) = data(5, 3, 40);
        let engine = warmed(&p, &q, 7, ShardPolicy::RoundRobin);
        assert_eq!(engine.shard_count(), 7);
        assert_eq!(engine.shard_sizes().iter().sum::<usize>(), 3);
        let mut scratch = engine.make_scratch();
        let top = engine.row_top_k_shared(&q, 5, &mut scratch);
        for list in &top.lists {
            assert_eq!(list.len(), 3, "k beyond the probe count returns everything");
        }
    }

    #[test]
    fn merge_is_canonical_and_rejects_duplicates() {
        let item = |id: usize, score: f64| ScoredItem { id, score };
        // Ties across lists resolve by ascending id; k caps the output.
        let lists =
            vec![vec![item(5, 3.0), item(1, 1.0)], vec![item(2, 3.0), item(9, 2.0)], vec![]];
        let merged = kway_merge_topk(lists.clone(), 3).unwrap();
        assert_eq!(
            merged,
            vec![item(2, 3.0), item(5, 3.0), item(9, 2.0)],
            "ties must resolve by ascending id"
        );
        // k beyond the total returns everything, still canonical.
        let all = kway_merge_topk(lists, 10).unwrap();
        assert_eq!(all.len(), 4);
        assert_eq!(all.last().unwrap().id, 1);
        // Duplicate global ids are a partition violation.
        let dup = vec![vec![item(3, 2.0)], vec![item(3, 1.0)]];
        assert_eq!(kway_merge_topk(dup, 2), Err(ShardError::DuplicateGlobalId(3)));
        assert!(kway_merge_topk(vec![], 5).unwrap().is_empty());
    }

    #[test]
    fn manifest_roundtrips_and_answers_identically() {
        let (q, p) = data(20, 150, 50);
        let engine = warmed(&p, &q, 3, ShardPolicy::LengthBanded);
        let mut scratch = engine.make_scratch();
        let before = engine.above_theta_shared(&q, 1.0, &mut scratch);
        let mut buf = Vec::new();
        engine.write_to(&mut buf).unwrap();

        let mut loaded = ShardedLemp::read_from(&buf[..]).unwrap();
        assert_eq!(loaded.shard_count(), 3);
        assert_eq!(loaded.len(), 150);
        assert_eq!(loaded.dim(), 8);
        assert_eq!(loaded.policy_kind(), ShardPolicyKind::LengthBanded);
        assert!(!loaded.is_warm(), "warm state is not persisted");
        loaded.warm(&q, WarmGoal::Above(1.0));
        let mut scratch = loaded.make_scratch();
        let after = loaded.above_theta_shared(&q, 1.0, &mut scratch);
        assert_eq!(canonical_pairs(&before.entries), canonical_pairs(&after.entries));
    }

    #[test]
    fn quantized_shards_roundtrip_with_codes_and_report_memory() {
        let (q, p) = data(15, 150, 55);
        let mut engine = ShardedLemp::builder()
            .shards(3)
            .policy(ShardPolicy::LengthBanded)
            .sample_size(8)
            .quantize(8)
            .build(&p);
        engine.warm(&q, WarmGoal::TopK(4));
        for shard in engine.shards() {
            assert_eq!(shard.config().quantize_bits, 8, "builder must thread quantize to shards");
            assert!(
                shard.buckets().buckets().iter().all(|b| b.indexes.quant.is_some()),
                "warm quantized shard must hold codebooks"
            );
        }
        let usage = engine.memory_usage();
        assert_eq!(usage.len(), 3);
        assert!(usage.iter().all(|u| u.full_bytes > 0 && u.quantized_bytes > 0));
        // Routed edits re-encode the touched bucket.
        engine.insert(&[2.0; 8]).unwrap();
        assert!(engine.remove(7));
        let mut scratch = engine.make_scratch();
        let before = engine.row_top_k_shared(&q, 4, &mut scratch);

        let mut buf = Vec::new();
        engine.write_to(&mut buf).unwrap();
        let mut loaded = ShardedLemp::read_from(&buf[..]).unwrap();
        for (a, b) in loaded.shards().iter().zip(engine.shards()) {
            assert_eq!(a.config().quantize_bits, 8);
            for (x, y) in a.buckets().buckets().iter().zip(b.buckets().buckets()) {
                assert_eq!(x.indexes.quant, y.indexes.quant, "quant state must round-trip");
            }
        }
        loaded.warm(&q, WarmGoal::TopK(4));
        let mut scratch = loaded.make_scratch();
        let after = loaded.row_top_k_shared(&q, 4, &mut scratch);
        assert!(topk_equivalent(&before.lists, &after.lists, 0.0));
    }

    #[test]
    fn manifest_rejects_corruption() {
        let (q, p) = data(5, 40, 60);
        let engine = warmed(&p, &q, 2, ShardPolicy::RoundRobin);
        let mut buf = Vec::new();
        engine.write_to(&mut buf).unwrap();

        // bad magic
        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(ShardedLemp::read_from(&bad[..]), Err(PersistError::Format(_))));
        // unknown policy tag
        let mut bad = buf.clone();
        bad[8] = 77;
        assert!(ShardedLemp::read_from(&bad[..]).unwrap_err().to_string().contains("policy tag"));
        // truncations at structural boundaries
        for cut in [4usize, 9, 24, 40, buf.len() - 1] {
            assert!(ShardedLemp::read_from(&buf[..cut]).is_err(), "truncation at {cut} accepted");
        }
        // trailing garbage
        let mut bad = buf.clone();
        bad.push(1);
        assert!(ShardedLemp::read_from(&bad[..]).unwrap_err().to_string().contains("trailing"));
    }

    #[test]
    fn manifest_rejects_overlapping_shard_ids() {
        // Hand-build a manifest whose two shards are the *same* image:
        // every probe id collides.
        let (_, p) = data(5, 30, 70);
        let single = DynamicLemp::new(&p, BucketPolicy::default(), RunConfig::default());
        let mut image = Vec::new();
        single.write_to(&mut image).unwrap();
        let mut buf = Vec::new();
        buf.extend_from_slice(SHARD_MAGIC);
        buf.push(0); // round-robin tag
        buf.extend_from_slice(&2u64.to_le_bytes()); // shard count
        buf.extend_from_slice(&0u64.to_le_bytes()); // band count
        for _ in 0..2 {
            buf.extend_from_slice(&(image.len() as u64).to_le_bytes());
            buf.extend_from_slice(&image);
        }
        let err = ShardedLemp::read_from(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("more than one shard"), "{err}");
    }

    #[test]
    fn legacy_v1_manifests_still_load() {
        // Hand-build a LEMPSHD1 manifest (immutable Lemp shards) and check
        // it loads as a dynamic sharded engine that accepts edits.
        let (q, p) = data(10, 60, 71);
        let lengths = p.lengths();
        let mut order: Vec<usize> = (0..60).collect();
        order.sort_by(|&a, &b| lengths[b].total_cmp(&lengths[a]).then(a.cmp(&b)));
        let mut buf = Vec::new();
        buf.extend_from_slice(SHARD_MAGIC_V1);
        buf.push(1); // length-banded tag
        buf.extend_from_slice(&2u64.to_le_bytes()); // shard count
        for rows in [&order[..30], &order[30..]] {
            let sub = p.select(rows);
            let mut shard = Lemp::builder().sample_size(4).build(&sub);
            for bucket in shard.buckets_mut().buckets_mut() {
                for slot in &mut bucket.ids {
                    *slot = rows[*slot as usize] as u32;
                }
            }
            let mut image = Vec::new();
            shard.write_to(&mut image).unwrap();
            buf.extend_from_slice(&(image.len() as u64).to_le_bytes());
            buf.extend_from_slice(&image);
        }
        let mut loaded = ShardedLemp::read_from(&buf[..]).unwrap();
        assert_eq!(loaded.shard_count(), 2);
        assert_eq!(loaded.len(), 60);
        assert_eq!(loaded.policy_kind(), ShardPolicyKind::LengthBanded);
        assert_eq!(loaded.bands().len(), 1, "bands derive from the legacy shard contents");
        assert_eq!(loaded.next_id(), 60);
        // The legacy engine is mutable after load.
        let id = loaded.insert(&[0.5; 8]).unwrap();
        assert_eq!(id, 60);
        assert!(loaded.remove(id));
        loaded.warm(&q, WarmGoal::TopK(3));
        let mut scratch = loaded.make_scratch();
        let top = loaded.row_top_k_shared(&q, 3, &mut scratch);
        let (expect, _) = Naive.row_top_k(&q, &p, 3);
        assert!(topk_equivalent(&top.lists, &expect, 1e-9));
    }

    #[test]
    fn routed_edits_match_unsharded_dynamic_engine() {
        // The acceptance criterion in miniature: the same edit script on a
        // sharded and an unsharded engine answers bit-identically.
        let (q, p) = data(15, 120, 72);
        for policy in [ShardPolicy::RoundRobin, ShardPolicy::LengthBanded] {
            let mut sharded =
                ShardedLemp::builder().shards(3).policy(policy.clone()).sample_size(8).build(&p);
            let mut single = DynamicLemp::new(&p, BucketPolicy::default(), RunConfig::default());
            let extra = GeneratorConfig::gaussian(30, 8, 1.5).generate(73);
            for i in 0..extra.len() {
                let a = sharded.insert(extra.vector(i)).unwrap();
                let b = single.insert(extra.vector(i)).unwrap();
                assert_eq!(a, b, "global id allocation diverged ({policy:?})");
            }
            for id in (0..140u32).step_by(3) {
                assert_eq!(sharded.remove(id), single.remove(id), "{policy:?}: removal of {id}");
            }
            sharded.rebuild();
            assert_eq!(sharded.len(), single.len());
            assert_eq!(sharded.next_id(), single.next_id());
            sharded.warm(&q, WarmGoal::TopK(5));
            let mut scratch = sharded.make_scratch();
            let above = sharded.above_theta_shared(&q, 1.0, &mut scratch);
            let expect = single.above_theta(&q, 1.0);
            assert_eq!(
                canonical_pairs(&above.entries),
                canonical_pairs(&expect.entries),
                "{policy:?}"
            );
            let top = sharded.row_top_k_shared(&q, 4, &mut scratch);
            let expect = single.row_top_k(&q, 4);
            assert!(topk_equivalent(&top.lists, &expect.lists, 0.0), "{policy:?}");
        }
    }

    #[test]
    fn insert_routing_is_deterministic_and_disjoint() {
        let (_, p) = data(1, 50, 74);
        let mut engine = ShardedLemp::builder()
            .shards(3)
            .policy(ShardPolicy::LengthBanded)
            .sample_size(4)
            .build(&p);
        let bands = engine.bands().to_vec();
        let extra = GeneratorConfig::gaussian(20, 8, 2.0).generate(75);
        for i in 0..extra.len() {
            let v = extra.vector(i);
            let (id, shard) = engine.route_insert(v);
            // The preview, the policy's closed form, and the actual insert
            // all agree.
            assert_eq!(
                shard,
                ShardPolicyKind::LengthBanded.route_insert(id, kernels::norm(v), &bands, 3)
            );
            let got = engine.insert(v).unwrap();
            assert_eq!(got, id);
            assert_eq!(engine.owner_of(id), Some(shard), "insert landed off its route");
        }
        // Rebuilds keep placement: owners do not move.
        let owners: Vec<Option<usize>> =
            (0..engine.next_id()).map(|i| engine.owner_of(i)).collect();
        engine.rebuild();
        let after: Vec<Option<usize>> = (0..engine.next_id()).map(|i| engine.owner_of(i)).collect();
        assert_eq!(owners, after, "rebuild re-routed probes");
        // Bands are fixed at build time.
        assert_eq!(engine.bands(), bands.as_slice());
    }

    #[test]
    fn refresh_plan_recompiles_only_the_touched_shard() {
        let (q, p) = data(10, 90, 76);
        let mut engine = warmed(&p, &q, 3, ShardPolicy::RoundRobin);
        let request = QueryRequest::top_k(3);
        let before = Engine::plan(&engine, &request);
        // Route an insert; round-robin places id 90 on shard 90 % 3 == 0.
        let id = engine.insert(&[1.5; 8]).unwrap();
        assert_eq!(engine.owner_of(id), Some(0));
        let after = engine.refresh_plan(&before);
        assert_ne!(
            before.segments()[0],
            after.segments()[0],
            "the touched shard's segment must recompile"
        );
        assert_eq!(before.segments()[1], after.segments()[1], "untouched segment reused");
        assert_eq!(before.segments()[2], after.segments()[2], "untouched segment reused");
        // The stale plan panics, the refreshed one executes.
        let mut scratch = Engine::query_scratch(&engine);
        let out = engine.execute(&after, &q, &mut scratch).into_top_k();
        let (expect, _) = {
            let (ids, live) = engine.live_vectors();
            let (lists, stats) = Naive.row_top_k(&q, &live, 3);
            let mapped: Vec<Vec<ScoredItem>> = lists
                .iter()
                .map(|l| {
                    l.iter()
                        .map(|it| ScoredItem { id: ids[it.id] as usize, score: it.score })
                        .collect()
                })
                .collect();
            (mapped, stats)
        };
        assert!(topk_equivalent(&out.lists, &expect, 1e-9));
    }

    #[test]
    fn image_kind_sniffing() {
        let (q, p) = data(5, 30, 80);
        let dir = std::env::temp_dir();
        let sharded_path = dir.join(format!("lemp-shard-sniff-{}.eng", std::process::id()));
        let single_path = dir.join(format!("lemp-single-sniff-{}.eng", std::process::id()));
        warmed(&p, &q, 2, ShardPolicy::RoundRobin).save(&sharded_path).unwrap();
        Lemp::builder().build(&p).save(&single_path).unwrap();
        assert!(is_sharded_image(&sharded_path).unwrap());
        assert!(!is_sharded_image(&single_path).unwrap());
        std::fs::remove_file(&sharded_path).ok();
        std::fs::remove_file(&single_path).ok();
        assert!(is_sharded_image(&sharded_path).is_err());
    }

    #[test]
    fn sample_vectors_strides_across_shards() {
        let (q, p) = data(5, 90, 90);
        let engine = warmed(&p, &q, 3, ShardPolicy::LengthBanded);
        let sample = engine.sample_vectors(12);
        assert_eq!(sample.len(), 12, "the budget must be met exactly when probes suffice");
        assert_eq!(sample.dim(), 8);
        assert_eq!(engine.sample_vectors(0).len(), 0);
        // A budget beyond the probe count caps at the probe count.
        assert_eq!(engine.sample_vectors(1000).len(), 90);
        // Tiny shards (7 shards over 3 probes) redistribute their unused
        // budget instead of under-filling.
        let (q, small) = data(3, 3, 91);
        let tiny = warmed(&small, &q, 7, ShardPolicy::RoundRobin);
        assert_eq!(tiny.sample_vectors(3).len(), 3);
        // Skewed sizes with the big shard *first* (the adversarial order
        // for forward-only redistribution): sizes [10, 1, 1], budget 9.
        let (q, p) = data(3, 12, 92);
        let mut assignment = vec![0u32; 12];
        assignment[10] = 1;
        assignment[11] = 2;
        let skewed = warmed(&p, &q, 3, ShardPolicy::Explicit(assignment));
        assert_eq!(skewed.shard_sizes(), vec![10, 1, 1]);
        assert_eq!(skewed.sample_vectors(9).len(), 9);
    }

    #[test]
    #[should_panic(expected = "requires a warmed engine")]
    fn shared_query_without_warm_panics() {
        let (q, p) = data(5, 40, 95);
        let engine = ShardedLemp::new(&p, 2);
        let mut scratch = engine.make_scratch();
        let _ = engine.row_top_k_shared(&q, 2, &mut scratch);
    }
}
