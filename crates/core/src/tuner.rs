//! Sample-based algorithm selection (Sec. 4.4 of the paper).
//!
//! "LEMP uses a simple, pragmatic method for algorithm selection: it samples
//! a small set of query vectors and tests the different methods for each
//! bucket. We observe the wall-clock times obtained by the various methods
//! and select a threshold `t_b` for each bucket: whenever `θ_b(q) < t_b`,
//! LEMP will use LENGTH, otherwise it uses coordinate-based pruning.
//! Similarly, we select for each bucket a parameter `φ_b` … we simply take
//! the choice that performed best on the sampled query vectors."
//!
//! Implementation: for every bucket and every sampled (unpruned) query we
//! time LENGTH and the variant's coordinate method for φ ∈ 1..=5, *including
//! the verification cost* the produced candidate set would incur (candidate
//! counts are exactly what differentiates the methods). `φ_b` minimizes the
//! summed coordinate-method time; `t_b` is then picked on a grid to minimize
//! the modeled mixed cost `Σ_q [θ_b(q) < t_b ? t_LENGTH(q) : t_COORD(q)]`.

use std::time::Instant;

use lemp_linalg::kernels;

use crate::algos::blsh_bucket::MinMatchTable;
use crate::algos::{MethodScratch, QueryCtx, Sink};
use crate::bounds::{local_threshold, region_threshold};
use crate::bucket::{Bucket, ProbeBuckets};
use crate::exec::{ensure_for, run_method, BuildClock, RunConfig};
use crate::query::QueryBatch;
use crate::variant::{resolve, LempVariant, ResolvedMethod, TunedParams};

/// Largest focus-set size the tuner tries (the paper: "typically in the
/// range of 1–5").
pub const MAX_PHI: usize = 5;

/// Grid resolution for the `t_b` search.
const TB_GRID: usize = 20;

/// Tuner output.
#[derive(Debug, Clone)]
pub struct Tuning {
    /// Per-bucket parameters, aligned with the bucket list.
    pub per_bucket: Vec<TunedParams>,
    /// Wall-clock spent tuning (reported like the paper's "tuning time").
    pub tune_ns: u64,
}

impl Tuning {
    /// Untuned defaults for `n` buckets (used by variants that need no
    /// tuning: L, TA, Tree, L2AP, BLSH).
    pub fn untuned(n: usize) -> Self {
        Self { per_bucket: vec![TunedParams::default(); n], tune_ns: 0 }
    }
}

/// Per-sampled-query thresholds used during tuning: Above-θ uses the global
/// θ for everyone; Row-Top-k seeds a per-query `θ′` the same way the driver
/// does (k longest probes).
pub(crate) enum TuneGoal {
    Above(f64),
    TopK(usize),
}

/// Runs the tuner: φ/t_b selection for variants with a coordinate method,
/// plus — when quantization is enabled — a per-bucket decision whether the
/// quantized LUT scan beats the variant's own method (any variant). `clock`
/// accumulates index builds triggered by tuning (they count as
/// preprocessing).
pub(crate) fn tune(
    buckets: &mut ProbeBuckets,
    batch: &QueryBatch,
    goal: &TuneGoal,
    cfg: &RunConfig,
    scratch: &mut MethodScratch,
    clock: &mut BuildClock,
) -> Tuning {
    let nbuckets = buckets.bucket_count();
    let mut tuning = if !cfg.variant.needs_phi() || nbuckets == 0 || batch.is_empty() {
        Tuning::untuned(nbuckets)
    } else {
        tune_phi_tb(buckets, batch, goal, cfg, scratch, clock)
    };
    if cfg.quantize_bits > 0 && nbuckets > 0 && !batch.is_empty() {
        let start = Instant::now();
        tune_quant(buckets, batch, goal, cfg, scratch, clock, &mut tuning.per_bucket);
        tuning.tune_ns += start.elapsed().as_nanos() as u64;
    }
    tuning
}

/// The Sec. 4.4 φ/t_b selection (coordinate-method variants only).
fn tune_phi_tb(
    buckets: &mut ProbeBuckets,
    batch: &QueryBatch,
    goal: &TuneGoal,
    cfg: &RunConfig,
    scratch: &mut MethodScratch,
    clock: &mut BuildClock,
) -> Tuning {
    let nbuckets = buckets.bucket_count();
    let start = Instant::now();
    // The paper's tuning cost is "negligible since the number of query
    // vectors is large"; keep that true at small m by capping the sample at
    // a few percent of the query count.
    let effective = cfg.sample_size.min(batch.len() / 20 + 4);
    let positions = batch.sample_positions(effective);
    // Per-sample effective θ (global for Above, seeded θ′ for TopK) and the
    // per-sample ‖q‖ exposed to the bounds (1 for TopK, Sec. 4.5).
    let mut sample_theta = Vec::with_capacity(positions.len());
    let mut sample_len = Vec::with_capacity(positions.len());
    for &qi in &positions {
        match goal {
            TuneGoal::Above(theta) => {
                sample_theta.push(*theta);
                sample_len.push(batch.lengths[qi]);
            }
            TuneGoal::TopK(k) => {
                sample_theta.push(seed_threshold(buckets, batch.dirs.vector(qi), *k));
                sample_len.push(1.0);
            }
        }
    }
    let incr = cfg.variant.coord_is_incr();
    let mut per_bucket = Vec::with_capacity(nbuckets);
    let mut sink = Sink::default();
    // Reused measurement rows: θ_b, LENGTH time, per-φ coordinate time.
    let mut rows: Vec<(f64, u64, [u64; MAX_PHI])> = Vec::new();
    for b in 0..nbuckets {
        let bucket = &mut buckets.buckets_mut()[b];
        scratch.ensure(bucket.len());
        rows.clear();
        let max_phi = MAX_PHI.min(bucket.dirs.dim());
        // The coordinate methods need their index; build it now (counted as
        // preprocessing, like the paper's "maximum indexing time").
        for phi in 1..=max_phi {
            ensure_for(bucket, coord_method(incr, phi), 1e-3, cfg, 0, clock);
        }
        for (s, &qi) in positions.iter().enumerate() {
            let theta = sample_theta[s];
            let qlen = sample_len[s];
            if local_threshold(theta, qlen, bucket.max_len) > 1.0 {
                continue;
            }
            let th_b = region_threshold(theta, qlen, bucket.max_len, bucket.min_len);
            let dir = batch.dirs.vector(qi);
            let ctx = QueryCtx {
                dir,
                len: qlen,
                theta,
                theta_over_len: safe_div(theta, qlen),
                local_threshold: th_b,
                scaled: dir, // tuning measures relative cost; q̄ scale suffices
            };
            let t_len = time_method(ResolvedMethod::Length, &ctx, bucket, None, scratch, &mut sink);
            let mut t_phi = [u64::MAX; MAX_PHI];
            for phi in 1..=max_phi {
                t_phi[phi - 1] =
                    time_method(coord_method(incr, phi), &ctx, bucket, None, scratch, &mut sink);
            }
            rows.push((th_b, t_len, t_phi));
        }
        per_bucket.push(pick_params(&rows, max_phi, cfg));
    }
    Tuning { per_bucket, tune_ns: start.elapsed().as_nanos() as u64 }
}

/// Per-bucket quantization decision: time the quantized LUT scan (including
/// the verification its candidate set would cost) against the variant's own
/// resolved method on the sampled queries, and flip `quant` on wherever the
/// compressed scan is at least as fast — a tie favors quantization since it
/// also shrinks residency. Codebooks are trained here (preprocessing, like
/// the coordinate indexes); exactness never depends on this choice.
#[allow(clippy::too_many_arguments)]
fn tune_quant(
    buckets: &mut ProbeBuckets,
    batch: &QueryBatch,
    goal: &TuneGoal,
    cfg: &RunConfig,
    scratch: &mut MethodScratch,
    clock: &mut BuildClock,
    per_bucket: &mut [TunedParams],
) {
    let effective = cfg.sample_size.min(batch.len() / 20 + 4);
    let positions = batch.sample_positions(effective);
    let mut sample_theta = Vec::with_capacity(positions.len());
    let mut sample_len = Vec::with_capacity(positions.len());
    for &qi in &positions {
        match goal {
            TuneGoal::Above(theta) => {
                sample_theta.push(*theta);
                sample_len.push(batch.lengths[qi]);
            }
            TuneGoal::TopK(k) => {
                sample_theta.push(seed_threshold(buckets, batch.dirs.vector(qi), *k));
                sample_len.push(1.0);
            }
        }
    }
    let blsh_table = if cfg.variant == LempVariant::Blsh {
        Some(MinMatchTable::new(cfg.blsh_bits, cfg.blsh_eps))
    } else {
        None
    };
    let mut sink = Sink::default();
    for (b, params) in per_bucket.iter_mut().enumerate().take(buckets.bucket_count()) {
        let seed = crate::runner::cfg_seed(cfg, b);
        let bucket = &mut buckets.buckets_mut()[b];
        if bucket.max_len <= 0.0 {
            continue;
        }
        ensure_for(bucket, ResolvedMethod::Quant, 1e-3, cfg, seed, clock);
        if bucket.indexes.quant.is_none() {
            continue;
        }
        if cfg.quantize_force {
            // Deterministic override: skip the timing race entirely.
            params.quant = true;
            continue;
        }
        scratch.ensure(bucket.len());
        let mut t_quant = 0u128;
        let mut t_base = 0u128;
        let mut measured = false;
        for (s, &qi) in positions.iter().enumerate() {
            let theta = sample_theta[s];
            let qlen = sample_len[s];
            if local_threshold(theta, qlen, bucket.max_len) > 1.0 {
                continue;
            }
            let th_b = region_threshold(theta, qlen, bucket.max_len, bucket.min_len);
            let incumbent = resolve(cfg.variant, params, th_b);
            ensure_for(bucket, incumbent, 1e-3, cfg, seed, clock);
            let dir = batch.dirs.vector(qi);
            let ctx = QueryCtx {
                dir,
                len: qlen,
                theta,
                theta_over_len: safe_div(theta, qlen),
                local_threshold: th_b,
                scaled: dir, // tuning measures relative cost; q̄ scale suffices
            };
            t_quant +=
                time_method(ResolvedMethod::Quant, &ctx, bucket, None, scratch, &mut sink) as u128;
            t_base += time_method(incumbent, &ctx, bucket, blsh_table.as_ref(), scratch, &mut sink)
                as u128;
            measured = true;
        }
        if measured && t_quant <= t_base {
            params.quant = true;
        }
    }
}

fn coord_method(incr: bool, phi: usize) -> ResolvedMethod {
    if incr && phi > 1 {
        ResolvedMethod::Incr(phi)
    } else {
        ResolvedMethod::Coord(phi)
    }
}

fn safe_div(theta: f64, len: f64) -> f64 {
    if len <= 0.0 {
        if theta > 0.0 {
            f64::INFINITY
        } else {
            f64::NEG_INFINITY
        }
    } else {
        theta / len
    }
}

/// Times one method run including the verification the candidate set would
/// cost (results are discarded — tuning is measurement only).
fn time_method(
    method: ResolvedMethod,
    ctx: &QueryCtx<'_>,
    bucket: &Bucket,
    blsh_table: Option<&MinMatchTable>,
    scratch: &mut MethodScratch,
    sink: &mut Sink,
) -> u64 {
    sink.clear();
    let start = Instant::now();
    let _ = run_method(method, ctx, bucket, blsh_table, scratch, sink);
    let mut sum = 0.0;
    for &lid in &sink.unverified {
        sum += kernels::dot(ctx.dir, bucket.dirs.vector(lid as usize));
    }
    std::hint::black_box(sum);
    start.elapsed().as_nanos() as u64
}

/// Seeds the Row-Top-k warm-up threshold the same way the driver does: the
/// smallest of the inner products with the k longest probes.
pub(crate) fn seed_threshold(buckets: &ProbeBuckets, dir: &[f64], k: usize) -> f64 {
    let mut top = lemp_linalg::TopK::new(k);
    let mut remaining = k;
    'outer: for bucket in buckets.buckets() {
        for lid in 0..bucket.len() {
            if remaining == 0 {
                break 'outer;
            }
            let v = kernels::dot(dir, bucket.origs.vector(lid));
            top.push(bucket.ids[lid] as usize, v);
            remaining -= 1;
        }
    }
    top.threshold()
}

/// Selects `φ_b` (argmin summed time) and `t_b` (grid argmin of the mixed
/// cost model) from the measurement rows.
fn pick_params(
    rows: &[(f64, u64, [u64; MAX_PHI])],
    max_phi: usize,
    cfg: &RunConfig,
) -> TunedParams {
    if rows.is_empty() || max_phi == 0 {
        return TunedParams::default();
    }
    // φ_b: smallest total coordinate-method time.
    let mut best_phi = 1;
    let mut best_total = u128::MAX;
    for phi in 1..=max_phi {
        let total: u128 = rows.iter().map(|r| r.2[phi - 1] as u128).sum();
        if total < best_total {
            best_total = total;
            best_phi = phi;
        }
    }
    // t_b: grid argmin of the mixed cost (only for hybrid variants; pure
    // coordinate variants keep t_b = 0 so LENGTH is never chosen).
    if !cfg.variant.needs_tb() {
        return TunedParams { tb: 0.0, phi: best_phi, quant: false };
    }
    let mut best_tb = 0.0;
    let mut best_cost = u128::MAX;
    for g in 0..=TB_GRID + 1 {
        // grid over [0, 1] plus a sentinel above 1 (= always LENGTH)
        let tb = g as f64 / TB_GRID as f64;
        let cost: u128 = rows
            .iter()
            .map(
                |&(th_b, t_len, t_phi)| {
                    if th_b < tb {
                        t_len as u128
                    } else {
                        t_phi[best_phi - 1] as u128
                    }
                },
            )
            .sum();
        if cost < best_cost {
            best_cost = cost;
            best_tb = tb;
        }
    }
    TunedParams { tb: best_tb, phi: best_phi, quant: false }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::BucketPolicy;
    use crate::variant::LempVariant;
    use lemp_data::synthetic::GeneratorConfig;
    use lemp_linalg::VectorStore;

    fn setup(n: usize, m: usize, cov: f64) -> (ProbeBuckets, QueryBatch, VectorStore) {
        let probes = GeneratorConfig::gaussian(n, 8, cov).generate(5);
        let queries = GeneratorConfig::gaussian(m, 8, cov).generate(6);
        let pb = ProbeBuckets::build(&probes, &BucketPolicy::default());
        let batch = QueryBatch::build(&queries);
        (pb, batch, queries)
    }

    #[test]
    fn tuner_produces_params_for_every_bucket() {
        let (mut pb, batch, _) = setup(400, 60, 1.0);
        let cfg = RunConfig { variant: LempVariant::LI, sample_size: 10, ..Default::default() };
        let mut scratch = MethodScratch::new(512);
        let mut clock = BuildClock::default();
        let tuning = tune(&mut pb, &batch, &TuneGoal::Above(0.5), &cfg, &mut scratch, &mut clock);
        assert_eq!(tuning.per_bucket.len(), pb.bucket_count());
        for p in &tuning.per_bucket {
            assert!(p.phi >= 1 && p.phi <= MAX_PHI);
            assert!(p.tb >= 0.0 && p.tb <= 1.05);
        }
        assert!(tuning.tune_ns > 0);
        assert!(clock.built > 0, "tuning builds the coordinate indexes");
    }

    #[test]
    fn variants_without_phi_are_untuned() {
        let (mut pb, batch, _) = setup(200, 20, 0.5);
        let cfg = RunConfig { variant: LempVariant::L, ..Default::default() };
        let mut scratch = MethodScratch::new(256);
        let mut clock = BuildClock::default();
        let tuning = tune(&mut pb, &batch, &TuneGoal::Above(0.5), &cfg, &mut scratch, &mut clock);
        assert_eq!(tuning.tune_ns, 0);
        assert_eq!(clock.built, 0);
        assert!(tuning.per_bucket.iter().all(|p| *p == TunedParams::default()));
    }

    #[test]
    fn quantize_enabled_trains_codebooks_and_decides_per_bucket() {
        let (mut pb, batch, _) = setup(400, 60, 1.0);
        // LEMP-L needs no φ tuning, but the quant pass must still run.
        let cfg = RunConfig { variant: LempVariant::L, quantize_bits: 8, ..RunConfig::default() };
        let mut scratch = MethodScratch::new(512);
        let mut clock = BuildClock::default();
        let tuning = tune(&mut pb, &batch, &TuneGoal::Above(0.5), &cfg, &mut scratch, &mut clock);
        assert_eq!(tuning.per_bucket.len(), pb.bucket_count());
        assert!(clock.built > 0, "codebooks train during tuning");
        assert!(pb.buckets().iter().all(|b| b.indexes.quant.is_some()));
        assert!(tuning.tune_ns > 0, "the quant pass counts as tuning time");
    }

    #[test]
    fn topk_goal_seeds_thresholds() {
        let (pb, batch, _) = setup(300, 10, 0.8);
        let th = seed_threshold(&pb, batch.dirs.vector(0), 5);
        assert!(th.is_finite());
        // k larger than n: threshold stays unfull → −∞
        let th = seed_threshold(&pb, batch.dirs.vector(0), 10_000);
        assert_eq!(th, f64::NEG_INFINITY);
    }

    #[test]
    fn empty_inputs_yield_untuned() {
        let probes = GeneratorConfig::gaussian(100, 4, 0.2).generate(9);
        let mut pb = ProbeBuckets::build(&probes, &BucketPolicy::default());
        let empty = VectorStore::empty(4).unwrap();
        let batch = QueryBatch::build(&empty);
        let cfg = RunConfig { variant: LempVariant::LI, ..Default::default() };
        let mut scratch = MethodScratch::new(128);
        let mut clock = BuildClock::default();
        let tuning = tune(&mut pb, &batch, &TuneGoal::Above(0.5), &cfg, &mut scratch, &mut clock);
        assert_eq!(tuning.per_bucket.len(), pb.bucket_count());
        assert_eq!(tuning.tune_ns, 0);
    }
}
