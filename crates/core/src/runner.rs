//! The LEMP retrieval drivers: Above-θ (Alg. 1) and Row-Top-k (Sec. 4.5).
//!
//! **Above-θ** iterates buckets in the outer loop and queries in the inner
//! loop ("the order of the two loops … is chosen to be cache friendly":
//! the small bucket stays cache-resident while the large query set streams
//! through). Queries are sorted by decreasing length, so the inner loop
//! *stops* at the first pruned query — all shorter queries have larger local
//! thresholds — and the outer loop stops at the first bucket every query
//! prunes — all later buckets hold shorter vectors.
//!
//! **Row-Top-k** processes one query at a time: it seeds the running bound
//! `θ′` with the k longest probes, then sweeps buckets in decreasing-length
//! order running the Above-θ′ machinery per bucket, tightening `θ′` from
//! the top-k heap after every bucket, and stops at the first pruned bucket.
//! `‖q‖` is fixed to 1 (the query's length does not affect its top-k set).
//!
//! Both drivers have a multi-threaded mode (an extension over the paper):
//! queries are independent, so the query set is partitioned across scoped
//! threads after indexes are built; counters and results are merged.

use std::time::Instant;

use lemp_baselines::types::{Entry, RetrievalCounters, TopKLists};
use lemp_linalg::{kernels, TopK, VectorStore};

use crate::algos::blsh_bucket::MinMatchTable;
use crate::algos::{MethodScratch, QueryCtx, Sink};
use crate::bounds::{local_threshold, region_threshold};
use crate::bucket::{Bucket, ProbeBuckets};
use crate::exec::{ensure_for, run_method, verify_above, verify_topk, BuildClock, RunConfig};
use crate::query::QueryBatch;
use crate::tuner::{self, TuneGoal, Tuning};
use crate::variant::{resolve, LempVariant, ResolvedMethod, TunedParams};

/// Phase breakdown and work counters of one LEMP run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Wall-clock phases and candidate counts (the paper's measurements).
    pub counters: RetrievalCounters,
    /// Number of probe buckets.
    pub bucket_count: usize,
    /// Indexes built lazily during this run (tuning + retrieval).
    pub indexes_built: u64,
    /// Which bucket method served how many (query, bucket) pairs — shows
    /// the Sec. 4.4 tuner's decisions (e.g. the LENGTH share of a LI run).
    pub method_mix: MethodMix,
}

impl RunStats {
    /// Merges another run's statistics into this one (chunked drivers
    /// accumulate per-chunk stats into one run-level summary).
    pub fn merge(&mut self, other: &RunStats) {
        self.counters.merge(&other.counters);
        self.bucket_count = self.bucket_count.max(other.bucket_count);
        self.indexes_built += other.indexes_built;
        self.method_mix.merge(&other.method_mix);
    }
}

/// Per-method (query, bucket)-pair counts of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MethodMix {
    /// Pairs served by LENGTH.
    pub length: u64,
    /// Pairs served by COORD.
    pub coord: u64,
    /// Pairs served by INCR.
    pub incr: u64,
    /// Pairs served by the TA adapter.
    pub ta: u64,
    /// Pairs served by the cover-tree adapter.
    pub tree: u64,
    /// Pairs served by the L2AP adapter.
    pub l2ap: u64,
    /// Pairs served by the BLSH adapter.
    pub blsh: u64,
    /// Pairs served by the quantized LUT scan.
    pub quant: u64,
}

impl MethodMix {
    pub(crate) fn record(&mut self, method: ResolvedMethod) {
        match method {
            ResolvedMethod::Length => self.length += 1,
            ResolvedMethod::Coord(_) => self.coord += 1,
            ResolvedMethod::Incr(_) => self.incr += 1,
            ResolvedMethod::Ta => self.ta += 1,
            ResolvedMethod::Tree => self.tree += 1,
            ResolvedMethod::L2ap => self.l2ap += 1,
            ResolvedMethod::Blsh => self.blsh += 1,
            ResolvedMethod::Quant => self.quant += 1,
        }
    }

    fn merge(&mut self, other: &MethodMix) {
        self.length += other.length;
        self.coord += other.coord;
        self.incr += other.incr;
        self.ta += other.ta;
        self.tree += other.tree;
        self.l2ap += other.l2ap;
        self.blsh += other.blsh;
        self.quant += other.quant;
    }

    /// Total pairs processed.
    pub fn total(&self) -> u64 {
        self.length
            + self.coord
            + self.incr
            + self.ta
            + self.tree
            + self.l2ap
            + self.blsh
            + self.quant
    }

    /// Fraction of pairs served by LENGTH (0 when nothing ran).
    pub fn length_share(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.length as f64 / t as f64
        }
    }
}

/// Result of an Above-θ run.
#[derive(Debug, Clone)]
pub struct AboveThetaOutput {
    /// All entries `[QᵀP]_{ij} ≥ θ` (order unspecified).
    pub entries: Vec<Entry>,
    /// Run statistics.
    pub stats: RunStats,
}

/// Result of a Row-Top-k run.
#[derive(Debug, Clone)]
pub struct TopKOutput {
    /// Per query (by original index): the top-k probes, best first.
    pub lists: TopKLists,
    /// Run statistics.
    pub stats: RunStats,
}

/// `θ/‖q‖` with the degenerate-length convention of the bounds module.
pub(crate) fn theta_over_len(theta: f64, len: f64) -> f64 {
    if len <= 0.0 {
        if theta > 0.0 {
            f64::INFINITY
        } else {
            f64::NEG_INFINITY
        }
    } else {
        theta / len
    }
}

/// Number of queries (prefix of the sorted batch) whose local threshold for
/// a bucket with longest vector `lb` is ≤ 1.
pub(crate) fn unpruned_prefix(batch: &QueryBatch, theta: f64, lb: f64) -> usize {
    if lb <= 0.0 {
        // All-zero bucket: only meaningful when θ ≤ 0 (handled by caller).
        return if theta > 0.0 { 0 } else { batch.len() };
    }
    let cut = theta / lb;
    let cut = cut - 1e-12 * cut.abs(); // boundary slack: never prune an exact hit
    batch.lengths.partition_point(|&l| l >= cut)
}

/// The index the bucket must provide so every unpruned query of this run can
/// be served; `max_th_b` is the largest unpruned local threshold (the last
/// unpruned query's).
fn ensure_method(variant: LempVariant, tuned: &TunedParams, max_th_b: f64) -> ResolvedMethod {
    // For hybrids the coordinate method is needed iff some query reaches
    // θ_b ≥ t_b; `resolve` with the largest θ_b answers exactly that.
    resolve(variant, tuned, max_th_b)
}

pub(crate) fn make_blsh_table(cfg: &RunConfig) -> Option<MinMatchTable> {
    if cfg.variant == LempVariant::Blsh {
        Some(MinMatchTable::new(cfg.blsh_bits, cfg.blsh_eps))
    } else {
        None
    }
}

pub(crate) fn max_bucket_len(buckets: &ProbeBuckets) -> usize {
    buckets.buckets().iter().map(Bucket::len).max().unwrap_or(0)
}

/// Processes one bucket against a range `[q_lo, q_hi)` of the sorted query
/// batch (Above-θ inner loop). The bucket's index must already be built.
#[allow(clippy::too_many_arguments)]
fn process_bucket_above(
    bucket: &Bucket,
    batch: &QueryBatch,
    queries: &VectorStore,
    theta: f64,
    tol: &[f64],
    q_lo: usize,
    q_hi: usize,
    variant: LempVariant,
    tuned: &TunedParams,
    blsh_table: Option<&MinMatchTable>,
    scratch: &mut MethodScratch,
    sink: &mut Sink,
    entries: &mut Vec<Entry>,
    counters: &mut RetrievalCounters,
    mix: &mut MethodMix,
) {
    scratch.ensure(bucket.len());
    // `qi` indexes four parallel per-query arrays; a range loop is clearer
    // than zipping them.
    #[allow(clippy::needless_range_loop)]
    for qi in q_lo..q_hi {
        let qlen = batch.lengths[qi];
        let th_b = region_threshold(theta, qlen, bucket.max_len, bucket.min_len);
        let method = resolve(variant, tuned, th_b);
        mix.record(method);
        let ctx = QueryCtx {
            dir: batch.dirs.vector(qi),
            len: qlen,
            theta,
            theta_over_len: tol[qi],
            local_threshold: th_b,
            scaled: queries.vector(batch.ids[qi] as usize),
        };
        sink.clear();
        let internal = run_method(method, &ctx, bucket, blsh_table, scratch, sink);
        let (vdots, results) = verify_above(bucket, &ctx, sink, batch.ids[qi], entries);
        counters.candidates += internal + vdots;
        counters.results += results;
    }
}

/// Emits the whole zero-length bucket for every query (only reachable when
/// `θ ≤ 0`: all inner products with a zero vector are 0 ≥ θ).
pub(crate) fn emit_zero_bucket(
    bucket: &Bucket,
    batch: &QueryBatch,
    q_lo: usize,
    q_hi: usize,
    entries: &mut Vec<Entry>,
    counters: &mut RetrievalCounters,
) {
    for qi in q_lo..q_hi {
        for &pid in &bucket.ids {
            entries.push(Entry { query: batch.ids[qi], probe: pid, value: 0.0 });
            counters.results += 1;
        }
    }
}

/// Runs Above-θ over preprocessed buckets.
pub(crate) fn above_theta(
    buckets: &mut ProbeBuckets,
    queries: &VectorStore,
    theta: f64,
    cfg: &RunConfig,
) -> AboveThetaOutput {
    assert_eq!(queries.dim(), buckets.dim(), "query/probe dimensionality mismatch");
    let prep_start = Instant::now();
    let batch = QueryBatch::build(queries);
    let tol: Vec<f64> = batch.lengths.iter().map(|&l| theta_over_len(theta, l)).collect();
    let blsh_table = make_blsh_table(cfg);
    let batch_prep_ns = prep_start.elapsed().as_nanos() as u64;

    let mut scratch = MethodScratch::new(max_bucket_len(buckets));
    let mut clock = BuildClock::default();
    let tuning =
        tuner::tune(buckets, &batch, &TuneGoal::Above(theta), cfg, &mut scratch, &mut clock);
    let tune_build_ns = clock.ns;
    let tune_ns = tuning.tune_ns.saturating_sub(tune_build_ns);

    let retrieval_start = Instant::now();
    let mut entries: Vec<Entry> = Vec::new();
    let mut counters = RetrievalCounters { queries: queries.len() as u64, ..Default::default() };

    // Build whatever each reachable bucket needs, then process.
    let nbuckets = buckets.bucket_count();
    let mut reachable = 0usize;
    for b in 0..nbuckets {
        let bucket = &mut buckets.buckets_mut()[b];
        let unpruned = unpruned_prefix(&batch, theta, bucket.max_len);
        if unpruned == 0 {
            break; // later buckets are shorter: pruned for every query
        }
        reachable = b + 1;
        if bucket.max_len > 0.0 {
            let max_th_b = local_threshold(theta, batch.lengths[unpruned - 1], bucket.max_len);
            let method = ensure_method(cfg.variant, &tuning.per_bucket[b], max_th_b);
            let l2ap_t = local_threshold(theta, batch.max_len, bucket.max_len);
            ensure_for(bucket, method, l2ap_t, cfg, cfg_seed(cfg, b), &mut clock);
        }
    }
    let build_ns_retrieval = clock.ns - tune_build_ns;

    let mix = above_theta_body(
        buckets,
        &batch,
        queries,
        theta,
        &tol,
        reachable,
        cfg,
        &tuning.per_bucket,
        blsh_table.as_ref(),
        &mut scratch,
        &mut entries,
        &mut counters,
    );

    let retrieval_ns =
        (retrieval_start.elapsed().as_nanos() as u64).saturating_sub(build_ns_retrieval);
    counters.preprocess_ns = buckets.prep_ns() + batch_prep_ns + clock.ns;
    counters.tune_ns = tune_ns;
    counters.retrieval_ns = retrieval_ns;
    AboveThetaOutput {
        entries,
        stats: RunStats {
            counters,
            bucket_count: nbuckets,
            indexes_built: clock.built,
            method_mix: mix,
        },
    }
}

/// The retrieval phase of Above-θ over buckets whose indexes are already
/// built (serial with the caller's scratch, or partitioned across scoped
/// threads). Shared by the lazy `&mut` driver and the warmed `&self` path.
#[allow(clippy::too_many_arguments)]
fn above_theta_body(
    buckets: &ProbeBuckets,
    batch: &QueryBatch,
    queries: &VectorStore,
    theta: f64,
    tol: &[f64],
    reachable: usize,
    cfg: &RunConfig,
    per_bucket: &[TunedParams],
    blsh_table: Option<&MinMatchTable>,
    scratch: &mut MethodScratch,
    entries: &mut Vec<Entry>,
    counters: &mut RetrievalCounters,
) -> MethodMix {
    let mut mix = MethodMix::default();
    if cfg.threads <= 1 {
        let mut sink = Sink::default();
        for (bucket, params) in buckets.buckets()[..reachable].iter().zip(per_bucket) {
            let unpruned = unpruned_prefix(batch, theta, bucket.max_len);
            if bucket.max_len <= 0.0 {
                emit_zero_bucket(bucket, batch, 0, unpruned, entries, counters);
                continue;
            }
            process_bucket_above(
                bucket,
                batch,
                queries,
                theta,
                tol,
                0,
                unpruned,
                cfg.variant,
                params,
                blsh_table,
                scratch,
                &mut sink,
                entries,
                counters,
                &mut mix,
            );
        }
    } else {
        let nthreads = cfg.threads.min(batch.len().max(1));
        let chunk = batch.len().div_ceil(nthreads);
        let results: Vec<(Vec<Entry>, RetrievalCounters, MethodMix)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..nthreads)
                    .map(|t| {
                        scope.spawn(move || {
                            let lo = t * chunk;
                            let hi = ((t + 1) * chunk).min(batch.len());
                            let mut scratch = MethodScratch::new(max_bucket_len(buckets));
                            let mut sink = Sink::default();
                            let mut entries = Vec::new();
                            let mut counters = RetrievalCounters::default();
                            let mut local_mix = MethodMix::default();
                            for (bucket, params) in
                                buckets.buckets()[..reachable].iter().zip(per_bucket)
                            {
                                let unpruned = unpruned_prefix(batch, theta, bucket.max_len);
                                let hi_b = unpruned.min(hi);
                                if lo >= hi_b {
                                    continue;
                                }
                                if bucket.max_len <= 0.0 {
                                    emit_zero_bucket(
                                        bucket,
                                        batch,
                                        lo,
                                        hi_b,
                                        &mut entries,
                                        &mut counters,
                                    );
                                    continue;
                                }
                                process_bucket_above(
                                    bucket,
                                    batch,
                                    queries,
                                    theta,
                                    tol,
                                    lo,
                                    hi_b,
                                    cfg.variant,
                                    params,
                                    blsh_table,
                                    &mut scratch,
                                    &mut sink,
                                    &mut entries,
                                    &mut counters,
                                    &mut local_mix,
                                );
                            }
                            (entries, counters, local_mix)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
            });
        for (mut e, c, m) in results {
            entries.append(&mut e);
            counters.candidates += c.candidates;
            counters.results += c.results;
            mix.merge(&m);
        }
    }
    mix
}

/// Above-θ over a **warmed** engine: all reachable indexes are assumed
/// built and the tuned parameters are supplied by the caller, so the
/// buckets are only read — this is the `&self`-shareable hot path.
pub(crate) fn above_theta_prepared(
    buckets: &ProbeBuckets,
    queries: &VectorStore,
    theta: f64,
    cfg: &RunConfig,
    per_bucket: &[TunedParams],
    blsh_table: Option<&MinMatchTable>,
    scratch: &mut MethodScratch,
) -> AboveThetaOutput {
    assert_eq!(queries.dim(), buckets.dim(), "query/probe dimensionality mismatch");
    let prep_start = Instant::now();
    let batch = QueryBatch::build(queries);
    let tol: Vec<f64> = batch.lengths.iter().map(|&l| theta_over_len(theta, l)).collect();
    let batch_prep_ns = prep_start.elapsed().as_nanos() as u64;

    let retrieval_start = Instant::now();
    let mut entries: Vec<Entry> = Vec::new();
    let mut counters = RetrievalCounters { queries: queries.len() as u64, ..Default::default() };
    let mut reachable = 0usize;
    for (b, bucket) in buckets.buckets().iter().enumerate() {
        if unpruned_prefix(&batch, theta, bucket.max_len) == 0 {
            break;
        }
        reachable = b + 1;
    }
    let mix = above_theta_body(
        buckets,
        &batch,
        queries,
        theta,
        &tol,
        reachable,
        cfg,
        per_bucket,
        blsh_table,
        scratch,
        &mut entries,
        &mut counters,
    );
    counters.preprocess_ns = batch_prep_ns;
    counters.retrieval_ns = retrieval_start.elapsed().as_nanos() as u64;
    AboveThetaOutput {
        entries,
        stats: RunStats {
            counters,
            bucket_count: buckets.bucket_count(),
            indexes_built: 0,
            method_mix: mix,
        },
    }
}

/// Builds every index the bucket can need once warmed: the variant's method
/// at the largest reachable local threshold (1.0) plus both sorted-list
/// layouts (COORD and INCR), which the adaptive arm menu draws from. The
/// cache budget already accounts for the two sorted-list layouts
/// ([`crate::BucketPolicy::max_bucket`]), so this stays within the paper's
/// cache model.
pub(crate) fn warm_bucket(
    bucket: &mut Bucket,
    params: &TunedParams,
    cfg: &RunConfig,
    bucket_seed: u64,
    clock: &mut BuildClock,
) {
    if bucket.max_len <= 0.0 {
        return;
    }
    let method = ensure_method(cfg.variant, params, 1.0);
    ensure_for(bucket, method, cfg.l2ap_topk_threshold, cfg, bucket_seed, clock);
    if cfg.quantize_bits > 0 {
        // Quantized codebooks train at warm regardless of the tuner's
        // per-bucket pick, so reloads/plan refreshes never train on the
        // query path and `/stats` residency is observable right away.
        ensure_for(bucket, ResolvedMethod::Quant, cfg.l2ap_topk_threshold, cfg, bucket_seed, clock);
    }
    ensure_for(bucket, ResolvedMethod::Coord(1), cfg.l2ap_topk_threshold, cfg, bucket_seed, clock);
    if bucket.dirs.dim() > 1 {
        ensure_for(
            bucket,
            ResolvedMethod::Incr(2),
            cfg.l2ap_topk_threshold,
            cfg,
            bucket_seed,
            clock,
        );
    }
}

/// Warms every bucket (see [`warm_bucket`]); `per_bucket` must be aligned
/// with the bucket list.
pub(crate) fn prebuild_all(
    buckets: &mut ProbeBuckets,
    cfg: &RunConfig,
    per_bucket: &[TunedParams],
    clock: &mut BuildClock,
) {
    for (b, (bucket, params)) in buckets.buckets_mut().iter_mut().zip(per_bucket).enumerate() {
        warm_bucket(bucket, params, cfg, cfg_seed(cfg, b), clock);
    }
}

pub(crate) fn cfg_seed(cfg: &RunConfig, bucket_idx: usize) -> u64 {
    // Distinct hyperplanes per bucket, stable across runs.
    0x1E4D_0000 ^ (bucket_idx as u64) ^ ((cfg.blsh_bits as u64) << 32)
}

/// Per-query score floor at the `‖q‖ = 1` scale of the Row-Top-k driver
/// (the driver ranks by `q̄ᵀp`; a floor on the true value `qᵀp` divides by
/// `‖q‖`), with the same boundary slack as bucket pruning so an exact hit
/// is never lost to rounding.
fn floor_scaled_for(floor: f64, qlen: f64) -> f64 {
    if floor == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    let fl = theta_over_len(floor, qlen);
    if !fl.is_finite() {
        return fl;
    }
    fl - 1e-12 * fl.abs()
}

/// One Row-Top-k query over pre-built buckets (shared by the serial and
/// parallel drivers). Returns the top-k list (original probe ids).
/// `floor_scaled` raises the running `θ′` from below (Row-Top-k with a
/// score floor; `−∞` for the plain problem).
#[allow(clippy::too_many_arguments)]
fn topk_one_query(
    buckets: &[Bucket],
    dir: &[f64],
    k: usize,
    floor_scaled: f64,
    variant: LempVariant,
    per_bucket: &[TunedParams],
    blsh_table: Option<&MinMatchTable>,
    scratch: &mut MethodScratch,
    sink: &mut Sink,
    top: &mut TopK,
    seed_counts: &mut Vec<usize>,
    counters: &mut RetrievalCounters,
    mix: &mut MethodMix,
) -> Vec<lemp_linalg::ScoredItem> {
    top.clear();
    seed_counts.clear();
    seed_counts.resize(buckets.len(), 0);
    // Warm-up: the k longest probes seed θ′ (Sec. 4.5).
    let mut need = k;
    'seed: for (b, bucket) in buckets.iter().enumerate() {
        for lid in 0..bucket.len() {
            if need == 0 {
                break 'seed;
            }
            let v = kernels::dot(dir, bucket.origs.vector(lid));
            counters.candidates += 1;
            top.push(bucket.ids[lid] as usize, v);
            seed_counts[b] += 1;
            need -= 1;
        }
    }
    let mut theta = top.threshold().max(floor_scaled);
    for (b, bucket) in buckets.iter().enumerate() {
        if local_threshold(theta, 1.0, bucket.max_len) > 1.0 + 1e-12 {
            break; // θ′ only grows and buckets only get shorter
        }
        scratch.ensure(bucket.len());
        let th_b = region_threshold(theta, 1.0, bucket.max_len, bucket.min_len);
        let method = resolve(variant, &per_bucket[b], th_b);
        mix.record(method);
        let ctx = QueryCtx {
            dir,
            len: 1.0,
            theta,
            theta_over_len: theta,
            local_threshold: th_b,
            scaled: dir,
        };
        sink.clear();
        let internal = run_method(method, &ctx, bucket, blsh_table, scratch, sink);
        let vdots = verify_topk(bucket, &ctx, sink, seed_counts[b], top);
        counters.candidates += internal + vdots;
        theta = top.threshold().max(floor_scaled);
    }
    top.drain_sorted()
}

/// Runs Row-Top-k over preprocessed buckets.
pub(crate) fn row_top_k(
    buckets: &mut ProbeBuckets,
    queries: &VectorStore,
    k: usize,
    cfg: &RunConfig,
) -> TopKOutput {
    row_top_k_floor(buckets, queries, k, f64::NEG_INFINITY, cfg)
}

/// Row-Top-k restricted to entries with `qᵀp ≥ floor` (lists may come back
/// shorter than `k`). The floor feeds the running `θ′` from below, so it
/// *prunes* — high floors skip buckets entirely instead of filtering
/// afterwards. `floor = −∞` is exactly the plain Row-Top-k problem.
pub(crate) fn row_top_k_floor(
    buckets: &mut ProbeBuckets,
    queries: &VectorStore,
    k: usize,
    floor: f64,
    cfg: &RunConfig,
) -> TopKOutput {
    assert_eq!(queries.dim(), buckets.dim(), "query/probe dimensionality mismatch");
    // Clamp k to the live probe count: `k > n` returns every probe anyway,
    // and the clamp keeps a hostile k (say 10¹⁸) from sizing a heap.
    let k = k.min(buckets.total());
    let prep_start = Instant::now();
    let batch = QueryBatch::build(queries);
    let blsh_table = make_blsh_table(cfg);
    let batch_prep_ns = prep_start.elapsed().as_nanos() as u64;

    let mut scratch = MethodScratch::new(max_bucket_len(buckets));
    let mut clock = BuildClock::default();
    let tuning = tuner::tune(buckets, &batch, &TuneGoal::TopK(k), cfg, &mut scratch, &mut clock);
    let tune_build_ns = clock.ns;
    let tune_ns = tuning.tune_ns.saturating_sub(tune_build_ns);

    let retrieval_start = Instant::now();
    let mut lists: TopKLists = vec![Vec::new(); queries.len()];
    let mut counters = RetrievalCounters { queries: queries.len() as u64, ..Default::default() };
    let mut mix = MethodMix::default();

    if k > 0 && !batch.is_empty() && buckets.bucket_count() > 0 {
        if cfg.threads <= 1 {
            serial_topk(
                buckets,
                &batch,
                k,
                floor,
                cfg,
                &tuning,
                blsh_table.as_ref(),
                &mut scratch,
                &mut clock,
                &mut lists,
                &mut counters,
                &mut mix,
            );
        } else {
            // Parallel mode pre-builds every bucket's index (shared read
            // access), trading the lazy-construction saving for parallelism.
            for b in 0..buckets.bucket_count() {
                let bucket = &mut buckets.buckets_mut()[b];
                if bucket.max_len <= 0.0 {
                    continue;
                }
                let method = ensure_method(cfg.variant, &tuning.per_bucket[b], 1.0);
                ensure_for(
                    bucket,
                    method,
                    cfg.l2ap_topk_threshold,
                    cfg,
                    cfg_seed(cfg, b),
                    &mut clock,
                );
            }
            parallel_topk(
                buckets,
                &batch,
                k,
                floor,
                cfg,
                &tuning.per_bucket,
                blsh_table.as_ref(),
                &mut lists,
                &mut counters,
                &mut mix,
            );
        }
    }

    let build_ns_retrieval = clock.ns - tune_build_ns;
    let retrieval_ns =
        (retrieval_start.elapsed().as_nanos() as u64).saturating_sub(build_ns_retrieval);
    counters.results = lists.iter().map(|l| l.len() as u64).sum();
    counters.preprocess_ns = buckets.prep_ns() + batch_prep_ns + clock.ns;
    counters.tune_ns = tune_ns;
    counters.retrieval_ns = retrieval_ns;
    TopKOutput {
        lists,
        stats: RunStats {
            counters,
            bucket_count: buckets.bucket_count(),
            indexes_built: clock.built,
            method_mix: mix,
        },
    }
}

#[allow(clippy::too_many_arguments)]
fn serial_topk(
    buckets: &mut ProbeBuckets,
    batch: &QueryBatch,
    k: usize,
    floor: f64,
    cfg: &RunConfig,
    tuning: &Tuning,
    blsh_table: Option<&MinMatchTable>,
    scratch: &mut MethodScratch,
    clock: &mut BuildClock,
    lists: &mut TopKLists,
    counters: &mut RetrievalCounters,
    mix: &mut MethodMix,
) {
    let mut sink = Sink::default();
    let mut top = TopK::new(k);
    let mut seed_counts: Vec<usize> = Vec::new();
    // Lazy index construction: before each query sweep, make sure the
    // buckets this query *may* reach are indexed. θ′ after seeding can only
    // grow, so a bucket pruned at seed time stays pruned.
    for qi in 0..batch.len() {
        let dir = batch.dirs.vector(qi);
        let floor_scaled = floor_scaled_for(floor, batch.lengths[qi]);
        let theta_seed = tuner::seed_threshold(buckets, dir, k).max(floor_scaled);
        for b in 0..buckets.bucket_count() {
            let bucket = &mut buckets.buckets_mut()[b];
            if bucket.max_len <= 0.0 {
                continue;
            }
            let th_b = local_threshold(theta_seed, 1.0, bucket.max_len);
            if th_b > 1.0 + 1e-12 {
                break;
            }
            // θ′ grows while the query sweeps buckets, so the local
            // threshold seen at run time may exceed the seed-time value;
            // prepare for the largest one (1.0) the sweep can pose.
            let method = ensure_method(cfg.variant, &tuning.per_bucket[b], 1.0);
            ensure_for(bucket, method, cfg.l2ap_topk_threshold, cfg, cfg_seed(cfg, b), clock);
        }
        topk_range(
            buckets.buckets(),
            batch,
            qi,
            qi + 1,
            k,
            floor,
            cfg.variant,
            &tuning.per_bucket,
            blsh_table,
            scratch,
            &mut sink,
            &mut top,
            &mut seed_counts,
            counters,
            mix,
            |qid, list| lists[qid as usize] = list,
        );
    }
}

/// Runs the queries `[lo, hi)` of the sorted batch over pre-built buckets,
/// handing each finished list (with its original query id) to `emit`.
/// Shared by the serial driver, the parallel workers, and the warmed
/// `&self` path.
#[allow(clippy::too_many_arguments)]
fn topk_range<F: FnMut(u32, Vec<lemp_linalg::ScoredItem>)>(
    buckets: &[Bucket],
    batch: &QueryBatch,
    lo: usize,
    hi: usize,
    k: usize,
    floor: f64,
    variant: LempVariant,
    per_bucket: &[TunedParams],
    blsh_table: Option<&MinMatchTable>,
    scratch: &mut MethodScratch,
    sink: &mut Sink,
    top: &mut TopK,
    seed_counts: &mut Vec<usize>,
    counters: &mut RetrievalCounters,
    mix: &mut MethodMix,
    mut emit: F,
) {
    for qi in lo..hi {
        let floor_scaled = floor_scaled_for(floor, batch.lengths[qi]);
        let mut list = topk_one_query(
            buckets,
            batch.dirs.vector(qi),
            k,
            floor_scaled,
            variant,
            per_bucket,
            blsh_table,
            scratch,
            sink,
            top,
            seed_counts,
            counters,
            mix,
        );
        // The driver works with ‖q‖ = 1 (Sec. 4.5); report true inner
        // products by scaling back (the ranking is scale-invariant).
        for item in &mut list {
            item.score *= batch.lengths[qi];
        }
        if floor > f64::NEG_INFINITY {
            // The heap may still hold below-floor warm-up seeds; the API
            // guarantees every reported value is ≥ floor.
            list.retain(|item| item.score >= floor);
        }
        emit(batch.ids[qi], list);
    }
}

/// Row-Top-k (with optional floor) over a **warmed** engine: every bucket's
/// index is assumed built, so the buckets are only read — the
/// `&self`-shareable hot path.
#[allow(clippy::too_many_arguments)]
pub(crate) fn row_top_k_prepared(
    buckets: &ProbeBuckets,
    queries: &VectorStore,
    k: usize,
    floor: f64,
    cfg: &RunConfig,
    per_bucket: &[TunedParams],
    blsh_table: Option<&MinMatchTable>,
    scratch: &mut MethodScratch,
) -> TopKOutput {
    assert_eq!(queries.dim(), buckets.dim(), "query/probe dimensionality mismatch");
    // Same clamp as the lazy driver: non-panicking for any k.
    let k = k.min(buckets.total());
    let prep_start = Instant::now();
    let batch = QueryBatch::build(queries);
    let batch_prep_ns = prep_start.elapsed().as_nanos() as u64;

    let retrieval_start = Instant::now();
    let mut lists: TopKLists = vec![Vec::new(); queries.len()];
    let mut counters = RetrievalCounters { queries: queries.len() as u64, ..Default::default() };
    let mut mix = MethodMix::default();

    if k > 0 && !batch.is_empty() && buckets.bucket_count() > 0 {
        if cfg.threads <= 1 {
            let mut sink = Sink::default();
            let mut top = TopK::new(k);
            let mut seed_counts: Vec<usize> = Vec::new();
            topk_range(
                buckets.buckets(),
                &batch,
                0,
                batch.len(),
                k,
                floor,
                cfg.variant,
                per_bucket,
                blsh_table,
                scratch,
                &mut sink,
                &mut top,
                &mut seed_counts,
                &mut counters,
                &mut mix,
                |qid, list| lists[qid as usize] = list,
            );
        } else {
            parallel_topk(
                buckets,
                &batch,
                k,
                floor,
                cfg,
                per_bucket,
                blsh_table,
                &mut lists,
                &mut counters,
                &mut mix,
            );
        }
    }

    counters.results = lists.iter().map(|l| l.len() as u64).sum();
    counters.preprocess_ns = batch_prep_ns;
    counters.retrieval_ns = retrieval_start.elapsed().as_nanos() as u64;
    TopKOutput {
        lists,
        stats: RunStats {
            counters,
            bucket_count: buckets.bucket_count(),
            indexes_built: 0,
            method_mix: mix,
        },
    }
}

/// One worker's output: `(query id, top-k list)` pairs plus its counters.
type WorkerTopK = (Vec<(u32, Vec<lemp_linalg::ScoredItem>)>, RetrievalCounters, MethodMix);

#[allow(clippy::too_many_arguments)]
fn parallel_topk(
    buckets: &ProbeBuckets,
    batch: &QueryBatch,
    k: usize,
    floor: f64,
    cfg: &RunConfig,
    per_bucket: &[TunedParams],
    blsh_table: Option<&MinMatchTable>,
    lists: &mut TopKLists,
    counters: &mut RetrievalCounters,
    mix: &mut MethodMix,
) {
    let nthreads = cfg.threads.min(batch.len().max(1));
    let chunk = batch.len().div_ceil(nthreads);
    let results: Vec<WorkerTopK> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..nthreads)
            .map(|t| {
                scope.spawn(move || {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(batch.len());
                    let mut scratch = MethodScratch::new(max_bucket_len(buckets));
                    let mut sink = Sink::default();
                    let mut top = TopK::new(k);
                    let mut seed_counts = Vec::new();
                    let mut local_counters = RetrievalCounters::default();
                    let mut local_mix = MethodMix::default();
                    let mut out = Vec::with_capacity(hi.saturating_sub(lo));
                    topk_range(
                        buckets.buckets(),
                        batch,
                        lo,
                        hi,
                        k,
                        floor,
                        cfg.variant,
                        per_bucket,
                        blsh_table,
                        &mut scratch,
                        &mut sink,
                        &mut top,
                        &mut seed_counts,
                        &mut local_counters,
                        &mut local_mix,
                        |qid, list| out.push((qid, list)),
                    );
                    (out, local_counters, local_mix)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    for (chunk_lists, c, m) in results {
        for (qid, list) in chunk_lists {
            lists[qid as usize] = list;
        }
        counters.candidates += c.candidates;
        mix.merge(&m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemp_data::synthetic::GeneratorConfig;

    #[test]
    fn floor_scaling_handles_degenerate_lengths() {
        // Plain Row-Top-k sentinel passes through untouched.
        assert_eq!(floor_scaled_for(f64::NEG_INFINITY, 2.0), f64::NEG_INFINITY);
        assert_eq!(floor_scaled_for(f64::NEG_INFINITY, 0.0), f64::NEG_INFINITY);
        // A positive floor for a zero-length query is unreachable.
        assert_eq!(floor_scaled_for(1.0, 0.0), f64::INFINITY);
        // A non-positive floor for a zero-length query admits everything.
        assert_eq!(floor_scaled_for(-1.0, 0.0), f64::NEG_INFINITY);
        // Finite case: floor/len, slacked strictly downward.
        let fl = floor_scaled_for(3.0, 2.0);
        assert!(fl < 1.5 && fl > 1.5 - 1e-10);
        // Negative finite floors slack downward too (never upward).
        let fl = floor_scaled_for(-3.0, 2.0);
        assert!(fl < -1.5 && fl > -1.5 - 1e-10);
    }

    #[test]
    fn unpruned_prefix_respects_sorted_lengths() {
        let store = GeneratorConfig::gaussian(50, 6, 1.0).generate(77);
        let batch = QueryBatch::build(&store);
        // Lengths are sorted decreasing; the prefix must be monotone in lb.
        let a = unpruned_prefix(&batch, 1.0, 0.5);
        let b = unpruned_prefix(&batch, 1.0, 1.0);
        assert!(b >= a, "longer buckets admit at least as many queries");
        // Every admitted query really satisfies θ_b ≤ 1 (with slack).
        for qi in 0..b {
            assert!(batch.lengths[qi] * 1.0 >= 1.0 - 1e-9);
        }
        // θ ≤ 0 with a zero-length bucket admits everything.
        assert_eq!(unpruned_prefix(&batch, -0.1, 0.0), batch.len());
        assert_eq!(unpruned_prefix(&batch, 0.1, 0.0), 0);
    }

    #[test]
    fn theta_over_len_degenerate_conventions() {
        assert_eq!(theta_over_len(1.0, 0.0), f64::INFINITY);
        assert_eq!(theta_over_len(-1.0, 0.0), f64::NEG_INFINITY);
        assert_eq!(theta_over_len(0.0, 0.0), f64::NEG_INFINITY);
        assert_eq!(theta_over_len(3.0, 2.0), 1.5);
    }
}
