//! The unified query surface: **request → plan → execute**.
//!
//! The paper's central observation is that one bucketed pipeline answers
//! every retrieval problem it poses — Above-θ (Problem 1), Row-Top-k
//! (Problem 2) and their two-sided/floored variants — with only the
//! per-bucket *method choice* varying (Sec. 4.4). This module makes that
//! observation the architecture:
//!
//! 1. A [`QueryRequest`] names *what* to retrieve (a [`QueryKind`]) and
//!    *how* to execute it ([`ExecOptions`]: online bandit selection instead
//!    of the sample-based tuner, bounded-memory chunked sweeps).
//! 2. [`Engine::plan`] compiles the request into a [`QueryPlan`] via the
//!    [`Planner`]: one [`PlanSegment`] per shard assigning each bucket its
//!    algorithm, derived from the tuned `t_b`/`φ_b` the warm-up produced
//!    (the existing Sec. 4.4 tuner; no re-tuning happens at plan time).
//! 3. [`Engine::execute`] runs the plan over a query batch through `&self`
//!    with a caller-owned [`Scratch`], returning a [`QueryResponse`] that
//!    carries the rows *and* the uniform run statistics
//!    ([`RunStats`]/[`crate::MethodMix`]).
//!
//! [`Lemp`], [`crate::DynamicLemp`] and [`crate::ShardedLemp`] all
//! implement [`Engine`], and the trait is dyn-compatible: services hold a
//! `Box<dyn Engine>` (or `&dyn Engine`) and never match on the engine kind
//! — adding a query kind or an engine backend is a one-file change.
//!
//! # Exactness
//!
//! Every execution option is exact: the plan moves time around, never
//! results. The engine-trait conformance suite
//! (`crates/core/tests/engine_conformance.rs`) pins this down by running
//! every [`QueryKind`] × [`ExecOptions`] combination through `dyn Engine`
//! for all three engines and comparing bit-for-bit against the direct
//! entry points and the naive baseline.
//!
//! # Example
//!
//! ```
//! use lemp_core::{Engine, Lemp, QueryRequest, WarmGoal};
//! use lemp_linalg::VectorStore;
//!
//! let probes = VectorStore::from_rows(&[vec![1.0, 0.0], vec![0.0, 2.0]]).unwrap();
//! let queries = VectorStore::from_rows(&[vec![3.0, 1.0]]).unwrap();
//! let mut engine = Lemp::new(&probes);
//! engine.warm(&queries, WarmGoal::TopK(1));
//!
//! let engine: &dyn Engine = &engine; // dyn-compatible handle
//! let request = QueryRequest::top_k(1);
//! let plan = engine.plan(&request);
//! let mut scratch = engine.query_scratch();
//! let response = engine.execute(&plan, &queries, &mut scratch);
//! assert_eq!(response.lists().unwrap()[0][0].id, 0);
//! ```

use lemp_baselines::types::Entry;
use lemp_linalg::VectorStore;

use crate::adaptive::{self, AdaptiveConfig, AdaptiveSelector};
use crate::algos::blsh_bucket::MinMatchTable;
use crate::algos::MethodScratch;
use crate::bucket::ProbeBuckets;
use crate::exec::RunConfig;
use crate::runner::{self, AboveThetaOutput, RunStats, TopKOutput};
use crate::variant::{resolve, ResolvedMethod, TunedParams};
use crate::{Lemp, WarmGoal, WarmReport};

/// What one query batch asks for — the four retrieval problems of the
/// engine, one enum. `theta`/`k`/`floor` carry the problem parameters; the
/// *execution* knobs live in [`ExecOptions`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryKind {
    /// **Above-θ** (Problem 1): every entry of `QᵀP` with `qᵀp ≥ theta`.
    AboveTheta {
        /// The retrieval threshold.
        theta: f64,
    },
    /// **|Above-θ|**: every entry with `|qᵀp| ≥ theta` (`theta > 0`),
    /// reported with its true signed value.
    AbsAboveTheta {
        /// The two-sided retrieval threshold (must be positive).
        theta: f64,
    },
    /// **Row-Top-k** (Problem 2): per query, the `k` probes with the
    /// largest inner products. `k` is clamped to the live probe count.
    TopK {
        /// How many probes to return per query.
        k: usize,
    },
    /// **Row-Top-k with a score floor**: the up-to-`k` best probes among
    /// those with `qᵀp ≥ floor` (lists may come back short).
    TopKWithFloor {
        /// How many probes to return per query (clamped like [`QueryKind::TopK`]).
        k: usize,
        /// Entries below this true inner-product value are never reported.
        floor: f64,
    },
}

impl QueryKind {
    /// `true` for the entry-set problems (Above-θ and |Above-θ|), `false`
    /// for the per-query-list problems.
    pub fn is_above(&self) -> bool {
        matches!(self, QueryKind::AboveTheta { .. } | QueryKind::AbsAboveTheta { .. })
    }

    /// Short display name ("above-theta", "top-k", …).
    pub fn name(&self) -> &'static str {
        match self {
            QueryKind::AboveTheta { .. } => "above-theta",
            QueryKind::AbsAboveTheta { .. } => "abs-above-theta",
            QueryKind::TopK { .. } => "top-k",
            QueryKind::TopKWithFloor { .. } => "top-k-with-floor",
        }
    }

    /// The [`WarmGoal`] matching this kind — what a cold engine should be
    /// warmed for before executing it.
    pub fn warm_goal(&self) -> WarmGoal {
        match *self {
            QueryKind::AboveTheta { theta } | QueryKind::AbsAboveTheta { theta } => {
                WarmGoal::Above(theta)
            }
            QueryKind::TopK { k } | QueryKind::TopKWithFloor { k, .. } => WarmGoal::TopK(k.max(1)),
        }
    }
}

/// Execution options of one request. All options are exact — they change
/// how time and memory are spent, never the result set.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ExecOptions {
    /// `Some(cfg)`: per-bucket methods are chosen **online** by the
    /// Sec. 4.4-outlook bandit instead of the tuned `t_b`/`φ_b`. The
    /// learning state lives in the caller's [`Scratch`] and persists
    /// across calls with the same configuration.
    pub adaptive: Option<AdaptiveConfig>,
    /// `Some(n)`: process the query batch in blocks of `n` rows (bounded
    /// peak memory for huge batches). Must be positive.
    pub chunk: Option<usize>,
}

/// One query-batch request: the problem ([`QueryKind`]) plus its
/// [`ExecOptions`]. Requests are plain comparable values, so services can
/// coalesce compatible requests (`lemp-serve` micro-batches queued
/// requests whose `QueryRequest`s are equal into one engine call).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryRequest {
    /// What to retrieve.
    pub kind: QueryKind,
    /// How to execute it.
    pub options: ExecOptions,
}

impl QueryRequest {
    /// A request with default (tuned, monolithic) execution options.
    pub fn new(kind: QueryKind) -> Self {
        Self { kind, options: ExecOptions::default() }
    }

    /// Above-θ at the given threshold.
    pub fn above_theta(theta: f64) -> Self {
        Self::new(QueryKind::AboveTheta { theta })
    }

    /// |Above-θ| at the given (positive) threshold.
    pub fn abs_above_theta(theta: f64) -> Self {
        Self::new(QueryKind::AbsAboveTheta { theta })
    }

    /// Row-Top-k at the given `k`.
    pub fn top_k(k: usize) -> Self {
        Self::new(QueryKind::TopK { k })
    }

    /// Row-Top-k with a score floor.
    pub fn top_k_with_floor(k: usize, floor: f64) -> Self {
        Self::new(QueryKind::TopKWithFloor { k, floor })
    }

    /// Switches execution to online (bandit) method selection.
    pub fn adaptive(mut self, cfg: AdaptiveConfig) -> Self {
        self.options.adaptive = Some(cfg);
        self
    }

    /// Switches execution to chunked sweeps of `chunk_size` query rows.
    ///
    /// # Panics
    /// If `chunk_size == 0`.
    pub fn chunked(mut self, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk_size must be positive");
        self.options.chunk = Some(chunk_size);
        self
    }
}

/// The algorithm a plan assigns to one bucket — the public mirror of the
/// engine's internal method resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BucketAlgo {
    /// LENGTH: scan the length-sorted bucket prefix.
    Length,
    /// COORD with the given focus-set size `φ`.
    Coord(usize),
    /// INCR with the given focus-set size `φ`.
    Incr(usize),
    /// Fagin's threshold algorithm adapter.
    Ta,
    /// Cover-tree adapter.
    Tree,
    /// L2AP adapter.
    L2ap,
    /// BayesLSH-Lite adapter (approximate).
    Blsh,
    /// Quantized LUT scan (candidates re-verified against full precision).
    Quant {
        /// Code width in bits.
        bits: u8,
        /// Centroids per subspace codebook.
        k: u32,
        /// The bucket's distortion bound `eps`, as IEEE-754 bits (keeps the
        /// enum `Eq`-comparable; recover with [`f64::from_bits`]).
        eps_bits: u64,
    },
}

impl BucketAlgo {
    /// Display name ("LENGTH", "INCR", …).
    pub fn name(&self) -> &'static str {
        match self {
            BucketAlgo::Length => "LENGTH",
            BucketAlgo::Coord(_) => "COORD",
            BucketAlgo::Incr(_) => "INCR",
            BucketAlgo::Ta => "TA",
            BucketAlgo::Tree => "Tree",
            BucketAlgo::L2ap => "L2AP",
            BucketAlgo::Blsh => "BLSH",
            BucketAlgo::Quant { .. } => "QUANT",
        }
    }

    /// Long display naming the algorithm's parameters — what the CLI's
    /// `explain=true` prints per bucket (e.g.
    /// `QUANT(bits=8, k=256, eps=1.2e-2)`).
    pub fn detail(&self) -> String {
        match self {
            BucketAlgo::Coord(phi) => format!("COORD(phi={phi})"),
            BucketAlgo::Incr(phi) => format!("INCR(phi={phi})"),
            BucketAlgo::Quant { bits, k, eps_bits } => {
                format!("QUANT(bits={bits}, k={k}, eps={:.1e})", f64::from_bits(*eps_bits))
            }
            other => other.name().to_string(),
        }
    }
}

fn algo_of(method: ResolvedMethod) -> BucketAlgo {
    match method {
        ResolvedMethod::Length => BucketAlgo::Length,
        ResolvedMethod::Coord(phi) => BucketAlgo::Coord(phi),
        ResolvedMethod::Incr(phi) => BucketAlgo::Incr(phi),
        ResolvedMethod::Ta => BucketAlgo::Ta,
        ResolvedMethod::Tree => BucketAlgo::Tree,
        ResolvedMethod::L2ap => BucketAlgo::L2ap,
        ResolvedMethod::Blsh => BucketAlgo::Blsh,
        // Reached only when the bucket has no trained codebooks (the zip in
        // `Planner::segment` fills in the trained parameters otherwise).
        ResolvedMethod::Quant => BucketAlgo::Quant { bits: 0, k: 0, eps_bits: 0 },
    }
}

/// Per-bucket algorithm assignment of one shard (a single-engine plan has
/// exactly one segment). `params` are the tuned `t_b`/`φ_b` the execution
/// passes to the drivers; `algos` records, per bucket, the indexed
/// algorithm that serves the bucket at its strongest reachable local
/// threshold — hybrids (LC/LI) still fall back to LENGTH at run time for
/// individual queries whose `θ_b < t_b`, exactly as Sec. 4.4 prescribes.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSegment {
    params: Vec<TunedParams>,
    algos: Vec<BucketAlgo>,
    /// The bucketization epoch this segment was compiled against —
    /// execution refuses to run the segment over any other epoch, so even
    /// count-preserving changes (an insert absorbed by an existing bucket,
    /// a re-tune) invalidate the plan instead of silently running with
    /// outdated assignments.
    epoch: u64,
}

impl PlanSegment {
    /// Number of buckets this segment covers.
    pub fn bucket_count(&self) -> usize {
        self.params.len()
    }

    pub(crate) fn check_fresh(&self, buckets: &ProbeBuckets, caller: &str) {
        assert_eq!(
            self.epoch,
            buckets.epoch(),
            "{caller}: stale plan — the engine's bucketization changed since it was compiled"
        );
        debug_assert_eq!(self.params.len(), buckets.bucket_count());
    }

    /// Whether this segment was compiled against the current epoch of
    /// `buckets`. Edits only touch the owning shard's buckets, so in a
    /// sharded plan exactly the touched shard's segment goes stale.
    pub(crate) fn is_fresh(&self, buckets: &ProbeBuckets) -> bool {
        self.epoch == buckets.epoch()
    }

    /// The tuned per-bucket parameters (aligned with the bucket list).
    pub fn params(&self) -> &[TunedParams] {
        &self.params
    }

    /// The per-bucket algorithm assignment (aligned with the bucket list).
    pub fn algos(&self) -> &[BucketAlgo] {
        &self.algos
    }
}

/// Compiles [`QueryRequest`]s into [`QueryPlan`]s from a warmed engine's
/// tuned state. The planner performs **no tuning of its own** — it reads
/// the per-bucket `t_b`/`φ_b` the Sec. 4.4 tuner produced during
/// [`Lemp::warm`] and resolves each bucket's algorithm from them, so a
/// plan is cheap to build and valid until the bucketization changes.
#[derive(Debug, Clone, Copy, Default)]
pub struct Planner;

impl Planner {
    /// Builds one shard's segment from its buckets and tuned parameters.
    pub(crate) fn segment(
        buckets: &ProbeBuckets,
        config: &RunConfig,
        tuned: &[TunedParams],
    ) -> PlanSegment {
        debug_assert_eq!(tuned.len(), buckets.bucket_count());
        let algos = tuned
            .iter()
            .zip(buckets.buckets())
            .map(|(params, bucket)| {
                // The strongest local threshold any query can pose is 1.0
                // (θ_b is capped by the cosine bound), which is exactly the
                // threshold the warm-up built indexes for — so this names
                // the index that serves the bucket.
                match resolve(config.variant, params, 1.0) {
                    ResolvedMethod::Quant => {
                        let q = bucket.indexes.quant.as_ref();
                        BucketAlgo::Quant {
                            bits: q.map_or(config.quantize_bits, |q| q.bits()),
                            k: q.map_or(0, |q| q.k() as u32),
                            eps_bits: q.map_or(0, |q| q.eps().to_bits()),
                        }
                    }
                    method => algo_of(method),
                }
            })
            .collect();
        PlanSegment { params: tuned.to_vec(), algos, epoch: buckets.epoch() }
    }
}

/// A compiled query plan: the request plus one [`PlanSegment`] per shard
/// (single-engine plans hold one segment). Build it with [`Engine::plan`];
/// execute it any number of times with [`Engine::execute`] — the plan is
/// immutable and shareable across threads.
///
/// A plan is tied to the bucketization it was compiled from: executing it
/// after the engine's bucket layout changed (dynamic edits, rebuilds)
/// panics rather than silently running with stale assignments.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    request: QueryRequest,
    segments: Vec<PlanSegment>,
}

impl QueryPlan {
    pub(crate) fn new(request: QueryRequest, segments: Vec<PlanSegment>) -> Self {
        Self { request, segments }
    }

    /// The request this plan was compiled from.
    pub fn request(&self) -> &QueryRequest {
        &self.request
    }

    /// The per-shard segments (one for single-engine plans).
    pub fn segments(&self) -> &[PlanSegment] {
        &self.segments
    }

    /// Human-readable one-line summary: kind, options, and the algorithm
    /// histogram across all segments (e.g. `top-k [tuned]: LENGTH×3 INCR×9`).
    pub fn describe(&self) -> String {
        let mut counts: Vec<(&'static str, usize)> = Vec::new();
        for segment in &self.segments {
            for algo in &segment.algos {
                match counts.iter_mut().find(|(name, _)| *name == algo.name()) {
                    Some((_, n)) => *n += 1,
                    None => counts.push((algo.name(), 1)),
                }
            }
        }
        let mode = if self.request.options.adaptive.is_some() { "adaptive" } else { "tuned" };
        let chunk = match self.request.options.chunk {
            Some(n) => format!(", chunk={n}"),
            None => String::new(),
        };
        let mix: Vec<String> = counts.iter().map(|(name, n)| format!("{name}×{n}")).collect();
        format!("{} [{mode}{chunk}]: {}", self.request.kind.name(), mix.join(" "))
    }

    /// Validates this plan against a single-engine bucketization and hands
    /// back its segment.
    pub(crate) fn single_segment(&self, buckets: &ProbeBuckets, caller: &str) -> &PlanSegment {
        assert_eq!(self.segments.len(), 1, "{caller}: plan was compiled for a sharded engine");
        let segment = &self.segments[0];
        segment.check_fresh(buckets, caller);
        segment
    }
}

/// The rows of a [`QueryResponse`]: an entry set for the Above-θ kinds, or
/// per-query top-k lists for the Row-Top-k kinds.
#[derive(Debug, Clone)]
pub enum QueryRows {
    /// Rows of an [`QueryKind::AboveTheta`] / [`QueryKind::AbsAboveTheta`]
    /// run (order unspecified).
    Entries(Vec<Entry>),
    /// Rows of a [`QueryKind::TopK`] / [`QueryKind::TopKWithFloor`] run,
    /// indexed by query row, best first.
    Lists(lemp_baselines::types::TopKLists),
}

/// What [`Engine::execute`] returns: the rows plus the uniform run
/// statistics ([`RunStats`], which carries the per-method
/// [`crate::MethodMix`]) — the same accounting for every kind, option and
/// engine.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The result rows.
    pub rows: QueryRows,
    /// Phase breakdown, work counters and method mix of the run.
    pub stats: RunStats,
}

impl QueryResponse {
    /// The entry set, if this response answers an Above-θ kind.
    pub fn entries(&self) -> Option<&[Entry]> {
        match &self.rows {
            QueryRows::Entries(entries) => Some(entries),
            QueryRows::Lists(_) => None,
        }
    }

    /// The per-query lists, if this response answers a Row-Top-k kind.
    pub fn lists(&self) -> Option<&lemp_baselines::types::TopKLists> {
        match &self.rows {
            QueryRows::Lists(lists) => Some(lists),
            QueryRows::Entries(_) => None,
        }
    }

    /// Converts into the classic Above-θ output shape.
    ///
    /// # Panics
    /// If the response answers a Row-Top-k kind.
    pub fn into_above(self) -> AboveThetaOutput {
        match self.rows {
            QueryRows::Entries(entries) => AboveThetaOutput { entries, stats: self.stats },
            QueryRows::Lists(_) => panic!("response holds top-k lists, not entries"),
        }
    }

    /// Converts into the classic Row-Top-k output shape.
    ///
    /// # Panics
    /// If the response answers an Above-θ kind.
    pub fn into_top_k(self) -> TopKOutput {
        match self.rows {
            QueryRows::Lists(lists) => TopKOutput { lists, stats: self.stats },
            QueryRows::Entries(_) => panic!("response holds entries, not top-k lists"),
        }
    }

    pub(crate) fn from_above(out: AboveThetaOutput) -> Self {
        Self { rows: QueryRows::Entries(out.entries), stats: out.stats }
    }

    pub(crate) fn from_top_k(out: TopKOutput) -> Self {
        Self { rows: QueryRows::Lists(out.lists), stats: out.stats }
    }
}

/// Caller-owned scratch of the unified query path — one per querying
/// thread, obtained from [`Engine::query_scratch`]. Wraps the per-method
/// work arrays (per shard for a sharded engine) and, when a request runs
/// with [`ExecOptions::adaptive`], the bandit learning state, which
/// persists across calls with the same [`AdaptiveConfig`].
#[derive(Debug)]
pub struct Scratch {
    inner: ScratchInner,
    adaptive: Option<AdaptiveSlot>,
}

#[derive(Debug)]
enum ScratchInner {
    Single(Box<MethodScratch>),
    Sharded(Vec<MethodScratch>),
}

#[derive(Debug)]
struct AdaptiveSlot {
    cfg: AdaptiveConfig,
    selectors: Vec<AdaptiveSelector>,
}

impl Scratch {
    pub(crate) fn single(scratch: MethodScratch) -> Self {
        Self { inner: ScratchInner::Single(Box::new(scratch)), adaptive: None }
    }

    pub(crate) fn sharded(per_shard: Vec<MethodScratch>) -> Self {
        Self { inner: ScratchInner::Sharded(per_shard), adaptive: None }
    }

    /// (Re)materializes the adaptive selectors for the given configuration
    /// and bucketization shape; keeps existing learning state when both
    /// still match.
    fn ensure_selectors(&mut self, cfg: AdaptiveConfig, shapes: &[(usize, usize)]) {
        let fits = self.adaptive.as_ref().is_some_and(|slot| {
            slot.cfg == cfg
                && slot.selectors.len() == shapes.len()
                && slot
                    .selectors
                    .iter()
                    .zip(shapes)
                    .all(|(sel, &(buckets, _))| sel.bucket_count() == buckets)
        });
        if !fits {
            let selectors = shapes
                .iter()
                .map(|&(buckets, dim)| AdaptiveSelector::new(cfg, buckets, dim))
                .collect();
            self.adaptive = Some(AdaptiveSlot { cfg, selectors });
        }
    }

    /// Single-engine view: the method scratch plus (when requested) the
    /// lazily materialized selector.
    pub(crate) fn single_parts(
        &mut self,
        caller: &str,
        adaptive: Option<(AdaptiveConfig, usize, usize)>,
    ) -> (&mut MethodScratch, Option<&mut AdaptiveSelector>) {
        if let Some((cfg, buckets, dim)) = adaptive {
            self.ensure_selectors(cfg, &[(buckets, dim)]);
        }
        let scratch = match &mut self.inner {
            ScratchInner::Single(scratch) => scratch,
            ScratchInner::Sharded(_) => {
                panic!("{caller}: scratch was made for a sharded engine")
            }
        };
        let selector = match (&mut self.adaptive, adaptive) {
            (Some(slot), Some(_)) => Some(&mut slot.selectors[0]),
            _ => None,
        };
        (scratch, selector)
    }

    /// Sharded view: one method scratch per shard plus (when requested)
    /// one selector per shard.
    pub(crate) fn sharded_parts(
        &mut self,
        caller: &str,
        adaptive: Option<(AdaptiveConfig, &[(usize, usize)])>,
    ) -> (&mut [MethodScratch], Option<&mut [AdaptiveSelector]>) {
        if let Some((cfg, shapes)) = adaptive {
            self.ensure_selectors(cfg, shapes);
        }
        let scratches = match &mut self.inner {
            ScratchInner::Sharded(per_shard) => per_shard.as_mut_slice(),
            ScratchInner::Single(_) => {
                panic!("{caller}: scratch was made for a single (unsharded) engine")
            }
        };
        let selectors = match (&mut self.adaptive, adaptive) {
            (Some(slot), Some(_)) => Some(slot.selectors.as_mut_slice()),
            _ => None,
        };
        (scratches, selectors)
    }
}

/// One warmed engine behind the unified query surface. Implemented by
/// [`Lemp`], [`crate::DynamicLemp`] and [`crate::ShardedLemp`]; the trait
/// is dyn-compatible, so `Box<dyn Engine>` / `&dyn Engine` handles carry
/// any backend through the same `plan` → `execute` pipeline.
///
/// `plan` and `execute` require a warmed engine (the same invariant as the
/// `*_shared` entry points) and panic with a descriptive message
/// otherwise; `execute` additionally panics when the plan or scratch was
/// made for a different engine or an outdated bucketization.
pub trait Engine: Send + Sync {
    /// Compiles `request` into an executable plan from this engine's tuned
    /// warm state (see [`Planner`]).
    fn plan(&self, request: &QueryRequest) -> QueryPlan;

    /// Executes a compiled plan over `queries` through `&self`, with a
    /// caller-owned scratch — safe to call from many threads concurrently
    /// (one scratch each).
    fn execute(
        &self,
        plan: &QueryPlan,
        queries: &VectorStore,
        scratch: &mut Scratch,
    ) -> QueryResponse;

    /// A [`Scratch`] sized for this engine (one per querying thread).
    fn query_scratch(&self) -> Scratch;

    /// Live probe count.
    fn probes(&self) -> usize;

    /// Vector dimensionality.
    fn dim(&self) -> usize;

    /// Whether the engine is warm (`plan`/`execute` are usable).
    fn is_warm(&self) -> bool;

    /// Number of shards (1 for single-engine backends).
    fn shard_count(&self) -> usize {
        1
    }

    /// Warms the engine for the given goal (tunes per-bucket parameters on
    /// `sample` and force-builds every bucket's indexes) — the mutable
    /// setup step before the immutable `plan`/`execute` phase.
    fn warm_up(&mut self, sample: &VectorStore, goal: WarmGoal) -> WarmReport;

    /// Recompiles a plan after edits may have invalidated it. The default
    /// recompiles from scratch; sharded engines override it to reuse every
    /// segment whose shard is untouched and recompile only the stale ones
    /// (edits staleness-stamp only the owning shard's segment).
    fn refresh_plan(&self, plan: &QueryPlan) -> QueryPlan {
        self.plan(plan.request())
    }

    /// Convenience: `plan` + `execute` in one call (dyn-dispatchable).
    fn run(
        &self,
        request: &QueryRequest,
        queries: &VectorStore,
        scratch: &mut Scratch,
    ) -> QueryResponse {
        let plan = self.plan(request);
        self.execute(&plan, queries, scratch)
    }

    /// [`Engine::execute`] plus one [`crate::telemetry::TelemetrySink::on_query`] call: the
    /// sink receives the plan's request, the live probe count and the
    /// response's [`RunStats`] after the run, on the executing thread.
    /// This is how services observe engine telemetry without the engine
    /// depending on any serving crate (see [`crate::telemetry`]).
    fn execute_observed(
        &self,
        plan: &QueryPlan,
        queries: &VectorStore,
        scratch: &mut Scratch,
        sink: &dyn crate::telemetry::TelemetrySink,
    ) -> QueryResponse {
        let response = self.execute(plan, queries, scratch);
        sink.on_query(plan.request(), self.probes(), &response.stats);
        response
    }
}

/// The prepared (warmed, read-only) parts of one single-engine execution:
/// everything the drivers need, with the per-bucket parameters supplied by
/// the caller (the warm state for the classic entry points, a
/// [`PlanSegment`] for the planned path).
pub(crate) struct SinglePrepared<'a> {
    pub(crate) buckets: &'a ProbeBuckets,
    pub(crate) config: &'a RunConfig,
    pub(crate) per_bucket: &'a [TunedParams],
    pub(crate) blsh: Option<&'a MinMatchTable>,
}

impl SinglePrepared<'_> {
    fn above_once(
        &self,
        queries: &VectorStore,
        theta: f64,
        scratch: &mut MethodScratch,
        selector: &mut Option<&mut AdaptiveSelector>,
    ) -> AboveThetaOutput {
        match selector {
            Some(sel) => {
                adaptive::above_theta_adaptive_prepared(self.buckets, queries, theta, sel, scratch)
            }
            None => runner::above_theta_prepared(
                self.buckets,
                queries,
                theta,
                self.config,
                self.per_bucket,
                self.blsh,
                scratch,
            ),
        }
    }

    fn topk_once(
        &self,
        queries: &VectorStore,
        k: usize,
        floor: f64,
        scratch: &mut MethodScratch,
        selector: &mut Option<&mut AdaptiveSelector>,
    ) -> TopKOutput {
        match selector {
            Some(sel) => {
                let mut out =
                    adaptive::row_top_k_adaptive_prepared(self.buckets, queries, k, sel, scratch);
                if floor > f64::NEG_INFINITY {
                    // Exact: any entry ≥ floor outside the plain top-k is
                    // dominated by k entries that are themselves ≥ floor,
                    // so filtering the plain lists *is* the floored answer.
                    for list in &mut out.lists {
                        list.retain(|item| item.score >= floor);
                    }
                    out.stats.counters.results = out.lists.iter().map(|l| l.len() as u64).sum();
                }
                out
            }
            None => runner::row_top_k_prepared(
                self.buckets,
                queries,
                k,
                floor,
                self.config,
                self.per_bucket,
                self.blsh,
                scratch,
            ),
        }
    }
}

/// Slices `queries` into blocks of `chunk` rows and hands each block (with
/// its row offset) to `body` — the shared chunked-execution loop.
pub(crate) fn for_each_chunk(
    queries: &VectorStore,
    chunk: usize,
    mut body: impl FnMut(&VectorStore, usize),
) {
    assert!(chunk > 0, "chunk_size must be positive");
    let dim = queries.dim();
    let mut offset = 0usize;
    while offset < queries.len() {
        let end = (offset + chunk).min(queries.len());
        let block =
            VectorStore::from_flat(queries.as_flat()[offset * dim..end * dim].to_vec(), dim)
                .expect("slice of a valid store is valid");
        body(&block, offset);
        offset = end;
    }
}

/// The single-engine execution core behind [`Engine::execute`] for
/// [`Lemp`]/[`crate::DynamicLemp`] *and* their classic `*_shared` entry
/// points: one function, every kind × option combination.
pub(crate) fn run_request_single(
    parts: &SinglePrepared<'_>,
    request: &QueryRequest,
    queries: &VectorStore,
    scratch: &mut MethodScratch,
    mut selector: Option<&mut AdaptiveSelector>,
) -> QueryResponse {
    assert_eq!(
        parts.per_bucket.len(),
        parts.buckets.bucket_count(),
        "stale plan — the engine's bucketization changed since it was compiled"
    );
    if let Some(chunk) = request.options.chunk {
        return run_chunked_single(parts, request, queries, chunk, scratch, selector);
    }
    match request.kind {
        QueryKind::AboveTheta { theta } => {
            QueryResponse::from_above(parts.above_once(queries, theta, scratch, &mut selector))
        }
        QueryKind::AbsAboveTheta { theta } => {
            QueryResponse::from_above(crate::abs_above_theta_via(queries, theta, |q| {
                parts.above_once(q, theta, scratch, &mut selector)
            }))
        }
        QueryKind::TopK { k } => QueryResponse::from_top_k(parts.topk_once(
            queries,
            k,
            f64::NEG_INFINITY,
            scratch,
            &mut selector,
        )),
        QueryKind::TopKWithFloor { k, floor } => {
            QueryResponse::from_top_k(parts.topk_once(queries, k, floor, scratch, &mut selector))
        }
    }
}

fn run_chunked_single(
    parts: &SinglePrepared<'_>,
    request: &QueryRequest,
    queries: &VectorStore,
    chunk: usize,
    scratch: &mut MethodScratch,
    mut selector: Option<&mut AdaptiveSelector>,
) -> QueryResponse {
    run_chunked_with(request, queries, chunk, |inner, block| {
        run_request_single(parts, inner, block, scratch, selector.as_deref_mut())
    })
}

/// The shared chunked-execution driver: strips the chunk option, runs
/// `run_block` per query block, re-offsets entry query ids, and merges the
/// per-block statistics. One loop for the single-engine and sharded paths.
pub(crate) fn run_chunked_with(
    request: &QueryRequest,
    queries: &VectorStore,
    chunk: usize,
    mut run_block: impl FnMut(&QueryRequest, &VectorStore) -> QueryResponse,
) -> QueryResponse {
    let inner = QueryRequest {
        kind: request.kind,
        options: ExecOptions { chunk: None, ..request.options },
    };
    let mut stats = RunStats::default();
    if request.kind.is_above() {
        let mut entries: Vec<Entry> = Vec::new();
        for_each_chunk(queries, chunk, |block, offset| {
            let out = run_block(&inner, block).into_above();
            entries.extend(out.entries.into_iter().map(|mut e| {
                e.query += offset as u32;
                e
            }));
            stats.merge(&out.stats);
        });
        QueryResponse { rows: QueryRows::Entries(entries), stats }
    } else {
        let mut lists = Vec::with_capacity(queries.len());
        for_each_chunk(queries, chunk, |block, _| {
            let out = run_block(&inner, block).into_top_k();
            lists.extend(out.lists);
            stats.merge(&out.stats);
        });
        QueryResponse { rows: QueryRows::Lists(lists), stats }
    }
}

/// Shared [`Engine`] plumbing for the two single-engine backends
/// ([`Lemp`] and [`crate::DynamicLemp`]): plan from the warm state's
/// tuned parameters, execute through [`run_request_single`].
pub(crate) fn plan_single(engine_parts: &SinglePrepared<'_>, request: &QueryRequest) -> QueryPlan {
    QueryPlan::new(
        *request,
        vec![Planner::segment(engine_parts.buckets, engine_parts.config, engine_parts.per_bucket)],
    )
}

/// [`Engine::execute`] body shared by [`Lemp`] and [`crate::DynamicLemp`].
pub(crate) fn execute_single(
    buckets: &ProbeBuckets,
    config: &RunConfig,
    blsh: Option<&MinMatchTable>,
    plan: &QueryPlan,
    queries: &VectorStore,
    scratch: &mut Scratch,
) -> QueryResponse {
    let segment = plan.single_segment(buckets, "Engine::execute");
    let adaptive =
        plan.request().options.adaptive.map(|cfg| (cfg, buckets.bucket_count(), buckets.dim()));
    let (method_scratch, selector) = scratch.single_parts("Engine::execute", adaptive);
    let parts = SinglePrepared { buckets, config, per_bucket: segment.params(), blsh };
    run_request_single(&parts, plan.request(), queries, method_scratch, selector)
}

impl Engine for Lemp {
    fn plan(&self, request: &QueryRequest) -> QueryPlan {
        let warm = self.warm_state("Engine::plan");
        plan_single(
            &SinglePrepared {
                buckets: self.buckets(),
                config: self.config(),
                per_bucket: &warm.per_bucket,
                blsh: warm.blsh_table.as_ref(),
            },
            request,
        )
    }

    fn execute(
        &self,
        plan: &QueryPlan,
        queries: &VectorStore,
        scratch: &mut Scratch,
    ) -> QueryResponse {
        let warm = self.warm_state("Engine::execute");
        execute_single(
            self.buckets(),
            self.config(),
            warm.blsh_table.as_ref(),
            plan,
            queries,
            scratch,
        )
    }

    fn query_scratch(&self) -> Scratch {
        Scratch::single(self.make_scratch())
    }

    fn probes(&self) -> usize {
        self.buckets().total()
    }

    fn dim(&self) -> usize {
        self.buckets().dim()
    }

    fn is_warm(&self) -> bool {
        Lemp::is_warm(self)
    }

    fn warm_up(&mut self, sample: &VectorStore, goal: WarmGoal) -> WarmReport {
        Lemp::warm(self, sample, goal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemp_data::synthetic::GeneratorConfig;

    fn warmed(n: usize, seed: u64) -> (VectorStore, Lemp) {
        let p = GeneratorConfig::gaussian(n, 8, 1.0).generate(seed);
        let q = GeneratorConfig::gaussian(10, 8, 1.0).generate(seed + 1);
        let mut engine = Lemp::builder().sample_size(8).build(&p);
        engine.warm(&q, WarmGoal::TopK(3));
        (q, engine)
    }

    #[test]
    fn request_constructors_and_options() {
        let r = QueryRequest::top_k(5).adaptive(AdaptiveConfig::default()).chunked(16);
        assert_eq!(r.kind, QueryKind::TopK { k: 5 });
        assert!(r.options.adaptive.is_some());
        assert_eq!(r.options.chunk, Some(16));
        assert_eq!(QueryRequest::above_theta(1.0).kind.name(), "above-theta");
        assert!(QueryRequest::abs_above_theta(1.0).kind.is_above());
        assert!(!QueryRequest::top_k_with_floor(3, 0.5).kind.is_above());
        assert!(matches!(QueryRequest::top_k(0).kind.warm_goal(), WarmGoal::TopK(1)));
        assert!(
            matches!(QueryRequest::above_theta(2.0).kind.warm_goal(), WarmGoal::Above(t) if t == 2.0)
        );
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn zero_chunk_is_rejected_at_construction() {
        let _ = QueryRequest::top_k(3).chunked(0);
    }

    #[test]
    fn quant_algo_renders_its_parameters() {
        let algo = BucketAlgo::Quant { bits: 8, k: 256, eps_bits: 0.012f64.to_bits() };
        assert_eq!(algo.name(), "QUANT");
        assert_eq!(algo.detail(), "QUANT(bits=8, k=256, eps=1.2e-2)");
    }

    #[test]
    fn plan_reflects_the_bucketization() {
        let (_, engine) = warmed(200, 42);
        let plan = engine.plan(&QueryRequest::top_k(3));
        assert_eq!(plan.segments().len(), 1);
        assert_eq!(plan.segments()[0].bucket_count(), engine.buckets().bucket_count());
        assert_eq!(plan.segments()[0].params().len(), plan.segments()[0].algos().len());
        let summary = plan.describe();
        assert!(summary.starts_with("top-k [tuned]"), "{summary}");
    }

    #[test]
    fn plan_is_reusable_and_deterministic() {
        let (q, engine) = warmed(200, 43);
        let plan = engine.plan(&QueryRequest::above_theta(1.0));
        assert_eq!(plan, engine.plan(&QueryRequest::above_theta(1.0)));
        let mut scratch = engine.query_scratch();
        let a = engine.execute(&plan, &q, &mut scratch);
        let b = engine.execute(&plan, &q, &mut scratch);
        assert_eq!(a.entries().unwrap().len(), b.entries().unwrap().len());
    }

    #[test]
    #[should_panic(expected = "requires a warmed engine")]
    fn planning_a_cold_engine_panics() {
        let p = GeneratorConfig::gaussian(50, 8, 1.0).generate(7);
        let engine = Lemp::new(&p);
        let _ = engine.plan(&QueryRequest::top_k(1));
    }

    #[test]
    #[should_panic(expected = "stale plan")]
    fn plans_are_invalidated_by_count_preserving_edits() {
        use crate::{BucketPolicy, DynamicLemp, RunConfig};
        let p = GeneratorConfig::gaussian(120, 8, 1.0).generate(48);
        let q = GeneratorConfig::gaussian(10, 8, 1.0).generate(49);
        let config = RunConfig { sample_size: 8, ..Default::default() };
        let mut engine = DynamicLemp::new(&p, BucketPolicy::default(), config);
        engine.warm(&q, WarmGoal::TopK(3));
        let plan = Engine::plan(&engine, &QueryRequest::top_k(3));
        // An insert absorbed by an existing bucket keeps the bucket count
        // unchanged — the epoch still invalidates the plan. A copy of an
        // existing probe always lands inside that probe's bucket.
        let before = engine.bucket_count();
        engine.insert(p.vector(0)).unwrap();
        assert_eq!(engine.bucket_count(), before, "fixture must preserve the bucket count");
        let mut scratch = Engine::query_scratch(&engine);
        let _ = engine.execute(&plan, &q, &mut scratch);
    }

    #[test]
    #[should_panic(expected = "stale plan")]
    fn stale_plan_is_rejected() {
        let (q, engine) = warmed(200, 44);
        let (_, other) = warmed(20, 45); // different bucketization
        let plan = engine.plan(&QueryRequest::top_k(2));
        let mut scratch = other.query_scratch();
        let _ = other.execute(&plan, &q, &mut scratch);
    }

    #[test]
    fn response_accessors_match_the_kind() {
        let (q, engine) = warmed(150, 46);
        let mut scratch = engine.query_scratch();
        let above = Engine::run(&engine, &QueryRequest::above_theta(1.0), &q, &mut scratch);
        assert!(above.entries().is_some() && above.lists().is_none());
        let top = Engine::run(&engine, &QueryRequest::top_k(2), &q, &mut scratch);
        assert!(top.lists().is_some() && top.entries().is_none());
        assert_eq!(top.into_top_k().lists.len(), q.len());
    }

    #[test]
    fn adaptive_state_persists_across_calls_and_rebuilds_on_config_change() {
        let (q, engine) = warmed(200, 47);
        let mut scratch = engine.query_scratch();
        let cfg = AdaptiveConfig::default();
        let request = QueryRequest::top_k(3).adaptive(cfg);
        let _ = Engine::run(&engine, &request, &q, &mut scratch);
        let pulls_after_first = scratch.adaptive.as_ref().unwrap().selectors[0].total_pulls();
        assert!(pulls_after_first > 0);
        let _ = Engine::run(&engine, &request, &q, &mut scratch);
        let pulls_after_second = scratch.adaptive.as_ref().unwrap().selectors[0].total_pulls();
        assert!(pulls_after_second > pulls_after_first, "learning must persist");
        // A different configuration rebuilds the learning state.
        let other = QueryRequest::top_k(3)
            .adaptive(AdaptiveConfig { theta_bins: 2, ..AdaptiveConfig::default() });
        let _ = Engine::run(&engine, &other, &q, &mut scratch);
        let pulls_after_rebuild = scratch.adaptive.as_ref().unwrap().selectors[0].total_pulls();
        assert!(pulls_after_rebuild < pulls_after_second, "config change must reset learning");
    }
}
