//! Bounded-memory chunked drivers and role-reversal convenience.
//!
//! The paper's workloads have *millions* of query vectors; an Above-θ run
//! at a permissive threshold can return more entries than comfortably fit
//! in memory next to the factor matrices. The chunked drivers process the
//! query matrix in fixed-size blocks and hand each block's results to a
//! caller-supplied sink before moving on, so peak memory is bounded by the
//! chunk — the engine, its lazily built indexes, and the tuner state are
//! shared across chunks (indexes build once, on the first chunk that needs
//! them).
//!
//! [`column_top_k`] implements the paper's remark (Sec. 2) that "the top-k
//! values in each column of `QᵀP` can be found by reversing the roles of
//! `Q` and `P`".

use lemp_baselines::types::Entry;
use lemp_linalg::{ScoredItem, VectorStore};

use crate::algos::MethodScratch;
use crate::runner::{self, RunStats, TopKOutput};
use crate::{Lemp, LempBuilder};

impl Lemp {
    /// Chunked **Above-θ**: processes `queries` in blocks of `chunk_size`
    /// rows and passes each block's entries (with *global* query ids) to
    /// `sink`. Returns the aggregated run statistics.
    ///
    /// Entries across chunks arrive in ascending chunk order; within a
    /// chunk the order is unspecified, as in [`Lemp::above_theta`].
    ///
    /// # Panics
    /// If `chunk_size == 0` or the query dimensionality differs from the
    /// probe dimensionality.
    pub fn above_theta_chunked<F>(
        &mut self,
        queries: &VectorStore,
        theta: f64,
        chunk_size: usize,
        mut sink: F,
    ) -> RunStats
    where
        F: FnMut(&[Entry]),
    {
        assert!(chunk_size > 0, "chunk_size must be positive");
        let mut stats = RunStats::default();
        let dim = queries.dim();
        let mut offset = 0usize;
        while offset < queries.len() {
            let end = (offset + chunk_size).min(queries.len());
            let chunk =
                VectorStore::from_flat(queries.as_flat()[offset * dim..end * dim].to_vec(), dim)
                    .expect("slice of a valid store is valid");
            let mut out = runner::above_theta(&mut self.buckets, &chunk, theta, &self.config);
            for e in &mut out.entries {
                e.query += offset as u32;
            }
            stats.merge(&out.stats);
            sink(&out.entries);
            offset = end;
        }
        stats
    }

    /// Chunked **Row-Top-k**: processes `queries` in blocks of `chunk_size`
    /// rows and passes each query's top-k list (with its *global* query id)
    /// to `sink`, in ascending query order. Returns the aggregated run
    /// statistics.
    ///
    /// # Panics
    /// If `chunk_size == 0` or the query dimensionality differs from the
    /// probe dimensionality.
    pub fn row_top_k_chunked<F>(
        &mut self,
        queries: &VectorStore,
        k: usize,
        chunk_size: usize,
        mut sink: F,
    ) -> RunStats
    where
        F: FnMut(u32, &[ScoredItem]),
    {
        assert!(chunk_size > 0, "chunk_size must be positive");
        let mut stats = RunStats::default();
        let dim = queries.dim();
        let mut offset = 0usize;
        while offset < queries.len() {
            let end = (offset + chunk_size).min(queries.len());
            let chunk =
                VectorStore::from_flat(queries.as_flat()[offset * dim..end * dim].to_vec(), dim)
                    .expect("slice of a valid store is valid");
            let out = runner::row_top_k(&mut self.buckets, &chunk, k, &self.config);
            stats.merge(&out.stats);
            for (i, list) in out.lists.iter().enumerate() {
                sink((offset + i) as u32, list);
            }
            offset = end;
        }
        stats
    }

    /// [`Lemp::above_theta_chunked`] through `&self` over a warmed engine,
    /// with a caller-owned scratch — the bounded-memory streaming driver
    /// for shared engines.
    ///
    /// # Panics
    /// If `chunk_size == 0`, the engine is not warmed ([`Lemp::warm`]), or
    /// on query/probe dimensionality mismatch.
    pub fn above_theta_chunked_shared<F>(
        &self,
        queries: &VectorStore,
        theta: f64,
        chunk_size: usize,
        scratch: &mut MethodScratch,
        mut sink: F,
    ) -> RunStats
    where
        F: FnMut(&[Entry]),
    {
        assert!(chunk_size > 0, "chunk_size must be positive");
        let mut stats = RunStats::default();
        let dim = queries.dim();
        let mut offset = 0usize;
        while offset < queries.len() {
            let end = (offset + chunk_size).min(queries.len());
            let chunk =
                VectorStore::from_flat(queries.as_flat()[offset * dim..end * dim].to_vec(), dim)
                    .expect("slice of a valid store is valid");
            let mut out = self.above_theta_shared(&chunk, theta, scratch);
            for e in &mut out.entries {
                e.query += offset as u32;
            }
            stats.merge(&out.stats);
            sink(&out.entries);
            offset = end;
        }
        stats
    }

    /// [`Lemp::row_top_k_chunked`] through `&self` over a warmed engine,
    /// with a caller-owned scratch.
    ///
    /// # Panics
    /// If `chunk_size == 0`, the engine is not warmed ([`Lemp::warm`]), or
    /// on query/probe dimensionality mismatch.
    pub fn row_top_k_chunked_shared<F>(
        &self,
        queries: &VectorStore,
        k: usize,
        chunk_size: usize,
        scratch: &mut MethodScratch,
        mut sink: F,
    ) -> RunStats
    where
        F: FnMut(u32, &[ScoredItem]),
    {
        assert!(chunk_size > 0, "chunk_size must be positive");
        let mut stats = RunStats::default();
        let dim = queries.dim();
        let mut offset = 0usize;
        while offset < queries.len() {
            let end = (offset + chunk_size).min(queries.len());
            let chunk =
                VectorStore::from_flat(queries.as_flat()[offset * dim..end * dim].to_vec(), dim)
                    .expect("slice of a valid store is valid");
            let out = self.row_top_k_shared(&chunk, k, scratch);
            stats.merge(&out.stats);
            for (i, list) in out.lists.iter().enumerate() {
                sink((offset + i) as u32, list);
            }
            offset = end;
        }
        stats
    }
}

/// **Column-Top-k**: for every *probe* column `p ∈ P`, the `k` queries
/// attaining the largest inner products — the paper's role reversal
/// (Sec. 2). Builds a transient engine over `queries` (they become the
/// bucketized side) and runs Row-Top-k with `probes` as the query set; the
/// returned lists are indexed by probe column, and the ids inside them are
/// query-row indices.
///
/// # Panics
/// If the dimensionalities differ.
pub fn column_top_k(
    queries: &VectorStore,
    probes: &VectorStore,
    k: usize,
    builder: LempBuilder,
) -> TopKOutput {
    let mut engine = builder.build(queries);
    engine.row_top_k(probes, k)
}

impl Lemp {
    /// **Global-Top-n**: the `n` largest entries of the *entire* product
    /// matrix, sorted by descending value (ties broken arbitrarily at the
    /// boundary).
    ///
    /// This is exactly how the paper defines its Above-θ recall levels
    /// (Sec. 6.1: "we selected θ such that we retrieve the top-10³ … -10⁷
    /// entries in the whole product matrix") — the returned n-th value *is*
    /// that θ, computed exactly rather than by sampling.
    ///
    /// The driver reuses LEMP's own machinery as a tightening cascade:
    /// queries are processed in decreasing length order in blocks of
    /// `chunk` (bounding memory), each block runs Above-θ′ at the current
    /// global n-th value, and the loop stops early once even the longest
    /// remaining query cannot produce an entry above θ′ — the same
    /// length-based argument that prunes buckets (Eq. 2) applied to the
    /// query side.
    ///
    /// # Panics
    /// If `chunk == 0` or the dimensionalities differ.
    pub fn global_top_n(&mut self, queries: &VectorStore, n: usize, chunk: usize) -> Vec<Entry> {
        assert!(chunk > 0, "chunk must be positive");
        assert_eq!(queries.dim(), self.buckets.dim(), "query/probe dimensionality mismatch");
        if n == 0 || queries.is_empty() || self.buckets.total() == 0 {
            return Vec::new();
        }
        let probes_total = self.buckets.total();
        let max_probe_len = self.buckets.buckets().first().map(|b| b.max_len).unwrap_or(0.0);

        // Sort query rows by decreasing length so the threshold tightens as
        // fast as possible and the tail can be cut off wholesale.
        let lengths = queries.lengths();
        let mut order: Vec<usize> = (0..queries.len()).collect();
        order.sort_by(|&a, &b| lengths[b].total_cmp(&lengths[a]).then(a.cmp(&b)));

        // Seed θ′ from the single longest query: its row top-n is cheap and
        // usually close to the global scale.
        let mut heap = lemp_linalg::TopK::new(n);
        let seed_store = VectorStore::from_flat(queries.vector(order[0]).to_vec(), queries.dim())
            .expect("row of a valid store");
        let seed = runner::row_top_k(&mut self.buckets, &seed_store, n, &self.config);
        for item in &seed.lists[0] {
            heap.push(order[0] * probes_total + item.id, item.score);
        }

        let dim = queries.dim();
        let mut at = 1usize; // order[0] fully handled by the seed
        while at < order.len() {
            let theta = heap.threshold(); // −∞ until the heap holds n entries
                                          // Query-side cut: a query of length ℓ can reach at most
                                          // ℓ·max_probe_len; once that trails θ′ every remaining
                                          // (shorter) query is out.
            if theta > lengths[order[at]] * max_probe_len {
                break;
            }
            let hi = (at + chunk).min(order.len());
            let mut flat = Vec::with_capacity((hi - at) * dim);
            for &qi in &order[at..hi] {
                flat.extend_from_slice(queries.vector(qi));
            }
            let block = VectorStore::from_flat(flat, dim).expect("rows of a valid store");
            let out = runner::above_theta(&mut self.buckets, &block, theta, &self.config);
            for e in &out.entries {
                heap.push(order[at + e.query as usize] * probes_total + e.probe as usize, e.value);
            }
            at = hi;
        }

        heap.drain_sorted()
            .into_iter()
            .map(|item| Entry {
                query: (item.id / probes_total) as u32,
                probe: (item.id % probes_total) as u32,
                value: item.score,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LempVariant;
    use lemp_baselines::types::{canonical_pairs, topk_equivalent};
    use lemp_baselines::Naive;
    use lemp_data::synthetic::GeneratorConfig;

    fn data(m: usize, n: usize, seed: u64) -> (VectorStore, VectorStore) {
        let q = GeneratorConfig::gaussian(m, 10, 1.0).generate(seed);
        let p = GeneratorConfig::gaussian(n, 10, 1.0).generate(seed + 1);
        (q, p)
    }

    #[test]
    fn chunked_above_theta_matches_monolithic() {
        let (q, p) = data(53, 300, 20);
        let theta = 1.2;
        let mut mono = Lemp::builder().sample_size(8).build(&p);
        let expect = mono.above_theta(&q, theta);
        for chunk_size in [1, 7, 53, 100] {
            let mut engine = Lemp::builder().sample_size(8).build(&p);
            let mut collected = Vec::new();
            let stats = engine
                .above_theta_chunked(&q, theta, chunk_size, |es| collected.extend_from_slice(es));
            assert_eq!(
                canonical_pairs(&collected),
                canonical_pairs(&expect.entries),
                "chunk size {chunk_size} diverges"
            );
            assert_eq!(stats.counters.queries, q.len() as u64);
            assert_eq!(stats.counters.results, expect.entries.len() as u64);
        }
    }

    #[test]
    fn chunked_top_k_matches_monolithic() {
        let (q, p) = data(41, 200, 30);
        let k = 4;
        let mut mono = Lemp::builder().sample_size(8).build(&p);
        let expect = mono.row_top_k(&q, k);
        for chunk_size in [1, 8, 41, 64] {
            let mut engine = Lemp::builder().sample_size(8).build(&p);
            let mut lists = vec![Vec::new(); q.len()];
            let mut seen_order = Vec::new();
            engine.row_top_k_chunked(&q, k, chunk_size, |query, list| {
                seen_order.push(query);
                lists[query as usize] = list.to_vec();
            });
            assert!(seen_order.windows(2).all(|w| w[0] < w[1]), "queries out of order");
            assert_eq!(seen_order.len(), q.len());
            assert!(
                topk_equivalent(&lists, &expect.lists, 1e-9),
                "chunk size {chunk_size} diverges"
            );
        }
    }

    #[test]
    fn chunked_indexes_build_only_once() {
        let (q, p) = data(60, 400, 40);
        let mut engine = Lemp::builder().variant(LempVariant::I).sample_size(8).build(&p);
        let stats = engine.above_theta_chunked(&q, 1.0, 10, |_| {});
        // Re-running must not rebuild anything: indexes persist on the engine.
        let stats2 = engine.above_theta_chunked(&q, 1.0, 10, |_| {});
        assert!(stats.indexes_built > 0);
        assert_eq!(stats2.indexes_built, 0, "indexes rebuilt across runs");
    }

    #[test]
    fn chunked_handles_empty_queries() {
        let (_, p) = data(5, 50, 50);
        let empty = VectorStore::empty(10).unwrap();
        let mut engine = Lemp::builder().build(&p);
        let mut called = false;
        let stats = engine.above_theta_chunked(&empty, 1.0, 16, |_| called = true);
        assert!(!called);
        assert_eq!(stats.counters.queries, 0);
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn zero_chunk_size_panics() {
        let (q, p) = data(5, 20, 60);
        let mut engine = Lemp::builder().build(&p);
        engine.above_theta_chunked(&q, 1.0, 0, |_| {});
    }

    /// Reference: the top-n values of the full product, descending.
    fn naive_global_top_n(q: &VectorStore, p: &VectorStore, n: usize) -> Vec<f64> {
        let mut all = Vec::with_capacity(q.len() * p.len());
        for i in 0..q.len() {
            for j in 0..p.len() {
                all.push(q.dot_between(i, p, j));
            }
        }
        all.sort_by(|a, b| b.total_cmp(a));
        all.truncate(n);
        all
    }

    #[test]
    fn global_top_n_matches_naive() {
        let (q, p) = data(70, 150, 10);
        let mut engine = Lemp::builder().sample_size(8).build(&p);
        for n in [1usize, 10, 100, 1000] {
            for chunk in [7, 64] {
                let got = engine.global_top_n(&q, n, chunk);
                let expect = naive_global_top_n(&q, &p, n);
                assert_eq!(got.len(), expect.len(), "n={n} chunk={chunk}");
                for (e, want) in got.iter().zip(&expect) {
                    assert!(
                        (e.value - want).abs() < 1e-9,
                        "n={n} chunk={chunk}: {} vs {want}",
                        e.value
                    );
                    // entries must carry correct coordinates
                    let real = q.dot_between(e.query as usize, &p, e.probe as usize);
                    assert!((real - e.value).abs() < 1e-12);
                }
                // descending order
                for w in got.windows(2) {
                    assert!(w[0].value >= w[1].value);
                }
            }
        }
    }

    #[test]
    fn global_top_n_is_the_recall_level_theta() {
        // The n-th returned value is the exact θ of the paper's "@n recall
        // level": Above-θ at that θ returns at least n entries, and a hair
        // above it returns fewer than n.
        let (q, p) = data(50, 120, 11);
        let mut engine = Lemp::builder().sample_size(8).build(&p);
        let n = 200;
        let top = engine.global_top_n(&q, n, 32);
        let theta = top.last().unwrap().value;
        let at = engine.above_theta(&q, theta);
        assert!(at.entries.len() >= n);
        let above = engine.above_theta(&q, theta + 1e-9);
        assert!(above.entries.len() < n || theta == above.entries[0].value);
    }

    #[test]
    fn global_top_n_edge_cases() {
        let (q, p) = data(10, 30, 12);
        let mut engine = Lemp::builder().build(&p);
        assert!(engine.global_top_n(&q, 0, 4).is_empty());
        // n beyond the product size returns every pair
        let got = engine.global_top_n(&q, 10_000, 4);
        assert_eq!(got.len(), 300);
        let empty = VectorStore::empty(10).unwrap();
        assert!(engine.global_top_n(&empty, 5, 4).is_empty());
        let mut empty_engine = Lemp::new(&empty);
        assert!(empty_engine.global_top_n(&q, 5, 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "chunk must be positive")]
    fn global_top_n_zero_chunk_panics() {
        let (q, p) = data(5, 10, 13);
        let mut engine = Lemp::builder().build(&p);
        let _ = engine.global_top_n(&q, 3, 0);
    }

    #[test]
    fn column_top_k_reverses_roles() {
        let (q, p) = data(80, 60, 70);
        let k = 3;
        let out = column_top_k(&q, &p, k, Lemp::builder().sample_size(8));
        assert_eq!(out.lists.len(), p.len(), "one list per probe column");
        // Ground truth: transpose the naive product.
        let (expect, _) = Naive.row_top_k(&p, &q, k);
        assert!(topk_equivalent(&out.lists, &expect, 1e-9));
    }
}
