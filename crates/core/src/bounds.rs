//! Threshold and feasible-region mathematics (Sec. 3.1, 4.2 of the paper).
//!
//! * [`local_threshold`] — Eq. 3: `θ_b(q) = θ / (‖q‖ · l_b)`; the cosine
//!   similarity a probe from bucket `b` must reach for `qᵀp ≥ θ` to be
//!   possible. `θ_b(q) > 1` prunes the whole bucket.
//! * [`probe_threshold`] — the improved probe-specific threshold
//!   `θ_p(q) = θ / (‖q‖ · ‖p‖)` used by INCR (Eq. 5).
//! * [`feasible_region`] — the per-coordinate interval `[L_f, U_f]` such
//!   that any unit probe direction `p̄` with `q̄ᵀp̄ ≥ θ_b(q)` must satisfy
//!   `L_f ≤ p̄_f ≤ U_f`.
//!
//! The region derivation: with `q̄ᵀp̄ = q̄_f p̄_f + q̄ᵀ_{-f} p̄_{-f}` and
//! Cauchy–Schwarz on the `-f` parts,
//! `θ̂ ≤ q̄_f p̄_f + √(1−q̄_f²)·√(1−p̄_f²)`. Solving the boundary quadratic
//! gives roots `q̄_f θ̂ ± √((1−θ̂²)(1−q̄_f²))`; squaring may introduce a
//! spurious root, which is detected by checking the pre-squaring sign
//! condition `θ̂ − q̄_f x ≥ 0` (this reduces to the paper's case analysis for
//! `θ̂ ∈ [0, 1]` and additionally handles the negative thresholds that occur
//! early in Row-Top-k runs, where `θ′` can start below zero).

/// Small widening applied to the feasible region so float rounding at the
/// interval boundary can never drop a true result.
const REGION_SLACK: f64 = 1e-9;

/// Local threshold `θ_b(q)` of Eq. 3. Degenerate lengths are mapped to
/// `±∞` so that the bucket is pruned (θ > 0) or trivially admitted (θ ≤ 0).
#[inline]
pub fn local_threshold(theta: f64, query_len: f64, bucket_max_len: f64) -> f64 {
    let denom = query_len * bucket_max_len;
    if denom <= 0.0 {
        return if theta > 0.0 { f64::INFINITY } else { f64::NEG_INFINITY };
    }
    theta / denom
}

/// The sound per-bucket cosine threshold for the COORD/INCR feasible
/// regions.
///
/// For θ ≥ 0 this is the paper's `θ_b(q) = θ/(‖q‖·l_b)` (Eq. 3): every probe
/// `p` in the bucket has `‖p‖ ≤ l_b`, so `qᵀp ≥ θ ⟹ cos ≥ θ_b(q)`. For
/// **negative** θ the inequality flips — `θ/(‖q‖·‖p‖)` is *most* negative
/// for the bucket's shortest vector — so the sound bound divides by the
/// bucket's minimum length instead. (The paper never hits this case: it
/// defines Above-θ with θ > 0; but Row-Top-k warm-up can run with a
/// negative `θ′` when the seeded inner products are negative.)
#[inline]
pub fn region_threshold(
    theta: f64,
    query_len: f64,
    bucket_max_len: f64,
    bucket_min_len: f64,
) -> f64 {
    if theta >= 0.0 {
        local_threshold(theta, query_len, bucket_max_len)
    } else {
        local_threshold(theta, query_len, bucket_min_len)
    }
}

/// Probe-specific threshold `θ_p(q)` of Eq. 5 (`θ_p(q) ≥ θ_b(q)` inside a
/// bucket, since `‖p‖ ≤ l_b`).
#[inline]
pub fn probe_threshold(theta: f64, query_len: f64, probe_len: f64) -> f64 {
    local_threshold(theta, query_len, probe_len)
}

/// Feasible region `[L_f, U_f]` for coordinate value `p̄_f` given the query
/// direction coordinate `q̄_f` and the local threshold `θ̂ = θ_b(q)`.
///
/// Guarantees: for any unit vectors `q̄, p̄` with `q̄ᵀp̄ ≥ θ̂`, the value
/// `p̄_f` lies inside the returned interval (the *superset* property; the
/// interval may also contain infeasible values). For `θ̂ ≤ −1` the region is
/// all of `[−1, 1]`; for `θ̂ > 1` the caller should have pruned the bucket,
/// but the returned (near-degenerate) interval is still a superset of the
/// (empty) feasible set.
#[inline]
pub fn feasible_region(qf: f64, theta_b: f64) -> (f64, f64) {
    if theta_b <= -1.0 {
        return (-1.0, 1.0); // cos ≥ θ̂ holds everywhere: nothing to prune
    }
    let th = theta_b;
    let qf = qf.clamp(-1.0, 1.0);
    // g(x) = q̄_f·x + √((1−q̄_f²)(1−x²)) is concave on [−1, 1], so its
    // super-level set {g ≥ θ̂} is an interval. An endpoint sits at the
    // domain edge iff the edge itself is feasible (g(−1) = −q̄_f,
    // g(1) = q̄_f); otherwise it is the corresponding quadratic root
    // q̄_f·θ̂ ∓ √((1−θ̂²)(1−q̄_f²)). This reduces to the paper's case
    // analysis for θ̂ ∈ [0, 1] and stays correct for the negative
    // thresholds of Row-Top-k warm-up and for |q̄_f| = 1 (double root).
    let root = ((1.0 - th * th).max(0.0) * (1.0 - qf * qf)).sqrt();
    let l = if -qf >= th { -1.0 } else { qf * th - root };
    let u = if qf >= th { 1.0 } else { qf * th + root };
    ((l - REGION_SLACK).max(-1.0), (u + REGION_SLACK).min(1.0))
}

/// Reference feasibility predicate used by tests and the tuner's sanity
/// checks: the exact maximum of `q̄ᵀp̄` over unit `p̄` with the given
/// coordinate value is `q̄_f·x + √((1−q̄_f²)(1−x²))`.
#[inline]
pub fn max_cosine_given_coord(qf: f64, x: f64) -> f64 {
    let qf = qf.clamp(-1.0, 1.0);
    let x = x.clamp(-1.0, 1.0);
    qf * x + ((1.0 - qf * qf).max(0.0) * (1.0 - x * x).max(0.0)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_threshold_matches_fig2() {
        // Fig. 2: θ = 0.9, ‖q1‖ = 5, buckets l = 2, 1, 0.5.
        assert!((local_threshold(0.9, 5.0, 2.0) - 0.09).abs() < 1e-12);
        assert!((local_threshold(0.9, 5.0, 1.0) - 0.18).abs() < 1e-12);
        assert!((local_threshold(0.9, 5.0, 0.5) - 0.36).abs() < 1e-12);
        // ‖q2‖ = 1: 0.45, 0.90, 1.8 (pruned)
        assert!((local_threshold(0.9, 1.0, 2.0) - 0.45).abs() < 1e-12);
        assert!((local_threshold(0.9, 1.0, 1.0) - 0.90).abs() < 1e-12);
        assert!(local_threshold(0.9, 1.0, 0.5) > 1.0);
        // ‖q3‖ = 0.1: all above 1
        assert!(local_threshold(0.9, 0.1, 2.0) > 1.0);
    }

    #[test]
    fn local_threshold_degenerate_lengths() {
        assert_eq!(local_threshold(0.5, 0.0, 2.0), f64::INFINITY);
        assert_eq!(local_threshold(0.0, 0.0, 2.0), f64::NEG_INFINITY);
        assert_eq!(local_threshold(-1.0, 2.0, 0.0), f64::NEG_INFINITY);
    }

    #[test]
    fn feasible_region_matches_fig4_example() {
        // Fig. 4d: q̄ = (0.70, 0.3, 0.4, 0.51), θ_b = 0.9; regions for the
        // focus coordinates F = {1, 4}: [0.32, 0.94] and [0.09, 0.83].
        let (l1, u1) = feasible_region(0.70, 0.9);
        assert!((l1 - 0.32).abs() < 0.01, "L1 {l1}");
        assert!((u1 - 0.94).abs() < 0.01, "U1 {u1}");
        let (l4, u4) = feasible_region(0.51, 0.9);
        assert!((l4 - 0.09).abs() < 0.01, "L4 {l4}");
        assert!((u4 - 0.83).abs() < 0.01, "U4 {u4}");
    }

    #[test]
    fn region_is_superset_of_feasible_values_dense_grid() {
        // For a grid of (q̄_f, θ̂, x): if some unit p̄ with p̄_f = x can reach
        // cosine θ̂, then x must be inside the region.
        let grid: Vec<f64> = (-20..=20).map(|i| i as f64 / 20.0).collect();
        for &qf in &grid {
            for &th in &grid {
                let (l, u) = feasible_region(qf, th);
                for &x in &grid {
                    if max_cosine_given_coord(qf, x) >= th {
                        assert!(
                            x >= l - 1e-9 && x <= u + 1e-9,
                            "qf={qf} th={th}: feasible x={x} outside [{l}, {u}]"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn region_shrinks_with_threshold() {
        // Fig. 3: larger local thresholds give smaller feasible regions.
        let widths: Vec<f64> = [0.3, 0.8, 0.99]
            .iter()
            .map(|&t| {
                let (l, u) = feasible_region(0.5, t);
                u - l
            })
            .collect();
        assert!(widths[0] > widths[1]);
        assert!(widths[1] > widths[2]);
    }

    #[test]
    fn region_handles_extreme_qf() {
        // q̄_f = ±1: p̄ must equal ±q̄ up to the free coordinate; the region
        // collapses around ±θ̂.
        let (l, u) = feasible_region(1.0, 0.8);
        assert!((l - 0.8).abs() < 1e-6);
        assert!((u - 1.0).abs() < 1e-6);
        let (l, u) = feasible_region(-1.0, 0.8);
        assert!((l + 1.0).abs() < 1e-6);
        assert!((u + 0.8).abs() < 1e-6);
    }

    #[test]
    fn region_with_negative_threshold_is_safe() {
        // θ̂ < 0 happens in Row-Top-k warm-up. qf = 0 with θ̂ < 0 must give
        // the full range (every x is feasible via the orthogonal complement).
        let (l, u) = feasible_region(0.0, -0.5);
        assert_eq!((l, u), (-1.0, 1.0));
        // And θ̂ ≤ −1 unconditionally.
        let (l, u) = feasible_region(0.7, -1.5);
        assert_eq!((l, u), (-1.0, 1.0));
    }

    #[test]
    fn region_at_threshold_one_pins_to_query() {
        // θ̂ = 1 forces p̄ = q̄, so the region is {q̄_f} (within slack).
        let (l, u) = feasible_region(0.6, 1.0);
        assert!((l - 0.6).abs() < 1e-6);
        assert!((u - 0.6).abs() < 1e-6);
    }

    #[test]
    fn region_threshold_is_sound_for_both_signs() {
        // θ > 0: divide by the longest vector (Eq. 3).
        assert!((region_threshold(0.9, 1.0, 2.0, 0.5) - 0.45).abs() < 1e-12);
        // θ < 0: divide by the shortest vector — every probe's θ_p is ≥ it.
        let t = region_threshold(-0.9, 1.0, 2.0, 0.5);
        assert!((t + 1.8).abs() < 1e-12);
        for p_len in [0.5, 1.0, 2.0] {
            assert!(probe_threshold(-0.9, 1.0, p_len) >= t - 1e-12);
        }
        // zero min length with negative θ: no pruning possible
        assert_eq!(region_threshold(-0.1, 1.0, 2.0, 0.0), f64::NEG_INFINITY);
    }

    #[test]
    fn probe_threshold_dominates_local_threshold() {
        // ‖p‖ ≤ l_b ⇒ θ_p(q) ≥ θ_b(q) (the INCR improvement).
        let theta = 0.9;
        let q = 1.3;
        let lb = 2.0;
        for p_len in [0.5, 1.0, 1.9, 2.0] {
            assert!(probe_threshold(theta, q, p_len) >= local_threshold(theta, q, lb) - 1e-12);
        }
    }
}
