//! Property-based tests for the approximate-retrieval crate.
//!
//! The central invariants:
//! * the XBOX transform preserves inner products exactly and equalizes
//!   probe lengths, for *any* finite input;
//! * the ALSH distance identity holds for any valid `(u, m)`;
//! * PCA-tree search with the full leaf budget is exact (it degenerates to
//!   a scan), for any tree shape proptest can produce;
//! * SRP Hamming ranking with a full budget is exact;
//! * every approximate method's scores are true inner products (no false
//!   scoring, only possibly missing members).

use lemp_approx::{
    kmeans, AlshTransform, KMeansConfig, MipsTransform, PcaTree, PcaTreeConfig, SrpConfig, SrpLsh,
    SrpTables, SrpTablesConfig, XboxTransform,
};
use lemp_linalg::{kernels, TopK, VectorStore};
use proptest::prelude::*;

/// A random vector set: `n ∈ [1, 40]` vectors of `dim ∈ [1, 8]`, values in
/// a range wide enough to create length skew.
fn vector_set() -> impl Strategy<Value = VectorStore> {
    (1usize..=8).prop_flat_map(|dim| {
        proptest::collection::vec(proptest::collection::vec(-10.0f64..10.0, dim), 1..=40)
            .prop_map(|rows| VectorStore::from_rows(&rows).expect("valid rows"))
    })
}

/// A `(probes, query)` pair of matching dimensionality.
fn probes_and_query() -> impl Strategy<Value = (VectorStore, Vec<f64>)> {
    (1usize..=8).prop_flat_map(|dim| {
        (
            proptest::collection::vec(proptest::collection::vec(-10.0f64..10.0, dim), 1..=40)
                .prop_map(|rows| VectorStore::from_rows(&rows).expect("valid rows")),
            proptest::collection::vec(-10.0f64..10.0, dim),
        )
    })
}

fn exact_top_k(q: &[f64], probes: &VectorStore, k: usize) -> Vec<f64> {
    let mut top = TopK::new(k);
    for j in 0..probes.len() {
        top.push(j, kernels::dot(q, probes.vector(j)));
    }
    top.drain_sorted().into_iter().map(|s| s.score).collect()
}

proptest! {
    #[test]
    fn xbox_preserves_inner_products((probes, q) in probes_and_query()) {
        let t = XboxTransform::fit(&probes).expect("non-empty");
        let tp = t.transform_probes(&probes);
        let mut tq = Vec::new();
        t.transform_query(&q, &mut tq);
        for j in 0..probes.len() {
            let orig = kernels::dot(&q, probes.vector(j));
            let mapped = kernels::dot(&tq, tp.vector(j));
            prop_assert!((orig - mapped).abs() <= 1e-9 * (1.0 + orig.abs()),
                "probe {j}: {orig} vs {mapped}");
        }
    }

    #[test]
    fn xbox_equalizes_probe_lengths(probes in vector_set()) {
        let t = XboxTransform::fit(&probes).expect("non-empty");
        let tp = t.transform_probes(&probes);
        for j in 0..tp.len() {
            let l = kernels::norm(tp.vector(j));
            prop_assert!((l - t.max_len()).abs() <= 1e-6 * (1.0 + t.max_len()),
                "probe {j} length {l} != {}", t.max_len());
        }
    }

    #[test]
    fn alsh_distance_identity(
        (probes, q) in probes_and_query(),
        u in 0.1f64..0.95,
        m in 1usize..=6,
    ) {
        let t = AlshTransform::fit(&probes, u, m).expect("valid params");
        let tp = t.transform_probes(&probes);
        let mut tq = Vec::new();
        t.transform_query(&q, &mut tq);
        let qn = kernels::norm(&q);
        prop_assume!(qn > 1e-9); // normalized query undefined at 0
        for j in 0..probes.len() {
            let d2 = kernels::dist_sq(&tq, tp.vector(j));
            let sp2 = kernels::norm_sq(probes.vector(j)) * t.scale() * t.scale();
            let tail = sp2.powi(1 << m);
            let expect = 1.0 + m as f64 / 4.0
                - 2.0 * t.scale() * kernels::dot(&q, probes.vector(j)) / qn
                + tail;
            prop_assert!((d2 - expect).abs() <= 1e-6 * (1.0 + expect.abs()),
                "probe {j}: {d2} vs {expect}");
        }
    }

    #[test]
    fn pca_tree_full_budget_matches_exact_scan(
        (probes, q) in probes_and_query(),
        k in 1usize..=5,
        leaf_size in 1usize..=10,
    ) {
        let tree = PcaTree::build(
            &probes,
            &PcaTreeConfig { leaf_size, power_iters: 8, seed: 11 },
        ).expect("valid build");
        let got: Vec<f64> = tree
            .query_top_k(&q, k, tree.leaves())
            .into_iter()
            .map(|s| s.score)
            .collect();
        let expect = exact_top_k(&q, &probes, k);
        prop_assert_eq!(got.len(), expect.len());
        for (g, e) in got.iter().zip(&expect) {
            prop_assert!((g - e).abs() < 1e-9, "scores diverge: {} vs {}", g, e);
        }
    }

    #[test]
    fn srp_full_budget_matches_exact_scan(
        (probes, q) in probes_and_query(),
        k in 1usize..=5,
    ) {
        let index = SrpLsh::build(&probes, &SrpConfig { bits: 32, seed: 13 })
            .expect("valid build");
        let got: Vec<f64> = index
            .query_top_k(&q, k, probes.len())
            .into_iter()
            .map(|s| s.score)
            .collect();
        let expect = exact_top_k(&q, &probes, k);
        prop_assert_eq!(got.len(), expect.len());
        for (g, e) in got.iter().zip(&expect) {
            prop_assert!((g - e).abs() < 1e-9, "scores diverge: {} vs {}", g, e);
        }
    }

    #[test]
    fn kmeans_invariants(
        points in vector_set(),
        k in 1usize..=10,
        seed in 0u64..100,
    ) {
        let km = kmeans(&points, &KMeansConfig { k, max_iters: 8, seed })
            .expect("non-empty input");
        prop_assert_eq!(km.centroids.len(), k.min(points.len()));
        prop_assert_eq!(km.assignment.len(), points.len());
        // every point is assigned to its nearest centroid
        for i in 0..points.len() {
            let assigned = kernels::dist_sq(
                points.vector(i),
                km.centroids.vector(km.assignment[i] as usize),
            );
            for c in 0..km.centroids.len() {
                let d = kernels::dist_sq(points.vector(i), km.centroids.vector(c));
                prop_assert!(assigned <= d + 1e-9, "point {i} misassigned");
            }
        }
        // the recomputed objective matches the reported inertia
        let objective: f64 = (0..points.len())
            .map(|i| {
                kernels::dist_sq(
                    points.vector(i),
                    km.centroids.vector(km.assignment[i] as usize),
                )
            })
            .sum();
        prop_assert!((objective - km.inertia).abs() <= 1e-9 * (1.0 + objective));
    }

    #[test]
    fn srp_tables_subset_of_exact_scores(
        (probes, q) in probes_and_query(),
        tables in 1usize..=8,
        band_bits in 1usize..=10,
    ) {
        // Whatever the banded tables return: exact scores, sorted, no
        // duplicates, ids in range.
        let index = SrpTables::build(
            &probes,
            &SrpTablesConfig { tables, band_bits, seed: 23 },
        ).expect("valid build");
        let got = index.query_top_k(&q, 5);
        let mut seen = std::collections::BTreeSet::new();
        for w in got.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        for item in &got {
            prop_assert!(item.id < probes.len());
            prop_assert!(seen.insert(item.id), "duplicate probe {}", item.id);
            let exact = kernels::dot(&q, probes.vector(item.id));
            prop_assert!((item.score - exact).abs() < 1e-12);
        }
    }

    #[test]
    fn approximate_scores_are_never_fabricated(
        (probes, q) in probes_and_query(),
        budget in 1usize..=10,
    ) {
        // Whatever subset the index returns, each score must equal the
        // exact inner product of that (query, probe) pair, and lists must
        // be sorted by descending score.
        let index = SrpLsh::build(&probes, &SrpConfig { bits: 16, seed: 17 })
            .expect("valid build");
        let got = index.query_top_k(&q, 3, budget);
        for w in got.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        for item in &got {
            let exact = kernels::dot(&q, probes.vector(item.id));
            prop_assert!((item.score - exact).abs() < 1e-12);
        }
    }
}
