//! Error type for approximate-retrieval construction and configuration.

use std::fmt;

/// Errors raised when building an approximate index from invalid parameters
/// or inputs.
///
/// Query-time misuse that indicates a caller bug (dimension mismatch,
/// out-of-range ids) panics instead, matching the convention of
/// `lemp-core`: recoverable configuration problems are `Result`s, broken
/// invariants are panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApproxError {
    /// A numeric parameter was outside its valid range.
    InvalidParam {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable constraint that was violated.
        requirement: &'static str,
    },
    /// The input vector set was empty where at least one vector is required.
    EmptyInput {
        /// What the vectors were needed for.
        context: &'static str,
    },
}

impl fmt::Display for ApproxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApproxError::InvalidParam { name, requirement } => {
                write!(f, "invalid parameter `{name}`: {requirement}")
            }
            ApproxError::EmptyInput { context } => {
                write!(f, "empty input: {context} requires at least one vector")
            }
        }
    }
}

impl std::error::Error for ApproxError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ApproxError::InvalidParam { name: "bits", requirement: "must be positive" };
        let s = e.to_string();
        assert!(s.contains("bits"));
        assert!(s.contains("positive"));
        let e = ApproxError::EmptyInput { context: "k-means" };
        assert!(e.to_string().contains("k-means"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> =
            Box::new(ApproxError::EmptyInput { context: "XBOX transform" });
        assert!(e.to_string().contains("XBOX"));
    }
}
