//! Approximate maximum-inner-product search: the LEMP paper's related-work
//! extensions, built from scratch.
//!
//! The LEMP paper (Teflioudi et al., SIGMOD 2015) focuses on **exact**
//! retrieval of large entries in a matrix product, but its related-work
//! section (Sec. 5) surveys three approximate families and notes they can
//! be combined with — or compared against — the LEMP framework. This crate
//! implements all three on top of the same substrates as the exact engine:
//!
//! | Module | Paper reference | Method |
//! |---|---|---|
//! | [`transform`] | \[15\] Shrivastava & Li, \[16\] Bachrach et al. | asymmetric MIPS→cosine/Euclidean reductions ([`AlshTransform`], [`XboxTransform`]) |
//! | [`srp`] | \[15\], \[9\] | sign-random-projection LSH with Hamming ranking ([`SrpLsh`]) and banded tables ([`SrpTables`]) |
//! | [`pca_tree`] | \[16\] | PCA-tree with budgeted backtracking ([`PcaTree`]) |
//! | [`centroids`] | \[17\] Koenigstein et al. | query k-means + exact LEMP per centroid ([`centroid_row_top_k`]) |
//! | [`quantized`] | — | the engine's PQ buckets scored **without** verification ([`QuantizedScorer`]) |
//! | [`recall`] | — | tie-tolerant recall/precision metrics for grading all of the above |
//!
//! Every method here except [`quantized`] verifies its candidates with
//! exact inner products, so reported scores are always correct — only
//! *recall* (which probes make the candidate set) is approximate. Each
//! index exposes a knob trading time for recall (`budget`, `tables`,
//! `leaf_budget`, `expand`), and each degenerates to the exact answer at
//! the knob's maximum, which the test suite verifies. [`quantized`] is the
//! deliberate exception: it reports the raw LUT-scan scores of the exact
//! engine's QUANT buckets so their standalone quality can be measured —
//! scores are off by at most the trained distortion bound, and its knob is
//! the code width in bits.
//!
//! # Example
//!
//! ```
//! use lemp_approx::{PcaTree, PcaTreeConfig};
//! use lemp_linalg::VectorStore;
//!
//! let probes = VectorStore::from_rows(&[
//!     vec![1.0, 0.0],
//!     vec![0.8, 0.6],
//!     vec![0.0, 1.0],
//! ]).unwrap();
//! let tree = PcaTree::build(&probes, &PcaTreeConfig::default()).unwrap();
//! // Full leaf budget => exact top-1.
//! let top = tree.query_top_k(&[2.0, 0.1], 1, tree.leaves());
//! assert_eq!(top[0].id, 0);
//! ```

#![warn(missing_docs)]

pub mod centroids;
pub mod error;
pub mod pca_tree;
pub mod quantized;
pub mod recall;
pub mod srp;
pub mod transform;

pub use centroids::{
    centroid_row_top_k, kmeans, CentroidConfig, CentroidOutput, KMeans, KMeansConfig,
};
pub use error::ApproxError;
pub use pca_tree::{PcaTree, PcaTreeConfig};
pub use quantized::{QuantizedScorer, QuantizedScorerConfig};
pub use srp::{SrpConfig, SrpLsh, SrpTables, SrpTablesConfig};
pub use transform::{AlshTransform, MipsTransform, XboxTransform};
