//! Asymmetric MIPS-to-similarity transformations.
//!
//! LSH-style methods cannot index inner products directly: `qᵀp` violates
//! the triangle inequality (footnote 2 of the paper). The related work the
//! paper cites resolves this with *asymmetric* vector transformations that
//! reduce maximum-inner-product search to a problem LSH can solve:
//!
//! * [`XboxTransform`] — the Euclidean transformation of Bachrach et al.
//!   (RecSys 2014, reference \[16\] of the paper): appends one coordinate
//!   `√(M² − ‖p‖²)` to every probe so all transformed probes share length
//!   `M`, turning MIPS into *exact* cosine similarity search.
//! * [`AlshTransform`] — the asymmetric LSH transformation of Shrivastava
//!   and Li (NIPS 2014, reference \[15\]): appends the powers
//!   `‖p‖², ‖p‖⁴, …` to probes and constants `½, ½, …` to queries so that
//!   Euclidean nearest neighbour among transformed probes approaches the
//!   MIPS answer as the number of appended terms grows.
//!
//! Both implement [`MipsTransform`], which downstream approximate indexes
//! ([`crate::SrpLsh`], [`crate::PcaTree`]) are generic over.

use lemp_linalg::{kernels, VectorStore};

use crate::error::ApproxError;

/// A pair of maps `(P, Q)` such that similarity search over `P(p)` with
/// query `Q(q)` approximates (or solves) maximum-inner-product search.
pub trait MipsTransform {
    /// Dimensionality of transformed vectors given the input dimensionality.
    fn output_dim(&self, input_dim: usize) -> usize;

    /// Applies the probe-side map `P`; `out` is cleared and refilled.
    fn transform_probe(&self, p: &[f64], out: &mut Vec<f64>);

    /// Applies the query-side map `Q`; `out` is cleared and refilled.
    fn transform_query(&self, q: &[f64], out: &mut Vec<f64>);

    /// Transforms every vector of a store with the probe-side map.
    fn transform_probes(&self, probes: &VectorStore) -> VectorStore {
        let out_dim = self.output_dim(probes.dim());
        let mut flat = Vec::with_capacity(probes.len() * out_dim);
        let mut buf = Vec::with_capacity(out_dim);
        for p in probes.iter() {
            self.transform_probe(p, &mut buf);
            flat.extend_from_slice(&buf);
        }
        VectorStore::from_flat(flat, out_dim).expect("transform outputs are finite")
    }

    /// Transforms every vector of a store with the query-side map.
    fn transform_queries(&self, queries: &VectorStore) -> VectorStore {
        let out_dim = self.output_dim(queries.dim());
        let mut flat = Vec::with_capacity(queries.len() * out_dim);
        let mut buf = Vec::with_capacity(out_dim);
        for q in queries.iter() {
            self.transform_query(q, &mut buf);
            flat.extend_from_slice(&buf);
        }
        VectorStore::from_flat(flat, out_dim).expect("transform outputs are finite")
    }
}

/// The Euclidean MIPS transformation of Bachrach et al. \[16\].
///
/// Fit on the probe set, it records `M = max_p ‖p‖` and maps
///
/// ```text
/// P(p) = [p ; √(M² − ‖p‖²)]          Q(q) = [q ; 0]
/// ```
///
/// so that `Q(q)ᵀP(p) = qᵀp` **exactly** while `‖P(p)‖ = M` for every
/// probe. Because all transformed probes have equal length, ranking by
/// cosine similarity — or equivalently by Euclidean distance from `Q(q)` —
/// ranks by the original inner product. The reduction is exact; any
/// approximation error downstream comes from the index, not the transform.
#[derive(Debug, Clone, PartialEq)]
pub struct XboxTransform {
    max_len: f64,
}

impl XboxTransform {
    /// Fits the transform on a probe set (records the maximum length).
    ///
    /// # Errors
    /// [`ApproxError::EmptyInput`] if `probes` holds no vectors.
    pub fn fit(probes: &VectorStore) -> Result<Self, ApproxError> {
        if probes.is_empty() {
            return Err(ApproxError::EmptyInput { context: "XBOX transform fit" });
        }
        let max_len = probes.iter().map(kernels::norm).fold(0.0_f64, f64::max);
        Ok(Self { max_len })
    }

    /// Constructs the transform from a known maximum probe length.
    ///
    /// # Errors
    /// [`ApproxError::InvalidParam`] unless `max_len` is finite and > 0.
    pub fn with_max_len(max_len: f64) -> Result<Self, ApproxError> {
        if !max_len.is_finite() || max_len <= 0.0 {
            return Err(ApproxError::InvalidParam {
                name: "max_len",
                requirement: "must be finite and positive",
            });
        }
        Ok(Self { max_len })
    }

    /// The recorded maximum probe length `M`.
    pub fn max_len(&self) -> f64 {
        self.max_len
    }
}

impl MipsTransform for XboxTransform {
    fn output_dim(&self, input_dim: usize) -> usize {
        input_dim + 1
    }

    fn transform_probe(&self, p: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(p);
        // Guard the subtraction against rounding on the probe that attains
        // the maximum itself (‖p‖ may exceed M by one ulp).
        let slack = (self.max_len * self.max_len - kernels::norm_sq(p)).max(0.0);
        out.push(slack.sqrt());
    }

    fn transform_query(&self, q: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(q);
        out.push(0.0);
    }
}

/// The asymmetric LSH transformation of Shrivastava and Li \[15\].
///
/// Probes are first rescaled by `s = U / max_p ‖p‖` so every length is at
/// most `U < 1`, then mapped with `m` appended squaring terms:
///
/// ```text
/// P(p) = [s·p ; ‖s·p‖² ; ‖s·p‖⁴ ; … ; ‖s·p‖^(2^m)]
/// Q(q) = [q̄  ; ½      ; ½      ; … ; ½          ]     (q̄ = q/‖q‖)
/// ```
///
/// A short computation gives
/// `‖Q(q) − P(p)‖² = 1 + m/4 − 2·s·q̄ᵀp + ‖s·p‖^(2^(m+1))`, so Euclidean
/// NN over `P(p)` solves MIPS up to the vanishing bias `‖s·p‖^(2^(m+1)) ≤
/// U^(2^(m+1))` — e.g. `0.83¹⁶ ≈ 0.05` at the authors' default `m = 3`.
/// Unlike [`XboxTransform`] the reduction is inexact; [`Self::bias_bound`]
/// exposes the worst-case distortion so callers can size `m`.
#[derive(Debug, Clone, PartialEq)]
pub struct AlshTransform {
    scale: f64,
    u: f64,
    m: usize,
}

impl AlshTransform {
    /// Fits the transform: `u` is the target maximum length (paper default
    /// 0.83), `m` the number of appended terms (paper default 3).
    ///
    /// # Errors
    /// [`ApproxError::InvalidParam`] if `u ∉ (0, 1)` or `m == 0` or `m > 10`
    /// (beyond which `2^m` exponents underflow to exactly zero and add
    /// nothing); [`ApproxError::EmptyInput`] if `probes` is empty.
    pub fn fit(probes: &VectorStore, u: f64, m: usize) -> Result<Self, ApproxError> {
        if !(0.0 < u && u < 1.0) {
            return Err(ApproxError::InvalidParam {
                name: "u",
                requirement: "must lie strictly between 0 and 1",
            });
        }
        if m == 0 || m > 10 {
            return Err(ApproxError::InvalidParam { name: "m", requirement: "must lie in 1..=10" });
        }
        if probes.is_empty() {
            return Err(ApproxError::EmptyInput { context: "ALSH transform fit" });
        }
        let max_len = probes.iter().map(kernels::norm).fold(0.0_f64, f64::max);
        // An all-zero probe set degenerates: any positive scale keeps lengths
        // at 0 ≤ U, so pick 1 to leave the data untouched.
        let scale = if max_len > 0.0 { u / max_len } else { 1.0 };
        Ok(Self { scale, u, m })
    }

    /// The probe rescaling factor `s = U / max‖p‖`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The maximum-length parameter `U`.
    pub fn u(&self) -> f64 {
        self.u
    }

    /// The number of appended squaring terms `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Worst-case additive bias `U^(2^(m+1))` of the Euclidean reduction.
    pub fn bias_bound(&self) -> f64 {
        self.u.powi(1 << (self.m + 1))
    }
}

impl MipsTransform for AlshTransform {
    fn output_dim(&self, input_dim: usize) -> usize {
        input_dim + self.m
    }

    fn transform_probe(&self, p: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(p.len() + self.m);
        out.extend(p.iter().map(|&x| x * self.scale));
        let mut pow = kernels::norm_sq(&out[..p.len()]); // ‖s·p‖²
        for _ in 0..self.m {
            out.push(pow);
            pow *= pow; // ‖s·p‖⁴, ‖s·p‖⁸, …
        }
    }

    fn transform_query(&self, q: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(q.len() + self.m);
        out.extend_from_slice(q);
        kernels::normalize(out);
        out.extend(std::iter::repeat_n(0.5, self.m));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemp_data::synthetic::GeneratorConfig;

    fn probes(n: usize, dim: usize, seed: u64) -> VectorStore {
        GeneratorConfig::gaussian(n, dim, 0.8).generate(seed)
    }

    #[test]
    fn xbox_preserves_inner_products_exactly() {
        let p = probes(50, 8, 1);
        let q = probes(10, 8, 2);
        let t = XboxTransform::fit(&p).unwrap();
        let tp = t.transform_probes(&p);
        let tq = t.transform_queries(&q);
        assert_eq!(tp.dim(), 9);
        for i in 0..q.len() {
            for j in 0..p.len() {
                let orig = q.dot_between(i, &p, j);
                let mapped = tq.dot_between(i, &tp, j);
                assert!((orig - mapped).abs() < 1e-12, "transform changed qᵀp: {orig} vs {mapped}");
            }
        }
    }

    #[test]
    fn xbox_probe_lengths_are_constant() {
        let p = probes(80, 6, 3);
        let t = XboxTransform::fit(&p).unwrap();
        let tp = t.transform_probes(&p);
        for j in 0..tp.len() {
            let l = kernels::norm(tp.vector(j));
            assert!(
                (l - t.max_len()).abs() < 1e-9,
                "probe {j} transformed length {l} != M {}",
                t.max_len()
            );
        }
    }

    #[test]
    fn xbox_cosine_order_matches_inner_product_order() {
        let p = probes(40, 5, 4);
        let q = probes(1, 5, 5);
        let t = XboxTransform::fit(&p).unwrap();
        let tp = t.transform_probes(&p);
        let mut tq = Vec::new();
        t.transform_query(q.vector(0), &mut tq);

        let mut by_ip: Vec<usize> = (0..p.len()).collect();
        by_ip.sort_by(|&a, &b| {
            q.dot_between(0, &p, b).partial_cmp(&q.dot_between(0, &p, a)).unwrap()
        });
        let mut by_cos: Vec<usize> = (0..p.len()).collect();
        by_cos.sort_by(|&a, &b| {
            kernels::cosine(&tq, tp.vector(b))
                .partial_cmp(&kernels::cosine(&tq, tp.vector(a)))
                .unwrap()
        });
        assert_eq!(by_ip, by_cos);
    }

    #[test]
    fn xbox_rejects_bad_input() {
        assert!(matches!(
            XboxTransform::fit(&VectorStore::empty(4).unwrap()),
            Err(ApproxError::EmptyInput { .. })
        ));
        assert!(XboxTransform::with_max_len(0.0).is_err());
        assert!(XboxTransform::with_max_len(f64::NAN).is_err());
        assert!(XboxTransform::with_max_len(2.5).is_ok());
    }

    #[test]
    fn alsh_distance_identity_holds() {
        let p = probes(30, 7, 6);
        let q = probes(5, 7, 7);
        let t = AlshTransform::fit(&p, 0.83, 3).unwrap();
        let tp = t.transform_probes(&p);
        let tq = t.transform_queries(&q);
        assert_eq!(tp.dim(), 10);
        for i in 0..q.len() {
            let qnorm = kernels::norm(q.vector(i));
            for j in 0..p.len() {
                let dist_sq = kernels::dist_sq(tq.vector(i), tp.vector(j));
                let sp_norm_sq = kernels::norm_sq(p.vector(j)) * t.scale() * t.scale();
                let tail = sp_norm_sq.powi(1 << t.m()); // ‖s·p‖^(2^(m+1))
                let expect = 1.0 + t.m() as f64 / 4.0
                    - 2.0 * t.scale() * q.dot_between(i, &p, j) / qnorm
                    + tail;
                assert!(
                    (dist_sq - expect).abs() < 1e-9,
                    "ALSH identity violated: {dist_sq} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn alsh_nearest_neighbor_is_mips_argmax() {
        // With a healthy m the bias U^(2^(m+1)) is far below the spacing of
        // random inner products, so the transformed NN must be the MIPS
        // winner for each query.
        let p = probes(60, 6, 8);
        let q = probes(8, 6, 9);
        let t = AlshTransform::fit(&p, 0.83, 5).unwrap();
        assert!(t.bias_bound() < 1e-5);
        let tp = t.transform_probes(&p);
        let tq = t.transform_queries(&q);
        for i in 0..q.len() {
            let best_ip = (0..p.len())
                .max_by(|&a, &b| {
                    q.dot_between(i, &p, a).partial_cmp(&q.dot_between(i, &p, b)).unwrap()
                })
                .unwrap();
            let nn = (0..p.len())
                .min_by(|&a, &b| {
                    kernels::dist_sq(tq.vector(i), tp.vector(a))
                        .partial_cmp(&kernels::dist_sq(tq.vector(i), tp.vector(b)))
                        .unwrap()
                })
                .unwrap();
            assert_eq!(best_ip, nn, "query {i}: ALSH NN disagrees with MIPS argmax");
        }
    }

    #[test]
    fn alsh_rejects_bad_params() {
        let p = probes(5, 4, 10);
        assert!(AlshTransform::fit(&p, 0.0, 3).is_err());
        assert!(AlshTransform::fit(&p, 1.0, 3).is_err());
        assert!(AlshTransform::fit(&p, 0.83, 0).is_err());
        assert!(AlshTransform::fit(&p, 0.83, 11).is_err());
        assert!(matches!(
            AlshTransform::fit(&VectorStore::empty(4).unwrap(), 0.83, 3),
            Err(ApproxError::EmptyInput { .. })
        ));
    }

    #[test]
    fn alsh_handles_all_zero_probes() {
        let p = VectorStore::from_rows(&[vec![0.0, 0.0], vec![0.0, 0.0]]).unwrap();
        let t = AlshTransform::fit(&p, 0.5, 2).unwrap();
        let tp = t.transform_probes(&p);
        // appended coordinates of a zero vector are all zero
        assert_eq!(tp.vector(0), &[0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn bias_bound_decreases_in_m() {
        let p = probes(5, 4, 11);
        let mut last = f64::INFINITY;
        for m in 1..=6 {
            let t = AlshTransform::fit(&p, 0.83, m).unwrap();
            assert!(t.bias_bound() < last);
            last = t.bias_bound();
        }
    }
}
