//! Recall metrics for evaluating approximate retrieval against exact
//! ground truth.
//!
//! The paper evaluates only exact methods (plus the ε-bounded BayesLSH
//! bucket variant); this module provides the measurement harness that the
//! approximate extensions ([`crate::SrpLsh`], [`crate::PcaTree`],
//! [`crate::centroid_row_top_k`]) are graded with in tests, examples and
//! benches. All metrics are *tie-tolerant*: an approximate result that
//! returns a probe whose exact score ties the k-th true score (within a
//! tolerance) counts as a hit, mirroring how
//! `lemp_baselines::types::topk_equivalent` compares exact algorithms.

use lemp_baselines::types::{Entry, TopKLists};

/// Mean Row-Top-k recall over all queries.
///
/// For each query the *score threshold* is the smallest score in the true
/// top-`k` list minus `tol`; every returned item scoring at or above it is
/// a hit (this forgives tie reorderings at the boundary). The per-query
/// recall is `hits / |truth|`, and queries with empty truth count as
/// recall 1. Returns 1.0 for an empty query set.
///
/// # Panics
/// If the two list collections disagree on the number of queries.
pub fn topk_recall(truth: &TopKLists, got: &TopKLists, tol: f64) -> f64 {
    assert_eq!(truth.len(), got.len(), "query counts differ: {} vs {}", truth.len(), got.len());
    if truth.is_empty() {
        return 1.0;
    }
    let mut total = 0.0;
    for (want, have) in truth.iter().zip(got) {
        total += query_recall(want, have, tol);
    }
    total / truth.len() as f64
}

/// Recall of a single query's approximate list against its true list.
fn query_recall(
    truth: &[lemp_linalg::ScoredItem],
    got: &[lemp_linalg::ScoredItem],
    tol: f64,
) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let kth = truth.iter().map(|s| s.score).fold(f64::INFINITY, f64::min);
    let hits = got.iter().filter(|s| s.score >= kth - tol).count().min(truth.len());
    hits as f64 / truth.len() as f64
}

/// Recall of an Above-θ result: the fraction of true `(query, probe)`
/// pairs present in the approximate result. Returns 1.0 when the truth is
/// empty.
pub fn pair_recall(truth: &[Entry], got: &[Entry]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let mut got_pairs: Vec<(u32, u32)> = got.iter().map(|e| (e.query, e.probe)).collect();
    got_pairs.sort_unstable();
    got_pairs.dedup();
    let hits =
        truth.iter().filter(|e| got_pairs.binary_search(&(e.query, e.probe)).is_ok()).count();
    hits as f64 / truth.len() as f64
}

/// Precision of an Above-θ result: the fraction of returned pairs that are
/// true results. Returns 1.0 when nothing was returned (an empty answer
/// makes no false claims).
pub fn pair_precision(truth: &[Entry], got: &[Entry]) -> f64 {
    if got.is_empty() {
        return 1.0;
    }
    let mut truth_pairs: Vec<(u32, u32)> = truth.iter().map(|e| (e.query, e.probe)).collect();
    truth_pairs.sort_unstable();
    let hits =
        got.iter().filter(|e| truth_pairs.binary_search(&(e.query, e.probe)).is_ok()).count();
    hits as f64 / got.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemp_linalg::ScoredItem;

    fn item(id: usize, score: f64) -> ScoredItem {
        ScoredItem { id, score }
    }

    #[test]
    fn recall_of_truth_vs_itself_is_one() {
        let truth = vec![vec![item(0, 2.0), item(3, 1.5)], vec![item(1, 0.9)], vec![]];
        assert_eq!(topk_recall(&truth, &truth, 1e-9), 1.0);
    }

    #[test]
    fn recall_counts_score_ties_as_hits() {
        let truth = vec![vec![item(0, 2.0), item(1, 1.0)]];
        // Different id but the same boundary score: a legitimate tie swap.
        let got = vec![vec![item(0, 2.0), item(7, 1.0)]];
        assert_eq!(topk_recall(&truth, &got, 1e-9), 1.0);
        // Strictly worse second item: half recall.
        let got = vec![vec![item(0, 2.0), item(7, 0.5)]];
        assert_eq!(topk_recall(&truth, &got, 1e-9), 0.5);
    }

    #[test]
    fn recall_missing_everything_is_zero() {
        let truth = vec![vec![item(0, 2.0)]];
        let got = vec![vec![]];
        assert_eq!(topk_recall(&truth, &got, 1e-9), 0.0);
    }

    #[test]
    fn recall_caps_hits_at_truth_size() {
        // More returned items above the threshold than the truth holds
        // (possible when k_got > k_truth): recall stays ≤ 1.
        let truth = vec![vec![item(0, 1.0)]];
        let got = vec![vec![item(0, 1.2), item(1, 1.1)]];
        assert_eq!(topk_recall(&truth, &got, 1e-9), 1.0);
    }

    #[test]
    fn empty_query_set() {
        assert_eq!(topk_recall(&vec![], &vec![], 1e-9), 1.0);
    }

    #[test]
    #[should_panic(expected = "query counts differ")]
    fn mismatched_query_counts_panic() {
        let _ = topk_recall(&vec![vec![]], &vec![], 1e-9);
    }

    fn entry(q: u32, p: u32) -> Entry {
        Entry { query: q, probe: p, value: 1.0 }
    }

    #[test]
    fn pair_recall_and_precision() {
        let truth = vec![entry(0, 1), entry(0, 2), entry(1, 0)];
        let got = vec![entry(0, 1), entry(1, 0), entry(2, 2)];
        assert!((pair_recall(&truth, &got) - 2.0 / 3.0).abs() < 1e-12);
        assert!((pair_precision(&truth, &got) - 2.0 / 3.0).abs() < 1e-12);
        // duplicates in `got` do not inflate recall
        let dup = vec![entry(0, 1), entry(0, 1)];
        assert!((pair_recall(&truth, &dup) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn pair_metrics_empty_cases() {
        assert_eq!(pair_recall(&[], &[entry(0, 0)]), 1.0);
        assert_eq!(pair_precision(&[entry(0, 0)], &[]), 1.0);
        assert_eq!(pair_recall(&[entry(0, 0)], &[]), 0.0);
    }
}
