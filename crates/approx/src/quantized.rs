//! Quantized scoring **without verification** — the recall harness for the
//! engine's QUANT buckets run in approximate mode.
//!
//! The exact engine uses [`lemp_core::QuantizedBucket`] only to *prune*:
//! every surviving candidate is re-verified against the full-precision
//! vectors, so answers stay bit-identical (see `lemp_core::quant`). This
//! module asks the complementary question the paper's related work asks of
//! every sketch: **how good are the quantized scores on their own?** It
//! ranks probes by `‖q‖ · len_i · (q̄ · recon_i)` — the LUT scan's output,
//! never touching the full-precision directions at query time — and the
//! tests grade the resulting Row-Top-k lists with [`crate::recall`].
//!
//! Unlike every other index in this crate, reported scores here are
//! *approximate* (off by at most `‖q‖ · len_i · eps` per probe, where `eps`
//! is the trained distortion bound): this is the one deliberately
//! unverified path, kept out of the exact engine and quarantined here for
//! measurement. The `repro-quantized` binary in `lemp-bench` uses it to
//! gate recall ≥ 0.99 at 8 bits on the Table-1 workload.

use lemp_core::QuantizedBucket;
use lemp_linalg::{kernels, ScoredItem, TopK, VectorStore};

use crate::error::ApproxError;

/// Configuration of the no-reverify quantized scorer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantizedScorerConfig {
    /// Code width per subspace in `1..=16` (see
    /// [`lemp_core::quant::MAX_QUANT_BITS`]).
    pub bits: u8,
    /// Seed for the deterministic codebook training.
    pub seed: u64,
}

impl Default for QuantizedScorerConfig {
    fn default() -> Self {
        Self { bits: 8, seed: 0x5e_ed }
    }
}

/// Approximate Row-Top-k over PQ codes alone: probes are length/direction
/// decomposed, directions are encoded once at build, and queries are
/// answered purely by LUT scans — no exact re-scoring of candidates.
#[derive(Debug, Clone)]
pub struct QuantizedScorer {
    quant: QuantizedBucket,
    lengths: Vec<f64>,
    dim: usize,
}

impl QuantizedScorer {
    /// Trains subspace codebooks over the probe set and encodes every probe.
    ///
    /// # Errors
    /// [`ApproxError::InvalidParam`] if `bits` is 0 or exceeds 16;
    /// [`ApproxError::EmptyInput`] if `probes` is empty.
    pub fn build(probes: &VectorStore, cfg: &QuantizedScorerConfig) -> Result<Self, ApproxError> {
        if cfg.bits == 0 || cfg.bits > lemp_core::quant::MAX_QUANT_BITS {
            return Err(ApproxError::InvalidParam {
                name: "bits",
                requirement: "must lie in 1..=16",
            });
        }
        if probes.is_empty() {
            return Err(ApproxError::EmptyInput { context: "quantized scorer" });
        }
        let (lengths, dirs) = probes.decompose();
        let quant = QuantizedBucket::train(&dirs, cfg.bits, cfg.seed)
            .expect("non-empty store and validated bits always train");
        Ok(Self { quant, lengths, dim: probes.dim() })
    }

    /// Code width in bits.
    pub fn bits(&self) -> u8 {
        self.quant.bits()
    }

    /// The trained distortion bound `max_i ‖d̄_i − recon_i‖`: every reported
    /// score is within `‖q‖ · len_i · eps` of the true inner product.
    pub fn eps(&self) -> f64 {
        self.quant.eps()
    }

    /// Number of encoded probes.
    pub fn len(&self) -> usize {
        self.quant.len()
    }

    /// `true` if no probes are encoded (unreachable via [`Self::build`]).
    pub fn is_empty(&self) -> bool {
        self.quant.is_empty()
    }

    /// Resident bytes of the quantized representation (codebooks + codes +
    /// lengths) — what a pure-quantized deployment would hold in memory.
    pub fn resident_bytes(&self) -> usize {
        self.quant.resident_bytes() + self.lengths.len() * 8
    }

    /// Approximate top-`k` probes by inner product with `q`, ranked and
    /// scored entirely from the quantized representation. Results are
    /// sorted by descending approximate score, ties by ascending probe id.
    ///
    /// # Panics
    /// If `q.len()` differs from the probe dimensionality.
    pub fn query_top_k(&self, q: &[f64], k: usize) -> Vec<ScoredItem> {
        let mut lut = Vec::new();
        let mut scores = Vec::new();
        self.query_top_k_with(q, k, &mut lut, &mut scores)
    }

    /// [`Self::query_top_k`] with caller-owned scratch buffers, for batched
    /// use without per-query allocation.
    pub fn query_top_k_with(
        &self,
        q: &[f64],
        k: usize,
        lut: &mut Vec<f64>,
        scores: &mut Vec<f64>,
    ) -> Vec<ScoredItem> {
        assert_eq!(
            q.len(),
            self.dim,
            "dimensionality mismatch: query {} vs probes {}",
            q.len(),
            self.dim
        );
        if k == 0 {
            return Vec::new();
        }
        let qlen = kernels::norm(q);
        let mut dir = q.to_vec();
        kernels::normalize(&mut dir);
        self.quant.fill_lut(&dir, lut);
        self.quant.scores(lut, scores);
        let mut top = TopK::new(k);
        for (i, (&approx, &len)) in scores.iter().zip(&self.lengths).enumerate() {
            top.push(i, qlen * len * approx);
        }
        top.drain_sorted()
    }

    /// [`Self::query_top_k`] for every row of `queries`, sharing scratch.
    ///
    /// # Panics
    /// If the dimensionalities differ.
    pub fn row_top_k(&self, queries: &VectorStore, k: usize) -> Vec<Vec<ScoredItem>> {
        let mut lut = Vec::new();
        let mut scores = Vec::new();
        queries.iter().map(|q| self.query_top_k_with(q, k, &mut lut, &mut scores)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recall::topk_recall;
    use lemp_data::synthetic::GeneratorConfig;

    fn fixture(n: usize, seed: u64) -> VectorStore {
        GeneratorConfig::gaussian(n, 16, 0.8).generate(seed)
    }

    fn exact_top_k(q: &[f64], probes: &VectorStore, k: usize) -> Vec<ScoredItem> {
        let mut top = TopK::new(k);
        for j in 0..probes.len() {
            top.push(j, kernels::dot(q, probes.vector(j)));
        }
        top.drain_sorted()
    }

    #[test]
    fn build_validates_config() {
        let probes = fixture(20, 1);
        for bits in [0u8, 17] {
            let err = QuantizedScorer::build(&probes, &QuantizedScorerConfig { bits, seed: 1 })
                .unwrap_err();
            assert!(matches!(err, ApproxError::InvalidParam { name: "bits", .. }), "{err}");
        }
        let empty = VectorStore::empty(16).unwrap();
        let err = QuantizedScorer::build(&empty, &QuantizedScorerConfig::default()).unwrap_err();
        assert!(matches!(err, ApproxError::EmptyInput { .. }), "{err}");
    }

    #[test]
    fn scores_within_distortion_bound() {
        let probes = fixture(300, 2);
        let queries = fixture(20, 3);
        let scorer = QuantizedScorer::build(&probes, &QuantizedScorerConfig::default()).unwrap();
        for q in queries.iter() {
            let qlen = kernels::norm(q);
            for item in scorer.query_top_k(q, 5) {
                let truth = kernels::dot(q, probes.vector(item.id));
                let slack = qlen * scorer.eps() * 1.0001 + 1e-12;
                assert!(
                    (item.score - truth).abs() <= slack,
                    "probe {}: approx {} vs exact {truth}, slack {slack}",
                    item.id,
                    item.score
                );
            }
        }
    }

    #[test]
    fn recall_high_at_eight_bits_and_monotone_in_bits() {
        let probes = fixture(500, 4);
        let queries = fixture(50, 5);
        let k = 10;
        let truth: Vec<Vec<ScoredItem>> =
            queries.iter().map(|q| exact_top_k(q, &probes, k)).collect();
        let mut recalls = Vec::new();
        for bits in [2u8, 8, 16] {
            let scorer =
                QuantizedScorer::build(&probes, &QuantizedScorerConfig { bits, seed: 7 }).unwrap();
            let got = scorer.row_top_k(&queries, k);
            recalls.push(topk_recall(&truth, &got, 1e-12));
        }
        assert!(
            recalls[0] <= recalls[1] + 0.02 && recalls[1] <= recalls[2] + 0.02,
            "recall not monotone in bits: {recalls:?}"
        );
        assert!(recalls[1] >= 0.85, "8-bit no-reverify recall too low: {}", recalls[1]);
        // At 16 bits k = n: every direction is its own centroid, the
        // reconstruction is exact, and the "approximate" ranking is exact.
        assert_eq!(recalls[2], 1.0, "k = n must reconstruct exactly");
    }

    #[test]
    fn deterministic_given_seed() {
        let probes = fixture(80, 6);
        let q = fixture(1, 7);
        let cfg = QuantizedScorerConfig { bits: 6, seed: 42 };
        let a = QuantizedScorer::build(&probes, &cfg).unwrap();
        let b = QuantizedScorer::build(&probes, &cfg).unwrap();
        assert_eq!(a.query_top_k(q.vector(0), 5), b.query_top_k(q.vector(0), 5));
    }

    #[test]
    fn zero_k_and_accessors() {
        let probes = fixture(40, 8);
        let scorer = QuantizedScorer::build(&probes, &QuantizedScorerConfig::default()).unwrap();
        assert!(scorer.query_top_k(probes.vector(0), 0).is_empty());
        assert_eq!(scorer.bits(), 8);
        assert_eq!(scorer.len(), 40);
        assert!(!scorer.is_empty());
        assert!(scorer.eps() >= 0.0);
    }

    #[test]
    fn residency_undercuts_full_precision() {
        // Large enough that the fixed codebook cost amortizes: per-probe
        // storage is 4 code bytes + one length vs 128 direction bytes.
        let probes = fixture(2000, 9);
        let scorer = QuantizedScorer::build(&probes, &QuantizedScorerConfig::default()).unwrap();
        let full = probes.len() * probes.dim() * 8;
        assert!(
            scorer.resident_bytes() * 2 < full,
            "quantized {} vs full {full}",
            scorer.resident_bytes()
        );
    }
}
