//! Query-clustering retrieval: k-means over query directions + exact LEMP
//! for the centroids.
//!
//! Reference \[17\] of the paper (Koenigstein, Ram, Shavitt, CIKM 2012)
//! accelerates Row-Top-k in recommender systems by clustering the *users*
//! (query vectors) and solving the retrieval problem only for the cluster
//! centroids. The paper notes that "such a method can directly be applied
//! in combination with LEMP" — this module is exactly that combination:
//!
//! 1. queries are **normalized** and clustered with seeded k-means++ /
//!    Lloyd iterations (query length does not affect Row-Top-k results,
//!    Sec. 4.5 of the paper, so clustering directions loses nothing);
//! 2. an exact LEMP engine retrieves the top-`k·expand` probes for every
//!    *centroid*;
//! 3. each query re-scores its centroid's candidate list with exact inner
//!    products and keeps its own top-`k`.
//!
//! The method is approximate — a query's true top-`k` may not appear in
//! its centroid's candidate list — but all reported scores are exact, and
//! with one cluster per query it degenerates to the exact algorithm (a
//! property the tests exploit).

use lemp_core::{Lemp, LempVariant};
use lemp_linalg::{kernels, ScoredItem, TopK, VectorStore};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::ApproxError;

/// Configuration of the k-means substrate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters (clamped to the number of points).
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Seed for k-means++ initialization.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self { k: 64, max_iters: 20, seed: 0xC1u64 }
    }
}

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Cluster centers, one per row.
    pub centroids: VectorStore,
    /// Per-point cluster index.
    pub assignment: Vec<u32>,
    /// Final sum of squared distances to assigned centroids.
    pub inertia: f64,
    /// Objective value after every completed Lloyd iteration.
    pub inertia_history: Vec<f64>,
    /// Lloyd iterations actually run (≤ `max_iters`).
    pub iterations: usize,
    /// Empty clusters reseeded to far points during the run.
    pub reseeds: usize,
}

/// Lloyd's k-means with k-means++ seeding, deterministic under `seed`.
///
/// Empty clusters (possible with duplicate points) are reseeded to the
/// point currently farthest from its assigned centroid.
///
/// # Errors
/// [`ApproxError::InvalidParam`] if `k == 0` or `max_iters == 0`;
/// [`ApproxError::EmptyInput`] if `data` holds no vectors.
pub fn kmeans(data: &VectorStore, cfg: &KMeansConfig) -> Result<KMeans, ApproxError> {
    if cfg.k == 0 {
        return Err(ApproxError::InvalidParam { name: "k", requirement: "must be positive" });
    }
    if cfg.max_iters == 0 {
        return Err(ApproxError::InvalidParam {
            name: "max_iters",
            requirement: "must be positive",
        });
    }
    if data.is_empty() {
        return Err(ApproxError::EmptyInput { context: "k-means" });
    }
    let n = data.len();
    let dim = data.dim();
    let k = cfg.k.min(n);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // --- k-means++ seeding -------------------------------------------------
    let mut centroids = VectorStore::empty(dim).expect("dim > 0");
    let first = rng.random_range(0..n);
    centroids.push(data.vector(first)).expect("same dim");
    let mut d2: Vec<f64> =
        (0..n).map(|i| kernels::dist_sq(data.vector(i), centroids.vector(0))).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let pick = if total > 0.0 {
            // Roulette selection proportional to D².
            let mut target = rng.random::<f64>() * total;
            let mut chosen = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                target -= w;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        } else {
            // All points coincide with a centroid: any index works.
            rng.random_range(0..n)
        };
        centroids.push(data.vector(pick)).expect("same dim");
        let c = centroids.len() - 1;
        for (i, slot) in d2.iter_mut().enumerate() {
            let d = kernels::dist_sq(data.vector(i), centroids.vector(c));
            if d < *slot {
                *slot = d;
            }
        }
    }

    // --- Lloyd iterations ---------------------------------------------------
    let mut assignment = vec![0u32; n];
    let mut inertia_history = Vec::new();
    let mut iterations = 0usize;
    let mut reseeds = 0usize;
    let mut sums = vec![0.0f64; k * dim];
    let mut counts = vec![0usize; k];
    for _ in 0..cfg.max_iters {
        iterations += 1;
        // Assignment step.
        let mut changed = false;
        let mut inertia = 0.0;
        for (i, slot) in assignment.iter_mut().enumerate() {
            let x = data.vector(i);
            let mut best = 0usize;
            let mut best_d = kernels::dist_sq(x, centroids.vector(0));
            for c in 1..k {
                let d = kernels::dist_sq(x, centroids.vector(c));
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            inertia += best_d;
            if *slot != best as u32 {
                *slot = best as u32;
                changed = true;
            }
        }
        inertia_history.push(inertia);
        if !changed && iterations > 1 {
            break;
        }
        // Update step.
        sums.fill(0.0);
        counts.fill(0);
        for (i, &a) in assignment.iter().enumerate() {
            let c = a as usize;
            kernels::axpy(1.0, data.vector(i), &mut sums[c * dim..(c + 1) * dim]);
            counts[c] += 1;
        }
        for c in 0..k {
            if counts[c] > 0 {
                let inv = 1.0 / counts[c] as f64;
                let dst = centroids.vector_mut(c);
                for (d, s) in dst.iter_mut().zip(&sums[c * dim..(c + 1) * dim]) {
                    *d = s * inv;
                }
            } else {
                // Reseed an empty cluster to the farthest point.
                let far = (0..n)
                    .max_by(|&a, &b| {
                        let da = kernels::dist_sq(
                            data.vector(a),
                            centroids.vector(assignment[a] as usize),
                        );
                        let db = kernels::dist_sq(
                            data.vector(b),
                            centroids.vector(assignment[b] as usize),
                        );
                        da.total_cmp(&db)
                    })
                    .expect("n > 0");
                let (src, dst) = (data.vector(far).to_vec(), centroids.vector_mut(c));
                dst.copy_from_slice(&src);
                reseeds += 1;
            }
        }
    }

    // The loop can exhaust `max_iters` right after an update step, leaving
    // assignments stale against the moved centroids; a final assignment-only
    // pass restores the invariant "every point maps to its nearest centroid"
    // (it can only lower the objective, so the history stays monotone).
    for (i, slot) in assignment.iter_mut().enumerate() {
        let x = data.vector(i);
        let mut best = 0usize;
        let mut best_d = kernels::dist_sq(x, centroids.vector(0));
        for c in 1..k {
            let d = kernels::dist_sq(x, centroids.vector(c));
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        *slot = best as u32;
    }

    // Final inertia under the final centroids/assignment.
    let inertia = (0..n)
        .map(|i| kernels::dist_sq(data.vector(i), centroids.vector(assignment[i] as usize)))
        .sum();
    Ok(KMeans { centroids, assignment, inertia, inertia_history, iterations, reseeds })
}

/// Configuration of the centroid-based Row-Top-k retriever.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CentroidConfig {
    /// Number of query clusters.
    pub clusters: usize,
    /// Maximum k-means iterations.
    pub max_iters: usize,
    /// Centroid candidate multiplier: the exact engine retrieves
    /// `k · expand` probes per centroid (≥ 1; larger raises recall).
    pub expand: usize,
    /// Seed for clustering.
    pub seed: u64,
    /// LEMP variant used for the exact centroid retrieval.
    pub variant: LempVariant,
}

impl Default for CentroidConfig {
    fn default() -> Self {
        Self { clusters: 64, max_iters: 10, expand: 4, seed: 0xC2u64, variant: LempVariant::LI }
    }
}

/// Output of [`centroid_row_top_k`].
#[derive(Debug, Clone)]
pub struct CentroidOutput {
    /// Per-query approximate top-`k` (sorted by descending exact score).
    pub lists: Vec<Vec<ScoredItem>>,
    /// Clusters actually used (≤ requested; clamped to the query count).
    pub clusters_used: usize,
    /// Lloyd iterations the clustering ran.
    pub kmeans_iterations: usize,
    /// Candidates retrieved per centroid (`k · expand`, clamped).
    pub candidates_per_centroid: usize,
}

/// Approximate Row-Top-k via query clustering (\[17\] + LEMP).
///
/// See the module documentation for the algorithm. Returned lists contain
/// exact scores; only membership is approximate.
///
/// # Errors
/// [`ApproxError::InvalidParam`] on a zero `clusters`, `max_iters` or
/// `expand`.
///
/// # Panics
/// If query and probe dimensionalities differ.
pub fn centroid_row_top_k(
    queries: &VectorStore,
    probes: &VectorStore,
    k: usize,
    cfg: &CentroidConfig,
) -> Result<CentroidOutput, ApproxError> {
    if cfg.expand == 0 {
        return Err(ApproxError::InvalidParam { name: "expand", requirement: "must be positive" });
    }
    assert_eq!(
        queries.dim(),
        probes.dim(),
        "dimensionality mismatch: queries {} vs probes {}",
        queries.dim(),
        probes.dim()
    );
    if queries.is_empty() {
        return Ok(CentroidOutput {
            lists: Vec::new(),
            clusters_used: 0,
            kmeans_iterations: 0,
            candidates_per_centroid: 0,
        });
    }
    if probes.is_empty() || k == 0 {
        return Ok(CentroidOutput {
            lists: vec![Vec::new(); queries.len()],
            clusters_used: 0,
            kmeans_iterations: 0,
            candidates_per_centroid: 0,
        });
    }

    // Cluster *directions*: Row-Top-k is invariant to query length.
    let (_, directions) = queries.decompose();
    let km = kmeans(
        &directions,
        &KMeansConfig { k: cfg.clusters, max_iters: cfg.max_iters, seed: cfg.seed },
    )?;

    let cand_k = (k * cfg.expand).min(probes.len());
    let mut engine = Lemp::builder().variant(cfg.variant).build(probes);
    let centroid_out = engine.row_top_k(&km.centroids, cand_k);

    let mut lists = Vec::with_capacity(queries.len());
    let mut top = TopK::new(k);
    for (i, q) in queries.iter().enumerate() {
        let candidates = &centroid_out.lists[km.assignment[i] as usize];
        top.clear();
        for item in candidates {
            top.push(item.id, kernels::dot(q, probes.vector(item.id)));
        }
        lists.push(top.drain_sorted());
    }
    Ok(CentroidOutput {
        lists,
        clusters_used: km.centroids.len(),
        kmeans_iterations: km.iterations,
        candidates_per_centroid: cand_k,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemp_baselines::types::topk_equivalent;
    use lemp_baselines::Naive;
    use lemp_data::synthetic::GeneratorConfig;

    fn fixture(n: usize, seed: u64) -> VectorStore {
        GeneratorConfig::gaussian(n, 8, 0.8).generate(seed)
    }

    /// Queries drawn as tight bundles around `c` base directions — the
    /// regime \[17\] targets (users with shared taste).
    fn clustered_queries(c: usize, per: usize, dim: usize, seed: u64) -> VectorStore {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(c * per);
        for _ in 0..c {
            let base: Vec<f64> =
                (0..dim).map(|_| lemp_data::rng::standard_normal(&mut rng)).collect();
            for _ in 0..per {
                let row: Vec<f64> = base
                    .iter()
                    .map(|&b| b + 0.05 * lemp_data::rng::standard_normal(&mut rng))
                    .collect();
                rows.push(row);
            }
        }
        VectorStore::from_rows(&rows).unwrap()
    }

    #[test]
    fn kmeans_assignment_is_nearest_centroid() {
        let data = fixture(200, 1);
        let km = kmeans(&data, &KMeansConfig { k: 8, max_iters: 15, seed: 2 }).unwrap();
        assert_eq!(km.centroids.len(), 8);
        for i in 0..data.len() {
            let assigned =
                kernels::dist_sq(data.vector(i), km.centroids.vector(km.assignment[i] as usize));
            for c in 0..km.centroids.len() {
                let d = kernels::dist_sq(data.vector(i), km.centroids.vector(c));
                assert!(
                    assigned <= d + 1e-12,
                    "point {i}: assigned dist {assigned} > dist to centroid {c} = {d}"
                );
            }
        }
    }

    #[test]
    fn kmeans_objective_never_increases() {
        let data = fixture(300, 3);
        let km = kmeans(&data, &KMeansConfig { k: 10, max_iters: 25, seed: 4 }).unwrap();
        assert_eq!(km.reseeds, 0, "gaussian data should not need reseeding");
        for w in km.inertia_history.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "objective increased: {} -> {}", w[0], w[1]);
        }
        assert!(km.inertia <= km.inertia_history[0] + 1e-9);
    }

    #[test]
    fn kmeans_k_clamped_to_point_count() {
        let data = fixture(5, 5);
        let km = kmeans(&data, &KMeansConfig { k: 50, max_iters: 5, seed: 6 }).unwrap();
        assert_eq!(km.centroids.len(), 5);
        // every point is (a) centroid, inertia 0
        assert!(km.inertia < 1e-18);
    }

    #[test]
    fn kmeans_handles_duplicate_points() {
        let data = VectorStore::from_rows(&vec![vec![1.0, 2.0]; 20]).unwrap();
        let km = kmeans(&data, &KMeansConfig { k: 4, max_iters: 5, seed: 7 }).unwrap();
        assert!(km.inertia < 1e-18);
        assert!(km.assignment.iter().all(|&a| (a as usize) < km.centroids.len()));
    }

    #[test]
    fn kmeans_validates_config() {
        let data = fixture(10, 8);
        assert!(kmeans(&data, &KMeansConfig { k: 0, max_iters: 5, seed: 1 }).is_err());
        assert!(kmeans(&data, &KMeansConfig { k: 2, max_iters: 0, seed: 1 }).is_err());
        assert!(kmeans(&VectorStore::empty(8).unwrap(), &KMeansConfig::default()).is_err());
    }

    #[test]
    fn kmeans_deterministic_given_seed() {
        let data = fixture(100, 9);
        let a = kmeans(&data, &KMeansConfig { k: 6, max_iters: 10, seed: 11 }).unwrap();
        let b = kmeans(&data, &KMeansConfig { k: 6, max_iters: 10, seed: 11 }).unwrap();
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.centroids.as_flat(), b.centroids.as_flat());
    }

    #[test]
    fn one_cluster_per_query_is_exact() {
        let queries = fixture(30, 10);
        let probes = fixture(150, 11);
        let k = 5;
        let cfg = CentroidConfig {
            clusters: queries.len(),
            max_iters: 15,
            expand: 1,
            seed: 12,
            variant: LempVariant::LI,
        };
        let out = centroid_row_top_k(&queries, &probes, k, &cfg).unwrap();
        assert_eq!(out.clusters_used, queries.len());
        let (expect, _) = Naive.row_top_k(&queries, &probes, k);
        assert!(
            topk_equivalent(&out.lists, &expect, 1e-9),
            "one-cluster-per-query centroid retrieval must be exact"
        );
    }

    #[test]
    fn clustered_queries_reach_high_recall_with_few_clusters() {
        let queries = clustered_queries(6, 25, 8, 13);
        let probes = fixture(400, 14);
        let k = 10;
        let cfg = CentroidConfig {
            clusters: 6,
            max_iters: 20,
            expand: 4,
            seed: 15,
            variant: LempVariant::LI,
        };
        let out = centroid_row_top_k(&queries, &probes, k, &cfg).unwrap();
        let (truth, _) = Naive.row_top_k(&queries, &probes, k);
        let mut hit = 0usize;
        let mut total = 0usize;
        for (got, want) in out.lists.iter().zip(&truth) {
            let got_ids: Vec<usize> = got.iter().map(|s| s.id).collect();
            hit += want.iter().filter(|w| got_ids.contains(&w.id)).count();
            total += want.len();
        }
        let recall = hit as f64 / total as f64;
        assert!(recall > 0.9, "recall {recall} too low for tightly clustered queries");
    }

    #[test]
    fn scores_are_exact_and_sorted() {
        let queries = fixture(10, 16);
        let probes = fixture(80, 17);
        let out = centroid_row_top_k(&queries, &probes, 4, &CentroidConfig::default()).unwrap();
        for (i, list) in out.lists.iter().enumerate() {
            for w in list.windows(2) {
                assert!(w[0].score >= w[1].score, "list {i} not sorted");
            }
            for item in list {
                let exact = kernels::dot(queries.vector(i), probes.vector(item.id));
                assert!((item.score - exact).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn degenerate_inputs() {
        let queries = fixture(5, 18);
        let probes = fixture(20, 19);
        let empty_q = VectorStore::empty(8).unwrap();
        let out = centroid_row_top_k(&empty_q, &probes, 3, &CentroidConfig::default()).unwrap();
        assert!(out.lists.is_empty());

        let empty_p = VectorStore::empty(8).unwrap();
        let out = centroid_row_top_k(&queries, &empty_p, 3, &CentroidConfig::default()).unwrap();
        assert_eq!(out.lists.len(), 5);
        assert!(out.lists.iter().all(Vec::is_empty));

        let out = centroid_row_top_k(&queries, &probes, 0, &CentroidConfig::default()).unwrap();
        assert!(out.lists.iter().all(Vec::is_empty));

        let bad = CentroidConfig { expand: 0, ..Default::default() };
        assert!(centroid_row_top_k(&queries, &probes, 3, &bad).is_err());
    }

    #[test]
    fn expand_improves_recall() {
        let queries = clustered_queries(4, 20, 8, 20);
        let probes = fixture(300, 21);
        let k = 8;
        let (truth, _) = Naive.row_top_k(&queries, &probes, k);
        let recall_at = |expand: usize| {
            let cfg = CentroidConfig { clusters: 4, expand, seed: 22, ..Default::default() };
            let out = centroid_row_top_k(&queries, &probes, k, &cfg).unwrap();
            let mut hit = 0;
            let mut total = 0;
            for (got, want) in out.lists.iter().zip(&truth) {
                let ids: Vec<usize> = got.iter().map(|s| s.id).collect();
                hit += want.iter().filter(|w| ids.contains(&w.id)).count();
                total += want.len();
            }
            hit as f64 / total as f64
        };
        let r1 = recall_at(1);
        let r8 = recall_at(8);
        assert!(r8 >= r1 - 1e-12, "recall should not drop with larger expand: {r1} vs {r8}");
    }
}
