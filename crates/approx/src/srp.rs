//! Sign-random-projection LSH over a MIPS transform.
//!
//! This is the classic random-hyperplane sketch of Charikar applied to the
//! large-entry retrieval problem the way the paper's related work \[15, 16\]
//! does: first reduce MIPS to angular similarity with an asymmetric
//! transform (see [`crate::transform`]), then index the transformed probe
//! vectors with `b`-bit sign signatures. Two query strategies are provided:
//!
//! * **Hamming ranking** ([`SrpLsh::query_top_k`]) — scan all probe
//!   signatures (cheap XOR + popcount over packed words), keep the `budget`
//!   probes with the smallest Hamming distance, verify those exactly
//!   against the *original* probe vectors, and return the top-`k`. Recall
//!   is tuned by `budget` and the signature width.
//! * **Banded tables** ([`SrpTables`]) — the OR-of-ANDs amplification:
//!   signatures are split into `t` bands of `r` bits; probes colliding with
//!   the query on *any* full band become candidates. Classic LSH bucketing
//!   with tunable collision probability `1 − (1 − pʳ)ᵗ`.
//!
//! Both are **approximate**: they can miss true results (bounded
//! empirically in tests and benches) but never report a false positive,
//! because every candidate is re-scored with an exact inner product.

use lemp_linalg::{kernels, ScoredItem, TopK, VectorStore};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::ApproxError;
use crate::transform::{MipsTransform, XboxTransform};

/// Configuration of the SRP signature family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SrpConfig {
    /// Signature width in bits (packed into `⌈bits/64⌉` words per probe).
    pub bits: usize,
    /// Seed for the random hyperplanes (derandomized experiments).
    pub seed: u64,
}

impl Default for SrpConfig {
    fn default() -> Self {
        Self { bits: 128, seed: 0x5e_ed }
    }
}

/// Packed sign signatures of a vector set under shared random hyperplanes.
#[derive(Debug, Clone)]
struct SignatureSet {
    /// Hyperplane directions, one per bit, in transformed space.
    planes: VectorStore,
    /// `len × words` packed signature matrix.
    sigs: Vec<u64>,
    words: usize,
    bits: usize,
}

impl SignatureSet {
    fn build(points: &VectorStore, bits: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = points.dim();
        let mut flat = Vec::with_capacity(bits * dim);
        for _ in 0..bits * dim {
            flat.push(lemp_data::rng::standard_normal(&mut rng));
        }
        let planes = VectorStore::from_flat(flat, dim).expect("gaussian values are finite");
        let words = bits.div_ceil(64);
        let mut sigs = vec![0u64; points.len() * words];
        let mut buf = vec![0u64; words];
        for (i, p) in points.iter().enumerate() {
            Self::sign_bits(&planes, p, &mut buf);
            sigs[i * words..(i + 1) * words].copy_from_slice(&buf);
        }
        Self { planes, sigs, words, bits }
    }

    /// Writes the packed sign signature of `v` into `out`.
    fn sign_bits(planes: &VectorStore, v: &[f64], out: &mut [u64]) {
        out.fill(0);
        for (bit, h) in planes.iter().enumerate() {
            if kernels::dot(h, v) >= 0.0 {
                out[bit / 64] |= 1 << (bit % 64);
            }
        }
    }

    #[inline]
    fn signature(&self, i: usize) -> &[u64] {
        &self.sigs[i * self.words..(i + 1) * self.words]
    }

    #[inline]
    fn hamming(a: &[u64], b: &[u64]) -> u32 {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(x, y)| (x ^ y).count_ones()).sum()
    }
}

/// Approximate Row-Top-k via XBOX transform + SRP signatures + Hamming
/// ranking, with exact re-scoring of the candidate set.
#[derive(Debug, Clone)]
pub struct SrpLsh {
    transform: XboxTransform,
    signatures: SignatureSet,
    /// Original (untransformed) probes for exact verification.
    probes: VectorStore,
}

impl SrpLsh {
    /// Builds the index over the probe set.
    ///
    /// # Errors
    /// [`ApproxError::InvalidParam`] if `bits == 0`;
    /// [`ApproxError::EmptyInput`] if `probes` is empty.
    pub fn build(probes: &VectorStore, cfg: &SrpConfig) -> Result<Self, ApproxError> {
        if cfg.bits == 0 {
            return Err(ApproxError::InvalidParam {
                name: "bits",
                requirement: "must be positive",
            });
        }
        let transform = XboxTransform::fit(probes)?;
        let transformed = transform.transform_probes(probes);
        let signatures = SignatureSet::build(&transformed, cfg.bits, cfg.seed);
        Ok(Self { transform, signatures, probes: probes.clone() })
    }

    /// Signature width in bits.
    pub fn bits(&self) -> usize {
        self.signatures.bits
    }

    /// Number of indexed probes.
    pub fn len(&self) -> usize {
        self.probes.len()
    }

    /// `true` if no probes are indexed (unreachable via [`Self::build`]).
    pub fn is_empty(&self) -> bool {
        self.probes.is_empty()
    }

    /// Approximate top-`k` probes by inner product with `q`.
    ///
    /// `budget` is the number of Hamming-nearest candidates verified
    /// exactly (clamped to at least `k`); larger budgets trade time for
    /// recall. Results are sorted by descending inner product, ties by
    /// ascending probe id.
    ///
    /// # Panics
    /// If `q.len()` differs from the probe dimensionality.
    pub fn query_top_k(&self, q: &[f64], k: usize, budget: usize) -> Vec<ScoredItem> {
        assert_eq!(
            q.len(),
            self.probes.dim(),
            "dimensionality mismatch: query {} vs probes {}",
            q.len(),
            self.probes.dim()
        );
        if k == 0 || self.probes.is_empty() {
            return Vec::new();
        }
        let budget = budget.max(k).min(self.probes.len());

        let mut tq = Vec::with_capacity(self.transform.output_dim(q.len()));
        self.transform.transform_query(q, &mut tq);
        let mut qsig = vec![0u64; self.signatures.words];
        SignatureSet::sign_bits(&self.signatures.planes, &tq, &mut qsig);

        // Keep the `budget` smallest Hamming distances: a bounded top-k
        // selector over the negated distance.
        let mut nearest = TopK::new(budget);
        for j in 0..self.probes.len() {
            let d = SignatureSet::hamming(&qsig, self.signatures.signature(j));
            nearest.push(j, -(d as f64));
        }

        let mut top = TopK::new(k);
        for cand in nearest.drain_sorted() {
            let value = kernels::dot(q, self.probes.vector(cand.id));
            top.push(cand.id, value);
        }
        top.drain_sorted()
    }

    /// [`Self::query_top_k`] for every row of `queries`.
    ///
    /// # Panics
    /// If the dimensionalities differ.
    pub fn row_top_k(
        &self,
        queries: &VectorStore,
        k: usize,
        budget: usize,
    ) -> Vec<Vec<ScoredItem>> {
        queries.iter().map(|q| self.query_top_k(q, k, budget)).collect()
    }
}

/// Configuration of the banded (OR-of-ANDs) SRP tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SrpTablesConfig {
    /// Number of hash tables (bands) `t`.
    pub tables: usize,
    /// Bits per band `r` (at most 32 so band keys fit comfortably in
    /// `u64` table keys with headroom).
    pub band_bits: usize,
    /// Seed for the hyperplanes.
    pub seed: u64,
}

impl Default for SrpTablesConfig {
    /// Defaults sized for the *moderate* angular gaps of MIPS workloads:
    /// after the XBOX transform even the best probe's cosine is typically
    /// 0.3–0.6 (bit-agreement probability `p = 1 − ϑ/π ≈ 0.6–0.7`), so
    /// bands must be short and tables plentiful — `1 − (1 − p⁷)⁶⁴ ≈ 0.84–
    /// 0.996` over this range, while an unrelated pair (`p ≈ 0.5`)
    /// collides with probability ≈ 0.39. Workloads with crisper
    /// similarities can lengthen the bands.
    fn default() -> Self {
        Self { tables: 64, band_bits: 7, seed: 0x5e_ed }
    }
}

/// Banded SRP hash tables: a probe is a candidate for a query iff they
/// collide on all `band_bits` bits of at least one band.
///
/// The collision probability of a pair at angle `ϑ` is
/// `1 − (1 − (1 − ϑ/π)^band_bits)^tables`, the standard LSH S-curve; more
/// tables raise recall, more band bits sharpen precision. All candidates
/// are verified exactly, so reported scores are never wrong — only the
/// candidate set is approximate.
#[derive(Debug, Clone)]
pub struct SrpTables {
    transform: XboxTransform,
    signatures: SignatureSet,
    /// Per table: probe ids sorted by band key (CSR-style binary-searchable
    /// layout; tables are immutable after build, so sorted runs beat hash
    /// maps on both memory and locality).
    tables: Vec<TableLayout>,
    probes: VectorStore,
    band_bits: usize,
}

#[derive(Debug, Clone)]
struct TableLayout {
    /// `(band key, probe id)` sorted by key.
    entries: Vec<(u64, u32)>,
}

impl TableLayout {
    fn bucket(&self, key: u64) -> &[(u64, u32)] {
        let lo = self.entries.partition_point(|&(k, _)| k < key);
        let hi = self.entries.partition_point(|&(k, _)| k <= key);
        &self.entries[lo..hi]
    }
}

impl SrpTables {
    /// Builds the banded tables over the probe set.
    ///
    /// # Errors
    /// [`ApproxError::InvalidParam`] if `tables == 0` or
    /// `band_bits ∉ 1..=32`; [`ApproxError::EmptyInput`] if `probes` is
    /// empty.
    pub fn build(probes: &VectorStore, cfg: &SrpTablesConfig) -> Result<Self, ApproxError> {
        if cfg.tables == 0 {
            return Err(ApproxError::InvalidParam {
                name: "tables",
                requirement: "must be positive",
            });
        }
        if cfg.band_bits == 0 || cfg.band_bits > 32 {
            return Err(ApproxError::InvalidParam {
                name: "band_bits",
                requirement: "must lie in 1..=32",
            });
        }
        let transform = XboxTransform::fit(probes)?;
        let transformed = transform.transform_probes(probes);
        let total_bits = cfg.tables * cfg.band_bits;
        let signatures = SignatureSet::build(&transformed, total_bits, cfg.seed);

        let mut tables = Vec::with_capacity(cfg.tables);
        for t in 0..cfg.tables {
            let mut entries: Vec<(u64, u32)> = (0..probes.len())
                .map(|j| {
                    let key = band_key(signatures.signature(j), t, cfg.band_bits);
                    (key, j as u32)
                })
                .collect();
            entries.sort_unstable();
            tables.push(TableLayout { entries });
        }
        Ok(Self { transform, signatures, tables, probes: probes.clone(), band_bits: cfg.band_bits })
    }

    /// Number of tables (bands).
    pub fn tables(&self) -> usize {
        self.tables.len()
    }

    /// Approximate top-`k` by inner product: candidates are the union of
    /// the query's buckets across all tables, deduplicated and verified
    /// exactly. Returns fewer than `k` items when fewer probes collide.
    ///
    /// # Panics
    /// If `q.len()` differs from the probe dimensionality.
    pub fn query_top_k(&self, q: &[f64], k: usize) -> Vec<ScoredItem> {
        assert_eq!(
            q.len(),
            self.probes.dim(),
            "dimensionality mismatch: query {} vs probes {}",
            q.len(),
            self.probes.dim()
        );
        if k == 0 || self.probes.is_empty() {
            return Vec::new();
        }
        let mut tq = Vec::with_capacity(self.transform.output_dim(q.len()));
        self.transform.transform_query(q, &mut tq);
        let mut qsig = vec![0u64; self.signatures.words];
        SignatureSet::sign_bits(&self.signatures.planes, &tq, &mut qsig);

        let mut seen = vec![false; self.probes.len()];
        let mut top = TopK::new(k);
        for (t, table) in self.tables.iter().enumerate() {
            let key = band_key(&qsig, t, self.band_bits);
            for &(_, j) in table.bucket(key) {
                let j = j as usize;
                if !seen[j] {
                    seen[j] = true;
                    top.push(j, kernels::dot(q, self.probes.vector(j)));
                }
            }
        }
        top.drain_sorted()
    }

    /// Average number of verified candidates per query over a query set
    /// (the `|C|/q` statistic of the paper's tables).
    pub fn mean_candidates(&self, queries: &VectorStore) -> f64 {
        if queries.is_empty() {
            return 0.0;
        }
        let mut total = 0usize;
        let mut tq = Vec::new();
        let mut qsig = vec![0u64; self.signatures.words];
        let mut seen = vec![false; self.probes.len()];
        for q in queries.iter() {
            self.transform.transform_query(q, &mut tq);
            SignatureSet::sign_bits(&self.signatures.planes, &tq, &mut qsig);
            seen.fill(false);
            for (t, table) in self.tables.iter().enumerate() {
                let key = band_key(&qsig, t, self.band_bits);
                for &(_, j) in table.bucket(key) {
                    if !seen[j as usize] {
                        seen[j as usize] = true;
                        total += 1;
                    }
                }
            }
        }
        total as f64 / queries.len() as f64
    }
}

/// Extracts band `t`'s `band_bits`-bit key from a packed signature.
fn band_key(sig: &[u64], t: usize, band_bits: usize) -> u64 {
    let start = t * band_bits;
    let mut key = 0u64;
    for b in 0..band_bits {
        let bit = start + b;
        if sig[bit / 64] >> (bit % 64) & 1 == 1 {
            key |= 1 << b;
        }
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemp_data::synthetic::GeneratorConfig;

    fn fixture(n: usize, seed: u64) -> VectorStore {
        GeneratorConfig::gaussian(n, 12, 0.8).generate(seed)
    }

    fn exact_top_k(q: &[f64], probes: &VectorStore, k: usize) -> Vec<usize> {
        let mut top = TopK::new(k);
        for j in 0..probes.len() {
            top.push(j, kernels::dot(q, probes.vector(j)));
        }
        top.drain_sorted().into_iter().map(|s| s.id).collect()
    }

    #[test]
    fn full_budget_is_exact() {
        let probes = fixture(120, 1);
        let queries = fixture(15, 2);
        let index = SrpLsh::build(&probes, &SrpConfig::default()).unwrap();
        for i in 0..queries.len() {
            let q = queries.vector(i);
            let got = index.query_top_k(q, 5, probes.len());
            let expect = exact_top_k(q, &probes, 5);
            let got_ids: Vec<usize> = got.iter().map(|s| s.id).collect();
            assert_eq!(got_ids, expect, "query {i}: full budget must be exact");
        }
    }

    #[test]
    fn scores_are_exact_inner_products() {
        let probes = fixture(60, 3);
        let queries = fixture(4, 4);
        let index = SrpLsh::build(&probes, &SrpConfig::default()).unwrap();
        for i in 0..queries.len() {
            let q = queries.vector(i);
            for item in index.query_top_k(q, 3, 20) {
                let exact = kernels::dot(q, probes.vector(item.id));
                assert!((item.score - exact).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn recall_improves_with_budget() {
        let probes = fixture(400, 5);
        let queries = fixture(40, 6);
        let index = SrpLsh::build(&probes, &SrpConfig { bits: 96, seed: 7 }).unwrap();
        let k = 10;
        let mut recalls = Vec::new();
        for budget in [k, 4 * k, 40 * k] {
            let mut hit = 0usize;
            let mut total = 0usize;
            for i in 0..queries.len() {
                let q = queries.vector(i);
                let truth = exact_top_k(q, &probes, k);
                let got: Vec<usize> =
                    index.query_top_k(q, k, budget).into_iter().map(|s| s.id).collect();
                hit += truth.iter().filter(|t| got.contains(t)).count();
                total += truth.len();
            }
            recalls.push(hit as f64 / total as f64);
        }
        assert!(
            recalls[0] <= recalls[1] + 0.02 && recalls[1] <= recalls[2] + 0.02,
            "recall not monotone in budget: {recalls:?}"
        );
        assert!(recalls[2] > 0.9, "recall at 40k budget too low: {}", recalls[2]);
    }

    #[test]
    fn zero_k_and_budget_clamping() {
        let probes = fixture(30, 8);
        let index = SrpLsh::build(&probes, &SrpConfig::default()).unwrap();
        let q = probes.vector(0).to_vec();
        assert!(index.query_top_k(&q, 0, 100).is_empty());
        // budget below k is clamped up to k
        let got = index.query_top_k(&q, 5, 1);
        assert_eq!(got.len(), 5);
        assert_eq!(index.len(), 30);
        assert!(!index.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let probes = fixture(50, 9);
        let q = fixture(1, 10);
        let a = SrpLsh::build(&probes, &SrpConfig { bits: 64, seed: 42 }).unwrap();
        let b = SrpLsh::build(&probes, &SrpConfig { bits: 64, seed: 42 }).unwrap();
        let ra = a.query_top_k(q.vector(0), 5, 10);
        let rb = b.query_top_k(q.vector(0), 5, 10);
        assert_eq!(ra.len(), rb.len());
        for (x, y) in ra.iter().zip(&rb) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.score, y.score);
        }
    }

    #[test]
    fn build_validates_config() {
        let probes = fixture(10, 11);
        assert!(SrpLsh::build(&probes, &SrpConfig { bits: 0, seed: 1 }).is_err());
        assert!(SrpLsh::build(&VectorStore::empty(12).unwrap(), &SrpConfig::default()).is_err());
    }

    #[test]
    fn band_key_extracts_contiguous_bits() {
        // signature words: bits 0..64 in sig[0], 64..128 in sig[1]
        let sig = [0b1011u64, u64::MAX];
        assert_eq!(band_key(&sig, 0, 4), 0b1011);
        assert_eq!(band_key(&sig, 1, 4), 0);
        // band straddling the word boundary: bits 60..72
        assert_eq!(band_key(&sig, 5, 12), 0b1111_1111_0000);
    }

    #[test]
    fn tables_candidates_are_verified_exactly() {
        let probes = fixture(200, 12);
        let queries = fixture(10, 13);
        let cfg = SrpTablesConfig { tables: 24, band_bits: 8, seed: 3 };
        let index = SrpTables::build(&probes, &cfg).unwrap();
        assert_eq!(index.tables(), 24);
        for i in 0..queries.len() {
            let q = queries.vector(i);
            for item in index.query_top_k(q, 5) {
                let exact = kernels::dot(q, probes.vector(item.id));
                assert!((item.score - exact).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn tables_recall_reasonable_at_default_config() {
        let probes = fixture(300, 14);
        let queries = fixture(30, 15);
        let index = SrpTables::build(&probes, &SrpTablesConfig::default()).unwrap();
        let k = 1;
        let mut hit = 0usize;
        for i in 0..queries.len() {
            let q = queries.vector(i);
            let truth = exact_top_k(q, &probes, k);
            let got: Vec<usize> = index.query_top_k(q, k).into_iter().map(|s| s.id).collect();
            hit += truth.iter().filter(|t| got.contains(t)).count();
        }
        let recall = hit as f64 / queries.len() as f64;
        assert!(recall >= 0.6, "top-1 recall {recall} too low for default tables");
        // candidate set must be well below the full probe count
        let cpq = index.mean_candidates(&queries);
        assert!(cpq < probes.len() as f64 * 0.75, "tables degenerate to a scan: {cpq}");
    }

    #[test]
    fn tables_validate_config() {
        let probes = fixture(10, 16);
        assert!(SrpTables::build(&probes, &SrpTablesConfig { tables: 0, ..Default::default() })
            .is_err());
        assert!(SrpTables::build(&probes, &SrpTablesConfig { band_bits: 0, ..Default::default() })
            .is_err());
        assert!(SrpTables::build(
            &probes,
            &SrpTablesConfig { band_bits: 33, ..Default::default() }
        )
        .is_err());
    }

    #[test]
    fn tables_may_return_short_lists() {
        // One table with many band bits: buckets are tiny, some queries
        // find fewer than k collisions — the method reports what it has.
        let probes = fixture(40, 17);
        let queries = fixture(10, 18);
        let cfg = SrpTablesConfig { tables: 1, band_bits: 24, seed: 4 };
        let index = SrpTables::build(&probes, &cfg).unwrap();
        for i in 0..queries.len() {
            let got = index.query_top_k(queries.vector(i), 10);
            assert!(got.len() <= 10);
        }
    }
}
