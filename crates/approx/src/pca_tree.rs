//! PCA-tree retrieval over the XBOX MIPS transform.
//!
//! Reference \[16\] of the paper (Bachrach et al., RecSys 2014) speeds up
//! the Xbox recommender by reducing MIPS to Euclidean search (see
//! [`crate::transform::XboxTransform`]) and then searching a *PCA tree*: a
//! binary space partition that recursively splits the point set at the
//! median of its principal component. This module reproduces that design:
//!
//! * principal directions are found with seeded power iteration on the
//!   (implicitly centered) covariance — no eigen library needed;
//! * leaves hold contiguous id ranges of a permutation array, so a leaf
//!   visit is a cache-friendly sequential scan;
//! * queries descend to their home leaf and then *backtrack* through the
//!   most promising unexplored subtrees (smallest projection margin first)
//!   until a leaf budget is exhausted.
//!
//! With a budget of all leaves the search degenerates to an exact scan —
//! the test suite exploits this to validate the traversal. Every candidate
//! is verified against the original probe vectors, so scores are exact and
//! only *recall* is approximate.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use lemp_linalg::{kernels, ScoredItem, TopK, VectorStore};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::ApproxError;
use crate::transform::{MipsTransform, XboxTransform};

/// Construction parameters of a [`PcaTree`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcaTreeConfig {
    /// Maximum number of points per leaf.
    pub leaf_size: usize,
    /// Power-iteration rounds per split (20 is ample for a split axis —
    /// the split only needs the *rough* principal direction).
    pub power_iters: usize,
    /// Seed for the power-iteration start vectors.
    pub seed: u64,
}

impl Default for PcaTreeConfig {
    fn default() -> Self {
        Self { leaf_size: 32, power_iters: 20, seed: 0x9CA }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Internal {
        /// Split axis (unit vector in transformed space).
        axis: Box<[f64]>,
        /// Split threshold on the raw projection `xᵀaxis`.
        split: f64,
        left: u32,
        right: u32,
    },
    Leaf {
        /// Range `perm[start..end]` of probe ids in this leaf.
        start: u32,
        end: u32,
    },
}

/// A PCA tree over a probe set, answering approximate Row-Top-k queries by
/// inner product.
#[derive(Debug, Clone)]
pub struct PcaTree {
    transform: XboxTransform,
    nodes: Vec<Node>,
    perm: Vec<u32>,
    /// Original probes, for exact candidate verification.
    probes: VectorStore,
    leaves: usize,
}

impl PcaTree {
    /// Builds the tree over the probe set.
    ///
    /// # Errors
    /// [`ApproxError::InvalidParam`] if `leaf_size == 0` or
    /// `power_iters == 0`; [`ApproxError::EmptyInput`] if `probes` is
    /// empty.
    pub fn build(probes: &VectorStore, cfg: &PcaTreeConfig) -> Result<Self, ApproxError> {
        if cfg.leaf_size == 0 {
            return Err(ApproxError::InvalidParam {
                name: "leaf_size",
                requirement: "must be positive",
            });
        }
        if cfg.power_iters == 0 {
            return Err(ApproxError::InvalidParam {
                name: "power_iters",
                requirement: "must be positive",
            });
        }
        let transform = XboxTransform::fit(probes)?;
        let points = transform.transform_probes(probes);
        let mut perm: Vec<u32> = (0..probes.len() as u32).collect();
        let mut nodes = Vec::new();
        let mut leaves = 0usize;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut builder =
            Builder { points: &points, cfg, nodes: &mut nodes, leaves: &mut leaves, rng: &mut rng };
        let n = perm.len();
        builder.split(&mut perm, 0, n);
        Ok(Self { transform, nodes, perm, probes: probes.clone(), leaves })
    }

    /// Number of leaves (the unit of the search budget).
    pub fn leaves(&self) -> usize {
        self.leaves
    }

    /// Number of indexed probes.
    pub fn len(&self) -> usize {
        self.probes.len()
    }

    /// `true` if no probes are indexed (unreachable via [`Self::build`]).
    pub fn is_empty(&self) -> bool {
        self.probes.is_empty()
    }

    /// Approximate top-`k` probes by inner product with `q`, visiting at
    /// most `leaf_budget` leaves (clamped to at least 1). With
    /// `leaf_budget ≥ self.leaves()` the result is exact.
    ///
    /// # Panics
    /// If `q.len()` differs from the probe dimensionality.
    pub fn query_top_k(&self, q: &[f64], k: usize, leaf_budget: usize) -> Vec<ScoredItem> {
        assert_eq!(
            q.len(),
            self.probes.dim(),
            "dimensionality mismatch: query {} vs probes {}",
            q.len(),
            self.probes.dim()
        );
        if k == 0 || self.probes.is_empty() {
            return Vec::new();
        }
        let mut tq = Vec::with_capacity(self.transform.output_dim(q.len()));
        self.transform.transform_query(q, &mut tq);

        let mut top = TopK::new(k);
        let mut visited = 0usize;
        let budget = leaf_budget.max(1);
        // Best-first backtracking: frontier of (margin, node id), smallest
        // projection margin first. The root enters with margin 0.
        let mut frontier: BinaryHeap<Reverse<(Margin, u32)>> = BinaryHeap::new();
        frontier.push(Reverse((Margin(0.0), 0)));
        while let Some(Reverse((_, mut node))) = frontier.pop() {
            if visited >= budget {
                break;
            }
            // Descend to the near leaf, deferring far children.
            loop {
                match &self.nodes[node as usize] {
                    Node::Internal { axis, split, left, right } => {
                        let proj = kernels::dot(&tq, axis);
                        let margin = Margin((proj - split).abs());
                        let (near, far) =
                            if proj < *split { (*left, *right) } else { (*right, *left) };
                        frontier.push(Reverse((margin, far)));
                        node = near;
                    }
                    Node::Leaf { start, end } => {
                        for &id in &self.perm[*start as usize..*end as usize] {
                            let value = kernels::dot(q, self.probes.vector(id as usize));
                            top.push(id as usize, value);
                        }
                        visited += 1;
                        break;
                    }
                }
            }
        }
        top.drain_sorted()
    }

    /// [`Self::query_top_k`] for every row of `queries`.
    ///
    /// # Panics
    /// If the dimensionalities differ.
    pub fn row_top_k(
        &self,
        queries: &VectorStore,
        k: usize,
        leaf_budget: usize,
    ) -> Vec<Vec<ScoredItem>> {
        queries.iter().map(|q| self.query_top_k(q, k, leaf_budget)).collect()
    }
}

/// Total-ordered wrapper for margin priorities (finite by construction).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Margin(f64);

impl Eq for Margin {}

impl PartialOrd for Margin {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Margin {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

struct Builder<'a> {
    points: &'a VectorStore,
    cfg: &'a PcaTreeConfig,
    nodes: &'a mut Vec<Node>,
    leaves: &'a mut usize,
    rng: &'a mut StdRng,
}

impl Builder<'_> {
    /// Builds the subtree over `perm[start..end]`, returning its node id.
    fn split(&mut self, perm: &mut [u32], start: usize, end: usize) -> u32 {
        let id = self.nodes.len() as u32;
        let len = end - start;
        if len <= self.cfg.leaf_size {
            return self.leaf(start, end);
        }
        let Some(axis) = self.principal_axis(&perm[start..end]) else {
            // Degenerate range (all points identical): no split axis exists.
            return self.leaf(start, end);
        };

        // Sort the range by projection and split at the median.
        let mut scored: Vec<(f64, u32)> = perm[start..end]
            .iter()
            .map(|&p| (kernels::dot(self.points.vector(p as usize), &axis), p))
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mid = len / 2;
        if scored[mid - 1].0 == scored[scored.len() - 1].0 && scored[0].0 == scored[mid].0 {
            // All projections equal: splitting would strand one side empty.
            return self.leaf(start, end);
        }
        let split = 0.5 * (scored[mid - 1].0 + scored[mid].0);
        // `split` may coincide with one side under ties; the partition by
        // *rank* (not by value) keeps both children non-empty regardless.
        for (slot, (_, p)) in perm[start..end].iter_mut().zip(&scored) {
            *slot = *p;
        }

        self.nodes.push(Node::Internal { axis: axis.into_boxed_slice(), split, left: 0, right: 0 });
        let left = self.split(perm, start, start + mid);
        let right = self.split(perm, start + mid, end);
        match &mut self.nodes[id as usize] {
            Node::Internal { left: l, right: r, .. } => {
                *l = left;
                *r = right;
            }
            Node::Leaf { .. } => unreachable!("node {id} was pushed as Internal"),
        }
        id
    }

    fn leaf(&mut self, start: usize, end: usize) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(Node::Leaf { start: start as u32, end: end as u32 });
        *self.leaves += 1;
        id
    }

    /// Leading principal direction of the centered points via power
    /// iteration; `None` when the points carry no variance.
    fn principal_axis(&mut self, ids: &[u32]) -> Option<Vec<f64>> {
        let dim = self.points.dim();
        let inv_n = 1.0 / ids.len() as f64;
        let mut mean = vec![0.0; dim];
        for &p in ids {
            kernels::axpy(inv_n, self.points.vector(p as usize), &mut mean);
        }

        let mut v: Vec<f64> = (0..dim).map(|_| lemp_data::rng::standard_normal(self.rng)).collect();
        if kernels::normalize(&mut v) == 0.0 {
            v[0] = 1.0; // astronomically unlikely, but keep the start valid
        }
        let mut next = vec![0.0; dim];
        let mut centered = vec![0.0; dim];
        for _ in 0..self.cfg.power_iters {
            next.fill(0.0);
            // next = Σ ((x−μ)ᵀv)(x−μ), the covariance matvec without
            // materializing the matrix.
            for &p in ids {
                centered.copy_from_slice(self.points.vector(p as usize));
                kernels::axpy(-1.0, &mean, &mut centered);
                let w = kernels::dot(&centered, &v);
                kernels::axpy(w, &centered, &mut next);
            }
            if kernels::normalize(&mut next) == 0.0 {
                return None; // zero covariance: all points identical
            }
            std::mem::swap(&mut v, &mut next);
        }
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lemp_data::synthetic::GeneratorConfig;

    fn fixture(n: usize, seed: u64) -> VectorStore {
        GeneratorConfig::gaussian(n, 10, 0.8).generate(seed)
    }

    fn exact_top_k(q: &[f64], probes: &VectorStore, k: usize) -> Vec<usize> {
        let mut top = TopK::new(k);
        for j in 0..probes.len() {
            top.push(j, kernels::dot(q, probes.vector(j)));
        }
        top.drain_sorted().into_iter().map(|s| s.id).collect()
    }

    #[test]
    fn full_budget_is_exact() {
        let probes = fixture(250, 1);
        let queries = fixture(20, 2);
        let tree = PcaTree::build(&probes, &PcaTreeConfig::default()).unwrap();
        assert!(tree.leaves() >= 8);
        for i in 0..queries.len() {
            let q = queries.vector(i);
            let got: Vec<usize> =
                tree.query_top_k(q, 7, tree.leaves()).into_iter().map(|s| s.id).collect();
            assert_eq!(got, exact_top_k(q, &probes, 7), "query {i}");
        }
    }

    #[test]
    fn leaves_partition_the_probe_set() {
        let probes = fixture(333, 3);
        let tree = PcaTree::build(&probes, &PcaTreeConfig { leaf_size: 16, ..Default::default() })
            .unwrap();
        let mut seen = vec![false; probes.len()];
        let mut leaf_count = 0;
        for node in &tree.nodes {
            if let Node::Leaf { start, end } = node {
                leaf_count += 1;
                assert!(end > start, "empty leaf");
                assert!(*end as usize - *start as usize <= 16 * 2, "oversized leaf");
                for &id in &tree.perm[*start as usize..*end as usize] {
                    assert!(!seen[id as usize], "probe {id} in two leaves");
                    seen[id as usize] = true;
                }
            }
        }
        assert_eq!(leaf_count, tree.leaves());
        assert!(seen.iter().all(|&s| s), "some probe missing from all leaves");
    }

    #[test]
    fn single_leaf_budget_finds_good_answers() {
        let probes = fixture(500, 4);
        let queries = fixture(50, 5);
        let tree = PcaTree::build(&probes, &PcaTreeConfig::default()).unwrap();
        let k = 1;
        let mut hit = 0usize;
        for i in 0..queries.len() {
            let q = queries.vector(i);
            let truth = exact_top_k(q, &probes, k);
            let got: Vec<usize> = tree.query_top_k(q, k, 4).into_iter().map(|s| s.id).collect();
            hit += truth.iter().filter(|t| got.contains(t)).count();
        }
        // 4 of ~16 leaves: well above chance (4/16) because backtracking
        // follows the projection margins.
        assert!(hit as f64 / queries.len() as f64 > 0.55, "hit rate {hit}/{}", queries.len());
    }

    #[test]
    fn recall_is_monotone_in_budget_on_average() {
        let probes = fixture(400, 6);
        let queries = fixture(30, 7);
        let tree = PcaTree::build(&probes, &PcaTreeConfig::default()).unwrap();
        let k = 5;
        let recall = |budget: usize| {
            let mut hit = 0;
            let mut total = 0;
            for i in 0..queries.len() {
                let q = queries.vector(i);
                let truth = exact_top_k(q, &probes, k);
                let got: Vec<usize> =
                    tree.query_top_k(q, k, budget).into_iter().map(|s| s.id).collect();
                hit += truth.iter().filter(|t| got.contains(t)).count();
                total += truth.len();
            }
            hit as f64 / total as f64
        };
        let r1 = recall(1);
        let r4 = recall(4);
        let rall = recall(tree.leaves());
        assert!(r1 <= r4 + 0.05 && r4 <= rall + 1e-12, "{r1} {r4} {rall}");
        assert_eq!(rall, 1.0);
    }

    #[test]
    fn duplicate_points_build_and_answer() {
        let row = vec![1.0, 2.0, 3.0];
        let probes = VectorStore::from_rows(&vec![row.clone(); 100]).unwrap();
        let tree =
            PcaTree::build(&probes, &PcaTreeConfig { leaf_size: 8, ..Default::default() }).unwrap();
        // no split axis exists, everything collapses into one leaf
        assert_eq!(tree.leaves(), 1);
        let got = tree.query_top_k(&[1.0, 0.0, 0.0], 3, 1);
        assert_eq!(got.len(), 3);
        for item in got {
            assert!((item.score - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn config_validation() {
        let probes = fixture(10, 8);
        assert!(
            PcaTree::build(&probes, &PcaTreeConfig { leaf_size: 0, ..Default::default() }).is_err()
        );
        assert!(PcaTree::build(&probes, &PcaTreeConfig { power_iters: 0, ..Default::default() })
            .is_err());
        assert!(
            PcaTree::build(&VectorStore::empty(10).unwrap(), &PcaTreeConfig::default()).is_err()
        );
    }

    #[test]
    fn zero_k_returns_empty() {
        let probes = fixture(20, 9);
        let tree = PcaTree::build(&probes, &PcaTreeConfig::default()).unwrap();
        assert!(tree.query_top_k(probes.vector(0), 0, 10).is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let probes = fixture(120, 10);
        let q = fixture(1, 11);
        let a = PcaTree::build(&probes, &PcaTreeConfig { seed: 5, ..Default::default() }).unwrap();
        let b = PcaTree::build(&probes, &PcaTreeConfig { seed: 5, ..Default::default() }).unwrap();
        let ra = a.query_top_k(q.vector(0), 5, 2);
        let rb = b.query_top_k(q.vector(0), 5, 2);
        assert_eq!(ra.len(), rb.len());
        for (x, y) in ra.iter().zip(&rb) {
            assert_eq!((x.id, x.score), (y.id, y.score));
        }
    }
}
