//! `lemp-cli` — run LEMP and its baselines on factor matrices from files.
//!
//! Subcommands (see [`USAGE`] for the full syntax):
//!
//! * `above` / `topk` — exact retrieval (Above-θ / Row-Top-k) with any
//!   LEMP variant, optional multi-threading and chunked execution;
//! * `approx-topk` — the approximate methods of `lemp-approx` (SRP-LSH,
//!   PCA-tree, query centroids) with optional recall verification;
//! * `generate` — write Table-1-calibrated synthetic factor matrices;
//! * `convert` — translate between the binary, CSV and Matrix Market
//!   formats;
//! * `stats` — length statistics and a bucketization preview of a matrix;
//! * `tune-report` — the Sec. 4.4 tuner's per-bucket decisions for a
//!   workload;
//! * `recover` / `compact` — crash recovery and snapshot compaction of a
//!   durable store directory (`lemp-store`), single or sharded (the two
//!   layouts are told apart on disk); `serve durable=<dir>` boots the
//!   service in write-ahead-logged mode, and composes with `shards=<n>`
//!   into one WAL + snapshot directory per shard.
//!
//! Matrix files are selected by extension: `.bin` (the workspace binary
//! format), `.mtx` (Matrix Market array or coordinate), anything else CSV.

#![warn(missing_docs)]

use std::io::Write;
use std::path::{Path, PathBuf};

use lemp_approx::{centroid_row_top_k, CentroidConfig, PcaTree, PcaTreeConfig, SrpConfig, SrpLsh};
use lemp_baselines::export;
use lemp_baselines::types::TopKLists;
use lemp_baselines::Naive;
use lemp_core::shard::{is_sharded_image, ShardPolicy};
use lemp_core::{
    AdaptiveConfig, BanditPolicy, Engine, Lemp, LempVariant, QueryKind, QueryRequest, QueryRows,
    ShardedLemp, WarmGoal,
};
use lemp_data::datasets::Dataset;
use lemp_data::{io as mio, mm};
use lemp_linalg::{stats, VectorStore};

/// Usage text printed on argument errors.
pub const USAGE: &str = "usage:
  lemp-cli above       <queries> <probes> theta=<f> [out=<path>] [variant=<L|C|I|LC|LI|TA|Tree|L2AP|BLSH>] [threads=<n>] [chunk=<n>] [abs=<bool>] [adaptive=<ucb1|eps-greedy>] [shards=<n>] [shard-policy=<rr|banded>] [quantize=<bits|off>] [quantize-force=<bool>] [explain=<bool>]
  lemp-cli topk        <queries> <probes> k=<n>     [out=<path>] [variant=...] [threads=<n>] [chunk=<n>] [floor=<f>] [adaptive=<ucb1|eps-greedy>] [shards=<n>] [shard-policy=<rr|banded>] [quantize=<bits|off>] [quantize-force=<bool>] [explain=<bool>]
  lemp-cli approx-topk <queries> <probes> k=<n> method=<srp|pca|centroid> [budget=<n>] [clusters=<n>] [expand=<n>] [seed=<u>] [verify=<bool>] [out=<path>]
  lemp-cli generate    <ie-nmf|ie-svd|netflix|kdd> <queries-out> <probes-out> [scale=<f>] [seed=<u>]
  lemp-cli convert     <in> <out> [mm-layout=<array|coordinate>]
  lemp-cli stats       <matrix>
  lemp-cli tune-report <queries> <probes> (theta=<f> | k=<n>) [variant=...]
  lemp-cli topn        <queries> <probes> n=<n> [chunk=<n>] [out=<path>]
  lemp-cli index       <probes> <engine-out> [variant=...] [shards=<n>] [shard-policy=<rr|banded>] [quantize=<bits|off>]
  lemp-cli self-join   <matrix> t=<f> [out=<path>]
  lemp-cli serve       <probes|engine.eng> [addr=127.0.0.1:0] [workers=<n>] [queue=<n>] [batch=<n>] [variant=...] [sample=<matrix>] [warm-k=<n>] [shards=<n>] [shard-policy=<rr|banded>] [quantize=<bits|off>] [quantize-force=<bool>] [durable=<dir>] [sync=<always|never|N>] [replication=<addr>] [sync-replicas=<n>] [quorum-timeout-ms=<n>] [replicate-from=<addr>] [slow-query-ms=<n>]
  lemp-cli promote     <addr>
  lemp-cli recover     <store-dir> [verify=<bool>] [out=<engine.eng>]
  lemp-cli compact     <store-dir>

matrix files by extension: .bin (lemp binary), .mtx (Matrix Market), otherwise CSV;
`above`/`topk`/`serve` accept a prebuilt engine image (from `index`) as the <probes>
argument when its extension is .eng — single-shard (LEMPENG1) and sharded (LEMPSHD1)
images are told apart by magic, so both kinds just work;
`above`/`topk` build one QueryRequest and run it through the unified engine surface,
so abs/floor/chunk/adaptive/shards compose freely (all combinations are exact);
shards=<n> (n >= 1) partitions the probes across n shard engines (exact results,
shard-parallel execution); shard-policy picks round-robin (rr) or length-banded
partitioning and requires shards= or a sharded image; quantize=<bits> (1..=16)
trains per-bucket subspace codebooks at warm-up and lets the tuner pick the
quantized LUT scan per bucket — every candidate is re-verified against the
full-precision vectors, so answers stay exact; quantize-force=true skips the
tuner's load-sensitive LUT-vs-exact timing and always routes codebooked
buckets through the LUT scan (reproducible QUANT usage for benchmarks); explain=true prints the
compiled per-bucket plan summary to stderr (a quantized bucket names its bits,
codebook size and distortion bound);
durable=<dir> write-ahead logs every POST /probes edit into <dir> before applying
it (first boot seeds the store from <probes>, later boots recover from the store
and ignore <probes>); durable= composes with shards=: each edit is logged by the
owning shard (one WAL + snapshot directory per shard under <dir>, plus a root
MANIFEST), and a second boot reassembles the sharded engine from the store alone;
sync= picks the fsync cadence (default always); `recover` rebuilds the engine
from the latest snapshot + WAL tail of a single or sharded store (verify=true
gates its answers against Naive, out= saves the recovered engine image);
`compact` folds the log(s) into fresh snapshots and prunes covered segments;
replication=<addr> (leader) serves the store's snapshot + WAL to followers on a
second listener; sync-replicas=<n> makes the leader semi-synchronous — each
POST /probes acknowledgment waits until n followers' durable watermarks cover
the edit (bounded by quorum-timeout-ms, default 2000; on timeout the server
answers a structured 503 with code quorum_timeout and the edit stays durable
locally); replicate-from=<addr> (follower) bootstraps an empty durable=
store from that leader and tails its WAL, serving reads only (POST /probes is
409) until `promote` fences the store with a fresh epoch and flips it to a
standalone leader (a second promote is rejected with code already_fenced);
both require durable= with a single (non-sharded) store;
serve exposes Prometheus text metrics on GET /metrics (latency histograms,
engine telemetry, WAL/replication gauges); slow-query-ms=<n> logs one JSON
line to stderr for every query request at or above n milliseconds";

/// Entry point shared by the binary and the tests. `args` excludes the
/// program name.
///
/// # Errors
/// A human-readable message describing the argument or IO problem.
pub fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("missing subcommand")?;
    match cmd.as_str() {
        "above" => retrieve(args, true),
        "topk" => retrieve(args, false),
        "approx-topk" => approx_topk(args),
        "generate" => generate(args),
        "convert" => convert(args),
        "stats" => matrix_stats(args),
        "tune-report" => tune_report(args),
        "topn" => global_top_n(args),
        "index" => index(args),
        "self-join" => self_join(args),
        "serve" => serve(args),
        "promote" => promote_cmd(args),
        "recover" => recover_cmd(args),
        "compact" => compact_cmd(args),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

/// `key=value` lookup over the free arguments.
fn opt<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter().find_map(|a| a.strip_prefix(&format!("{key}=")))
}

/// Parses `key=value` with a default, reporting parse failures by key name.
fn opt_parse<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> Result<T, String> {
    match opt(args, key) {
        None => Ok(default),
        Some(raw) => raw.parse().map_err(|_| format!("bad {key}: {raw:?}")),
    }
}

/// Parses a required `key=value`.
fn opt_require<T: std::str::FromStr>(args: &[String], key: &str) -> Result<T, String> {
    let raw = opt(args, key).ok_or_else(|| format!("missing required {key}=<value>"))?;
    raw.parse().map_err(|_| format!("bad {key}: {raw:?}"))
}

fn positional(args: &[String], idx: usize) -> Result<&str, String> {
    args.iter()
        .skip(1) // subcommand
        .filter(|a| !a.contains('='))
        .nth(idx)
        .map(String::as_str)
        .ok_or_else(|| format!("missing positional argument #{}", idx + 1))
}

/// File kind by extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Binary,
    MatrixMarket,
    Csv,
}

fn format_of(path: &Path) -> Format {
    match path.extension().and_then(|e| e.to_str()) {
        Some("bin") => Format::Binary,
        Some("mtx") => Format::MatrixMarket,
        _ => Format::Csv,
    }
}

fn load(path: &str) -> Result<VectorStore, String> {
    let p = Path::new(path);
    let result = match format_of(p) {
        Format::Binary => mio::read_binary(p),
        Format::MatrixMarket => mm::read_mm(p),
        Format::Csv => mio::read_csv(p),
    };
    result.map_err(|e| format!("cannot read {path}: {e}"))
}

fn write_store(store: &VectorStore, path: &Path, mm_layout: &str) -> Result<(), String> {
    let result = match format_of(path) {
        Format::Binary => mio::write_binary(store, path),
        Format::MatrixMarket => match mm_layout {
            "array" => mm::write_mm_array(store, path),
            "coordinate" => mm::write_mm_coordinate(store, path),
            other => return Err(format!("bad mm-layout: {other:?} (array|coordinate)")),
        },
        Format::Csv => mio::write_csv(store, path),
    };
    result.map_err(|e| format!("cannot write {}: {e}", path.display()))
}

fn parse_variant(name: &str) -> Result<LempVariant, String> {
    let v = match name.to_ascii_uppercase().as_str() {
        "L" => LempVariant::L,
        "C" => LempVariant::C,
        "I" => LempVariant::I,
        "LC" => LempVariant::LC,
        "LI" => LempVariant::LI,
        "TA" => LempVariant::Ta,
        "TREE" => LempVariant::Tree,
        "L2AP" => LempVariant::L2ap,
        "BLSH" => LempVariant::Blsh,
        other => return Err(format!("unknown variant {other:?}")),
    };
    Ok(v)
}

/// Output sink: a file or stdout.
fn sink(args: &[String]) -> Result<Box<dyn Write>, String> {
    match opt(args, "out") {
        Some(path) => {
            let f =
                std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            Ok(Box::new(std::io::BufWriter::new(f)))
        }
        None => Ok(Box::new(std::io::BufWriter::new(std::io::stdout()))),
    }
}

fn load_pair(args: &[String]) -> Result<(VectorStore, VectorStore), String> {
    let queries = load(positional(args, 0)?)?;
    let probes = load(positional(args, 1)?)?;
    if queries.dim() != probes.dim() {
        return Err(format!(
            "dimensionality mismatch: queries r={}, probes r={}",
            queries.dim(),
            probes.dim()
        ));
    }
    Ok((queries, probes))
}

/// Parses the `adaptive=<policy>` option into a driver configuration.
fn adaptive_cfg(args: &[String]) -> Result<Option<AdaptiveConfig>, String> {
    match opt(args, "adaptive") {
        None => Ok(None),
        Some("ucb1") => Ok(Some(AdaptiveConfig::default())),
        Some("eps-greedy") => {
            let seed: u64 = opt_parse(args, "seed", 42)?;
            Ok(Some(AdaptiveConfig {
                policy: BanditPolicy::EpsilonGreedy { epsilon: 0.1, seed },
                ..Default::default()
            }))
        }
        Some(other) => Err(format!("unknown adaptive policy {other:?} (ucb1|eps-greedy)")),
    }
}

/// Parses `quantize=<bits|off>`: a per-subspace code width in `1..=16`,
/// or `off`/absent for full precision. `0`, widths beyond 16 and garbage
/// are structured errors, never panics.
fn parse_quantize(args: &[String]) -> Result<u8, String> {
    match opt(args, "quantize") {
        None | Some("off") => Ok(0),
        Some(raw) => match raw.parse::<u8>() {
            Ok(bits) if (1..=16).contains(&bits) => Ok(bits),
            _ => Err(format!("bad quantize: {raw:?} (a bit width in 1..=16, or off)")),
        },
    }
}

/// Parses `quantize-force=<bool>`: route every bucket with trained
/// codebooks through the quantized LUT scan instead of letting the tuner
/// time LUT vs exact (which varies with machine load). Requires
/// `quantize=<bits>`.
fn parse_quantize_force(args: &[String], bits: u8) -> Result<bool, String> {
    let force: bool = opt_parse(args, "quantize-force", false)?;
    if force && bits == 0 {
        return Err("quantize-force=true requires quantize=<bits>".into());
    }
    Ok(force)
}

/// Rejects a `quantize=` on a prebuilt engine image, whose quantization
/// is baked in — silently ignoring the option would lie about what runs.
fn reject_quantize_on_image(args: &[String], path: &str) -> Result<(), String> {
    if opt(args, "quantize").is_some() {
        return Err(format!(
            "{path} already encodes its quantization; rebuild with \
             `lemp index <probes> <out.eng> quantize=<bits>`"
        ));
    }
    Ok(())
}

/// Parses `shard-policy=<rr|banded>` (default round-robin).
fn parse_shard_policy(args: &[String]) -> Result<ShardPolicy, String> {
    match opt(args, "shard-policy").unwrap_or("rr") {
        "rr" => Ok(ShardPolicy::RoundRobin),
        "banded" => Ok(ShardPolicy::LengthBanded),
        other => Err(format!("unknown shard-policy {other:?} (rr|banded)")),
    }
}

/// Parses `shards=<n>`: `Some(n ≥ 1)` when given (a 1-shard engine is
/// legitimate), `None` when absent, an error for `shards=0` or garbage.
fn shard_request(args: &[String]) -> Result<Option<usize>, String> {
    match opt(args, "shards") {
        None => Ok(None),
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(Some(n)),
            _ => Err(format!("bad shards: {raw:?} (must be a count of at least 1)")),
        },
    }
}

/// Rejects a `shard-policy=` that would be silently ignored because no
/// sharded path is taken (no `shards=`, input not a sharded manifest).
fn reject_dangling_shard_policy(args: &[String]) -> Result<(), String> {
    if opt(args, "shard-policy").is_some() {
        return Err("shard-policy= requires shards=<n> (or a sharded engine image)".into());
    }
    Ok(())
}

/// Whether `path` names a sharded (`LEMPSHD1`) engine manifest.
fn sharded_image(path: &str) -> Result<bool, String> {
    if !path.ends_with(".eng") {
        return Ok(false);
    }
    is_sharded_image(Path::new(path)).map_err(|e| format!("cannot read {path}: {e}"))
}

/// Loads or builds the sharded engine for `above`/`topk`/`serve`: a
/// sharded `.eng` manifest as-is, or a matrix partitioned into `shards`
/// (`shards == 0` means "not requested on the command line"). A manifest's
/// partitioning is baked in, so conflicting `shards=`/`shard-policy=`
/// options are rejected rather than silently ignored.
fn load_sharded(args: &[String], probes_path: &str, shards: usize) -> Result<ShardedLemp, String> {
    if sharded_image(probes_path)? {
        reject_quantize_on_image(args, probes_path)?;
        let engine = ShardedLemp::load(Path::new(probes_path))
            .map_err(|e| format!("cannot load sharded engine {probes_path}: {e}"))?;
        if shards > 0 && shards != engine.shard_count() {
            return Err(format!(
                "{probes_path} is a sharded manifest with {} shards; shards={shards} cannot \
                 repartition it — rebuild with `lemp index <probes> <out.eng> shards={shards}`",
                engine.shard_count()
            ));
        }
        if opt(args, "shard-policy").is_some() {
            return Err(format!(
                "{probes_path} already encodes its partitioning; shard-policy= only applies \
                 when building from a matrix"
            ));
        }
        return Ok(engine);
    }
    if probes_path.ends_with(".eng") {
        return Err(format!(
            "{probes_path} is a single-shard image; build a sharded one with \
             `lemp index <probes> <out.eng> shards={shards}`"
        ));
    }
    let probes = load(probes_path)?;
    let variant = parse_variant(opt(args, "variant").unwrap_or("LI"))?;
    let quantize = parse_quantize(args)?;
    Ok(ShardedLemp::builder()
        .shards(shards)
        .policy(parse_shard_policy(args)?)
        .variant(variant)
        .quantize(quantize)
        .quantize_force(parse_quantize_force(args, quantize)?)
        .build(&probes))
}

/// `above`/`topk`: one [`QueryRequest`], one engine handle, one execution
/// path. The backend (fresh single engine, loaded image, sharded build or
/// manifest) is chosen from the arguments and boxed behind `dyn Engine`;
/// the request then runs through `plan` → `execute` with **no per-engine
/// query dispatch** — abs/floor/chunk/adaptive/shards compose freely, and
/// every combination is exact.
fn retrieve(args: &[String], above: bool) -> Result<(), String> {
    let queries = load(positional(args, 0)?)?;
    let probes_path = positional(args, 1)?;
    let threads: usize = opt_parse(args, "threads", 0)?; // 0 = backend default
    let explain: bool = opt_parse(args, "explain", false)?;

    // The request: what to retrieve plus how to execute it.
    let kind = if above {
        let theta: f64 = opt_require(args, "theta")?;
        if opt_parse(args, "abs", false)? {
            QueryKind::AbsAboveTheta { theta }
        } else {
            QueryKind::AboveTheta { theta }
        }
    } else {
        let k: usize = opt_require(args, "k")?;
        let floor: f64 = opt_parse(args, "floor", f64::NEG_INFINITY)?;
        if floor > f64::NEG_INFINITY {
            QueryKind::TopKWithFloor { k, floor }
        } else {
            QueryKind::TopK { k }
        }
    };
    let mut request = QueryRequest::new(kind);
    if let Some(acfg) = adaptive_cfg(args)? {
        request = request.adaptive(acfg);
    }
    let chunk: usize = opt_parse(args, "chunk", 0)?; // 0 = monolithic
    if chunk > 0 {
        request = request.chunked(chunk);
    }

    // The engine handle: sharded (built or loaded) or single (built or
    // loaded), behind one trait object either way.
    let shards = shard_request(args)?;
    let mut engine: Box<dyn Engine> = if shards.is_some() || sharded_image(probes_path)? {
        let mut engine = load_sharded(args, probes_path, shards.unwrap_or(0))?;
        engine.set_threads(if threads > 0 { threads } else { engine.shard_count() });
        Box::new(engine)
    } else {
        reject_dangling_shard_policy(args)?;
        let engine = if probes_path.ends_with(".eng") {
            reject_quantize_on_image(args, probes_path)?;
            let mut loaded = Lemp::load(Path::new(probes_path))
                .map_err(|e| format!("cannot load engine {probes_path}: {e}"))?;
            if threads > 0 {
                loaded.set_threads(threads);
            }
            loaded
        } else {
            let probes = load(probes_path)?;
            let variant = parse_variant(opt(args, "variant").unwrap_or("LI"))?;
            let quantize = parse_quantize(args)?;
            Lemp::builder()
                .variant(variant)
                .threads(threads.max(1))
                .quantize(quantize)
                .quantize_force(parse_quantize_force(args, quantize)?)
                .build(&probes)
        };
        Box::new(engine)
    };
    if engine.dim() != queries.dim() {
        return Err(format!(
            "dimensionality mismatch: queries r={}, probes r={}",
            queries.dim(),
            engine.dim()
        ));
    }

    // Warm for the workload, compile, execute.
    engine.warm_up(&queries, kind.warm_goal());
    let plan = engine.plan(&request);
    if explain {
        eprintln!("plan: {}", plan.describe());
        // Per-bucket assignments, parameters included — a quantized bucket
        // names its code width, codebook size and distortion bound, e.g.
        // `QUANT(bits=8, k=256, eps=1.2e-2)`.
        for (s, segment) in plan.segments().iter().enumerate() {
            for (b, algo) in segment.algos().iter().enumerate() {
                eprintln!("  shard {s} bucket {b}: {}", algo.detail());
            }
        }
    }
    let mut scratch = engine.query_scratch();
    let response = engine.execute(&plan, &queries, &mut scratch);

    let mut out = sink(args)?;
    let stats = &response.stats;
    match response.rows {
        QueryRows::Entries(mut entries) => {
            entries.sort_by_key(|e| (e.query, e.probe));
            export::write_entries_csv(&mut out, &entries).map_err(|e| e.to_string())?;
            let (sign, theta) = match kind {
                QueryKind::AbsAboveTheta { theta } => ("|·| ≥", theta),
                QueryKind::AboveTheta { theta } => ("≥", theta),
                _ => unreachable!("entry rows imply an Above-θ kind"),
            };
            eprintln!(
                "{} entries {sign} {theta} | {} queries, {:.1} candidates/query, {} buckets over {} shard(s), total {:.3}s",
                entries.len(),
                stats.counters.queries,
                stats.counters.candidates_per_query(),
                stats.bucket_count,
                engine.shard_count(),
                stats.counters.total_seconds()
            );
        }
        QueryRows::Lists(lists) => {
            export::write_topk_csv(&mut out, &lists).map_err(|e| e.to_string())?;
            let k = match kind {
                QueryKind::TopK { k } | QueryKind::TopKWithFloor { k, .. } => k,
                _ => unreachable!("list rows imply a Row-Top-k kind"),
            };
            eprintln!(
                "top-{k} for {} queries | {:.1} candidates/query, {} buckets over {} shard(s), total {:.3}s",
                stats.counters.queries,
                stats.counters.candidates_per_query(),
                stats.bucket_count,
                engine.shard_count(),
                stats.counters.total_seconds()
            );
        }
    }
    Ok(())
}

fn approx_topk(args: &[String]) -> Result<(), String> {
    let (queries, probes) = load_pair(args)?;
    let k: usize = opt_require(args, "k")?;
    let method: String = opt_require(args, "method")?;
    let seed: u64 = opt_parse(args, "seed", 42)?;
    let verify: bool = opt_parse(args, "verify", false)?;
    let started = std::time::Instant::now();

    let lists: TopKLists = match method.as_str() {
        "srp" => {
            let budget: usize = opt_parse(args, "budget", 8 * k.max(1))?;
            let index = SrpLsh::build(&probes, &SrpConfig { bits: 128, seed })
                .map_err(|e| e.to_string())?;
            index.row_top_k(&queries, k, budget)
        }
        "pca" => {
            let tree = PcaTree::build(&probes, &PcaTreeConfig { seed, ..Default::default() })
                .map_err(|e| e.to_string())?;
            let budget: usize = opt_parse(args, "budget", (tree.leaves() / 4).max(1))?;
            tree.row_top_k(&queries, k, budget)
        }
        "centroid" => {
            let clusters: usize = opt_parse(args, "clusters", 64)?;
            let expand: usize = opt_parse(args, "expand", 4)?;
            let cfg = CentroidConfig { clusters, expand, seed, ..Default::default() };
            centroid_row_top_k(&queries, &probes, k, &cfg).map_err(|e| e.to_string())?.lists
        }
        other => return Err(format!("unknown method {other:?} (srp|pca|centroid)")),
    };
    let elapsed = started.elapsed().as_secs_f64();

    let mut out = sink(args)?;
    export::write_topk_csv(&mut out, &lists).map_err(|e| e.to_string())?;

    if verify {
        let (truth, _) = Naive.row_top_k(&queries, &probes, k);
        let recall = lemp_approx::recall::topk_recall(&truth, &lists, 1e-9);
        eprintln!(
            "approx {method} top-{k}: {} queries in {elapsed:.3}s, recall {recall:.4}",
            queries.len()
        );
    } else {
        eprintln!("approx {method} top-{k}: {} queries in {elapsed:.3}s", queries.len());
    }
    Ok(())
}

fn generate(args: &[String]) -> Result<(), String> {
    let name = positional(args, 0)?;
    let dataset = parse_dataset(name)?;
    let q_out = PathBuf::from(positional(args, 1)?);
    let p_out = PathBuf::from(positional(args, 2)?);
    let scale: f64 = opt_parse(args, "scale", 0.01)?;
    let seed: u64 = opt_parse(args, "seed", 42)?;
    let spec = dataset.spec().scaled(scale);
    let (q, p) = spec.generate(seed);
    write_store(&q, &q_out, "array")?;
    write_store(&p, &p_out, "array")?;
    eprintln!(
        "{}: wrote {} queries to {} and {} probes to {} (r = {})",
        spec.name,
        q.len(),
        q_out.display(),
        p.len(),
        p_out.display(),
        spec.dim
    );
    Ok(())
}

fn parse_dataset(name: &str) -> Result<Dataset, String> {
    match name.to_ascii_lowercase().as_str() {
        "ie-nmf" => Ok(Dataset::IeNmf),
        "ie-svd" => Ok(Dataset::IeSvd),
        "netflix" => Ok(Dataset::Netflix),
        "kdd" => Ok(Dataset::Kdd),
        other => Err(format!("unknown dataset {other:?}")),
    }
}

fn convert(args: &[String]) -> Result<(), String> {
    let input = positional(args, 0)?;
    let output = positional(args, 1)?;
    let mm_layout = opt(args, "mm-layout").unwrap_or("array");
    let store = load(input)?;
    write_store(&store, Path::new(output), mm_layout)?;
    eprintln!("converted {input} -> {output} ({} vectors, r = {})", store.len(), store.dim());
    Ok(())
}

fn matrix_stats(args: &[String]) -> Result<(), String> {
    let path = positional(args, 0)?;
    let store = load(path)?;
    let lengths = store.lengths();
    println!("{path}:");
    println!("  vectors        {}", store.len());
    println!("  dimensionality {}", store.dim());
    println!("  length mean    {:.4}", stats::mean(&lengths));
    println!("  length CoV     {:.4}", stats::cov(&lengths));
    println!(
        "  length p50/p99 {:.4} / {:.4}",
        stats::quantile(&lengths, 0.5),
        stats::quantile(&lengths, 0.99)
    );
    println!("  non-zero       {:.1}%", 100.0 * stats::nonzero_fraction(store.as_flat()));
    // Bucketization preview under the default policy: how LEMP would cut
    // this matrix as the probe side.
    let engine = Lemp::builder().build(&store);
    let buckets = engine.buckets();
    println!("  buckets        {} (default policy)", buckets.bucket_count());
    if let (Some(first), Some(last)) = (buckets.buckets().first(), buckets.buckets().last()) {
        println!(
            "  bucket lengths {:.4} (longest) .. {:.4} (shortest)",
            first.max_len, last.min_len
        );
        let largest = buckets.buckets().iter().map(|b| b.len()).max().unwrap_or(0);
        println!("  largest bucket {largest} vectors");
    }
    Ok(())
}

fn tune_report(args: &[String]) -> Result<(), String> {
    let (queries, probes) = load_pair(args)?;
    let variant = parse_variant(opt(args, "variant").unwrap_or("LI"))?;
    let mut engine = Lemp::builder().variant(variant).build(&probes);
    let params = match (opt(args, "theta"), opt(args, "k")) {
        (Some(raw), None) => {
            let theta: f64 = raw.parse().map_err(|_| format!("bad theta: {raw:?}"))?;
            engine.tune_above(&queries, theta)
        }
        (None, Some(raw)) => {
            let k: usize = raw.parse().map_err(|_| format!("bad k: {raw:?}"))?;
            engine.tune_top_k(&queries, k)
        }
        _ => return Err("tune-report needs exactly one of theta=<f> or k=<n>".into()),
    };
    println!("bucket,size,max_len,min_len,t_b,phi_b");
    for (b, (bucket, p)) in engine.buckets().buckets().iter().zip(&params).enumerate() {
        println!(
            "{b},{},{:.6},{:.6},{:.3},{}",
            bucket.len(),
            bucket.max_len,
            bucket.min_len,
            p.tb,
            p.phi
        );
    }
    Ok(())
}

fn global_top_n(args: &[String]) -> Result<(), String> {
    let (queries, probes) = load_pair(args)?;
    let n: usize = opt_require(args, "n")?;
    let chunk: usize = opt_parse(args, "chunk", 256)?;
    if chunk == 0 {
        return Err("chunk must be positive".into());
    }
    let started = std::time::Instant::now();
    let mut engine = Lemp::builder().build(&probes);
    let entries = engine.global_top_n(&queries, n, chunk);
    let elapsed = started.elapsed().as_secs_f64();
    let mut out = sink(args)?;
    export::write_entries_csv(&mut out, &entries).map_err(|e| e.to_string())?;
    if let Some(last) = entries.last() {
        eprintln!(
            "top-{} of the whole product in {elapsed:.3}s; recall-level θ = {:?}",
            entries.len(),
            last.value
        );
    } else {
        eprintln!("empty product: no entries");
    }
    Ok(())
}

fn index(args: &[String]) -> Result<(), String> {
    let probes = load(positional(args, 0)?)?;
    let out = positional(args, 1)?;
    if !out.ends_with(".eng") {
        return Err(format!("engine images use the .eng extension, got {out:?}"));
    }
    let variant = parse_variant(opt(args, "variant").unwrap_or("LI"))?;
    let quantize = parse_quantize(args)?;
    if let Some(shards) = shard_request(args)? {
        let engine = ShardedLemp::builder()
            .shards(shards)
            .policy(parse_shard_policy(args)?)
            .variant(variant)
            .quantize(quantize)
            .build(&probes);
        engine.save(Path::new(out)).map_err(|e| format!("cannot write engine {out}: {e}"))?;
        eprintln!(
            "indexed {} probes into {} shards ({} buckets) -> {out}",
            engine.len(),
            engine.shard_count(),
            engine.bucket_count()
        );
        return Ok(());
    }
    reject_dangling_shard_policy(args)?;
    let engine = Lemp::builder().variant(variant).quantize(quantize).build(&probes);
    engine.save(Path::new(out)).map_err(|e| format!("cannot write engine {out}: {e}"))?;
    eprintln!(
        "indexed {} probes into {} buckets -> {out}",
        engine.buckets().total(),
        engine.buckets().bucket_count()
    );
    Ok(())
}

/// `serve`: boot the `lemp-serve` HTTP service over a probe matrix or a
/// persisted engine image (the intended production input — `lemp index`
/// once, then `lemp serve engine.eng` on every restart without repeating
/// preprocessing). Single-shard and sharded images are told apart by
/// magic; `shards=<n>` on a matrix builds a sharded engine in place. The
/// engine is warmed before the socket starts accepting, so the first
/// request already runs the shared `&self` path.
fn serve(args: &[String]) -> Result<(), String> {
    use lemp_core::{BucketPolicy, DynamicLemp, RunConfig};
    use lemp_serve::{ServeConfig, ServeEngine, Server};

    let probes_path = positional(args, 0)?;
    let addr = opt(args, "addr").unwrap_or("127.0.0.1:0");
    let workers: usize = opt_parse(args, "workers", 4)?;
    let queue: usize = opt_parse(args, "queue", 64)?;
    let batch: usize = opt_parse(args, "batch", 8)?;
    let warm_k: usize = opt_parse(args, "warm-k", 10)?;
    // Validated up front so hostile quantize= inputs fail before any store
    // is opened or seeded, whatever branch serves.
    let quantize = parse_quantize(args)?;
    let shards = shard_request(args)?;
    let durable_dir = opt(args, "durable");
    let sync = lemp_store::SyncPolicy::parse(opt(args, "sync").unwrap_or("always"))?;
    if opt(args, "sync").is_some() && durable_dir.is_none() {
        return Err("sync= requires durable=<dir>".into());
    }
    // A durable directory that already holds a sharded store forces the
    // sharded branch even without shards= on the command line — the store
    // is the source of truth from the second boot on.
    let sharded_store = durable_dir.is_some_and(|d| lemp_store::is_sharded_store(Path::new(d)));

    let replication = opt(args, "replication");
    let replicate_from = opt(args, "replicate-from");
    if replication.is_some() && replicate_from.is_some() {
        return Err(
            "replication= (leader) and replicate-from= (follower) are mutually exclusive".into()
        );
    }
    if (replication.is_some() || replicate_from.is_some()) && durable_dir.is_none() {
        return Err("replication requires durable=<dir> (the log is what is replicated)".into());
    }
    if (replication.is_some() || replicate_from.is_some()) && (sharded_store || shards.is_some()) {
        return Err("replication requires a single durable store (drop shards=)".into());
    }
    let sync_replicas: usize = opt_parse(args, "sync-replicas", 0)?;
    let quorum_timeout_ms: u64 = opt_parse(args, "quorum-timeout-ms", 2_000)?;
    // 0 = disabled: every threshold crossing is a stderr line, so an
    // accidental slow-query-ms=0 would log every single request.
    let slow_query_ms: u64 = opt_parse(args, "slow-query-ms", 0)?;
    if (sync_replicas > 0 || opt(args, "quorum-timeout-ms").is_some()) && replication.is_none() {
        return Err(
            "sync-replicas=/quorum-timeout-ms= require replication=<addr> (a leader)".into()
        );
    }

    // Warm-up sample: an explicit file, or (None) the engine's own probe
    // vectors — drawn from the same latent space, a reasonable tuning
    // stand-in.
    let explicit_sample = |dim: usize| -> Result<Option<VectorStore>, String> {
        match opt(args, "sample") {
            None => Ok(None),
            Some(path) => {
                let sample = load(path)?;
                if sample.dim() != dim {
                    return Err(format!(
                        "sample dimensionality {} does not match engine dimensionality {dim}",
                        sample.dim()
                    ));
                }
                Ok(Some(sample))
            }
        }
    };

    let engine: ServeEngine = if sharded_store || shards.is_some() || sharded_image(probes_path)? {
        use lemp_store::{ShardedDurableEngine, StoreOptions};
        let fresh = || -> Result<ShardedLemp, String> {
            let engine = load_sharded(args, probes_path, shards.unwrap_or(0))?;
            if engine.is_empty() {
                return Err(format!("{probes_path} holds no probe vectors"));
            }
            Ok(engine)
        };
        let mut engine: ServeEngine = match durable_dir {
            Some(dir) => {
                let dir = Path::new(dir);
                let options = StoreOptions { sync, ..Default::default() };
                let store = if lemp_store::is_sharded_store(dir) {
                    // The store is the source of truth from the second
                    // boot on: the <probes> argument only seeds a fresh
                    // directory.
                    let (store, report) =
                        ShardedDurableEngine::open(dir, options).map_err(|e| {
                            format!("cannot recover sharded store {}: {e}", dir.display())
                        })?;
                    if let Some(n) = shards {
                        if n != store.engine().shard_count() {
                            return Err(format!(
                                "store {} holds {} shards; shards={n} cannot repartition it",
                                dir.display(),
                                store.engine().shard_count()
                            ));
                        }
                    }
                    eprintln!(
                        "recovered {} probes across {} shards from {} ({} records replayed); \
                         ignoring {probes_path}",
                        report.live_probes(),
                        report.shards.len(),
                        dir.display(),
                        report.records_replayed(),
                    );
                    for (shard, detail) in report.torn_tails() {
                        eprintln!("shard {shard}: torn WAL tail truncated: {detail}");
                    }
                    store
                } else {
                    let store =
                        ShardedDurableEngine::create(dir, fresh()?, options).map_err(|e| {
                            format!("cannot create sharded store {}: {e}", dir.display())
                        })?;
                    eprintln!(
                        "created sharded store {} ({} shards, sync: {sync}) seeded from \
                         {probes_path}",
                        dir.display(),
                        store.engine().shard_count()
                    );
                    store
                };
                if store.engine().is_empty() {
                    return Err(format!("store {} holds no probe vectors", dir.display()));
                }
                ServeEngine::ShardedDurable(Box::new(store))
            }
            None => ServeEngine::Sharded(fresh()?),
        };
        // Every request fans out across shards, and the worker pool runs
        // requests concurrently on top — divide the cores between the two
        // so the combination never oversubscribes (the dynamic branch's
        // set_threads(1) with the worker pool as the only parallelism is
        // the same principle).
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let sample = {
            let inner = match &engine {
                ServeEngine::Sharded(e) => e,
                ServeEngine::ShardedDurable(e) => e.engine(),
                _ => unreachable!("this branch builds sharded engines"),
            };
            match explicit_sample(inner.dim())? {
                Some(sample) => sample,
                None => inner.sample_vectors(1024),
            }
        };
        let goal = WarmGoal::TopK(warm_k.max(1));
        let (report, shard_count) = match &mut engine {
            ServeEngine::Sharded(e) => {
                e.set_threads((cores / workers.max(1)).clamp(1, e.shard_count()));
                (e.warm(&sample, goal), e.shard_count())
            }
            ServeEngine::ShardedDurable(e) => {
                let count = e.engine().shard_count();
                e.set_threads((cores / workers.max(1)).clamp(1, count));
                (e.warm(&sample, goal), count)
            }
            _ => unreachable!("this branch builds sharded engines"),
        };
        eprintln!(
            "warmed {} probes in {} shards ({} buckets): {} indexes built in {:.3}s (tuning {:.3}s)",
            engine.len(),
            shard_count,
            engine.bucket_count(),
            report.indexes_built,
            report.build_ns as f64 / 1e9,
            report.tune_ns as f64 / 1e9,
        );
        engine
    } else {
        use lemp_store::{DurableEngine, StoreOptions};
        reject_dangling_shard_policy(args)?;
        let build = || -> Result<DynamicLemp, String> {
            let engine = if probes_path.ends_with(".eng") {
                reject_quantize_on_image(args, probes_path)?;
                let loaded = Lemp::load(Path::new(probes_path))
                    .map_err(|e| format!("cannot load engine {probes_path}: {e}"))?;
                DynamicLemp::from_engine(loaded, BucketPolicy::default())
            } else {
                let probes = load(probes_path)?;
                let variant = parse_variant(opt(args, "variant").unwrap_or("LI"))?;
                let config = RunConfig {
                    variant,
                    quantize_bits: quantize,
                    quantize_force: parse_quantize_force(args, quantize)?,
                    ..Default::default()
                };
                DynamicLemp::new(&probes, BucketPolicy::default(), config)
            };
            if engine.is_empty() {
                return Err(format!("{probes_path} holds no probe vectors"));
            }
            Ok(engine)
        };
        let mut engine: ServeEngine = match durable_dir {
            Some(dir) => {
                let dir = Path::new(dir);
                let options = StoreOptions { sync, ..Default::default() };
                let store = if DurableEngine::exists(dir) {
                    // The store is the source of truth from the second
                    // boot on: the <probes> argument only seeds a fresh
                    // directory.
                    let (store, report) = DurableEngine::open(dir, options)
                        .map_err(|e| format!("cannot recover store {}: {e}", dir.display()))?;
                    eprintln!(
                        "recovered {} probes from {} (snapshot LSN {}, {} records replayed \
                         across {} segments); ignoring {probes_path}",
                        report.live_probes,
                        dir.display(),
                        report.snapshot_lsn,
                        report.records_replayed,
                        report.segments_scanned,
                    );
                    if let Some(detail) = report.torn_tail {
                        eprintln!("torn WAL tail truncated: {detail}");
                    }
                    store
                } else if let Some(leader) = replicate_from {
                    // A fresh follower bootstraps over the wire instead of
                    // seeding from <probes>: the leader's snapshot is the
                    // truth the tail loop then extends.
                    let (status, payload) = lemp_serve::client::request_bytes(
                        leader,
                        "GET",
                        "/repl/snapshot",
                        Some(std::time::Duration::from_secs(30)),
                    )
                    .map_err(|e| format!("cannot fetch a snapshot from {leader}: {e}"))?;
                    if status != 200 {
                        return Err(format!("leader {leader} answered {status} to /repl/snapshot"));
                    }
                    let (store, report) = lemp_store::replication::bootstrap(
                        dir, &payload, options,
                    )
                    .map_err(|e| format!("cannot bootstrap store {}: {e}", dir.display()))?;
                    eprintln!(
                        "bootstrapped follower store {} from {leader} (snapshot LSN {}, {} live \
                         probes); ignoring {probes_path}",
                        dir.display(),
                        report.snapshot_lsn,
                        report.live_probes,
                    );
                    store
                } else {
                    let store = DurableEngine::create(dir, build()?, options)
                        .map_err(|e| format!("cannot create store {}: {e}", dir.display()))?;
                    eprintln!(
                        "created store {} (sync: {sync}) seeded from {probes_path}",
                        dir.display()
                    );
                    store
                };
                if store.engine().is_empty() {
                    return Err(format!("store {} holds no probe vectors", dir.display()));
                }
                ServeEngine::Durable(Box::new(store))
            }
            None => ServeEngine::Dynamic(build()?),
        };
        // The warm-up recipe, once: request-level parallelism comes from
        // the worker pool (per-call threading would oversubscribe the
        // cores), the sample is the explicit one or the engine's own live
        // vectors, the goal follows warm-k. The match arms below only
        // bridge the two backends' accessors onto this shared recipe.
        let goal = WarmGoal::TopK(warm_k.max(1));
        let sample = {
            let inner = match &engine {
                ServeEngine::Dynamic(e) => e,
                ServeEngine::Durable(e) => e.engine(),
                ServeEngine::Sharded(_) | ServeEngine::ShardedDurable(_) => {
                    unreachable!("sharded engines take the other branch")
                }
            };
            match explicit_sample(inner.dim())? {
                Some(sample) => sample,
                None => inner.live_vectors().1,
            }
        };
        let report = match &mut engine {
            ServeEngine::Dynamic(e) => {
                e.set_threads(1);
                e.warm(&sample, goal)
            }
            ServeEngine::Durable(e) => {
                e.set_threads(1);
                e.warm(&sample, goal)
            }
            ServeEngine::Sharded(_) | ServeEngine::ShardedDurable(_) => {
                unreachable!("sharded engines take the other branch")
            }
        };
        eprintln!(
            "warmed {} probes in {} buckets: {} indexes built in {:.3}s (tuning {:.3}s)",
            engine.len(),
            engine.bucket_count(),
            report.indexes_built,
            report.build_ns as f64 / 1e9,
            report.tune_ns as f64 / 1e9,
        );
        engine
    };

    let cfg = ServeConfig {
        workers: workers.max(1),
        queue_cap: queue.max(1),
        batch_max: batch.max(1),
        sync_replicas,
        quorum_timeout: std::time::Duration::from_millis(quorum_timeout_ms),
        slow_query: (slow_query_ms > 0).then(|| std::time::Duration::from_millis(slow_query_ms)),
        ..Default::default()
    };
    let mut server =
        Server::bind(addr, engine, cfg).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let local = server.local_addr().map_err(|e| e.to_string())?;
    if let Some(repl_addr) = replication {
        let bound = server
            .enable_leader(repl_addr)
            .map_err(|e| format!("cannot start the replication listener on {repl_addr}: {e}"))?;
        // Scripts parse this line too — keep it distinct from the
        // "listening on" line below.
        println!("lemp-serve replication on {bound}");
    }
    if let Some(leader) = replicate_from {
        server
            .replicate_from(leader.to_string())
            .map_err(|e| format!("cannot replicate from {leader}: {e}"))?;
        eprintln!("replicating from {leader} (read-only until POST /promote)");
    }
    // Scripts parse this line to discover the ephemeral port; flush so it
    // is visible before the accept loop blocks.
    println!("lemp-serve listening on {local}");
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    server.run().map_err(|e| format!("server failed: {e}"))
}

/// `promote <addr>` — asks a read-only follower to start accepting edits.
fn promote_cmd(args: &[String]) -> Result<(), String> {
    let addr = positional(args, 0)?;
    let (status, body) = lemp_serve::client::post(addr, "/promote", &lemp_serve::json::obj(vec![]))
        .map_err(|e| format!("cannot reach {addr}: {e}"))?;
    if status != 200 {
        let detail = body.get("error").and_then(|e| e.as_str()).unwrap_or("").to_string();
        return Err(format!("{addr} answered {status} to /promote: {detail}"));
    }
    let next_lsn = body.get("next_lsn").and_then(|v| v.as_u64()).unwrap_or(0);
    let probes = body.get("probes").and_then(|v| v.as_u64()).unwrap_or(0);
    let epoch = body.get("fence_epoch").and_then(|v| v.as_u64()).unwrap_or(0);
    println!(
        "promoted {addr}: fence epoch {epoch}, accepting edits at LSN {next_lsn}, \
         {probes} probes live"
    );
    Ok(())
}

/// `recover`: rebuild a [`lemp_core::DynamicLemp`] from a durable store
/// directory (latest snapshot + WAL tail replay), report what happened,
/// optionally save the recovered engine image and gate its answers
/// against the naive baseline.
fn recover_cmd(args: &[String]) -> Result<(), String> {
    let dir = Path::new(positional(args, 0)?);
    if lemp_store::is_sharded_store(dir) {
        return recover_sharded_cmd(dir, args);
    }
    let verify: bool = opt_parse(args, "verify", false)?;
    let started = std::time::Instant::now();
    let (mut engine, report) =
        lemp_store::recover(dir).map_err(|e| format!("cannot recover {}: {e}", dir.display()))?;
    let elapsed = started.elapsed().as_secs_f64();
    eprintln!(
        "recovered {} live probes (dim {}) in {elapsed:.3}s: snapshot LSN {}, {} records \
         replayed across {} segments, next LSN {}",
        report.live_probes,
        engine.dim(),
        report.snapshot_lsn,
        report.records_replayed,
        report.segments_scanned,
        report.next_lsn,
    );
    if let Some(detail) = &report.torn_tail {
        eprintln!("torn WAL tail ignored: {detail}");
    }
    if let Some(out) = opt(args, "out") {
        if !out.ends_with(".eng") {
            return Err(format!("engine images use the .eng extension, got {out:?}"));
        }
        engine.save(Path::new(out)).map_err(|e| format!("cannot write {out}: {e}"))?;
        eprintln!("saved recovered engine -> {out}");
    }
    if verify {
        let (ids, live) = engine.live_vectors();
        verify_recovered(&mut engine, &ids, &live)?;
    }
    Ok(())
}

/// `recover` on a sharded store directory: recover every shard and
/// reassemble the full [`ShardedLemp`], report per-shard detail,
/// optionally save the reassembled image and gate its answers against
/// the naive baseline.
fn recover_sharded_cmd(dir: &Path, args: &[String]) -> Result<(), String> {
    let verify: bool = opt_parse(args, "verify", false)?;
    let started = std::time::Instant::now();
    let (mut engine, report) = lemp_store::recover_sharded(dir)
        .map_err(|e| format!("cannot recover {}: {e}", dir.display()))?;
    let elapsed = started.elapsed().as_secs_f64();
    eprintln!(
        "recovered {} live probes (dim {}) across {} shards in {elapsed:.3}s: {} records \
         replayed, policy {:?}",
        report.live_probes(),
        engine.dim(),
        report.shards.len(),
        report.records_replayed(),
        engine.policy_kind(),
    );
    for (i, shard) in report.shards.iter().enumerate() {
        eprintln!(
            "  shard {i}: {} live probes, snapshot LSN {}, {} records replayed across {} \
             segments, next LSN {}",
            shard.live_probes,
            shard.snapshot_lsn,
            shard.records_replayed,
            shard.segments_scanned,
            shard.next_lsn,
        );
        if let Some(detail) = &shard.torn_tail {
            eprintln!("  shard {i}: torn WAL tail ignored: {detail}");
        }
    }
    if let Some(out) = opt(args, "out") {
        if !out.ends_with(".eng") {
            return Err(format!("engine images use the .eng extension, got {out:?}"));
        }
        engine.save(Path::new(out)).map_err(|e| format!("cannot write {out}: {e}"))?;
        eprintln!("saved recovered sharded engine -> {out}");
    }
    if verify {
        let (ids, live) = engine.live_vectors();
        verify_recovered(&mut engine, &ids, &live)?;
    }
    Ok(())
}

/// The `recover verify=true` gate: the recovered engine's Row-Top-k and
/// Above-θ answers must match the naive baseline over its own live
/// vectors — the CI crash drills run this after SIGKILLing a durable
/// server. Generic over the backend via [`Engine`], so the single and
/// sharded recovery paths share one gate; `ids[i]` is the global id of
/// row `i` in `live`.
fn verify_recovered(
    engine: &mut dyn Engine,
    ids: &[u32],
    live: &VectorStore,
) -> Result<(), String> {
    use lemp_baselines::types::{canonical_pairs, topk_equivalent};
    use lemp_linalg::ScoredItem;
    if live.is_empty() {
        eprintln!("verify: store is empty, nothing to check");
        return Ok(());
    }
    // Queries: a strided sample of the live vectors themselves (same
    // latent space, covers the length spectrum).
    let rows = live.len().min(48);
    let stride = (live.len() / rows).max(1);
    let picks: Vec<usize> = (0..rows).map(|i| (i * stride) % live.len()).collect();
    let queries = live.select(&picks);
    let k = 10.min(live.len());
    let (naive, _) = Naive.row_top_k(&queries, live, k);
    let mapped: Vec<Vec<ScoredItem>> = naive
        .iter()
        .map(|l| {
            l.iter().map(|it| ScoredItem { id: ids[it.id] as usize, score: it.score }).collect()
        })
        .collect();
    let topk = QueryKind::TopK { k };
    engine.warm_up(&queries, topk.warm_goal());
    let plan = engine.plan(&QueryRequest::new(topk));
    let mut scratch = engine.query_scratch();
    let out = match engine.execute(&plan, &queries, &mut scratch).rows {
        QueryRows::Lists(lists) => lists,
        QueryRows::Entries(_) => unreachable!("top-k plans yield lists"),
    };
    if !topk_equivalent(&out, &mapped, 1e-9) {
        return Err("verify: recovered Row-Top-k answers diverge from the naive baseline".into());
    }
    // Above-θ at a threshold that bites: the median top-1 score.
    let mut tops: Vec<f64> = naive.iter().filter_map(|l| l.first().map(|it| it.score)).collect();
    tops.sort_by(f64::total_cmp);
    let theta = tops[tops.len() / 2];
    let (expect, _) = Naive.above_theta(&queries, live, theta);
    let mut expect: Vec<(u32, u32)> =
        expect.iter().map(|e| (e.query, ids[e.probe as usize])).collect();
    expect.sort_unstable();
    let above = QueryKind::AboveTheta { theta };
    engine.warm_up(&queries, above.warm_goal());
    let plan = engine.plan(&QueryRequest::new(above));
    let got = match engine.execute(&plan, &queries, &mut scratch).rows {
        QueryRows::Entries(entries) => entries,
        QueryRows::Lists(_) => unreachable!("above-θ plans yield entries"),
    };
    if canonical_pairs(&got) != expect {
        return Err("verify: recovered Above-θ answers diverge from the naive baseline".into());
    }
    eprintln!(
        "verify: {} queries checked against Naive (top-{k} and Above-θ at {theta:.4}) — exact",
        queries.len()
    );
    Ok(())
}

/// `compact`: fold a store's WAL into a fresh snapshot and prune the
/// segments (and older snapshots) the new checkpoint covers. A sharded
/// store compacts shard by shard (each shard's snapshot + marker + prune
/// sequence is independently crash-safe).
fn compact_cmd(args: &[String]) -> Result<(), String> {
    use lemp_store::{DurableEngine, ShardedDurableEngine, StoreOptions};
    let dir = Path::new(positional(args, 0)?);
    let started = std::time::Instant::now();
    if lemp_store::is_sharded_store(dir) {
        let (mut store, report) = ShardedDurableEngine::open(dir, StoreOptions::default())
            .map_err(|e| format!("cannot open sharded store {}: {e}", dir.display()))?;
        eprintln!(
            "opened sharded store {}: {} live probes across {} shards, {} records replayed",
            dir.display(),
            report.live_probes(),
            report.shards.len(),
            report.records_replayed(),
        );
        let reports = store.compact().map_err(|e| format!("compaction failed: {e}"))?;
        let elapsed = started.elapsed().as_secs_f64();
        for (i, c) in reports.iter().enumerate() {
            eprintln!(
                "  shard {i}: compacted at LSN {} ({} segments and {} snapshots pruned, {} \
                 bytes reclaimed)",
                c.lsn, c.segments_pruned, c.snapshots_pruned, c.bytes_reclaimed,
            );
        }
        let reclaimed: u64 = reports.iter().map(|c| c.bytes_reclaimed).sum();
        eprintln!(
            "compacted {} shards in {elapsed:.3}s ({reclaimed} bytes reclaimed)",
            reports.len()
        );
        return Ok(());
    }
    let (mut store, report) = DurableEngine::open(dir, StoreOptions::default())
        .map_err(|e| format!("cannot open store {}: {e}", dir.display()))?;
    eprintln!(
        "opened store {}: {} live probes, {} records replayed, next LSN {}",
        dir.display(),
        report.live_probes,
        report.records_replayed,
        report.next_lsn,
    );
    let compaction = store.compact().map_err(|e| format!("compaction failed: {e}"))?;
    let elapsed = started.elapsed().as_secs_f64();
    eprintln!(
        "compacted at LSN {} in {elapsed:.3}s: pruned {} segments and {} snapshots \
         ({} bytes reclaimed)",
        compaction.lsn,
        compaction.segments_pruned,
        compaction.snapshots_pruned,
        compaction.bytes_reclaimed,
    );
    Ok(())
}

fn self_join(args: &[String]) -> Result<(), String> {
    let vectors = load(positional(args, 0)?)?;
    let t: f64 = opt_require(args, "t")?;
    if !(0.0 < t && t <= 1.0) {
        return Err(format!("self-join threshold must lie in (0, 1], got {t}"));
    }
    let started = std::time::Instant::now();
    let result = lemp_apss::cosine_self_join(&vectors, t);
    let elapsed = started.elapsed().as_secs_f64();
    let mut out = sink(args)?;
    writeln!(out, "i,j,cosine").map_err(|e| e.to_string())?;
    for &(i, j, sim) in &result.pairs {
        writeln!(out, "{i},{j},{sim:?}").map_err(|e| e.to_string())?;
    }
    out.flush().map_err(|e| e.to_string())?;
    eprintln!(
        "{} pairs with cosine ≥ {t} among {} vectors ({} candidates verified, {elapsed:.3}s)",
        result.pairs.len(),
        vectors.len(),
        result.candidates
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|p| p.to_string()).collect()
    }

    fn temp(tag: &str, ext: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("lemp-cli-test-{tag}-{}.{ext}", std::process::id()));
        p
    }

    fn write_csv_matrix(path: &Path, rows: &[&str]) {
        std::fs::write(path, rows.join("\n")).unwrap();
    }

    #[test]
    fn opt_and_positional_parsing() {
        let args = s(&["topk", "q.csv", "p.csv", "k=5", "out=res.csv"]);
        assert_eq!(opt(&args, "k"), Some("5"));
        assert_eq!(opt(&args, "out"), Some("res.csv"));
        assert_eq!(opt(&args, "missing"), None);
        assert_eq!(positional(&args, 0).unwrap(), "q.csv");
        assert_eq!(positional(&args, 1).unwrap(), "p.csv");
        assert!(positional(&args, 2).is_err());
    }

    #[test]
    fn opt_parse_defaults_and_errors() {
        let args = s(&["above", "threads=3"]);
        assert_eq!(opt_parse(&args, "threads", 1usize).unwrap(), 3);
        assert_eq!(opt_parse(&args, "chunk", 7usize).unwrap(), 7);
        let bad = s(&["above", "threads=lots"]);
        assert!(opt_parse(&bad, "threads", 1usize).unwrap_err().contains("bad threads"));
        assert!(opt_require::<usize>(&bad, "k").unwrap_err().contains("missing required"));
    }

    #[test]
    fn variant_names_parse_case_insensitively() {
        assert_eq!(parse_variant("li").unwrap().name(), "LEMP-LI");
        assert_eq!(parse_variant("TREE").unwrap().name(), "LEMP-Tree");
        assert!(parse_variant("nope").is_err());
    }

    #[test]
    fn format_detection_by_extension() {
        assert_eq!(format_of(Path::new("a.bin")), Format::Binary);
        assert_eq!(format_of(Path::new("a.mtx")), Format::MatrixMarket);
        assert_eq!(format_of(Path::new("a.csv")), Format::Csv);
        assert_eq!(format_of(Path::new("a")), Format::Csv);
    }

    #[test]
    fn unknown_subcommand_and_missing_args() {
        assert!(run(&s(&["frobnicate"])).unwrap_err().contains("unknown subcommand"));
        assert!(run(&[]).unwrap_err().contains("missing subcommand"));
        assert!(run(&s(&["above"])).unwrap_err().contains("positional"));
    }

    #[test]
    fn end_to_end_topk_on_csv_files() {
        let q = temp("e2e-q", "csv");
        let p = temp("e2e-p", "csv");
        let out = temp("e2e-out", "csv");
        write_csv_matrix(&q, &["1,0", "0,1"]);
        write_csv_matrix(&p, &["2,0", "0,3", "1,1"]);
        run(&s(&[
            "topk",
            q.to_str().unwrap(),
            p.to_str().unwrap(),
            "k=1",
            &format!("out={}", out.display()),
        ]))
        .unwrap();
        let lists = export::read_topk_csv(std::fs::File::open(&out).unwrap()).unwrap();
        assert_eq!(lists[0][0].id, 0); // q0=(1,0): best probe (2,0)
        assert_eq!(lists[1][0].id, 1); // q1=(0,1): best probe (0,3)
        for f in [&q, &p, &out] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn end_to_end_above_with_chunking_matches_monolithic() {
        let q = temp("chunk-q", "csv");
        let p = temp("chunk-p", "csv");
        let out1 = temp("chunk-out1", "csv");
        let out2 = temp("chunk-out2", "csv");
        write_csv_matrix(&q, &["1,0", "0,1", "2,2"]);
        write_csv_matrix(&p, &["2,0", "0,3", "1,1"]);
        let base = ["above", q.to_str().unwrap(), p.to_str().unwrap(), "theta=1.5"];
        run(&s(&[&base[..], &[&format!("out={}", out1.display())]].concat())).unwrap();
        run(&s(&[&base[..], &[&format!("out={}", out2.display()), "chunk=1"]].concat())).unwrap();
        assert_eq!(
            std::fs::read_to_string(&out1).unwrap(),
            std::fs::read_to_string(&out2).unwrap()
        );
        for f in [&q, &p, &out1, &out2] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn convert_roundtrips_through_all_formats() {
        let csv = temp("conv", "csv");
        let bin = temp("conv", "bin");
        let mtx = temp("conv", "mtx");
        let back = temp("conv-back", "csv");
        write_csv_matrix(&csv, &["1,2.5", "-3,0"]);
        run(&s(&["convert", csv.to_str().unwrap(), bin.to_str().unwrap()])).unwrap();
        run(&s(&["convert", bin.to_str().unwrap(), mtx.to_str().unwrap()])).unwrap();
        run(&s(&["convert", mtx.to_str().unwrap(), back.to_str().unwrap()])).unwrap();
        let a = mio::read_csv(&csv).unwrap();
        let b = mio::read_csv(&back).unwrap();
        assert_eq!(a, b);
        // coordinate layout as well
        run(&s(&["convert", csv.to_str().unwrap(), mtx.to_str().unwrap(), "mm-layout=coordinate"]))
            .unwrap();
        assert_eq!(mm::read_mm(&mtx).unwrap(), a);
        assert!(run(&s(&[
            "convert",
            csv.to_str().unwrap(),
            mtx.to_str().unwrap(),
            "mm-layout=banana",
        ]))
        .is_err());
        for f in [&csv, &bin, &mtx, &back] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn generate_then_stats_and_tune_report() {
        let q = temp("gen-q", "bin");
        let p = temp("gen-p", "bin");
        run(&s(&[
            "generate",
            "netflix",
            q.to_str().unwrap(),
            p.to_str().unwrap(),
            "scale=0.002",
            "seed=7",
        ]))
        .unwrap();
        run(&s(&["stats", p.to_str().unwrap()])).unwrap();
        run(&s(&["tune-report", q.to_str().unwrap(), p.to_str().unwrap(), "k=3"])).unwrap();
        // exactly one of theta/k
        assert!(run(&s(&["tune-report", q.to_str().unwrap(), p.to_str().unwrap(),])).is_err());
        assert!(run(&s(&[
            "tune-report",
            q.to_str().unwrap(),
            p.to_str().unwrap(),
            "theta=1.0",
            "k=3",
        ]))
        .is_err());
        for f in [&q, &p] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn approx_topk_all_methods_run() {
        let q = temp("ax-q", "csv");
        let p = temp("ax-p", "csv");
        let out = temp("ax-out", "csv");
        let qrows: Vec<String> =
            (0..8).map(|i| format!("{},{}", 1.0 + i as f64 * 0.1, i as f64 * 0.2)).collect();
        let prows: Vec<String> =
            (0..30).map(|i| format!("{},{}", (i % 5) as f64, (i % 7) as f64 * 0.5)).collect();
        std::fs::write(&q, qrows.join("\n")).unwrap();
        std::fs::write(&p, prows.join("\n")).unwrap();
        for method in ["srp", "pca", "centroid"] {
            run(&s(&[
                "approx-topk",
                q.to_str().unwrap(),
                p.to_str().unwrap(),
                "k=2",
                &format!("method={method}"),
                "verify=true",
                &format!("out={}", out.display()),
            ]))
            .unwrap();
            let lists = export::read_topk_csv(std::fs::File::open(&out).unwrap()).unwrap();
            assert!(!lists.is_empty(), "{method} produced no output");
        }
        assert!(run(&s(&[
            "approx-topk",
            q.to_str().unwrap(),
            p.to_str().unwrap(),
            "k=2",
            "method=magic",
        ]))
        .is_err());
        for f in [&q, &p, &out] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn abs_above_reports_both_signs() {
        let q = temp("abs-q", "csv");
        let p = temp("abs-p", "csv");
        let out = temp("abs-out", "csv");
        write_csv_matrix(&q, &["1,0"]);
        write_csv_matrix(&p, &["2,0", "-2,0", "0,1"]);
        run(&s(&[
            "above",
            q.to_str().unwrap(),
            p.to_str().unwrap(),
            "theta=1.5",
            "abs=true",
            &format!("out={}", out.display()),
        ]))
        .unwrap();
        let entries = export::read_entries_csv(std::fs::File::open(&out).unwrap()).unwrap();
        let mut values: Vec<f64> = entries.iter().map(|e| e.value).collect();
        values.sort_by(f64::total_cmp);
        assert_eq!(values, vec![-2.0, 2.0]);
        // abs composes with chunked and adaptive execution (all exact):
        // the unified QueryRequest path answers identically.
        let expect = std::fs::read_to_string(&out).unwrap();
        let base = ["above", q.to_str().unwrap(), p.to_str().unwrap(), "theta=1.5", "abs=true"];
        for extra in [["chunk=1"], ["adaptive=ucb1"]] {
            run(&s(&[&base[..], &[extra[0], &format!("out={}", out.display())]].concat())).unwrap();
            assert_eq!(std::fs::read_to_string(&out).unwrap(), expect, "{extra:?} diverges");
        }
        for f in [&q, &p, &out] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn topk_floor_truncates_lists() {
        let q = temp("floor-q", "csv");
        let p = temp("floor-p", "csv");
        let out = temp("floor-out", "csv");
        write_csv_matrix(&q, &["1,0"]);
        write_csv_matrix(&p, &["3,0", "2,0", "1,0"]);
        run(&s(&[
            "topk",
            q.to_str().unwrap(),
            p.to_str().unwrap(),
            "k=3",
            "floor=1.5",
            &format!("out={}", out.display()),
        ]))
        .unwrap();
        let lists = export::read_topk_csv(std::fs::File::open(&out).unwrap()).unwrap();
        assert_eq!(lists[0].len(), 2, "only values 3 and 2 reach the floor");
        assert!(lists[0].iter().all(|i| i.score >= 1.5));
        // floor composes with chunked and adaptive execution, exactly.
        let expect = std::fs::read_to_string(&out).unwrap();
        let base = ["topk", q.to_str().unwrap(), p.to_str().unwrap(), "k=3", "floor=1.5"];
        for extra in [["chunk=1"], ["adaptive=ucb1"]] {
            run(&s(&[&base[..], &[extra[0], &format!("out={}", out.display())]].concat())).unwrap();
            assert_eq!(std::fs::read_to_string(&out).unwrap(), expect, "{extra:?} diverges");
        }
        for f in [&q, &p, &out] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn adaptive_policies_match_tuned_results() {
        let q = temp("adapt-q", "csv");
        let p = temp("adapt-p", "csv");
        let out1 = temp("adapt-out1", "csv");
        let out2 = temp("adapt-out2", "csv");
        let qrows: Vec<String> =
            (0..6).map(|i| format!("{},{}", 1.0 + i as f64 * 0.3, 2.0 - i as f64 * 0.2)).collect();
        // Distinct values everywhere so the top-k boundary has no ties (tied
        // boundaries may legally differ between drivers).
        let prows: Vec<String> = (0..40)
            .map(|i| format!("{},{}", 0.5 + i as f64 * 0.13, ((i * 7) % 11) as f64 * 0.4))
            .collect();
        std::fs::write(&q, qrows.join("\n")).unwrap();
        std::fs::write(&p, prows.join("\n")).unwrap();
        let base = ["topk", q.to_str().unwrap(), p.to_str().unwrap(), "k=2"];
        run(&s(&[&base[..], &[&format!("out={}", out1.display())]].concat())).unwrap();
        for policy in ["ucb1", "eps-greedy"] {
            run(&s(&[
                &base[..],
                &[&format!("adaptive={policy}"), &format!("out={}", out2.display())],
            ]
            .concat()))
            .unwrap();
            assert_eq!(
                std::fs::read_to_string(&out1).unwrap(),
                std::fs::read_to_string(&out2).unwrap(),
                "{policy} must return the tuned result"
            );
        }
        assert!(run(&s(&[&base[..], &["adaptive=magic"]].concat())).is_err());
        // adaptive + chunked compose through the unified path, exactly.
        run(&s(&[&base[..], &["adaptive=ucb1", "chunk=2", &format!("out={}", out2.display())]]
            .concat()))
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(&out1).unwrap(),
            std::fs::read_to_string(&out2).unwrap(),
            "adaptive+chunked must return the tuned result"
        );
        for f in [&q, &p, &out1, &out2] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn topk_k_edge_cases_are_clamped() {
        let q = temp("kedge-q", "csv");
        let p = temp("kedge-p", "csv");
        let out = temp("kedge-out", "csv");
        write_csv_matrix(&q, &["1,0", "0,1"]);
        write_csv_matrix(&p, &["2,0", "0,3", "1,1"]);
        // k beyond the probe count returns every probe, no panic.
        run(&s(&[
            "topk",
            q.to_str().unwrap(),
            p.to_str().unwrap(),
            "k=100",
            "explain=true",
            &format!("out={}", out.display()),
        ]))
        .unwrap();
        let lists = export::read_topk_csv(std::fs::File::open(&out).unwrap()).unwrap();
        assert!(lists.iter().all(|l| l.len() == 3), "k > n must return every probe");
        // k = 0 returns empty lists, no panic.
        run(&s(&[
            "topk",
            q.to_str().unwrap(),
            p.to_str().unwrap(),
            "k=0",
            &format!("out={}", out.display()),
        ]))
        .unwrap();
        let lists = export::read_topk_csv(std::fs::File::open(&out).unwrap()).unwrap();
        assert!(lists.iter().all(Vec::is_empty));
        for f in [&q, &p, &out] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let q = temp("dim-q", "csv");
        let p = temp("dim-p", "csv");
        write_csv_matrix(&q, &["1,2,3"]);
        write_csv_matrix(&p, &["1,2"]);
        let err = run(&s(&["topk", q.to_str().unwrap(), p.to_str().unwrap(), "k=1"])).unwrap_err();
        assert!(err.contains("dimensionality mismatch"));
        for f in [&q, &p] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn index_then_query_from_engine_image() {
        let q = temp("eng-q", "csv");
        let p = temp("eng-p", "csv");
        let eng = temp("eng", "eng");
        let out1 = temp("eng-out1", "csv");
        let out2 = temp("eng-out2", "csv");
        write_csv_matrix(&q, &["1,0", "0,1"]);
        write_csv_matrix(&p, &["2,0", "0,3", "1,1"]);
        run(&s(&["index", p.to_str().unwrap(), eng.to_str().unwrap()])).unwrap();
        // engine image and fresh build must answer identically
        run(&s(&[
            "topk",
            q.to_str().unwrap(),
            p.to_str().unwrap(),
            "k=2",
            &format!("out={}", out1.display()),
        ]))
        .unwrap();
        run(&s(&[
            "topk",
            q.to_str().unwrap(),
            eng.to_str().unwrap(),
            "k=2",
            &format!("out={}", out2.display()),
        ]))
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(&out1).unwrap(),
            std::fs::read_to_string(&out2).unwrap()
        );
        // wrong extension is rejected
        assert!(run(&s(&["index", p.to_str().unwrap(), "probes.bin"]))
            .unwrap_err()
            .contains(".eng"));
        for f in [&q, &p, &eng, &out1, &out2] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn sharded_runs_match_unsharded_runs() {
        let q = temp("shard-q", "csv");
        let p = temp("shard-p", "csv");
        let out1 = temp("shard-out1", "csv");
        let out2 = temp("shard-out2", "csv");
        let qrows: Vec<String> =
            (0..6).map(|i| format!("{},{}", 1.0 + i as f64 * 0.3, 2.0 - i as f64 * 0.2)).collect();
        // Distinct values everywhere so the top-k boundary has no ties.
        let prows: Vec<String> = (0..40)
            .map(|i| format!("{},{}", 0.5 + i as f64 * 0.13, ((i * 7) % 11) as f64 * 0.4))
            .collect();
        std::fs::write(&q, qrows.join("\n")).unwrap();
        std::fs::write(&p, prows.join("\n")).unwrap();
        for (base, sharded_extra) in [
            (vec!["topk", q.to_str().unwrap(), p.to_str().unwrap(), "k=3"], "shards=3"),
            (vec!["above", q.to_str().unwrap(), p.to_str().unwrap(), "theta=1.5"], "shards=2"),
        ] {
            run(&s(&[&base[..], &[&format!("out={}", out1.display())]].concat())).unwrap();
            for policy in ["rr", "banded"] {
                run(&s(&[
                    &base[..],
                    &[
                        sharded_extra,
                        &format!("shard-policy={policy}"),
                        &format!("out={}", out2.display()),
                    ],
                ]
                .concat()))
                .unwrap();
                assert_eq!(
                    std::fs::read_to_string(&out1).unwrap(),
                    std::fs::read_to_string(&out2).unwrap(),
                    "sharded {base:?} ({policy}) diverges from unsharded"
                );
            }
        }
        // shards=1 is a legitimate (single-shard) sharded run, not a no-op.
        run(&s(&[
            "topk",
            q.to_str().unwrap(),
            p.to_str().unwrap(),
            "k=3",
            &format!("out={}", out1.display()),
        ]))
        .unwrap();
        run(&s(&[
            "topk",
            q.to_str().unwrap(),
            p.to_str().unwrap(),
            "k=3",
            "shards=1",
            &format!("out={}", out2.display()),
        ]))
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(&out1).unwrap(),
            std::fs::read_to_string(&out2).unwrap(),
            "S=1 sharded topk diverges from unsharded"
        );
        // Sharded execution composes with chunked and adaptive runs too —
        // same unified path, same exact answers.
        let base = ["topk", q.to_str().unwrap(), p.to_str().unwrap(), "k=3"];
        run(&s(&[&base[..], &[&format!("out={}", out1.display())]].concat())).unwrap();
        for extra in [["chunk=2"], ["adaptive=ucb1"]] {
            run(&s(
                &[&base[..], &["shards=2", extra[0], &format!("out={}", out2.display())]].concat()
            ))
            .unwrap();
            assert_eq!(
                std::fs::read_to_string(&out1).unwrap(),
                std::fs::read_to_string(&out2).unwrap(),
                "sharded {extra:?} diverges from unsharded"
            );
        }
        // Nonsense options are still rejected, not silently ignored.
        let base = ["topk", q.to_str().unwrap(), p.to_str().unwrap(), "k=3", "shards=2"];
        assert!(run(&s(&[&base[..], &["shard-policy=magic"]].concat())).is_err());
        // shards=0 and a shard-policy that would be silently dropped error.
        let plain = ["topk", q.to_str().unwrap(), p.to_str().unwrap(), "k=3"];
        assert!(run(&s(&[&plain[..], &["shards=0"]].concat())).is_err());
        let err = run(&s(&[&plain[..], &["shard-policy=banded"]].concat())).unwrap_err();
        assert!(err.contains("requires shards"), "{err}");
        for f in [&q, &p, &out1, &out2] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn sharded_index_then_query_from_manifest() {
        let q = temp("shardeng-q", "csv");
        let p = temp("shardeng-p", "csv");
        let eng = temp("shardeng", "eng");
        let out1 = temp("shardeng-out1", "csv");
        let out2 = temp("shardeng-out2", "csv");
        write_csv_matrix(&q, &["1,0", "0,1"]);
        // All scores distinct for both queries: no k-boundary ties, so the
        // sharded and unsharded id choices must coincide exactly.
        write_csv_matrix(&p, &["2,0", "0,3", "1,1", "0.5,0.5", "3,0.2"]);
        run(&s(&["index", p.to_str().unwrap(), eng.to_str().unwrap(), "shards=2"])).unwrap();
        // The sharded manifest answers identically to a fresh matrix run —
        // no shards= needed at query time, the magic decides.
        run(&s(&[
            "topk",
            q.to_str().unwrap(),
            p.to_str().unwrap(),
            "k=2",
            &format!("out={}", out1.display()),
        ]))
        .unwrap();
        run(&s(&[
            "topk",
            q.to_str().unwrap(),
            eng.to_str().unwrap(),
            "k=2",
            &format!("out={}", out2.display()),
        ]))
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(&out1).unwrap(),
            std::fs::read_to_string(&out2).unwrap()
        );
        // A manifest's partitioning is baked in: a conflicting shards= or
        // any shard-policy= is rejected, never silently ignored.
        let err = run(&s(&["topk", q.to_str().unwrap(), eng.to_str().unwrap(), "k=2", "shards=3"]))
            .unwrap_err();
        assert!(err.contains("cannot repartition"), "{err}");
        let err = run(&s(&[
            "topk",
            q.to_str().unwrap(),
            eng.to_str().unwrap(),
            "k=2",
            "shard-policy=banded",
        ]))
        .unwrap_err();
        assert!(err.contains("already encodes"), "{err}");
        // ...while the matching shards= is accepted.
        run(&s(&["topk", q.to_str().unwrap(), eng.to_str().unwrap(), "k=2", "shards=2"])).unwrap();
        // shards= on a *single-shard* image cannot repartition either.
        run(&s(&["index", p.to_str().unwrap(), eng.to_str().unwrap()])).unwrap();
        let err = run(&s(&["topk", q.to_str().unwrap(), eng.to_str().unwrap(), "k=2", "shards=2"]))
            .unwrap_err();
        assert!(err.contains("single-shard"), "{err}");
        for f in [&q, &p, &eng, &out1, &out2] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn recover_and_compact_roundtrip_a_store() {
        use lemp_core::{BucketPolicy, DynamicLemp, RunConfig};
        use lemp_store::{DurableEngine, StoreOptions};
        let dir = std::env::temp_dir().join(format!("lemp-cli-test-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let out = temp("recovered", "eng");

        // Seed a store and push edits through the durable engine.
        let probes = lemp_data::synthetic::GeneratorConfig::gaussian(40, 4, 1.0).generate(31);
        let policy = BucketPolicy { min_bucket: 8, ..Default::default() };
        let config = RunConfig { sample_size: 4, ..Default::default() };
        let engine = DynamicLemp::new(&probes, policy, config);
        let mut store = DurableEngine::create(&dir, engine, StoreOptions::default()).unwrap();
        for i in 0..10 {
            store.insert(&[0.5 + 0.1 * i as f64; 4]).unwrap();
        }
        store.remove(2).unwrap();
        store.remove(5).unwrap();
        drop(store); // simulate an abrupt exit (sync=always: all durable)

        // recover: replays the log, verifies against Naive, saves an image.
        run(&s(&[
            "recover",
            dir.to_str().unwrap(),
            "verify=true",
            &format!("out={}", out.display()),
        ]))
        .unwrap();
        let recovered = DynamicLemp::load(&out).unwrap();
        assert_eq!(recovered.len(), 48);
        assert!(!recovered.contains(2) && recovered.contains(40));

        // compact, then recover again: same engine, no replay needed.
        run(&s(&["compact", dir.to_str().unwrap()])).unwrap();
        let (post, report) = lemp_store::recover(&dir).unwrap();
        assert_eq!(report.records_replayed, 0, "compaction folded the log away");
        let (mut a, mut b) = (Vec::new(), Vec::new());
        recovered.write_to(&mut a).unwrap();
        post.write_to(&mut b).unwrap();
        assert_eq!(a, b, "compaction changed the recovered engine");
        run(&s(&["recover", dir.to_str().unwrap(), "verify=true"])).unwrap();

        // Structured errors: missing store, bad out extension.
        let nowhere = std::env::temp_dir().join("lemp-cli-no-such-store");
        assert!(run(&s(&["recover", nowhere.to_str().unwrap()])).is_err());
        assert!(run(&s(&["recover", dir.to_str().unwrap(), "out=foo.bin"]))
            .unwrap_err()
            .contains(".eng"));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn serve_rejects_conflicting_durability_options() {
        let p = temp("durable-p", "csv");
        write_csv_matrix(&p, &["2,0", "0,3", "1,1"]);
        let dir = std::env::temp_dir().join("lemp-cli-durable-opts");
        let durable = format!("durable={}", dir.display());
        let err = run(&s(&["serve", p.to_str().unwrap(), "sync=always"])).unwrap_err();
        assert!(err.contains("requires durable"), "{err}");
        let err = run(&s(&["serve", p.to_str().unwrap(), &durable, "sync=sometimes"])).unwrap_err();
        assert!(err.contains("sync policy"), "{err}");
        // Quorum knobs are leader-only: they demand replication=<addr>.
        let err =
            run(&s(&["serve", p.to_str().unwrap(), &durable, "sync-replicas=1"])).unwrap_err();
        assert!(err.contains("require replication="), "{err}");
        let err = run(&s(&["serve", p.to_str().unwrap(), &durable, "quorum-timeout-ms=500"]))
            .unwrap_err();
        assert!(err.contains("require replication="), "{err}");
        let err = run(&s(&["serve", p.to_str().unwrap(), "replication=127.0.0.1:0"])).unwrap_err();
        assert!(err.contains("requires durable"), "{err}");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn recover_and_compact_roundtrip_a_sharded_store() {
        use lemp_store::{ShardedDurableEngine, StoreOptions};
        let dir = std::env::temp_dir().join(format!("lemp-cli-shd-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let out = temp("recovered-shd", "eng");

        // Seed a 3-shard store and route edits through it.
        let probes = lemp_data::synthetic::GeneratorConfig::gaussian(42, 4, 1.0).generate(33);
        let engine =
            ShardedLemp::builder().shards(3).policy(ShardPolicy::RoundRobin).build(&probes);
        let mut store =
            ShardedDurableEngine::create(&dir, engine, StoreOptions::default()).unwrap();
        for i in 0..10 {
            store.insert(&[0.5 + 0.1 * i as f64; 4]).unwrap();
        }
        store.remove(2).unwrap();
        store.remove(7).unwrap();
        drop(store); // simulate an abrupt exit (sync=always: all durable)

        // recover dispatches on the sharded layout: replays every shard,
        // verifies against Naive, saves a sharded image.
        run(&s(&[
            "recover",
            dir.to_str().unwrap(),
            "verify=true",
            &format!("out={}", out.display()),
        ]))
        .unwrap();
        let recovered = ShardedLemp::load(&out).unwrap();
        assert_eq!(recovered.shard_count(), 3);
        assert_eq!(recovered.len(), 50);
        assert!(!recovered.contains(2) && recovered.contains(45));

        // compact folds every shard's log away; a fresh recovery replays
        // nothing and reproduces the same engine bit for bit.
        run(&s(&["compact", dir.to_str().unwrap()])).unwrap();
        let (post, report) = lemp_store::recover_sharded(&dir).unwrap();
        assert_eq!(report.records_replayed(), 0, "compaction folded the logs away");
        let (mut a, mut b) = (Vec::new(), Vec::new());
        recovered.write_to(&mut a).unwrap();
        post.write_to(&mut b).unwrap();
        assert_eq!(a, b, "compaction changed the recovered engine");
        run(&s(&["recover", dir.to_str().unwrap(), "verify=true"])).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn quantized_runs_match_full_precision_exactly() {
        let q = temp("quant-q", "csv");
        let p = temp("quant-p", "csv");
        let eng = temp("quant", "eng");
        let out1 = temp("quant-out1", "csv");
        let out2 = temp("quant-out2", "csv");
        let qrows: Vec<String> =
            (0..6).map(|i| format!("{},{}", 1.0 + i as f64 * 0.3, 2.0 - i as f64 * 0.2)).collect();
        // Distinct values everywhere so the top-k boundary has no ties.
        let prows: Vec<String> = (0..40)
            .map(|i| format!("{},{}", 0.5 + i as f64 * 0.13, ((i * 7) % 11) as f64 * 0.4))
            .collect();
        std::fs::write(&q, qrows.join("\n")).unwrap();
        std::fs::write(&p, prows.join("\n")).unwrap();
        // Quantized runs re-verify every candidate: bit-identical output,
        // with and without sharding, for both problems.
        for base in [
            vec!["topk", q.to_str().unwrap(), p.to_str().unwrap(), "k=3"],
            vec!["above", q.to_str().unwrap(), p.to_str().unwrap(), "theta=1.5"],
        ] {
            run(&s(&[&base[..], &[&format!("out={}", out1.display())]].concat())).unwrap();
            for extra in [vec!["quantize=8"], vec!["quantize=8", "shards=2"]] {
                let mut argv: Vec<&str> = base.clone();
                argv.extend(extra.iter().copied());
                let out = format!("out={}", out2.display());
                argv.push(&out);
                run(&s(&argv)).unwrap();
                assert_eq!(
                    std::fs::read_to_string(&out1).unwrap(),
                    std::fs::read_to_string(&out2).unwrap(),
                    "quantized {base:?} {extra:?} diverges from full precision"
                );
            }
        }
        // quantize=off is the explicit default.
        run(&s(&[
            "topk",
            q.to_str().unwrap(),
            p.to_str().unwrap(),
            "k=3",
            "quantize=off",
            &format!("out={}", out2.display()),
        ]))
        .unwrap();
        // A quantized image persists its codebooks and answers identically.
        run(&s(&["index", p.to_str().unwrap(), eng.to_str().unwrap(), "quantize=8"])).unwrap();
        run(&s(&[
            "topk",
            q.to_str().unwrap(),
            p.to_str().unwrap(),
            "k=3",
            &format!("out={}", out1.display()),
        ]))
        .unwrap();
        run(&s(&[
            "topk",
            q.to_str().unwrap(),
            eng.to_str().unwrap(),
            "k=3",
            &format!("out={}", out2.display()),
        ]))
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(&out1).unwrap(),
            std::fs::read_to_string(&out2).unwrap(),
            "quantized image diverges from a fresh full-precision run"
        );
        // Hostile inputs are structured errors, never panics.
        let base = ["topk", q.to_str().unwrap(), p.to_str().unwrap(), "k=3"];
        for bad in ["quantize=0", "quantize=17", "quantize=256", "quantize=-8", "quantize=lots"] {
            let err = run(&s(&[&base[..], &[bad]].concat())).unwrap_err();
            assert!(err.contains("bad quantize"), "{bad}: {err}");
        }
        // quantize= on a prebuilt image is rejected, not silently dropped.
        let err =
            run(&s(&["topk", q.to_str().unwrap(), eng.to_str().unwrap(), "k=3", "quantize=8"]))
                .unwrap_err();
        assert!(err.contains("already encodes"), "{err}");
        for f in [&q, &p, &eng, &out1, &out2] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn self_join_finds_parallel_vectors() {
        let m = temp("sj", "csv");
        let out = temp("sj-out", "csv");
        write_csv_matrix(&m, &["1,0", "2,0", "0,1", "1,1"]);
        run(&s(&["self-join", m.to_str().unwrap(), "t=0.99", &format!("out={}", out.display())]))
            .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "i,j,cosine");
        assert_eq!(lines.len(), 2, "only the two parallel vectors match: {text}");
        assert!(lines[1].starts_with("0,1,"));
        // threshold validation
        assert!(run(&s(&["self-join", m.to_str().unwrap(), "t=0"])).is_err());
        assert!(run(&s(&["self-join", m.to_str().unwrap(), "t=1.5"])).is_err());
        for f in [&m, &out] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn topn_returns_global_largest_entries() {
        let q = temp("topn-q", "csv");
        let p = temp("topn-p", "csv");
        let out = temp("topn-out", "csv");
        write_csv_matrix(&q, &["1,0", "0,2"]);
        write_csv_matrix(&p, &["3,0", "0,1", "1,1"]);
        run(&s(&[
            "topn",
            q.to_str().unwrap(),
            p.to_str().unwrap(),
            "n=2",
            &format!("out={}", out.display()),
        ]))
        .unwrap();
        let entries = export::read_entries_csv(std::fs::File::open(&out).unwrap()).unwrap();
        assert_eq!(entries.len(), 2);
        // largest product entries: q0·p0 = 3, q1·p1 = 2 (and q1·p2 = 2 ties)
        assert_eq!(entries[0].value, 3.0);
        assert_eq!(entries[1].value, 2.0);
        for f in [&q, &p, &out] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn dataset_names_parse() {
        assert!(parse_dataset("IE-NMF").is_ok());
        assert!(parse_dataset("ie-svd").is_ok());
        assert!(parse_dataset("netflix").is_ok());
        assert!(parse_dataset("kdd").is_ok());
        assert!(parse_dataset("movielens").is_err());
    }
}
