//! Thin binary wrapper around [`lemp_cli::run`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match lemp_cli::run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{}", lemp_cli::USAGE);
            ExitCode::FAILURE
        }
    }
}
