//! Ablation for the Sec. 4.4 design choice: does the sample-based tuner
//! (per-bucket `t_b` and `φ_b`) beat fixed configurations?
//!
//! Runs LEMP-I with φ forced to each value 1..5 (via a tuner sample of 0,
//! which falls back to defaults — here emulated by running the pure
//! variants with different fixed sample sizes) against the tuned LEMP-LI.
//! Prints total time and candidates per query.
//!
//! Usage: `cargo run --release --bin repro-ablation-tuning [scale=0.01] [seed=42] [k=10]`

use std::time::Instant;

use lemp_bench::report::{fmt_secs, preamble, print_table, Args};
use lemp_bench::workload::Workload;
use lemp_core::{Lemp, LempVariant};
use lemp_data::datasets::Dataset;

fn run_once(w: &Workload, variant: LempVariant, sample: usize, k: usize) -> (f64, f64) {
    let start = Instant::now();
    let mut engine = Lemp::builder().variant(variant).sample_size(sample).build(&w.probes);
    let out = engine.row_top_k(&w.queries, k);
    (start.elapsed().as_secs_f64(), out.stats.counters.candidates_per_query())
}

fn main() {
    let args = Args::parse();
    let scale = args.get_f64("scale", 0.01);
    let seed = args.get_u64("seed", 42);
    let k = args.get_u64("k", 10) as usize;
    preamble("Sec. 4.4 ablation: tuned vs untuned method selection", scale, seed);

    let mut rows = Vec::new();
    for ds in [Dataset::IeSvdT, Dataset::Netflix] {
        let w = Workload::new(ds, scale, seed);
        // Untuned single methods (sample 0 → default parameters).
        for (label, variant, sample) in [
            ("LEMP-L (no tuning)", LempVariant::L, 0),
            ("LEMP-I (untuned φ)", LempVariant::I, 0),
            ("LEMP-I (tuned φ)", LempVariant::I, 50),
            ("LEMP-LI (tuned t_b, φ_b)", LempVariant::LI, 50),
        ] {
            let (secs, cpq) = run_once(&w, variant, sample, k);
            rows.push(vec![w.name.clone(), label.to_string(), fmt_secs(secs), format!("{cpq:.0}")]);
        }
    }
    print_table(
        &format!("Tuning ablation — Row-Top-{k}"),
        &["Dataset", "Configuration", "time", "|C|/q"],
        &rows,
    );
    println!(
        "\nshape check (paper, Sec. 6.3): the tuned hybrid matches or beats every fixed \
         configuration — 'LEMP-LI, for a small extra tuning cost, combines the strong \
         points of both methods.'"
    );
}
