//! Extension experiment: thread scaling of LEMP's retrieval phase.
//!
//! The paper runs single-threaded; queries are embarrassingly parallel, so
//! this table reports the retrieval-phase speedup over disjoint query
//! ranges (preprocessing and tuning stay serial — the Amdahl bound shows
//! in the total column).
//!
//! Usage: `cargo run --release --bin repro-parallel [scale=0.005] [seed=42] [k=10]`

use std::time::Instant;

use lemp_bench::report::{fmt_secs, preamble, print_table, Args};
use lemp_bench::workload::Workload;
use lemp_core::{Lemp, LempVariant};
use lemp_data::datasets::Dataset;

fn main() {
    let args = Args::parse();
    let scale = args.get_f64("scale", 0.005);
    let seed = args.get_u64("seed", 42);
    let k = args.get_u64("k", 10) as usize;
    preamble("retrieval-phase thread scaling (extension)", scale, seed);

    let mut rows = Vec::new();
    for ds in [Dataset::Kdd, Dataset::IeSvdT, Dataset::Netflix] {
        let w = Workload::new(ds, scale, seed);
        let mut base_retrieval = 0.0;
        for threads in [1usize, 2, 4, 8] {
            let mut engine =
                Lemp::builder().variant(LempVariant::LI).threads(threads).build(&w.probes);
            let _ = engine.row_top_k(&w.queries, k); // build indexes once
            let start = Instant::now();
            let out = engine.row_top_k(&w.queries, k);
            let total = start.elapsed().as_secs_f64();
            let retrieval = out.stats.counters.retrieval_ns as f64 / 1e9;
            if threads == 1 {
                base_retrieval = retrieval;
            }
            rows.push(vec![
                w.name.clone(),
                threads.to_string(),
                fmt_secs(retrieval),
                fmt_secs(total),
                format!("{:.2}x", base_retrieval / retrieval.max(1e-12)),
            ]);
        }
    }
    print_table(
        &format!("Row-Top-{k} retrieval scaling"),
        &["dataset", "threads", "retrieval", "total", "speedup"],
        &rows,
    );
}
