//! Regenerates **Table 1** (dataset statistics): shape, length CoV per side,
//! % non-zero entries, and the Naive baseline time (measured at scale,
//! extrapolated to paper size as `time/scale²`).
//!
//! Usage: `cargo run --release --bin repro-table1 [scale=0.01] [seed=42]`

use lemp_bench::report::{fmt_secs, preamble, print_table, Args};
use lemp_bench::runners::{run_topk, Algo};
use lemp_bench::workload::Workload;
use lemp_data::datasets::Dataset;
use lemp_linalg::stats;

fn main() {
    let args = Args::parse();
    let scale = args.get_f64("scale", 0.01);
    let seed = args.get_u64("seed", 42);
    preamble("Table 1: datasets", scale, seed);

    let mut rows = Vec::new();
    for ds in Dataset::all_base() {
        let w = Workload::new(ds, scale, seed);
        let q_cov = stats::cov(&w.queries.lengths());
        let p_cov = stats::cov(&w.probes.lengths());
        let nz = 100.0
            * (stats::nonzero_fraction(w.queries.as_flat()) * w.queries.as_flat().len() as f64
                + stats::nonzero_fraction(w.probes.as_flat()) * w.probes.as_flat().len() as f64)
            / (w.queries.as_flat().len() + w.probes.as_flat().len()) as f64;
        let naive = run_topk(Algo::Naive, &w, 1);
        let paper_equiv_min = naive.total_s / (scale * scale) / 60.0;
        rows.push(vec![
            w.name.clone(),
            w.queries.len().to_string(),
            w.probes.len().to_string(),
            format!("{q_cov:.2}"),
            format!("{p_cov:.2}"),
            format!("{nz:.1}"),
            fmt_secs(naive.total_s),
            format!("{paper_equiv_min:.0}"),
        ]);
    }
    print_table(
        "Table 1 — datasets (all r = 50)",
        &["Dataset", "m", "n", "CoV Q", "CoV P", "%NonZero", "Naive", "~paper-scale (min)"],
        &rows,
    );
    println!(
        "\npaper reference: IE-NMF 1.56/5.53 36.2% 112min | IE-SVD 1.51/4.44 100% 113min | \
         Netflix 0.43/0.72 100% 8.4min | KDD 0.38/0.40 100% 2910min"
    );
}
