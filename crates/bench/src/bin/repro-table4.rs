//! Regenerates **Table 4** (and the data behind **Fig. 6b**): Row-Top-k
//! comparison of Naive, Tree, D-Tree, TA and LEMP-LI on IE-SVDᵀ, IE-NMFᵀ,
//! Netflix and KDD for k ∈ {1, 5, 10, 50}.
//!
//! Usage: `cargo run --release --bin repro-table4 [scale=0.01] [seed=42] [kdd_scale=0.004]`

use lemp_bench::report::{fmt_secs, preamble, print_table, Args};
use lemp_bench::runners::{run_topk, Algo};
use lemp_bench::workload::{topk_datasets, Workload, TOP_K_VALUES};
use lemp_data::datasets::Dataset;

fn main() {
    let args = Args::parse();
    let scale = args.get_f64("scale", 0.01);
    // KDD is 1M×624K at paper scale; default to a smaller slice of it.
    let kdd_scale = args.get_f64("kdd_scale", scale * 0.4);
    let seed = args.get_u64("seed", 42);
    preamble("Table 4 / Fig. 6b: Row-Top-k vs prior methods", scale, seed);

    for ds in topk_datasets() {
        let s = if ds == Dataset::Kdd { kdd_scale } else { scale };
        let w = Workload::new(ds, s, seed);
        let mut rows = Vec::new();
        for algo in Algo::paper_lineup() {
            let mut row = vec![algo.name()];
            for &k in &TOP_K_VALUES {
                if algo == Algo::Naive && k != 1 {
                    // The paper only runs Naive at k = 1 ("this is a fair
                    // comparison because running times for larger k may be
                    // slightly above but not below").
                    row.push("-".into());
                    row.push("-".into());
                    continue;
                }
                let m = run_topk(algo, &w, k);
                row.push(fmt_secs(m.total_s));
                row.push(format!("({:.0})", m.candidates_per_query));
            }
            rows.push(row);
        }
        let mut headers: Vec<String> = vec!["Algorithm".into()];
        for &k in &TOP_K_VALUES {
            headers.push(format!("k={k}"));
            headers.push("|C|/q".into());
        }
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        print_table(
            &format!("Table 4 — {} ({}×{})", w.name, w.queries.len(), w.probes.len()),
            &header_refs,
            &rows,
        );
    }
    println!(
        "\nshape check (paper): LEMP wins everywhere; Tree second on most datasets; \
         TA collapses on the dense low-skew data (Netflix/KDD); D-Tree's group bounds \
         are loose for top-k."
    );
}
