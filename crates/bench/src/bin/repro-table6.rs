//! Regenerates **Table 6** (and **Fig. 7c–f**): the nine LEMP bucket-method
//! variants on Row-Top-k over IE-SVDᵀ, IE-NMFᵀ, Netflix and KDD.
//!
//! Usage: `cargo run --release --bin repro-table6 [scale=0.01] [seed=42] [kdd_scale=0.004]`

use lemp_bench::report::{fmt_secs, preamble, print_table, Args};
use lemp_bench::runners::{run_topk, Algo};
use lemp_bench::workload::{topk_datasets, Workload, TOP_K_VALUES};
use lemp_core::LempVariant;
use lemp_data::datasets::Dataset;

fn main() {
    let args = Args::parse();
    let scale = args.get_f64("scale", 0.01);
    let kdd_scale = args.get_f64("kdd_scale", scale * 0.4);
    let seed = args.get_u64("seed", 42);
    preamble("Table 6 / Fig. 7c–f: LEMP bucket algorithms, Row-Top-k", scale, seed);

    for ds in topk_datasets() {
        let s = if ds == Dataset::Kdd { kdd_scale } else { scale };
        let w = Workload::new(ds, s, seed);
        let mut rows = Vec::new();
        for variant in LempVariant::all() {
            let mut row = vec![variant.name().to_string()];
            for &k in &TOP_K_VALUES {
                let m = run_topk(Algo::Lemp(variant), &w, k);
                row.push(fmt_secs(m.total_s));
                row.push(format!("({:.0})", m.candidates_per_query));
            }
            rows.push(row);
        }
        let mut headers: Vec<String> = vec!["Algorithm".into()];
        for &k in &TOP_K_VALUES {
            headers.push(format!("k={k}"));
            headers.push("|C|/q".into());
        }
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        print_table(
            &format!("Table 6 — {} ({}×{})", w.name, w.queries.len(), w.probes.len()),
            &header_refs,
            &rows,
        );
    }
    println!(
        "\nshape check (paper): LEMP-LI best or tied-best throughout; INCR ≫ COORD on the \
         low-skew data (KDD); LEMP-L competitive only on high length skew; L2AP prunes \
         hardest but runs slower; TA-in-bucket beats standalone TA massively."
    );
}
