//! Regenerates **Table 5** (and **Fig. 7a–b**): the nine LEMP bucket-method
//! variants on the Above-θ problem, IE datasets, across recall levels.
//!
//! Usage: `cargo run --release --bin repro-table5 [scale=0.01] [seed=42]`

use lemp_bench::report::{fmt_secs, preamble, print_table, Args};
use lemp_bench::runners::{run_above, Algo};
use lemp_bench::workload::{above_datasets, Workload};
use lemp_core::LempVariant;

fn main() {
    let args = Args::parse();
    let scale = args.get_f64("scale", 0.01);
    let seed = args.get_u64("seed", 42);
    preamble("Table 5 / Fig. 7a–b: LEMP bucket algorithms, Above-θ", scale, seed);

    for ds in above_datasets() {
        let w = Workload::new(ds, scale, seed);
        let levels = w.recall_levels(seed + 1);
        let mut rows = Vec::new();
        for variant in LempVariant::all() {
            let mut row = vec![variant.name().to_string()];
            for level in &levels {
                let m = run_above(Algo::Lemp(variant), &w, level.theta);
                row.push(fmt_secs(m.total_s));
                row.push(format!("({:.1})", m.candidates_per_query));
            }
            rows.push(row);
        }
        let mut headers: Vec<String> = vec!["Algorithm".into()];
        for level in &levels {
            headers.push(level.label.clone());
            headers.push("|C|/q".into());
        }
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        print_table(
            &format!("Table 5 — {} ({}×{})", w.name, w.queries.len(), w.probes.len()),
            &header_refs,
            &rows,
        );
    }
    println!(
        "\nshape check (paper): LEMP-L wins at small recall on these high-skew datasets \
         (bucket pruning does all the work); LEMP-I/LI take over as the result grows; \
         L2AP has the smallest |C|/q but is slower than INCR; BLSH ≈ LEMP-L plus hashing \
         overhead; Tree-in-bucket trails the specialized methods."
    );
}
