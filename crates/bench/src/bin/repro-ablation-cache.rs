//! Regenerates the **Sec. 6.2 "caching effects"** ablation: cache-aware vs
//! cache-oblivious bucketization on a low-length-skew dataset.
//!
//! The paper: "LEMP created more than 15x more buckets than its
//! cache-oblivious version (403 vs. 26), and was more than twice as fast
//! (16.7h vs. 7.3h)" on KDD, and "for datasets with large length skew,
//! runtime differences were marginal".
//!
//! Usage: `cargo run --release --bin repro-ablation-cache [scale=0.01] [seed=42] [k=10]`

use lemp_bench::report::{fmt_secs, preamble, print_table, Args};
use lemp_bench::workload::Workload;
use lemp_core::{BucketPolicy, Lemp, LempVariant};
use lemp_data::datasets::Dataset;

fn run(w: &Workload, cache_bytes: usize, k: usize) -> (usize, f64, f64) {
    let policy = BucketPolicy { cache_bytes, ..Default::default() };
    let start = std::time::Instant::now();
    let mut engine = Lemp::builder().variant(LempVariant::LI).policy(policy).build(&w.probes);
    let out = engine.row_top_k(&w.queries, k);
    (
        out.stats.bucket_count,
        start.elapsed().as_secs_f64(),
        out.stats.counters.candidates_per_query(),
    )
}

fn main() {
    let args = Args::parse();
    let scale = args.get_f64("scale", 0.01);
    let seed = args.get_u64("seed", 42);
    let k = args.get_u64("k", 10) as usize;
    preamble("Sec. 6.2 ablation: cache-aware vs cache-oblivious buckets", scale, seed);

    let mut rows = Vec::new();
    for (ds, ds_scale) in [(Dataset::Kdd, scale * 0.4), (Dataset::IeSvdT, scale)] {
        let w = Workload::new(ds, ds_scale, seed);
        let (aware_buckets, aware_s, aware_c) = run(&w, BucketPolicy::default().cache_bytes, k);
        let (obl_buckets, obl_s, obl_c) = run(&w, 0, k);
        rows.push(vec![
            w.name.clone(),
            aware_buckets.to_string(),
            fmt_secs(aware_s),
            format!("{aware_c:.0}"),
            obl_buckets.to_string(),
            fmt_secs(obl_s),
            format!("{obl_c:.0}"),
            format!("{:.2}x", obl_s / aware_s),
        ]);
    }
    print_table(
        &format!("Cache ablation — Row-Top-{k}"),
        &[
            "Dataset",
            "buckets",
            "time",
            "|C|/q",
            "buckets(obl)",
            "time(obl)",
            "|C|/q(obl)",
            "oblivious/aware",
        ],
        &rows,
    );
    println!(
        "\nshape check (paper): many more buckets and a clear win for the cache-aware \
         version on low-skew data (KDD); marginal differences on high-skew data."
    );
}
