//! Gates the quantized probe buckets on the Table 1 workloads, two ways:
//!
//! * **Verified mode** — a `quantize=8` engine must answer Above-θ and
//!   Row-Top-k **bit-identically** to the exact engine on every dataset
//!   (the distortion-lifted pruning plus full-precision re-verification of
//!   `lemp_core::quant` makes this a hard guarantee, not a tolerance).
//! * **Approximate mode** — the no-reverify [`lemp_approx::QuantizedScorer`]
//!   must reach Row-Top-k recall ≥ 0.99 at the gate's code width.
//!
//! It also measures the machine-level wins of the 8-bit representation on a
//! synthetic 4096×50 bucket: residency reduction (gated ≥ 4×) and LUT-scan
//! speedup over the full f64 scan (gated ≥ 2×).
//!
//! Exit status 1 on any violation. With `report=<path>` a JSON summary is
//! written for CI archiving.
//!
//! Usage: `cargo run --release --bin repro-quantized [scale=0.002] [seed=42]
//! [k=10] [bits=12] [report=path.json]`

use std::time::Instant;

use lemp_approx::recall::topk_recall;
use lemp_approx::{QuantizedScorer, QuantizedScorerConfig};
use lemp_bench::report::{preamble, print_table, Args};
use lemp_bench::workload::Workload;
use lemp_core::{Entry, Lemp, LempVariant, QuantizedBucket};
use lemp_data::datasets::Dataset;
use lemp_data::synthetic::GeneratorConfig;
use lemp_linalg::kernels;

/// Sorts Above-θ entries into the canonical order (output order is
/// unspecified) so two runs compare element-wise.
fn canonical(mut entries: Vec<Entry>) -> Vec<Entry> {
    entries.sort_by_key(|e| (e.query, e.probe));
    entries
}

/// Best-of-reps seconds for one invocation of `f`, amortized over `iters`.
fn time_best<F: FnMut()>(reps: usize, iters: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() / iters as f64);
    }
    best
}

fn main() {
    let args = Args::parse();
    let scale = args.get_f64("scale", 0.002);
    let seed = args.get_u64("seed", 42);
    let k = args.get_u64("k", 10) as usize;
    let bits = args.get_u64("bits", 12) as u8;
    preamble("quantized buckets: verified exactness + no-reverify recall", scale, seed);

    let mut violations = Vec::new();
    let mut rows = Vec::new();
    let mut dataset_reports = Vec::new();
    for ds in Dataset::all_base() {
        let w = Workload::new(ds, scale, seed);
        let theta = w.mid_theta(seed);

        let mut exact = Lemp::builder().variant(LempVariant::LI).build(&w.probes);
        let exact_topk = exact.row_top_k(&w.queries, k);
        let exact_above = canonical(exact.above_theta(&w.queries, theta).entries);

        let mut quant = Lemp::builder().variant(LempVariant::LI).quantize(8).build(&w.probes);
        let quant_topk = quant.row_top_k(&w.queries, k);
        let quant_above = canonical(quant.above_theta(&w.queries, theta).entries);

        // Bit-exactness: identical ids in identical order, identical score
        // *bits* — not an epsilon comparison.
        let topk_exact = exact_topk.lists.len() == quant_topk.lists.len()
            && exact_topk.lists.iter().zip(&quant_topk.lists).all(|(a, b)| {
                a.len() == b.len()
                    && a.iter()
                        .zip(b)
                        .all(|(x, y)| x.id == y.id && x.score.to_bits() == y.score.to_bits())
            });
        let above_exact = exact_above.len() == quant_above.len()
            && exact_above.iter().zip(&quant_above).all(|(a, b)| {
                a.query == b.query && a.probe == b.probe && a.value.to_bits() == b.value.to_bits()
            });

        let scorer = QuantizedScorer::build(&w.probes, &QuantizedScorerConfig { bits, seed })
            .expect("validated bits and non-empty probes");
        let approx_topk = scorer.row_top_k(&w.queries, k);
        let recall = topk_recall(&exact_topk.lists, &approx_topk, 1e-9);

        if !topk_exact {
            violations.push(format!("{}: quantized-verified Row-Top-k diverges", w.name));
        }
        if !above_exact {
            violations.push(format!("{}: quantized-verified Above-θ diverges", w.name));
        }
        if recall < 0.99 {
            violations
                .push(format!("{}: no-reverify recall {recall:.4} < 0.99 at {bits} bits", w.name));
        }
        rows.push(vec![
            w.name.clone(),
            w.probes.len().to_string(),
            if topk_exact { "exact".into() } else { "DIVERGES".into() },
            if above_exact { "exact".into() } else { "DIVERGES".into() },
            format!("{recall:.4}"),
        ]);
        dataset_reports.push(format!(
            "{{\"name\":\"{}\",\"topk_exact\":{topk_exact},\"above_exact\":{above_exact},\
             \"recall\":{recall:.6}}}",
            w.name
        ));
    }
    print_table(
        &format!("Quantized buckets — verified 8-bit vs exact, no-reverify at {bits} bits"),
        &["Dataset", "n", "Top-k (verified)", "Above-θ (verified)", &format!("Recall@{k}")],
        &rows,
    );

    // Machine-level wins of the 8-bit representation on one big bucket.
    let (_, dirs) = GeneratorConfig::gaussian(4096, 50, 0.0).generate(seed).decompose();
    let qb = QuantizedBucket::train(&dirs, 8, seed).unwrap();
    let full_bytes = dirs.len() * dirs.dim() * 8;
    let residency_ratio = full_bytes as f64 / qb.resident_bytes() as f64;

    let query = {
        let (_, q) = GeneratorConfig::gaussian(1, 50, 0.0).generate(seed + 1).decompose();
        q.vector(0).to_vec()
    };
    let mut out = vec![0.0f64; dirs.len()];
    let full_s = time_best(5, 20, || {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = kernels::dot(&query, dirs.vector(i));
        }
    });
    let mut lut = Vec::new();
    let mut scores = Vec::new();
    let lut_s = time_best(5, 20, || {
        qb.fill_lut(&query, &mut lut);
        qb.scores(&lut, &mut scores);
    });
    let scan_speedup = full_s / lut_s;
    println!(
        "\n8-bit bucket (4096×50): residency {full_bytes} → {} bytes ({residency_ratio:.1}×), \
         scan {:.1}µs → {:.1}µs ({scan_speedup:.1}×)",
        qb.resident_bytes(),
        full_s * 1e6,
        lut_s * 1e6
    );
    if residency_ratio < 4.0 {
        violations.push(format!("residency reduction {residency_ratio:.2}× < 4×"));
    }
    // The headline ≥ 2× number is criterion's to certify (quantized_kernels
    // bench) and is archived in the JSON report; the hard gate here sits at
    // 1.5× so shared-runner noise can't fail CI while a real kernel
    // regression still does.
    if scan_speedup < 1.5 {
        violations.push(format!("LUT scan speedup {scan_speedup:.2}× < 1.5×"));
    }

    if let Some(path) = {
        let p = args.get_str("report", "");
        if p.is_empty() {
            None
        } else {
            Some(p)
        }
    } {
        let json = format!(
            "{{\n  \"gate\": \"repro-quantized\",\n  \"scale\": {scale},\n  \"bits\": {bits},\n  \
             \"k\": {k},\n  \"residency_ratio\": {residency_ratio:.3},\n  \
             \"scan_speedup\": {scan_speedup:.3},\n  \"violations\": {},\n  \
             \"datasets\": [{}]\n}}\n",
            violations.len(),
            dataset_reports.join(",")
        );
        std::fs::write(&path, json).expect("write report");
        println!("report written to {path}");
    }

    if !violations.is_empty() {
        eprintln!("\nrepro-quantized FAILED:");
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
    println!("\nrepro-quantized: all gates passed");
}
