//! Regenerates **Table 2** (maximum preprocessing times including indexing
//! and tuning, per dataset and method).
//!
//! LEMP's number is the preprocessing + tuning reported by a LEMP-LI
//! Row-Top-k run (lazy index construction included); TA / Tree / D-Tree are
//! their full index builds, which is all their preprocessing consists of.
//!
//! Usage: `cargo run --release --bin repro-table2 [scale=0.01] [seed=42]`

use std::time::Instant;

use lemp_baselines::{CoverTree, DualTree, TaIndex};
use lemp_bench::report::{fmt_secs, preamble, print_table, Args};
use lemp_bench::workload::Workload;
use lemp_core::{Lemp, LempVariant};
use lemp_data::datasets::Dataset;

fn main() {
    let args = Args::parse();
    let scale = args.get_f64("scale", 0.01);
    let seed = args.get_u64("seed", 42);
    preamble("Table 2: preprocessing times", scale, seed);

    let datasets = [
        Dataset::IeNmf,
        Dataset::IeSvd,
        Dataset::IeNmfT,
        Dataset::IeSvdT,
        Dataset::Netflix,
        Dataset::Kdd,
    ];
    let mut rows = Vec::new();
    for ds in datasets {
        let w = Workload::new(ds, scale, seed);

        let mut engine = Lemp::builder().variant(LempVariant::LI).build(&w.probes);
        let out = engine.row_top_k(&w.queries, 10);
        let lemp_s = (out.stats.counters.preprocess_ns + out.stats.counters.tune_ns) as f64 / 1e9;

        let t = Instant::now();
        let _ta = TaIndex::build(&w.probes);
        let ta_s = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let _tree = CoverTree::build(&w.probes, 1.3);
        let tree_s = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let _dt = DualTree::build(&w.queries, &w.probes, 1.3);
        let dtree_s = t.elapsed().as_secs_f64();

        rows.push(vec![
            w.name.clone(),
            fmt_secs(lemp_s),
            fmt_secs(ta_s),
            fmt_secs(tree_s),
            fmt_secs(dtree_s),
        ]);
    }
    print_table(
        "Table 2 — preprocessing (indexing + tuning)",
        &["Dataset", "LEMP", "TA", "Single Tree", "Dual Tree"],
        &rows,
    );
    println!(
        "\nshape check (paper): trees cost the most (D-Tree worst), TA is a cheap sort, \
         LEMP benefits from lazy indexing on skewed datasets."
    );
}
