//! Regenerates **Fig. 5** (Above-θ at the smallest recall level on the IE
//! datasets) and **Fig. 6** (Above-θ at the largest level, plus Row-Top-1 on
//! all four datasets) as bar-chart-style tables with speedup annotations —
//! the "X.Yx" labels the paper prints over the LEMP bars.
//!
//! Usage: `cargo run --release --bin repro-fig5-6 [scale=0.01] [seed=42] [kdd_scale=0.004]`

use lemp_bench::report::{fmt_secs, preamble, print_table, Args};
use lemp_bench::runners::{run_above, run_topk, Algo, Measurement};
use lemp_bench::workload::{above_datasets, topk_datasets, Workload};
use lemp_data::datasets::Dataset;

fn speedup_row(ms: &[Measurement]) -> Vec<Vec<String>> {
    let lemp = ms.last().expect("LEMP runs last").total_s;
    let best_other = ms[..ms.len() - 1].iter().map(|m| m.total_s).fold(f64::INFINITY, f64::min);
    ms.iter()
        .map(|m| {
            let note = if m.algo.starts_with("LEMP") {
                format!("{:.1}x vs next best", best_other / lemp)
            } else {
                String::new()
            };
            vec![m.algo.clone(), fmt_secs(m.total_s), note]
        })
        .collect()
}

fn main() {
    let args = Args::parse();
    let scale = args.get_f64("scale", 0.01);
    let kdd_scale = args.get_f64("kdd_scale", scale * 0.4);
    let seed = args.get_u64("seed", 42);
    preamble("Fig. 5 and Fig. 6: headline comparisons", scale, seed);

    // Fig. 5: Above-θ at the smallest recall level (the paper's @1k).
    for ds in above_datasets() {
        let w = Workload::new(ds, scale, seed);
        let levels = w.recall_levels(seed + 1);
        let level = &levels[0];
        let ms: Vec<Measurement> =
            Algo::paper_lineup().iter().map(|&a| run_above(a, &w, level.theta)).collect();
        print_table(
            &format!("Fig. 5 — Above-θ {} on {}", level.label, w.name),
            &["Algorithm", "total", "speedup"],
            &speedup_row(&ms),
        );
    }

    // Fig. 6a: Above-θ at the largest level (the paper's @1M).
    for ds in above_datasets() {
        let w = Workload::new(ds, scale, seed);
        let levels = w.recall_levels(seed + 1);
        let level = levels.last().expect("levels");
        let ms: Vec<Measurement> =
            Algo::paper_lineup().iter().map(|&a| run_above(a, &w, level.theta)).collect();
        print_table(
            &format!("Fig. 6a — Above-θ {} on {}", level.label, w.name),
            &["Algorithm", "total", "speedup"],
            &speedup_row(&ms),
        );
    }

    // Fig. 6b: Row-Top-1 on all four datasets.
    for ds in topk_datasets() {
        let s = if ds == Dataset::Kdd { kdd_scale } else { scale };
        let w = Workload::new(ds, s, seed);
        let ms: Vec<Measurement> =
            Algo::paper_lineup().iter().map(|&a| run_topk(a, &w, 1)).collect();
        print_table(
            &format!("Fig. 6b — Row-Top-1 on {}", w.name),
            &["Algorithm", "total", "speedup"],
            &speedup_row(&ms),
        );
    }
}
