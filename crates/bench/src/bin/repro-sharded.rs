//! Sharding conformance at Table-1 workload scale: for every base dataset,
//! run Row-Top-k and Above-θ through the naive scan, the unsharded engine,
//! and a [`ShardedLemp`] under both built-in policies, and **fail (exit 1)
//! on any divergence** — the CI smoke gate for the shard merge layer.
//! Also reports the sharded wall time next to the unsharded one (shard
//! fan-out across the machine's cores).
//!
//! Usage: `repro-sharded [scale=0.001] [seed=42] [shards=3] [k=10]`

use std::time::Instant;

use lemp_baselines::types::{canonical_pairs, topk_equivalent};
use lemp_baselines::Naive;
use lemp_bench::report::{preamble, print_table, Args};
use lemp_bench::workload::Workload;
use lemp_core::shard::ShardPolicy;
use lemp_core::{Lemp, ShardedLemp, WarmGoal};
use lemp_data::datasets::Dataset;

fn main() {
    let args = Args::parse();
    let scale = args.get_f64("scale", 0.001);
    let seed = args.get_u64("seed", 42);
    let shards = args.get_u64("shards", 3).max(1) as usize;
    let k = args.get_u64("k", 10).max(1) as usize;
    preamble(&format!("Sharding conformance (S = {shards})"), scale, seed);

    let mut rows = Vec::new();
    let mut failures = 0usize;
    for ds in Dataset::all_base() {
        let w = Workload::new(ds, scale, seed);
        let theta = w.mid_theta(seed);

        let (naive_topk, _) = Naive.row_top_k(&w.queries, &w.probes, k);
        let (naive_above, _) = Naive.above_theta(&w.queries, &w.probes, theta);
        let naive_above = canonical_pairs(&naive_above);

        let mut single = Lemp::builder().build(&w.probes);
        single.warm(&w.queries, WarmGoal::TopK(k));
        let mut scratch = single.make_scratch();
        let single_start = Instant::now();
        let single_topk = single.row_top_k_shared(&w.queries, k, &mut scratch);
        let single_s = single_start.elapsed().as_secs_f64();
        let single_above = single.above_theta_shared(&w.queries, theta, &mut scratch);

        for policy in [ShardPolicy::RoundRobin, ShardPolicy::LengthBanded] {
            let label = match policy {
                ShardPolicy::RoundRobin => "rr",
                _ => "banded",
            };
            let mut engine = ShardedLemp::builder()
                .shards(shards)
                .policy(policy)
                .threads(shards)
                .build(&w.probes);
            engine.warm(&w.queries, WarmGoal::TopK(k));
            let mut scratch = engine.make_scratch();
            let sharded_start = Instant::now();
            let topk = engine.row_top_k_shared(&w.queries, k, &mut scratch);
            let sharded_s = sharded_start.elapsed().as_secs_f64();
            let above = engine.above_theta_shared(&w.queries, theta, &mut scratch);

            let mut verdict = "ok";
            if !topk_equivalent(&topk.lists, &single_topk.lists, 0.0) {
                eprintln!("{} [{label}]: sharded top-{k} diverges from unsharded", w.name);
                verdict = "MISMATCH";
            }
            if !topk_equivalent(&topk.lists, &naive_topk, 1e-9) {
                eprintln!("{} [{label}]: sharded top-{k} diverges from naive", w.name);
                verdict = "MISMATCH";
            }
            if canonical_pairs(&above.entries) != naive_above
                || canonical_pairs(&single_above.entries) != naive_above
            {
                eprintln!("{} [{label}]: Above-θ = {theta:.4} diverges", w.name);
                verdict = "MISMATCH";
            }
            if verdict != "ok" {
                failures += 1;
            }
            rows.push(vec![
                w.name.clone(),
                label.to_string(),
                format!("{}", w.queries.len()),
                format!("{}", w.probes.len()),
                format!("{}", naive_above.len()),
                format!("{:.1} ms", single_s * 1e3),
                format!("{:.1} ms", sharded_s * 1e3),
                verdict.to_string(),
            ]);
        }
    }
    print_table(
        &format!("Sharded (S = {shards}) vs unsharded vs Naive"),
        &["Dataset", "Policy", "m", "n", "|Above-θ|", "Top-k 1 shard", "Top-k sharded", "Exact?"],
        &rows,
    );
    if failures > 0 {
        eprintln!("repro-sharded: {failures} conformance failure(s)");
        std::process::exit(1);
    }
    println!("\nall sharded runs byte-identical to the unsharded engine and exact vs Naive");
}
