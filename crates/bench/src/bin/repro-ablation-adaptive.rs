//! Ablation for the Sec. 4.4 outlook: "More elaborate approaches for
//! algorithm selection are possible, e.g., some form of reinforcement
//! learning." — does online bandit selection match the sample-based tuner?
//!
//! Compares the tuned LEMP-LI against the adaptive driver with UCB1 and
//! ε-greedy policies (arms: LENGTH + COORD/INCR φ ∈ 1..5, context: θ_b
//! bins), on one high-length-skew and one low-skew dataset, for both
//! problems. Every configuration is exact, so only time and the learned
//! method mix differ.
//!
//! Usage: `cargo run --release --bin repro-ablation-adaptive [scale=0.01] [seed=42] [k=10]`

use std::time::Instant;

use lemp_bench::report::{fmt_secs, preamble, print_table, Args};
use lemp_bench::workload::Workload;
use lemp_core::{AdaptiveConfig, BanditPolicy, Lemp, LempVariant, RunStats};
use lemp_data::datasets::Dataset;

struct Row {
    dataset: String,
    config: String,
    secs: f64,
    stats: RunStats,
}

impl Row {
    fn cells(&self) -> Vec<String> {
        vec![
            self.dataset.clone(),
            self.config.clone(),
            fmt_secs(self.secs),
            format!("{:.0}", self.stats.counters.candidates_per_query()),
            format!("{:.0}%", 100.0 * self.stats.method_mix.length_share()),
        ]
    }
}

fn adaptive_configs() -> Vec<(&'static str, AdaptiveConfig)> {
    vec![
        (
            "adaptive UCB1 (c=1)",
            AdaptiveConfig { policy: BanditPolicy::Ucb1 { c: 1.0 }, ..Default::default() },
        ),
        (
            "adaptive UCB1 (c=0, greedy)",
            AdaptiveConfig { policy: BanditPolicy::Ucb1 { c: 0.0 }, ..Default::default() },
        ),
        (
            "adaptive ε-greedy (ε=0.1)",
            AdaptiveConfig {
                policy: BanditPolicy::EpsilonGreedy { epsilon: 0.1, seed: 7 },
                ..Default::default()
            },
        ),
    ]
}

fn main() {
    let args = Args::parse();
    let scale = args.get_f64("scale", 0.01);
    let seed = args.get_u64("seed", 42);
    let k = args.get_u64("k", 10) as usize;
    preamble("Sec. 4.4 ablation: sample-based tuner vs bandit selection", scale, seed);

    let mut topk_rows: Vec<Row> = Vec::new();
    let mut above_rows: Vec<Row> = Vec::new();
    for ds in [Dataset::IeSvdT, Dataset::Netflix] {
        let w = Workload::new(ds, scale, seed);

        // Row-Top-k: tuned baseline, then each bandit policy.
        let start = Instant::now();
        let mut engine = Lemp::builder().variant(LempVariant::LI).build(&w.probes);
        let out = engine.row_top_k(&w.queries, k);
        topk_rows.push(Row {
            dataset: w.name.clone(),
            config: "tuned LEMP-LI (Sec. 4.4)".into(),
            secs: start.elapsed().as_secs_f64(),
            stats: out.stats,
        });
        for (label, acfg) in adaptive_configs() {
            let start = Instant::now();
            let mut engine = Lemp::new(&w.probes);
            let (out, _) = engine.row_top_k_adaptive(&w.queries, k, &acfg);
            topk_rows.push(Row {
                dataset: w.name.clone(),
                config: label.into(),
                secs: start.elapsed().as_secs_f64(),
                stats: out.stats,
            });
        }

        // Above-θ at the mid recall level.
        let levels = w.recall_levels(seed);
        if let Some(level) = levels.get(levels.len() / 2) {
            let start = Instant::now();
            let mut engine = Lemp::builder().variant(LempVariant::LI).build(&w.probes);
            let out = engine.above_theta(&w.queries, level.theta);
            above_rows.push(Row {
                dataset: format!("{} {}", w.name, level.label),
                config: "tuned LEMP-LI (Sec. 4.4)".into(),
                secs: start.elapsed().as_secs_f64(),
                stats: out.stats,
            });
            for (label, acfg) in adaptive_configs() {
                let start = Instant::now();
                let mut engine = Lemp::new(&w.probes);
                let (out, _) = engine.above_theta_adaptive(&w.queries, level.theta, &acfg);
                above_rows.push(Row {
                    dataset: format!("{} {}", w.name, level.label),
                    config: label.into(),
                    secs: start.elapsed().as_secs_f64(),
                    stats: out.stats,
                });
            }
        }
    }

    let headers = ["Dataset", "Selection", "time", "|C|/q", "LENGTH share"];
    print_table(
        &format!("Adaptive-selection ablation — Row-Top-{k}"),
        &headers,
        &topk_rows.iter().map(Row::cells).collect::<Vec<_>>(),
    );
    print_table(
        "Adaptive-selection ablation — Above-θ (mid recall level)",
        &headers,
        &above_rows.iter().map(Row::cells).collect::<Vec<_>>(),
    );
    println!(
        "\nshape check: the bandit policies land in the same time regime as the tuned \
         hybrid (identical results; selection overhead is per-pair timing + warm-up \
         exploration) and learn a LENGTH/coordinate mix comparable to the tuner's. \
         UCB1 c=0 under-explores and may lock onto a mediocre arm; ε-greedy keeps \
         exploring forever and pays a small steady tax."
    );
}
