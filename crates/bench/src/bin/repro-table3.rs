//! Regenerates **Table 3** (and the data behind **Fig. 5** and **Fig. 6a**):
//! Above-θ comparison of Naive, Tree, D-Tree, TA and LEMP-LI on the IE
//! datasets across recall levels, reporting total wall-clock and average
//! candidate-set size per query.
//!
//! Usage: `cargo run --release --bin repro-table3 [scale=0.01] [seed=42]`

use lemp_bench::report::{fmt_secs, preamble, print_table, Args};
use lemp_bench::runners::{run_above, Algo};
use lemp_bench::workload::{above_datasets, Workload};

fn main() {
    let args = Args::parse();
    let scale = args.get_f64("scale", 0.01);
    let seed = args.get_u64("seed", 42);
    preamble("Table 3 / Fig. 5 / Fig. 6a: Above-θ vs prior methods", scale, seed);

    for ds in above_datasets() {
        let w = Workload::new(ds, scale, seed);
        let levels = w.recall_levels(seed + 1);
        let mut rows = Vec::new();
        for algo in Algo::paper_lineup() {
            if algo == Algo::Naive {
                // θ-independent: run once at the first level.
                let m = run_above(algo, &w, levels[0].theta);
                let mut row = vec![m.algo.clone()];
                for _ in &levels {
                    row.push(fmt_secs(m.total_s));
                    row.push(format!("({:.0})", m.candidates_per_query));
                }
                rows.push(row);
                continue;
            }
            let mut row = vec![algo.name()];
            for level in &levels {
                let m = run_above(algo, &w, level.theta);
                row.push(fmt_secs(m.total_s));
                row.push(format!("({:.1})", m.candidates_per_query));
            }
            rows.push(row);
        }
        let mut headers: Vec<String> = vec!["Algorithm".into()];
        for level in &levels {
            headers.push(level.label.clone());
            headers.push("|C|/q".into());
        }
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        print_table(
            &format!("Table 3 — {} ({}×{})", w.name, w.queries.len(), w.probes.len()),
            &header_refs,
            &rows,
        );
    }
    println!(
        "\nshape check (paper): LEMP fastest at every level; Tree/TA next; D-Tree pays its \
         preprocessing; everything degrades toward Naive as the result size grows."
    );
}
