//! Kernel-level ablation: scalar vs AVX2 inner products.
//!
//! The paper denominates its whole cost model in inner-product time ("if an
//! inner product computation takes about 100 ns on average …", Sec. 1).
//! This binary measures that constant on the current machine for both
//! dispatch targets — the portable 4-accumulator kernel and the
//! bit-identical AVX2 kernel — at the paper's dimensionalities, and then
//! shows the end-to-end effect on a Naive run (pure inner-product work)
//! and a LEMP-LI run (mostly pruning, so less kernel-bound).
//!
//! Usage: `cargo run --release --bin repro-simd [scale=0.005] [seed=42]`

use std::hint::black_box;
use std::time::Instant;

use lemp_bench::report::{fmt_secs, preamble, print_table, Args};
use lemp_bench::workload::Workload;
use lemp_core::{Lemp, LempVariant};
use lemp_data::datasets::Dataset;
use lemp_linalg::{kernels, simd};

/// Mean ns per `dot` at dimension `r` under the active ISA.
fn time_dot(r: usize, reps: usize) -> f64 {
    let a: Vec<f64> = (0..r).map(|i| (i as f64 * 0.37).sin()).collect();
    let b: Vec<f64> = (0..r).map(|i| (i as f64 * 0.53).cos()).collect();
    // Warm up, then measure.
    let mut acc = 0.0;
    for _ in 0..reps / 10 {
        acc += kernels::dot(black_box(&a), black_box(&b));
    }
    let start = Instant::now();
    for _ in 0..reps {
        acc += kernels::dot(black_box(&a), black_box(&b));
    }
    let ns = start.elapsed().as_nanos() as f64 / reps as f64;
    black_box(acc);
    ns
}

fn main() {
    let args = Args::parse();
    let scale = args.get_f64("scale", 0.005);
    let seed = args.get_u64("seed", 42);
    preamble("kernel ablation: scalar vs AVX2 (bit-identical dispatch targets)", scale, seed);
    if !simd::avx2_supported() {
        println!("this CPU has no AVX2 — only the scalar kernel is available");
        return;
    }

    // Per-dot nanoseconds by dimensionality (the paper's ~100 ns constant).
    let mut rows = Vec::new();
    for r in [10usize, 50, 100, 500] {
        let reps = 40_000_000 / r.max(1);
        let prev = simd::override_isa(simd::Isa::Scalar);
        let scalar = time_dot(r, reps);
        simd::override_isa(simd::Isa::Avx2);
        let avx2 = time_dot(r, reps);
        simd::override_isa(prev);
        rows.push(vec![
            format!("r={r}"),
            format!("{scalar:.1} ns"),
            format!("{avx2:.1} ns"),
            format!("{:.2}x", scalar / avx2),
        ]);
    }
    print_table("inner product cost per call", &["dim", "scalar", "AVX2", "speedup"], &rows);

    // End-to-end: Naive is pure inner-product work; LEMP-LI spends most of
    // its time pruning, so the kernel gap shrinks.
    let w = Workload::new(Dataset::Netflix, scale, seed);
    let k = 10;
    let mut rows = Vec::new();
    for isa in [simd::Isa::Scalar, simd::Isa::Avx2] {
        let prev = simd::override_isa(isa);
        let start = Instant::now();
        let naive = lemp_baselines::Naive.row_top_k(&w.queries, &w.probes, k);
        let naive_secs = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let mut engine = Lemp::builder().variant(LempVariant::LI).build(&w.probes);
        let lemp = engine.row_top_k(&w.queries, k);
        let lemp_secs = start.elapsed().as_secs_f64();
        simd::override_isa(prev);
        black_box((naive, lemp));
        rows.push(vec![format!("{isa:?}"), fmt_secs(naive_secs), fmt_secs(lemp_secs)]);
    }
    print_table(
        &format!("end-to-end Row-Top-{k} on {} (both ISAs return identical results)", w.name),
        &["ISA", "Naive", "LEMP-LI"],
        &rows,
    );
    println!(
        "\nshape check: AVX2 speeds the raw kernel up ~3x at r=50+. Both drivers \
         inherit a share — Naive is pure kernel work, and LEMP's verification phase \
         is kernel work too, while its scan/prune phases are not — so SIMD and \
         algorithmic pruning compose rather than compete."
    );
}
