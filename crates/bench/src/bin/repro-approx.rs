//! Extension experiment: the approximate MIPS methods of the paper's
//! related work (\[15\] ALSH/SRP-LSH, \[16\] XBOX + PCA-tree,
//! \[17\] query centroids) against exact LEMP — time *and* recall per knob
//! setting, the table the paper's Sec. 5 discussion implies but does not
//! run.
//!
//! Shape targets: every method sweeps from fast/low-recall to
//! exact-at-max-knob; SRP and PCA beat exact per query at moderate recall;
//! the centroid method wins only when many queries share a cluster.
//!
//! Usage: `cargo run --release --bin repro-approx [scale=0.003] [seed=42] [k=10]`

use std::time::Instant;

use lemp_approx::recall::topk_recall;
use lemp_approx::{centroid_row_top_k, CentroidConfig, PcaTree, PcaTreeConfig, SrpConfig, SrpLsh};
use lemp_bench::report::{fmt_secs, preamble, print_table, Args};
use lemp_bench::workload::Workload;
use lemp_core::{Lemp, LempVariant};
use lemp_data::datasets::Dataset;

fn main() {
    let args = Args::parse();
    let scale = args.get_f64("scale", 0.003);
    let seed = args.get_u64("seed", 42);
    let k = args.get_u64("k", 10) as usize;
    preamble("approximate methods vs exact LEMP (related-work extension)", scale, seed);

    for ds in [Dataset::Netflix, Dataset::IeSvdT] {
        let w = Workload::new(ds, scale, seed);
        let mut rows = Vec::new();

        let start = Instant::now();
        let mut engine = Lemp::builder().variant(LempVariant::LI).build(&w.probes);
        let exact = engine.row_top_k(&w.queries, k);
        let exact_time = start.elapsed().as_secs_f64();
        rows.push(vec!["exact LEMP-LI".into(), "—".into(), fmt_secs(exact_time), "1.0000".into()]);

        let start = Instant::now();
        let srp = SrpLsh::build(&w.probes, &SrpConfig { seed, ..Default::default() })
            .expect("valid probes");
        let srp_build = start.elapsed().as_secs_f64();
        for budget in [k, 4 * k, 16 * k, 64 * k] {
            let start = Instant::now();
            let lists = srp.row_top_k(&w.queries, k, budget);
            let time = start.elapsed().as_secs_f64();
            rows.push(vec![
                format!("SRP-LSH (build {})", fmt_secs(srp_build)),
                format!("budget={budget}"),
                fmt_secs(time),
                format!("{:.4}", topk_recall(&exact.lists, &lists, 1e-9)),
            ]);
        }

        let start = Instant::now();
        let tree = PcaTree::build(&w.probes, &PcaTreeConfig { seed, ..Default::default() })
            .expect("valid probes");
        let tree_build = start.elapsed().as_secs_f64();
        let mut budgets: Vec<usize> = [1, tree.leaves() / 8, tree.leaves() / 2, tree.leaves()]
            .into_iter()
            .map(|b| b.max(1))
            .collect();
        budgets.dedup();
        for budget in budgets {
            let start = Instant::now();
            let lists = tree.row_top_k(&w.queries, k, budget);
            let time = start.elapsed().as_secs_f64();
            rows.push(vec![
                format!("PCA-tree (build {})", fmt_secs(tree_build)),
                format!("leaves={budget}/{}", tree.leaves()),
                fmt_secs(time),
                format!("{:.4}", topk_recall(&exact.lists, &lists, 1e-9)),
            ]);
        }

        for clusters in [16, 64, 256] {
            let cfg = CentroidConfig { clusters, expand: 4, seed, ..Default::default() };
            let start = Instant::now();
            let out = centroid_row_top_k(&w.queries, &w.probes, k, &cfg).expect("valid config");
            let time = start.elapsed().as_secs_f64();
            rows.push(vec![
                "centroids+LEMP".into(),
                format!("clusters={clusters} expand=4"),
                fmt_secs(time),
                format!("{:.4}", topk_recall(&exact.lists, &out.lists, 1e-9)),
            ]);
        }

        print_table(
            &format!(
                "{} — Row-Top-{k}, {} queries × {} probes",
                w.name,
                w.queries.len(),
                w.probes.len()
            ),
            &["method", "knob", "time", "recall"],
            &rows,
        );
    }
}
