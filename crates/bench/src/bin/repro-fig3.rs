//! Regenerates **Fig. 3** (feasible regions `[L_f, U_f]` as a function of
//! `q̄_f` for local thresholds 0.3, 0.8 and 0.99).
//!
//! Prints the three curves as aligned columns (plot-ready CSV with
//! `format=csv`).
//!
//! Usage: `cargo run --release --bin repro-fig3 [steps=21] [format=table]`

use lemp_bench::report::{print_table, Args};
use lemp_core::bounds::feasible_region;

fn main() {
    let args = Args::parse();
    let steps = args.get_u64("steps", 21).max(2) as usize;
    let format = args.get_str("format", "table");
    let thresholds = [0.3, 0.8, 0.99];

    if format == "csv" {
        println!("qf,L_0.3,U_0.3,L_0.8,U_0.8,L_0.99,U_0.99");
        for i in 0..steps {
            let qf = -1.0 + 2.0 * i as f64 / (steps - 1) as f64;
            let mut line = format!("{qf:.3}");
            for &t in &thresholds {
                let (l, u) = feasible_region(qf, t);
                line.push_str(&format!(",{l:.4},{u:.4}"));
            }
            println!("{line}");
        }
        return;
    }

    let mut rows = Vec::new();
    for i in 0..steps {
        let qf = -1.0 + 2.0 * i as f64 / (steps - 1) as f64;
        let mut row = vec![format!("{qf:.2}")];
        for &t in &thresholds {
            let (l, u) = feasible_region(qf, t);
            row.push(format!("[{l:+.3}, {u:+.3}]"));
        }
        rows.push(row);
    }
    print_table(
        "Fig. 3 — feasible regions by q̄_f",
        &["q̄_f", "θ_b = 0.3", "θ_b = 0.8", "θ_b = 0.99"],
        &rows,
    );
    println!("\nshape check: regions shrink as θ_b grows and as |q̄_f| grows (paper Fig. 3).");
}
